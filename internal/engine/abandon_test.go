package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// hog occupies every worker slot of a 1-worker pool and returns a release
// function plus a wait-for-started barrier.
func hogSlot(t *testing.T, p *Pool[int]) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), "hog", "hog", func(context.Context) (int, error) {
		close(started)
		<-block
		return 0, nil
	})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("hog never started")
	}
	return func() { close(block) }
}

// waitQueued polls until n jobs are waiting for a worker slot.
func waitQueued(t *testing.T, p *Pool[int], n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Snapshot().Queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d queued jobs (snapshot %+v)", n, p.Snapshot())
}

// TestAbandonedWaiterRetries is the regression test for coalesced-waiter
// poisoning: caller A owns the entry for "k" but is cancelled while waiting
// for a worker slot; caller B, coalesced onto A's entry with a live context,
// must not inherit A's context.Canceled — it retries, becomes the new owner,
// and gets a real result.
func TestAbandonedWaiterRetries(t *testing.T) {
	p := New[int](1)
	release := hogSlot(t, p)

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := p.Do(ctxA, "k", "k", func(context.Context) (int, error) { return 1, nil })
		aDone <- err
	}()
	waitQueued(t, p, 1)

	var execs atomic.Int64
	bDone := make(chan struct{})
	var bVal int
	var bErr error
	go func() {
		defer close(bDone)
		bVal, bErr = p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
			execs.Add(1)
			return 42, nil
		})
	}()
	// Let B coalesce onto A's in-flight entry before A abandons it.
	time.Sleep(20 * time.Millisecond)

	cancelA()
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	release()

	select {
	case <-bDone:
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiter never completed after owner abandonment")
	}
	if bErr != nil || bVal != 42 {
		t.Fatalf("waiter after abandonment = %d, %v; want 42, nil", bVal, bErr)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("retried waiter must execute exactly once, got %d", n)
	}
}

// TestAbandonZeroWaiters: a cancelled slot-waiter with nobody coalesced
// leaves no entry behind, and a later request executes fresh.
func TestAbandonZeroWaiters(t *testing.T) {
	p := New[int](1)
	release := hogSlot(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, "k", "k", func(context.Context) (int, error) { return 1, nil })
		done <- err
	}()
	waitQueued(t, p, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	release()

	if _, ok := p.Get("k"); ok {
		t.Error("abandoned entry must be forgotten")
	}
	v, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("fresh Do after abandonment = %d, %v", v, err)
	}
	if s := p.Snapshot(); s.Queued != 0 || s.Inflight != 0 {
		t.Errorf("gauges after abandonment = %+v", s)
	}
}

// TestAbandonManyWaiters: many coalesced waiters survive the owner's
// abandonment; exactly one of them re-executes and every one gets the value.
func TestAbandonManyWaiters(t *testing.T) {
	p := New[int](1)
	release := hogSlot(t, p)

	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := p.Do(ctxA, "k", "k", func(context.Context) (int, error) { return 1, nil })
		aDone <- err
	}()
	waitQueued(t, p, 1)

	const waiters = 8
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
				execs.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("waiter = %d, %v; want 42, nil", v, err)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters coalesce
	cancelA()
	<-aDone
	release()
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Errorf("abandonment recovery must execute once, got %d", n)
	}
}

// TestFailureEvictionThenRetry: a failed execution delivers its error to the
// waiters coalesced on it (failure is a result, unlike abandonment), evicts
// the entry, and the next request re-executes.
func TestFailureEvictionThenRetry(t *testing.T) {
	p := New[int](2)
	boom := errors.New("boom")
	gate := make(chan struct{})
	started := make(chan struct{})
	errs := make(chan error, 4)
	go func() {
		_, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
			close(started)
			<-gate
			return 0, boom
		})
		errs <- err
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
				t.Error("coalesced waiter must not re-execute a failing in-flight job")
				return 0, nil
			})
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Errorf("waiter err = %v, want boom", err)
		}
	}
	v, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("retry after failure eviction = %d, %v", v, err)
	}
	if s := p.Snapshot(); s.Failures != 1 || s.Executions != 2 {
		t.Errorf("snapshot = %+v, want 1 failure, 2 executions", s)
	}
}
