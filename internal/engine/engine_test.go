package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoizesAndCoalesces(t *testing.T) {
	p := New[int](4)
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Do(context.Background(), "k", "job", func(context.Context) (int, error) {
				execs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Errorf("32 coalesced calls must execute once, got %d", n)
	}
	if v, ok := p.Get("k"); !ok || v != 42 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if _, ok := p.Get("absent"); ok {
		t.Error("Get must miss on unknown keys")
	}
}

func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	p := New[int](workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		key := fmt.Sprint(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), key, key, func(context.Context) (int, error) {
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return 0, nil
			})
		}()
	}
	wg.Wait()
	if pk := peak.Load(); pk > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", pk, workers)
	}
	if pk := peak.Load(); pk < 2 {
		t.Errorf("pool must actually run jobs concurrently (peak %d)", pk)
	}
}

func TestErrorsPropagateAndAreNotCached(t *testing.T) {
	p := New[int](1)
	boom := errors.New("boom")
	calls := 0
	_, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// A failed job must not poison the cache: the next Do retries.
	v, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 || calls != 2 {
		t.Errorf("retry after failure: v=%d err=%v calls=%d", v, err, calls)
	}
}

func TestCancellation(t *testing.T) {
	p := New[int](1)
	block := make(chan struct{})
	go p.Do(context.Background(), "hog", "hog", func(context.Context) (int, error) {
		<-block
		return 0, nil
	})
	for p.pendingCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, "waiting", "waiting", func(context.Context) (int, error) { return 0, nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Do must return promptly")
	}
	close(block)
}

func TestPerJobTimeout(t *testing.T) {
	p := New[int](1, WithTimeout[int](5*time.Millisecond))
	_, err := p.Do(context.Background(), "slow", "slow", func(ctx context.Context) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Second):
			return 1, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestObserverEventSequence(t *testing.T) {
	var events []Event
	p := New(1, WithObserver[int](func(e Event) { events = append(events, e) }))
	p.Do(context.Background(), "k", "label", func(context.Context) (int, error) { return 1, nil })
	p.Do(context.Background(), "k", "label", func(context.Context) (int, error) { return 1, nil })
	want := []EventType{EventQueued, EventStarted, EventFinished, EventCacheHit}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Type != want[i] {
			t.Errorf("event %d = %v, want %v", i, e.Type, want[i])
		}
		if e.Key != "k" || e.Label != "label" {
			t.Errorf("event %d carries key %q label %q", i, e.Key, e.Label)
		}
	}
	if events[2].Duration <= 0 {
		t.Error("finished event must carry a positive duration")
	}
}

func TestSnapshotCounters(t *testing.T) {
	p := New[int](2)
	if s := p.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("fresh pool snapshot = %+v, want zero", s)
	}

	// One execution, one completed-entry cache hit.
	p.Do(context.Background(), "a", "a", func(context.Context) (int, error) { return 1, nil })
	p.Do(context.Background(), "a", "a", func(context.Context) (int, error) { return 1, nil })
	// One failure (evicted, so Entries stays 1).
	p.Do(context.Background(), "b", "b", func(context.Context) (int, error) { return 0, errors.New("x") })

	s := p.Snapshot()
	if s.Executions != 2 || s.CacheHits != 1 || s.Failures != 1 {
		t.Errorf("snapshot = %+v, want 2 executions, 1 hit, 1 failure", s)
	}
	if s.Entries != 1 {
		t.Errorf("failed entry must be evicted: entries = %d, want 1", s.Entries)
	}
	if s.Queued != 0 || s.Inflight != 0 {
		t.Errorf("idle pool must report zero gauges, got %+v", s)
	}
	if got := s.HitRatio(); got != 1.0/3.0 {
		t.Errorf("HitRatio = %v, want 1/3", got)
	}
	if (Snapshot{}).HitRatio() != 0 {
		t.Error("idle HitRatio must be 0")
	}
}

func TestSnapshotGaugesMidFlight(t *testing.T) {
	p := New[int](1)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), "run", "run", func(context.Context) (int, error) {
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		p.Do(context.Background(), "wait", "wait", func(context.Context) (int, error) { return 2, nil })
	}()
	// Wait until the second job is queued behind the single worker slot.
	for {
		s := p.Snapshot()
		if s.Queued == 1 && s.Inflight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if s := p.Snapshot(); s.Queued != 0 || s.Inflight != 0 || s.Executions != 2 {
		t.Errorf("drained snapshot = %+v", s)
	}
}

func TestAddRemoveObserver(t *testing.T) {
	p := New[int](1)
	var a, b []Event
	removeA := p.AddObserver(func(e Event) { a = append(a, e) })
	removeB := p.AddObserver(func(e Event) { b = append(b, e) })
	p.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 1, nil })
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("both observers must see queued/started/finished: %d, %d", len(a), len(b))
	}
	removeB()
	p.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 1, nil })
	if len(a) != 4 {
		t.Errorf("remaining observer must see the cache hit: %d events", len(a))
	}
	if len(b) != 3 {
		t.Errorf("removed observer must see nothing new: %d events", len(b))
	}
	removeA()
	removeA() // double-remove is harmless
}

func TestAllRunsPlan(t *testing.T) {
	p := New[int](4)
	var execs atomic.Int64
	// 12 items over 4 distinct keys: each key runs once.
	items := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}
	err := All(context.Background(), p, items, func(i int) (string, string, func(context.Context) (int, error)) {
		key := fmt.Sprint(i)
		return key, key, func(context.Context) (int, error) {
			execs.Add(1)
			return i * i, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 4 {
		t.Errorf("plan with 4 distinct keys must run 4 jobs, ran %d", n)
	}
	if v, ok := p.Get("3"); !ok || v != 9 {
		t.Errorf("Get(3) = %d, %v", v, ok)
	}
	wantErr := errors.New("bad")
	err = All(context.Background(), p, []int{9}, func(i int) (string, string, func(context.Context) (int, error)) {
		return "err", "err", func(context.Context) (int, error) { return 0, wantErr }
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("All must surface job errors, got %v", err)
	}
}
