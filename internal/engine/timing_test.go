package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestEventTimingFields: the observer stream carries enough timing to rebuild
// a job's pipeline after the fact — every event is stamped, the queued event
// reports the memo-lookup and (missed) store-read costs, the finished event
// reports the write-behind cost, and a later cache hit reports its lookup.
func TestEventTimingFields(t *testing.T) {
	b := newMapBacking()
	var events []Event
	p := New(1, WithBacking[int](b), WithObserver[int](func(e Event) { events = append(events, e) }))

	before := time.Now()
	if _, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(context.Background(), "k", "k", nil); err != nil {
		t.Fatal(err)
	}

	byType := map[EventType]Event{}
	for _, e := range events {
		byType[e.Type] = e
		if e.Time.Before(before) || e.Time.After(time.Now()) {
			t.Errorf("%v event stamped %v, outside the test's run", e.Type, e.Time)
		}
	}
	q, ok := byType[EventQueued]
	if !ok {
		t.Fatal("no queued event")
	}
	if q.Lookup < 0 || q.StoreRead <= 0 {
		t.Errorf("queued event lookup=%v storeRead=%v; the missed backing read must be timed", q.Lookup, q.StoreRead)
	}
	f, ok := byType[EventFinished]
	if !ok {
		t.Fatal("no finished event")
	}
	if f.StoreWrite <= 0 {
		t.Errorf("finished event storeWrite=%v; the write-behind must be timed", f.StoreWrite)
	}
	h, ok := byType[EventCacheHit]
	if !ok {
		t.Fatal("no cache-hit event")
	}
	if h.Lookup < 0 {
		t.Errorf("cache-hit lookup=%v", h.Lookup)
	}

	// A fresh pool over the same backing store-hits, timing the read.
	events = nil
	p2 := New(1, WithBacking[int](b), WithObserver[int](func(e Event) { events = append(events, e) }))
	if _, err := p2.Do(context.Background(), "k", "k", nil); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventStoreHit {
		t.Fatalf("events = %v, want one store-hit", events)
	}
	if events[0].StoreRead <= 0 {
		t.Errorf("store-hit storeRead=%v; the backing read must be timed", events[0].StoreRead)
	}
}

// TestSnapshotLifetimeCounters: queued/started/done totals are monotonic and
// account for hits (which skip the queue) and failures (started but not done).
func TestSnapshotLifetimeCounters(t *testing.T) {
	p := New[int](2)
	ctx := context.Background()
	for i, key := range []string{"a", "b", "a"} { // "a" repeats: memo hit
		_, err := p.Do(ctx, key, key, func(context.Context) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Do(ctx, "boom", "boom", func(context.Context) (int, error) {
		return 0, errors.New("kaput")
	}); err == nil {
		t.Fatal("failing job reported success")
	}

	s := p.Snapshot()
	if s.QueuedTotal != 3 || s.StartedTotal != 3 {
		t.Errorf("queuedTotal=%d startedTotal=%d, want 3/3 (two fresh + one failure; the hit never queues)", s.QueuedTotal, s.StartedTotal)
	}
	if s.DoneTotal != 2 || s.Failures != 1 {
		t.Errorf("doneTotal=%d failures=%d, want 2/1", s.DoneTotal, s.Failures)
	}
}
