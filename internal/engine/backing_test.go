package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mapBacking is an in-memory Backing for tests, with operation counters.
type mapBacking struct {
	mu         sync.Mutex
	m          map[string]int
	gets, puts atomic.Int64
}

func newMapBacking() *mapBacking { return &mapBacking{m: make(map[string]int)} }

func (b *mapBacking) Get(key string) (int, bool) {
	b.gets.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBacking) Put(key string, val int) {
	b.puts.Add(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = val
}

// TestBackingWriteThenReadThrough: a successful execution populates the
// backing tier, and a fresh pool (a "restarted process") serves the same key
// from it without executing, counting a store hit and emitting a store-hit
// event.
func TestBackingWriteThenReadThrough(t *testing.T) {
	b := newMapBacking()
	p1 := New(2, WithBacking[int](b))
	v, err := p1.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if b.puts.Load() != 1 {
		t.Fatalf("success must write behind: %d puts", b.puts.Load())
	}

	var events []Event
	p2 := New(2, WithBacking[int](b), WithObserver[int](func(e Event) { events = append(events, e) }))
	v, err = p2.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
		t.Error("backing hit must not execute")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("read-through Do = %d, %v", v, err)
	}
	s := p2.Snapshot()
	if s.StoreHits != 1 || s.Executions != 0 || s.CacheHits != 0 {
		t.Errorf("snapshot = %+v, want 1 store hit, 0 executions", s)
	}
	if s.Entries != 1 {
		t.Errorf("store hit must memoize in memory: entries = %d", s.Entries)
	}
	if len(events) != 1 || events[0].Type != EventStoreHit {
		t.Errorf("events = %+v, want exactly one store-hit", events)
	}
	if got := s.HitRatio(); got != 1 {
		t.Errorf("HitRatio with only a store hit = %v, want 1", got)
	}

	// The second request on the same pool is an ordinary memo hit: the
	// backing is not consulted again.
	gets := b.gets.Load()
	p2.Do(context.Background(), "k", "k", func(context.Context) (int, error) { return 0, nil })
	if b.gets.Load() != gets {
		t.Error("memoized key must not re-read the backing tier")
	}
}

// TestBackingSingleflight: concurrent cold requests for one key coalesce
// around a single backing read — and when it misses, a single execution.
func TestBackingSingleflight(t *testing.T) {
	b := newMapBacking()
	p := New(4, WithBacking[int](b))
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
				execs.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Errorf("coalesced cold requests must execute once, got %d", n)
	}
	if n := b.gets.Load(); n != 1 {
		t.Errorf("coalesced cold requests must read the backing once, got %d", n)
	}
}

// TestBackingFailureNotStored: failed executions never reach the backing
// tier.
func TestBackingFailureNotStored(t *testing.T) {
	b := newMapBacking()
	p := New(1, WithBacking[int](b))
	if _, err := p.Do(context.Background(), "k", "k", func(context.Context) (int, error) {
		return 0, errors.New("boom")
	}); err == nil {
		t.Fatal("want error")
	}
	if b.puts.Load() != 0 {
		t.Error("failures must not be persisted")
	}
}
