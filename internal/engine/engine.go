// Package engine is a bounded worker pool with deterministic memoization:
// jobs are identified by a canonical key, executed at most once, and their
// results are cached and shared between all callers — concurrent requests
// for the same key coalesce onto one execution. The pool supports
// context.Context cancellation, per-job timeouts, and a structured observer
// stream (queued, started, finished, cache-hit) for cross-layer progress
// reporting.
//
// The pool is value-generic so higher layers (internal/exp, the CLIs) can
// memoize their own result types; it knows nothing about simulations.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// EventType classifies observer events.
type EventType int

// Observer event types, in lifecycle order.
const (
	// EventQueued fires when a fresh job enters the pool and is waiting
	// for a worker slot.
	EventQueued EventType = iota
	// EventStarted fires when a job acquires a worker slot and begins
	// executing.
	EventStarted
	// EventFinished fires when a job's function returns (Err carries its
	// failure, if any); Duration is the execution time.
	EventFinished
	// EventCacheHit fires when a request is satisfied by a completed (or
	// in-flight, once it completes) job with the same key.
	EventCacheHit
	// EventProgress fires when a running job reports mid-execution progress
	// (Progress carries the payload — e.g. an obs.IntervalSnapshot). Only
	// executing jobs emit it; cache hits replay nothing.
	EventProgress
	// EventStoreHit fires when a request misses the in-memory memo but is
	// satisfied by the pool's Backing tier (a persistent result store):
	// nothing queues or executes, and the value is memoized for later
	// callers.
	EventStoreHit
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventFinished:
		return "finished"
	case EventCacheHit:
		return "cache-hit"
	case EventProgress:
		return "progress"
	case EventStoreHit:
		return "store-hit"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one structured progress record.
type Event struct {
	Type  EventType
	Key   string
	Label string // human-readable job description
	// Time is when the event fired (stamped at emission). Observers that
	// rebuild a job's timeline — the crowserve span recorder — anchor their
	// derived intervals on it.
	Time time.Time
	// Duration is the job's execution time (EventFinished only).
	Duration time.Duration
	// Err is the job's failure (EventFinished only).
	Err error
	// Pending is the number of jobs queued or running when the event
	// fired, for "N left" progress displays.
	Pending int
	// Progress is the mid-execution payload (EventProgress only).
	Progress any
	// Lookup is the memo-consult cost: for EventCacheHit, Do-entry to
	// result availability (including the wait on an in-flight execution);
	// for EventQueued/EventStoreHit, the time spent deciding the request
	// was a memo miss.
	Lookup time.Duration
	// StoreRead is the Backing.Get duration (EventStoreHit and, with a
	// backing tier attached, EventQueued — the read that missed).
	StoreRead time.Duration
	// StoreWrite is the write-behind Backing.Put duration (EventFinished
	// after a successful execution with a backing tier).
	StoreWrite time.Duration
}

// Observer receives events. Implementations need no internal locking: the
// pool serializes event delivery.
type Observer func(Event)

// Snapshot is a point-in-time view of the pool's gauges and counters: the
// single source of truth behind the crowserve /metrics endpoint, progress
// dashboards, and tests — no test-only introspection required.
type Snapshot struct {
	// Queued is the number of jobs waiting for a worker slot.
	Queued int `json:"queued"`
	// Inflight is the number of jobs currently executing.
	Inflight int `json:"inflight"`
	// Entries is the number of memoized (completed or in-flight) cache
	// entries.
	Entries int `json:"entries"`
	// Executions counts job functions actually invoked (cache misses).
	Executions int64 `json:"executions"`
	// CacheHits counts requests satisfied by a memoized or coalesced
	// in-flight execution instead of a fresh one.
	CacheHits int64 `json:"cache_hits"`
	// StoreHits counts requests that missed the in-memory memo but were
	// satisfied by the Backing tier without executing.
	StoreHits int64 `json:"store_hits"`
	// Failures counts executions that returned an error (these entries
	// are evicted, so a later request retries).
	Failures int64 `json:"failures"`
	// QueuedTotal counts jobs that ever entered the queue (monotonic, so
	// rate() over a scrape works; Queued above is the instantaneous gauge).
	QueuedTotal int64 `json:"queued_total"`
	// StartedTotal counts jobs that acquired a worker slot and began
	// executing.
	StartedTotal int64 `json:"started_total"`
	// DoneTotal counts executions that completed successfully
	// (StartedTotal - DoneTotal - Failures = currently executing).
	DoneTotal int64 `json:"done_total"`
}

// HitRatio returns (CacheHits + StoreHits) / (CacheHits + StoreHits +
// Executions), the fraction of requests served without running a job
// function (0 when idle).
func (s Snapshot) HitRatio() float64 {
	hits := s.CacheHits + s.StoreHits
	total := hits + s.Executions
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Backing is a secondary result tier under the in-memory memo — typically a
// persistent, content-addressed store (internal/store). On a memo miss the
// pool consults Get before queueing the job for execution, and populates Put
// after a successful execution. Implementations must be safe for concurrent
// use; the pool holds no locks across calls. Results must be correct forever
// for their key (true for deterministic, canonically-keyed simulations) —
// the pool never invalidates a backing entry.
type Backing[V any] interface {
	// Get returns the stored value for key, if present and intact.
	Get(key string) (V, bool)
	// Put persists a successful result. Failures must be absorbed (they
	// cost durability, not correctness), so Put returns nothing.
	Put(key string, val V)
}

// Pool is a memoizing bounded worker pool. The zero value is not usable;
// call New.
type Pool[V any] struct {
	workers int
	timeout time.Duration
	backing Backing[V]

	slots chan struct{}

	obsMu  sync.Mutex
	obs    map[int]Observer
	obsSeq int

	mu      sync.Mutex
	entries map[string]*entry[V]
	pending int

	queued     int
	inflight   int
	executions int64
	cacheHits  int64
	storeHits  int64
	failures   int64

	queuedTotal  int64
	startedTotal int64
	doneTotal    int64
}

// entry is one memoized job: done closes when the result is available.
// abandoned marks an entry whose owner gave up before executing (cancelled
// while waiting for a worker slot); waiters observing it retry instead of
// inheriting the owner's cancellation.
type entry[V any] struct {
	done      chan struct{}
	val       V
	err       error
	abandoned bool
}

// Option configures a Pool.
type Option[V any] func(*Pool[V])

// WithTimeout bounds each job's execution time; a job whose context expires
// fails with context.DeadlineExceeded (the job function must honor its
// context). Zero means no per-job timeout.
func WithTimeout[V any](d time.Duration) Option[V] {
	return func(p *Pool[V]) { p.timeout = d }
}

// WithObserver attaches a structured progress observer.
func WithObserver[V any](obs Observer) Option[V] {
	return func(p *Pool[V]) { p.AddObserver(obs) }
}

// WithBacking attaches a secondary result tier: on a memo miss the pool
// reads through to it before executing, and writes successful results back
// to it. Singleflight is preserved around the backing read — concurrent cold
// requests for one key still cost one Get and at most one execution.
func WithBacking[V any](b Backing[V]) Option[V] {
	return func(p *Pool[V]) { p.backing = b }
}

// New builds a pool running at most workers jobs concurrently.
// workers <= 0 selects GOMAXPROCS.
func New[V any](workers int, opts ...Option[V]) *Pool[V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool[V]{
		workers: workers,
		slots:   make(chan struct{}, workers),
		entries: make(map[string]*entry[V]),
		obs:     make(map[int]Observer),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Workers returns the concurrency bound.
func (p *Pool[V]) Workers() int { return p.workers }

// AddObserver subscribes a new observer to the pool's event stream and
// returns a function that unsubscribes it. Observers may come and go while
// jobs run: the serving layer attaches one per streaming client. Like
// WithObserver, delivery is serialized, so observers need no locking.
func (p *Pool[V]) AddObserver(obs Observer) (remove func()) {
	p.obsMu.Lock()
	id := p.obsSeq
	p.obsSeq++
	p.obs[id] = obs
	p.obsMu.Unlock()
	return func() {
		p.obsMu.Lock()
		delete(p.obs, id)
		p.obsMu.Unlock()
	}
}

// Snapshot returns the pool's current gauges (queued, inflight, entries) and
// lifetime counters (executions, cache hits, failures).
func (p *Pool[V]) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{
		Queued:       p.queued,
		Inflight:     p.inflight,
		Entries:      len(p.entries),
		Executions:   p.executions,
		CacheHits:    p.cacheHits,
		StoreHits:    p.storeHits,
		Failures:     p.failures,
		QueuedTotal:  p.queuedTotal,
		StartedTotal: p.startedTotal,
		DoneTotal:    p.doneTotal,
	}
}

// emit delivers an event under a lock so observers need none of their own.
func (p *Pool[V]) emit(e Event) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	p.obsMu.Lock()
	defer p.obsMu.Unlock()
	for _, obs := range p.obs {
		obs(e)
	}
}

func (p *Pool[V]) pendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Do executes fn for key, or returns the memoized result of a previous or
// in-flight execution with the same key. Concurrent calls with equal keys
// coalesce: exactly one runs fn, the rest wait for its result. Execution is
// bounded by the pool's worker count; ctx cancels waiting and (for
// context-honoring fns) execution. With a Backing tier attached, a memo miss
// reads through to it before executing and a successful execution writes
// back to it.
func (p *Pool[V]) Do(ctx context.Context, key, label string, fn func(context.Context) (V, error)) (V, error) {
	t0 := time.Now()
	for {
		p.mu.Lock()
		if e, ok := p.entries[key]; ok {
			p.mu.Unlock()
			select {
			case <-e.done:
				if e.abandoned {
					// The owner was cancelled before executing; its
					// cancellation is not ours. Retry: the entry is
					// already forgotten, so the next pass either
					// becomes the new owner or coalesces onto one.
					continue
				}
				p.mu.Lock()
				p.cacheHits++
				p.mu.Unlock()
				p.emit(Event{Type: EventCacheHit, Key: key, Label: label, Pending: p.pendingCount(), Lookup: time.Since(t0)})
				return e.val, e.err
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
		}
		e := &entry[V]{done: make(chan struct{})}
		p.entries[key] = e
		p.pending++
		p.queued++
		p.queuedTotal++
		p.mu.Unlock()
		return p.execute(ctx, key, label, e, time.Since(t0), fn)
	}
}

// execute owns a freshly-created entry: consult the backing tier, then run
// fn under a worker slot and publish the result.
func (p *Pool[V]) execute(ctx context.Context, key, label string, e *entry[V], lookup time.Duration, fn func(context.Context) (V, error)) (V, error) {
	// Read-through: a backing hit completes the entry without queueing or
	// executing. Coalesced callers arriving during the read wait on e.done
	// as usual, so one Get serves them all.
	var readDur time.Duration
	if p.backing != nil {
		g0 := time.Now()
		v, ok := p.backing.Get(key)
		readDur = time.Since(g0)
		if ok {
			p.mu.Lock()
			e.val = v
			p.pending--
			p.queued--
			p.storeHits++
			p.mu.Unlock()
			close(e.done)
			p.emit(Event{Type: EventStoreHit, Key: key, Label: label, Pending: p.pendingCount(), Lookup: lookup, StoreRead: readDur})
			return v, nil
		}
	}

	p.emit(Event{Type: EventQueued, Key: key, Label: label, Pending: p.pendingCount(), Lookup: lookup, StoreRead: readDur})

	// Acquire a worker slot (or give up on cancellation: forget the
	// entry so a later call can retry). An already-expired context must
	// never execute — with a free slot, select would pick a ready case at
	// random — so it is checked first.
	if err := ctx.Err(); err != nil {
		p.abandon(key, e, err)
		var zero V
		return zero, err
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.abandon(key, e, ctx.Err())
		var zero V
		return zero, ctx.Err()
	}

	p.mu.Lock()
	p.queued--
	p.inflight++
	p.executions++
	p.startedTotal++
	p.mu.Unlock()

	p.emit(Event{Type: EventStarted, Key: key, Label: label, Pending: p.pendingCount()})
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if p.timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, p.timeout)
	}
	start := time.Now()
	val, err := fn(runCtx)
	dur := time.Since(start)
	cancel()
	<-p.slots

	p.mu.Lock()
	e.val, e.err = val, err
	p.pending--
	p.inflight--
	if err != nil {
		// Failed jobs are not memoized as successes, but current
		// waiters still receive the error; a later Do retries.
		p.failures++
		delete(p.entries, key)
	} else {
		p.doneTotal++
	}
	p.mu.Unlock()
	close(e.done)

	// Write-behind: persist after the result is published, so coalesced
	// waiters never wait on the disk. The executing caller absorbs the
	// write, which keeps "job done" ⇒ "result durable" for its submitter.
	var putDur time.Duration
	if err == nil && p.backing != nil {
		w0 := time.Now()
		p.backing.Put(key, val)
		putDur = time.Since(w0)
	}

	p.emit(Event{Type: EventFinished, Key: key, Label: label, Duration: dur, Err: err, Pending: p.pendingCount(), StoreWrite: putDur})
	return val, err
}

// Progress emits an EventProgress for a running job. Job functions (or the
// observability plumbing wrapped around them) call it to stream
// mid-execution state — interval telemetry, phase markers — to the pool's
// observers without touching the memoized result.
func (p *Pool[V]) Progress(key, label string, payload any) {
	p.emit(Event{Type: EventProgress, Key: key, Label: label, Progress: payload, Pending: p.pendingCount()})
}

// abandon removes a never-started entry and wakes any coalesced waiters.
// The waiters' own contexts may be perfectly live, so the entry is marked
// abandoned rather than completed with the owner's cancellation error: Do's
// wait path detects the mark and retries, and the first retrier becomes the
// new owner.
func (p *Pool[V]) abandon(key string, e *entry[V], err error) {
	p.mu.Lock()
	e.err = err
	e.abandoned = true
	p.pending--
	p.queued--
	delete(p.entries, key)
	p.mu.Unlock()
	close(e.done)
}

// Get returns the memoized result for key, if a completed execution exists.
func (p *Pool[V]) Get(key string) (V, bool) {
	p.mu.Lock()
	e, ok := p.entries[key]
	p.mu.Unlock()
	var zero V
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return zero, false
		}
		return e.val, true
	default:
		return zero, false
	}
}

// Len returns the number of memoized (completed or in-flight) entries.
func (p *Pool[V]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// All runs one Do per item concurrently (each bounded by the worker pool)
// and waits for all of them; it returns the first error encountered. It is
// the pool's "execute a declared plan" entry point: items sharing a key run
// once.
func All[V, T any](ctx context.Context, p *Pool[V], items []T,
	job func(T) (key, label string, fn func(context.Context) (V, error))) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(items))
	for _, it := range items {
		key, label, fn := job(it)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Do(ctx, key, label, fn); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	return <-errc
}
