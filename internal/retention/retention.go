// Package retention models DRAM data-retention behaviour: the statistics of
// weak cells (Section 4.2.1, Equations 1 and 2), Monte-Carlo sampling of
// weak rows per subarray, variable retention time (VRT) cells, and a
// retention-time profiler in the style the paper relies on (REAPER [87]).
package retention

import (
	"math"
	"math/rand"
)

// DefaultBER is the bit error rate the paper calculates for a 256 ms refresh
// interval from Liu et al.'s measurement of ~1000 weak cells in a 32 GiB
// module (Section 4.2.1).
const DefaultBER = 4e-9

// PWeakRow returns the probability that a row of cellsPerRow cells contains
// at least one weak cell (Equation 1):
//
//	P = 1 − (1 − BER)^cells
func PWeakRow(ber float64, cellsPerRow int) float64 {
	// Use log1p/expm1 for numerical stability with tiny BERs.
	return -math.Expm1(float64(cellsPerRow) * math.Log1p(-ber))
}

// PSubarrayMoreThan returns the probability that a subarray of `rows` rows
// contains more than n weak rows (Equation 2):
//
//	P = 1 − Σ_{k=0..n} C(rows,k) p^k (1−p)^(rows−k)
func PSubarrayMoreThan(n, rows int, pRow float64) float64 {
	sum := 0.0
	logP := math.Log(pRow)
	logQ := math.Log1p(-pRow)
	logC := 0.0 // log C(rows, 0)
	for k := 0; k <= n; k++ {
		if k > 0 {
			logC += math.Log(float64(rows-k+1)) - math.Log(float64(k))
		}
		sum += math.Exp(logC + float64(k)*logP + float64(rows-k)*logQ)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// PAnySubarrayMoreThan returns the probability that at least one of
// numSubarrays subarrays has more than n weak rows.
func PAnySubarrayMoreThan(n, rows int, pRow float64, numSubarrays int) float64 {
	p := PSubarrayMoreThan(n, rows, pRow)
	return -math.Expm1(float64(numSubarrays) * math.Log1p(-p))
}

// Profile records the weak rows of every subarray in a DRAM system, indexed
// as [channel][rank][bank][subarray] -> weak regular-row indices within the
// subarray.
type Profile struct {
	Weak [][][][][]int
}

// Geometry mirrors the fields of dram.Geometry that the sampler needs,
// avoiding a dependency on the device package.
type Geometry struct {
	Channels, Ranks, Banks, Subarrays, RowsPerSubarray int
}

// SampleProfile draws a weak-row profile with each row independently weak
// with probability pRow (the paper's experimentally-supported uniform-random
// model), using the given seed for reproducibility.
func SampleProfile(g Geometry, pRow float64, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	p := &Profile{}
	p.Weak = make([][][][][]int, g.Channels)
	for c := range p.Weak {
		p.Weak[c] = make([][][][]int, g.Ranks)
		for r := range p.Weak[c] {
			p.Weak[c][r] = make([][][]int, g.Banks)
			for b := range p.Weak[c][r] {
				p.Weak[c][r][b] = make([][]int, g.Subarrays)
				for s := range p.Weak[c][r][b] {
					var weak []int
					for row := 0; row < g.RowsPerSubarray; row++ {
						if rng.Float64() < pRow {
							weak = append(weak, row)
						}
					}
					p.Weak[c][r][b][s] = weak
				}
			}
		}
	}
	return p
}

// FixedProfile marks the first n rows of every subarray weak. The paper's
// CROW-ref evaluation conservatively assumes three weak rows per subarray
// (Section 8.2), far more than the statistical expectation.
func FixedProfile(g Geometry, n int, seed int64) *Profile {
	rng := rand.New(rand.NewSource(seed))
	p := &Profile{}
	p.Weak = make([][][][][]int, g.Channels)
	for c := range p.Weak {
		p.Weak[c] = make([][][][]int, g.Ranks)
		for r := range p.Weak[c] {
			p.Weak[c][r] = make([][][]int, g.Banks)
			for b := range p.Weak[c][r] {
				p.Weak[c][r][b] = make([][]int, g.Subarrays)
				for s := range p.Weak[c][r][b] {
					weak := make([]int, 0, n)
					for len(weak) < n {
						row := rng.Intn(g.RowsPerSubarray)
						dup := false
						for _, w := range weak {
							if w == row {
								dup = true
								break
							}
						}
						if !dup {
							weak = append(weak, row)
						}
					}
					p.Weak[c][r][b][s] = weak
				}
			}
		}
	}
	return p
}

// MaxWeakPerSubarray returns the largest weak-row count of any subarray.
func (p *Profile) MaxWeakPerSubarray() int {
	max := 0
	for _, ch := range p.Weak {
		for _, rk := range ch {
			for _, bk := range rk {
				for _, sa := range bk {
					if len(sa) > max {
						max = len(sa)
					}
				}
			}
		}
	}
	return max
}

// TotalWeak returns the total number of weak rows in the profile.
func (p *Profile) TotalWeak() int {
	n := 0
	for _, ch := range p.Weak {
		for _, rk := range ch {
			for _, bk := range rk {
				for _, sa := range bk {
					n += len(sa)
				}
			}
		}
	}
	return n
}

// VRTCell models one variable-retention-time cell that nondeterministically
// transitions between a high- and a low-retention state (Section 4.2.3).
type VRTCell struct {
	Channel, Rank, Bank, Subarray, Row int
	LowRetention                       bool // currently weak
}

// VRTModel flips a population of VRT cells between retention states; a
// periodic profiling pass (the paper's [41, 87, 88]) observes the current
// state and drives dynamic remapping.
type VRTModel struct {
	Cells []VRTCell
	// FlipProb is the per-profiling-interval probability that a cell
	// toggles between its high- and low-retention states.
	FlipProb float64
	rng      *rand.Rand
}

// NewVRTModel places n VRT cells uniformly at random.
func NewVRTModel(g Geometry, n int, flipProb float64, seed int64) *VRTModel {
	rng := rand.New(rand.NewSource(seed))
	cells := make([]VRTCell, n)
	for i := range cells {
		cells[i] = VRTCell{
			Channel:  rng.Intn(g.Channels),
			Rank:     rng.Intn(g.Ranks),
			Bank:     rng.Intn(g.Banks),
			Subarray: rng.Intn(g.Subarrays),
			Row:      rng.Intn(g.RowsPerSubarray),
		}
	}
	return &VRTModel{Cells: cells, FlipProb: flipProb, rng: rng}
}

// Step advances one profiling interval, toggling cell states.
func (v *VRTModel) Step() {
	for i := range v.Cells {
		if v.rng.Float64() < v.FlipProb {
			v.Cells[i].LowRetention = !v.Cells[i].LowRetention
		}
	}
}

// NewlyWeak returns the cells currently in the low-retention state that are
// not already covered by the profile.
func (v *VRTModel) NewlyWeak(p *Profile) []VRTCell {
	var out []VRTCell
	for _, c := range v.Cells {
		if !c.LowRetention {
			continue
		}
		covered := false
		for _, w := range p.Weak[c.Channel][c.Rank][c.Bank][c.Subarray] {
			if w == c.Row {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, c)
		}
	}
	return out
}

// Add records a newly discovered weak row in the profile (idempotent).
func (p *Profile) Add(c VRTCell) {
	weak := p.Weak[c.Channel][c.Rank][c.Bank][c.Subarray]
	for _, w := range weak {
		if w == c.Row {
			return
		}
	}
	p.Weak[c.Channel][c.Rank][c.Bank][c.Subarray] = append(weak, c.Row)
}
