package retention

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The on-disk profile format is one weak row per line:
//
//	<channel> <rank> <bank> <subarray> <row>
//
// with '#' comments — the natural output of a retention-time profiling pass
// (REAPER-style [87]) that the memory controller loads at boot.

// WriteProfile serializes a profile.
func WriteProfile(w io.Writer, p *Profile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# retention profile: channel rank bank subarray row")
	for ch, chw := range p.Weak {
		for rk, rkw := range chw {
			for bk, bkw := range rkw {
				for sa, weak := range bkw {
					for _, row := range weak {
						if _, err := fmt.Fprintf(bw, "%d %d %d %d %d\n", ch, rk, bk, sa, row); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return bw.Flush()
}

// ReadProfile parses a profile for the given geometry, validating every
// coordinate.
func ReadProfile(r io.Reader, g Geometry) (*Profile, error) {
	p := emptyProfile(g)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ch, rk, bk, sa, row int
		if _, err := fmt.Sscanf(text, "%d %d %d %d %d", &ch, &rk, &bk, &sa, &row); err != nil {
			return nil, fmt.Errorf("retention: line %d: %q: %v", line, text, err)
		}
		if ch < 0 || ch >= g.Channels || rk < 0 || rk >= g.Ranks ||
			bk < 0 || bk >= g.Banks || sa < 0 || sa >= g.Subarrays ||
			row < 0 || row >= g.RowsPerSubarray {
			return nil, fmt.Errorf("retention: line %d: coordinate out of range: %q", line, text)
		}
		p.Add(VRTCell{Channel: ch, Rank: rk, Bank: bk, Subarray: sa, Row: row})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

func emptyProfile(g Geometry) *Profile {
	p := &Profile{}
	p.Weak = make([][][][][]int, g.Channels)
	for c := range p.Weak {
		p.Weak[c] = make([][][][]int, g.Ranks)
		for r := range p.Weak[c] {
			p.Weak[c][r] = make([][][]int, g.Banks)
			for b := range p.Weak[c][r] {
				p.Weak[c][r][b] = make([][]int, g.Subarrays)
			}
		}
	}
	return p
}
