package retention

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	g := smallGeo()
	orig := SampleProfile(g, 0.05, 42)
	var buf bytes.Buffer
	if err := WriteProfile(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWeak() != orig.TotalWeak() {
		t.Fatalf("round trip lost rows: %d vs %d", got.TotalWeak(), orig.TotalWeak())
	}
	for c := range orig.Weak {
		for r := range orig.Weak[c] {
			for b := range orig.Weak[c][r] {
				for s := range orig.Weak[c][r][b] {
					a, z := orig.Weak[c][r][b][s], got.Weak[c][r][b][s]
					if len(a) != len(z) {
						t.Fatalf("subarray %d/%d/%d/%d differs", c, r, b, s)
					}
					seen := map[int]bool{}
					for _, row := range a {
						seen[row] = true
					}
					for _, row := range z {
						if !seen[row] {
							t.Fatalf("row %d not in original", row)
						}
					}
				}
			}
		}
	}
}

func TestReadProfileValidation(t *testing.T) {
	g := smallGeo()
	cases := []string{
		"not numbers at all",
		"0 0 0 0 9999", // row out of range
		"99 0 0 0 1",   // channel out of range
		"0 0 99 0 1",   // bank out of range
		"-1 0 0 0 1",   // negative
	}
	for _, in := range cases {
		if _, err := ReadProfile(strings.NewReader(in), g); err == nil {
			t.Errorf("ReadProfile(%q) must fail", in)
		}
	}
	// Comments and blanks are fine; duplicates are deduplicated.
	in := "# header\n\n0 0 0 0 5\n0 0 0 0 5\n"
	p, err := ReadProfile(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWeak() != 1 {
		t.Errorf("TotalWeak = %d, want 1 (dedup)", p.TotalWeak())
	}
}
