package retention

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPWeakRowPaperValue(t *testing.T) {
	// 8 KiB row = 65536 cells at BER 4e-9: P ≈ 2.62e-4.
	p := PWeakRow(DefaultBER, 64*1024)
	if math.Abs(p-2.62e-4)/2.62e-4 > 0.01 {
		t.Errorf("PWeakRow = %.4g, want ≈ 2.62e-4", p)
	}
}

// TestSubarrayProbabilitiesPaperValues checks Section 4.2.1's table: for a
// chip with 8 banks, 128 subarrays/bank, 512 rows/subarray and 8 KiB rows,
// the probability of ANY subarray having more than 1/2/4/8 weak rows is
// 0.99 / 3.1e-1 / 3.3e-4 / 3.3e-11.
func TestSubarrayProbabilitiesPaperValues(t *testing.T) {
	pRow := PWeakRow(DefaultBER, 64*1024)
	const subarrays = 8 * 128
	cases := []struct {
		n    int
		want float64
		rel  float64
	}{
		{1, 0.99, 0.02},
		{2, 3.1e-1, 0.10},
		{4, 3.3e-4, 0.15},
		{8, 3.3e-11, 0.35},
	}
	for _, c := range cases {
		got := PAnySubarrayMoreThan(c.n, 512, pRow, subarrays)
		if math.Abs(got-c.want)/c.want > c.rel {
			t.Errorf("P(any subarray > %d weak rows) = %.3g, want ≈ %.3g", c.n, got, c.want)
		}
	}
}

// TestPSubarrayMonotonic: allowing more weak rows can only decrease the
// overflow probability — property test.
func TestPSubarrayMonotonic(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw % 16)
		p := float64(pRaw+1) / 70000 // (0, ~0.94)
		a := PSubarrayMoreThan(n, 512, p)
		b := PSubarrayMoreThan(n+1, 512, p)
		return b <= a+1e-12 && a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func smallGeo() Geometry {
	return Geometry{Channels: 2, Ranks: 1, Banks: 4, Subarrays: 8, RowsPerSubarray: 64}
}

func TestSampleProfileDeterministic(t *testing.T) {
	g := smallGeo()
	a := SampleProfile(g, 0.05, 42)
	b := SampleProfile(g, 0.05, 42)
	if a.TotalWeak() != b.TotalWeak() {
		t.Error("same seed must give the same profile")
	}
	c := SampleProfile(g, 0.05, 43)
	if a.TotalWeak() == 0 || c.TotalWeak() == 0 {
		t.Error("with p=0.05 over 4096 rows, some weak rows are expected")
	}
}

func TestSampleProfileRate(t *testing.T) {
	g := Geometry{Channels: 1, Ranks: 1, Banks: 8, Subarrays: 16, RowsPerSubarray: 512}
	p := SampleProfile(g, 0.01, 7)
	total := 8 * 16 * 512
	got := float64(p.TotalWeak()) / float64(total)
	if got < 0.005 || got > 0.02 {
		t.Errorf("weak rate = %.4f, want ≈ 0.01", got)
	}
}

func TestFixedProfile(t *testing.T) {
	g := smallGeo()
	p := FixedProfile(g, 3, 1)
	if p.MaxWeakPerSubarray() != 3 {
		t.Errorf("MaxWeakPerSubarray = %d, want 3", p.MaxWeakPerSubarray())
	}
	if p.TotalWeak() != 2*1*4*8*3 {
		t.Errorf("TotalWeak = %d, want %d", p.TotalWeak(), 2*4*8*3)
	}
	// Rows must be distinct within a subarray.
	for _, ch := range p.Weak {
		for _, rk := range ch {
			for _, bk := range rk {
				for _, sa := range bk {
					seen := map[int]bool{}
					for _, r := range sa {
						if seen[r] {
							t.Fatal("duplicate weak row in subarray")
						}
						seen[r] = true
					}
				}
			}
		}
	}
}

func TestVRTModel(t *testing.T) {
	g := smallGeo()
	v := NewVRTModel(g, 20, 0.5, 9)
	p := FixedProfile(g, 0, 1)
	if n := len(v.NewlyWeak(p)); n != 0 {
		t.Errorf("no cell starts weak, got %d", n)
	}
	for i := 0; i < 10; i++ {
		v.Step()
	}
	newly := v.NewlyWeak(p)
	if len(newly) == 0 {
		t.Fatal("after stepping, some VRT cells must be in the low-retention state")
	}
	for _, c := range newly {
		p.Add(c)
	}
	if len(v.NewlyWeak(p)) != 0 {
		t.Error("after adding to the profile, no cell is newly weak")
	}
	// Add is idempotent.
	before := p.TotalWeak()
	p.Add(newly[0])
	if p.TotalWeak() != before {
		t.Error("Add must be idempotent")
	}
}
