package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/metrics"
	"crowdram/internal/trace"
)

// Fig8Result holds Figure 8's data: per-application single-core speedup and
// CROW-table hit rate for CROW-1/8/256 and the ideal CROW-cache.
type Fig8Result struct {
	Configs []int // copy-row counts
	Apps    []string
	MPKI    map[string]float64
	Speedup map[int]map[string]float64 // config -> app -> speedup
	HitRate map[int]map[string]float64
	Ideal   map[string]float64

	AvgSpeedup map[int]float64
	AvgHitRate map[int]float64
	AvgIdeal   float64
	// RestoreShare is the fraction of all activations that were
	// eviction-driven full-restore operations, for CROW-1 (paper: 0.6 %).
	RestoreShare float64
}

var fig8Configs = []int{1, 8, 256}

// Fig8Plan declares Figure 8's runs.
func Fig8Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, app := range r.singleApps() {
		plan = append(plan, crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
		for _, c := range fig8Configs {
			plan = append(plan, crow.Options{Mechanism: crow.Cache, CopyRows: c, Workloads: []string{app.Name}})
		}
		plan = append(plan, crow.Options{Mechanism: crow.IdealCache, Workloads: []string{app.Name}})
	}
	return plan
}

// Fig8 runs the single-core CROW-cache evaluation.
func Fig8(r *Runner) (Fig8Result, error) {
	res := Fig8Result{
		Configs: fig8Configs,
		MPKI:    map[string]float64{},
		Speedup: map[int]map[string]float64{},
		HitRate: map[int]map[string]float64{},
		Ideal:   map[string]float64{},
	}
	for _, c := range fig8Configs {
		res.Speedup[c] = map[string]float64{}
		res.HitRate[c] = map[string]float64{}
	}
	var restoreOps, acts int64
	for _, app := range r.singleApps() {
		res.Apps = append(res.Apps, app.Name)
		base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
		if err != nil {
			return Fig8Result{}, err
		}
		res.MPKI[app.Name] = base.MPKI[0]
		for _, c := range fig8Configs {
			rep, err := r.Run(crow.Options{Mechanism: crow.Cache, CopyRows: c, Workloads: []string{app.Name}})
			if err != nil {
				return Fig8Result{}, err
			}
			res.Speedup[c][app.Name] = metrics.Speedup(rep.IPC[0], base.IPC[0])
			res.HitRate[c][app.Name] = rep.CROWTableHitRate
			if c == 1 {
				restoreOps += rep.RestoreOps
				acts += rep.ACT + rep.ACTt + rep.ACTc
			}
		}
		ideal, err := r.Run(crow.Options{Mechanism: crow.IdealCache, Workloads: []string{app.Name}})
		if err != nil {
			return Fig8Result{}, err
		}
		res.Ideal[app.Name] = metrics.Speedup(ideal.IPC[0], base.IPC[0])
	}
	res.AvgSpeedup = map[int]float64{}
	res.AvgHitRate = map[int]float64{}
	for _, c := range fig8Configs {
		var sp, hr []float64
		for _, a := range res.Apps {
			sp = append(sp, res.Speedup[c][a])
			hr = append(hr, res.HitRate[c][a])
		}
		res.AvgSpeedup[c] = metrics.Mean(sp)
		res.AvgHitRate[c] = metrics.Mean(hr)
	}
	var id []float64
	for _, a := range res.Apps {
		id = append(id, res.Ideal[a])
	}
	res.AvgIdeal = metrics.Mean(id)
	if acts > 0 {
		res.RestoreShare = float64(restoreOps) / float64(acts)
	}
	return res, nil
}

// Table renders Figure 8.
func (f Fig8Result) Table() Table {
	t := Table{
		Title:  "Figure 8: single-core CROW-cache speedup and CROW-table hit rate",
		Header: []string{"app", "MPKI", "CROW-1", "CROW-8", "CROW-256", "Ideal", "hit-1", "hit-8", "hit-256"},
		Notes: []string{
			fmt.Sprintf("avg speedup CROW-1/8/256 = %s / %s / %s (paper: +5.5%% / +7.1%% / +7.8%%)",
				pct(f.AvgSpeedup[1]), pct(f.AvgSpeedup[8]), pct(f.AvgSpeedup[256])),
			fmt.Sprintf("avg hit rate CROW-1/8/256 = %s / %s / %s (paper: 68.8%% / 85.3%% / 91.1%%)",
				pct2(f.AvgHitRate[1]), pct2(f.AvgHitRate[8]), pct2(f.AvgHitRate[256])),
			fmt.Sprintf("CROW-1 restore ops = %s of activations (paper: 0.6%%)", pct2(f.RestoreShare)),
		},
	}
	for _, a := range f.Apps {
		t.Rows = append(t.Rows, []string{
			a, fmt.Sprintf("%.1f", f.MPKI[a]),
			pct(f.Speedup[1][a]), pct(f.Speedup[8][a]), pct(f.Speedup[256][a]), pct(f.Ideal[a]),
			pct2(f.HitRate[1][a]), pct2(f.HitRate[8][a]), pct2(f.HitRate[256][a]),
		})
	}
	return t
}

// GroupStat is one workload group's speedup distribution.
type GroupStat struct{ Avg, Min, Max float64 }

// Fig9Result holds Figure 9's data: four-core weighted speedup per workload
// group for CROW-1, CROW-8 and the ideal CROW-cache.
type Fig9Result struct {
	Groups  []string
	Configs []string // "CROW-1", "CROW-8", "Ideal"
	Stats   map[string]map[string]GroupStat
}

func fig9Opts() map[string]crow.Options {
	return map[string]crow.Options{
		"CROW-1": {Mechanism: crow.Cache, CopyRows: 1},
		"CROW-8": {Mechanism: crow.Cache, CopyRows: 8},
		"Ideal":  {Mechanism: crow.IdealCache},
	}
}

// fig9Mixes returns the group's mixes, seeded as the reduce phase seeds them.
func fig9Mixes(r *Runner, gi int, classes []trace.Class) []trace.Mix {
	return trace.MakeMixes(classes, r.Scale.MixesPerGroup, r.Scale.Seed+int64(gi))
}

// Fig9Plan declares Figure 9's runs, including the alone-run baselines the
// weighted speedups depend on.
func Fig9Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	for gi, classes := range trace.Groups {
		mixes := fig9Mixes(r, gi, classes)
		for _, mix := range mixes {
			apps := trace.Names(mix.Apps)
			plan = append(plan, crow.Options{Mechanism: crow.Baseline, Workloads: apps})
			for _, o := range fig9Opts() {
				o.Workloads = apps
				plan = append(plan, o)
			}
		}
		plan = append(plan, alonePlan(mixes, crow.Options{})...)
	}
	return plan
}

// Fig9 runs the four-core CROW-cache evaluation.
func Fig9(r *Runner) (Fig9Result, error) {
	res := Fig9Result{
		Configs: []string{"CROW-1", "CROW-8", "Ideal"},
		Stats:   map[string]map[string]GroupStat{},
	}
	opts := fig9Opts()
	for gi, classes := range trace.Groups {
		gname := trace.GroupName(classes)
		res.Groups = append(res.Groups, gname)
		mixes := fig9Mixes(r, gi, classes)
		sp := map[string][]float64{}
		for _, mix := range mixes {
			apps := trace.Names(mix.Apps)
			env := crow.Options{}
			baseRep, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: apps})
			if err != nil {
				return Fig9Result{}, err
			}
			wsBase, err := r.ws(baseRep, apps, env)
			if err != nil {
				return Fig9Result{}, err
			}
			for name, o := range opts {
				o.Workloads = apps
				rep, err := r.Run(o)
				if err != nil {
					return Fig9Result{}, err
				}
				wsMech, err := r.ws(rep, apps, env)
				if err != nil {
					return Fig9Result{}, err
				}
				sp[name] = append(sp[name], metrics.Speedup(wsMech, wsBase))
			}
		}
		res.Stats[gname] = map[string]GroupStat{}
		for name, vals := range sp {
			min, max := metrics.MinMax(vals)
			res.Stats[gname][name] = GroupStat{Avg: metrics.Mean(vals), Min: min, Max: max}
		}
	}
	return res, nil
}

// Avg returns the mean speedup of a config across all groups.
func (f Fig9Result) Avg(config string) float64 {
	var v []float64
	for _, g := range f.Groups {
		v = append(v, f.Stats[g][config].Avg)
	}
	return metrics.Mean(v)
}

// Table renders Figure 9.
func (f Fig9Result) Table() Table {
	t := Table{
		Title:  "Figure 9: four-core weighted speedup by workload group",
		Header: []string{"group", "CROW-1", "CROW-8", "Ideal", "CROW-8 min..max"},
		Notes: []string{
			fmt.Sprintf("avg CROW-8 = %s; paper: +7.4%% for HHHH, +0.4%% for LLLL", pct(f.Avg("CROW-8"))),
		},
	}
	for _, g := range f.Groups {
		s := f.Stats[g]
		t.Rows = append(t.Rows, []string{
			g, pct(s["CROW-1"].Avg), pct(s["CROW-8"].Avg), pct(s["Ideal"].Avg),
			fmt.Sprintf("%s..%s", pct(s["CROW-8"].Min), pct(s["CROW-8"].Max)),
		})
	}
	return t
}

// Fig10Result holds Figure 10's data: normalized DRAM energy with
// CROW-cache for single-core and four-core workloads.
type Fig10Result struct {
	SingleCore float64 // CROW-8 energy / baseline energy, averaged
	FourCore   float64
}

// Fig10Plan declares Figure 10's runs (all shared with Figure 8 where the
// workloads overlap; the engine coalesces them).
func Fig10Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, app := range r.singleApps() {
		plan = append(plan,
			crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}},
			crow.Options{Mechanism: crow.Cache, CopyRows: 8, Workloads: []string{app.Name}})
	}
	for gi, classes := range trace.Groups {
		if trace.GroupName(classes) == "LLLL" {
			continue
		}
		for _, mix := range fig9Mixes(r, gi, classes) {
			apps := trace.Names(mix.Apps)
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, Workloads: apps},
				crow.Options{Mechanism: crow.Cache, CopyRows: 8, Workloads: apps})
		}
	}
	return plan
}

// Fig10 runs the CROW-cache energy evaluation.
func Fig10(r *Runner) (Fig10Result, error) {
	var res Fig10Result
	var single []float64
	for _, app := range r.singleApps() {
		base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
		if err != nil {
			return Fig10Result{}, err
		}
		rep, err := r.Run(crow.Options{Mechanism: crow.Cache, CopyRows: 8, Workloads: []string{app.Name}})
		if err != nil {
			return Fig10Result{}, err
		}
		single = append(single, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
	}
	res.SingleCore = metrics.Mean(single)

	var four []float64
	for gi, classes := range trace.Groups {
		if trace.GroupName(classes) == "LLLL" {
			continue // negligible DRAM activity
		}
		for _, mix := range fig9Mixes(r, gi, classes) {
			apps := trace.Names(mix.Apps)
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: apps})
			if err != nil {
				return Fig10Result{}, err
			}
			rep, err := r.Run(crow.Options{Mechanism: crow.Cache, CopyRows: 8, Workloads: apps})
			if err != nil {
				return Fig10Result{}, err
			}
			four = append(four, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
		}
	}
	res.FourCore = metrics.Mean(four)
	return res, nil
}

// Table renders Figure 10.
func (f Fig10Result) Table() Table {
	return Table{
		Title:  "Figure 10: DRAM energy with CROW-cache (normalized to baseline)",
		Header: []string{"workloads", "normalized energy", "paper"},
		Rows: [][]string{
			{"single-core", fmt.Sprintf("%.3f", f.SingleCore), "0.918 (-8.2%)"},
			{"four-core", fmt.Sprintf("%.3f", f.FourCore), "0.931 (-6.9%)"},
		},
	}
}

// Fig11Row is one in-DRAM caching design point.
type Fig11Row struct {
	Name        string
	Speedup     float64 // avg single-core speedup vs baseline
	EnergyRatio float64
	AreaOvh     float64
}

// Fig11Result holds Figure 11's comparison of CROW-cache with TL-DRAM and
// SALP.
type Fig11Result struct{ Rows []Fig11Row }

func fig11Configs() []struct {
	name string
	o    crow.Options
} {
	return []struct {
		name string
		o    crow.Options
	}{
		{"CROW-1", crow.Options{Mechanism: crow.Cache, CopyRows: 1}},
		{"CROW-8", crow.Options{Mechanism: crow.Cache, CopyRows: 8}},
		{"TL-DRAM-1", crow.Options{Mechanism: crow.TLDRAM, TLDRAMNearRows: 1}},
		{"TL-DRAM-8", crow.Options{Mechanism: crow.TLDRAM, TLDRAMNearRows: 8}},
		{"SALP-128", crow.Options{Mechanism: crow.SALP, SALPSubarrays: 128}},
		{"SALP-128-O", crow.Options{Mechanism: crow.SALP, SALPSubarrays: 128, SALPOpenPage: true}},
		{"SALP-256-O", crow.Options{Mechanism: crow.SALP, SALPSubarrays: 256, SALPOpenPage: true}},
	}
}

// Fig11Plan declares Figure 11's runs.
func Fig11Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, app := range r.singleApps() {
		plan = append(plan, crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
		for _, cfg := range fig11Configs() {
			o := cfg.o
			o.Workloads = []string{app.Name}
			plan = append(plan, o)
		}
	}
	return plan
}

// Fig11 runs the baseline-comparison evaluation.
func Fig11(r *Runner) (Fig11Result, error) {
	var res Fig11Result
	apps := r.singleApps()
	for _, cfg := range fig11Configs() {
		var sp, en []float64
		var area float64
		for _, app := range apps {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
			if err != nil {
				return Fig11Result{}, err
			}
			o := cfg.o
			o.Workloads = []string{app.Name}
			rep, err := r.Run(o)
			if err != nil {
				return Fig11Result{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
			area = rep.ChipAreaOverhead
		}
		res.Rows = append(res.Rows, Fig11Row{
			Name: cfg.name, Speedup: metrics.Mean(sp),
			EnergyRatio: metrics.Mean(en), AreaOvh: area,
		})
	}
	return res, nil
}

// Row returns the named design point.
func (f Fig11Result) Row(name string) Fig11Row {
	for _, r := range f.Rows {
		if r.Name == name {
			return r
		}
	}
	return Fig11Row{}
}

// Table renders Figure 11.
func (f Fig11Result) Table() Table {
	t := Table{
		Title:  "Figure 11: CROW-cache vs TL-DRAM vs SALP (single-core)",
		Header: []string{"config", "speedup", "energy ratio", "chip area ovh"},
		Notes: []string{
			"paper: CROW-8 +7.1% / -8.2% energy / 0.48% area;",
			"TL-DRAM-8 +13.8% speedup but 6.9% area; SALP-256-O +58.4% energy, 28.9% area",
		},
	}
	for _, r := range f.Rows {
		t.Rows = append(t.Rows, []string{r.Name, pct(r.Speedup), fmt.Sprintf("%.3f", r.EnergyRatio), pct2(r.AreaOvh)})
	}
	return t
}

// Fig12Row is one application's prefetcher interaction data.
type Fig12Row struct {
	App              string
	Pref, CROW, Both float64 // speedup vs no-prefetch baseline
}

// Fig12Result holds Figure 12's data.
type Fig12Result struct {
	Rows []Fig12Row
	// AvgGain is the average speedup of prefetcher+CROW-cache over the
	// prefetcher alone (paper: +5.7 %).
	AvgGain float64
}

// fig12Apps is Figure 12's representative workload sample (as the paper
// uses), unless the scale restricts the suite.
func fig12Apps(r *Runner) []string {
	if r.Scale.SingleApps != nil {
		return r.Scale.SingleApps
	}
	return []string{"libq", "lbm", "mcf", "soplex", "omnetpp", "stream-copy"}
}

// Fig12Plan declares Figure 12's runs.
func Fig12Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, app := range fig12Apps(r) {
		w := []string{app}
		plan = append(plan,
			crow.Options{Mechanism: crow.Baseline, Workloads: w},
			crow.Options{Mechanism: crow.Baseline, Workloads: w, Prefetch: true},
			crow.Options{Mechanism: crow.Cache, Workloads: w},
			crow.Options{Mechanism: crow.Cache, Workloads: w, Prefetch: true})
	}
	return plan
}

// Fig12 runs the prefetcher-interaction evaluation on a representative
// sample of workloads (as the paper does).
func Fig12(r *Runner) (Fig12Result, error) {
	var res Fig12Result
	var gains []float64
	for _, app := range fig12Apps(r) {
		w := []string{app}
		base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: w})
		if err != nil {
			return Fig12Result{}, err
		}
		pref, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: w, Prefetch: true})
		if err != nil {
			return Fig12Result{}, err
		}
		cache, err := r.Run(crow.Options{Mechanism: crow.Cache, Workloads: w})
		if err != nil {
			return Fig12Result{}, err
		}
		both, err := r.Run(crow.Options{Mechanism: crow.Cache, Workloads: w, Prefetch: true})
		if err != nil {
			return Fig12Result{}, err
		}
		row := Fig12Row{
			App:  app,
			Pref: metrics.Speedup(pref.IPC[0], base.IPC[0]),
			CROW: metrics.Speedup(cache.IPC[0], base.IPC[0]),
			Both: metrics.Speedup(both.IPC[0], base.IPC[0]),
		}
		res.Rows = append(res.Rows, row)
		gains = append(gains, metrics.Speedup(both.IPC[0], pref.IPC[0]))
	}
	res.AvgGain = metrics.Mean(gains)
	return res, nil
}

// Table renders Figure 12.
func (f Fig12Result) Table() Table {
	t := Table{
		Title:  "Figure 12: CROW-cache and prefetching (speedup vs no-prefetch baseline)",
		Header: []string{"app", "prefetcher", "CROW-cache", "prefetcher+CROW"},
		Notes:  []string{fmt.Sprintf("CROW-cache adds %s on top of the prefetcher (paper: +5.7%%)", pct(f.AvgGain))},
	}
	for _, r := range f.Rows {
		t.Rows = append(t.Rows, []string{r.App, pct(r.Pref), pct(r.CROW), pct(r.Both)})
	}
	return t
}

// Fig13Point is one density's CROW-ref result.
type Fig13Point struct {
	DensityGbit   int
	SingleSpeedup float64
	SingleEnergy  float64 // normalized
	FourSpeedup   float64
	FourEnergy    float64
}

// Fig13Result holds Figure 13's data.
type Fig13Result struct{ Points []Fig13Point }

var fig13Densities = []int{8, 16, 32, 64}

// fig13Mixes returns Figure 13's HHHH mixes (shared seed with Figure 14).
func fig13Mixes(r *Runner) []trace.Mix {
	return trace.MakeMixes([]trace.Class{trace.High, trace.High, trace.High, trace.High},
		r.Scale.MixesPerGroup, r.Scale.Seed+4)
}

// Fig13Plan declares Figure 13's runs, including the per-density alone-run
// baselines.
func Fig13Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	hhhh := fig13Mixes(r)
	for _, d := range fig13Densities {
		for _, app := range r.singleApps() {
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, DensityGbit: d, Workloads: []string{app.Name}},
				crow.Options{Mechanism: crow.Ref, DensityGbit: d, Workloads: []string{app.Name}})
		}
		for _, mix := range hhhh {
			apps := trace.Names(mix.Apps)
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, DensityGbit: d, Workloads: apps},
				crow.Options{Mechanism: crow.Ref, DensityGbit: d, Workloads: apps})
		}
		plan = append(plan, alonePlan(hhhh, crow.Options{DensityGbit: d})...)
	}
	return plan
}

// Fig13 runs the CROW-ref evaluation across chip densities.
func Fig13(r *Runner) (Fig13Result, error) {
	var res Fig13Result
	hhhh := fig13Mixes(r)
	for _, d := range fig13Densities {
		var p Fig13Point
		p.DensityGbit = d
		env := crow.Options{DensityGbit: d}

		var sp, en []float64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: d, Workloads: []string{app.Name}})
			if err != nil {
				return Fig13Result{}, err
			}
			rep, err := r.Run(crow.Options{Mechanism: crow.Ref, DensityGbit: d, Workloads: []string{app.Name}})
			if err != nil {
				return Fig13Result{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
		}
		p.SingleSpeedup = metrics.Mean(sp)
		p.SingleEnergy = metrics.Mean(en)

		var fsp, fen []float64
		for _, mix := range hhhh {
			apps := trace.Names(mix.Apps)
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: d, Workloads: apps})
			if err != nil {
				return Fig13Result{}, err
			}
			rep, err := r.Run(crow.Options{Mechanism: crow.Ref, DensityGbit: d, Workloads: apps})
			if err != nil {
				return Fig13Result{}, err
			}
			wsBase, err := r.ws(base, apps, env)
			if err != nil {
				return Fig13Result{}, err
			}
			wsMech, err := r.ws(rep, apps, env)
			if err != nil {
				return Fig13Result{}, err
			}
			fsp = append(fsp, metrics.Speedup(wsMech, wsBase))
			fen = append(fen, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
		}
		p.FourSpeedup = metrics.Mean(fsp)
		p.FourEnergy = metrics.Mean(fen)
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Point returns the result at the given density.
func (f Fig13Result) Point(densityGbit int) Fig13Point {
	for _, p := range f.Points {
		if p.DensityGbit == densityGbit {
			return p
		}
	}
	return Fig13Point{}
}

// Table renders Figure 13.
func (f Fig13Result) Table() Table {
	t := Table{
		Title:  "Figure 13: CROW-ref speedup and DRAM energy vs chip density",
		Header: []string{"density", "1-core speedup", "1-core energy", "4-core (HHHH) speedup", "4-core energy"},
		Notes:  []string{"paper (64 Gbit): +7.1%/-17.2% single-core, +11.9%/-7.8% four-core"},
	}
	for _, p := range f.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d Gbit", p.DensityGbit),
			pct(p.SingleSpeedup), fmt.Sprintf("%.3f", p.SingleEnergy),
			pct(p.FourSpeedup), fmt.Sprintf("%.3f", p.FourEnergy),
		})
	}
	return t
}

// Fig14Point is one (LLC size, mechanism) cell.
type Fig14Point struct {
	Speedup float64
	Energy  float64 // normalized to the baseline at the same LLC size
}

// Fig14Result holds Figure 14's data: the combined mechanisms across LLC
// capacities, versus the ideal.
type Fig14Result struct {
	LLCMiB []int
	Mechs  []string
	Cells  map[int]map[string]Fig14Point
}

var fig14LLCMiB = []int{1, 8, 32}

func fig14Opts() map[string]crow.Options {
	return map[string]crow.Options{
		"cache":     {Mechanism: crow.Cache},
		"ref":       {Mechanism: crow.Ref},
		"cache+ref": {Mechanism: crow.CacheRef},
		"ideal":     {Mechanism: crow.IdealNoRefresh},
	}
}

// fig14Mixes returns Figure 14's HHHH + MMHH mixes.
func fig14Mixes(r *Runner) []trace.Mix {
	mixes := trace.MakeMixes([]trace.Class{trace.High, trace.High, trace.High, trace.High},
		r.Scale.MixesPerGroup, r.Scale.Seed+4)
	return append(mixes, trace.MakeMixes([]trace.Class{trace.Medium, trace.Medium, trace.High, trace.High},
		r.Scale.MixesPerGroup, r.Scale.Seed+7)...)
}

// Fig14Plan declares Figure 14's runs, including per-LLC alone baselines.
func Fig14Plan(r *Runner) []crow.Options {
	var plan []crow.Options
	mixes := fig14Mixes(r)
	for _, mib := range fig14LLCMiB {
		llc := int64(mib) << 20
		for _, mix := range mixes {
			apps := trace.Names(mix.Apps)
			plan = append(plan, crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, LLCBytes: llc, Workloads: apps})
			for _, o := range fig14Opts() {
				o.DensityGbit = 64
				o.LLCBytes = llc
				o.Workloads = apps
				plan = append(plan, o)
			}
		}
		plan = append(plan, alonePlan(mixes, crow.Options{DensityGbit: 64, LLCBytes: llc})...)
	}
	return plan
}

// Fig14 runs the combined CROW-cache + CROW-ref evaluation across LLC
// capacities on four-core mixes at 64 Gbit density.
func Fig14(r *Runner) (Fig14Result, error) {
	res := Fig14Result{
		LLCMiB: fig14LLCMiB,
		Mechs:  []string{"cache", "ref", "cache+ref", "ideal"},
		Cells:  map[int]map[string]Fig14Point{},
	}
	opts := fig14Opts()
	mixes := fig14Mixes(r)
	for _, mib := range res.LLCMiB {
		llc := int64(mib) << 20
		env := crow.Options{DensityGbit: 64, LLCBytes: llc}
		sp := map[string][]float64{}
		en := map[string][]float64{}
		for _, mix := range mixes {
			apps := trace.Names(mix.Apps)
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, LLCBytes: llc, Workloads: apps})
			if err != nil {
				return Fig14Result{}, err
			}
			wsBase, err := r.ws(base, apps, env)
			if err != nil {
				return Fig14Result{}, err
			}
			for name, o := range opts {
				o.DensityGbit = 64
				o.LLCBytes = llc
				o.Workloads = apps
				rep, err := r.Run(o)
				if err != nil {
					return Fig14Result{}, err
				}
				wsMech, err := r.ws(rep, apps, env)
				if err != nil {
					return Fig14Result{}, err
				}
				sp[name] = append(sp[name], metrics.Speedup(wsMech, wsBase))
				en[name] = append(en[name], rep.EnergyNJ.Total()/base.EnergyNJ.Total())
			}
		}
		res.Cells[mib] = map[string]Fig14Point{}
		for _, m := range res.Mechs {
			res.Cells[mib][m] = Fig14Point{Speedup: metrics.Mean(sp[m]), Energy: metrics.Mean(en[m])}
		}
	}
	return res, nil
}

// Table renders Figure 14.
func (f Fig14Result) Table() Table {
	t := Table{
		Title:  "Figure 14: CROW-(cache+ref) vs LLC capacity (four-core, 64 Gbit)",
		Header: []string{"LLC", "cache", "ref", "cache+ref", "ideal", "energy cache+ref", "energy ideal"},
		Notes:  []string{"paper (8 MiB LLC): cache+ref +20.0% speedup, -22.3% energy; combined > either alone"},
	}
	for _, mib := range f.LLCMiB {
		c := f.Cells[mib]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d MiB", mib),
			pct(c["cache"].Speedup), pct(c["ref"].Speedup),
			pct(c["cache+ref"].Speedup), pct(c["ideal"].Speedup),
			fmt.Sprintf("%.3f", c["cache+ref"].Energy),
			fmt.Sprintf("%.3f", c["ideal"].Energy),
		})
	}
	return t
}
