package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/metrics"
)

// This file holds the RowHammer attack/defense lab experiments: a
// flips-vs-overhead frontier across the pluggable mitigations, and a
// two-tenant scenario measuring cross-tenant flips and victim slowdown.
// Both run the bit-flip model (Options.FlipHCFirst) under the rowstripe
// translation so the attacker's virtual row adjacency survives to DRAM.

// hammerLabEnv is the shared environment of every frontier arm: a
// double-sided attacker, a small LLC (emulating cache-flush attacks), the
// rowstripe translation, and a flip threshold low enough that the attack
// lands within the measured interval.
func hammerLabEnv() crow.Options {
	return crow.Options{
		Workloads:   []string{"hammer-double"},
		LLCBytes:    64 << 10,
		Translation: "rowstripe",
		FlipHCFirst: 512,
		// Bound runs that make no forward progress: refresh-rate scaling
		// past the bandwidth cliff (REFI < tRFC) starves the channel, and
		// without a cap such an arm would spin out the full generous
		// cycle allowance.
		MaxMeasureCycles: 10_000_000,
	}
}

// hammerLabArms returns the frontier's design points: unmitigated, PARA at
// a low and a protective probability, the CROW-hammer remap, and refresh
// rate scaling, all under the same attacker and flip model.
func hammerLabArms() []struct {
	name string
	o    crow.Options
} {
	mk := func(mut func(*crow.Options)) crow.Options {
		o := hammerLabEnv()
		o.Mechanism = crow.Baseline
		mut(&o)
		return o
	}
	return []struct {
		name string
		o    crow.Options
	}{
		{"unmitigated", mk(func(o *crow.Options) {})},
		{"para 1/1000", mk(func(o *crow.Options) {
			o.Mitigation = "para"
			o.ParaPerMille = 1
		})},
		{"para 100/1000", mk(func(o *crow.Options) {
			o.Mitigation = "para"
			o.ParaPerMille = 100
		})},
		{"crow-hammer", mk(func(o *crow.Options) {
			o.Mechanism = crow.Hammer
			o.Mitigation = "crow-hammer"
			o.HammerThreshold = 128
		})},
		{"refresh x32", mk(func(o *crow.Options) {
			o.Mitigation = "refresh-scale"
			o.RefreshScale = 32
		})},
	}
}

// HammerLabRow is one mitigation's point on the flips-vs-overhead frontier.
type HammerLabRow struct {
	Name       string
	Flips      int64 // exposed bit-flip-threshold crossings
	Shielded   int64 // crossings absorbed by a CROW-hammer remap
	VictimRows int   // distinct flipped rows
	Remaps     int64 // CROW-hammer victim remaps
	ParaRef    int64 // PARA neighbour-refresh activations
	REF        int64 // refresh commands issued
	IPC        float64
	Slowdown   float64 // vs the unmitigated arm
	EnergyX    float64 // energy vs the unmitigated arm
}

// HammerLabResult holds the flips-vs-overhead frontier.
type HammerLabResult struct {
	Rows []HammerLabRow
}

// HammerLabPlan declares the frontier's runs.
func HammerLabPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, arm := range hammerLabArms() {
		plan = append(plan, arm.o)
	}
	return plan
}

// HammerLab runs every mitigation arm against the same double-sided
// attacker and reports protection (flips) against cost (slowdown, energy,
// extra refresh work) relative to the unmitigated run.
func HammerLab(r *Runner) (HammerLabResult, error) {
	arms := hammerLabArms()
	base, err := r.Run(arms[0].o)
	if err != nil {
		return HammerLabResult{}, err
	}
	var res HammerLabResult
	for _, arm := range arms {
		rep, err := r.Run(arm.o)
		if err != nil {
			return HammerLabResult{}, err
		}
		res.Rows = append(res.Rows, HammerLabRow{
			Name:       arm.name,
			Flips:      rep.Flips,
			Shielded:   rep.ShieldedFlips,
			VictimRows: rep.FlipVictimRows,
			Remaps:     rep.HammerRemaps,
			ParaRef:    rep.MitigationRefreshes,
			REF:        rep.REF,
			IPC:        rep.IPC[0],
			Slowdown:   metrics.Speedup(base.IPC[0], rep.IPC[0]),
			EnergyX:    rep.EnergyNJ.Total() / base.EnergyNJ.Total(),
		})
	}
	return res, nil
}

// Row returns the named frontier arm.
func (h HammerLabResult) Row(name string) HammerLabRow {
	for _, row := range h.Rows {
		if row.Name == name {
			return row
		}
	}
	return HammerLabRow{}
}

// Table renders the flips-vs-overhead frontier.
func (h HammerLabResult) Table() Table {
	t := Table{
		Title: "RowHammer lab: flips vs mitigation overhead (double-sided attacker)",
		Header: []string{"mitigation", "flips", "shielded", "victim rows",
			"remaps", "para refreshes", "REF", "IPC", "slowdown", "energy x"},
		Notes: []string{
			"same attacker and flip model in every row; only the mitigation changes;",
			"slowdown and energy are relative to the unmitigated run",
		},
	}
	for _, row := range h.Rows {
		slow := pct(row.Slowdown)
		if row.IPC == 0 {
			// A starved arm (refresh scaling past the bandwidth cliff)
			// makes no forward progress; its slowdown ratio is undefined,
			// not zero.
			slow = "stalled"
		}
		t.Rows = append(t.Rows, []string{
			row.Name,
			fmt.Sprint(row.Flips),
			fmt.Sprint(row.Shielded),
			fmt.Sprint(row.VictimRows),
			fmt.Sprint(row.Remaps),
			fmt.Sprint(row.ParaRef),
			fmt.Sprint(row.REF),
			fmt.Sprintf("%.3f", row.IPC),
			slow,
			fmt.Sprintf("%.3f", row.EnergyX),
		})
	}
	return t
}

// tenantEnv is the two-tenant scenario's shared environment: an attacker
// and a traced victim on one shared channel set, with the rowstripe
// translation interleaving their rows so the attacker's blast radius lands
// in the victim's address space.
func tenantEnv() crow.Options {
	o := hammerLabEnv()
	o.Workloads = []string{"hammer-double", "mcf"}
	return o
}

// tenantArms returns the scenario's mitigation arms (a subset of the
// frontier: unmitigated, one probabilistic and one deterministic defense).
func tenantArms() []struct {
	name string
	o    crow.Options
} {
	mk := func(mut func(*crow.Options)) crow.Options {
		o := tenantEnv()
		o.Mechanism = crow.Baseline
		mut(&o)
		return o
	}
	return []struct {
		name string
		o    crow.Options
	}{
		{"unmitigated", mk(func(o *crow.Options) {})},
		{"para 100/1000", mk(func(o *crow.Options) {
			o.Mitigation = "para"
			o.ParaPerMille = 100
		})},
		{"crow-hammer", mk(func(o *crow.Options) {
			o.Mechanism = crow.Hammer
			o.Mitigation = "crow-hammer"
			o.HammerThreshold = 128
		})},
	}
}

// tenantVictimAlone is the victim's no-attacker baseline: the same
// environment with only the victim running.
func tenantVictimAlone() crow.Options {
	o := tenantEnv()
	o.Mechanism = crow.Baseline
	o.Workloads = []string{"mcf"}
	return o
}

// TenantRow is one mitigation's outcome in the two-tenant scenario.
type TenantRow struct {
	Name          string
	AttackerFlips int64 // flips landing in the attacker's own rows
	VictimFlips   int64 // cross-tenant flips in the victim's rows
	Shielded      int64
	VictimIPC     float64
	Slowdown      float64 // victim slowdown vs running alone
}

// TenantResult holds the two-tenant cross-tenant-flip study.
type TenantResult struct {
	VictimAloneIPC float64
	Rows           []TenantRow
}

// TenantPlan declares the two-tenant scenario's runs.
func TenantPlan(r *Runner) []crow.Options {
	plan := []crow.Options{tenantVictimAlone()}
	for _, arm := range tenantArms() {
		plan = append(plan, arm.o)
	}
	return plan
}

// Tenant runs the attacker next to a traced victim under each mitigation
// and splits the flips by owning tenant: under the rowstripe translation
// the victim's rows interleave with the attacker's, so a double-sided
// attack flips rows the attacker never touched.
func Tenant(r *Runner) (TenantResult, error) {
	alone, err := r.Run(tenantVictimAlone())
	if err != nil {
		return TenantResult{}, err
	}
	res := TenantResult{VictimAloneIPC: alone.IPC[0]}
	for _, arm := range tenantArms() {
		rep, err := r.Run(arm.o)
		if err != nil {
			return TenantResult{}, err
		}
		row := TenantRow{
			Name:      arm.name,
			Shielded:  rep.ShieldedFlips,
			VictimIPC: rep.IPC[1],
			Slowdown:  metrics.Speedup(alone.IPC[0], rep.IPC[1]),
		}
		if len(rep.FlipsByCore) == 2 {
			row.AttackerFlips = rep.FlipsByCore[0]
			row.VictimFlips = rep.FlipsByCore[1]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the named tenant arm.
func (t TenantResult) Row(name string) TenantRow {
	for _, row := range t.Rows {
		if row.Name == name {
			return row
		}
	}
	return TenantRow{}
}

// Table renders the two-tenant scenario.
func (t TenantResult) Table() Table {
	tbl := Table{
		Title: "RowHammer lab: two-tenant attack (attacker + mcf victim, shared channels)",
		Header: []string{"mitigation", "attacker-row flips", "victim-row flips",
			"shielded", "victim IPC", "victim slowdown"},
		Notes: []string{
			"rowstripe translation interleaves tenants' rows, so double-sided",
			"aggressors flip the neighbouring tenant's rows; slowdown is vs the",
			fmt.Sprintf("victim running alone (IPC %.3f)", t.VictimAloneIPC),
		},
	}
	for _, row := range t.Rows {
		tbl.Rows = append(tbl.Rows, []string{
			row.Name,
			fmt.Sprint(row.AttackerFlips),
			fmt.Sprint(row.VictimFlips),
			fmt.Sprint(row.Shielded),
			fmt.Sprintf("%.3f", row.VictimIPC),
			pct(row.Slowdown),
		})
	}
	return tbl
}
