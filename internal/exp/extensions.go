package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/metrics"
)

// LatCompareRow is one latency-mechanism design point.
type LatCompareRow struct {
	Name        string
	Speedup     float64
	HitRate     float64
	EnergyRatio float64
}

// LatCompareResult compares CROW-cache with the related-work latency
// mechanisms of Section 9.
type LatCompareResult struct{ Rows []LatCompareRow }

func latCompareConfigs() []struct {
	name string
	o    crow.Options
} {
	return []struct {
		name string
		o    crow.Options
	}{
		{"crow-cache (CROW-8)", crow.Options{Mechanism: crow.Cache}},
		{"chargecache", crow.Options{Mechanism: crow.ChargeCache}},
		{"ideal crow-cache", crow.Options{Mechanism: crow.IdealCache}},
	}
}

// LatencyComparisonPlan declares the latency-comparison runs.
func LatencyComparisonPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, cfg := range latCompareConfigs() {
		for _, app := range r.singleApps() {
			o := cfg.o
			o.Workloads = []string{app.Name}
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}},
				o)
		}
	}
	return plan
}

// LatencyComparison pits CROW-cache against ChargeCache [26] (short-lived
// highly-charged-row reuse) on the single-core suite. The paper argues
// CROW-cache captures more in-DRAM locality because a duplicated row stays
// fast indefinitely, while ChargeCache's benefit decays within ~1 ms.
func LatencyComparison(r *Runner) (LatCompareResult, error) {
	var res LatCompareResult
	for _, cfg := range latCompareConfigs() {
		var sp, en, hr []float64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
			if err != nil {
				return LatCompareResult{}, err
			}
			o := cfg.o
			o.Workloads = []string{app.Name}
			rep, err := r.Run(o)
			if err != nil {
				return LatCompareResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
			hr = append(hr, rep.CROWTableHitRate)
		}
		res.Rows = append(res.Rows, LatCompareRow{
			Name: cfg.name, Speedup: metrics.Mean(sp),
			HitRate: metrics.Mean(hr), EnergyRatio: metrics.Mean(en),
		})
	}
	return res, nil
}

// Row returns the named design point.
func (l LatCompareResult) Row(name string) LatCompareRow {
	for _, row := range l.Rows {
		if row.Name == name {
			return row
		}
	}
	return LatCompareRow{}
}

// Table renders the latency-mechanism comparison.
func (l LatCompareResult) Table() Table {
	t := Table{
		Title:  "Extension: CROW-cache vs ChargeCache (Section 9 related work)",
		Header: []string{"mechanism", "speedup", "hit rate", "energy ratio"},
		Notes:  []string{"ChargeCache's benefit expires ~1 ms after a precharge; CROW's copy rows stay fast"},
	}
	for _, row := range l.Rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.Speedup), pct2(row.HitRate), fmt.Sprintf("%.3f", row.EnergyRatio)})
	}
	return t
}

// RefreshModeRow is one refresh-mode design point.
type RefreshModeRow struct {
	Name    string
	Speedup float64 // vs strict all-bank refresh
	Energy  float64 // normalized
}

// RefreshModeResult holds the refresh-mode study.
type RefreshModeResult struct{ Rows []RefreshModeRow }

func refreshModeConfigs() []struct {
	name string
	mod  func(*crow.Options)
} {
	return []struct {
		name string
		mod  func(*crow.Options)
	}{
		{"REFab + postpone-8", func(o *crow.Options) { o.RefreshPostpone = 8 }},
		{"REFpb", func(o *crow.Options) { o.PerBankRefresh = true }},
		{"REFpb + postpone-8", func(o *crow.Options) { o.PerBankRefresh = true; o.RefreshPostpone = 8 }},
		{"REFab + crow-ref", func(o *crow.Options) { o.Mechanism = crow.Ref }},
		{"REFpb + crow-ref", func(o *crow.Options) { o.PerBankRefresh = true; o.Mechanism = crow.Ref }},
	}
}

// RefreshModesPlan declares the refresh-mode study's runs.
func RefreshModesPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, cfg := range refreshModeConfigs() {
		for _, app := range r.singleApps() {
			w := []string{app.Name}
			plan = append(plan, crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: w})
			o := crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: w}
			cfg.mod(&o)
			plan = append(plan, o)
		}
	}
	return plan
}

// RefreshModes studies the controller's refresh machinery at 64 Gbit, where
// refresh pressure is highest: all-bank REFab (Table 2 default), elastic
// postponement of up to 8 REFs [107], LPDDR4 per-bank REFpb, and both.
// These are orthogonal to (and compose with) CROW-ref.
func RefreshModes(r *Runner) (RefreshModeResult, error) {
	var res RefreshModeResult
	for _, cfg := range refreshModeConfigs() {
		var sp, en []float64
		for _, app := range r.singleApps() {
			w := []string{app.Name}
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: w})
			if err != nil {
				return RefreshModeResult{}, err
			}
			o := crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: w}
			cfg.mod(&o)
			rep, err := r.Run(o)
			if err != nil {
				return RefreshModeResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
		}
		res.Rows = append(res.Rows, RefreshModeRow{Name: cfg.name, Speedup: metrics.Mean(sp), Energy: metrics.Mean(en)})
	}
	return res, nil
}

// Row returns the named design point.
func (m RefreshModeResult) Row(name string) RefreshModeRow {
	for _, row := range m.Rows {
		if row.Name == name {
			return row
		}
	}
	return RefreshModeRow{}
}

// Table renders the refresh-mode study.
func (m RefreshModeResult) Table() Table {
	t := Table{
		Title:  "Extension: refresh modes at 64 Gbit (vs strict all-bank REFab)",
		Header: []string{"mode", "speedup", "energy ratio"},
		Notes: []string{
			"naive REFpb can hurt low-MLP workloads: thinly-spread per-bank blocking stalls",
			"serial request chains, while REFab batches the stalls - the effect motivating",
			"refresh-aware scheduling (DSARP [7]); CROW-ref attacks the root cause instead",
		},
	}
	for _, row := range m.Rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.Speedup), fmt.Sprintf("%.3f", row.Energy)})
	}
	return t
}
