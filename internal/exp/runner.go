// Package exp regenerates every table and figure of the paper's evaluation
// (see the per-experiment index in DESIGN.md). Analytic experiments
// (Table 1, Figures 5–7, the Section 4.2.1/6 overhead numbers) come from the
// circuit and retention models; simulation experiments (Figures 8–14) run
// the full system at a configurable scale.
//
// Each simulation experiment is split into a plan phase that declares the
// runs it needs (a list of crow.Options, including the alone-run baselines
// behind weighted speedups) and a reduce phase that assembles tables from
// completed results. Plans execute on a bounded worker pool
// (internal/engine) with deterministic memoization, so independent runs
// parallelize across cores while experiments sharing runs (e.g. Figures 8
// and 10) still pay for them once — and the reduce phase, which re-requests
// every run it uses, produces byte-identical output at any worker count.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/metrics"
	"crowdram/internal/obs"
	"crowdram/internal/store"
	"crowdram/internal/trace"
)

// ReportSchema names the store schema under which runner results persist. A
// bump invalidates (as a miss, not an error) every result saved under the
// old schema.
const ReportSchema = "crow.Report/v1"

// OpenStore opens (or creates) the persistent result store that crowserve
// and crowbench mount via their -store flag. maxBytes > 0 caps the on-disk
// footprint (LRU eviction); 0 means unbounded.
func OpenStore(dir string, maxBytes int64) (*store.Store[crow.Report], error) {
	var opts []store.Option
	if maxBytes > 0 {
		opts = append(opts, store.MaxBytes(maxBytes))
	}
	return store.Open[crow.Report](dir, ReportSchema, opts...)
}

// Scale controls simulation effort. The paper simulates 200 M instructions
// per core over 20 mixes per group; the defaults here are sized to finish in
// minutes while preserving each figure's shape.
type Scale struct {
	Insts         int64
	Warmup        int64
	MixesPerGroup int
	// SingleApps optionally restricts single-core experiments to a
	// subset of the suite (nil = every app).
	SingleApps []string
	Seed       int64
}

// DefaultScale is the crowbench default.
func DefaultScale() Scale {
	return Scale{Insts: 300_000, Warmup: 30_000, MixesPerGroup: 3, Seed: 1}
}

// QuickScale is the scale used by the repository's testing.B benchmarks.
func QuickScale() Scale {
	return Scale{
		Insts: 60_000, Warmup: 6_000, MixesPerGroup: 1, Seed: 1,
		SingleApps: []string{"mcf", "lbm", "soplex", "omnetpp", "zeusmp", "gcc"},
	}
}

// Table is a renderable result grid.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(v float64) string  { return fmt.Sprintf("%+.1f%%", 100*v) }
func pct2(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Runner executes and memoizes simulation runs on a bounded worker pool.
type Runner struct {
	Scale     Scale
	pool      *engine.Pool[crow.Report]
	ctx       context.Context
	verify    bool
	telemetry int64
	shards    int
	run       func(context.Context, crow.Options) (crow.Report, error)
}

// RunnerOption configures a Runner.
type RunnerOption func(*runnerConfig)

type runnerConfig struct {
	workers   int
	timeout   time.Duration
	observer  engine.Observer
	ctx       context.Context
	verify    bool
	telemetry int64
	shards    int
	pool      *engine.Pool[crow.Report]
	backing   engine.Backing[crow.Report]
	run       func(context.Context, crow.Options) (crow.Report, error)
}

// Workers sets how many simulations may execute concurrently (the
// crowbench -j flag). Default 1: plans execute sequentially, in declaration
// order.
func Workers(n int) RunnerOption { return func(c *runnerConfig) { c.workers = n } }

// Timeout bounds each simulation's wall-clock time; a run past its deadline
// fails with context.DeadlineExceeded. Zero (the default) means no limit.
func Timeout(d time.Duration) RunnerOption { return func(c *runnerConfig) { c.timeout = d } }

// Observe attaches a structured per-run event observer (queued, started,
// finished, cache-hit) for live progress output.
func Observe(obs engine.Observer) RunnerOption { return func(c *runnerConfig) { c.observer = obs } }

// WithContext makes every run answer to ctx, so canceling it interrupts
// in-flight simulations and aborts the sweep.
func WithContext(ctx context.Context) RunnerOption { return func(c *runnerConfig) { c.ctx = ctx } }

// Verify attaches the correctness oracle (crow.Options.Verify) to every
// simulation the runner executes. A run with violations fails with an error
// describing them, which surfaces through the engine observer's finished
// events and aborts the sweep like any other run failure.
func Verify() RunnerOption { return func(c *runnerConfig) { c.verify = true } }

// Telemetry attaches interval telemetry (internal/obs) to every simulation
// the runner executes: per-bank counters are snapshotted every `every` DRAM
// cycles and forwarded to the engine pool's observers as EventProgress
// events, so streaming consumers (the crowserve SSE path) see live per-run
// state. Zero disables it. Telemetry does not enter the memoization key —
// cache hits replay no snapshots, because nothing executes.
func Telemetry(every int64) RunnerOption {
	return func(c *runnerConfig) { c.telemetry = every }
}

// Shards makes every simulation the runner executes advance its channels on
// up to n goroutines between synchronization epochs (crow.WithShards). The
// results are byte-identical to serial runs, so the setting does not enter
// the memoization key — a sharded run and a serial one share a cache entry.
// Values below 2 keep the serial tick loop.
func Shards(n int) RunnerOption { return func(c *runnerConfig) { c.shards = n } }

// UsePool makes the Runner execute on an existing engine pool instead of
// constructing its own, so independent Runners (e.g. per-request runners in
// the crowserve service) share one memoization cache: a run any of them has
// completed is a cache hit for all of them. The pool's own worker bound and
// timeout apply; Workers and Timeout options are ignored. An Observe option
// subscribes to the shared pool permanently — callers needing a scoped
// subscription use Pool().AddObserver's remove function instead.
func UsePool(p *engine.Pool[crow.Report]) RunnerOption {
	return func(c *runnerConfig) { c.pool = p }
}

// Backed attaches a persistent result tier (typically the disk store from
// OpenStore) to the pool the Runner constructs: misses consult it before
// executing, successes populate it. Ignored with UsePool — a shared pool's
// backing is configured where the pool is built.
func Backed(b engine.Backing[crow.Report]) RunnerOption {
	return func(c *runnerConfig) { c.backing = b }
}

// RunWith substitutes the function that executes one simulation (default
// crow.RunContext). Tests use it to inject context-aware hooks — e.g. a run
// that blocks until cancelled — without paying for real simulations; the
// memoization layer above it is unchanged.
func RunWith(fn func(context.Context, crow.Options) (crow.Report, error)) RunnerOption {
	return func(c *runnerConfig) { c.run = fn }
}

// NewRunner builds a Runner at the given scale. Without options it behaves
// like the historical sequential runner: one worker, no timeout.
func NewRunner(s Scale, opts ...RunnerOption) *Runner {
	cfg := runnerConfig{workers: 1, ctx: context.Background(), run: crow.RunContext}
	for _, o := range opts {
		o(&cfg)
	}
	pool := cfg.pool
	if pool == nil {
		var popts []engine.Option[crow.Report]
		if cfg.timeout > 0 {
			popts = append(popts, engine.WithTimeout[crow.Report](cfg.timeout))
		}
		if cfg.backing != nil {
			popts = append(popts, engine.WithBacking(cfg.backing))
		}
		pool = engine.New(cfg.workers, popts...)
	}
	if cfg.observer != nil {
		pool.AddObserver(cfg.observer)
	}
	return &Runner{
		Scale:     s,
		pool:      pool,
		ctx:       cfg.ctx,
		verify:    cfg.verify,
		telemetry: cfg.telemetry,
		shards:    cfg.shards,
		run:       cfg.run,
	}
}

// Pool exposes the Runner's engine pool for metrics snapshots and event
// subscription (engine.Pool.Snapshot / AddObserver).
func (r *Runner) Pool() *engine.Pool[crow.Report] { return r.pool }

// KeyOf returns the canonical memoization key the Runner uses for o: the
// scale-pinned options' crow Key. Two Runners at the same scale sharing a
// pool agree on keys, which is what makes the cross-request cache work.
func (r *Runner) KeyOf(o crow.Options) string { return r.scaled(o).Key() }

// Workers returns the runner's concurrency bound.
func (r *Runner) Workers() int { return r.pool.Workers() }

// scaled pins the scale-controlled fields, making options canonical for
// keying: the same transformation applies in Run and Execute, so a planned
// run and its reduce-phase re-request always share a cache entry.
func (r *Runner) scaled(o crow.Options) crow.Options {
	o.MeasureInsts = r.Scale.Insts
	o.WarmupInsts = r.Scale.Warmup
	if o.Seed == 0 {
		o.Seed = r.Scale.Seed
	}
	if r.verify {
		o.Verify = true
	}
	return o
}

// exec wraps one simulation: it injects the telemetry bundle (if enabled)
// into the run context, and fails the run if the correctness oracle found
// violations (only possible when the runner verifies).
func (r *Runner) exec(o crow.Options) func(context.Context) (crow.Report, error) {
	return func(ctx context.Context) (crow.Report, error) {
		if r.shards > 1 {
			ctx = crow.WithShards(ctx, r.shards)
		}
		if r.telemetry > 0 {
			key, label := o.Key(), runLabel(o)
			ctx = obs.With(ctx, &obs.Observers{
				SnapshotEvery: r.telemetry,
				OnSnapshot: func(s obs.IntervalSnapshot) {
					r.pool.Progress(key, label, s)
				},
			})
		}
		rep, err := r.run(ctx, o)
		if err == nil && rep.Violations > 0 {
			sample := ""
			if len(rep.ViolationSamples) > 0 {
				sample = "; first: " + rep.ViolationSamples[0]
			}
			err = fmt.Errorf("correctness oracle: %d violation(s): %s%s",
				rep.Violations, metrics.Counters(rep.ViolationCounts).String(), sample)
		}
		return rep, err
	}
}

// runLabel is the human-readable job description carried by observer
// events: mechanism, workloads, and whatever non-default knobs tell apart
// the sweep points of a figure (copy rows, density, LLC size, ...).
func runLabel(o crow.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s", o.Mechanism, strings.Join(o.Workloads, "+"))
	if o.CopyRows != 0 {
		fmt.Fprintf(&b, " n=%d", o.CopyRows)
	}
	if o.DensityGbit != 0 {
		fmt.Fprintf(&b, " %dGb", o.DensityGbit)
	}
	if o.LLCBytes != 0 {
		fmt.Fprintf(&b, " llc=%dMiB", o.LLCBytes>>20)
	}
	if o.Prefetch {
		b.WriteString(" +pf")
	}
	if o.PerBankRefresh {
		b.WriteString(" refpb")
	}
	if o.RefreshPostpone != 0 {
		fmt.Fprintf(&b, " postpone=%d", o.RefreshPostpone)
	}
	if o.TableShareGroup > 1 {
		fmt.Fprintf(&b, " share=%d", o.TableShareGroup)
	}
	return b.String()
}

// Run executes (or recalls) one simulation. A failed run returns its error
// rather than panicking; the engine propagates it to the CLIs.
func (r *Runner) Run(o crow.Options) (crow.Report, error) {
	o = r.scaled(o)
	return r.pool.Do(r.ctx, o.Key(), runLabel(o), r.exec(o))
}

// Execute runs a declared plan: every distinct simulation in opts executes
// once, concurrently up to the worker bound, and the results are memoized
// for the reduce phase. Duplicate plan entries (and runs shared between
// experiments) coalesce by canonical key. It returns the first run error.
func (r *Runner) Execute(opts []crow.Options) error {
	return engine.All(r.ctx, r.pool, opts,
		func(o crow.Options) (string, string, func(context.Context) (crow.Report, error)) {
			o = r.scaled(o)
			return o.Key(), runLabel(o), r.exec(o)
		})
}

// singleApps returns the single-core experiment suite: every non-synthetic
// app (or the configured subset), sorted by descending memory intensity.
// An unknown name in Scale.SingleApps panics: it is a configuration error,
// caught by CLI flag validation before a Runner exists.
func (r *Runner) singleApps() []trace.App {
	var apps []trace.App
	if r.Scale.SingleApps != nil {
		for _, name := range r.Scale.SingleApps {
			a, err := trace.ByName(name)
			if err != nil {
				panic(err)
			}
			apps = append(apps, a)
		}
		return apps
	}
	for _, a := range trace.Apps {
		if !a.Synthetic {
			apps = append(apps, a)
		}
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Class != apps[j].Class {
			return apps[i].Class > apps[j].Class
		}
		return apps[i].Name < apps[j].Name
	})
	return apps
}

// aloneIPC returns the app's baseline alone-run IPC under the given
// environment options (LLC size, density, window), memoized.
func (r *Runner) aloneIPC(app string, env crow.Options) (float64, error) {
	rep, err := r.Run(aloneOpts(app, env))
	if err != nil {
		return 0, err
	}
	return rep.IPC[0], nil
}

// aloneOpts is the alone-run baseline configuration for one app under env;
// plan phases declare these as dependencies of every weighted-speedup
// figure so the recursive baseline runs parallelize too.
func aloneOpts(app string, env crow.Options) crow.Options {
	env.Mechanism = crow.Baseline
	env.Workloads = []string{app}
	return env
}

// alonePlan declares the alone-run baselines for a set of multi-core mixes.
func alonePlan(mixes []trace.Mix, env crow.Options) []crow.Options {
	var opts []crow.Options
	for _, mix := range mixes {
		for _, app := range trace.Names(mix.Apps) {
			opts = append(opts, aloneOpts(app, env))
		}
	}
	return opts
}

// ws computes the weighted speedup of a multi-core report against baseline
// alone runs under env.
func (r *Runner) ws(rep crow.Report, apps []string, env crow.Options) (float64, error) {
	alone := make([]float64, len(apps))
	for i, a := range apps {
		ipc, err := r.aloneIPC(a, env)
		if err != nil {
			return 0, err
		}
		alone[i] = ipc
	}
	return metrics.WeightedSpeedup(rep.IPC, alone), nil
}
