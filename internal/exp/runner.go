// Package exp regenerates every table and figure of the paper's evaluation
// (see the per-experiment index in DESIGN.md). Analytic experiments
// (Table 1, Figures 5–7, the Section 4.2.1/6 overhead numbers) come from the
// circuit and retention models; simulation experiments (Figures 8–14) run
// the full system at a configurable scale.
//
// Results are returned as typed values plus a renderable Table, and all
// simulation runs are memoized per configuration so that experiments sharing
// runs (e.g. Figures 8 and 10) pay for them once.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"crowdram/crow"
	"crowdram/internal/metrics"
	"crowdram/internal/trace"
)

// Scale controls simulation effort. The paper simulates 200 M instructions
// per core over 20 mixes per group; the defaults here are sized to finish in
// minutes while preserving each figure's shape.
type Scale struct {
	Insts         int64
	Warmup        int64
	MixesPerGroup int
	// SingleApps optionally restricts single-core experiments to a
	// subset of the suite (nil = every app).
	SingleApps []string
	Seed       int64
}

// DefaultScale is the crowbench default.
func DefaultScale() Scale {
	return Scale{Insts: 300_000, Warmup: 30_000, MixesPerGroup: 3, Seed: 1}
}

// QuickScale is the scale used by the repository's testing.B benchmarks.
func QuickScale() Scale {
	return Scale{
		Insts: 60_000, Warmup: 6_000, MixesPerGroup: 1, Seed: 1,
		SingleApps: []string{"mcf", "lbm", "soplex", "omnetpp", "zeusmp", "gcc"},
	}
}

// Table is a renderable result grid.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(v float64) string  { return fmt.Sprintf("%+.1f%%", 100*v) }
func pct2(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Runner executes and memoizes simulation runs.
type Runner struct {
	Scale Scale
	cache map[string]crow.Report
	// Progress, when non-nil, receives a line per fresh simulation run.
	Progress func(string)
}

// NewRunner builds a Runner at the given scale.
func NewRunner(s Scale) *Runner {
	return &Runner{Scale: s, cache: make(map[string]crow.Report)}
}

func optKey(o crow.Options) string {
	return fmt.Sprintf("%s|%v|cr%d|d%d|rw%.0f|wk%d|llc%d|pf%v|tl%d|sa%d-%v|ht%d|sh%d|fr%v|sc%v|er%v|cap%d|to%.0f|pb%v|pp%d|i%d|w%d|s%d",
		o.Mechanism, o.Workloads, o.CopyRows, o.DensityGbit, o.RefreshWindowMS,
		o.WeakRowsPerSubarray, o.LLCBytes, o.Prefetch, o.TLDRAMNearRows,
		o.SALPSubarrays, o.SALPOpenPage, o.HammerThreshold,
		o.TableShareGroup, o.FullRestore, o.Scrub, o.EagerRestore, o.ControllerCap, o.RowTimeoutNs, o.PerBankRefresh, o.RefreshPostpone,
		o.MeasureInsts, o.WarmupInsts, o.Seed)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(o crow.Options) crow.Report {
	o.MeasureInsts = r.Scale.Insts
	o.WarmupInsts = r.Scale.Warmup
	if o.Seed == 0 {
		o.Seed = r.Scale.Seed
	}
	key := optKey(o)
	if rep, ok := r.cache[key]; ok {
		return rep
	}
	rep, err := crow.Run(o)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	if r.Progress != nil {
		r.Progress(fmt.Sprintf("ran %s on %v", o.Mechanism, o.Workloads))
	}
	r.cache[key] = rep
	return rep
}

// singleApps returns the single-core experiment suite: every non-synthetic
// app (or the configured subset), sorted by descending memory intensity.
func (r *Runner) singleApps() []trace.App {
	var apps []trace.App
	if r.Scale.SingleApps != nil {
		for _, name := range r.Scale.SingleApps {
			a, err := trace.ByName(name)
			if err != nil {
				panic(err)
			}
			apps = append(apps, a)
		}
		return apps
	}
	for _, a := range trace.Apps {
		if !a.Synthetic {
			apps = append(apps, a)
		}
	}
	sort.Slice(apps, func(i, j int) bool {
		if apps[i].Class != apps[j].Class {
			return apps[i].Class > apps[j].Class
		}
		return apps[i].Name < apps[j].Name
	})
	return apps
}

// aloneIPC returns the app's baseline alone-run IPC under the given
// environment options (LLC size, density, window), memoized.
func (r *Runner) aloneIPC(app string, env crow.Options) float64 {
	env.Mechanism = crow.Baseline
	env.Workloads = []string{app}
	return r.Run(env).IPC[0]
}

// ws computes the weighted speedup of a multi-core report against baseline
// alone runs under env.
func (r *Runner) ws(rep crow.Report, apps []string, env crow.Options) float64 {
	alone := make([]float64, len(apps))
	for i, a := range apps {
		alone[i] = r.aloneIPC(a, env)
	}
	return metrics.WeightedSpeedup(rep.IPC, alone)
}
