package exp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// readGolden loads one experiment's golden report, failing (not skipping) if
// it is missing — a missing file would silently shrink the matrix.
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
	if err != nil {
		t.Fatalf("no golden file for %s (generate with -update): %v", name, err)
	}
	return want
}

// checkAgainstGoldens renders each experiment on the runner and compares the
// tables byte-for-byte against the golden files.
func checkAgainstGoldens(t *testing.T, r *Runner, exps []Experiment, combo string) {
	t.Helper()
	for _, e := range exps {
		tbl, err := e.Table(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := []byte(tbl.String()); !bytes.Equal(got, readGolden(t, e.Name)) {
			t.Errorf("%s at %s drifted from its golden report", e.Name, combo)
		}
	}
}

// TestGoldenReportsShardedFullSweep executes the complete experiment
// registry — every standard, mechanism, and ablation — with each simulation
// advancing its channels on up to 8 goroutines, and byte-compares all 22
// reports against the same golden files the serial suite uses. This is the
// broad half of the determinism matrix: one sharded combination, full
// experiment coverage.
//
// The runner gets its own engine pool on purpose: sharding does not enter
// the memoization key (byte-identity is the reason it's allowed to share
// cache entries in production), so reusing a pool that already executed
// these runs serially would compare cached serial results against golden
// files and prove nothing about the parallel path.
func TestGoldenReportsShardedFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sharded QuickScale sweep; skipped in -short")
	}
	r := NewRunner(QuickScale(), Workers(4), Shards(8))
	if err := r.Execute(PlanAll(r, Experiments())); err != nil {
		t.Fatal(err)
	}
	checkAgainstGoldens(t, r, Experiments(), "shards=8 j=4")
}

// TestGoldenReportsShardMatrix is the deep half of the determinism matrix:
// the three per-standard experiments (sched on LPDDR4, ddr5, hbm2 — whose
// systems have 4, 2, and 8 channels) plus the RowHammer lab (whose flip
// model and mitigation state live per channel and merge at report time)
// re-execute at every remaining (shards, workers) combination and must
// reproduce their golden reports byte-for-byte each time. Together with the serial golden suite (shards=1,
// j∈{1,4} via TestGoldenReports) and the full sweep above (shards=8, j=4),
// this covers the shards {1,2,max} × workers {1,4} grid the parallel tick
// loop promises. Every combination builds a fresh runner and pool — see
// TestGoldenReportsShardedFullSweep for why sharing one would be vacuous.
func TestGoldenReportsShardMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded QuickScale matrix; skipped in -short")
	}
	exps, err := Select([]string{"sched", "ddr5", "hbm2", "hammerlab", "tenant"})
	if err != nil {
		t.Fatal(err)
	}
	combos := []struct{ shards, workers int }{
		{2, 1},
		{2, 4},
		{8, 1},
	}
	for _, c := range combos {
		t.Run(fmt.Sprintf("shards=%d/j=%d", c.shards, c.workers), func(t *testing.T) {
			r := NewRunner(QuickScale(), Workers(c.workers), Shards(c.shards))
			if err := r.Execute(PlanAll(r, exps)); err != nil {
				t.Fatal(err)
			}
			checkAgainstGoldens(t, r, exps, t.Name())
		})
	}
}
