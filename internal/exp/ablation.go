package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/metrics"
)

// SharingPoint is one CROW-table sharing design point (Section 6.1).
type SharingPoint struct {
	ShareGroup int
	Speedup    float64 // avg single-core CROW-cache speedup
	StorageKB  float64 // per-channel CROW-table storage
}

// SharingResult holds the CROW-table sharing ablation.
type SharingResult struct{ Points []SharingPoint }

var sharingGroups = []int{1, 2, 4, 8}

// TableSharingPlan declares the sharing ablation's runs.
func TableSharingPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, share := range sharingGroups {
		for _, app := range r.singleApps() {
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}},
				crow.Options{Mechanism: crow.Cache, TableShareGroup: share, Workloads: []string{app.Name}})
		}
	}
	return plan
}

// TableSharing evaluates the Section 6.1 storage optimization: sharing one
// CROW-table entry set across 1/2/4/8 subarrays. The paper reports the
// average single-core speedup dropping from 7.1 % to 6.1 % when sharing
// across 4 subarrays (a ~4x storage reduction).
func TableSharing(r *Runner) (SharingResult, error) {
	var res SharingResult
	for _, share := range sharingGroups {
		var sp []float64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
			if err != nil {
				return SharingResult{}, err
			}
			rep, err := r.Run(crow.Options{Mechanism: crow.Cache, TableShareGroup: share, Workloads: []string{app.Name}})
			if err != nil {
				return SharingResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
		}
		res.Points = append(res.Points, SharingPoint{
			ShareGroup: share,
			Speedup:    metrics.Mean(sp),
			StorageKB:  float64(core.SharedStorageBits(dram.Std(8), 1, share)) / 8 / 1000,
		})
	}
	return res, nil
}

// Point returns the design point with the given sharing factor.
func (s SharingResult) Point(share int) SharingPoint {
	for _, p := range s.Points {
		if p.ShareGroup == share {
			return p
		}
	}
	return SharingPoint{}
}

// Table renders the sharing ablation.
func (s SharingResult) Table() Table {
	t := Table{
		Title:  "Ablation: CROW-table sharing across subarrays (Section 6.1)",
		Header: []string{"share group", "avg speedup", "table KB/channel"},
		Notes:  []string{"paper: sharing across 4 subarrays reduces the speedup from 7.1% to 6.1%"},
	}
	for _, p := range s.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.ShareGroup), pct(p.Speedup), fmt.Sprintf("%.2f", p.StorageKB),
		})
	}
	return t
}

// RestoreResult holds the restoration-policy ablation.
type RestoreResult struct {
	// Lazy is the default: early-terminated restoration with allocation
	// skipped when the victim pair is partial.
	Lazy float64
	// Eager is the paper's literal Section 4.1.4 flow: restore the
	// partial victim inline before evicting it.
	Eager float64
	// FullRestore disables early termination entirely (Section 4.1.3
	// off): no partial pairs ever exist.
	FullRestore float64
	// RestoreOpsEager counts the inline restore passes under Eager.
	RestoreOpsEager int64
}

// RestorePolicyPlan declares the restore-policy ablation's runs.
func RestorePolicyPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, app := range r.singleApps() {
		w := []string{app.Name}
		plan = append(plan,
			crow.Options{Mechanism: crow.Baseline, Workloads: w},
			crow.Options{Mechanism: crow.Cache, Workloads: w},
			crow.Options{Mechanism: crow.Cache, EagerRestore: true, Workloads: w},
			crow.Options{Mechanism: crow.Cache, FullRestore: true, Workloads: w})
	}
	return plan
}

// RestorePolicy evaluates the restoration/eviction policy space: the value
// of early-terminated restoration (Section 4.1.3) and of deferring victim
// restoration off the critical path (Section 4.1.4).
func RestorePolicy(r *Runner) (RestoreResult, error) {
	var res RestoreResult
	var lazy, eager, full []float64
	for _, app := range r.singleApps() {
		w := []string{app.Name}
		base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: w})
		if err != nil {
			return RestoreResult{}, err
		}
		l, err := r.Run(crow.Options{Mechanism: crow.Cache, Workloads: w})
		if err != nil {
			return RestoreResult{}, err
		}
		e, err := r.Run(crow.Options{Mechanism: crow.Cache, EagerRestore: true, Workloads: w})
		if err != nil {
			return RestoreResult{}, err
		}
		f, err := r.Run(crow.Options{Mechanism: crow.Cache, FullRestore: true, Workloads: w})
		if err != nil {
			return RestoreResult{}, err
		}
		lazy = append(lazy, metrics.Speedup(l.IPC[0], base.IPC[0]))
		eager = append(eager, metrics.Speedup(e.IPC[0], base.IPC[0]))
		full = append(full, metrics.Speedup(f.IPC[0], base.IPC[0]))
		res.RestoreOpsEager += e.RestoreOps
	}
	res.Lazy = metrics.Mean(lazy)
	res.Eager = metrics.Mean(eager)
	res.FullRestore = metrics.Mean(full)
	return res, nil
}

// Table renders the restore-policy ablation.
func (r RestoreResult) Table() Table {
	return Table{
		Title:  "Ablation: restoration and eviction policies (Sections 4.1.3-4.1.4)",
		Header: []string{"policy", "avg speedup", "inline restore ops"},
		Rows: [][]string{
			{"early termination + lazy eviction (default)", pct(r.Lazy), "0"},
			{"early termination + eager restore (paper)", pct(r.Eager), fmt.Sprint(r.RestoreOpsEager)},
			{"full restoration (no early termination)", pct(r.FullRestore), "0"},
		},
		Notes: []string{"at paper scale (200M insts) eager restores are rare (0.6% of ACTs) and the first two coincide"},
	}
}

// RefCompareRow is one refresh-mechanism design point.
type RefCompareRow struct {
	Name          string
	Speedup       float64
	EnergyRatio   float64
	StorageKB     float64 // controller-side storage
	CapacityOvh   float64 // DRAM capacity cost
	RowRefreshOps int64   // RAIDR's row-granular refreshes
}

// RefCompareResult compares refresh-overhead mechanisms at 64 Gbit.
type RefCompareResult struct{ Rows []RefCompareRow }

func refCompareConfigs() []struct {
	name    string
	o       crow.Options
	storage float64
	cap     float64
} {
	geo := dram.Std(8)
	weakRows := 3 * geo.Banks * geo.SubarraysPerBank() * 4 // per system
	return []struct {
		name    string
		o       crow.Options
		storage float64
		cap     float64
	}{
		{"crow-ref", crow.Options{Mechanism: crow.Ref, DensityGbit: 64},
			core.StorageKB(geo, 1), 3.0 / float64(geo.RowsPerSubarray)},
		{"raidr", crow.Options{Mechanism: crow.RAIDR, DensityGbit: 64},
			core.RAIDRStorageKB(weakRows), 0},
	}
}

// RefComparisonPlan declares the refresh-comparison runs.
func RefComparisonPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, cfg := range refCompareConfigs() {
		for _, app := range r.singleApps() {
			o := cfg.o
			o.Workloads = []string{app.Name}
			plan = append(plan,
				crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: []string{app.Name}},
				o)
		}
	}
	return plan
}

// RefComparison pits CROW-ref against a RAIDR-style retention-aware refresh
// baseline (footnote 4) on the single-core suite with futuristic 64 Gbit
// chips. Both halve the bulk refresh rate; RAIDR pays per-weak-row refresh
// work but no DRAM capacity, CROW-ref pays copy rows but composes with
// CROW-cache.
func RefComparison(r *Runner) (RefCompareResult, error) {
	var res RefCompareResult
	for _, cfg := range refCompareConfigs() {
		var sp, en []float64
		var rowRef int64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: 64, Workloads: []string{app.Name}})
			if err != nil {
				return RefCompareResult{}, err
			}
			o := cfg.o
			o.Workloads = []string{app.Name}
			rep, err := r.Run(o)
			if err != nil {
				return RefCompareResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
			rowRef += rep.RowRefreshOps
		}
		res.Rows = append(res.Rows, RefCompareRow{
			Name: cfg.name, Speedup: metrics.Mean(sp), EnergyRatio: metrics.Mean(en),
			StorageKB: cfg.storage, CapacityOvh: cfg.cap, RowRefreshOps: rowRef,
		})
	}
	return res, nil
}

// Row returns the named design point.
func (r RefCompareResult) Row(name string) RefCompareRow {
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	return RefCompareRow{}
}

// Table renders the refresh-mechanism comparison.
func (r RefCompareResult) Table() Table {
	t := Table{
		Title:  "Extension: CROW-ref vs RAIDR-style binning (64 Gbit, single-core)",
		Header: []string{"mechanism", "speedup", "energy ratio", "ctrl storage KB", "capacity ovh", "row refreshes"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Name, pct(row.Speedup), fmt.Sprintf("%.3f", row.EnergyRatio),
			fmt.Sprintf("%.2f", row.StorageKB), pct2(row.CapacityOvh),
			fmt.Sprint(row.RowRefreshOps),
		})
	}
	return t
}

// HammerResult holds the RowHammer mitigation experiment (Section 4.3; the
// paper leaves quantitative evaluation to future work — this reproduces the
// mechanism end to end on a synthetic attack).
type HammerResult struct {
	Remaps      int64
	CopyOps     int64
	IPCBase     float64
	IPCMitigate float64
}

func hammerOpts() (base, mit crow.Options) {
	common := crow.Options{Workloads: []string{"hammer"}, LLCBytes: 64 << 10, HammerThreshold: 128}
	base = common
	base.Mechanism = crow.Baseline
	mit = common
	mit.Mechanism = crow.Hammer
	return base, mit
}

// HammerAttackPlan declares the RowHammer experiment's runs.
func HammerAttackPlan(r *Runner) []crow.Options {
	base, mit := hammerOpts()
	return []crow.Options{base, mit}
}

// HammerAttack runs the synthetic hammering probe with and without the
// mitigation (with a small LLC emulating cache-flush attacks).
func HammerAttack(r *Runner) (HammerResult, error) {
	baseOpts, mitOpts := hammerOpts()
	base, err := r.Run(baseOpts)
	if err != nil {
		return HammerResult{}, err
	}
	mit, err := r.Run(mitOpts)
	if err != nil {
		return HammerResult{}, err
	}
	return HammerResult{
		Remaps:      mit.HammerRemaps,
		CopyOps:     mit.ACTc,
		IPCBase:     base.IPC[0],
		IPCMitigate: mit.IPC[0],
	}, nil
}

// Table renders the RowHammer experiment.
func (h HammerResult) Table() Table {
	return Table{
		Title:  "Extension: RowHammer mitigation (Section 4.3)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"victim rows remapped", fmt.Sprint(h.Remaps)},
			{"protective ACT-c copies", fmt.Sprint(h.CopyOps)},
			{"attacker IPC (baseline)", fmt.Sprintf("%.3f", h.IPCBase)},
			{"attacker IPC (mitigated)", fmt.Sprintf("%.3f", h.IPCMitigate)},
		},
		Notes: []string{"the mitigation moves the data adjacent to hammered rows out of harm's way"},
	}
}

// SchedRow is one controller-policy design point.
type SchedRow struct {
	Name    string
	Speedup float64 // vs the default configuration
}

// SchedResult holds the controller-policy sensitivity study.
type SchedResult struct{ Rows []SchedRow }

func schedConfigs() []struct {
	name string
	mod  func(*crow.Options)
} {
	return []struct {
		name string
		mod  func(*crow.Options)
	}{
		{"cap=4", func(o *crow.Options) { o.ControllerCap = 4 }},
		{"cap=8", func(o *crow.Options) { o.ControllerCap = 8 }},
		{"cap=64", func(o *crow.Options) { o.ControllerCap = 64 }},
		{"timeout=37ns", func(o *crow.Options) { o.RowTimeoutNs = 37.5 }},
		{"timeout=300ns", func(o *crow.Options) { o.RowTimeoutNs = 300 }},
	}
}

// SchedulerSensitivityPlan declares the sensitivity study's runs.
func SchedulerSensitivityPlan(r *Runner) []crow.Options {
	var plan []crow.Options
	for _, cfg := range schedConfigs() {
		for _, app := range r.singleApps() {
			plan = append(plan, crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
			o := crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}}
			cfg.mod(&o)
			plan = append(plan, o)
		}
	}
	return plan
}

// SchedulerSensitivity sweeps the FR-FCFS-Cap limit and the row-buffer
// timeout around the Table 2 defaults (cap 16, 75 ns) on the single-core
// suite, reporting speedup relative to the defaults.
func SchedulerSensitivity(r *Runner) (SchedResult, error) {
	var res SchedResult
	for _, cfg := range schedConfigs() {
		var sp []float64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}})
			if err != nil {
				return SchedResult{}, err
			}
			o := crow.Options{Mechanism: crow.Baseline, Workloads: []string{app.Name}}
			cfg.mod(&o)
			rep, err := r.Run(o)
			if err != nil {
				return SchedResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
		}
		res.Rows = append(res.Rows, SchedRow{Name: cfg.name, Speedup: metrics.Mean(sp)})
	}
	return res, nil
}

// Table renders the controller sensitivity study.
func (s SchedResult) Table() Table {
	t := Table{
		Title:  "Sensitivity: FR-FCFS-Cap and row-buffer timeout (vs Table 2 defaults)",
		Header: []string{"config", "speedup vs default"},
	}
	for _, row := range s.Rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.Speedup)})
	}
	return t
}
