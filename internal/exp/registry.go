package exp

import (
	"fmt"

	"crowdram/crow"
)

// Kind classifies experiments for CLI selection groups.
type Kind string

// Experiment kinds (the crowbench -exp group names).
const (
	Analytic Kind = "analytic"
	Sim      Kind = "sim"
	Ablation Kind = "ablations"
)

// Experiment couples a named experiment's plan phase (the simulation runs
// it requires, declared up front so they can execute concurrently) with its
// reduce phase (table assembly from completed, memoized results). Analytic
// experiments need no simulations: their Plan is nil.
type Experiment struct {
	Name string
	Kind Kind
	// Plan declares every run the reduce phase will request, including
	// the alone-run baselines behind weighted speedups. nil for
	// analytic experiments.
	Plan func(*Runner) []crow.Options
	// Table assembles the experiment's table. After Execute(Plan(r))
	// it performs no fresh simulation work.
	Table func(*Runner) (Table, error)
}

// tab adapts a typed figure function to the registry's Table signature.
func tab[T interface{ Table() Table }](fn func(*Runner) (T, error)) func(*Runner) (Table, error) {
	return func(r *Runner) (Table, error) {
		res, err := fn(r)
		if err != nil {
			return Table{}, err
		}
		return res.Table(), nil
	}
}

// analytic adapts a pure table function to the registry's signature.
func analytic(fn func() Table) func(*Runner) (Table, error) {
	return func(*Runner) (Table, error) { return fn(), nil }
}

// Experiments returns the full registry in canonical order (the order
// crowbench -exp all renders).
func Experiments() []Experiment {
	return []Experiment{
		{Name: "table1", Kind: Analytic, Table: analytic(Table1)},
		{Name: "fig5", Kind: Analytic, Table: analytic(Fig5)},
		{Name: "fig6", Kind: Analytic, Table: analytic(Fig6)},
		{Name: "fig7", Kind: Analytic, Table: analytic(Fig7)},
		{Name: "weakprob", Kind: Analytic, Table: analytic(WeakProb)},
		{Name: "overhead", Kind: Analytic, Table: analytic(Overhead)},
		{Name: "fig8", Kind: Sim, Plan: Fig8Plan, Table: tab(Fig8)},
		{Name: "fig9", Kind: Sim, Plan: Fig9Plan, Table: tab(Fig9)},
		{Name: "fig10", Kind: Sim, Plan: Fig10Plan, Table: tab(Fig10)},
		{Name: "fig11", Kind: Sim, Plan: Fig11Plan, Table: tab(Fig11)},
		{Name: "fig12", Kind: Sim, Plan: Fig12Plan, Table: tab(Fig12)},
		{Name: "fig13", Kind: Sim, Plan: Fig13Plan, Table: tab(Fig13)},
		{Name: "fig14", Kind: Sim, Plan: Fig14Plan, Table: tab(Fig14)},
		{Name: "sharing", Kind: Ablation, Plan: TableSharingPlan, Table: tab(TableSharing)},
		{Name: "restore", Kind: Ablation, Plan: RestorePolicyPlan, Table: tab(RestorePolicy)},
		{Name: "refcompare", Kind: Ablation, Plan: RefComparisonPlan, Table: tab(RefComparison)},
		{Name: "latcompare", Kind: Ablation, Plan: LatencyComparisonPlan, Table: tab(LatencyComparison)},
		{Name: "refreshmodes", Kind: Ablation, Plan: RefreshModesPlan, Table: tab(RefreshModes)},
		{Name: "hammer", Kind: Ablation, Plan: HammerAttackPlan, Table: tab(HammerAttack)},
		{Name: "sched", Kind: Ablation, Plan: SchedulerSensitivityPlan, Table: tab(SchedulerSensitivity)},
		{Name: "hammerlab", Kind: Ablation, Plan: HammerLabPlan, Table: tab(HammerLab)},
		{Name: "tenant", Kind: Ablation, Plan: TenantPlan, Table: tab(Tenant)},
		{Name: "ddr4", Kind: Ablation, Plan: DDR4Plan, Table: tab(DDR4Study)},
		{Name: "ddr5", Kind: Ablation, Plan: DDR5Plan, Table: tab(DDR5Study)},
		{Name: "hbm2", Kind: Ablation, Plan: HBM2Plan, Table: tab(HBM2Study)},
		{Name: "lpddr5", Kind: Ablation, Plan: LPDDR5Plan, Table: tab(LPDDR5Study)},
	}
}

// Select resolves a crowbench -exp selection: an experiment name, a kind
// ("analytic", "sim", "ablations"), or "all". Order follows the registry.
func Select(names []string) ([]Experiment, error) {
	all := Experiments()
	want := map[string]bool{}
	for _, n := range names {
		switch n {
		case "all":
			for _, e := range all {
				want[e.Name] = true
			}
		case string(Analytic), string(Sim), string(Ablation):
			for _, e := range all {
				if e.Kind == Kind(n) {
					want[e.Name] = true
				}
			}
		default:
			found := false
			for _, e := range all {
				if e.Name == n {
					want[e.Name] = true
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("exp: unknown experiment %q", n)
			}
		}
	}
	var sel []Experiment
	for _, e := range all {
		if want[e.Name] {
			sel = append(sel, e)
		}
	}
	return sel, nil
}

// PlanAll concatenates the plans of the selected experiments (the engine
// deduplicates shared runs by canonical key at execution time).
func PlanAll(r *Runner, sel []Experiment) []crow.Options {
	var plan []crow.Options
	for _, e := range sel {
		if e.Plan != nil {
			plan = append(plan, e.Plan(r)...)
		}
	}
	return plan
}
