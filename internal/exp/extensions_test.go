package exp

import "testing"

func TestLatencyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	s := tinyScale()
	s.Insts = 60_000
	s.Warmup = 6_000
	r := NewRunner(s)
	res, err := LatencyComparison(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	crow := res.Row("crow-cache (CROW-8)")
	cc := res.Row("chargecache")
	ideal := res.Row("ideal crow-cache")
	if crow.Speedup <= 0 {
		t.Errorf("CROW-cache must speed up: %+.3f", crow.Speedup)
	}
	if ideal.Speedup < crow.Speedup-0.01 {
		t.Errorf("ideal (%.3f) must bound real CROW (%.3f)", ideal.Speedup, crow.Speedup)
	}
	if cc.HitRate < 0 || cc.HitRate > 1 {
		t.Errorf("chargecache hit rate %f out of range", cc.HitRate)
	}
	if res.Table().Rows == nil {
		t.Error("table must render")
	}
}

func TestRefreshModes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	s := tinyScale()
	s.Insts = 150_000
	s.Warmup = 15_000
	s.SingleApps = []string{"mcf"}
	r := NewRunner(s)
	res, err := RefreshModes(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 modes, got %d", len(res.Rows))
	}
	// Naive per-bank refresh spreads blocking thinly across time, which
	// can HURT low-MLP workloads whose serial request chains stall on any
	// blocked bank (the observation motivating refresh-aware scheduling,
	// DSARP [7]); all we require is a sane range.
	if pb := res.Row("REFpb"); pb.Speedup < -0.5 || pb.Speedup > 0.3 {
		t.Errorf("REFpb speedup out of plausible range: %+.3f", pb.Speedup)
	}
	if cr := res.Row("REFab + crow-ref"); cr.Speedup <= 0 {
		t.Errorf("CROW-ref must speed up at 64 Gbit: %+.3f", cr.Speedup)
	}
	if res.Table().Rows == nil {
		t.Error("table must render")
	}
}
