package exp

import "testing"

func TestHammerExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	// The hammer probe needs enough accesses per row to cross the
	// detection threshold.
	s := tinyScale()
	s.Insts = 100_000
	s.Warmup = 5_000
	r := NewRunner(s)
	res, err := HammerAttack(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaps == 0 {
		t.Error("the synthetic attack must trigger victim remaps")
	}
	if res.CopyOps < res.Remaps {
		t.Error("every remap needs a protective copy")
	}
	if res.Table().Rows == nil {
		t.Error("table must render")
	}
}

func TestTableSharingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := NewRunner(tinyScale())
	res, err := TableSharing(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("want 4 sharing points")
	}
	// Storage must shrink monotonically with sharing.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].StorageKB >= res.Points[i-1].StorageKB {
			t.Error("sharing must reduce table storage")
		}
	}
	// Dedicated sets must be at least as fast as heavy sharing (allowing
	// small-scale noise).
	if res.Point(1).Speedup < res.Point(8).Speedup-0.02 {
		t.Errorf("share=1 (%.3f) should not trail share=8 (%.3f) by much",
			res.Point(1).Speedup, res.Point(8).Speedup)
	}
}

func TestRestorePolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := NewRunner(tinyScale())
	res, err := RestorePolicy(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table().Rows == nil {
		t.Error("table must render")
	}
}

func TestRefComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	s := tinyScale()
	s.Insts = 120_000
	s.Warmup = 12_000
	s.SingleApps = []string{"mcf"}
	r := NewRunner(s)
	res, err := RefComparison(r)
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Row("crow-ref")
	ra := res.Row("raidr")
	if cr.Speedup <= 0 || ra.Speedup <= 0 {
		t.Errorf("both refresh mechanisms must speed up at 64 Gbit: crow-ref %+.3f, raidr %+.3f",
			cr.Speedup, ra.Speedup)
	}
	if ra.RowRefreshOps == 0 {
		t.Error("RAIDR must perform row-granular weak refreshes")
	}
	if cr.RowRefreshOps != 0 {
		t.Error("CROW-ref performs no row-granular refreshes")
	}
	if ra.CapacityOvh != 0 || cr.CapacityOvh == 0 {
		t.Error("capacity costs: RAIDR none, CROW-ref copy rows")
	}
}

func TestSchedulerSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := NewRunner(tinyScale())
	res, err := SchedulerSensitivity(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 sensitivity rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Speedup < -0.5 || row.Speedup > 0.5 {
			t.Errorf("%s: implausible sensitivity %+.3f", row.Name, row.Speedup)
		}
	}
}
