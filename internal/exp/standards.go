package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/metrics"
)

// StandardRow is one mechanism's result on a non-LPDDR4 memory standard.
type StandardRow struct {
	Name        string
	Speedup     float64 // vs the same standard's baseline
	HitRate     float64
	EnergyRatio float64
	RowHitRate  float64
	ReadNs      float64
}

// StandardResult holds the cross-standard study for one memory standard:
// CROW's mechanisms rebuilt on a different device, selected purely through
// crow.Options.Standard. The speedups answer the portability question the
// composable-standard refactor exists for — whether CROW's benefit survives
// a device with different timings, bank counts and refresh granularity.
type StandardResult struct {
	Standard string
	Rows     []StandardRow
}

func standardConfigs(std string) []struct {
	name string
	o    crow.Options
} {
	return []struct {
		name string
		o    crow.Options
	}{
		{"crow-cache (CROW-8)", crow.Options{Mechanism: crow.Cache, Standard: std}},
		{"crow-ref", crow.Options{Mechanism: crow.Ref, Standard: std}},
		{"crow-cache+ref", crow.Options{Mechanism: crow.CacheRef, Standard: std}},
	}
}

// StandardPlan declares the cross-standard study's runs for one standard.
func StandardPlan(std string) func(*Runner) []crow.Options {
	return func(r *Runner) []crow.Options {
		var plan []crow.Options
		for _, cfg := range standardConfigs(std) {
			for _, app := range r.singleApps() {
				o := cfg.o
				o.Workloads = []string{app.Name}
				plan = append(plan,
					crow.Options{Mechanism: crow.Baseline, Standard: std, Workloads: []string{app.Name}},
					o)
			}
		}
		return plan
	}
}

// StandardStudy runs CROW-cache, CROW-ref and their combination on the named
// standard's single-core suite, each against that standard's own baseline.
func StandardStudy(r *Runner, std string) (StandardResult, error) {
	res := StandardResult{Standard: std}
	for _, cfg := range standardConfigs(std) {
		var sp, en, hr, rh, lat []float64
		for _, app := range r.singleApps() {
			base, err := r.Run(crow.Options{Mechanism: crow.Baseline, Standard: std, Workloads: []string{app.Name}})
			if err != nil {
				return StandardResult{}, err
			}
			o := cfg.o
			o.Workloads = []string{app.Name}
			rep, err := r.Run(o)
			if err != nil {
				return StandardResult{}, err
			}
			sp = append(sp, metrics.Speedup(rep.IPC[0], base.IPC[0]))
			en = append(en, rep.EnergyNJ.Total()/base.EnergyNJ.Total())
			hr = append(hr, rep.CROWTableHitRate)
			rh = append(rh, rep.RowHitRate)
			lat = append(lat, rep.AvgReadLatencyNs)
		}
		res.Rows = append(res.Rows, StandardRow{
			Name: cfg.name, Speedup: metrics.Mean(sp), HitRate: metrics.Mean(hr),
			EnergyRatio: metrics.Mean(en), RowHitRate: metrics.Mean(rh), ReadNs: metrics.Mean(lat),
		})
	}
	return res, nil
}

// Row returns the named design point.
func (s StandardResult) Row(name string) StandardRow {
	for _, row := range s.Rows {
		if row.Name == name {
			return row
		}
	}
	return StandardRow{}
}

// Table renders the cross-standard study.
func (s StandardResult) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Extension: CROW mechanisms on %s (vs %s baseline)", s.Standard, s.Standard),
		Header: []string{"mechanism", "speedup", "table hit rate", "energy ratio", "row hits", "read ns"},
		Notes: []string{
			"same mechanisms, different device: only Options.Standard changed;",
			"timings, bank counts and refresh granularity come from the standard registry",
		},
	}
	for _, row := range s.Rows {
		t.Rows = append(t.Rows, []string{row.Name, pct(row.Speedup), pct2(row.HitRate),
			fmt.Sprintf("%.3f", row.EnergyRatio), pct2(row.RowHitRate), fmt.Sprintf("%.1f", row.ReadNs)})
	}
	return t
}

// DDR4Plan declares the DDR4 cross-standard study's runs.
func DDR4Plan(r *Runner) []crow.Options { return StandardPlan("ddr4")(r) }

// DDR4Study runs the cross-standard study on DDR4-3200 (all-bank refresh,
// 16 banks, 8 KiB rows).
func DDR4Study(r *Runner) (StandardResult, error) { return StandardStudy(r, "ddr4") }

// DDR5Plan declares the DDR5 cross-standard study's runs.
func DDR5Plan(r *Runner) []crow.Options { return StandardPlan("ddr5")(r) }

// DDR5Study runs the cross-standard study on DDR5-4800 (same-bank refresh).
func DDR5Study(r *Runner) (StandardResult, error) { return StandardStudy(r, "ddr5") }

// HBM2Plan declares the HBM2 cross-standard study's runs.
func HBM2Plan(r *Runner) []crow.Options { return StandardPlan("hbm2")(r) }

// HBM2Study runs the cross-standard study on HBM2 (pseudo-channels,
// per-bank refresh).
func HBM2Study(r *Runner) (StandardResult, error) { return StandardStudy(r, "hbm2") }

// LPDDR5Plan declares the LPDDR5 cross-standard study's runs.
func LPDDR5Plan(r *Runner) []crow.Options { return StandardPlan("lpddr5")(r) }

// LPDDR5Study runs the cross-standard study on LPDDR5-6400 (16 banks,
// per-bank refresh) — the mobile successor to the paper's LPDDR4 baseline.
func LPDDR5Study(r *Runner) (StandardResult, error) { return StandardStudy(r, "lpddr5") }
