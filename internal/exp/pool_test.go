package exp

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"crowdram/crow"
	"crowdram/internal/engine"
)

// TestSharedPoolCrossRunnerCache proves the crowserve cache model: two
// Runners sharing one engine pool memoize across each other — the second
// Runner's identical run is a cache hit, not a fresh execution.
func TestSharedPoolCrossRunnerCache(t *testing.T) {
	pool := engine.New[crow.Report](2)
	var execs atomic.Int64
	hook := func(ctx context.Context, o crow.Options) (crow.Report, error) {
		execs.Add(1)
		return crow.Report{Mechanism: o.Mechanism, IPC: []float64{1}}, nil
	}
	scale := QuickScale()
	o := crow.Options{Mechanism: crow.Cache, Workloads: []string{"mcf"}}

	r1 := NewRunner(scale, UsePool(pool), RunWith(hook))
	r2 := NewRunner(scale, UsePool(pool), RunWith(hook))
	rep1, err := r1.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := r2.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("two runners sharing a pool must execute once, got %d", n)
	}
	if rep1.Mechanism != rep2.Mechanism || rep1.IPC[0] != rep2.IPC[0] {
		t.Errorf("shared-pool results differ: %+v vs %+v", rep1, rep2)
	}
	s := pool.Snapshot()
	if s.Executions != 1 || s.CacheHits != 1 {
		t.Errorf("pool snapshot = %+v, want 1 execution + 1 cache hit", s)
	}
}

// TestKeyOfMatchesPoolKeys proves KeyOf is the key the pool actually caches
// under, and that runners at the same scale agree on it.
func TestKeyOfMatchesPoolKeys(t *testing.T) {
	pool := engine.New[crow.Report](1)
	hook := func(context.Context, crow.Options) (crow.Report, error) {
		return crow.Report{IPC: []float64{1}}, nil
	}
	r := NewRunner(QuickScale(), UsePool(pool), RunWith(hook))
	o := crow.Options{Mechanism: crow.Ref, Workloads: []string{"lbm"}}
	if _, err := r.Run(o); err != nil {
		t.Fatal(err)
	}
	if _, ok := pool.Get(r.KeyOf(o)); !ok {
		t.Error("KeyOf must name the pool's cache entry for the run")
	}
	other := NewRunner(QuickScale(), UsePool(pool), RunWith(hook))
	if r.KeyOf(o) != other.KeyOf(o) {
		t.Error("runners at the same scale must agree on keys")
	}
	if r.KeyOf(o) == NewRunner(DefaultScale(), RunWith(hook)).KeyOf(o) {
		t.Error("runners at different scales must not collide on keys")
	}
}

// TestRunnerCancellationDoesNotPoisonSharedCache: a run cancelled mid-flight
// fails with the context error and is evicted, so a later request on the
// same shared pool re-executes and succeeds — the DELETE /v1/jobs contract.
func TestRunnerCancellationDoesNotPoisonSharedCache(t *testing.T) {
	pool := engine.New[crow.Report](1)
	o := crow.Options{Mechanism: crow.Cache, Workloads: []string{"mcf"}}

	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	blocking := NewRunner(QuickScale(), UsePool(pool), WithContext(ctx),
		RunWith(func(ctx context.Context, _ crow.Options) (crow.Report, error) {
			close(entered)
			<-ctx.Done() // context-aware hook: stops promptly on cancel
			return crow.Report{}, ctx.Err()
		}))
	done := make(chan error, 1)
	go func() {
		_, err := blocking.Run(o)
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	var execs atomic.Int64
	retry := NewRunner(QuickScale(), UsePool(pool),
		RunWith(func(context.Context, crow.Options) (crow.Report, error) {
			execs.Add(1)
			return crow.Report{IPC: []float64{2}}, nil
		}))
	rep, err := retry.Run(o)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if execs.Load() != 1 || rep.IPC[0] != 2 {
		t.Errorf("retry must re-execute fresh (execs=%d, rep=%+v)", execs.Load(), rep)
	}
	if s := pool.Snapshot(); s.Failures != 1 {
		t.Errorf("cancelled run must count as a failure: %+v", s)
	}
}
