package exp

import (
	"fmt"

	"crowdram/crow"
	"crowdram/internal/circuit"
	"crowdram/internal/retention"
)

// Table1 regenerates Table 1 (timing parameters for the new DRAM commands)
// from the analytical circuit model.
func Table1() Table {
	tb := circuit.Default().Table1()
	return Table{
		Title:  "Table 1: timing parameters for new DRAM commands (model / paper)",
		Header: []string{"command", "tRCD", "tRAS full", "tRAS early", "tWR full", "tWR early"},
		Rows: [][]string{
			{"ACT-t (fully restored)", pct(tb.TwoFullRCD), pct(tb.TwoFullRASFull), pct(tb.TwoFullRASEarly), pct(tb.TwoFullWRFull), pct(tb.TwoFullWREarly)},
			{"  paper", "-38%", "-7%", "-33%", "+14%", "-13%"},
			{"ACT-t (partially restored)", pct(tb.TwoPartialRCD), pct(tb.TwoPartialRASFull), pct(tb.TwoPartialRASEarly), pct(tb.TwoFullWRFull), pct(tb.TwoFullWREarly)},
			{"  paper", "-21%", "-7%", "-25%", "+14%", "-13%"},
			{"ACT-c", pct(tb.CopyRCD), pct(tb.CopyRASFull), pct(tb.CopyRASEarly), pct(tb.CopyWRFull), pct(tb.CopyWREarly)},
			{"  paper", "0%", "+18%", "-7%", "+14%", "-13%"},
		},
	}
}

// Fig5 regenerates Figure 5: latency change versus the number of
// simultaneously-activated rows.
func Fig5() Table {
	pts := circuit.Default().Fig5(9)
	t := Table{
		Title:  "Figure 5: latency change vs simultaneously-activated rows",
		Header: []string{"rows", "tRCD (5a)", "tRAS (5b)", "restore (5b)", "tWR (5b)"},
		Notes:  []string{"paper anchor: 2 rows -> tRCD -38%; tRAS dips for few rows, rises for >= 5"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Rows), pct(p.RCDDelta), pct(p.RASDelta), pct(p.RestoreDelta), pct(p.WRDelta),
		})
	}
	return t
}

// Fig6 regenerates Figure 6: the normalized tRCD-versus-tRAS trade-off for
// 2–4 simultaneously-activated rows under early-terminated restoration.
func Fig6() Table {
	m := circuit.Default()
	curves := m.Fig6(4, 8)
	t := Table{
		Title:  "Figure 6: normalized tRCD vs normalized tRAS (early-terminated restore)",
		Header: []string{"rows", "norm tRAS", "norm tRCD (next act)"},
		Notes: []string{fmt.Sprintf("chosen operating point (2 rows): tRAS %.0f%%, tRCD %.0f%% of baseline (paper: 67%%/79%%)",
			100*m.TRAS(2, m.Vfull, m.VrOp, false)/circuit.BaseRAS,
			100*m.TRCD(2, m.VrOp, true)/circuit.BaseRCD)},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(c.Rows),
				fmt.Sprintf("%.3f", p.RAS/circuit.BaseRAS),
				fmt.Sprintf("%.3f", p.RCD/circuit.BaseRCD),
			})
		}
	}
	return t
}

// Fig7 regenerates Figure 7: MRA activation power and copy-row decoder area
// versus the number of rows.
func Fig7() Table {
	t := Table{
		Title:  "Figure 7: power and area overhead of MRA",
		Header: []string{"rows", "act power overhead", "decoder area overhead", "chip area overhead"},
		Notes:  []string{"paper anchors: 2 rows -> +5.8% power; 8 copy rows -> +4.8% decoder, +0.48% chip"},
	}
	for n := 1; n <= 9; n++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			pct(circuit.MRAPowerFactor(n) - 1),
			pct(circuit.DecoderOverhead(n)),
			pct(circuit.ChipOverhead(n)),
		})
	}
	return t
}

// WeakProb regenerates the Section 4.2.1 weak-row probability analysis
// (Equations 1 and 2).
func WeakProb() Table {
	pRow, pAny := crow.WeakRowProbabilities(retention.DefaultBER, 8)
	t := Table{
		Title:  "Section 4.2.1: weak-row probabilities (BER 4e-9, 8 KiB rows)",
		Header: []string{"copy rows n", "P(any subarray > n weak rows)", "paper"},
		Notes:  []string{fmt.Sprintf("P(row weak) = %.3g (Equation 1)", pRow)},
	}
	paper := map[int]string{1: "0.99", 2: "3.1e-1", 4: "3.3e-4", 8: "3.3e-11"}
	for n := 1; n <= 8; n++ {
		ref := paper[n]
		if ref == "" {
			ref = "-"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.3g", pAny[n-1]), ref})
	}
	return t
}

// Overhead regenerates the Section 6 hardware-overhead numbers.
func Overhead() Table {
	t := Table{
		Title:  "Section 6: CROW hardware overhead",
		Header: []string{"copy rows", "CROW-table KB/chan", "table access ns", "decoder um^2", "decoder ovh", "chip ovh", "capacity ovh"},
		Notes:  []string{"paper (CROW-8): 11.3 KB, 0.14 ns, 9.6 um^2, 4.8%, 0.48%, 1.6%"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		o := crow.OverheadsFor(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", o.CROWTableKB),
			fmt.Sprintf("%.3f", o.CROWTableAccessNs),
			fmt.Sprintf("%.1f", o.DecoderArea),
			pct2(o.DecoderOverhead),
			pct2(o.ChipArea),
			pct2(o.Capacity),
		})
	}
	return t
}
