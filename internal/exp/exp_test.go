package exp

import (
	"strings"
	"sync/atomic"
	"testing"

	"crowdram/internal/engine"
)

func TestAnalyticTablesRender(t *testing.T) {
	tables := []Table{Table1(), Fig5(), Fig6(), Fig7(), WeakProb(), Overhead()}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.Title)
		}
		s := tb.String()
		if !strings.Contains(s, tb.Title) {
			t.Errorf("rendering must include the title")
		}
		for _, row := range tb.Rows {
			if len(row) > len(tb.Header) {
				t.Errorf("%s: row wider than header", tb.Title)
			}
		}
	}
}

func TestTable1Content(t *testing.T) {
	tb := Table1()
	s := tb.String()
	// The model's ACT-t fully-restored tRCD must round to the paper's -38%.
	if !strings.Contains(s, "-38.0%") {
		t.Errorf("Table 1 must show the -38%% tRCD reduction:\n%s", s)
	}
}

func TestFig5Shape(t *testing.T) {
	tb := Fig5()
	if len(tb.Rows) != 9 {
		t.Fatalf("Figure 5 sweeps 1..9 rows, got %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "+0.0%" {
		t.Errorf("row 1 must be baseline, got %s", tb.Rows[0][1])
	}
}

// tinyScale keeps the simulation experiments fast enough for unit tests.
func tinyScale() Scale {
	return Scale{Insts: 20_000, Warmup: 2_000, MixesPerGroup: 1, Seed: 1,
		SingleApps: []string{"mcf", "soplex"}}
}

func TestFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	r := NewRunner(tinyScale())
	res, err := Fig8(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("apps = %v", res.Apps)
	}
	for _, app := range res.Apps {
		for _, c := range res.Configs {
			if hr := res.HitRate[c][app]; hr < 0 || hr > 1 {
				t.Errorf("%s CROW-%d hit rate %f out of range", app, c, hr)
			}
		}
		if res.Ideal[app] < -0.05 {
			t.Errorf("%s: ideal CROW-cache should not slow down (%.3f)", app, res.Ideal[app])
		}
	}
	// More copy rows never hurt the average hit rate.
	if res.AvgHitRate[8] < res.AvgHitRate[1]-0.01 {
		t.Errorf("hit rate must not degrade with more copy rows: %f vs %f",
			res.AvgHitRate[8], res.AvgHitRate[1])
	}
	if res.Table().Rows == nil {
		t.Error("table must render")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	var runs atomic.Int64
	r := NewRunner(tinyScale(), Observe(func(e engine.Event) {
		if e.Type == engine.EventFinished {
			runs.Add(1)
		}
	}))
	if _, err := Fig8(r); err != nil {
		t.Fatal(err)
	}
	first := runs.Load()
	if _, err := Fig8(r); err != nil { // fully cached
		t.Fatal(err)
	}
	if got := runs.Load(); got != first {
		t.Errorf("second Fig8 must hit the cache entirely (%d -> %d runs)", first, got)
	}
	if first == 0 {
		t.Error("observer must see fresh runs finish")
	}
}

// TestPlanCoversReduce asserts the tentpole invariant: after Execute(Plan),
// the reduce phase performs zero fresh simulations — every run it requests,
// including recursive alone-run baselines, was declared in the plan.
func TestPlanCoversReduce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	for _, e := range Experiments() {
		if e.Plan == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			var fresh atomic.Int64
			executed := make(chan struct{})
			r := NewRunner(tinyScale(), Workers(4), Observe(func(ev engine.Event) {
				if ev.Type == engine.EventFinished {
					select {
					case <-executed:
						fresh.Add(1)
					default:
					}
				}
			}))
			if err := r.Execute(e.Plan(r)); err != nil {
				t.Fatal(err)
			}
			close(executed)
			if _, err := e.Table(r); err != nil {
				t.Fatal(err)
			}
			if n := fresh.Load(); n != 0 {
				t.Errorf("reduce phase ran %d simulations not declared in the plan", n)
			}
		})
	}
}

// TestParallelMatchesSequential is the determinism guard: rendered output
// must be byte-identical whether runs execute on one worker or four, in
// whatever order the scheduler picks.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment (QuickScale)")
	}
	render := func(workers int) string {
		r := NewRunner(QuickScale(), Workers(workers))
		sel := []Experiment{}
		for _, e := range Experiments() {
			if e.Name == "fig8" || e.Name == "fig9" {
				sel = append(sel, e)
			}
		}
		if err := r.Execute(PlanAll(r, sel)); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, e := range sel {
			tb, err := e.Table(r)
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(tb.String())
		}
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Errorf("-j 4 output differs from -j 1 output:\n--- j1 ---\n%s\n--- j4 ---\n%s", seq, par)
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	s := tinyScale()
	s.SingleApps = []string{"mcf"}
	// Refresh fires every ~31k CPU cycles; the run must span many
	// refresh intervals for CROW-ref to show.
	s.Insts = 120_000
	s.Warmup = 12_000
	r := NewRunner(s)
	res, err := Fig13(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("Figure 13 sweeps 4 densities")
	}
	// Refresh savings must grow with density.
	lo, hi := res.Point(8), res.Point(64)
	if hi.SingleSpeedup <= lo.SingleSpeedup {
		t.Errorf("CROW-ref speedup must grow with density: %f vs %f",
			hi.SingleSpeedup, lo.SingleSpeedup)
	}
	if hi.SingleEnergy >= lo.SingleEnergy {
		t.Errorf("CROW-ref energy savings must grow with density")
	}
}
