package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment reports under testdata/golden/")

// TestGoldenReports renders every registered experiment at QuickScale and
// compares the rendered tables byte-for-byte against the golden files under
// testdata/golden/. The engine memoizes deterministically, so the output is
// identical at any worker count; any byte of drift is a behavior change that
// must be either fixed or consciously accepted by regenerating the goldens
// with:
//
//	go test ./internal/exp -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regression runs the full QuickScale sweep; skipped in -short")
	}
	r := NewRunner(QuickScale(), Workers(4))
	if err := r.Execute(PlanAll(r, Experiments())); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			tbl, err := e.Table(r)
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(tbl.String())
			path := filepath.Join("testdata", "golden", e.Name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file for %s (generate with -update): %v", e.Name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from its golden report.\n--- golden ---\n%s\n--- got ---\n%s",
					e.Name, want, got)
			}
		})
	}
}
