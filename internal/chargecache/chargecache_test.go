package chargecache

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

func newCC() *Mechanism {
	g := dram.Std(0)
	t := dram.LPDDR4(dram.Density8Gb, 64, g)
	return New(1, t, 4)
}

func TestColdActivationUsesBaseTimings(t *testing.T) {
	m := newCC()
	d := m.PlanActivate(dram.Addr{Row: 5}, 0)
	if d.Timing != m.base {
		t.Errorf("cold row must use base timings: %+v", d.Timing)
	}
	m.OnActivate(dram.Addr{Row: 5}, d, 0)
	if m.Misses != 1 {
		t.Error("cold activation is a miss")
	}
}

func TestRecentlyPrechargedRowIsFast(t *testing.T) {
	m := newCC()
	a := dram.Addr{Row: 5}
	m.OnPrecharge(a, 5, true, 100)
	d := m.PlanActivate(a, 200)
	if d.Timing != m.charged {
		t.Fatalf("recently-precharged row must be highly charged: %+v", d.Timing)
	}
	if d.Timing.RCD >= m.T.RCD || d.Timing.RAS >= m.T.RAS {
		t.Error("charged timings must be reduced")
	}
	m.OnActivate(a, d, 200)
	if m.Hits != 1 {
		t.Error("hit must be counted")
	}
}

func TestChargeExpires(t *testing.T) {
	m := newCC()
	a := dram.Addr{Row: 5}
	m.OnPrecharge(a, 5, true, 100)
	late := 100 + m.window + 1
	if d := m.PlanActivate(a, late); d.Timing != m.base {
		t.Error("the benefit must expire after the window (cells leak)")
	}
}

func TestTableCapacityFIFO(t *testing.T) {
	m := newCC() // capacity 4
	for row := 0; row < 6; row++ {
		m.OnPrecharge(dram.Addr{Row: row}, row, true, int64(100+row))
	}
	if d := m.PlanActivate(dram.Addr{Row: 0}, 110); d.Timing != m.base {
		t.Error("row 0 must have been pushed out of the 4-entry table")
	}
	if d := m.PlanActivate(dram.Addr{Row: 5}, 110); d.Timing != m.charged {
		t.Error("row 5 must still be tracked")
	}
}

func TestReprechargeRefreshesEntry(t *testing.T) {
	m := newCC()
	a := dram.Addr{Row: 5}
	m.OnPrecharge(a, 5, true, 100)
	m.OnPrecharge(a, 5, true, int64(100)+m.window/2)
	// Just past the first window but within the second.
	at := int64(100) + m.window + 10
	if d := m.PlanActivate(a, at); d.Timing != m.charged {
		t.Error("a re-precharge must renew the charge window")
	}
}

func TestDistinctBanksDoNotAlias(t *testing.T) {
	m := newCC()
	m.OnPrecharge(dram.Addr{Bank: 0, Row: 5}, 5, true, 100)
	if d := m.PlanActivate(dram.Addr{Bank: 1, Row: 5}, 150); d.Timing != m.base {
		t.Error("same row index in another bank must miss")
	}
}

func TestMechanismInterface(t *testing.T) {
	var _ core.Mechanism = newCC()
	m := newCC()
	if m.RefreshMultiplier() != 1 {
		t.Error("ChargeCache does not change refresh")
	}
	if m.StorageKB() <= 0 {
		t.Error("storage estimate must be positive")
	}
}
