// Package chargecache implements the ChargeCache baseline (Hassan et al.,
// HPCA 2016 [26]), which Section 9 of the CROW paper discusses as related
// work: rows that were precharged very recently still hold nearly full
// charge, so re-activating them within a short window is safe at reduced
// tRCD/tRAS. Unlike CROW-cache, the benefit expires within about a
// millisecond as the cells leak; CROW's duplicated rows stay fast
// indefinitely (until evicted), which is why the paper argues CROW-cache
// captures more in-DRAM locality.
package chargecache

import (
	"crowdram/internal/core"
	"crowdram/internal/dram"
)

// Timing deltas for highly-charged rows, from the ChargeCache paper's SPICE
// analysis.
const (
	RCDDelta = -0.23
	RASDelta = -0.17
	// WindowNs is the caching duration: how long after a precharge a row
	// still counts as highly charged (1 ms in the paper).
	WindowNs = 1e6
)

// entry records one recently-precharged row.
type entry struct {
	rank, bank, row int
	closedAt        int64
}

// Mechanism is the ChargeCache controller policy. It satisfies
// core.Mechanism.
type Mechanism struct {
	T       dram.Timing
	Entries int // table capacity per channel (128 in the paper)

	base, charged dram.ActTimings
	window        int64
	tables        [][]entry // FIFO per channel

	// Stats.
	Hits, Misses int64
}

// New builds the mechanism with the given per-channel table capacity.
func New(channels int, t dram.Timing, entries int) *Mechanism {
	scale := func(base int, d float64) int {
		v := int(float64(base)*(1+d) + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	ras := scale(t.RAS, RASDelta)
	m := &Mechanism{
		T:       t,
		Entries: entries,
		base:    t.Base(),
		charged: dram.ActTimings{RCD: scale(t.RCD, RCDDelta), RAS: ras, RASFull: ras, WR: t.WR},
		window:  int64(WindowNs / t.CycleTime()),
		tables:  make([][]entry, channels),
	}
	return m
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string { return "chargecache" }

// HitRate returns the fraction of activations that found a highly-charged
// row.
func (m *Mechanism) HitRate() float64 {
	if m.Hits+m.Misses == 0 {
		return 0
	}
	return float64(m.Hits) / float64(m.Hits+m.Misses)
}

// PlanActivate implements core.Mechanism: rows precharged within the window
// activate at reduced latency.
func (m *Mechanism) PlanActivate(a dram.Addr, cycle int64) core.ActDecision {
	tbl := m.tables[a.Channel]
	for i := len(tbl) - 1; i >= 0; i-- {
		e := tbl[i]
		if cycle-e.closedAt > m.window {
			break // older entries are all expired (FIFO order)
		}
		if e.rank == a.Rank && e.bank == a.Bank && e.row == a.Row {
			return core.ActDecision{Kind: dram.ActSingle, Timing: m.charged}
		}
	}
	return core.ActDecision{Kind: dram.ActSingle, Timing: m.base}
}

// OnActivate implements core.Mechanism.
func (m *Mechanism) OnActivate(a dram.Addr, d core.ActDecision, cycle int64) {
	if d.Timing == m.charged {
		m.Hits++
	} else {
		m.Misses++
	}
}

// OnPrecharge implements core.Mechanism: the closed row becomes highly
// charged for the next window.
func (m *Mechanism) OnPrecharge(a dram.Addr, openRow int, fullyRestored bool, cycle int64) {
	tbl := m.tables[a.Channel]
	// Drop expired entries from the front and an existing copy of this row.
	for len(tbl) > 0 && cycle-tbl[0].closedAt > m.window {
		tbl = tbl[1:]
	}
	for i := range tbl {
		if tbl[i].rank == a.Rank && tbl[i].bank == a.Bank && tbl[i].row == openRow {
			tbl = append(tbl[:i], tbl[i+1:]...)
			break
		}
	}
	tbl = append(tbl, entry{rank: a.Rank, bank: a.Bank, row: openRow, closedAt: cycle})
	if len(tbl) > m.Entries {
		tbl = tbl[len(tbl)-m.Entries:]
	}
	m.tables[a.Channel] = tbl
}

// OnRefreshRows implements core.Mechanism.
func (m *Mechanism) OnRefreshRows(int, int, int, int, int) {}

// RefreshMultiplier implements core.Mechanism.
func (m *Mechanism) RefreshMultiplier() int { return 1 }

// StorageKB returns the per-channel controller storage: each entry needs
// rank+bank+row bits plus a coarse timestamp (~34 bits).
func (m *Mechanism) StorageKB() float64 { return float64(m.Entries) * 34 / 8 / 1000 }
