package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"crowdram/internal/dram"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestCalibrationBaselines(t *testing.T) {
	m := Default()
	if got := m.TRCD(1, m.Vfull, false); !almost(got, BaseRCD, 1e-6) {
		t.Errorf("tRCD(1) = %.4f ns, want %.4f", got, BaseRCD)
	}
	if got := m.TRAS(1, m.Vfull, m.Vfull, false); !almost(got, BaseRAS, 1e-6) {
		t.Errorf("tRAS(1) = %.4f ns, want %.4f", got, BaseRAS)
	}
	if got := m.TWR(1, m.Vfull); !almost(got, BaseWR, 1e-6) {
		t.Errorf("tWR(1) = %.4f ns, want %.4f", got, BaseWR)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Default().Table1()
	cases := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		// Calibrated exactly.
		{"ACT-t full tRCD", tb.TwoFullRCD, -0.38, 0.005},
		{"ACT-t full tRAS early", tb.TwoFullRASEarly, -0.33, 0.005},
		{"ACT-t partial tRCD", tb.TwoPartialRCD, -0.21, 0.005},
		{"ACT-c tRAS full", tb.CopyRASFull, +0.18, 0.005},
		{"ACT-t WR full", tb.TwoFullWRFull, +0.14, 0.005},
		// Predicted by the model; the paper's SPICE values are the
		// targets, with a few points of slack for the lumped model.
		{"ACT-t full tRAS full", tb.TwoFullRASFull, -0.07, 0.03},
		{"ACT-t partial tRAS early", tb.TwoPartialRASEarly, -0.25, 0.03},
		{"ACT-c tRAS early", tb.CopyRASEarly, -0.07, 0.04},
		{"ACT-t WR early", tb.TwoFullWREarly, -0.13, 0.03},
	}
	for _, c := range cases {
		if !almost(c.got, c.want, c.tol) {
			t.Errorf("%s = %+.3f, want %+.3f (tol %.3f)", c.name, c.got, c.want, c.tol)
		}
	}
}

// TestTable1AgreesWithDRAMTimings cross-checks the constants hard-coded in
// internal/dram (used by the simulator) against the analytical model.
func TestTable1AgreesWithDRAMTimings(t *testing.T) {
	tb := Default().Table1()
	pairs := []struct {
		name  string
		model float64
		dram  float64
		tol   float64
	}{
		{"TwoFull.RCD", tb.TwoFullRCD, dram.TwoFullRCDDelta, 0.01},
		{"TwoPartial.RCD", tb.TwoPartialRCD, dram.TwoPartialRCDDelta, 0.01},
		{"TwoFull.RASearly", tb.TwoFullRASEarly, dram.TwoFullRASDelta, 0.01},
		{"TwoPartial.RASearly", tb.TwoPartialRASEarly, dram.TwoPartialRASDelta, 0.03},
		{"Copy.RASfull", tb.CopyRASFull, dram.CopyFullRASDelta, 0.01},
		{"Copy.RASearly", tb.CopyRASEarly, dram.CopyEarlyRASDelta, 0.04},
		{"WR.early", tb.TwoFullWREarly, dram.EarlyWRDelta, 0.03},
		{"WR.full", tb.TwoFullWRFull, dram.FullWRDelta, 0.01},
	}
	for _, p := range pairs {
		if !almost(p.model, p.dram, p.tol) {
			t.Errorf("%s: circuit model %+.3f vs dram constant %+.3f", p.name, p.model, p.dram)
		}
	}
}

func TestFig5Monotonicity(t *testing.T) {
	pts := Default().Fig5(9)
	if len(pts) != 9 {
		t.Fatalf("Fig5 returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RCDDelta >= pts[i-1].RCDDelta {
			t.Errorf("tRCD must keep decreasing with rows: n=%d %.3f >= %.3f", pts[i].Rows, pts[i].RCDDelta, pts[i-1].RCDDelta)
		}
		if pts[i].RestoreDelta <= pts[i-1].RestoreDelta {
			t.Errorf("restore time must keep increasing with rows")
		}
		if pts[i].WRDelta <= pts[i-1].WRDelta {
			t.Errorf("tWR must keep increasing with rows")
		}
	}
	// Diminishing returns: the per-row tRCD gain shrinks.
	gain1 := pts[0].RCDDelta - pts[1].RCDDelta
	gainLast := pts[7].RCDDelta - pts[8].RCDDelta
	if gainLast >= gain1 {
		t.Errorf("tRCD gains must diminish: first %.4f, last %.4f", gain1, gainLast)
	}
	if pts[0].RCDDelta != 0 || pts[0].RASDelta != 0 {
		t.Errorf("n=1 must be the baseline: %+v", pts[0])
	}
}

// TestFig5RASShape reproduces the paper's observation that tRAS decreases
// slightly for a small number of rows and increases for five or more.
func TestFig5RASShape(t *testing.T) {
	pts := Default().Fig5(9)
	if pts[1].RASDelta >= 0 {
		t.Errorf("tRAS at n=2 must decrease (got %+.3f)", pts[1].RASDelta)
	}
	if pts[8].RASDelta <= 0 {
		t.Errorf("tRAS at n=9 must increase (got %+.3f)", pts[8].RASDelta)
	}
}

func TestFig6TradeOffShape(t *testing.T) {
	curves := Default().Fig6(4, 16)
	if len(curves) != 3 {
		t.Fatalf("Fig6 returned %d curves, want 3 (n=2..4)", len(curves))
	}
	for _, c := range curves {
		for i := 1; i < len(c.Points); i++ {
			// Higher restore voltage: longer tRAS, shorter next tRCD.
			if c.Points[i].RAS <= c.Points[i-1].RAS {
				t.Errorf("n=%d: tRAS must increase with restore level", c.Rows)
			}
			if c.Points[i].RCD >= c.Points[i-1].RCD {
				t.Errorf("n=%d: next-activation tRCD must decrease with restore level", c.Rows)
			}
		}
	}
	// More rows allow deeper tRAS reduction at equal safety.
	min2 := curves[0].Points[0].RAS
	min3 := curves[1].Points[0].RAS
	if min3 >= min2 {
		t.Errorf("n=3 must reach lower tRAS than n=2 (%.2f vs %.2f)", min3, min2)
	}
}

func TestOperatingPointWithinSafeRange(t *testing.T) {
	m := Default()
	if m.VrOp < m.MinPartialRestore(2) {
		t.Errorf("operating restore %.4f V below safe minimum %.4f V", m.VrOp, m.MinPartialRestore(2))
	}
	if m.VrOp >= m.Vfull {
		t.Errorf("operating restore must be partial (%.4f >= %.4f)", m.VrOp, m.Vfull)
	}
}

func TestMRAPowerFactor(t *testing.T) {
	if got := MRAPowerFactor(1); got != 1 {
		t.Errorf("single-row power factor = %.3f, want 1", got)
	}
	if got := MRAPowerFactor(2); !almost(got, 1.058, 1e-9) {
		t.Errorf("two-row power factor = %.3f, want 1.058 (paper: +5.8%%)", got)
	}
	for n := 2; n <= 9; n++ {
		if MRAPowerFactor(n) <= MRAPowerFactor(n-1) {
			t.Error("power must grow with simultaneously-activated rows")
		}
	}
}

func TestAreaModel(t *testing.T) {
	if got := CopyDecoderArea(8); !almost(got, 9.6, 1e-9) {
		t.Errorf("CROW-8 decoder area = %.2f µm², want 9.6", got)
	}
	if got := DecoderOverhead(8); !almost(got, 0.048, 0.001) {
		t.Errorf("CROW-8 decoder overhead = %.4f, want ~0.048", got)
	}
	if got := ChipOverhead(8); !almost(got, 0.0048, 0.0002) {
		t.Errorf("CROW-8 chip overhead = %.5f, want ~0.0048", got)
	}
	if got := CapacityOverhead(8, 512); !almost(got, 0.015625, 1e-9) {
		t.Errorf("CROW-8 capacity overhead = %.4f, want 1.5625%%", got)
	}
}

func TestBaselineAreaModels(t *testing.T) {
	if got := TLDRAMChipOverhead(8); !almost(got, 0.069, 0.001) {
		t.Errorf("TL-DRAM-8 chip overhead = %.4f, want ~0.069", got)
	}
	cases := map[int]float64{128: 0.006, 256: 0.289, 512: 0.845}
	for s, want := range cases {
		if got := SALPChipOverhead(s); !almost(got, want, 1e-9) {
			t.Errorf("SALP-%d chip overhead = %.4f, want %.4f", s, got, want)
		}
	}
	if SALPChipOverhead(192) <= 0.006 || SALPChipOverhead(192) >= 0.289 {
		t.Error("interpolation between table points broken")
	}
	if SALPChipOverhead(1024) <= 0.845 {
		t.Error("extrapolation beyond table broken")
	}
}

func TestTLDRAMTimings(t *testing.T) {
	rcd, ras, far := Default().TLDRAMTimings(8)
	if !almost(rcd, -0.73, 0.05) {
		t.Errorf("TL-DRAM-8 near tRCD delta = %+.3f, want ≈ −0.73", rcd)
	}
	if !almost(ras, -0.80, 0.08) {
		t.Errorf("TL-DRAM-8 near tRAS delta = %+.3f, want ≈ −0.80", ras)
	}
	if far <= 0 || far > 0.1 {
		t.Errorf("far-segment penalty %.3f out of range", far)
	}
	// A smaller near segment must be at least as fast.
	rcd1, _, _ := Default().TLDRAMTimings(1)
	if rcd1 > rcd {
		t.Error("one-row near segment must not be slower than eight-row")
	}
}

// TestRestoreMonotonicInTarget: restoring to a higher voltage always takes
// longer, for any cell count — property test.
func TestRestoreMonotonicInTarget(t *testing.T) {
	m := Default()
	f := func(nRaw uint8, aRaw, bRaw uint16) bool {
		n := int(nRaw%8) + 1
		lo := m.Vref + 0.05
		a := lo + (m.Vfull-lo)*float64(aRaw)/65535
		b := lo + (m.Vfull-lo)*float64(bRaw)/65535
		if a > b {
			a, b = b, a
		}
		return m.RestoreTime(n, a) <= m.RestoreTime(n, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestSenseMonotonicInCharge: more restored charge never slows sensing.
func TestSenseMonotonicInCharge(t *testing.T) {
	m := Default()
	f := func(nRaw uint8, aRaw, bRaw uint16) bool {
		n := int(nRaw%8) + 1
		lo := m.Vref + 0.05
		a := lo + (m.Vfull-lo)*float64(aRaw)/65535
		b := lo + (m.Vfull-lo)*float64(bRaw)/65535
		if a > b {
			a, b = b, a
		}
		return m.TRCD(n, b, false) <= m.TRCD(n, a, false)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMinPartialRestoreSafety(t *testing.T) {
	m := Default()
	for n := 2; n <= 4; n++ {
		vr := m.MinPartialRestore(n)
		dv := m.ChargeShareDV(n, m.ReadVoltage(vr), m.Cb) * (1 - m.PartialDerate)
		if dv < m.MinSenseDV()-1e-9 {
			t.Errorf("n=%d: minimum restore %.4f V does not meet the sense margin", n, vr)
		}
		if n > 2 && vr >= m.MinPartialRestore(n-1) {
			t.Errorf("more rows must allow lower restore targets")
		}
	}
}
