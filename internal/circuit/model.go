// Package circuit provides an analytical stand-in for the CROW paper's
// circuit-level SPICE simulations (Section 5).
//
// The paper derives the timing impact of multiple-row activation (MRA) from
// 22 nm SPICE Monte-Carlo runs. This package models the same physics
// analytically:
//
//   - charge sharing between N cell capacitors and the bitline determines the
//     initial sense-amplifier input ΔV0,
//   - sensing is modelled as slew-limited with latency K/ΔV0,
//   - restoration drives the bitline plus N cell capacitors through the sense
//     amplifier's output resistance (exponential RC settling), and
//   - typical-cell leakage over the refresh window decays the stored voltage.
//
// Free parameters are calibrated so that the N=1 latencies equal the LPDDR4
// baselines (tRCD/tRAS/tWR = 18.125/41.875/18.125 ns) and the N=2 points
// reproduce the paper's SPICE percentages (Table 1, Figures 5 and 6) within a
// couple of points. Two explicitly documented correction factors absorb the
// effects the lumped model cannot express (copy-cell disturbance during
// ACT-c, and the Monte-Carlo guard band on partially-restored reads).
package circuit

import "math"

// Model holds the lumped circuit parameters. All voltages in volts,
// capacitances in femtofarads, times in nanoseconds.
type Model struct {
	Vdd   float64 // supply voltage
	Vref  float64 // bitline precharge voltage (Vdd/2)
	Vfull float64 // full-restoration cell voltage
	Cc    float64 // cell capacitance (fF)
	Cb    float64 // bitline capacitance (fF)

	// TauRet is the typical-cell retention decay constant (ns). Typical
	// cells retain for seconds; only the rare weak cells (handled by
	// internal/retention) approach the refresh window.
	TauRet float64
	// Window is the refresh window the cells must survive (ns).
	Window float64

	// T0 is the wordline-enable plus charge-sharing delay (ns).
	T0 float64
	// K is the slew-limited sensing constant (V·ns): sense time = K/ΔV0.
	K float64
	// RsaCb is the restoration time constant of the bare bitline,
	// Rsa·Cb scaled so that tau(N) = RsaCb·(Cb+N·Cc)/(Cb+Cc) (ns).
	RsaCb float64
	// W0 and RwCb play the same roles for the write driver (tWR).
	W0, RwCb float64

	// CopyDisturb is the extra restoration time of ACT-c caused by the
	// copy cell's stale charge disturbing the latched bitline when its
	// wordline is enabled (ns). Calibrated to the paper's +18 % tRAS.
	CopyDisturb float64
	// PartialDerate is the Monte-Carlo guard band applied to the sense
	// margin of partially-restored rows (fraction of ΔV0 discarded).
	PartialDerate float64
	// VrOp is the early-termination restore target chosen as the paper's
	// operating point (tRAS −33 % for a two-row activation; Section 5.1).
	VrOp float64

	// SenseShareCap is the fixed sense-amplifier junction capacitance
	// used when scaling the bitline for TL-DRAM near segments (fF).
	SenseShareCap float64
}

// Default returns the calibrated 22 nm model used throughout the repository.
func Default() *Model {
	m := &Model{
		Vdd:           1.1,
		Cc:            20,
		Cb:            80,
		TauRet:        2e9,  // 2 s typical retention
		Window:        64e6, // 64 ms refresh window
		SenseShareCap: 4,    // fF
	}
	m.Vref = m.Vdd / 2
	m.Vfull = 0.975 * m.Vdd
	m.calibrate()
	return m
}

// Baseline LPDDR4 latencies in nanoseconds (Table 2: 29/67/29 cycles at
// 0.625 ns per cycle).
const (
	BaseRCD = 18.125
	BaseRAS = 41.875
	BaseWR  = 18.125
)

// calibrate solves for T0, K, RsaCb, W0 and RwCb so that the N=1 latencies
// match the LPDDR4 baselines and the N=2 tRCD reduction is the paper's −38 %.
func (m *Model) calibrate() {
	decayed := m.ReadVoltage(m.Vfull)
	dv1 := m.ChargeShareDV(1, decayed, m.Cb)
	dv2 := m.ChargeShareDV(2, decayed, m.Cb)
	// Solve T0 + K/dv1 = BaseRCD and T0 + K/dv2 = 0.62*BaseRCD.
	r := dv1 / dv2 // sense-time ratio for N=2
	// T0 + s = BaseRCD ; T0 + r*s = 0.62*BaseRCD, with s = K/dv1.
	s := (1 - 0.62) * BaseRCD / (1 - r)
	m.T0 = BaseRCD - s
	m.K = s * dv1

	// Restoration: BaseRAS - BaseRCD = tau(1) * ln((Vdd-Vref)/(Vdd-Vfull)).
	lr := math.Log((m.Vdd - m.Vref) / (m.Vdd - m.Vfull))
	m.RsaCb = (BaseRAS - BaseRCD) / lr

	// Write: W0 + RwCb*ln(Vdd/(Vdd-Vfull)) = BaseWR and the N=2
	// full-restoration write is +14 % (Table 1).
	lw := math.Log(m.Vdd / (m.Vdd - m.Vfull))
	x := 0.14 * BaseWR / (m.tauScale(2) - 1)
	m.W0 = BaseWR - x
	m.RwCb = x / lw

	// Operating point: the early-termination restore target at which a
	// two-row activation's tRAS is −33 % of baseline (Section 5.1).
	m.VrOp = m.solveRestoreForRAS(2, 0.67*BaseRAS)

	// Guard band: fit so that activating the partially-restored pair sees
	// tRCD −21 % (Table 1, second row).
	dvOp := m.ChargeShareDV(2, m.ReadVoltage(m.VrOp), m.Cb)
	m.PartialDerate = 1 - m.K/((0.79*BaseRCD-m.T0)*dvOp)

	// Copy-cell disturbance: fit so that a fully-restoring ACT-c sees
	// tRAS +18 % (Table 1, third row).
	m.CopyDisturb = 1.18*BaseRAS - m.TRCD(1, m.Vfull, false) - m.RestoreTime(2, m.Vfull)
}

// solveRestoreForRAS finds, by bisection, the restore target at which an
// n-row activation of a fully-restored pair reaches the given tRAS.
func (m *Model) solveRestoreForRAS(n int, targetRAS float64) float64 {
	lo, hi := m.Vref+0.01, m.Vfull
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.TRAS(n, m.Vfull, mid, false) < targetRAS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tauScale returns the restoration time-constant scaling for N cells,
// (Cb + N·Cc)/(Cb + Cc).
func (m *Model) tauScale(n int) float64 {
	return (m.Cb + float64(n)*m.Cc) / (m.Cb + m.Cc)
}

// ReadVoltage returns the worst-case cell voltage at the end of the refresh
// window for a cell restored to v.
func (m *Model) ReadVoltage(v float64) float64 {
	return v * math.Exp(-m.Window/m.TauRet)
}

// ChargeShareDV returns the bitline perturbation ΔV0 when n cells at voltage
// v share charge with a bitline of capacitance cb precharged to Vref.
func (m *Model) ChargeShareDV(n int, v, cb float64) float64 {
	nc := float64(n) * m.Cc
	return nc * (v - m.Vref) / (nc + cb)
}

// SenseTime returns the slew-limited sensing latency for an initial
// perturbation dv, optionally derated for partially-restored rows.
func (m *Model) SenseTime(dv float64) float64 { return m.K / dv }

// TRCD returns the activation latency (ns) of n simultaneously-activated
// rows whose cells were restored to voltage vRestore, read at the worst-case
// point of the refresh window. partial applies the Monte-Carlo guard band.
func (m *Model) TRCD(n int, vRestore float64, partial bool) float64 {
	dv := m.ChargeShareDV(n, m.ReadVoltage(vRestore), m.Cb)
	if partial {
		dv *= 1 - m.PartialDerate
	}
	return m.T0 + m.SenseTime(dv)
}

// RestoreTime returns the time (ns) for the sense amplifier to drive n cells
// and the bitline from Vref to the restore target vr.
func (m *Model) RestoreTime(n int, vr float64) float64 {
	return m.RsaCb * m.tauScale(n) * math.Log((m.Vdd-m.Vref)/(m.Vdd-vr))
}

// TRAS returns the activate-to-precharge latency (ns) for n rows restored to
// target vr, starting from restore state vPrev (the voltage the cells held
// before this activation, which sets the sensing speed).
func (m *Model) TRAS(n int, vPrev, vr float64, partial bool) float64 {
	return m.TRCD(n, vPrev, partial) + m.RestoreTime(n, vr)
}

// TRASCopy returns the activate-to-precharge latency of ACT-c: the regular
// row is sensed alone (full tRCD), then the copy row's wordline is enabled
// and both rows restore together, with the copy cell's stale charge adding
// the disturbance recovery term.
func (m *Model) TRASCopy(vr float64) float64 {
	return m.TRCD(1, m.Vfull, false) + m.RestoreTime(2, vr) + m.CopyDisturb
}

// TWR returns the write-recovery latency (ns) for writing n cells to restore
// target vr (flipping the bitline across the full rail in the worst case).
func (m *Model) TWR(n int, vr float64) float64 {
	return m.W0 + m.RwCb*m.tauScale(n)*math.Log(m.Vdd/(m.Vdd-vr))
}

// MinSenseDV is the smallest acceptable ΔV0: the margin of a single
// fully-restored cell read at the end of the refresh window. Any restore
// level whose end-of-window margin (after derating) stays above this is safe.
func (m *Model) MinSenseDV() float64 {
	return m.ChargeShareDV(1, m.ReadVoltage(m.Vfull), m.Cb)
}

// MinPartialRestore returns the lowest restore voltage for n duplicate rows
// that still guarantees end-of-window readability with the guard band.
func (m *Model) MinPartialRestore(n int) float64 {
	// Solve ChargeShareDV(n, ReadVoltage(vr)) * (1-derate) = MinSenseDV.
	target := m.MinSenseDV() / (1 - m.PartialDerate)
	nc := float64(n) * m.Cc
	vEnd := target*(nc+m.Cb)/nc + m.Vref
	return vEnd / math.Exp(-m.Window/m.TauRet)
}

// TradeOffPoint is one point of the Figure 6 tRCD-versus-tRAS curve.
type TradeOffPoint struct {
	VRestore float64 // restore target (V)
	RCD      float64 // tRCD of the *next* activation of the pair (ns)
	RAS      float64 // tRAS of the early-terminated activation (ns)
}

// TradeOff sweeps the restore target of an n-row activation from the minimum
// safe level to full restoration, reproducing Figure 6.
func (m *Model) TradeOff(n, steps int) []TradeOffPoint {
	lo := m.MinPartialRestore(n)
	hi := m.Vfull
	pts := make([]TradeOffPoint, 0, steps+1)
	for i := 0; i <= steps; i++ {
		vr := lo + (hi-lo)*float64(i)/float64(steps)
		pts = append(pts, TradeOffPoint{
			VRestore: vr,
			RCD:      m.TRCD(n, vr, true),
			RAS:      m.TRAS(n, m.Vfull, vr, false),
		})
	}
	return pts
}
