package circuit

import "math"

// Table1 holds the relative timing changes of the new DRAM commands
// (Table 1 of the paper), expressed as fractional deltas (−0.38 = −38 %).
type Table1 struct {
	// ACT-t, activating fully-restored rows.
	TwoFullRCD, TwoFullRASFull, TwoFullRASEarly, TwoFullWRFull, TwoFullWREarly float64
	// ACT-t, activating partially-restored rows.
	TwoPartialRCD, TwoPartialRASFull, TwoPartialRASEarly float64
	// ACT-c.
	CopyRCD, CopyRASFull, CopyRASEarly, CopyWRFull, CopyWREarly float64
}

// Table1 derives the paper's Table 1 from the analytical model.
func (m *Model) Table1() Table1 {
	return Table1{
		TwoFullRCD:      m.TRCD(2, m.Vfull, false)/BaseRCD - 1,
		TwoFullRASFull:  m.TRAS(2, m.Vfull, m.Vfull, false)/BaseRAS - 1,
		TwoFullRASEarly: m.TRAS(2, m.Vfull, m.VrOp, false)/BaseRAS - 1,
		TwoFullWRFull:   m.TWR(2, m.Vfull)/BaseWR - 1,
		TwoFullWREarly:  m.TWR(2, m.VrOp)/BaseWR - 1,

		TwoPartialRCD:      m.TRCD(2, m.VrOp, true)/BaseRCD - 1,
		TwoPartialRASFull:  m.TRAS(2, m.VrOp, m.Vfull, true)/BaseRAS - 1,
		TwoPartialRASEarly: m.TRAS(2, m.VrOp, m.VrOp, true)/BaseRAS - 1,

		CopyRCD:      0, // the copy row is enabled only after tRCD is met
		CopyRASFull:  m.TRASCopy(m.Vfull)/BaseRAS - 1,
		CopyRASEarly: m.TRASCopy(m.VrOp)/BaseRAS - 1,
		CopyWRFull:   m.TWR(2, m.Vfull)/BaseWR - 1,
		CopyWREarly:  m.TWR(2, m.VrOp)/BaseWR - 1,
	}
}

// Fig5Point is one x-position of Figure 5: the latency changes when
// simultaneously activating n rows, normalized to single-row activation.
type Fig5Point struct {
	Rows         int
	RCDDelta     float64 // Figure 5a
	RASDelta     float64 // Figure 5b, full restoration
	RestoreDelta float64
	WRDelta      float64
}

// Fig5 sweeps the number of simultaneously-activated rows (Figure 5).
func (m *Model) Fig5(maxRows int) []Fig5Point {
	restore1 := m.RestoreTime(1, m.Vfull)
	pts := make([]Fig5Point, 0, maxRows)
	for n := 1; n <= maxRows; n++ {
		pts = append(pts, Fig5Point{
			Rows:         n,
			RCDDelta:     m.TRCD(n, m.Vfull, false)/BaseRCD - 1,
			RASDelta:     m.TRAS(n, m.Vfull, m.Vfull, false)/BaseRAS - 1,
			RestoreDelta: m.RestoreTime(n, m.Vfull)/restore1 - 1,
			WRDelta:      m.TWR(n, m.Vfull)/BaseWR - 1,
		})
	}
	return pts
}

// Fig6Curve is the normalized tRCD-versus-tRAS trade-off for n rows
// (Figure 6).
type Fig6Curve struct {
	Rows   int
	Points []TradeOffPoint
}

// Fig6 sweeps the restore target for 2..maxRows simultaneously-activated
// rows (Figure 6).
func (m *Model) Fig6(maxRows, steps int) []Fig6Curve {
	curves := make([]Fig6Curve, 0, maxRows-1)
	for n := 2; n <= maxRows; n++ {
		curves = append(curves, Fig6Curve{Rows: n, Points: m.TradeOff(n, steps)})
	}
	return curves
}

// MRAPowerFactor returns the activation power of an n-row activation
// relative to a single-row ACT (Figure 7, left). The paper reports +5.8 %
// for two rows; the additional wordline drivers and the copy-row decoder
// scale the overhead roughly linearly in the number of extra rows.
func MRAPowerFactor(n int) float64 { return 1 + 0.058*float64(n-1) }

// Decoder and chip area model (Figure 7 right, Section 6.2). The paper's
// CACTI evaluation reports 200.9 µm² for the 512-row local row decoder and
// 9.6 µm² for an 8-copy-row CROW decoder (4.8 % of the decoder, 0.48 % of
// the chip, so row decoders occupy ~10 % of chip area).
const (
	RegularDecoderArea = 200.9 // µm², 512-row local row decoder
	copyDecoderFixed   = 1.6   // µm², shared predecode/drivers
	copyDecoderPerRow  = 1.0   // µm² per copy row
	DecoderChipShare   = 0.10  // fraction of DRAM chip area in row decoders
)

// CopyDecoderArea returns the area of a CROW decoder for n copy rows (µm²).
func CopyDecoderArea(n int) float64 { return copyDecoderFixed + copyDecoderPerRow*float64(n) }

// DecoderOverhead returns the row-decoder area overhead of CROW-n.
func DecoderOverhead(n int) float64 { return CopyDecoderArea(n) / RegularDecoderArea }

// ChipOverhead returns the whole-DRAM-chip area overhead of CROW-n
// (0.48 % for CROW-8).
func ChipOverhead(n int) float64 { return DecoderOverhead(n) * DecoderChipShare }

// CapacityOverhead returns the fraction of DRAM storage consumed by n copy
// rows per subarray of rowsPerSubarray regular rows (1.6 % for CROW-8).
func CapacityOverhead(n, rowsPerSubarray int) float64 {
	return float64(n) / float64(rowsPerSubarray)
}

// TLDRAMChipOverhead returns the DRAM chip area overhead of TL-DRAM with the
// given near-segment size: the per-bitline isolation transistors dominate
// (6.9 % at 8 near rows, per Figure 11b), plus the small near-segment
// decoder.
func TLDRAMChipOverhead(nearRows int) float64 {
	const isolationShare = 0.0642
	return isolationShare + ChipOverhead(nearRows)
}

// SALPChipOverhead returns the DRAM chip area overhead of SALP-MASA with the
// given number of subarrays per bank (Figure 11b: 0.6 % at the baseline 128
// subarrays, 28.9 % at 256, 84.5 % at 512 — extra subarrays add sense-
// amplifier stripes). Interpolates linearly in the stripe count between the
// paper's reported points.
func SALPChipOverhead(subarraysPerBank int) float64 {
	type pt struct{ s, o float64 }
	table := []pt{{128, 0.006}, {256, 0.289}, {512, 0.845}}
	s := float64(subarraysPerBank)
	if s <= table[0].s {
		return table[0].o
	}
	for i := 1; i < len(table); i++ {
		if s <= table[i].s {
			f := (s - table[i-1].s) / (table[i].s - table[i-1].s)
			return table[i-1].o + f*(table[i].o-table[i-1].o)
		}
	}
	// Extrapolate from the last segment.
	last, prev := table[len(table)-1], table[len(table)-2]
	slope := (last.o - prev.o) / (last.s - prev.s)
	return last.o + slope*(s-last.s)
}

// TLDRAMTimings returns the near-segment latency deltas for a TL-DRAM near
// segment of the given size, and the far-segment penalty from the isolation
// transistor. With 8 near rows the model yields ≈ −73 % tRCD and −80 % tRAS,
// matching the paper's Section 8.1.4.
func (m *Model) TLDRAMTimings(nearRows int) (nearRCDDelta, nearRASDelta, farDelta float64) {
	cbNear := m.Cb*float64(nearRows)/512 + m.SenseShareCap
	dv := m.Cc * (m.ReadVoltage(m.Vfull) - m.Vref) / (m.Cc + cbNear)
	rcd := m.T0 + m.SenseTime(dv)
	tau := m.RsaCb * (cbNear + m.Cc) / (m.Cb + m.Cc)
	ras := rcd + tau*math.Log((m.Vdd-m.Vref)/(m.Vdd-m.Vfull))
	const isolationPenalty = 0.03
	return rcd/BaseRCD - 1, ras/BaseRAS - 1, isolationPenalty
}
