package sim

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/retention"
	"crowdram/internal/trace"
)

// TestVRTDynamicRemapping exercises Section 4.2.3 end to end: a periodic
// profiling pass discovers newly-weak VRT cells between execution intervals
// and remaps them at runtime via ACT-c, without disturbing correctness of
// the running simulation.
func TestVRTDynamicRemapping(t *testing.T) {
	cfg := Default(8, dram.Density8Gb, 64)
	cfg.WarmupInsts = 2_000
	cfg.MeasureInsts = 20_000
	g := cfg.Geo

	rg := retention.Geometry{
		Channels: cfg.Channels, Ranks: g.Ranks, Banks: g.Banks,
		Subarrays: g.SubarraysPerBank(), RowsPerSubarray: g.RowsPerSubarray,
	}
	profile := retention.FixedProfile(rg, 1, 7)
	vrt := retention.NewVRTModel(rg, 50, 0.4, 11)

	mech := core.NewCROW(cfg.Channels, g, cfg.T)
	mech.Cache = true
	mech.Ref = true
	mech.LoadProfile(profile)

	app, _ := trace.ByName("mcf")
	s := New(cfg, mech, []trace.Generator{app.Gen(1)})

	// Interleave profiling intervals with execution: step the VRT model,
	// discover newly-weak rows, and remap them dynamically.
	remapped := 0
	for interval := 0; interval < 3; interval++ {
		vrt.Step()
		for _, c := range vrt.NewlyWeak(profile) {
			a := dram.Addr{Channel: c.Channel, Rank: c.Rank, Bank: c.Bank,
				Row: c.Subarray*g.RowsPerSubarray + c.Row}
			if mech.RemapDynamic(a) {
				profile.Add(c)
				remapped++
			}
		}
	}
	if remapped == 0 {
		t.Fatal("the VRT model must surface newly-weak rows to remap")
	}

	res := s.Run()
	if res.IPC[0] <= 0 {
		t.Fatal("simulation must complete after dynamic remaps")
	}
	// The queued ACT-c data copies must have been executed (they drain
	// during warmup, so check the raw controller counters).
	var copies int64
	for _, c := range s.Ctrls {
		copies += c.Stats.MechCopies
	}
	if copies == 0 {
		t.Error("dynamic remaps must trigger controller-issued ACT-c copies")
	}
	if mech.RefreshMultiplier() != 2 {
		t.Error("with free copy rows remaining, the extended window must hold")
	}
}

// TestScrubbingRestoresPartialPairs checks the idle-cycle scrubber: after a
// burst leaves partial pairs behind, idle execution restores them so later
// evictions need no restore pass.
func TestScrubbingRestoresPartialPairs(t *testing.T) {
	run := func(scrub bool) Result {
		cfg := Default(8, dram.Density8Gb, 64)
		cfg.WarmupInsts = 5_000
		cfg.MeasureInsts = 60_000
		mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
		mech.Cache = true
		mech.Scrub = scrub
		mech.EagerRestore = true
		app, _ := trace.ByName("mcf")
		s := New(cfg, mech, []trace.Generator{app.Gen(1)})
		return s.Run()
	}
	with := run(true)
	without := run(false)
	if with.Ctrl.Scrubs == 0 {
		t.Fatal("scrubbing must occur on an interleaved workload")
	}
	if without.Ctrl.Scrubs != 0 {
		t.Error("scrubbing is off by default")
	}
	if without.CROW.RestoreOps > 0 && with.CROW.RestoreOps >= without.CROW.RestoreOps {
		t.Errorf("scrubbing must reduce eviction-time restores: %d vs %d",
			with.CROW.RestoreOps, without.CROW.RestoreOps)
	}
}
