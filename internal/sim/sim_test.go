package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
	"crowdram/internal/retention"
	"crowdram/internal/trace"
)

func smallCfg(copyRows int) Config {
	cfg := Default(copyRows, dram.Density8Gb, 64)
	cfg.WarmupInsts = 5_000
	cfg.MeasureInsts = 40_000
	return cfg
}

func gen(name string, seed int64, t *testing.T) trace.Generator {
	t.Helper()
	app, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return app.Gen(seed)
}

func TestBaselineSingleCoreCompletes(t *testing.T) {
	cfg := smallCfg(0)
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	res := s.Run()
	if len(res.IPC) != 1 || res.IPC[0] <= 0 || res.IPC[0] > 4 {
		t.Fatalf("IPC = %v, want (0,4]", res.IPC)
	}
	if res.DRAM.Activations() == 0 || res.DRAM.RD == 0 {
		t.Errorf("no DRAM activity: %+v", res.DRAM)
	}
	if res.Energy.Total() <= 0 {
		t.Error("energy must be positive")
	}
	if res.Ctrl.Refreshes == 0 {
		t.Error("refreshes must occur during the run")
	}
	if res.MPKI[0] < 10 {
		t.Errorf("mcf MPKI = %.1f, want high intensity (>=10)", res.MPKI[0])
	}
}

func TestMemoryIntensityClasses(t *testing.T) {
	cases := []struct {
		app      string
		insts    int64
		min, max float64
	}{
		{"mcf", 40_000, 10, 100},
		// zeusmp's steady state needs at least a few tile periods.
		{"zeusmp", 300_000, 1, 10},
		// Low-intensity apps touch memory so rarely that classifying
		// them needs a longer run for the LLC to warm.
		{"povray", 800_000, 0, 1},
	}
	for _, c := range cases {
		cfg := smallCfg(0)
		cfg.WarmupInsts = c.insts / 4
		cfg.MeasureInsts = c.insts
		s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen(c.app, 1, t)})
		res := s.Run()
		if res.MPKI[0] < c.min || res.MPKI[0] > c.max {
			t.Errorf("%s MPKI = %.2f, want [%.0f, %.0f]", c.app, res.MPKI[0], c.min, c.max)
		}
	}
}

func TestCROWCacheSpeedsUpRowReuseWorkload(t *testing.T) {
	base := smallCfg(0)
	bs := New(base, &core.Baseline{T: base.T}, []trace.Generator{gen("mcf", 1, t)})
	baseRes := bs.Run()

	cfg := smallCfg(8)
	mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
	mech.Cache = true
	cs := New(cfg, mech, []trace.Generator{gen("mcf", 1, t)})
	crowRes := cs.Run()

	if crowRes.CROW.Hits == 0 {
		t.Fatal("CROW-cache must register hits on a row-reuse workload")
	}
	hitRate := crowRes.CROW.HitRate()
	if hitRate <= 0.2 {
		t.Errorf("CROW-8 hit rate = %.2f, expected substantial reuse", hitRate)
	}
	if crowRes.IPC[0] <= baseRes.IPC[0]*0.99 {
		t.Errorf("CROW-cache must not slow down mcf: %.4f vs %.4f", crowRes.IPC[0], baseRes.IPC[0])
	}
	if crowRes.DRAM.ACTTwo == 0 || crowRes.DRAM.ACTCopy == 0 {
		t.Errorf("expected ACT-t and ACT-c activity: %+v", crowRes.DRAM)
	}
}

func TestCROWRefReducesRefreshes(t *testing.T) {
	mk := func(ref bool) Result {
		cfg := smallCfg(8)
		cfg.T = dram.LPDDR4(dram.Density64Gb, 64, cfg.Geo)
		mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
		if ref {
			mech.Ref = true
			mech.LoadProfile(retention.FixedProfile(retention.Geometry{
				Channels: cfg.Channels, Ranks: cfg.Geo.Ranks, Banks: cfg.Geo.Banks,
				Subarrays: cfg.Geo.SubarraysPerBank(), RowsPerSubarray: cfg.Geo.RowsPerSubarray,
			}, 3, 7))
		}
		s := New(cfg, mech, []trace.Generator{gen("mcf", 1, t)})
		return s.Run()
	}
	base := mk(false)
	ref := mk(true)
	if ref.RefreshMult != 2 {
		t.Fatalf("refresh multiplier = %d, want 2", ref.RefreshMult)
	}
	// Normalize refresh counts per DRAM cycle (runtimes differ).
	baseRate := float64(base.Ctrl.Refreshes) / float64(base.DRAMCycles)
	refRate := float64(ref.Ctrl.Refreshes) / float64(ref.DRAMCycles)
	if refRate >= baseRate*0.7 {
		t.Errorf("CROW-ref must halve the refresh rate: %.3g vs %.3g", refRate, baseRate)
	}
	if ref.IPC[0] <= base.IPC[0] {
		t.Errorf("CROW-ref must speed up under heavy refresh: %.4f vs %.4f", ref.IPC[0], base.IPC[0])
	}
	if ref.Energy.Refresh >= base.Energy.Refresh {
		t.Error("CROW-ref must reduce refresh energy")
	}
}

func TestIdealFasterThanRealCROW(t *testing.T) {
	run := func(m core.Mechanism, copyRows int) Result {
		cfg := smallCfg(copyRows)
		s := New(cfg, m, []trace.Generator{gen("mcf", 3, t)})
		return s.Run()
	}
	cfg := smallCfg(8)
	mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
	mech.Cache = true
	real := run(mech, 8)
	ideal := run(&core.Ideal{T: cfg.T}, 8)
	if ideal.IPC[0] < real.IPC[0]*0.98 {
		t.Errorf("ideal CROW-cache must be at least as fast: %.4f vs %.4f", ideal.IPC[0], real.IPC[0])
	}
}

func TestFourCoreRun(t *testing.T) {
	cfg := smallCfg(0)
	cfg.MeasureInsts = 20_000
	gens := []trace.Generator{gen("mcf", 1, t), gen("lbm", 2, t), gen("povray", 3, t), gen("zeusmp", 4, t)}
	s := New(cfg, &core.Baseline{T: cfg.T}, gens)
	res := s.Run()
	if len(res.IPC) != 4 {
		t.Fatalf("want 4 IPC values, got %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Errorf("core %d IPC = %.3f out of range", i, ipc)
		}
	}
	// The low-intensity core must achieve higher IPC than the high ones.
	if res.IPC[2] <= res.IPC[0] {
		t.Errorf("povray (L) IPC %.3f should exceed mcf (H) IPC %.3f", res.IPC[2], res.IPC[0])
	}
}

func TestTranslateDeterministicAndInRange(t *testing.T) {
	cfg := smallCfg(0)
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	a := s.Translate(0, 0x12345678)
	if a != s.Translate(0, 0x12345678) {
		t.Error("translation must be deterministic")
	}
	if a == s.Translate(1, 0x12345678) {
		t.Error("different cores must map to different frames (with overwhelming probability)")
	}
	if a>>12 >= s.physPages {
		t.Error("frame out of range")
	}
	if a&0xFFF != 0x678 {
		t.Error("page offset must be preserved")
	}
}

func TestPrefetchImprovesStreaming(t *testing.T) {
	run := func(pf bool) Result {
		cfg := smallCfg(0)
		cfg.Prefetch = pf
		s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("libq", 1, t)})
		return s.Run()
	}
	off := run(false)
	on := run(true)
	if on.LLC.PrefIssued == 0 {
		t.Fatal("prefetcher must issue prefetches on a streaming workload")
	}
	if on.LLC.PrefUseful == 0 {
		t.Error("some prefetches must be useful")
	}
	if on.IPC[0] <= off.IPC[0] {
		t.Errorf("prefetching must speed up streaming: %.4f vs %.4f", on.IPC[0], off.IPC[0])
	}
}

func TestReadPercentilesCoverOnlyMeasuredInterval(t *testing.T) {
	// The latency histograms must reset at measurement start: after a run,
	// the recorded sample count equals the measured-interval demand reads,
	// not the whole-run count (which includes warmup).
	cfg := smallCfg(0)
	cfg.WarmupInsts = 20_000
	cfg.MeasureInsts = 20_000
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	res := s.Run()
	var samples int64
	for _, c := range s.Ctrls {
		samples += c.ReadLatency.Count()
	}
	if samples == 0 {
		t.Fatal("no read latency samples recorded")
	}
	// ReadsServed (diffed over the measured interval) includes prefetch
	// reads; with no prefetcher it must match the histogram exactly.
	if samples != res.Ctrl.ReadsServed {
		t.Errorf("histogram holds %d samples, measured interval served %d reads "+
			"(warmup must not leak into the percentiles)", samples, res.Ctrl.ReadsServed)
	}
	if res.ReadP50Ns <= 0 || res.ReadP99Ns < res.ReadP50Ns {
		t.Errorf("implausible percentiles: p50 %.0f, p99 %.0f", res.ReadP50Ns, res.ReadP99Ns)
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := smallCfg(0)
	cfg.MeasureInsts = 10_000_000 // far more than we let it run
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext on a canceled context = %v, want context.Canceled", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := smallCfg(8)
		mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
		mech.Cache = true
		s := New(cfg, mech, []trace.Generator{gen("soplex", 7, t)})
		return s.Run()
	}
	a, b := run(), run()
	if a.IPC[0] != b.IPC[0] || a.DRAM != b.DRAM || a.CROW != b.CROW {
		t.Error("identical configurations must produce identical results")
	}
}

// TestAvgReadNsWeightsByChannelLoad: the reported mean read latency must
// weight each channel by its read count. Averaging per-channel means lets a
// nearly idle channel's few (slow) reads count as much as a hot channel's
// millions, overstating the system mean.
func TestAvgReadNsWeightsByChannelLoad(t *testing.T) {
	hot := ctrl.Stats{ReadsServed: 1_000_000, ReadLatencySum: 40_000_000} // mean 40 cycles
	idle := ctrl.Stats{ReadsServed: 4, ReadLatencySum: 4_000}             // mean 1000 cycles
	sum := addCtrl(hot, idle)
	want := float64(hot.ReadLatencySum+idle.ReadLatencySum) /
		float64(hot.ReadsServed+idle.ReadsServed) * dram.Cycle
	if got := sum.AvgReadLatencyNs(dram.Cycle); got != want {
		t.Fatalf("aggregated AvgReadLatencyNs = %g, want sum-of-sums/sum-of-counts = %g", got, want)
	}
	biased := (hot.AvgReadLatencyNs(dram.Cycle) + idle.AvgReadLatencyNs(dram.Cycle)) / 2
	if math.Abs(sum.AvgReadLatencyNs(dram.Cycle)-biased) < 0.1 {
		t.Fatal("test is vacuous: weighted mean and mean-of-means coincide")
	}
}

// TestAvgReadNsMatchesAggregateStats: end to end, Result.AvgReadNs must be
// exactly the read-weighted mean over channels, i.e. derived from the summed
// controller stats rather than from per-channel means.
func TestAvgReadNsMatchesAggregateStats(t *testing.T) {
	cfg := smallCfg(0)
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	res := s.Run()
	if res.Ctrl.ReadsServed == 0 {
		t.Fatal("run served no reads")
	}
	if want := res.Ctrl.AvgReadLatencyNs(cfg.T.CycleTime()); res.AvgReadNs != want {
		t.Errorf("AvgReadNs = %g, want aggregate-weighted %g", res.AvgReadNs, want)
	}
}

// TestTruncatedRunReportsHonestIPC: a run that hits its cycle limit before
// the cores retire the target must say so, and must compute IPC from the
// instructions actually retired instead of pretending the target was met.
func TestTruncatedRunReportsHonestIPC(t *testing.T) {
	cfg := smallCfg(0)
	cfg.MaxMeasureCycles = 30_000
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("mcf", 1, t)})
	res := s.Run()
	if !res.Truncated {
		t.Fatal("run capped far below the instruction target must report Truncated")
	}
	c := s.Cores[0]
	if c.Retired >= cfg.MeasureInsts {
		t.Fatalf("core retired %d >= target %d; cap too generous for this test", c.Retired, cfg.MeasureInsts)
	}
	want := float64(c.Retired) / float64(c.Cycles)
	if res.IPC[0] != want {
		t.Errorf("truncated IPC = %g, want retired/cycles = %g", res.IPC[0], want)
	}
	overstated := float64(cfg.MeasureInsts) / float64(c.Cycles)
	if res.IPC[0] >= overstated {
		t.Errorf("truncated IPC %g not below the old target/cycles value %g", res.IPC[0], overstated)
	}
}

// TestFullRunNotTruncated: a normally completing run must not set the flag.
func TestFullRunNotTruncated(t *testing.T) {
	cfg := smallCfg(0)
	s := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{gen("gcc", 1, t)})
	if res := s.Run(); res.Truncated {
		t.Error("completed run must not report Truncated")
	}
}
