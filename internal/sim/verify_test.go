package sim

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/trace"
)

func verifyConfig(insts int64) Config {
	cfg := Default(8, dram.Density8Gb, 64)
	cfg.Verify = true
	cfg.WarmupInsts = insts / 10
	cfg.MeasureInsts = insts
	return cfg
}

func mcfGens(t *testing.T, seed int64) []trace.Generator {
	t.Helper()
	app, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	return []trace.Generator{app.Gen(seed)}
}

func newVerifiedCROW(cfg Config) *core.CROW {
	m := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
	m.Cache = true
	return m
}

func TestVerifyCleanCROWRun(t *testing.T) {
	cfg := verifyConfig(30_000)
	mech := newVerifiedCROW(cfg)
	res := New(cfg, mech, mcfGens(t, 1)).Run()
	if res.Verify.Total() != 0 {
		t.Fatalf("oracle violations on a clean run: %v\nsamples: %v",
			res.Verify.Counts, res.Verify.Samples)
	}
	if res.DRAM.ACTTwo == 0 {
		t.Fatal("run exercised no ACT-t commands; verification was vacuous")
	}
}

// evilCopyRow corrupts the copy-row operand of every CROW-table hit,
// redirecting ACT-t to a copy row that does not hold the activated row's
// data — the classic table-coherence bug class the oracle exists to catch.
type evilCopyRow struct {
	core.Mechanism
	ways int
}

func (e *evilCopyRow) PlanActivate(a dram.Addr, cycle int64) core.ActDecision {
	d := e.Mechanism.PlanActivate(a, cycle)
	if d.Kind == dram.ActTwo && !d.RestoreFirst {
		d.CopyRow = (d.CopyRow + 1) % e.ways
	}
	return d
}

func TestVerifyCatchesCorruptedCopyRow(t *testing.T) {
	cfg := verifyConfig(30_000)
	mech := &evilCopyRow{Mechanism: newVerifiedCROW(cfg), ways: cfg.Geo.CopyRows}
	res := New(cfg, mech, mcfGens(t, 1)).Run()
	if res.Verify.Counts["incoherent-pair"] == 0 {
		t.Fatalf("oracle missed the injected copy-row corruption: %v", res.Verify.Counts)
	}
}

// evilTiming upgrades partially-restored ACT-t activations to the
// fully-restored sensing latency — a timing-selection bug that would return
// wrong data from weakly-charged cells in real hardware.
type evilTiming struct {
	core.Mechanism
	crow dram.CROWTimings
}

func (e *evilTiming) PlanActivate(a dram.Addr, cycle int64) core.ActDecision {
	d := e.Mechanism.PlanActivate(a, cycle)
	if d.Kind == dram.ActTwo && !d.RestoreFirst && d.Timing.RCD == e.crow.TwoPartial.RCD {
		d.Timing.RCD = e.crow.TwoFull.RCD
	}
	return d
}

func TestVerifyCatchesFastSensingOfPartialPair(t *testing.T) {
	cfg := verifyConfig(30_000)
	mech := &evilTiming{Mechanism: newVerifiedCROW(cfg), crow: cfg.T.CROW()}
	res := New(cfg, mech, mcfGens(t, 1)).Run()
	if res.Verify.Counts["fast-partial-sensing"] == 0 {
		t.Fatalf("oracle missed the injected timing bug: %v", res.Verify.Counts)
	}
}
