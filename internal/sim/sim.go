// Package sim binds the pieces into the full simulated system of Table 2:
// 1–4 trace-driven cores at 4 GHz, a shared LLC, a set of DRAM channels of
// a pluggable memory standard (LPDDR4 by default), and a pluggable
// core.Mechanism. The simulation advances in CPU cycles with an exact
// DRAM:CPU clock ratio taken from the standard (2:5 for LPDDR4-3200).
package sim

import (
	"context"

	"crowdram/internal/cache"
	"crowdram/internal/core"
	"crowdram/internal/cpu"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
	"crowdram/internal/energy"
	"crowdram/internal/hammer"
	"crowdram/internal/metrics"
	"crowdram/internal/obs"
	"crowdram/internal/oracle"
	"crowdram/internal/prefetch"
	"crowdram/internal/tldram"
	"crowdram/internal/trace"
)

// Config describes one simulated system.
type Config struct {
	Channels int
	Geo      dram.Geometry
	T        dram.Timing
	LLC      cache.Config
	Core     cpu.Config
	Cap      int     // FR-FCFS-Cap
	Timeout  float64 // row-buffer timeout, ns
	MASA     bool
	OpenPage bool
	Prefetch bool

	// PerBankRefresh and MaxPostpone select the refresh mode (LPDDR4
	// REFpb, elastic postponement).
	PerBankRefresh bool
	MaxPostpone    int

	// Scheduler, RowPolicy, and Refresh name the controller policies
	// (registries in internal/ctrl); empty strings resolve to the Table 2
	// defaults, honouring the OpenPage/PerBankRefresh booleans above.
	Scheduler string
	RowPolicy string
	Refresh   string

	// Mapping names the address-mapping layout (registry in internal/dram;
	// empty = dram.DefaultMapping).
	Mapping string

	// Translation selects how per-core virtual addresses map to physical
	// frames: "hash" (default, uniformly scattered 4 KiB frames) or
	// "rowstripe" (row-span-granular striping that preserves row
	// adjacency and interleaves tenants row-by-row — the RowHammer lab's
	// layout, where attacker and victim own alternating physical rows).
	Translation string

	// FlipModel, when non-nil, attaches the RowHammer bit-flip model
	// (internal/hammer) to every channel's command stream; findings are
	// reported in Result.Flips.
	FlipModel *hammer.Config

	// RatioNum/RatioDen set the DRAM:CPU clock ratio: the command clock
	// advances RatioNum ticks every RatioDen CPU cycles. Zero values mean
	// LPDDR4-3200's 2:5 (1600 MHz vs 4 GHz).
	RatioNum int
	RatioDen int

	// Features forwards standard-specific device behaviours (e.g. HBM2's
	// per-rank data bus) to every channel.
	Features dram.Features

	// Verify attaches the correctness oracle (internal/oracle) to every
	// channel: a shadow data memory, refresh-deadline monitor, and
	// scheduler/accounting checks validate the run end to end. Findings
	// are reported in Result.Verify. Costs roughly 10-20% simulation time
	// (see BENCH_oracle.json).
	Verify bool

	// Obs, when non-nil and enabled, attaches the observability bundle
	// (event tracer, interval telemetry — internal/obs) to every channel,
	// controller, and the CROW mechanism. It composes with Verify: the
	// oracle and the obs consumers ride the same command fan-out. Not part
	// of the memoization key (see obs.With); a bundle serves one run.
	Obs *obs.Observers

	// WarmupInsts and MeasureInsts are per-core instruction counts: stats
	// reset once every core has retired WarmupInsts, and the run ends
	// once every core has retired WarmupInsts+MeasureInsts.
	WarmupInsts  int64
	MeasureInsts int64

	// MaxMeasureCycles, when positive, caps the measurement interval at
	// that many CPU cycles instead of the default generous formula. Runs
	// that hit the cap report Result.Truncated. Used by tests; production
	// configs leave it zero.
	MaxMeasureCycles int64

	// Shards, when > 1, advances the DRAM channels on that many worker
	// goroutines inside each DRAM tick (clamped to the channel count; see
	// shard.go for the epoch/barrier protocol). Every run is byte-identical
	// to the serial path at any shard count — completions and observer
	// events are merged in fixed channel order — so Shards is a pure
	// execution knob: it rides the run context (crow.WithShards), never the
	// memoization key. 0 and 1 select today's serial loop.
	Shards int

	Seed int64
}

// Default returns the Table 2 system configuration (4 channels, 8 MiB LLC)
// with the given per-copy-row geometry, density and refresh window.
func Default(copyRows int, d dram.Density, refWindowMS float64) Config {
	g := dram.Std(copyRows)
	return Config{
		Channels:     4,
		Geo:          g,
		T:            dram.LPDDR4(d, refWindowMS, g),
		LLC:          cache.DefaultConfig(),
		Core:         cpu.DefaultConfig(),
		Cap:          16,
		Timeout:      75,
		WarmupInsts:  50_000,
		MeasureInsts: 500_000,
		Seed:         1,
	}
}

// DefaultFor returns the Table 2 system configuration retargeted to the
// given memory standard: its channel count, geometry, timing table, clock
// ratio, refresh granularity, and device features. For the LPDDR4 standard
// the result is field-for-field what Default returns (the explicit
// RatioNum/RatioDen and Refresh values resolve to the same behaviour as the
// zero values).
func DefaultFor(std dram.Standard, copyRows int, d dram.Density, refWindowMS float64) Config {
	cfg := Default(copyRows, d, refWindowMS)
	g := std.Geometry(copyRows)
	cfg.Channels = std.Channels()
	cfg.Geo = g
	cfg.T = std.Timing(d, refWindowMS, g)
	cfg.RatioNum, cfg.RatioDen = std.ClockRatio()
	cfg.Refresh = std.DefaultRefresh()
	cfg.Features = std.Features()
	return cfg
}

// Result reports the outcome of one simulation run.
type Result struct {
	IPC        []float64 // per-core measured IPC
	MPKI       []float64 // per-core LLC demand MPKI
	Cycles     int64     // CPU cycles in the measured interval
	DRAMCycles int64
	Energy     energy.Breakdown
	DRAM       dram.Stats // summed over channels, measured interval
	Ctrl       ctrl.Stats // summed over channels
	CROW       core.Stats // zero-valued for non-CROW mechanisms
	LLC        cache.Stats
	AvgReadNs  float64
	// ReadP50Ns/ReadP99Ns bound the 50th/99th-percentile demand read
	// latency (log-bucket upper bounds), aggregated over channels for
	// the measured interval only (the latency histograms reset at
	// measurement start, like every other stat).
	ReadP50Ns   float64
	ReadP99Ns   float64
	RefreshMult int
	// Truncated reports that the measurement loop hit its cycle limit
	// before every core retired MeasureInsts. IPC for the unfinished cores
	// is computed from their actual retired counts, so it stays honest,
	// but the run did not measure the interval it was asked to.
	Truncated bool
	// Verify holds the correctness oracle's findings (zero-valued unless
	// Config.Verify was set).
	Verify oracle.Findings
	// Flips holds the RowHammer flip model's findings (zero-valued unless
	// Config.FlipModel was set).
	Flips hammer.Findings
	// FlipsByCore attributes exposed flips to the core owning each victim
	// row (rowstripe translation only — under the hash translation row
	// ownership is not defined, and the slice stays nil).
	FlipsByCore []int64
}

// System is one assembled simulation instance.
type System struct {
	Cfg    Config
	Mech   core.Mechanism
	Cores  []*cpu.Core
	LLC    *cache.Cache
	Ctrls  []*ctrl.Controller
	Mapper dram.AddressMapper
	Pref   *prefetch.Prefetcher
	Oracle *oracle.Oracle // nil unless Cfg.Verify
	Flips  *hammer.Model  // nil unless Cfg.FlipModel

	cpuCycle  int64
	dramCycle int64
	accum     int
	ratioNum  int64 // DRAM ticks per ratioDen CPU cycles
	ratioDen  int64

	// readDone is the one completion callback shared by every read
	// request (built once in New): it delivers the returned line to the
	// LLC at the current CPU cycle. Requests carry the line address, so
	// the read path needs no per-request closure.
	readDone func(now int64, line uint64)

	physPages uint64
	// rowSpan/tenants drive the rowstripe translation (rowSpan 0 = hash).
	rowSpan uint64
	tenants uint64

	// shr drives the per-channel parallel DRAM tick when Cfg.Shards > 1;
	// nil selects the serial loop. Created and torn down by RunContext.
	shr *shardRunner

	// testSuppressT2 is a test-only fault hook: when set, a sharded run
	// skips the scheduling half of the tick for channels the hook claims at
	// that cycle, modeling a channel that misses its synchronization epoch.
	// The oracle-under-parallelism tests use it to prove a broken barrier
	// is caught by -verify.
	testSuppressT2 func(ch int, now int64) bool
}

// memPort adapts the controllers to the cache's Memory interface.
type memPort struct{ s *System }

func (m memPort) SendRead(lineAddr uint64, pref bool) bool {
	s := m.s
	a := s.Mapper.Decode(lineAddr)
	c := s.Ctrls[a.Channel]
	s.shr.syncChannel(a.Channel)
	req := c.GetRequest()
	req.Type = ctrl.Read
	req.Addr = a
	req.Line = lineAddr
	req.IsPref = pref
	req.Done = s.readDone
	if !c.EnqueueRead(req, s.dramCycle) {
		c.PutRequest(req)
		return false
	}
	return true
}

func (m memPort) SendWrite(lineAddr uint64) bool {
	s := m.s
	a := s.Mapper.Decode(lineAddr)
	c := s.Ctrls[a.Channel]
	s.shr.syncChannel(a.Channel)
	req := c.GetRequest()
	req.Type = ctrl.Write
	req.Addr = a
	if !c.EnqueueWrite(req, s.dramCycle) {
		c.PutRequest(req)
		return false
	}
	return true
}

// llcPort wraps the LLC for the cores, adding prefetcher training.
type llcPort struct{ s *System }

func (p llcPort) Access(now int64, coreID int, addr uint64, write bool, done func(now int64)) (bool, bool) {
	s := p.s
	accepted, hit := s.LLC.Access(now, coreID, addr, write, done)
	if accepted && !hit && s.Pref != nil {
		for _, pa := range s.Pref.OnMiss(coreID, addr) {
			s.LLC.Prefetch(now, pa)
		}
	}
	return accepted, hit
}

// Translate implements cpu.Translator: virtual pages map to uniformly
// scattered physical frames (emulating a steady-state system's randomized
// frame allocation, Section 7 [85]), deterministically per (core, page).
func (s *System) Translate(coreID int, vaddr uint64) uint64 {
	if s.rowSpan > 0 {
		// Rowstripe: virtual row-span region v of core c maps to physical
		// region v*tenants+c, so row adjacency survives translation and
		// tenants own alternating physical rows (the inter-VM RowHammer
		// scenario's layout).
		region := vaddr / s.rowSpan
		off := vaddr % s.rowSpan
		p := (region*s.tenants+uint64(coreID))*s.rowSpan + off
		return p % (s.physPages << 12)
	}
	vpn := vaddr >> 12
	h := uint64(coreID+1)*0x9E3779B97F4A7C15 ^ vpn*0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	frame := h % s.physPages
	return frame<<12 | (vaddr & 0xFFF)
}

// New assembles a system running one generator per core under the given
// mechanism.
func New(cfg Config, mech core.Mechanism, gens []trace.Generator) *System {
	s := &System{Cfg: cfg, Mech: mech}
	s.ratioNum, s.ratioDen = 2, 5
	if cfg.RatioNum > 0 && cfg.RatioDen > 0 {
		s.ratioNum, s.ratioDen = int64(cfg.RatioNum), int64(cfg.RatioDen)
	}
	mapping := cfg.Mapping
	if mapping == "" {
		mapping = dram.DefaultMapping
	}
	mapper, err := dram.NewMapperFor(mapping, cfg.Channels, cfg.Geo)
	if err != nil {
		panic(err) // user-facing names are validated at the crow.Options layer
	}
	s.Mapper = mapper
	s.physPages = uint64(s.Mapper.Capacity()) >> 12
	switch cfg.Translation {
	case "", "hash":
	case "rowstripe":
		s.rowSpan = mapper.Encode(dram.Addr{Row: 1})
		s.tenants = uint64(len(gens))
		if s.tenants == 0 {
			s.tenants = 1
		}
	default:
		panic("sim: unknown translation " + cfg.Translation)
	}
	s.Ctrls = make([]*ctrl.Controller, cfg.Channels)
	for ch := range s.Ctrls {
		ccfg := ctrl.DefaultConfig(ch, cfg.Geo, cfg.T)
		ccfg.Cap = cfg.Cap
		ccfg.TimeoutNs = cfg.Timeout
		ccfg.MASA = cfg.MASA
		ccfg.OpenPage = cfg.OpenPage
		ccfg.PerBankRefresh = cfg.PerBankRefresh
		ccfg.MaxPostpone = cfg.MaxPostpone
		ccfg.Scheduler = cfg.Scheduler
		ccfg.RowPolicy = cfg.RowPolicy
		ccfg.Refresh = cfg.Refresh
		ccfg.Features = cfg.Features
		s.Ctrls[ch] = ctrl.New(ccfg, mech)
	}
	if cfg.Verify {
		// The oracle consumes policy-resolved facts, not the raw config
		// strings: the cap check only applies under the capped scheduler,
		// and bank-granular refresh (perbank or DDR5's samebank) divides
		// the deadline interval.
		schedName, _, refName := s.Ctrls[0].Policies()
		oracleCap := 0
		if schedName == ctrl.DefaultScheduler {
			oracleCap = cfg.Cap
		}
		s.Oracle = oracle.New(oracle.Config{
			Channels:          cfg.Channels,
			Geo:               cfg.Geo,
			T:                 cfg.T,
			Cap:               oracleCap,
			DataChecks:        shadowDataApplies(mech),
			RefreshMultiplier: mech.RefreshMultiplier(),
			PerBankRefresh:    refName != ctrl.DefaultRefreshPolicy,
			MaxPostpone:       cfg.MaxPostpone,
		})
		for ch := range s.Ctrls {
			s.Ctrls[ch].Dev.Attach(s.Oracle.Observer(ch))
		}
	}
	if cfg.FlipModel != nil {
		s.Flips = hammer.New(*cfg.FlipModel, cfg.Channels, cfg.Geo, cfg.T)
		for ch := range s.Ctrls {
			s.Ctrls[ch].Dev.Attach(s.Flips.Observer(ch))
		}
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Bind(cfg.Channels, cfg.Geo, cfg.T)
		for ch := range s.Ctrls {
			if co := cfg.Obs.CommandObserver(ch); co != nil {
				s.Ctrls[ch].Dev.Attach(co)
			}
			s.Ctrls[ch].Obs = cfg.Obs.SchedObserver(ch)
		}
		if cw, ok := core.Unwrap(mech).(*core.CROW); ok {
			cw.Obs = cfg.Obs.TableObserver()
		}
	}
	s.LLC = cache.New(cfg.LLC, memPort{s}, len(gens))
	// Completion callbacks run in DRAM-cycle context; deliver to the CPU
	// side at the current CPU cycle.
	s.readDone = func(_ int64, line uint64) { s.LLC.Fill(s.cpuCycle, line) }
	// Start from a steady-state (full, partially dirty) LLC so that
	// writeback traffic exists even in short runs.
	s.LLC.Prefill(s.Mapper.Bits()-6, 0.25, cfg.Seed)
	if cfg.Prefetch {
		s.Pref = prefetch.New(prefetch.DefaultConfig(), len(gens))
	}
	s.Cores = make([]*cpu.Core, len(gens))
	for i, g := range gens {
		s.Cores[i] = cpu.New(i, cfg.Core, g, llcPort{s}, s)
	}
	return s
}

func (s *System) tick() {
	s.cpuCycle++
	for _, c := range s.Cores {
		c.Tick(s.cpuCycle)
	}
	s.LLC.Tick(s.cpuCycle)
	// ratioNum DRAM command cycles per ratioDen CPU cycles (2:5 for
	// LPDDR4-3200's 1600 MHz vs 4 GHz; 3:5 for DDR5-4800; 1:4 for HBM2).
	s.accum += int(s.ratioNum)
	if int64(s.accum) >= s.ratioDen {
		s.accum -= int(s.ratioDen)
		s.dramCycle++
		if s.shr != nil {
			s.shr.tickDram(s.dramCycle)
		} else {
			for _, c := range s.Ctrls {
				c.Tick(s.dramCycle)
			}
		}
	}
}

// skipIdle advances the clocks past CPU cycles that provably change nothing:
// every core is stalled (its per-cycle accounting replicated by AdvanceIdle),
// the LLC has no event before its reported next one, and no controller has
// work before its reported next DRAM cycle. The skip wakes exactly at the
// earliest of those events (converted to CPU cycles) and never crosses
// `limit`, so a skipping run is cycle-for-cycle identical to a non-skipping
// one — including every statistic.
func (s *System) skipIdle(limit int64) {
	for _, c := range s.Cores {
		if !c.Stalled() {
			return
		}
	}
	// Latest CPU cycle we may skip to is one before the next LLC event.
	n := s.LLC.NextEvent(s.cpuCycle) - 1 - s.cpuCycle
	dnext := dram.Horizon
	for _, c := range s.Ctrls {
		if e := c.NextEvent(s.dramCycle); e < dnext {
			dnext = e
		}
	}
	if dnext < dram.Horizon {
		// The k-th DRAM tick from accumulator state `accum` lands
		// ceil((den*k-accum)/num) CPU cycles ahead; stop one cycle short
		// so the normal tick performs it.
		k := dnext - s.dramCycle
		m := (s.ratioDen*k - int64(s.accum) + s.ratioNum - 1) / s.ratioNum
		if m-1 < n {
			n = m - 1
		}
	}
	if rest := limit - s.cpuCycle; n > rest {
		n = rest
	}
	if n <= 0 {
		return
	}
	s.cpuCycle += n
	for _, c := range s.Cores {
		c.AdvanceIdle(n)
	}
	total := int64(s.accum) + s.ratioNum*n
	s.dramCycle += total / s.ratioDen
	s.accum = int(total % s.ratioDen)
}

// syncDevStats brings each device's delta-based cycle accounting up to the
// present; idle skipping can leave it behind, and stats snapshots must not
// read stale counters. Idempotent at a fixed cycle.
func (s *System) syncDevStats() {
	for _, c := range s.Ctrls {
		c.Dev.Tick(s.dramCycle)
	}
}

func (s *System) allReached(target int64) bool {
	for _, c := range s.Cores {
		if c.Retired < target {
			return false
		}
	}
	return true
}

// Run executes warmup then measurement and returns the results.
func (s *System) Run() Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// cancelCheckMask gates how often the run loop polls its context: every
// 2^14 CPU cycles. One poll is an atomic load amortized over 16k full
// system ticks (far below noise), while even the smallest useful runs
// (~tens of thousands of cycles) still hit several polls, so short
// timeouts and Ctrl-C take effect mid-run rather than after it.
const cancelCheckMask = 1<<14 - 1

// RunContext is Run with cooperative cancellation: the simulation loop
// polls ctx periodically and abandons the run (returning ctx's error) once
// it is canceled or past its deadline.
func (s *System) RunContext(ctx context.Context) (Result, error) {
	if s.Cfg.Shards > 1 && len(s.Ctrls) > 1 && s.shr == nil {
		s.shr = newShardRunner(s, s.Cfg.Shards)
		defer func() {
			s.shr.stop()
			s.shr = nil
		}()
	}
	// Warmup.
	warmLimit := s.Cfg.WarmupInsts*int64(len(s.Cores))*10_000 + 10_000_000
	if s.Cfg.MaxMeasureCycles > 0 && warmLimit > s.Cfg.MaxMeasureCycles {
		// A capped run bounds warmup too: a configuration that can make no
		// forward progress (e.g. a refresh-starved channel) would otherwise
		// spin out the full warmup allowance before the cap even applies.
		warmLimit = s.Cfg.MaxMeasureCycles
	}
	for !s.allReached(s.Cfg.WarmupInsts) && s.cpuCycle < warmLimit {
		s.tick()
		if s.cpuCycle&cancelCheckMask == 0 && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		s.skipIdle(warmLimit)
	}
	// Reset measurement state. Catch device accounting up to the present
	// first, so the snapshots see current counters.
	s.syncDevStats()
	if s.Cfg.Obs.NextSnapshot() > 0 {
		// Flush warmup activity as one interval so measured snapshots
		// start clean at the measurement boundary.
		s.Cfg.Obs.TakeSnapshot(s.dramCycle)
	}
	startDRAM := s.dramCycle
	var devSnap []dram.Stats
	var ctrlSnap []ctrl.Stats
	for _, c := range s.Ctrls {
		devSnap = append(devSnap, c.Dev.Stats)
		ctrlSnap = append(ctrlSnap, c.Stats)
	}
	var crowSnap core.Stats
	if cw, ok := core.Unwrap(s.Mech).(*core.CROW); ok {
		crowSnap = cw.Stats
	}
	for _, c := range s.Ctrls {
		c.ReadLatency.Reset()
	}
	s.LLC.ResetStats()
	for _, c := range s.Cores {
		c.ResetStats()
	}

	// Measurement: run until every core retires the target; cores that
	// finish early keep running (and keep interfering), per Section 7.
	target := s.Cfg.MeasureInsts
	finish := make([]int64, len(s.Cores))
	limit := s.cpuCycle + target*int64(len(s.Cores))*10_000 + 50_000_000
	if s.Cfg.MaxMeasureCycles > 0 {
		limit = s.cpuCycle + s.Cfg.MaxMeasureCycles
	}
	snapAt := s.Cfg.Obs.NextSnapshot()
	for s.cpuCycle < limit {
		s.tick()
		if snapAt > 0 && s.dramCycle >= snapAt {
			s.syncDevStats()
			s.Cfg.Obs.TakeSnapshot(s.dramCycle)
			snapAt = s.Cfg.Obs.NextSnapshot()
		}
		if s.cpuCycle&cancelCheckMask == 0 && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		doneAll := true
		for i, c := range s.Cores {
			if finish[i] == 0 && c.Retired >= target {
				finish[i] = c.Cycles
			}
			if finish[i] == 0 {
				doneAll = false
			}
		}
		if doneAll {
			break
		}
		s.skipIdle(limit)
	}
	s.syncDevStats()

	res := Result{RefreshMult: s.Mech.RefreshMultiplier()}
	res.DRAMCycles = s.dramCycle - startDRAM
	insts := make([]int64, len(s.Cores))
	for i, c := range s.Cores {
		cyc, retired := finish[i], target
		if cyc == 0 {
			// The loop hit its cycle limit before this core retired the
			// target. Its IPC uses the instructions it actually retired;
			// the old target/Cycles formula overstated it.
			cyc, retired = c.Cycles, c.Retired
			res.Truncated = true
		}
		res.IPC = append(res.IPC, float64(retired)/float64(cyc))
		insts[i] = c.Retired
		res.Cycles = c.Cycles // all cores share the clock
	}
	res.MPKI = s.LLC.MPKI(insts)
	res.LLC = s.LLC.Stats

	params := energy.DefaultParams()
	for i, c := range s.Ctrls {
		var dev dram.Stats
		dev = diffDram(c.Dev.Stats, devSnap[i])
		res.DRAM = addDram(res.DRAM, dev)
		cs := diffCtrl(c.Stats, ctrlSnap[i])
		res.Ctrl = addCtrl(res.Ctrl, cs)
		res.Energy = res.Energy.Add(energy.Compute(dev, s.Cfg.T, res.DRAMCycles, params))
	}
	// Mean read latency weighted by each channel's read count. Averaging
	// the per-channel means would let a nearly idle channel's handful of
	// reads count as much as a busy channel's millions.
	res.AvgReadNs = res.Ctrl.AvgReadLatencyNs(s.Cfg.T.CycleTime())
	allLat := metrics.NewHistogram()
	for _, c := range s.Ctrls {
		allLat.Merge(c.ReadLatency)
	}
	res.ReadP50Ns = allLat.Percentile(50) * s.Cfg.T.CycleTime()
	res.ReadP99Ns = allLat.Percentile(99) * s.Cfg.T.CycleTime()
	if cw, ok := core.Unwrap(s.Mech).(*core.CROW); ok {
		res.CROW = diffCROW(cw.Stats, crowSnap)
	}
	s.Cfg.Obs.Finish(s.dramCycle)
	if s.Oracle != nil {
		s.Oracle.Finish(s.dramCycle)
		for ch, c := range s.Ctrls {
			s.Oracle.CheckStats(ch, c.Dev.Stats)
		}
		res.Verify = s.Oracle.Findings()
	}
	if s.Flips != nil {
		res.Flips = s.Flips.Findings()
		if s.rowSpan > 0 && s.tenants > 0 {
			res.FlipsByCore = make([]int64, len(s.Cores))
			for _, fr := range res.Flips.Rows {
				a := dram.Addr{Channel: fr.Channel, Rank: fr.Rank, Bank: fr.Bank, Row: fr.Row}
				owner := int((s.Mapper.Encode(a) / s.rowSpan) % s.tenants)
				if owner < len(res.FlipsByCore) {
					res.FlipsByCore[owner] += fr.Flips
				}
			}
		}
	}
	return res, nil
}

// shadowDataApplies reports whether the oracle's shadow data memory models
// the mechanism's data semantics. Two mechanisms fall outside it: the
// idealized CROW (which issues fictional ACT-t commands to pairs that were
// never copied, modeling a 100% hit rate) and TL-DRAM (whose near-segment
// activations reuse the plain ACT command for rows the shadow memory cannot
// distinguish). The refresh, cap, and accounting checks apply regardless.
func shadowDataApplies(mech core.Mechanism) bool {
	switch core.Unwrap(mech).(type) {
	case *core.Ideal, *tldram.Mechanism:
		return false
	}
	return true
}

func diffDram(a, b dram.Stats) dram.Stats {
	return dram.Stats{
		ACT: a.ACT - b.ACT, ACTTwo: a.ACTTwo - b.ACTTwo, ACTCopy: a.ACTCopy - b.ACTCopy,
		ACTCopyRow: a.ACTCopyRow - b.ACTCopyRow, PRE: a.PRE - b.PRE,
		RD: a.RD - b.RD, WR: a.WR - b.WR, REF: a.REF - b.REF, REFpb: a.REFpb - b.REFpb,
		ActRasSingle:        a.ActRasSingle - b.ActRasSingle,
		ActRasMRA:           a.ActRasMRA - b.ActRasMRA,
		OpenBufferCycles:    a.OpenBufferCycles - b.OpenBufferCycles,
		ActiveStandbyCycles: a.ActiveStandbyCycles - b.ActiveStandbyCycles,
		RefreshBusyCycles:   a.RefreshBusyCycles - b.RefreshBusyCycles,
		RDBusyCycles:        a.RDBusyCycles - b.RDBusyCycles,
		WRBusyCycles:        a.WRBusyCycles - b.WRBusyCycles,
	}
}

func addDram(a, b dram.Stats) dram.Stats { return diffDram(a, negDram(b)) }

func negDram(b dram.Stats) dram.Stats {
	return dram.Stats{
		ACT: -b.ACT, ACTTwo: -b.ACTTwo, ACTCopy: -b.ACTCopy, ACTCopyRow: -b.ACTCopyRow,
		PRE: -b.PRE, RD: -b.RD, WR: -b.WR, REF: -b.REF, REFpb: -b.REFpb,
		ActRasSingle:        -b.ActRasSingle,
		ActRasMRA:           -b.ActRasMRA,
		OpenBufferCycles:    -b.OpenBufferCycles,
		ActiveStandbyCycles: -b.ActiveStandbyCycles,
		RefreshBusyCycles:   -b.RefreshBusyCycles,
		RDBusyCycles:        -b.RDBusyCycles,
		WRBusyCycles:        -b.WRBusyCycles,
	}
}

func diffCtrl(a, b ctrl.Stats) ctrl.Stats {
	return ctrl.Stats{
		ReadsServed: a.ReadsServed - b.ReadsServed, WritesServed: a.WritesServed - b.WritesServed,
		ReadLatencySum: a.ReadLatencySum - b.ReadLatencySum,
		RowHits:        a.RowHits - b.RowHits, RowMisses: a.RowMisses - b.RowMisses,
		RowConflicts: a.RowConflicts - b.RowConflicts, Forwarded: a.Forwarded - b.Forwarded,
		Refreshes: a.Refreshes - b.Refreshes, TimeoutCloses: a.TimeoutCloses - b.TimeoutCloses,
		MechCopies: a.MechCopies - b.MechCopies, Scrubs: a.Scrubs - b.Scrubs,
	}
}

func addCtrl(a, b ctrl.Stats) ctrl.Stats {
	return diffCtrl(a, ctrl.Stats{
		ReadsServed: -b.ReadsServed, WritesServed: -b.WritesServed,
		ReadLatencySum: -b.ReadLatencySum,
		RowHits:        -b.RowHits, RowMisses: -b.RowMisses,
		RowConflicts: -b.RowConflicts, Forwarded: -b.Forwarded,
		Refreshes: -b.Refreshes, TimeoutCloses: -b.TimeoutCloses,
		MechCopies: -b.MechCopies, Scrubs: -b.Scrubs,
	})
}

func diffCROW(a, b core.Stats) core.Stats {
	return core.Stats{
		Hits: a.Hits - b.Hits, Misses: a.Misses - b.Misses,
		Copies: a.Copies - b.Copies, Evictions: a.Evictions - b.Evictions,
		RestoreOps: a.RestoreOps - b.RestoreOps, RefRemaps: a.RefRemaps - b.RefRemaps,
		HamRemaps: a.HamRemaps - b.HamRemaps, Fallback: a.Fallback,
	}
}
