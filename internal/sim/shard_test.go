package sim

import (
	"reflect"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/obs"
	"crowdram/internal/trace"
)

// shardGens builds one stateful generator per core; every run needs a fresh
// set (generators advance as they are consumed).
func shardGens(t *testing.T, seed int64, names ...string) []trace.Generator {
	t.Helper()
	gens := make([]trace.Generator, len(names))
	for i, name := range names {
		app, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gens[i] = app.Gen(seed + int64(i))
	}
	return gens
}

// runSharded executes one fresh system at the given shard count and returns
// its result. Shards 0 takes the serial tick loop.
func runSharded(t *testing.T, cfg Config, shards int, seed int64, apps ...string) Result {
	t.Helper()
	cfg.Shards = shards
	mech := newVerifiedCROW(cfg)
	mech.HammerThreshold = 512 // exercise the shared-counter remap path too
	return New(cfg, mech, shardGens(t, seed, apps...)).Run()
}

// TestShardedRunMatchesSerial is the core determinism contract: the same
// simulation advanced on 2, 4 (one goroutine per channel), or 16 (clamped)
// shards produces a Result deeply equal to the serial run — every stat,
// latency percentile, energy term, and oracle finding.
func TestShardedRunMatchesSerial(t *testing.T) {
	cfg := verifyConfig(20_000)
	apps := []string{"mcf", "lbm", "soplex", "omnetpp"}
	serial := runSharded(t, cfg, 0, 1, apps...)
	if serial.Verify.Total() != 0 {
		t.Fatalf("serial reference run has oracle violations: %v", serial.Verify.Counts)
	}
	if serial.DRAM.ACTTwo == 0 {
		t.Fatal("reference run exercised no ACT-t commands; comparison would be weak")
	}
	for _, shards := range []int{2, 4, 16} {
		got := runSharded(t, cfg, shards, 1, apps...)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("shards=%d diverged from the serial run:\nserial: %+v\nsharded: %+v",
				shards, serial, got)
		}
	}
}

// TestShardedObserversMatchSerial pins the deterministic-merge contract for
// the observability layer: interval telemetry snapshots (which cut on epoch
// boundaries) and the full traced event stream are identical between a
// serial and a maximally sharded run.
func TestShardedObserversMatchSerial(t *testing.T) {
	collect := func(shards int) ([]obs.IntervalSnapshot, []obs.Event, Result) {
		cfg := verifyConfig(20_000)
		cfg.Shards = shards
		var snaps []obs.IntervalSnapshot
		bundle := &obs.Observers{
			TraceCapacity: 1 << 20,
			SnapshotEvery: 2_000,
			OnSnapshot:    func(s obs.IntervalSnapshot) { snaps = append(snaps, s) },
		}
		cfg.Obs = bundle
		mech := newVerifiedCROW(cfg)
		res := New(cfg, mech, shardGens(t, 1, "mcf", "lbm", "soplex", "omnetpp")).Run()
		var events []obs.Event
		bundle.Tracer().Events(func(e obs.Event) { events = append(events, e) })
		return snaps, events, res
	}

	snaps1, events1, res1 := collect(0)
	snapsN, eventsN, resN := collect(4)
	if len(events1) == 0 || len(snaps1) == 0 {
		t.Fatalf("reference run observed nothing (events=%d snapshots=%d); comparison would be vacuous",
			len(events1), len(snaps1))
	}
	if !reflect.DeepEqual(res1, resN) {
		t.Errorf("results diverged between serial and sharded observed runs")
	}
	if !reflect.DeepEqual(snaps1, snapsN) {
		t.Errorf("telemetry snapshot streams diverged: serial %d snapshots, sharded %d",
			len(snaps1), len(snapsN))
	}
	if !reflect.DeepEqual(events1, eventsN) {
		t.Errorf("traced event streams diverged: serial %d events, sharded %d",
			len(events1), len(eventsN))
	}
}

// TestShardedStress drives the parallel tick loop through many epochs with
// every shared-state consumer enabled at once — oracle, tracer, telemetry,
// RowHammer remaps — across skewed per-channel load (distinct apps per
// core) and several seeds. Its job is to give `go test -race` surface area;
// it stays cheap enough for the short suite, which is where CI's race job
// runs it.
func TestShardedStress(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		cfg := verifyConfig(6_000)
		cfg.Shards = 4
		var snaps int
		cfg.Obs = &obs.Observers{
			TraceCapacity: 1 << 16,
			SnapshotEvery: 1_000,
			OnSnapshot:    func(obs.IntervalSnapshot) { snaps++ },
		}
		mech := newVerifiedCROW(cfg)
		mech.HammerThreshold = 256
		res := New(cfg, mech, shardGens(t, seed, "mcf", "lbm", "gcc", "zeusmp")).Run()
		if res.Verify.Total() != 0 {
			t.Fatalf("seed %d: oracle violations under sharded stress: %v\nsamples: %v",
				seed, res.Verify.Counts, res.Verify.Samples)
		}
		if snaps == 0 {
			t.Fatalf("seed %d: no telemetry snapshots delivered", seed)
		}
	}
}

// TestShardedVerifyCatchesInjectedBugs re-runs the oracle's fault-injection
// suite under the parallel tick loop: the injected table-coherence and
// timing bugs must be caught at shards > 1, and the findings — counts and
// sample order — must match the serial run exactly (the per-channel staging
// drains violations in serial order).
func TestShardedVerifyCatchesInjectedBugs(t *testing.T) {
	run := func(shards int, evil func(cfg Config) core.Mechanism) Result {
		cfg := verifyConfig(30_000)
		cfg.Shards = shards
		return New(cfg, evil(cfg), mcfGens(t, 1)).Run()
	}
	cases := []struct {
		name  string
		class string
		evil  func(cfg Config) core.Mechanism
	}{
		{"corrupted-copy-row", "incoherent-pair", func(cfg Config) core.Mechanism {
			return &evilCopyRow{Mechanism: newVerifiedCROW(cfg), ways: cfg.Geo.CopyRows}
		}},
		{"fast-partial-sensing", "fast-partial-sensing", func(cfg Config) core.Mechanism {
			return &evilTiming{Mechanism: newVerifiedCROW(cfg), crow: cfg.T.CROW()}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(0, tc.evil)
			sharded := run(2, tc.evil)
			if sharded.Verify.Counts[tc.class] == 0 {
				t.Fatalf("oracle missed the injected bug under sharding: %v", sharded.Verify.Counts)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("findings diverged between serial and sharded runs:\nserial: %+v\nsharded: %+v",
					serial.Verify, sharded.Verify)
			}
		})
	}
}

// TestShardedVerifyCatchesStalledChannel injects the barrier-class failure
// the determinism harness exists to guard against — a channel silently not
// advancing its scheduling phase — and proves the oracle still catches it
// under parallelism: the stalled channel issues no refresh, so its rows blow
// through the (deliberately shrunken) retention deadline at end of run.
func TestShardedVerifyCatchesStalledChannel(t *testing.T) {
	shrink := func() Config {
		cfg := verifyConfig(50_000)
		cfg.WarmupInsts = 0
		// One REF covers a whole bank, so the retention deadline can
		// shrink to a handful of REFI without starving the bus: healthy
		// channels refresh every group each interval and stay clean.
		cfg.T.RowsPerRef = cfg.Geo.RowsPerBank
		cfg.T.RefWindow = int64(6 * cfg.T.REFI)
		deadline := cfg.T.RefWindow + int64(2*cfg.T.REFI) + int64(cfg.T.RFC)
		// Cap the run well past the deadline (CPU cycles run 5:2 against
		// DRAM cycles on the default standard) so the stalled channel's
		// staleness is visible at Finish even though the run truncates.
		cfg.MaxMeasureCycles = deadline*4 + 100_000
		return cfg
	}

	cfg := shrink()
	cfg.Shards = 2
	clean := New(cfg, newVerifiedCROW(cfg), shardGens(t, 1, "mcf", "lbm", "soplex", "omnetpp")).Run()
	if clean.Verify.Total() != 0 {
		t.Fatalf("shrunken refresh window alone must not violate: %v", clean.Verify.Counts)
	}

	cfg = shrink()
	cfg.Shards = 2
	s := New(cfg, newVerifiedCROW(cfg), shardGens(t, 1, "mcf", "lbm", "soplex", "omnetpp"))
	s.testSuppressT2 = func(ch int, now int64) bool { return ch == 1 }
	res := s.Run()
	if !res.Truncated {
		t.Fatal("run with a stalled channel should truncate at its cycle cap")
	}
	if res.Verify.Counts["refresh-deadline"] == 0 {
		t.Fatalf("oracle missed the stalled channel: %v", res.Verify.Counts)
	}
	for _, sample := range res.Verify.Samples {
		if len(sample) < 3 || sample[:3] != "ch1" {
			t.Fatalf("violation attributed off the stalled channel: %q", sample)
		}
	}
}

// TestShardedSingleChannelFallsBack pins the degenerate shapes: a
// single-channel system ignores the shard request (there is nothing to
// parallelize) and still produces the serial result.
func TestShardedSingleChannelFallsBack(t *testing.T) {
	base := verifyConfig(10_000)
	base.Channels = 1
	serial := func() Result {
		cfg := base
		mech := newVerifiedCROW(cfg)
		return New(cfg, mech, mcfGens(t, 1)).Run()
	}()
	cfg := base
	cfg.Shards = 8
	mech := newVerifiedCROW(cfg)
	got := New(cfg, mech, mcfGens(t, 1)).Run()
	if !reflect.DeepEqual(serial, got) {
		t.Error("single-channel sharded run diverged from serial")
	}
}
