package sim

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/obs"
	"crowdram/internal/trace"
)

// benchRun executes one small single-core CROW-cache simulation with the
// given observer bundle (nil = observability absent entirely).
func benchRun(b *testing.B, bundle *obs.Observers) {
	b.Helper()
	cfg := Default(8, dram.Density8Gb, 64)
	cfg.WarmupInsts = 2_000
	cfg.MeasureInsts = 20_000
	cfg.Obs = bundle
	app, err := trace.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
		mech.Cache = true
		res := New(cfg, mech, []trace.Generator{app.Gen(1)}).Run()
		if res.Ctrl.ReadsServed == 0 {
			b.Fatal("run served no reads")
		}
	}
}

// BenchmarkRunObsOff is the tracing-disabled case: no bundle at all, the
// per-command cost is one nil-slice check. CI's obs bench-smoke compares
// this against BenchmarkRunObsNil and fails if they diverge by more than 3%
// (an in-run A/B, immune to machine-to-machine noise).
func BenchmarkRunObsOff(b *testing.B) {
	benchRun(b, nil)
}

// BenchmarkRunObsNil is a configured-but-empty bundle: Enabled() is false,
// nothing attaches, and the run must cost the same as BenchmarkRunObsOff.
func BenchmarkRunObsNil(b *testing.B) {
	benchRun(b, &obs.Observers{})
}

// BenchmarkRunTraced runs with the full observability stack attached:
// event tracing into a ring sized for the whole run plus interval telemetry.
// The delta against BenchmarkRunObsOff is the tracing-on overhead recorded
// in BENCH_obs.json.
func BenchmarkRunTraced(b *testing.B) {
	benchRun(b, &obs.Observers{
		TraceCapacity: 1 << 16, // comfortably holds the ~9k events this run emits
		SnapshotEvery: 10_000,
		OnSnapshot:    func(obs.IntervalSnapshot) {},
	})
}
