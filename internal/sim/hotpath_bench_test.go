package sim

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/trace"
)

// BenchmarkRunBaseline runs a small single-core baseline simulation per
// iteration: the end-to-end tick hot path (cores, LLC, controllers, device)
// with idle skipping active. Run with -benchmem to watch the per-run
// allocation budget — the read path is pooled and must not allocate per
// request.
func BenchmarkRunBaseline(b *testing.B) {
	cfg := Default(0, dram.Density8Gb, 64)
	cfg.WarmupInsts = 2_000
	cfg.MeasureInsts = 20_000
	app, err := trace.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := New(cfg, &core.Baseline{T: cfg.T}, []trace.Generator{app.Gen(1)}).Run()
		if res.Ctrl.ReadsServed == 0 {
			b.Fatal("run served no reads")
		}
	}
}
