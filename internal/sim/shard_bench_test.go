package sim

import (
	"fmt"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/trace"
)

// BenchmarkShardedSim measures the per-channel parallel tick loop's scaling
// curve on an 8-channel HBM2 system: the same four-core run at shards 2, 4,
// and 8 (one goroutine per channel), against two serial references —
// "serial" (Shards=0, the pre-shard loop) and "shards=1" (the shard knob at
// its no-op setting). On a machine with fewer cores than shards the barrier
// waits serialize onto the scheduler and the curve is flat-to-negative; with
// ≥8 hardware threads the parallel phases overlap. CI A/B-compares serial
// vs shards=1, pinning that the shard plumbing (the nil-runner syncChannel
// check on every enqueue) stays free on the serial path.
func BenchmarkShardedSim(b *testing.B) {
	std, err := dram.StandardByName("hbm2")
	if err != nil {
		b.Fatal(err)
	}
	apps := []string{"mcf", "lbm", "soplex", "omnetpp"}
	for _, shards := range []int{0, 1, 2, 4, 8} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "serial" // Shards=0: the pre-shard serial loop, the A/B reference
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultFor(std, 8, dram.Density8Gb, 64)
			cfg.WarmupInsts = 1_000
			cfg.MeasureInsts = 10_000
			cfg.Shards = shards
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gens := make([]trace.Generator, len(apps))
				for j, name := range apps {
					app, err := trace.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					gens[j] = app.Gen(int64(j) + 1)
				}
				mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
				mech.Cache = true
				res := New(cfg, mech, gens).Run()
				if res.Ctrl.ReadsServed == 0 {
					b.Fatal("run served no reads")
				}
			}
		})
	}
}
