package sim

import (
	"testing"

	"crowdram/internal/dram"
	"crowdram/internal/obs"
)

// TestOracleAndObserversCoexist is the fan-out acceptance test: the
// correctness oracle (Verify), the event tracer, and interval telemetry all
// attach to the same run, every consumer sees the command stream, and the
// simulation result is bit-identical to an unobserved run — observability
// changes nothing about what it observes.
func TestOracleAndObserversCoexist(t *testing.T) {
	baseCfg := verifyConfig(30_000)
	baseCfg.Verify = false
	base := New(baseCfg, newVerifiedCROW(baseCfg), mcfGens(t, 1)).Run()

	cfg := verifyConfig(30_000)
	var snaps []obs.IntervalSnapshot
	cfg.Obs = &obs.Observers{
		TraceCapacity: 1 << 20,
		SnapshotEvery: 10_000,
		OnSnapshot:    func(s obs.IntervalSnapshot) { snaps = append(snaps, s) },
	}
	res := New(cfg, newVerifiedCROW(cfg), mcfGens(t, 1)).Run()

	// The oracle ran alongside the tracer and stayed clean.
	if res.Verify.Total() != 0 {
		t.Fatalf("oracle violations with tracer attached: %v", res.Verify.Counts)
	}

	// The tracer captured the run, including CROW's new commands.
	tr := cfg.Obs.Tracer()
	if tr == nil || tr.Total() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var actT, actC int64
	tr.Events(func(e obs.Event) {
		if e.Class != obs.ClassCmd {
			return
		}
		switch e.Cmd {
		case dram.CmdACTt:
			actT++
		case dram.CmdACTc:
			actC++
		}
	})
	if actT == 0 || actC == 0 {
		t.Fatalf("trace has %d ACT-t / %d ACT-c events, want both > 0", actT, actC)
	}

	// Telemetry snapshots arrived, tile the measured span contiguously, and
	// agree with the device's own command counts (warmup is flushed as its
	// own leading interval, so the measured stats start at snapshot 1).
	if len(snaps) < 2 {
		t.Fatalf("got %d telemetry snapshots, want >= 2", len(snaps))
	}
	var acts, rds int64
	for i, s := range snaps {
		if i > 0 {
			if s.StartCycle != snaps[i-1].Cycle {
				t.Fatalf("snapshot %d starts at %d, previous ended at %d",
					i, s.StartCycle, snaps[i-1].Cycle)
			}
			for _, b := range s.Banks {
				acts += b.ACT + b.ActT + b.ActC
				rds += b.RD
			}
		}
	}
	if acts != res.DRAM.Activations() || rds != res.DRAM.RD {
		t.Fatalf("telemetry totals ACT=%d RD=%d, device stats ACT=%d RD=%d",
			acts, rds, res.DRAM.Activations(), res.DRAM.RD)
	}

	// Observation must not perturb the simulation.
	if res.IPC[0] != base.IPC[0] || res.DRAM != base.DRAM {
		t.Fatalf("observed run diverged from unobserved run:\nIPC %v vs %v\nDRAM %+v vs %+v",
			res.IPC, base.IPC, res.DRAM, base.DRAM)
	}
}
