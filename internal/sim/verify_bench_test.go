package sim

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/trace"
)

// benchVerify runs a small single-core CROW-cache simulation per iteration,
// with or without the correctness oracle, so comparing the two benchmarks
// gives the end-to-end verify-mode overhead of a full system run (controller,
// device, and oracle together rather than the raw channel loop).
func benchVerify(b *testing.B, verify bool) {
	cfg := Default(8, dram.Density8Gb, 64)
	cfg.Verify = verify
	cfg.WarmupInsts = 2_000
	cfg.MeasureInsts = 20_000
	app, err := trace.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mech := core.NewCROW(cfg.Channels, cfg.Geo, cfg.T)
		mech.Cache = true
		res := New(cfg, mech, []trace.Generator{app.Gen(1)}).Run()
		if verify && res.Verify.Total() != 0 {
			b.Fatalf("oracle violations in benchmark run: %v", res.Verify.Counts)
		}
	}
}

func BenchmarkRunVerifyOff(b *testing.B) { benchVerify(b, false) }
func BenchmarkRunVerifyOn(b *testing.B)  { benchVerify(b, true) }
