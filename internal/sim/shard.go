// Per-channel parallel DRAM tick. Channels are independent command/timing
// domains; the only cross-channel interactions in a DRAM tick are the read
// completions (which fill the shared LLC and can trigger writebacks to other
// channels) and the shared observer sinks (tracer, oracle). The shard runner
// splits each DRAM tick into two phases around those interaction points:
//
//	phase 1 (parallel)  — every channel pops its due completion events into
//	                      a per-channel buffer and advances its device
//	                      accounting (ctrl.TickEventsDeferred).
//	barrier             — all phase-1 work visible to the coordinator.
//	drain (serialized)  — the coordinator fires the buffered completions in
//	                      fixed channel order (ctrl.CompleteDeferred), which
//	                      is exactly the order the serial loop fires them.
//	                      After channel ch drains, its phase 2 is released.
//	phase 2 (parallel)  — each channel runs its scheduling half
//	                      (ctrl.TickSchedule), staggered by the drain.
//	barrier             — the tick ends once every channel's phase 2 is done;
//	                      staged observer events drain in channel order.
//
// The staggered release is what makes the parallel run bit-equivalent to the
// serial one: when the drain of channel i triggers a writeback to channel j,
// the serial loop would observe j pre-Tick for j > i (j ticks after i) and
// post-Tick for j < i (j already ticked). Phase 1 never touches the queues a
// writeback enqueue inspects, so "after phase 1, before phase 2" is
// indistinguishable from pre-Tick; for j < i the coordinator waits for j's
// phase 2 (syncChannel) before enqueueing, reproducing the post-Tick state —
// including the exact accept/reject decision at a full write queue.
//
// Every DRAM tick is a synchronization epoch, so stats snapshots, telemetry
// cuts, and idle skipping — all of which run between ticks — observe the same
// quiesced state as in a serial run, with happens-before established by the
// epoch counters below.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"crowdram/internal/ctrl"
)

// padCounter is an epoch counter on its own cache line, so workers spinning
// on neighbouring counters do not false-share.
type padCounter struct {
	v atomic.Int64
	_ [56]byte
}

// shardRunner coordinates the per-channel worker goroutines for one run.
type shardRunner struct {
	s        *System
	channels int

	// yield makes every wait loop defer to the scheduler immediately: with
	// fewer procs than goroutines, pure spinning would burn whole scheduler
	// timeslices per barrier.
	yield bool

	// epoch releases phase 1: workers run tick e once epoch reaches e.
	// now carries the DRAM cycle of the current epoch (written by the
	// coordinator before the release, read by workers after it).
	epoch padCounter
	now   int64

	t1done  []padCounter // per worker: phase 1 complete for epoch e
	t2start []padCounter // per channel: drain done, phase 2 may run
	t2done  []padCounter // per channel: phase 2 complete

	comps [][]*ctrl.Request // per channel: completions deferred in phase 1

	// drainCh/active describe the drain position to syncChannel; both are
	// only touched by the coordinating goroutine.
	drainCh int
	active  bool

	stopped atomic.Bool
	wg      sync.WaitGroup
}

// newShardRunner starts workers for the system's channels, clamping the
// shard count to the channel count and assigning each worker a contiguous
// channel range.
func newShardRunner(s *System, shards int) *shardRunner {
	n := len(s.Ctrls)
	if shards > n {
		shards = n
	}
	r := &shardRunner{
		s:        s,
		channels: n,
		yield:    runtime.GOMAXPROCS(0) <= shards,
		t1done:   make([]padCounter, shards),
		t2start:  make([]padCounter, n),
		t2done:   make([]padCounter, n),
		comps:    make([][]*ctrl.Request, n),
	}
	for w := 0; w < shards; w++ {
		lo, hi := w*n/shards, (w+1)*n/shards
		r.wg.Add(1)
		go r.worker(w, lo, hi)
	}
	return r
}

// stop retires the workers. Callable only between ticks (workers are parked
// waiting for the next epoch then).
func (r *shardRunner) stop() {
	r.stopped.Store(true)
	r.wg.Wait()
}

// await blocks until the counter reaches target, returning false if the
// runner stopped instead. Sub-microsecond waits resolve within the spin
// budget; longer ones (the CPU phase, idle skips) yield.
func (r *shardRunner) await(c *padCounter, target int64) bool {
	for spins := 0; ; spins++ {
		if c.v.Load() >= target {
			return true
		}
		if r.stopped.Load() {
			return false
		}
		if r.yield || spins > 256 {
			runtime.Gosched()
		}
	}
}

// awaitCPU is await for the coordinating goroutine, which never stops
// mid-tick.
func (r *shardRunner) awaitCPU(c *padCounter, target int64) {
	for spins := 0; c.v.Load() < target; spins++ {
		if r.yield || spins > 256 {
			runtime.Gosched()
		}
	}
}

// worker advances channels [lo, hi) through both phases of every epoch.
func (r *shardRunner) worker(w, lo, hi int) {
	defer r.wg.Done()
	for e := int64(1); ; e++ {
		if !r.await(&r.epoch, e) {
			return
		}
		now := r.now
		for ch := lo; ch < hi; ch++ {
			r.comps[ch] = r.s.Ctrls[ch].TickEventsDeferred(now, r.comps[ch][:0])
		}
		r.t1done[w].v.Store(e)
		for ch := lo; ch < hi; ch++ {
			if !r.await(&r.t2start[ch], e) {
				return
			}
			if f := r.s.testSuppressT2; f == nil || !f(ch, now) {
				r.s.Ctrls[ch].TickSchedule(now)
			}
			r.t2done[ch].v.Store(e)
		}
	}
}

// tickDram advances every channel by one DRAM cycle, equivalent to the
// serial loop `for _, c := range s.Ctrls { c.Tick(now) }` byte for byte.
func (r *shardRunner) tickDram(now int64) {
	r.now = now
	obs := r.s.Cfg.Obs
	obs.BeginTickWindow()
	if o := r.s.Oracle; o != nil {
		o.BeginWindow()
	}
	e := r.epoch.v.Add(1)
	for w := range r.t1done {
		r.awaitCPU(&r.t1done[w], e)
	}
	r.active = true
	for ch := 0; ch < r.channels; ch++ {
		r.drainCh = ch
		if len(r.comps[ch]) > 0 {
			r.s.Ctrls[ch].CompleteDeferred(now, r.comps[ch])
		}
		r.t2start[ch].v.Store(e)
	}
	r.active = false
	for ch := 0; ch < r.channels; ch++ {
		r.awaitCPU(&r.t2done[ch], e)
	}
	if o := r.s.Oracle; o != nil {
		o.EndWindow()
	}
	obs.EndTickWindow()
}

// syncChannel delays an enqueue onto ch until the channel is in its
// serial-order state: during the drain, channels before the drain position
// have had their phase 2 released and must finish it first (the serial loop
// would have ticked them already); every other channel is safely between
// phases. Outside a sharded drain this is a nil-receiver no-op, so the
// serial enqueue path pays one comparison.
func (r *shardRunner) syncChannel(ch int) {
	if r == nil || !r.active || ch >= r.drainCh {
		return
	}
	r.awaitCPU(&r.t2done[ch], r.epoch.v.Load())
}
