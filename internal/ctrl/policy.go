package ctrl

import (
	"fmt"
	"sort"

	"crowdram/internal/dram"
)

// This file defines the controller's pluggable policy surfaces. The
// controller composes one Scheduler, one RowPolicy, and one RefreshPolicy,
// all resolved by name from registries at construction; the policy
// implementations are stateless (every mutable datum lives on the
// Controller), so the registered singletons are safely shared across
// concurrently running controllers.

// Scheduler decides which queued request to advance each cycle. Schedule
// runs the full pass over the preferred queue (reads, or writes in drain
// mode); ScheduleHits is the restricted pass the non-preferred queue gets so
// neither direction starves the other.
type Scheduler interface {
	Name() string
	Schedule(c *Controller, q *[]*Request, now int64) bool
	ScheduleHits(c *Controller, q *[]*Request, now int64) bool
}

// RowPolicy decides when to close rows no request needs. ServiceIdle may
// issue at most one command; NextClose returns the earliest cycle a
// policy-initiated close could issue (dram.Horizon if never), which the
// idle-skip logic folds into NextEvent.
type RowPolicy interface {
	Name() string
	ServiceIdle(c *Controller, now int64) bool
	NextClose(c *Controller) int64
}

// RefreshPolicy decides how the per-rank refresh obligation is met. PerBank
// reports whether refreshes are bank-granular (the REFpb/REFsb command at
// banks-times the rate, for the shorter tRFCpb) or rank-granular (REFab).
// Issue tries to issue (or clear the way for) one refresh of rank r once the
// shared state machine has decided one is due: done means a command issued
// this cycle, wait means the rank is blocked on device timing and the scan
// must stop; neither means the refresh was postponed and the next rank may
// be considered.
type RefreshPolicy interface {
	Name() string
	PerBank() bool
	Issue(c *Controller, r int, now int64) (done, wait bool)
}

var (
	schedulers      = map[string]Scheduler{}
	rowPolicies     = map[string]RowPolicy{}
	refreshPolicies = map[string]RefreshPolicy{}
)

// RegisterScheduler adds a scheduler to the registry; it panics on a
// duplicate name so a wiring mistake fails at init.
func RegisterScheduler(s Scheduler) {
	if _, dup := schedulers[s.Name()]; dup {
		panic(fmt.Sprintf("ctrl: scheduler %q registered twice", s.Name()))
	}
	schedulers[s.Name()] = s
}

// RegisterRowPolicy adds a row policy to the registry.
func RegisterRowPolicy(p RowPolicy) {
	if _, dup := rowPolicies[p.Name()]; dup {
		panic(fmt.Sprintf("ctrl: row policy %q registered twice", p.Name()))
	}
	rowPolicies[p.Name()] = p
}

// RegisterRefreshPolicy adds a refresh policy to the registry.
func RegisterRefreshPolicy(p RefreshPolicy) {
	if _, dup := refreshPolicies[p.Name()]; dup {
		panic(fmt.Sprintf("ctrl: refresh policy %q registered twice", p.Name()))
	}
	refreshPolicies[p.Name()] = p
}

// SchedulerByName looks a scheduler up; the error lists registered names.
func SchedulerByName(name string) (Scheduler, error) {
	if s, ok := schedulers[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("ctrl: unknown scheduler %q (registered: %s)", name, join(SchedulerNames()))
}

// RowPolicyByName looks a row policy up; the error lists registered names.
func RowPolicyByName(name string) (RowPolicy, error) {
	if p, ok := rowPolicies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("ctrl: unknown row policy %q (registered: %s)", name, join(RowPolicyNames()))
}

// RefreshPolicyByName looks a refresh policy up; the error lists registered
// names.
func RefreshPolicyByName(name string) (RefreshPolicy, error) {
	if p, ok := refreshPolicies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("ctrl: unknown refresh policy %q (registered: %s)", name, join(RefreshPolicyNames()))
}

// SchedulerNames returns the registered scheduler names, sorted.
func SchedulerNames() []string { return sortedKeys(schedulers) }

// RowPolicyNames returns the registered row-policy names, sorted.
func RowPolicyNames() []string { return sortedKeys(rowPolicies) }

// RefreshPolicyNames returns the registered refresh-policy names, sorted.
func RefreshPolicyNames() []string { return sortedKeys(refreshPolicies) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// frfcfsSched is FR-FCFS [81]: row hits first (oldest hit wins, demand
// before prefetch), then the oldest request that can make progress. The
// capped variant recycles a row once effCap column commands have been served
// from one activation; the uncapped variant sets effCap to zero (unlimited).
type frfcfsSched struct{ name string }

func (s frfcfsSched) Name() string { return s.name }
func (s frfcfsSched) Schedule(c *Controller, q *[]*Request, now int64) bool {
	return c.schedule(q, now)
}
func (s frfcfsSched) ScheduleHits(c *Controller, q *[]*Request, now int64) bool {
	return c.scheduleHits(q, now)
}

// fcfsSched serves requests strictly in arrival order: only the oldest
// request of the preferred queue may issue, and the non-preferred queue gets
// no out-of-order hit pass. The lower bound of the scheduling design space.
type fcfsSched struct{}

func (fcfsSched) Name() string { return "fcfs" }
func (fcfsSched) Schedule(c *Controller, q *[]*Request, now int64) bool {
	return c.scheduleInOrder(q, now)
}
func (fcfsSched) ScheduleHits(*Controller, *[]*Request, int64) bool { return false }

// timeoutRowPolicy closes rows idle past the controller's timeout (75 ns in
// Table 2). The "closed" variant is the same machinery with a zero timeout:
// a row closes as soon as no queued request wants it.
type timeoutRowPolicy struct{ name string }

func (p timeoutRowPolicy) Name() string { return p.name }
func (p timeoutRowPolicy) ServiceIdle(c *Controller, now int64) bool {
	return c.serviceTimeout(now)
}
func (p timeoutRowPolicy) NextClose(c *Controller) int64 {
	return c.Dev.EarliestTimeoutPRE(c.timeout)
}

// openRowPolicy never closes a row on its own; rows close only on conflicts,
// refresh, and the hit cap (the SALP open-page policy).
type openRowPolicy struct{}

func (openRowPolicy) Name() string                        { return "open" }
func (openRowPolicy) ServiceIdle(*Controller, int64) bool { return false }
func (openRowPolicy) NextClose(*Controller) int64         { return dram.Horizon }

// allbankRefresh issues LPDDR4-style REFab: the whole rank refreshes for
// tRFC, so open rows must close first.
type allbankRefresh struct{}

func (allbankRefresh) Name() string  { return "allbank" }
func (allbankRefresh) PerBank() bool { return false }
func (allbankRefresh) Issue(c *Controller, r int, now int64) (bool, bool) {
	if c.Dev.CanREF(r, now) {
		c.Dev.REF(r, now)
		c.Stats.Refreshes++
		if c.Obs != nil {
			c.sched(SchedRefresh, dram.Addr{Channel: c.Cfg.ChannelID, Rank: r}, now)
		}
		start := c.refRow[r]
		c.Mech.OnRefreshRows(c.Cfg.ChannelID, r, -1, start, c.Cfg.T.RowsPerRef)
		c.refRow[r] = (start + c.Cfg.T.RowsPerRef) % c.Cfg.Geo.RowsPerBank
		c.refOwed[r]--
		return true, false
	}
	// Close open rows so REF can issue.
	c.osBuf = c.Dev.OpenSubarraysAppend(c.osBuf[:0])
	for _, os := range c.osBuf {
		if os.Rank != r {
			continue
		}
		a := dram.Addr{Channel: c.Cfg.ChannelID, Rank: os.Rank, Bank: os.Bank, Row: os.Row}
		if c.Dev.CanPRE(a, now) {
			c.preAndNotify(a, now)
			return true, false
		}
	}
	// Blocked on tRAS/tRP; wait.
	return false, true
}

// perbankRefresh issues bank-granular refreshes round-robin over the rank's
// banks: one bank refreshes (for the shorter tRFCpb) while the others keep
// serving, at banks-times the command rate. Registered twice: as "perbank"
// (LPDDR4 REFpb, HBM2's default) and as "samebank" (DDR5 REFsb with tRFCsb
// in the RFCpb slot — in this single-bank-group-per-bank model the two
// commands sweep the banks identically).
type perbankRefresh struct{ name string }

func (p perbankRefresh) Name() string  { return p.name }
func (p perbankRefresh) PerBank() bool { return true }
func (p perbankRefresh) Issue(c *Controller, r int, now int64) (bool, bool) {
	// Time each refresh to bank idleness: defer while the target bank has
	// queued demand, within the per-bank postponement budget JEDEC allows
	// (8), so the refresh lands in a gap instead of stalling an active bank.
	budget := c.Cfg.MaxPostpone
	if budget == 0 {
		budget = c.Cfg.Geo.Banks
	}
	if c.refOwed[r] <= budget && c.hasBankDemand(r, c.refBank[r]) {
		return false, false
	}
	if c.refreshBank(r, now) {
		return true, false
	}
	return false, true
}

// Registered policy names. DefaultScheduler etc. are what an empty Config
// field resolves to — the Table 2 controller.
const (
	DefaultScheduler     = "frfcfs-cap"
	DefaultRowPolicy     = "timeout"
	DefaultRefreshPolicy = "allbank"
)

func init() {
	RegisterScheduler(frfcfsSched{name: DefaultScheduler})
	RegisterScheduler(frfcfsSched{name: "frfcfs"})
	RegisterScheduler(fcfsSched{})
	RegisterRowPolicy(timeoutRowPolicy{name: DefaultRowPolicy})
	RegisterRowPolicy(timeoutRowPolicy{name: "closed"})
	RegisterRowPolicy(openRowPolicy{})
	RegisterRefreshPolicy(allbankRefresh{})
	RegisterRefreshPolicy(perbankRefresh{name: "perbank"})
	RegisterRefreshPolicy(perbankRefresh{name: "samebank"})
}
