package ctrl

import (
	"math/rand"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

func newBaseline(copyRows int) (*Controller, dram.Timing) {
	g := dram.Std(copyRows)
	t := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := New(DefaultConfig(0, g, t), &core.Baseline{T: t})
	return c, t
}

// run ticks the controller until pred returns true or the deadline passes.
func run(t *testing.T, c *Controller, deadline int64, pred func() bool) int64 {
	t.Helper()
	for now := int64(1); now <= deadline; now++ {
		c.Tick(now)
		if pred != nil && pred() {
			return now
		}
	}
	if pred != nil {
		t.Fatalf("condition not reached within %d cycles", deadline)
	}
	return deadline
}

func TestSingleReadLatency(t *testing.T) {
	c, tm := newBaseline(0)
	var doneAt int64 = -1
	req := &Request{Type: Read, Addr: dram.Addr{Row: 5, Col: 3}, Done: func(now int64, _ uint64) { doneAt = now }}
	if !c.EnqueueRead(req, 0) {
		t.Fatal("enqueue failed")
	}
	run(t, c, 1000, func() bool { return doneAt >= 0 })
	// ACT at cycle 1, RD at 1+tRCD, data at +tCL+tBL.
	want := int64(1 + tm.RCD + tm.CL + tm.BL)
	if doneAt != want {
		t.Errorf("read completed at %d, want %d", doneAt, want)
	}
	if c.Stats.ReadsServed != 1 || c.Stats.RowMisses != 1 || c.Stats.RowHits != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestRowHitsAvoidReactivation(t *testing.T) {
	c, _ := newBaseline(0)
	done := 0
	for i := 0; i < 4; i++ {
		req := &Request{Type: Read, Addr: dram.Addr{Row: 5, Col: i}, Done: func(int64, uint64) { done++ }}
		if !c.EnqueueRead(req, 0) {
			t.Fatal("enqueue failed")
		}
	}
	run(t, c, 2000, func() bool { return done == 4 })
	if got := c.Dev.Stats.Activations(); got != 1 {
		t.Errorf("activations = %d, want 1 (row hits)", got)
	}
	if c.Stats.RowHits != 4 {
		t.Errorf("RowHits = %d, want 4", c.Stats.RowHits)
	}
}

func TestFRFCFSCapRecyclesRow(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.Cap = 2
	c := New(cfg, &core.Baseline{T: tm})
	done := 0
	for i := 0; i < 6; i++ {
		req := &Request{Type: Read, Addr: dram.Addr{Row: 5, Col: i}, Done: func(int64, uint64) { done++ }}
		c.EnqueueRead(req, 0)
	}
	run(t, c, 5000, func() bool { return done == 6 })
	// Cap 2 over 6 requests: 3 activations.
	if got := c.Dev.Stats.Activations(); got != 3 {
		t.Errorf("activations = %d, want 3 with cap 2", got)
	}
}

func TestRowConflictPrecharges(t *testing.T) {
	c, _ := newBaseline(0)
	done := 0
	cb := func(int64, uint64) { done++ }
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: cb}, 0)
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 2}, Done: cb}, 0)
	run(t, c, 3000, func() bool { return done == 2 })
	if c.Stats.RowConflicts < 1 {
		t.Errorf("RowConflicts = %d, want >= 1", c.Stats.RowConflicts)
	}
	if c.Dev.Stats.Activations() != 2 {
		t.Errorf("activations = %d, want 2", c.Dev.Stats.Activations())
	}
}

func TestTimeoutClosesIdleRow(t *testing.T) {
	c, _ := newBaseline(0)
	done := false
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: func(int64, uint64) { done = true }}, 0)
	run(t, c, 1000, func() bool { return done })
	// 75 ns = 120 cycles after last use, the row must close.
	run(t, c, 2000, func() bool { return c.Stats.TimeoutCloses == 1 })
	if c.Dev.OpenRow(dram.Addr{Row: 1}) != -1 {
		t.Error("row must be closed by the timeout policy")
	}
}

func TestOpenPagePolicyKeepsRowOpen(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.OpenPage = true
	c := New(cfg, &core.Baseline{T: tm})
	done := false
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: func(int64, uint64) { done = true }}, 0)
	run(t, c, 1000, func() bool { return done })
	run(t, c, 3000, nil)
	if c.Dev.OpenRow(dram.Addr{Row: 1}) != 1 {
		t.Error("open-page policy must keep the row open")
	}
	if c.Stats.TimeoutCloses != 0 {
		t.Error("no timeout closes under open-page")
	}
}

func TestRefreshCadence(t *testing.T) {
	c, tm := newBaseline(0)
	// Run a little over 4 refresh intervals.
	run(t, c, int64(tm.REFI)*4+100, nil)
	if c.Stats.Refreshes != 4 {
		t.Errorf("refreshes = %d, want 4", c.Stats.Refreshes)
	}
}

func TestRefreshClosesOpenRows(t *testing.T) {
	c, tm := newBaseline(0)
	cfg := c.Cfg
	_ = cfg
	// Keep a stream of row hits alive right up to the refresh deadline.
	done := 0
	for i := 0; ; i++ {
		at := int64(i * 100)
		if at > int64(tm.REFI) {
			break
		}
		c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1, Col: i % 128}, Done: func(int64, uint64) { done++ }}, 0)
	}
	run(t, c, int64(tm.REFI)+int64(tm.RFC)+2000, func() bool { return c.Stats.Refreshes == 1 })
}

func TestCROWRefDoublesRefreshInterval(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	mech := core.NewCROW(1, g, tm)
	mech.Ref = true
	mech.LoadProfile(retention.FixedProfile(retention.Geometry{
		Channels: 1, Ranks: g.Ranks, Banks: g.Banks,
		Subarrays: g.SubarraysPerBank(), RowsPerSubarray: g.RowsPerSubarray,
	}, 3, 7))
	c := New(DefaultConfig(0, g, tm), mech)
	run(t, c, int64(tm.REFI)*4+100, nil)
	if c.Stats.Refreshes != 2 {
		t.Errorf("refreshes = %d, want 2 (doubled interval)", c.Stats.Refreshes)
	}
}

func TestNoRefreshIdeal(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := New(DefaultConfig(0, g, tm), &core.Ideal{T: tm, NoRefresh: true})
	run(t, c, int64(tm.REFI)*4+100, nil)
	if c.Stats.Refreshes != 0 {
		t.Errorf("refreshes = %d, want 0", c.Stats.Refreshes)
	}
}

func TestWriteDrainAndForwarding(t *testing.T) {
	c, _ := newBaseline(0)
	for i := 0; i < 50; i++ {
		ok := c.EnqueueWrite(&Request{Type: Write, Addr: dram.Addr{Row: i % 4, Col: i}}, 0)
		if !ok {
			t.Fatal("write queue full too early")
		}
	}
	// A read to a queued write's address forwards immediately.
	fwd := false
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 0, Col: 0}, Done: func(int64, uint64) { fwd = true }}, 0)
	run(t, c, 10, func() bool { return fwd })
	if c.Stats.Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", c.Stats.Forwarded)
	}
	// Draining must eventually write everything back.
	run(t, c, 50000, func() bool { _, w := c.QueueLens(); return w == 0 })
	if c.Stats.WritesServed != 50 {
		t.Errorf("WritesServed = %d, want 50", c.Stats.WritesServed)
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	c, _ := newBaseline(0)
	n := 0
	for i := 0; ; i++ {
		if !c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: i}}, 0) {
			break
		}
		n++
	}
	if n != c.Cfg.ReadQ {
		t.Errorf("accepted %d reads, want queue capacity %d", n, c.Cfg.ReadQ)
	}
}

func TestCROWCacheEndToEnd(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	mech := core.NewCROW(1, g, tm)
	mech.Cache = true
	c := New(DefaultConfig(0, g, tm), mech)
	k := dram.NewChecker(c.Dev)

	done := 0
	cb := func(int64, uint64) { done++ }
	// First activation of row 1: ACT-c. Conflict with row 2, then
	// reactivate row 1: ACT-t.
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: cb}, 0)
	run(t, c, 2000, func() bool { return done == 1 })
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 2}, Done: cb}, 0)
	run(t, c, 4000, func() bool { return done == 2 })
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: cb}, 0)
	run(t, c, 8000, func() bool { return done == 3 })

	if c.Dev.Stats.ACTCopy < 2 {
		t.Errorf("ACT-c count = %d, want >= 2 (rows 1 and 2 cached)", c.Dev.Stats.ACTCopy)
	}
	if c.Dev.Stats.ACTTwo < 1 {
		t.Errorf("ACT-t count = %d, want >= 1 (row 1 re-activation)", c.Dev.Stats.ACTTwo)
	}
	if mech.Stats.Hits < 1 {
		t.Errorf("CROW-table hits = %d, want >= 1", mech.Stats.Hits)
	}
	for _, v := range k.Violations {
		t.Errorf("checker: %s", v)
	}
}

func TestMechCopyExecution(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	mech := core.NewCROW(1, g, tm)
	mech.Ref = true
	c := New(DefaultConfig(0, g, tm), mech)
	if !mech.RemapDynamic(dram.Addr{Row: 9}) {
		t.Fatal("remap failed")
	}
	run(t, c, 2000, func() bool {
		return c.Stats.MechCopies == 1 && c.Dev.OpenRow(dram.Addr{Row: 9}) == -1
	})
	if c.Dev.Stats.ACTCopy != 1 {
		t.Errorf("device ACT-c = %d, want 1", c.Dev.Stats.ACTCopy)
	}
	if c.Dev.Stats.PRE != 1 {
		t.Error("copy activation must be precharged after full restoration")
	}
}

// TestRandomTrafficObeysProtocol drives random requests through every
// mechanism configuration with the independent checker attached, and makes
// sure all requests complete and no timing constraint is ever violated.
func TestRandomTrafficObeysProtocol(t *testing.T) {
	configs := []struct {
		name string
		mech func(g dram.Geometry, tm dram.Timing) core.Mechanism
		masa bool
		open bool
	}{
		{"baseline", func(g dram.Geometry, tm dram.Timing) core.Mechanism { return &core.Baseline{T: tm} }, false, false},
		{"crow-cache", func(g dram.Geometry, tm dram.Timing) core.Mechanism {
			m := core.NewCROW(1, g, tm)
			m.Cache = true
			return m
		}, false, false},
		{"crow-cache+ref", func(g dram.Geometry, tm dram.Timing) core.Mechanism {
			m := core.NewCROW(1, g, tm)
			m.Cache = true
			m.Ref = true
			m.LoadProfile(retention.FixedProfile(retention.Geometry{
				Channels: 1, Ranks: 1, Banks: 8, Subarrays: 128, RowsPerSubarray: 512,
			}, 3, 11))
			return m
		}, false, false},
		{"ideal", func(g dram.Geometry, tm dram.Timing) core.Mechanism { return &core.Ideal{T: tm} }, false, false},
		{"salp-masa", func(g dram.Geometry, tm dram.Timing) core.Mechanism { return &core.Baseline{T: tm} }, true, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			g := dram.Std(8)
			tm := dram.LPDDR4(dram.Density8Gb, 64, g)
			ctrlCfg := DefaultConfig(0, g, tm)
			ctrlCfg.MASA = cfg.masa
			ctrlCfg.OpenPage = cfg.open
			c := New(ctrlCfg, cfg.mech(g, tm))
			k := dram.NewChecker(c.Dev)

			rng := rand.New(rand.NewSource(1))
			const total = 300
			done := 0
			issued := 0
			for now := int64(1); done < total && now < 2_000_000; now++ {
				if issued < total && rng.Intn(4) == 0 {
					a := dram.Addr{
						Bank: rng.Intn(8),
						Row:  rng.Intn(64), // few rows: force reuse + conflicts
						Col:  rng.Intn(128),
					}
					if rng.Intn(4) == 0 {
						if c.EnqueueWrite(&Request{Type: Write, Addr: a}, now) {
							issued++
							done++ // writes complete at accept
						}
					} else {
						if c.EnqueueRead(&Request{Type: Read, Addr: a, Done: func(int64, uint64) { done++ }}, now) {
							issued++
						}
					}
				}
				c.Tick(now)
			}
			// Drain writes.
			for now := int64(2_000_001); now < 2_200_000; now++ {
				c.Tick(now)
				if c.Idle() {
					break
				}
			}
			if done < total {
				t.Fatalf("%s: only %d/%d requests completed", cfg.name, done, total)
			}
			if len(k.Violations) > 0 {
				for _, v := range k.Violations[:min(5, len(k.Violations))] {
					t.Errorf("checker: %s", v)
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
