package ctrl

import (
	"strings"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

// newPolicyCtrl builds a zero-copy-row baseline controller with the given
// policy names (empty strings keep the Table 2 defaults).
func newPolicyCtrl(sched, rowPol, refresh string) (*Controller, dram.Timing) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.Scheduler = sched
	cfg.RowPolicy = rowPol
	cfg.Refresh = refresh
	return New(cfg, &core.Baseline{T: tm}), tm
}

func TestPolicyRegistriesListChoices(t *testing.T) {
	cases := []struct {
		kind  string
		err   error
		names []string
	}{
		{"scheduler", func() error { _, err := SchedulerByName("rr"); return err }(),
			[]string{"fcfs", "frfcfs", "frfcfs-cap"}},
		{"row policy", func() error { _, err := RowPolicyByName("adaptive"); return err }(),
			[]string{"closed", "open", "timeout"}},
		{"refresh policy", func() error { _, err := RefreshPolicyByName("rowgranular"); return err }(),
			[]string{"allbank", "perbank", "samebank"}},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: unknown name accepted", c.kind)
		}
		for _, want := range c.names {
			if !strings.Contains(c.err.Error(), want) {
				t.Errorf("%s error %q does not list %q", c.kind, c.err, want)
			}
		}
	}
}

func TestPolicyNamesSorted(t *testing.T) {
	for _, c := range []struct {
		kind string
		got  []string
		want string
	}{
		{"schedulers", SchedulerNames(), "fcfs,frfcfs,frfcfs-cap"},
		{"row policies", RowPolicyNames(), "closed,open,timeout"},
		{"refresh policies", RefreshPolicyNames(), "allbank,perbank,samebank"},
	} {
		if got := strings.Join(c.got, ","); got != c.want {
			t.Errorf("%s = %s, want %s", c.kind, got, c.want)
		}
	}
}

func TestDefaultPoliciesResolve(t *testing.T) {
	c, _ := newPolicyCtrl("", "", "")
	sched, row, ref := c.Policies()
	if sched != DefaultScheduler || row != DefaultRowPolicy || ref != DefaultRefreshPolicy {
		t.Errorf("defaults resolved to %s/%s/%s, want %s/%s/%s",
			sched, row, ref, DefaultScheduler, DefaultRowPolicy, DefaultRefreshPolicy)
	}
}

func TestUnknownPolicyNamePanics(t *testing.T) {
	// Controller config is internal plumbing: user-supplied names are
	// validated at the crow.Options layer, so an unknown name reaching New
	// is a wiring bug and must fail loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an unknown scheduler name")
		}
	}()
	newPolicyCtrl("round-robin", "", "")
}

// TestFCFSServesInOrder pins the difference between fcfs and the FR-FCFS
// family: with requests A(row 1), B(row 2), C(row 1) queued, FR-FCFS
// reorders C ahead of B (a row hit beats an older miss) while FCFS serves
// strictly in arrival order.
func TestFCFSServesInOrder(t *testing.T) {
	for _, tc := range []struct {
		sched string
		want  string
	}{
		{"fcfs", "ABC"},
		{"frfcfs", "ACB"},
		{"frfcfs-cap", "ACB"},
	} {
		c, _ := newPolicyCtrl(tc.sched, "", "")
		order := ""
		for i, r := range []struct {
			label string
			row   int
		}{{"A", 1}, {"B", 2}, {"C", 1}} {
			label := r.label
			req := &Request{Type: Read, Addr: dram.Addr{Row: r.row, Col: i},
				Done: func(int64, uint64) { order += label }}
			if !c.EnqueueRead(req, 0) {
				t.Fatal("enqueue failed")
			}
		}
		run(t, c, 2000, func() bool { return len(order) == 3 })
		if order != tc.want {
			t.Errorf("%s served %s, want %s", tc.sched, order, tc.want)
		}
	}
}

// TestClosedPolicyReactivates pins the row policies against each other with
// two same-row reads separated by a short idle gap (shorter than the 75 ns
// timeout): "closed" precharges immediately and pays a second activation,
// while "timeout" and "open" keep the row and serve a row hit.
func TestClosedPolicyReactivates(t *testing.T) {
	for _, tc := range []struct {
		rowPol   string
		wantActs int64
	}{
		{"closed", 2},
		{"timeout", 1},
		{"open", 1},
	} {
		c, _ := newPolicyCtrl("", tc.rowPol, "")
		now := int64(0)
		step := func(limit int64, pred func() bool) {
			for i := int64(0); i < limit; i++ {
				now++
				c.Tick(now)
				if pred != nil && pred() {
					return
				}
			}
			if pred != nil {
				t.Fatalf("%s: condition not reached within %d cycles", tc.rowPol, limit)
			}
		}
		read := func(col int) {
			done := false
			req := &Request{Type: Read, Addr: dram.Addr{Row: 7, Col: col},
				Done: func(int64, uint64) { done = true }}
			if !c.EnqueueRead(req, now) {
				t.Fatal("enqueue failed")
			}
			step(1000, func() bool { return done })
		}
		read(0)
		step(40, nil) // idle gap well under the 120-cycle timeout
		read(1)
		if got := c.Dev.Stats.Activations(); got != tc.wantActs {
			t.Errorf("%s: activations = %d, want %d", tc.rowPol, got, tc.wantActs)
		}
	}
}

// TestSamebankRefreshUsesPerBankMachinery checks the DDR5-style samebank
// granularity drives REFpb commands (tRFCsb rides the RFCpb slot) and never
// issues an all-bank REFab.
func TestSamebankRefreshUsesPerBankMachinery(t *testing.T) {
	c, tm := newPolicyCtrl("", "", "samebank")
	run(t, c, int64(tm.REFI)*2+100, nil)
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refreshes issued over 2 tREFI")
	}
	if c.Dev.Stats.REF != 0 {
		t.Error("samebank mode must not issue REFab")
	}
	if c.Dev.Stats.REFpb != c.Stats.Refreshes {
		t.Error("all samebank refreshes must be REFpb")
	}
}
