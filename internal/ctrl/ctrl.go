// Package ctrl implements the memory controller of Table 2: per-channel
// 64-entry read/write request queues, FR-FCFS-Cap scheduling [81], a
// timeout-based row-buffer policy (75 ns), all-bank refresh management, and
// the hook points where a core.Mechanism (CROW-cache, CROW-ref, TL-DRAM,
// or the baseline) decides how each row activation is performed.
package ctrl

import (
	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/metrics"
)

// ReqType distinguishes reads from writes.
type ReqType int

// Request types.
const (
	Read ReqType = iota
	Write
)

// Request is one cache-line-sized memory request.
//
// Requests obtained from Controller.GetRequest are recycled internally once
// complete (after Done fires for reads, after the WR issues for writes), so
// the steady-state read path allocates nothing. Callers must not retain a
// pooled request past its completion.
type Request struct {
	Type   ReqType
	Addr   dram.Addr
	Core   int
	Line   uint64 // upstream line address, carried through to Done
	Arrive int64  // DRAM cycle the request entered the controller
	Done   func(now int64, line uint64)
	IsPref bool     // prefetch: scheduled behind demand requests
	next   *Request // freelist link
}

// Config parameterizes one controller instance.
type Config struct {
	ChannelID int
	Geo       dram.Geometry
	T         dram.Timing
	ReadQ     int // read queue capacity (64)
	WriteQ    int // write queue capacity (64)
	Cap       int // FR-FCFS-Cap: row hits served per activation
	TimeoutNs float64
	MASA      bool // SALP-MASA subarray-level parallelism
	OpenPage  bool // keep rows open until a conflict (SALP open-page)

	// PerBankRefresh uses LPDDR4's REFpb instead of all-bank REFab:
	// one bank refreshes (for the shorter tRFCpb) while the others stay
	// accessible, at 8x the command rate.
	PerBankRefresh bool
	// MaxPostpone allows deferring up to this many due refreshes while
	// demand requests are queued (JEDEC permits 8), catching up when the
	// rank idles — elastic refresh [107].
	MaxPostpone int

	// Scheduler, RowPolicy, and Refresh name the controller policies to
	// compose, resolved from the registries in policy.go. Empty fields
	// resolve to the Table 2 controller: "frfcfs-cap", "timeout" (or
	// "open" when OpenPage is set), and "allbank" (or "perbank" when
	// PerBankRefresh is set) — the legacy booleans keep working.
	Scheduler string
	RowPolicy string
	Refresh   string

	// Features forwards standard-specific device behaviours to the channel.
	Features dram.Features
}

// DefaultConfig returns the Table 2 controller configuration.
func DefaultConfig(channel int, g dram.Geometry, t dram.Timing) Config {
	return Config{
		ChannelID: channel,
		Geo:       g,
		T:         t,
		ReadQ:     64,
		WriteQ:    64,
		Cap:       16,
		TimeoutNs: 75,
	}
}

// Stats aggregates controller-level statistics.
type Stats struct {
	ReadsServed    int64
	WritesServed   int64
	ReadLatencySum int64 // in DRAM cycles, arrival to data
	RowHits        int64
	RowMisses      int64 // activations performed for requests
	RowConflicts   int64 // precharges forced by a conflicting request
	Forwarded      int64 // reads served from the write queue
	Refreshes      int64
	TimeoutCloses  int64
	MechCopies     int64 // mechanism-initiated ACT-c operations
	Scrubs         int64 // idle-cycle full-restore passes
}

// AvgReadLatencyNs returns the mean read latency in nanoseconds, given the
// command-clock cycle time of the standard the controller ran.
func (s *Stats) AvgReadLatencyNs(cycleNs float64) float64 {
	if s.ReadsServed == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.ReadsServed) * cycleNs
}

// SchedKind classifies one scheduler decision for observers.
type SchedKind uint8

// Scheduler decision kinds.
const (
	// SchedRowHit is a column command served from an open row.
	SchedRowHit SchedKind = iota
	// SchedRowMiss is an activation performed for a request.
	SchedRowMiss
	// SchedRowConflict is a precharge forced by a conflicting request (or
	// by the FR-FCFS hit cap recycling the row).
	SchedRowConflict
	// SchedForward is a read served from the write queue.
	SchedForward
	// SchedRefresh is a REF or REFpb issue.
	SchedRefresh
	// SchedTimeoutClose is a timeout-policy precharge of an idle row.
	SchedTimeoutClose
	// SchedMechCopy is a mechanism-initiated ACT-c issue.
	SchedMechCopy
	// SchedScrub is an idle-cycle full-restore activation.
	SchedScrub
	// SchedDrainEnter and SchedDrainExit bracket write-drain mode.
	SchedDrainEnter
	SchedDrainExit
)

var schedNames = [...]string{
	"row-hit", "row-miss", "row-conflict", "forward", "refresh",
	"timeout-close", "mech-copy", "scrub", "drain-enter", "drain-exit",
}

func (k SchedKind) String() string { return schedNames[k] }

// SchedEvent is one scheduler decision, with the queue depths at decision
// time — what a tracer needs to attribute command-stream behaviour to
// controller policy rather than device timing.
type SchedEvent struct {
	Kind   SchedKind
	Cycle  int64
	Addr   dram.Addr // zero-valued for drain transitions
	ReadQ  int
	WriteQ int
}

// SchedObserver receives every scheduler decision of one controller, in
// decision order. Implementations must be cheap: they run on the tick path.
type SchedObserver interface {
	OnSched(e SchedEvent)
}

// event is a scheduled completion callback.
type event struct {
	at  int64
	req *Request
}

// eventQueue is a hand-rolled min-heap on `at`. container/heap would box
// every pushed event into an interface — one allocation per read completion
// on the hot path. The sift directions replicate container/heap's strict-less
// comparisons exactly, so pop order (ties included) is unchanged.
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h[r].at < h[j].at {
			j = r
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	*q = h
	return e
}

// copySource is implemented by mechanisms that enqueue ACT-c copy work
// (RowHammer victim duplication, dynamic CROW-ref remaps).
type copySource interface {
	NextCopy(int) (core.CopyOp, bool)
}

// scrubSource is implemented by mechanisms with idle-cycle restore work.
type scrubSource interface {
	NextScrub(int) (core.CopyOp, bool)
	RequeueScrub(int, dram.Addr)
}

// opPeeker lets NextEvent ask, without mutating mechanism state, whether a
// channel has copy or scrub work pending. Mechanisms implementing copySource
// or scrubSource without opPeeker are never idle-skipped (conservative).
type opPeeker interface {
	HasPendingOps(int) bool
}

// refreshScaler is implemented by mechanisms (mitigation wrappers) that
// scale the refresh rate up: the controller divides its refresh interval by
// the reported divisor. Resolved once at construction; divisors below 2 are
// ignored.
type refreshScaler interface {
	RefreshDivisor() int
}

// copyState tracks a mechanism-initiated ACT-c in flight.
type copyState struct {
	op     core.CopyOp
	actAt  int64
	active bool
}

// Controller schedules one channel.
type Controller struct {
	Cfg  Config
	Dev  *dram.Channel
	Mech core.Mechanism

	readQ, writeQ []*Request
	draining      bool

	// hitsServed counts column commands served from the current activation,
	// per subarray, indexed by key(). A flat slice rather than a map: the
	// scheduler reads it on every hit-pass iteration, and the whole table is
	// a few KiB of contiguous memory that stays cache-resident.
	hitsServed  []int
	subsPerBank int

	refDue  []int64 // next refresh deadline per rank
	refOwed []int   // refreshes due but not yet issued, per rank
	refRow  []int   // refresh row counter per rank
	refBank []int   // next bank to refresh per rank (per-bank mode)

	pendingCopy *copyState

	// The composed policies, resolved from the registries at construction.
	// effCap is the scheduler's effective per-activation hit cap (0 =
	// unlimited, for the uncapped FR-FCFS variant).
	schedPol Scheduler
	rowPol   RowPolicy
	refPol   RefreshPolicy
	effCap   int

	// Cached capability assertions on Mech, resolved once at construction
	// so the per-cycle path performs no dynamic interface checks.
	copySrc  copySource
	scrubSrc scrubSource
	opPeek   opPeeker
	// refDiv divides the refresh interval when a mitigation scales the
	// refresh rate (see refreshScaler); 0/1 = no scaling.
	refDiv int

	free  *Request       // request freelist (see GetRequest)
	osBuf []dram.OpenSub // reusable open-subarray scan buffer

	events      eventQueue
	timeout     int64
	lastEnqueue int64 // most recent demand arrival (gates scrubbing)
	lastScrub   int64
	bankLast    []int64 // last demand command per bank (gates scrubbing), by bankKey

	// ReadLatency tracks the distribution of read latencies in DRAM
	// cycles (arrival to data), in logarithmic buckets.
	ReadLatency *metrics.Histogram

	// Obs, when non-nil, receives every scheduler decision (row hits,
	// conflicts, refreshes, drain transitions) for tracing and telemetry.
	Obs SchedObserver

	Stats Stats
}

// sched reports one scheduler decision to the attached observer. Call sites
// guard with `c.Obs != nil` so the disabled path costs one comparison.
func (c *Controller) sched(k SchedKind, a dram.Addr, now int64) {
	c.Obs.OnSched(SchedEvent{
		Kind: k, Cycle: now, Addr: a,
		ReadQ: len(c.readQ), WriteQ: len(c.writeQ),
	})
}

// New builds a controller over a fresh device channel. Unknown policy names
// panic: user-facing inputs are validated at the crow.Options layer, so an
// unknown name here is a wiring bug.
func New(cfg Config, mech core.Mechanism) *Controller {
	dev := dram.NewChannel(cfg.Geo, cfg.T)
	dev.MASA = cfg.MASA
	dev.Features = cfg.Features
	subs := cfg.Geo.SubarraysPerBank()
	c := &Controller{
		Cfg:         cfg,
		Dev:         dev,
		Mech:        mech,
		hitsServed:  make([]int, cfg.Geo.Ranks*cfg.Geo.Banks*subs),
		subsPerBank: subs,
		bankLast:    make([]int64, cfg.Geo.Ranks*cfg.Geo.Banks),
		timeout:     int64(cfg.TimeoutNs / cfg.T.CycleTime()),
		ReadLatency: metrics.NewHistogram(),
	}
	c.resolvePolicies()
	if rs, ok := mech.(refreshScaler); ok {
		c.refDiv = rs.RefreshDivisor()
	}
	c.refDue = make([]int64, cfg.Geo.Ranks)
	c.refOwed = make([]int, cfg.Geo.Ranks)
	c.refRow = make([]int, cfg.Geo.Ranks)
	c.refBank = make([]int, cfg.Geo.Ranks)
	for r := range c.refDue {
		c.refDue[r] = c.refInterval()
	}
	c.copySrc, _ = mech.(copySource)
	c.scrubSrc, _ = mech.(scrubSource)
	c.opPeek, _ = mech.(opPeeker)
	return c
}

// resolvePolicies looks the configured policy names up, mapping empty names
// (and the legacy OpenPage/PerBankRefresh booleans) to the Table 2 defaults,
// and derives the policy-dependent scalars (effCap, zero timeout for the
// closed-page policy).
func (c *Controller) resolvePolicies() {
	sname := c.Cfg.Scheduler
	if sname == "" {
		sname = DefaultScheduler
	}
	rname := c.Cfg.RowPolicy
	if rname == "" {
		rname = DefaultRowPolicy
		if c.Cfg.OpenPage {
			rname = "open"
		}
	}
	fname := c.Cfg.Refresh
	if fname == "" {
		fname = DefaultRefreshPolicy
		if c.Cfg.PerBankRefresh {
			fname = "perbank"
		}
	}
	var err error
	if c.schedPol, err = SchedulerByName(sname); err != nil {
		panic(err)
	}
	if c.rowPol, err = RowPolicyByName(rname); err != nil {
		panic(err)
	}
	if c.refPol, err = RefreshPolicyByName(fname); err != nil {
		panic(err)
	}
	if sname == DefaultScheduler {
		c.effCap = c.Cfg.Cap
	}
	if rname == "closed" {
		c.timeout = 0
	}
}

// Policies returns the names of the composed scheduler, row policy, and
// refresh policy (for reporting and tests).
func (c *Controller) Policies() (scheduler, rowPolicy, refresh string) {
	return c.schedPol.Name(), c.rowPol.Name(), c.refPol.Name()
}

// GetRequest returns a zeroed request from the controller's freelist (or a
// fresh one). Requests complete back into the pool automatically; a caller
// whose enqueue was rejected returns the request with PutRequest.
func (c *Controller) GetRequest() *Request {
	r := c.free
	if r == nil {
		return &Request{}
	}
	c.free = r.next
	r.next = nil
	return r
}

// PutRequest recycles a request that will not be enqueued after all.
func (c *Controller) PutRequest(r *Request) {
	*r = Request{next: c.free}
	c.free = r
}

func (c *Controller) refInterval() int64 {
	mult := c.Mech.RefreshMultiplier()
	if mult == 0 {
		return 1 << 62
	}
	iv := int64(c.Cfg.T.REFI) * int64(mult)
	if c.refPol.PerBank() {
		iv /= int64(c.Cfg.Geo.Banks)
	}
	if c.refDiv > 1 {
		iv /= int64(c.refDiv)
		if iv < 1 {
			iv = 1
		}
	}
	return iv
}

// QueueLens returns the current read and write queue occupancy.
func (c *Controller) QueueLens() (int, int) { return len(c.readQ), len(c.writeQ) }

// Idle reports whether the controller has no queued work or in-flight
// events (used to drain simulations).
func (c *Controller) Idle() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.events) == 0 && c.pendingCopy == nil
}

// EnqueueRead accepts a read request, or returns false if the queue is full.
// Reads matching a queued write are forwarded and complete immediately.
func (c *Controller) EnqueueRead(r *Request, now int64) bool {
	for _, w := range c.writeQ {
		if w.Addr == r.Addr {
			c.Stats.Forwarded++
			c.Stats.ReadsServed++
			if c.Obs != nil {
				c.sched(SchedForward, r.Addr, now)
			}
			c.events.push(event{at: now + 1, req: r})
			return true
		}
	}
	if len(c.readQ) >= c.Cfg.ReadQ {
		return false
	}
	r.Arrive = now
	c.lastEnqueue = now
	c.readQ = append(c.readQ, r)
	return true
}

// EnqueueWrite accepts a write request, or returns false if the queue is
// full. Writes complete (from the requester's view) on acceptance.
func (c *Controller) EnqueueWrite(r *Request, now int64) bool {
	if len(c.writeQ) >= c.Cfg.WriteQ {
		return false
	}
	r.Arrive = now
	c.lastEnqueue = now
	c.writeQ = append(c.writeQ, r)
	if r.Done != nil {
		r.Done(now, r.Line)
	}
	return true
}

// NextEvent returns the earliest DRAM cycle after `now` at which Tick could
// issue a command or fire a completion. While any queue, copy, scrub, or owed
// refresh is live it conservatively returns now+1 (those paths re-evaluate
// every cycle); otherwise it is the min of the next read completion, the next
// refresh deadline, and the earliest timeout-policy precharge. With nothing
// in flight it returns dram.Horizon; the run loop skips the gap.
func (c *Controller) NextEvent(now int64) int64 {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 || c.pendingCopy != nil {
		return now + 1
	}
	for r := range c.refOwed {
		if c.refOwed[r] > 0 {
			return now + 1
		}
	}
	if c.copySrc != nil || c.scrubSrc != nil {
		if c.opPeek == nil || c.opPeek.HasPendingOps(c.Cfg.ChannelID) {
			return now + 1
		}
	}
	next := dram.Horizon
	if len(c.events) > 0 && c.events[0].at < next {
		next = c.events[0].at
	}
	for r := range c.refDue {
		if c.refDue[r] < next {
			next = c.refDue[r]
		}
	}
	if t := c.rowPol.NextClose(c); t < next {
		next = t
	}
	if next <= now {
		return now + 1
	}
	return next
}

// Tick advances the controller by one DRAM cycle, issuing at most one
// command. It is TickEvents followed by TickSchedule; the sharded tick loop
// (internal/sim) drives the halves separately so completion delivery can be
// serialized across channels while scheduling runs in parallel.
func (c *Controller) Tick(now int64) {
	c.TickEvents(now)
	c.TickSchedule(now)
}

// TickEvents is the completion half of Tick: it advances the device's
// per-cycle accounting and fires every completion event due at now, in heap
// order, recycling each finished request after its callback returns.
func (c *Controller) TickEvents(now int64) {
	c.Dev.Tick(now)
	for len(c.events) > 0 && c.events[0].at <= now {
		e := c.events.pop()
		if e.req.Done != nil {
			e.req.Done(now, e.req.Line)
		}
		c.PutRequest(e.req)
	}
}

// TickEventsDeferred is TickEvents with delivery detached: events due at now
// are popped in the exact order TickEvents would fire them, appended to buf,
// and returned for a later CompleteDeferred. The sharded tick loop uses this
// to pop per-channel events concurrently while the completion callbacks —
// which touch the shared LLC — run on one goroutine in fixed channel order.
func (c *Controller) TickEventsDeferred(now int64, buf []*Request) []*Request {
	c.Dev.Tick(now)
	for len(c.events) > 0 && c.events[0].at <= now {
		buf = append(buf, c.events.pop().req)
	}
	return buf
}

// CompleteDeferred fires and recycles completions collected by
// TickEventsDeferred, replicating TickEvents' per-event sequence: the Done
// callback, then recycling. The slice contents are consumed.
func (c *Controller) CompleteDeferred(now int64, reqs []*Request) {
	for _, r := range reqs {
		if r.Done != nil {
			r.Done(now, r.Line)
		}
		c.PutRequest(r)
	}
}

// TickSchedule is the scheduling half of Tick: refresh, mechanism-initiated
// copies, drain-mode transitions, the composed scheduler passes, the idle-row
// policy, and scrubbing. At most one command issues per call.
func (c *Controller) TickSchedule(now int64) {
	if c.serviceRefresh(now) {
		return
	}
	if c.serviceMechCopy(now) {
		return
	}

	c.updateDrainMode(now)
	q, other := &c.readQ, &c.writeQ
	if c.draining || len(c.readQ) == 0 {
		q, other = &c.writeQ, &c.readQ
	}
	if c.schedPol.Schedule(c, q, now) {
		return
	}
	// If the preferred queue could not issue, let the other queue's row
	// hits through (writes never starve reads and vice versa).
	if c.schedPol.ScheduleHits(c, other, now) {
		return
	}
	if c.rowPol.ServiceIdle(c, now) {
		return
	}
	c.serviceScrub(now)
}

func (c *Controller) updateDrainMode(now int64) {
	hi := c.Cfg.WriteQ * 3 / 4
	lo := c.Cfg.WriteQ / 4
	if !c.draining && (len(c.writeQ) >= hi || (len(c.readQ) == 0 && len(c.writeQ) > 0)) {
		c.draining = true
		if c.Obs != nil {
			c.sched(SchedDrainEnter, dram.Addr{Channel: c.Cfg.ChannelID}, now)
		}
	}
	if c.draining && (len(c.writeQ) <= lo || len(c.writeQ) == 0) && len(c.readQ) > 0 {
		c.draining = false
		if c.Obs != nil {
			c.sched(SchedDrainExit, dram.Addr{Channel: c.Cfg.ChannelID}, now)
		}
	}
}

func (c *Controller) key(a dram.Addr) int {
	return (a.Rank*c.Cfg.Geo.Banks+a.Bank)*c.subsPerBank + a.Subarray(c.Cfg.Geo)
}

func (c *Controller) bankKey(a dram.Addr) int { return a.Rank*c.Cfg.Geo.Banks + a.Bank }

// serviceRefresh runs the shared refresh state machine — per-rank deadline
// accounting with elastic postponement [107] — and delegates the granularity
// of the refresh command itself (REFab, REFpb, REFsb) to the composed
// RefreshPolicy; returns true if a command issued this cycle.
func (c *Controller) serviceRefresh(now int64) bool {
	for r := 0; r < c.Cfg.Geo.Ranks; r++ {
		for now >= c.refDue[r] {
			c.refOwed[r]++
			c.refDue[r] += c.refInterval()
		}
		if c.refOwed[r] == 0 {
			continue
		}
		// Elastic refresh: defer while demand is queued, unless the
		// owed count has reached the postponement limit.
		if c.refOwed[r] <= c.Cfg.MaxPostpone && c.hasRankDemand(r) {
			continue
		}
		done, wait := c.refPol.Issue(c, r, now)
		if done {
			return true
		}
		if wait {
			return false
		}
	}
	return false
}

// refreshBank issues (or clears the way for) one per-bank refresh of the
// next bank in the rank's round-robin order.
func (c *Controller) refreshBank(r int, now int64) bool {
	bank := c.refBank[r]
	if c.Dev.CanREFpb(r, bank, now) {
		c.Dev.REFpb(r, bank, now)
		c.Stats.Refreshes++
		if c.Obs != nil {
			c.sched(SchedRefresh, dram.Addr{Channel: c.Cfg.ChannelID, Rank: r, Bank: bank}, now)
		}
		start := c.refRow[r]
		c.Mech.OnRefreshRows(c.Cfg.ChannelID, r, bank, start, c.Cfg.T.RowsPerRef)
		c.refBank[r] = (bank + 1) % c.Cfg.Geo.Banks
		if c.refBank[r] == 0 {
			c.refRow[r] = (start + c.Cfg.T.RowsPerRef) % c.Cfg.Geo.RowsPerBank
		}
		c.refOwed[r]--
		return true
	}
	// Close open rows of this bank only; the rest keep serving.
	c.osBuf = c.Dev.OpenSubarraysAppend(c.osBuf[:0])
	for _, os := range c.osBuf {
		if os.Rank != r || os.Bank != bank {
			continue
		}
		a := dram.Addr{Channel: c.Cfg.ChannelID, Rank: os.Rank, Bank: os.Bank, Row: os.Row}
		if c.Dev.CanPRE(a, now) {
			c.preAndNotify(a, now)
			return true
		}
	}
	return false
}

// hasRankDemand reports whether any queued request targets the rank.
func (c *Controller) hasRankDemand(r int) bool {
	for _, q := range [][]*Request{c.readQ, c.writeQ} {
		for _, req := range q {
			if req.Addr.Rank == r {
				return true
			}
		}
	}
	return false
}

// hasBankDemand reports whether any queued request targets the bank.
func (c *Controller) hasBankDemand(r, bank int) bool {
	for _, q := range [][]*Request{c.readQ, c.writeQ} {
		for _, req := range q {
			if req.Addr.Rank == r && req.Addr.Bank == bank {
				return true
			}
		}
	}
	return false
}

// serviceMechCopy executes mechanism-initiated ACT-c operations (RowHammer
// victim duplication, dynamic CROW-ref remaps).
func (c *Controller) serviceMechCopy(now int64) bool {
	if c.pendingCopy == nil && c.copySrc != nil {
		if op, found := c.copySrc.NextCopy(c.Cfg.ChannelID); found {
			c.pendingCopy = &copyState{op: op}
		}
	}
	pc := c.pendingCopy
	if pc == nil {
		return false
	}
	a := pc.op.Addr
	if !pc.active {
		if open := c.Dev.OpenRow(a); open >= 0 {
			if c.Dev.CanPRE(dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: open}, now) {
				c.preAndNotify(dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: open}, now)
				return true
			}
			return false
		}
		kind := pc.op.Kind
		if kind == dram.ActSingle && pc.op.Timing == (dram.ActTimings{}) {
			pc.op.Timing = c.Cfg.T.Base()
		}
		if c.Dev.CanACT(a, now, kind) {
			copyRow := pc.op.CopyRow
			if kind == dram.ActSingle {
				copyRow = -1
			}
			c.Dev.ACT(a, now, kind, pc.op.Timing, copyRow)
			pc.active = true
			pc.actAt = now
			c.Stats.MechCopies++
			if c.Obs != nil {
				c.sched(SchedMechCopy, a, now)
			}
			return true
		}
		return false
	}
	// Copy activation in progress: precharge once fully restored. If the
	// demand scheduler stole the bank meanwhile (a row conflict can legally
	// precharge the copy row between tRAS and full restoration, notifying
	// the mechanism through its own preAndNotify), the copy is already as
	// done as it will get — waiting on CanPRE for a closed bank would wedge
	// the mechanism-copy pipeline for the rest of the run.
	if c.Dev.OpenRow(a) != a.Row {
		c.pendingCopy = nil
		return false
	}
	if now >= pc.actAt+int64(pc.op.Timing.RASFull) && c.Dev.CanPRE(a, now) {
		c.preAndNotify(a, now)
		c.pendingCopy = nil
		return true
	}
	return false
}

// preAndNotify precharges the subarray holding a.Row and informs the
// mechanism of the restore outcome.
func (c *Controller) preAndNotify(a dram.Addr, now int64) {
	open := c.Dev.OpenRow(a)
	full := c.Dev.PRE(a, now)
	c.Mech.OnPrecharge(a, open, full, now)
	c.hitsServed[c.key(a)] = 0
}

// schedule runs the FR-FCFS-Cap passes over a queue; returns true if a
// command was issued.
func (c *Controller) schedule(q *[]*Request, now int64) bool {
	if c.scheduleHits(q, now) {
		return true
	}
	return c.scheduleOldest(q, now)
}

// scheduleHits serves the oldest row-buffer hit under the per-activation
// cap, demand requests before prefetches.
func (c *Controller) scheduleHits(q *[]*Request, now int64) bool {
	for pass := 0; pass < 2; pass++ {
		for i, r := range *q {
			if (r.IsPref) != (pass == 1) {
				continue
			}
			if c.Dev.OpenRow(r.Addr) != r.Addr.Row {
				continue
			}
			k := c.key(r.Addr)
			if c.effCap > 0 && c.hitsServed[k] >= c.effCap {
				continue
			}
			if c.issueColumn(r, now) {
				c.hitsServed[k]++
				c.Stats.RowHits++
				if c.Obs != nil {
					c.sched(SchedRowHit, r.Addr, now)
				}
				*q = append((*q)[:i], (*q)[i+1:]...)
				if r.Type == Write {
					c.PutRequest(r) // reads recycle at completion-event pop
				}
				return true
			}
		}
	}
	return false
}

// scheduleOldest progresses the oldest request that can make progress:
// precharge a conflicting row, or activate a closed one.
func (c *Controller) scheduleOldest(q *[]*Request, now int64) bool {
	for pass := 0; pass < 2; pass++ {
		for _, r := range *q {
			if (r.IsPref) != (pass == 1) {
				continue
			}
			if c.progress(r, now) {
				return true
			}
		}
	}
	return false
}

// scheduleInOrder is the FCFS pass: only the oldest queued request may
// issue. A row hit at the head is served in place; anything else progresses
// through the usual precharge/activate path.
func (c *Controller) scheduleInOrder(q *[]*Request, now int64) bool {
	if len(*q) == 0 {
		return false
	}
	r := (*q)[0]
	if c.Dev.OpenRow(r.Addr) == r.Addr.Row {
		if c.issueColumn(r, now) {
			c.hitsServed[c.key(r.Addr)]++
			c.Stats.RowHits++
			if c.Obs != nil {
				c.sched(SchedRowHit, r.Addr, now)
			}
			*q = append((*q)[:0], (*q)[1:]...)
			if r.Type == Write {
				c.PutRequest(r) // reads recycle at completion-event pop
			}
			return true
		}
		return false
	}
	return c.progress(r, now)
}

// progress tries to issue the next command the request needs; returns true
// if a command was issued.
func (c *Controller) progress(r *Request, now int64) bool {
	a := r.Addr
	open := c.Dev.OpenRow(a)
	if open == a.Row {
		// Row open but over the hit cap: FR-FCFS-Cap treats it as a
		// conflict and recycles the row [81].
		if c.effCap > 0 && c.hitsServed[c.key(a)] >= c.effCap && c.Dev.CanPRE(a, now) {
			c.Stats.RowConflicts++
			if c.Obs != nil {
				c.sched(SchedRowConflict, a, now)
			}
			c.preAndNotify(a, now)
			return true
		}
		return false
	}
	if open >= 0 {
		// Conflict in this subarray.
		victim := dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: open}
		if c.Dev.CanPRE(victim, now) {
			c.Stats.RowConflicts++
			if c.Obs != nil {
				c.sched(SchedRowConflict, victim, now)
			}
			c.preAndNotify(victim, now)
			return true
		}
		return false
	}
	if !c.Cfg.MASA {
		// Another subarray of the bank may hold the bank's one open row.
		if row := c.Dev.OpenRowInBank(a.Rank, a.Bank); row >= 0 {
			victim := dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: row}
			if c.Dev.CanPRE(victim, now) {
				c.Stats.RowConflicts++
				if c.Obs != nil {
					c.sched(SchedRowConflict, victim, now)
				}
				c.preAndNotify(victim, now)
				return true
			}
			return false
		}
	}
	// Subarray (and bank, if required) closed: activate.
	d := c.Mech.PlanActivate(a, now)
	if d.RestoreFirst {
		ra := dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: d.RestoreRow}
		if c.Dev.CanACT(ra, now, dram.ActTwo) {
			c.Dev.ACT(ra, now, dram.ActTwo, d.RestoreTiming, d.RestoreCopyRow)
			c.Mech.OnActivate(ra, core.ActDecision{
				Kind: dram.ActTwo, CopyRow: d.RestoreCopyRow,
				Timing: d.RestoreTiming, RestoreFirst: true,
				RestoreCopyRow: d.RestoreCopyRow,
			}, now)
			c.hitsServed[c.key(ra)] = 0
			return true
		}
		return false
	}
	if c.Dev.CanACT(a, now, d.Kind) {
		copyRow := d.CopyRow
		if d.Kind == dram.ActSingle {
			// Single-row activations carry no copy-row operand. (TL-DRAM
			// reuses CopyRow to name its near row, but that is mechanism
			// bookkeeping, not part of the command.)
			copyRow = -1
		}
		c.Dev.ACT(a, now, d.Kind, d.Timing, copyRow)
		c.Mech.OnActivate(a, d, now)
		c.hitsServed[c.key(a)] = 0
		c.bankLast[c.bankKey(a)] = now
		c.Stats.RowMisses++
		if c.Obs != nil {
			c.sched(SchedRowMiss, a, now)
		}
		return true
	}
	return false
}

// issueColumn issues the RD or WR for a request whose row is open.
func (c *Controller) issueColumn(r *Request, now int64) bool {
	if r.Type == Read {
		if !c.Dev.CanRD(r.Addr, now) {
			return false
		}
		c.bankLast[c.bankKey(r.Addr)] = now
		done := c.Dev.RD(r.Addr, now)
		c.Stats.ReadsServed++
		c.Stats.ReadLatencySum += done - r.Arrive
		if !r.IsPref {
			c.ReadLatency.Add(float64(done - r.Arrive))
		}
		c.events.push(event{at: done, req: r})
		return true
	}
	if !c.Dev.CanWR(r.Addr, now) {
		return false
	}
	c.bankLast[c.bankKey(r.Addr)] = now
	c.Dev.WR(r.Addr, now)
	c.Stats.WritesServed++
	return true
}

// serviceTimeout closes rows idle past the timeout with no queued requests
// (the Table 2 timeout-based row-buffer policy; the timeout/closed row
// policies invoke it). Returns true if it issued a command.
func (c *Controller) serviceTimeout(now int64) bool {
	// Cheap reject: no open subarray can have timed out yet.
	if c.Dev.EarliestTimeoutPRE(c.timeout) > now {
		return false
	}
	c.osBuf = c.Dev.OpenSubarraysAppend(c.osBuf[:0])
	for _, os := range c.osBuf {
		if now-os.LastUse < c.timeout {
			continue
		}
		a := dram.Addr{Channel: c.Cfg.ChannelID, Rank: os.Rank, Bank: os.Bank, Row: os.Row}
		if c.hasRequestFor(a) {
			continue
		}
		if c.Dev.CanPRE(a, now) {
			c.Stats.TimeoutCloses++
			if c.Obs != nil {
				c.sched(SchedTimeoutClose, a, now)
			}
			c.preAndNotify(a, now)
			return true
		}
	}
	return false
}

// serviceScrub uses fully idle cycles (empty queues, no refresh pending) to
// fully restore partially-restored CROW pairs with an ACT-t held to full
// tRAS, so that later evictions rarely stall on a restore pass. The opened
// pair is closed by the normal timeout/conflict policies, at which point it
// reports fully restored. Over a complete retention window the refresh sweep
// performs the same cleanup; scrubbing brings the steady state forward.
func (c *Controller) serviceScrub(now int64) {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 || c.pendingCopy != nil {
		return
	}
	// Only scrub after a short quiet period, at a bounded rate, and only
	// into banks that have been cold for a while, so a bursty stream does
	// not find its hot banks held by restore passes.
	const quiet = 40
	if now-c.lastEnqueue < quiet || now-c.lastScrub < quiet {
		return
	}
	for r := range c.refOwed {
		if c.refOwed[r] > 0 {
			return
		}
	}
	if c.scrubSrc == nil {
		return
	}
	op, found := c.scrubSrc.NextScrub(c.Cfg.ChannelID)
	if !found {
		return
	}
	const bankCold = 250
	if now-c.bankLast[c.bankKey(op.Addr)] < bankCold || !c.Dev.CanACT(op.Addr, now, op.Kind) {
		c.scrubSrc.RequeueScrub(c.Cfg.ChannelID, op.Addr)
		return
	}
	c.Dev.ACT(op.Addr, now, op.Kind, op.Timing, op.CopyRow)
	c.hitsServed[c.key(op.Addr)] = 0
	c.lastScrub = now
	c.Stats.Scrubs++
	if c.Obs != nil {
		c.sched(SchedScrub, op.Addr, now)
	}
}

func (c *Controller) hasRequestFor(a dram.Addr) bool {
	for _, r := range c.readQ {
		if r.Addr.Row == a.Row && r.Addr.Bank == a.Bank && r.Addr.Rank == a.Rank {
			return true
		}
	}
	for _, r := range c.writeQ {
		if r.Addr.Row == a.Row && r.Addr.Bank == a.Bank && r.Addr.Rank == a.Rank {
			return true
		}
	}
	return false
}
