package ctrl

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

// BenchmarkReadStream measures the controller's full per-read cost — pooled
// request, enqueue, FR-FCFS scheduling, completion event — on a row-hit
// heavy stream. Run with -benchmem: the steady state must not allocate.
func BenchmarkReadStream(b *testing.B) {
	c, _ := newBenchBaseline()
	now := int64(0)
	done := 0
	cb := func(int64, uint64) { done++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.GetRequest()
		r.Type = Read
		r.Addr = dram.Addr{Row: 5, Col: i % 128}
		r.Done = cb
		for !c.EnqueueRead(r, now) {
			now++
			c.Tick(now)
		}
		now++
		c.Tick(now)
	}
	b.StopTimer()
	for target := b.N; done < target && now < int64(1<<40); {
		now++
		c.Tick(now)
	}
	if done < b.N {
		b.Fatalf("only %d/%d reads completed", done, b.N)
	}
}

// BenchmarkIdleTick measures a tick with empty queues and an open row: the
// refresh bookkeeping plus the timeout-policy check that the cached
// EarliestTimeoutPRE query keeps off the subarray-scan path.
func BenchmarkIdleTick(b *testing.B) {
	c, _ := newBenchBaseline()
	done := false
	r := c.GetRequest()
	r.Type = Read
	r.Addr = dram.Addr{Row: 5}
	r.Done = func(int64, uint64) { done = true }
	c.EnqueueRead(r, 0)
	now := int64(0)
	for !done {
		now++
		c.Tick(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		c.Tick(now)
	}
}

// BenchmarkNextEvent measures the idle-skip query the run loop issues
// whenever every core stalls.
func BenchmarkNextEvent(b *testing.B) {
	c, _ := newBenchBaseline()
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.NextEvent(int64(i))
	}
	_ = sink
}

func newBenchBaseline() (*Controller, dram.Timing) {
	g := dram.Std(0)
	t := dram.LPDDR4(dram.Density8Gb, 64, g)
	return New(DefaultConfig(0, g, t), &core.Baseline{T: t}), t
}
