package ctrl

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

func TestPerBankRefreshCadence(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.PerBankRefresh = true
	c := New(cfg, &core.Baseline{T: tm})
	// Per-bank interval is tREFI/banks, so over 2*tREFI we expect ~16
	// REFpb commands (vs 2 REFab).
	run(t, c, int64(tm.REFI)*2+100, nil)
	if c.Stats.Refreshes < 14 || c.Stats.Refreshes > 17 {
		t.Errorf("REFpb count = %d, want ~16 over 2 tREFI", c.Stats.Refreshes)
	}
	if c.Dev.Stats.REF != 0 {
		t.Error("per-bank mode must not issue REFab")
	}
	if c.Dev.Stats.REFpb != c.Stats.Refreshes {
		t.Error("all refreshes must be REFpb")
	}
}

func TestPerBankRefreshKeepsOtherBanksAccessible(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := dram.NewChannel(g, tm)
	// REFpb to bank 0 blocks bank 0 but not bank 1.
	c.REFpb(0, 0, 0)
	if c.CanACT(dram.Addr{Bank: 0, Row: 1}, 10, dram.ActSingle) {
		t.Error("refreshing bank must be blocked during tRFCpb")
	}
	if !c.CanACT(dram.Addr{Bank: 1, Row: 1}, 10, dram.ActSingle) {
		t.Error("other banks must stay accessible during REFpb")
	}
	if !c.CanACT(dram.Addr{Bank: 0, Row: 1}, int64(tm.RFCpb), dram.ActSingle) {
		t.Error("bank must reopen after tRFCpb")
	}
	if tm.RFCpb >= tm.RFC {
		t.Error("tRFCpb must be shorter than tRFCab")
	}
}

func TestRefreshPostponement(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.MaxPostpone = 8
	c := New(cfg, &core.Baseline{T: tm})

	// Keep demand queued continuously across several tREFI: refreshes
	// must be deferred (not issued mid-stream).
	done := 0
	refill := func(now int64) {
		for i := 0; i < 8; i++ {
			c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 5, Col: (done + i) % 128}, Done: func(int64, uint64) { done++ }}, now)
		}
	}
	refill(0)
	horizon := int64(tm.REFI)*3 + 100
	for now := int64(1); now <= horizon; now++ {
		c.Tick(now)
		if rq, _ := c.QueueLens(); rq < 2 {
			refill(now)
		}
	}
	deferredAt3 := c.Stats.Refreshes
	if deferredAt3 > 1 {
		t.Errorf("with postponement and queued demand, at most 1 refresh expected by 3 tREFI, got %d", deferredAt3)
	}
	// Stop demand: the controller must catch up on owed refreshes.
	for now := horizon + 1; now <= horizon+int64(tm.REFI); now++ {
		c.Tick(now)
	}
	if c.Stats.Refreshes < 3 {
		t.Errorf("owed refreshes must be caught up once idle, got %d", c.Stats.Refreshes)
	}
}

func TestPostponementLimitForcesRefresh(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	cfg := DefaultConfig(0, g, tm)
	cfg.MaxPostpone = 2
	c := New(cfg, &core.Baseline{T: tm})
	done := 0
	refill := func(now int64) {
		for i := 0; i < 8; i++ {
			c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 5, Col: (done + i) % 128}, Done: func(int64, uint64) { done++ }}, now)
		}
	}
	refill(0)
	// After 4 intervals with constant demand, owed exceeds the limit of
	// 2, so at least one forced refresh must have been issued.
	horizon := int64(tm.REFI)*4 + 200
	for now := int64(1); now <= horizon; now++ {
		c.Tick(now)
		if rq, _ := c.QueueLens(); rq < 2 {
			refill(now)
		}
	}
	if c.Stats.Refreshes == 0 {
		t.Error("exceeding the postponement limit must force a refresh")
	}
}

func TestPerBankRefreshWithCROWRef(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	mech := core.NewCROW(1, g, tm)
	mech.Cache = true
	cfg := DefaultConfig(0, g, tm)
	cfg.PerBankRefresh = true
	c := New(cfg, mech)
	k := dram.NewChecker(c.Dev)
	done := 0
	c.EnqueueRead(&Request{Type: Read, Addr: dram.Addr{Row: 1}, Done: func(int64, uint64) { done++ }}, 0)
	run(t, c, int64(tm.REFI)+2000, func() bool {
		return done == 1 && c.Stats.Refreshes >= 4
	})
	for _, v := range k.Violations {
		t.Errorf("checker: %s", v)
	}
}
