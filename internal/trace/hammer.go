package trace

// hammerGen emits the classic RowHammer attacker access streams. An
// "aggressor region" is the address range [row*HammerRowBytes,
// (row+1)*HammerRowBytes): under the rowstripe translation (sim.Config
// Translation "rowstripe") it covers exactly the DRAM rows with index `row`
// across every channel and bank, so hammering a region hammers that row
// index system-wide. The generator round-robins one access per region and
// walks the line offset forward after each full sweep, which (a) makes every
// access to a given bank alternate aggressor rows — a guaranteed row
// conflict, i.e. one activation per access, the cache-flush hammering loop —
// and (b) cycles a footprint of len(regions)*HammerRowBytes bytes, far past
// the small LLCs the hammer experiments configure, so the LLC absorbs
// nothing.
//
// Patterns:
//
//	single     — one aggressor row plus a far decoy row (the decoy forces
//	             the row conflicts; only the aggressor's neighbours take
//	             meaningful dose).
//	double     — two aggressors at row distance 2; the row between is
//	             double-dosed.
//	many       — HammerRows aggressors at distance 2 (many-sided, TRR
//	             evasion shape); every row between is double-dosed.
//	halfdouble — a far aggressor pair plus the near row between hammered
//	             at 1/8 rate (the half-double escalation shape: the far
//	             row's ±2 blast combines with the near row's ±1 dose).
type hammerGen struct {
	spec    Spec
	rowB    uint64
	lines   uint64 // lines per region
	regions []int  // aggressor row indices, visited round-robin
	near    int    // half-double near aggressor (-1 = none)
	cur     int
	col     uint64
	tick    uint64
}

// hammerBaseRow keeps aggressors away from row 0 so every victim (down to
// row base-2) exists and the refresh sweep's wrap point is not special.
const hammerBaseRow = 8

func newHammerGen(spec Spec) Generator {
	g := &hammerGen{spec: spec, rowB: spec.HammerRowBytes, near: -1}
	if g.rowB == 0 {
		g.rowB = 256 * 1024
	}
	g.lines = g.rowB / lineBytes
	rows := spec.HammerRows
	if rows <= 0 {
		rows = 8
	}
	base := hammerBaseRow
	switch spec.Hammer {
	case "single":
		g.regions = []int{base, base + 64}
	case "double":
		g.regions = []int{base, base + 2}
	case "many":
		for i := 0; i < rows; i++ {
			g.regions = append(g.regions, base+2*i)
		}
	case "halfdouble":
		g.regions = []int{base, base + 64}
		g.near = base + 1
	default:
		panic("trace: unknown hammer pattern " + spec.Hammer)
	}
	return g
}

// Next implements Generator.
func (g *hammerGen) Next() Record {
	g.tick++
	row := 0
	if g.near >= 0 && g.tick%8 == 0 {
		row = g.near
	} else {
		row = g.regions[g.cur]
		g.cur++
		if g.cur == len(g.regions) {
			g.cur = 0
			g.col++
		}
	}
	off := (g.col % g.lines) * lineBytes
	return Record{Bubbles: g.spec.Bubbles, Addr: uint64(row)*g.rowB + off}
}
