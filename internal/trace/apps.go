package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// Class is the memory-intensity class of Section 7 (by LLC MPKI).
type Class int

// Memory-intensity classes: L (< 1 MPKI), M (1–10), H (>= 10).
const (
	Low Class = iota
	Medium
	High
)

func (c Class) String() string { return [...]string{"L", "M", "H"}[c] }

// App is a named synthetic application calibrated to the memory behaviour
// (intensity class and locality style) of one of the paper's benchmark
// programs. The traces are synthetic stand-ins — see DESIGN.md.
type App struct {
	Name  string
	Class Class
	Spec  Spec
	// Synthetic marks the paper's two synthetic probes (random,
	// streaming), which are excluded from average-performance figures.
	Synthetic bool
}

// Gen builds this app's deterministic generator; the seed offsets let
// multi-programmed mixes reuse an app with decorrelated streams.
func (a App) Gen(seed int64) Generator { return New(a.Spec, seed) }

const (
	kib = 1024
	mib = 1024 * 1024
)

// Apps is the synthetic workload suite, one entry per application in the
// paper's evaluation (Figure 8), plus the two synthetic probes.
var Apps = []App{
	// High intensity: working sets far beyond the 8 MiB LLC.
	{Name: "mcf", Class: High, Spec: Spec{Pattern: Zipf, WSS: 512 * mib, Bubbles: 12, WriteFrac: 0.25, Burst: 2, ZipfS: 1.5, Revisit: 0.55}},
	{Name: "lbm", Class: High, Spec: Spec{Pattern: Seq, WSS: 256 * mib, Bubbles: 14, WriteFrac: 0.45, Streams: 3}},
	{Name: "libq", Class: High, Spec: Spec{Pattern: Seq, WSS: 64 * mib, Bubbles: 22, WriteFrac: 0.05}},
	{Name: "milc", Class: High, Spec: Spec{Pattern: Zipf, WSS: 384 * mib, Bubbles: 28, WriteFrac: 0.30, Burst: 4, ZipfS: 1.4, Revisit: 0.35}},
	{Name: "soplex", Class: High, Spec: Spec{Pattern: Zipf, WSS: 256 * mib, Bubbles: 30, WriteFrac: 0.20, Burst: 3, ZipfS: 1.5, Revisit: 0.3}},
	{Name: "gems", Class: High, Spec: Spec{Pattern: Tile, WSS: 512 * mib, Bubbles: 32, WriteFrac: 0.30}},
	{Name: "leslie3d", Class: High, Spec: Spec{Pattern: Seq, WSS: 128 * mib, Bubbles: 40, WriteFrac: 0.35, Streams: 4}},
	{Name: "omnetpp", Class: High, Spec: Spec{Pattern: Rand, WSS: 192 * mib, Bubbles: 45, WriteFrac: 0.30, Burst: 2, Revisit: 0.6}},
	{Name: "bwaves", Class: High, Spec: Spec{Pattern: Tile, WSS: 384 * mib, Bubbles: 48, WriteFrac: 0.25}},
	{Name: "tpcc64", Class: High, Spec: Spec{Pattern: Zipf, WSS: 1024 * mib, Bubbles: 55, WriteFrac: 0.35, Burst: 3, ZipfS: 1.6, Revisit: 0.4}},
	{Name: "tpch2", Class: High, Spec: Spec{Pattern: Zipf, WSS: 512 * mib, Bubbles: 60, WriteFrac: 0.10, Burst: 6, ZipfS: 1.3, Revisit: 0.3}},
	{Name: "stream-copy", Class: High, Spec: Spec{Pattern: Seq, WSS: 128 * mib, Bubbles: 16, WriteFrac: 0.50, Streams: 2}},
	{Name: "stream-add", Class: High, Spec: Spec{Pattern: Seq, WSS: 192 * mib, Bubbles: 18, WriteFrac: 0.33, Streams: 3}},
	{Name: "stream-triad", Class: High, Spec: Spec{Pattern: Seq, WSS: 192 * mib, Bubbles: 17, WriteFrac: 0.33, Streams: 3}},

	// Medium intensity: partial LLC fits or moderate rates.
	{Name: "zeusmp", Class: Medium, Spec: Spec{Pattern: Tile, WSS: 48 * mib, Bubbles: 90, WriteFrac: 0.30, TileBytes: 8 * kib}},
	{Name: "cactus", Class: Medium, Spec: Spec{Pattern: Zipf, WSS: 64 * mib, Bubbles: 110, WriteFrac: 0.30, Burst: 4, ZipfS: 2.0}},
	{Name: "astar", Class: Medium, Spec: Spec{Pattern: Rand, WSS: 32 * mib, Bubbles: 120, WriteFrac: 0.25, Burst: 2, Revisit: 0.4}},
	{Name: "sphinx3", Class: Medium, Spec: Spec{Pattern: Zipf, WSS: 96 * mib, Bubbles: 80, WriteFrac: 0.10, Burst: 5, ZipfS: 1.5, Revisit: 0.3}},
	{Name: "h264-dec", Class: Medium, Spec: Spec{Pattern: Seq, WSS: 24 * mib, Bubbles: 140, WriteFrac: 0.40}},
	{Name: "wrf", Class: Medium, Spec: Spec{Pattern: Tile, WSS: 56 * mib, Bubbles: 100, WriteFrac: 0.35, TileBytes: 16 * kib}},
	{Name: "tpch6", Class: Medium, Spec: Spec{Pattern: Zipf, WSS: 128 * mib, Bubbles: 130, WriteFrac: 0.15, Burst: 8, ZipfS: 1.6}},

	// Low intensity: working sets that (mostly) fit in the LLC.
	{Name: "gcc", Class: Low, Spec: Spec{Pattern: Tile, WSS: 512 * kib, Bubbles: 160, WriteFrac: 0.30, TileBytes: 16 * kib}},
	{Name: "h264-enc", Class: Low, Spec: Spec{Pattern: Tile, WSS: 256 * kib, Bubbles: 220, WriteFrac: 0.40, TileBytes: 8 * kib}},
	{Name: "jp2-dec", Class: Low, Spec: Spec{Pattern: Tile, WSS: 256 * kib, Bubbles: 200, WriteFrac: 0.35, TileBytes: 8 * kib}},
	{Name: "jp2-enc", Class: Low, Spec: Spec{Pattern: Tile, WSS: 256 * kib, Bubbles: 240, WriteFrac: 0.40, TileBytes: 8 * kib}},
	{Name: "povray", Class: Low, Spec: Spec{Pattern: Tile, WSS: 128 * kib, Bubbles: 260, WriteFrac: 0.20, TileBytes: 8 * kib}},

	// Synthetic probes (Section 7), excluded from averages.
	{Name: "random", Class: High, Synthetic: true, Spec: Spec{Pattern: Rand, WSS: 512 * mib, Bubbles: 10, WriteFrac: 0.20, Burst: 1}},
	{Name: "streaming", Class: High, Synthetic: true, Spec: Spec{Pattern: Seq, WSS: 512 * mib, Bubbles: 120, WriteFrac: 0.20}},
	// hammer is a RowHammer attack probe (Section 4.3): back-to-back
	// activations concentrated on a tiny set of rows, with no cacheable
	// locality (every access is a fresh line of a random hot row).
	{Name: "hammer", Class: High, Synthetic: true, Spec: Spec{Pattern: Rand, WSS: 256 * kib, Bubbles: 0, WriteFrac: 0, Burst: 1}},
	// RowHammer attacker shapes (see hammer.go): row-adjacency-aware
	// aggressor streams for the attack/defense lab, meant to run under the
	// rowstripe translation so virtual row adjacency survives to DRAM. WSS
	// is the footprint bound (highest aggressor region + 1) × 256 KiB
	// region: single/halfdouble reach the base+64 decoy row, double stops
	// at base+2, many at base+2×7.
	{Name: "hammer-single", Class: High, Synthetic: true, Spec: Spec{Hammer: "single", WSS: 73 * 256 * kib}},
	{Name: "hammer-double", Class: High, Synthetic: true, Spec: Spec{Hammer: "double", WSS: 11 * 256 * kib}},
	{Name: "hammer-many", Class: High, Synthetic: true, Spec: Spec{Hammer: "many", WSS: 23 * 256 * kib}},
	{Name: "hammer-halfdouble", Class: High, Synthetic: true, Spec: Spec{Hammer: "halfdouble", WSS: 73 * 256 * kib}},
}

// ByName returns the named app.
func ByName(name string) (App, error) {
	for _, a := range Apps {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("trace: unknown app %q", name)
}

// ByClass returns the non-synthetic apps of a class.
func ByClass(c Class) []App {
	var out []App
	for _, a := range Apps {
		if a.Class == c && !a.Synthetic {
			out = append(out, a)
		}
	}
	return out
}

// Names returns the names of the given apps.
func Names(apps []App) []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// Mix is one multi-programmed workload: one app per core.
type Mix struct {
	Name string
	Apps []App
}

// Groups are the eight four-core workload-mix groups of Section 7, each a
// combination of memory-intensity classes.
var Groups = [][]Class{
	{Low, Low, Low, Low},
	{Low, Low, Low, High},
	{Low, Low, High, High},
	{Low, High, High, High},
	{High, High, High, High},
	{Medium, Medium, Medium, Medium},
	{Low, Medium, Medium, High},
	{Medium, Medium, High, High},
}

// GroupName renders a class combination, e.g. "LLHH".
func GroupName(classes []Class) string {
	s := ""
	for _, c := range classes {
		s += c.String()
	}
	return s
}

// MakeMixes draws n random mixes for the class combination, seeded.
func MakeMixes(classes []Class, n int, seed int64) []Mix {
	rng := rand.New(rand.NewSource(seed))
	mixes := make([]Mix, n)
	for i := range mixes {
		apps := make([]App, len(classes))
		for j, c := range classes {
			pool := ByClass(c)
			apps[j] = pool[rng.Intn(len(pool))]
		}
		sort.Slice(apps, func(a, b int) bool { return apps[a].Name < apps[b].Name })
		mixes[i] = Mix{Name: fmt.Sprintf("%s-%d", GroupName(classes), i), Apps: apps}
	}
	return mixes
}
