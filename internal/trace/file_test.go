package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteParseRoundTrip(t *testing.T) {
	app, _ := ByName("mcf")
	var buf bytes.Buffer
	if err := Write(&buf, app.Gen(3), 200); err != nil {
		t.Fatal(err)
	}
	recs, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("parsed %d records, want 200", len(recs))
	}
	// Re-generate and compare.
	g := app.Gen(3)
	for i, r := range recs {
		if want := g.Next(); r != want {
			t.Fatalf("record %d: %+v != %+v", i, r, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	in := "# comment\n3 0x1000\n0 0xff W\n\n12 0xABC\n"
	recs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Bubbles: 3, Addr: 0x1000},
		{Bubbles: 0, Addr: 0xff, Write: true},
		{Bubbles: 12, Addr: 0xabc},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records", len(recs))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, recs[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"x 0x10",         // bad bubbles
		"-1 0x10",        // negative bubbles
		"1 zz",           // bad address
		"1 0x10 X",       // bad marker
		"1 0x10 W extra", // too many fields
		"justone",        // too few fields
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) must fail", in)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	p := &Replay{Records: []Record{{Bubbles: 1, Addr: 10}, {Bubbles: 2, Addr: 20}}}
	seq := []uint64{10, 20, 10, 20, 10}
	for i, want := range seq {
		if got := p.Next().Addr; got != want {
			t.Fatalf("step %d: addr %d, want %d", i, got, want)
		}
	}
}
