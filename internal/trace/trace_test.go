package trace

import (
	"testing"
	"testing/quick"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, app := range Apps {
		a := app.Gen(42)
		b := app.Gen(42)
		for i := 0; i < 100; i++ {
			ra, rb := a.Next(), b.Next()
			if ra != rb {
				t.Fatalf("%s: same seed diverged at record %d", app.Name, i)
			}
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	app, _ := ByName("mcf")
	a, b := app.Gen(1), app.Gen(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/100 identical addresses", same)
	}
}

// TestAddressesWithinWSS: every generated address stays inside the working
// set, for all apps — property over the suite.
func TestAddressesWithinWSS(t *testing.T) {
	for _, app := range Apps {
		g := app.Gen(7)
		for i := 0; i < 2000; i++ {
			r := g.Next()
			if r.Addr >= uint64(app.Spec.WSS) {
				t.Fatalf("%s: address %#x outside WSS %#x", app.Name, r.Addr, app.Spec.WSS)
			}
			if r.Bubbles != app.Spec.Bubbles {
				t.Fatalf("%s: bubbles %d != spec %d", app.Name, r.Bubbles, app.Spec.Bubbles)
			}
		}
	}
}

func TestSeqPatternIsSequential(t *testing.T) {
	g := New(Spec{Pattern: Seq, WSS: 1 << 20, Bubbles: 1}, 1)
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		cur := g.Next().Addr
		if cur != prev+64 && cur != 0 {
			t.Fatalf("sequential stream broken: %#x -> %#x", prev, cur)
		}
		prev = cur
	}
}

func TestTilePatternReuses(t *testing.T) {
	g := New(Spec{Pattern: Tile, WSS: 1 << 20, Bubbles: 1, TileBytes: 4096}, 1)
	seen := map[uint64]int{}
	// Two sweeps of a 64-line tile.
	for i := 0; i < 128; i++ {
		seen[g.Next().Addr]++
	}
	if len(seen) != 64 {
		t.Errorf("two sweeps must touch exactly 64 unique lines, got %d", len(seen))
	}
	for a, n := range seen {
		if n != 2 {
			t.Errorf("line %#x visited %d times, want 2", a, n)
		}
	}
}

func TestZipfPatternSkew(t *testing.T) {
	g := New(Spec{Pattern: Zipf, WSS: 64 << 20, Bubbles: 1, Burst: 1, ZipfS: 1.5}, 1)
	regions := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		regions[g.Next().Addr/8192]++
	}
	max := 0
	for _, c := range regions {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Errorf("hottest region holds %.1f%% of accesses; want a skewed distribution", 100*float64(max)/n)
	}
	if len(regions) < 10 {
		t.Errorf("only %d regions touched; want a long tail", len(regions))
	}
}

func TestWriteFraction(t *testing.T) {
	g := New(Spec{Pattern: Rand, WSS: 1 << 20, Bubbles: 1, WriteFrac: 0.3}, 1)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("write fraction = %.3f, want ~0.30", frac)
	}
}

func TestByNameAndClasses(t *testing.T) {
	if _, err := ByName("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown app must error")
	}
	for _, c := range []Class{Low, Medium, High} {
		apps := ByClass(c)
		if len(apps) < 3 {
			t.Errorf("class %v has only %d apps", c, len(apps))
		}
		for _, a := range apps {
			if a.Synthetic {
				t.Errorf("ByClass must exclude synthetic probes, got %s", a.Name)
			}
		}
	}
}

func TestGroupsAndMixes(t *testing.T) {
	if len(Groups) != 8 {
		t.Fatalf("want 8 workload groups (Section 7), got %d", len(Groups))
	}
	names := map[string]bool{}
	for _, g := range Groups {
		names[GroupName(g)] = true
	}
	for _, want := range []string{"LLLL", "LLHH", "HHHH"} {
		if !names[want] {
			t.Errorf("paper-referenced group %s missing", want)
		}
	}
	mixes := MakeMixes(Groups[2], 5, 1)
	if len(mixes) != 5 {
		t.Fatalf("want 5 mixes")
	}
	for _, m := range mixes {
		if len(m.Apps) != 4 {
			t.Fatalf("four-core mixes must have 4 apps")
		}
		classes := map[Class]int{}
		for _, a := range m.Apps {
			classes[a.Class]++
		}
		if classes[Low] != 2 || classes[High] != 2 {
			t.Errorf("LLHH mix has wrong classes: %v", classes)
		}
	}
	// Determinism.
	again := MakeMixes(Groups[2], 5, 1)
	for i := range mixes {
		if mixes[i].Name != again[i].Name || mixes[i].Apps[0].Name != again[i].Apps[0].Name {
			t.Error("MakeMixes must be deterministic per seed")
		}
	}
}

// TestRecordTotalInstructions: each record contributes Bubbles+1
// instructions; the generator never emits negative bubbles.
func TestRecordTotalInstructions(t *testing.T) {
	f := func(pRaw uint8, seed int64) bool {
		spec := Spec{Pattern: Pattern(pRaw % 4), WSS: 1 << 20, Bubbles: int(pRaw % 7)}
		g := New(spec, seed)
		for i := 0; i < 50; i++ {
			if g.Next().Bubbles != spec.Bubbles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
