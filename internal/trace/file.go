package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk trace format is one record per line, Ramulator-style:
//
//	<bubbles> <hex-address> [W]
//
// where the optional trailing W marks a store.

// Write emits n records from gen.
func Write(w io.Writer, gen Generator, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		r := gen.Next()
		if r.Write {
			if _, err := fmt.Fprintf(bw, "%d 0x%x W\n", r.Bubbles, r.Addr); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d 0x%x\n", r.Bubbles, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads every record from r.
func Parse(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("trace: line %d: want 'bubbles addr [W]', got %q", line, text)
		}
		bubbles, err := strconv.Atoi(fields[0])
		if err != nil || bubbles < 0 {
			return nil, fmt.Errorf("trace: line %d: bad bubble count %q", line, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", line, fields[1])
		}
		rec := Record{Bubbles: bubbles, Addr: addr}
		if len(fields) == 3 {
			if fields[2] != "W" {
				return nil, fmt.Errorf("trace: line %d: bad marker %q", line, fields[2])
			}
			rec.Write = true
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return recs, nil
}

// Replay is a Generator that loops over a fixed record slice (e.g. a parsed
// trace file), repeating from the start when exhausted — matching how the
// simulator replays finite traces until the instruction budget is met.
type Replay struct {
	Records []Record
	pos     int
}

// Next implements Generator.
func (p *Replay) Next() Record {
	r := p.Records[p.pos]
	p.pos++
	if p.pos == len(p.Records) {
		p.pos = 0
	}
	return r
}
