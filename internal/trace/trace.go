// Package trace provides the workload side of the simulator: synthetic
// trace generators standing in for the paper's Pin-collected SPEC CPU2006 /
// TPC / STREAM / MediaBench traces (see DESIGN.md for the substitution
// rationale), plus the multi-programmed mix construction of Section 7.
//
// A trace is a stream of records, each representing a number of non-memory
// instructions ("bubbles") followed by one memory instruction, the format
// used by Ramulator's trace-driven CPU model.
package trace

import "math/rand"

// Record is one trace entry: Bubbles non-memory instructions followed by a
// single memory access (total Bubbles+1 instructions).
type Record struct {
	Bubbles int
	Addr    uint64 // virtual byte address
	Write   bool
}

// Generator produces an infinite instruction trace.
type Generator interface {
	Next() Record
}

// Pattern selects the access pattern of a synthetic application.
type Pattern int

// Access patterns.
const (
	// Seq streams sequentially through the working set (STREAM-like:
	// maximal row-buffer locality).
	Seq Pattern = iota
	// Rand touches uniform-random lines (pointer chasing: minimal
	// locality and minimal row reuse).
	Rand
	// Zipf visits row-sized regions with a Zipf popularity distribution,
	// bursting a few lines per visit. Hot rows are re-activated again and
	// again — the in-DRAM locality CROW-cache exploits.
	Zipf
	// Tile sweeps a small tile repeatedly before advancing (blocked
	// kernels: high reuse at both cache and row granularity).
	Tile
)

// Spec parameterizes a synthetic application.
type Spec struct {
	Pattern Pattern
	// WSS is the working-set size in bytes; relative to the 8 MiB LLC it
	// determines the miss rate and therefore MPKI.
	WSS int64
	// Bubbles is the number of non-memory instructions per memory
	// instruction; with the miss rate it sets memory intensity.
	Bubbles int
	// WriteFrac is the fraction of memory accesses that are stores.
	WriteFrac float64
	// Burst is the number of consecutive lines accessed per region visit
	// (row-buffer locality), for Zipf and Rand patterns.
	Burst int
	// ZipfS is the Zipf skew (>1) for the Zipf pattern.
	ZipfS float64
	// TileBytes is the tile size for the Tile pattern (default 64 KiB).
	TileBytes uint64
	// Streams is the number of concurrent sequential streams for the Seq
	// pattern (default 1). Interleaved streams conflict in DRAM banks,
	// closing and re-opening each other's rows — the reuse CROW-cache
	// exploits in streaming kernels with several operand arrays.
	Streams int
	// Revisit is the probability that a Zipf or Rand region visit
	// returns to one of the last few regions instead of drawing a fresh
	// one (short-term row reuse of pointer-chasing codes).
	Revisit float64
	// Hammer selects a RowHammer attacker pattern ("single", "double",
	// "many", "halfdouble"); when set it overrides Pattern (see
	// hammer.go).
	Hammer string
	// HammerRowBytes is the address stride between successive DRAM row
	// indices under the rowstripe translation (default 256 KiB, the
	// default 4-channel layout's row span). Attackers aim at row-adjacent
	// addresses, so they need the stride, not the full mapping.
	HammerRowBytes uint64
	// HammerRows is the aggressor count for the many-sided pattern
	// (default 8).
	HammerRows int
}

type generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf

	pos       uint64 // sequential cursor
	regionPos uint64 // current region base
	burstLeft int

	streams   []uint64 // per-stream cursors for Seq
	curStream int

	recent []uint64 // recently visited region bases (for Revisit)

	tilePos, tileBase uint64
	tileSweeps        int
}

const (
	lineBytes   = 64
	regionBytes = 8 * 1024 // one DRAM row
	tileRepeats = 8
)

// New builds a deterministic generator for the spec with the given seed.
func New(spec Spec, seed int64) Generator {
	if spec.Hammer != "" {
		return newHammerGen(spec)
	}
	g := &generator{spec: spec, rng: rand.New(rand.NewSource(seed))}
	if spec.Burst <= 0 {
		g.spec.Burst = 1
	}
	if spec.TileBytes == 0 {
		g.spec.TileBytes = 64 * 1024
	}
	if spec.Streams <= 0 {
		g.spec.Streams = 1
	}
	if spec.Pattern == Seq {
		g.streams = make([]uint64, g.spec.Streams)
		for i := range g.streams {
			g.streams[i] = uint64(i) * uint64(spec.WSS) / uint64(g.spec.Streams)
		}
		if spec.Burst <= 1 {
			g.spec.Burst = 16
		}
	}
	if spec.Pattern == Zipf {
		regions := uint64(spec.WSS / regionBytes)
		if regions < 2 {
			regions = 2
		}
		s := spec.ZipfS
		if s <= 1 {
			s = 1.2
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, regions-1)
	}
	return g
}

func (g *generator) Next() Record {
	r := Record{
		Bubbles: g.spec.Bubbles,
		Write:   g.rng.Float64() < g.spec.WriteFrac,
	}
	wss := uint64(g.spec.WSS)
	switch g.spec.Pattern {
	case Seq:
		if g.burstLeft == 0 {
			g.curStream = (g.curStream + 1) % g.spec.Streams
			g.burstLeft = g.spec.Burst
		}
		r.Addr = g.streams[g.curStream] % wss
		g.streams[g.curStream] += lineBytes
		g.burstLeft--
	case Rand:
		if g.burstLeft == 0 {
			g.regionPos = g.pickRegion(func() uint64 {
				return (g.rng.Uint64() % (wss / regionBytes)) * regionBytes
			})
			g.burstLeft = g.spec.Burst
		}
		off := uint64(g.rng.Intn(regionBytes/lineBytes)) * lineBytes
		r.Addr = (g.regionPos + off) % wss
		g.burstLeft--
	case Zipf:
		if g.burstLeft == 0 {
			g.regionPos = g.pickRegion(func() uint64 {
				// Spread hot regions across the address space so
				// they land in different banks and subarrays.
				region := g.zipf.Uint64()
				return (region * 0x9E3779B97F4A7C15) % (wss / regionBytes) * regionBytes
			})
			g.burstLeft = g.spec.Burst
		}
		off := uint64(g.rng.Intn(regionBytes/lineBytes)) * lineBytes
		r.Addr = g.regionPos + off
		g.burstLeft--
	case Tile:
		r.Addr = g.tileBase + g.tilePos
		g.tilePos += lineBytes
		if g.tilePos >= g.spec.TileBytes {
			g.tilePos = 0
			g.tileSweeps++
			if g.tileSweeps >= tileRepeats {
				g.tileSweeps = 0
				g.tileBase = (g.tileBase + g.spec.TileBytes) % wss
			}
		}
	}
	return r
}

// pickRegion returns either one of the recently visited regions (with
// probability Revisit) or a fresh draw, and records the choice.
func (g *generator) pickRegion(fresh func() uint64) uint64 {
	const depth = 16
	var region uint64
	if len(g.recent) > 0 && g.rng.Float64() < g.spec.Revisit {
		region = g.recent[g.rng.Intn(len(g.recent))]
	} else {
		region = fresh()
	}
	g.recent = append(g.recent, region)
	if len(g.recent) > depth {
		g.recent = g.recent[1:]
	}
	return region
}
