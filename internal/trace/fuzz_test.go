package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse asserts the trace-file parser never panics on arbitrary input,
// and that any input it accepts survives a serialize/re-parse round trip
// unchanged (Write emits the canonical spelling of what Parse accepted).
func FuzzParse(f *testing.F) {
	f.Add("3 0x1a2b\n0 0xff W\n")
	f.Add("# comment line\n\n1 0x0\n")
	f.Add("12 dead W\n")
	f.Add("not a trace")
	f.Add("1 0x10 W\n2 0x20\n# trailing comment\n")
	f.Add("0 0xffffffffffffffff\n")
	f.Fuzz(func(t *testing.T, data string) {
		recs, err := Parse(strings.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(recs) == 0 {
			t.Fatal("Parse returned no records and no error")
		}
		var buf bytes.Buffer
		if err := Write(&buf, &Replay{Records: recs}, len(recs)); err != nil {
			t.Fatalf("Write of parsed records failed: %v", err)
		}
		again, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v\ntrace:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("round trip changed records:\nfirst:  %v\nsecond: %v", recs, again)
		}
	})
}
