// Package prefetch implements a stride prefetcher in the spirit of the
// reference prediction table (RPT) design the paper evaluates with
// CROW-cache in Section 8.1.5. Lacking program counters in the trace
// format, the table is indexed by (core, physical page) and trains on the
// LLC demand-miss stream; a stable intra-page stride triggers prefetches of
// the next lines within the page.
package prefetch

// Config parameterizes the prefetcher.
type Config struct {
	TableEntries int // reference prediction table size per core
	Degree       int // prefetches issued per trigger
}

// DefaultConfig matches a small RPT: 64 entries per core, degree 2.
func DefaultConfig() Config { return Config{TableEntries: 64, Degree: 2} }

type entry struct {
	page      uint64
	lastLine  int64
	stride    int64
	confident bool
	valid     bool
	lastUse   int64
}

// Prefetcher holds per-core reference prediction tables.
type Prefetcher struct {
	Cfg    Config
	tables [][]entry
	clock  int64
	buf    []uint64 // reused OnMiss result buffer

	Trained int64 // accesses that updated an existing entry
	Fired   int64 // prefetch addresses produced
}

// New builds tables for `cores` cores.
func New(cfg Config, cores int) *Prefetcher {
	p := &Prefetcher{Cfg: cfg, tables: make([][]entry, cores)}
	for i := range p.tables {
		p.tables[i] = make([]entry, cfg.TableEntries)
	}
	return p
}

const (
	lineBits = 6
	pageBits = 12
)

// OnMiss trains on a demand miss and returns the physical addresses to
// prefetch (possibly none). Predictions never cross the 4 KiB page, since
// frame randomization destroys inter-page contiguity. The returned slice is
// reused by the next OnMiss call; consume it before training again.
func (p *Prefetcher) OnMiss(core int, physAddr uint64) []uint64 {
	p.clock++
	page := physAddr >> pageBits
	lineInPage := int64(physAddr>>lineBits) & ((1 << (pageBits - lineBits)) - 1)

	t := p.tables[core]
	var e *entry
	victim := 0
	for i := range t {
		if t[i].valid && t[i].page == page {
			e = &t[i]
			break
		}
		if !t[i].valid || t[i].lastUse < t[victim].lastUse {
			victim = i
		}
	}
	if e == nil {
		t[victim] = entry{page: page, lastLine: lineInPage, valid: true, lastUse: p.clock}
		return nil
	}
	p.Trained++
	e.lastUse = p.clock
	stride := lineInPage - e.lastLine
	if stride == 0 {
		return nil
	}
	if e.stride == stride {
		e.confident = true
	} else {
		e.confident = false
		e.stride = stride
		e.lastLine = lineInPage
		return nil
	}
	e.lastLine = lineInPage

	out := p.buf[:0]
	base := physAddr &^ ((1 << lineBits) - 1)
	for k := 1; k <= p.Cfg.Degree; k++ {
		next := lineInPage + stride*int64(k)
		if next < 0 || next >= 1<<(pageBits-lineBits) {
			break
		}
		out = append(out, base+uint64(stride*int64(k))<<lineBits)
	}
	p.buf = out
	p.Fired += int64(len(out))
	return out
}
