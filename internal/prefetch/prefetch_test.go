package prefetch

import "testing"

func TestStrideDetection(t *testing.T) {
	p := New(DefaultConfig(), 1)
	base := uint64(0x10000)
	// First two misses train; the third (confirming the stride) fires.
	if out := p.OnMiss(0, base); out != nil {
		t.Errorf("first touch must not prefetch: %v", out)
	}
	if out := p.OnMiss(0, base+64); out != nil {
		t.Errorf("stride not yet confident: %v", out)
	}
	out := p.OnMiss(0, base+128)
	if len(out) != 2 {
		t.Fatalf("confident stride must fire degree-2: %v", out)
	}
	if out[0] != base+192 || out[1] != base+256 {
		t.Errorf("predictions = %#x,%#x, want %#x,%#x", out[0], out[1], base+192, base+256)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig(), 1)
	base := uint64(0x20000 + 512)
	p.OnMiss(0, base)
	p.OnMiss(0, base-64)
	out := p.OnMiss(0, base-128)
	if len(out) == 0 || out[0] != base-192 {
		t.Errorf("negative strides must predict downwards: %v", out)
	}
}

func TestNoCrossPagePrediction(t *testing.T) {
	p := New(DefaultConfig(), 1)
	// Train at the end of a page: the trigger lands on line 62 of 64,
	// leaving exactly one in-page line to prefetch.
	base := uint64(0x30000) + 4096 - 256
	p.OnMiss(0, base)
	p.OnMiss(0, base+64)
	out := p.OnMiss(0, base+128)
	for _, a := range out {
		if a>>12 != base>>12 {
			t.Errorf("prediction %#x crosses the page of %#x", a, base)
		}
	}
	if len(out) != 1 {
		t.Errorf("only one in-page line remains, got %d predictions", len(out))
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New(DefaultConfig(), 1)
	base := uint64(0x40000)
	p.OnMiss(0, base)
	p.OnMiss(0, base+64)
	p.OnMiss(0, base+128) // fires
	if out := p.OnMiss(0, base+128+256); out != nil {
		t.Errorf("changed stride must retrain, got %v", out)
	}
}

func TestPerCoreIsolation(t *testing.T) {
	p := New(DefaultConfig(), 2)
	base := uint64(0x50000)
	p.OnMiss(0, base)
	p.OnMiss(0, base+64)
	// Core 1's accesses to the same page must not inherit core 0's
	// training.
	if out := p.OnMiss(1, base+128); out != nil {
		t.Errorf("core 1 must have its own table: %v", out)
	}
}

func TestTableEviction(t *testing.T) {
	cfg := Config{TableEntries: 2, Degree: 1}
	p := New(cfg, 1)
	p.OnMiss(0, 0x1000_0000)
	p.OnMiss(0, 0x2000_0000)
	p.OnMiss(0, 0x3000_0000) // evicts the LRU entry (page 1)
	// Returning to page 1: entry is gone, so retrain from scratch.
	if out := p.OnMiss(0, 0x1000_0000+64); out != nil {
		t.Errorf("evicted entry must retrain: %v", out)
	}
}

func TestZeroStrideIgnored(t *testing.T) {
	p := New(DefaultConfig(), 1)
	p.OnMiss(0, 0x6000)
	if out := p.OnMiss(0, 0x6000); out != nil {
		t.Errorf("repeated same-line misses must not fire: %v", out)
	}
}
