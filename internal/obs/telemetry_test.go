package obs

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
)

// TestTelemetrySnapshotResets: counters report interval deltas — a second
// snapshot after no further activity is empty — while queue-depth gauges
// carry the last observed value forward.
func TestTelemetrySnapshotResets(t *testing.T) {
	g, tm := testShape()
	m := NewTelemetry(1, g, tm)

	m.Command(cmdEvent(10, dram.CmdACT, 2))
	m.Command(cmdEvent(40, dram.CmdRD, 2))
	m.Command(cmdEvent(90, dram.CmdPRE, 2))
	m.Sched(ctrl.SchedEvent{Kind: ctrl.SchedRowMiss, Cycle: 10,
		Addr: dram.Addr{Bank: 2}, ReadQ: 7, WriteQ: 3})
	m.Table(core.TableEvent{Kind: core.TableMiss, Cycle: 10, Addr: dram.Addr{Bank: 2}})

	s1 := m.Snapshot(100)
	if s1.StartCycle != 0 || s1.Cycle != 100 {
		t.Fatalf("interval = [%d,%d), want [0,100)", s1.StartCycle, s1.Cycle)
	}
	b := bankAt(t, s1, 2)
	if b.ACT != 1 || b.RD != 1 || b.PRE != 1 || b.RowMisses != 1 || b.CrowMisses != 1 {
		t.Fatalf("bank2 counters = %+v", b.BankCounters)
	}
	if b.ActiveCycles != 80 {
		t.Fatalf("ActiveCycles = %d, want 80 (open cycles 10..90)", b.ActiveCycles)
	}
	if c := s1.Channels[0]; c.Sched != 1 || c.ReadQ != 7 || c.WriteQ != 3 {
		t.Fatalf("channel counters = %+v", c)
	}

	// No activity: the next interval's counters are zero, but the queue
	// gauges still read their last values.
	s2 := m.Snapshot(200)
	if s2.StartCycle != 100 || s2.Cycle != 200 {
		t.Fatalf("interval 2 = [%d,%d), want [100,200)", s2.StartCycle, s2.Cycle)
	}
	if !s2.Empty() {
		t.Fatalf("second snapshot not empty: %+v", s2)
	}
	if b2 := bankAt(t, s2, 2); b2.BankCounters != (BankCounters{}) {
		t.Fatalf("bank2 counters not reset: %+v", b2.BankCounters)
	}
	if c := s2.Channels[0]; c.Sched != 0 || c.ReadQ != 7 || c.WriteQ != 3 {
		t.Fatalf("gauges did not persist / counters did not reset: %+v", c)
	}
}

// TestTelemetryOpenRowSpansBoundary: a row open across a snapshot boundary
// has its residency split — credited up to the cut in the first interval and
// from the cut onward in the second — with no cycles double-counted or lost.
func TestTelemetryOpenRowSpansBoundary(t *testing.T) {
	g, tm := testShape()
	m := NewTelemetry(1, g, tm)

	m.Command(cmdEvent(50, dram.CmdACT, 0)) // stays open past the cut at 100
	s1 := m.Snapshot(100)
	if got := bankAt(t, s1, 0).ActiveCycles; got != 50 {
		t.Fatalf("interval 1 ActiveCycles = %d, want 50 (cycles 50..100)", got)
	}

	m.Command(cmdEvent(130, dram.CmdPRE, 0))
	s2 := m.Snapshot(200)
	if got := bankAt(t, s2, 0).ActiveCycles; got != 30 {
		t.Fatalf("interval 2 ActiveCycles = %d, want 30 (cycles 100..130)", got)
	}
}

// TestTelemetryRefreshAttribution: all-bank REF counts on the channel,
// REFpb on its bank with tRFCpb of blocked cycles.
func TestTelemetryRefreshAttribution(t *testing.T) {
	g, tm := testShape()
	m := NewTelemetry(2, g, tm)

	ref := dram.CmdEvent{Cmd: dram.CmdREF, Cycle: 10, CopyRow: -1}
	ref.Addr = dram.Addr{Channel: 1}
	m.Command(ref)
	refpb := dram.CmdEvent{Cmd: dram.CmdREFpb, Cycle: 20, CopyRow: -1}
	refpb.Addr = dram.Addr{Channel: 1, Bank: 5}
	m.Command(refpb)

	s := m.Snapshot(100)
	if s.Channels[0].REF != 0 || s.Channels[1].REF != 1 {
		t.Fatalf("channel REF = %d/%d, want 0/1", s.Channels[0].REF, s.Channels[1].REF)
	}
	for _, b := range s.Banks {
		if b.Channel == 1 && b.Bank == 5 {
			if b.REF != 1 || b.RefreshCycles != int64(tm.RFCpb) {
				t.Fatalf("bank refresh = %d refs, %d cycles, want 1 ref, %d cycles",
					b.REF, b.RefreshCycles, tm.RFCpb)
			}
			return
		}
	}
	t.Fatal("channel 1 bank 5 not in snapshot")
}

// TestTelemetryActVariants: ACT-t and ACT-c are attributed separately from
// conventional ACTs, and CROW hits/misses land on their bank.
func TestTelemetryActVariants(t *testing.T) {
	g, tm := testShape()
	m := NewTelemetry(1, g, tm)

	m.Command(cmdEvent(10, dram.CmdACTt, 1))
	m.Command(cmdEvent(20, dram.CmdACTc, 1))
	m.Command(cmdEvent(30, dram.CmdACT, 1))
	m.Table(core.TableEvent{Kind: core.TableHit, Cycle: 10, Addr: dram.Addr{Bank: 1}})

	b := bankAt(t, m.Snapshot(100), 1)
	if b.ACT != 1 || b.ActT != 1 || b.ActC != 1 {
		t.Fatalf("ACT/ActT/ActC = %d/%d/%d, want 1/1/1", b.ACT, b.ActT, b.ActC)
	}
	if b.CrowHits != 1 {
		t.Fatalf("CrowHits = %d, want 1", b.CrowHits)
	}
}

func bankAt(t *testing.T, s IntervalSnapshot, bank int) BankSnapshot {
	t.Helper()
	for _, b := range s.Banks {
		if b.Channel == 0 && b.Rank == 0 && b.Bank == bank {
			return b
		}
	}
	t.Fatalf("bank %d not present in snapshot", bank)
	return BankSnapshot{}
}
