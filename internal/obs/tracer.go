package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
)

// EventClass distinguishes the three event streams a Tracer merges.
type EventClass uint8

// Event classes.
const (
	ClassCmd   EventClass = iota // a DRAM command on the bus
	ClassSched                   // a controller scheduling decision
	ClassTable                   // a CROW-table state change
)

// Event is one traced occurrence, fixed-size so the ring buffer records
// without allocating. Fields beyond Class/Cycle/Ch are class-specific.
type Event struct {
	Class EventClass
	Cycle int64
	Ch    int32

	// ClassCmd: the command, its address, and its duration in DRAM cycles
	// (derived from the timing plan, for trace-slice rendering).
	Cmd  dram.Command
	Rank int32
	Bank int32
	Row  int32
	Dur  int32

	// ClassSched / ClassTable: the decision or table-event kind, plus the
	// class-specific operands.
	Sub    uint8 // ctrl.SchedKind or core.TableEventKind
	Way    int32 // ClassTable: copy-row way, -1 if none
	ReadQ  int32 // ClassSched: read-queue depth at decision time
	WriteQ int32 // ClassSched: write-queue depth at decision time
}

// Tracer records cycle-attributed events into a bounded ring buffer:
// recording never allocates and never grows, the oldest events are
// overwritten once the ring is full, and the overwrite count is reported so
// a truncated export is never mistaken for a complete one. It is not
// goroutine-safe on its own; a serial simulation drives it from its single
// loop goroutine, and a sharded one brackets each parallel DRAM tick with
// StageWindow/DrainStaged so per-channel goroutines write only their own
// staging slice while the ring itself stays single-writer.
type Tracer struct {
	buf   []Event
	next  int   // ring write index
	full  bool  // the ring has wrapped at least once
	total int64 // events ever recorded

	// staging routes records into per-channel buffers during a parallel
	// tick window; DrainStaged merges them into the ring in channel order,
	// which is the order the serial loop would have recorded them (all
	// in-window events come from the channels' scheduling phase).
	staging bool
	stage   [][]Event

	geo dram.Geometry
	t   dram.Timing
}

// NewTracer returns a tracer with the given ring capacity for a system with
// the given shape. Capacity must be positive.
func NewTracer(capacity, channels int, geo dram.Geometry, t dram.Timing) *Tracer {
	if capacity <= 0 {
		panic("obs: tracer capacity must be positive")
	}
	return &Tracer{
		buf:   make([]Event, 0, capacity),
		stage: make([][]Event, channels),
		geo:   geo, t: t,
	}
}

// record appends one event, overwriting the oldest once the ring is full.
// Inside a staged window the event parks in its channel's staging buffer
// instead (each channel's goroutine owns exactly its own slice).
func (t *Tracer) record(e Event) {
	if t.staging {
		t.stage[e.Ch] = append(t.stage[e.Ch], e)
		return
	}
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.full = true
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// StageWindow toggles per-channel staging around one parallel DRAM tick.
// The caller must guarantee the window's records come from per-channel
// goroutines with a happens-before edge to the matching DrainStaged (the
// shard runner's epoch barriers provide it).
func (t *Tracer) StageWindow(on bool) { t.staging = on }

// DrainStaged merges the window's staged events into the ring in channel
// order and ends the window.
func (t *Tracer) DrainStaged() {
	t.staging = false
	for ch, evs := range t.stage {
		for _, e := range evs {
			t.record(e)
		}
		t.stage[ch] = t.stage[ch][:0]
	}
}

// Command records one DRAM command. The event's duration is the command's
// bus/array occupancy from the timing plan: activates hold their slice for
// the plan's tRAS, column commands for latency+burst, PRE for tRP, and
// refreshes for tRFC/tRFCpb.
func (t *Tracer) Command(e dram.CmdEvent) {
	var dur int
	switch {
	case e.Cmd.IsACT():
		dur = e.Plan.RAS
	case e.Cmd == dram.CmdRD:
		dur = t.t.CL + t.t.BL
	case e.Cmd == dram.CmdWR:
		dur = t.t.CWL + t.t.BL
	case e.Cmd == dram.CmdPRE:
		dur = t.t.RP
	case e.Cmd == dram.CmdREF:
		dur = t.t.RFC
	case e.Cmd == dram.CmdREFpb:
		dur = t.t.RFCpb
	}
	t.record(Event{
		Class: ClassCmd, Cycle: e.Cycle, Ch: int32(e.Addr.Channel),
		Cmd: e.Cmd, Rank: int32(e.Addr.Rank), Bank: int32(e.Addr.Bank),
		Row: int32(e.Addr.Row), Dur: int32(dur),
	})
}

// Sched records one controller scheduling decision.
func (t *Tracer) Sched(e ctrl.SchedEvent) {
	t.record(Event{
		Class: ClassSched, Cycle: e.Cycle, Ch: int32(e.Addr.Channel),
		Sub: uint8(e.Kind), Rank: int32(e.Addr.Rank), Bank: int32(e.Addr.Bank),
		Row: int32(e.Addr.Row), ReadQ: int32(e.ReadQ), WriteQ: int32(e.WriteQ),
	})
}

// Table records one CROW-table event.
func (t *Tracer) Table(e core.TableEvent) {
	t.record(Event{
		Class: ClassTable, Cycle: e.Cycle, Ch: int32(e.Addr.Channel),
		Sub: uint8(e.Kind), Rank: int32(e.Addr.Rank), Bank: int32(e.Addr.Bank),
		Row: int32(e.Addr.Row), Way: int32(e.Way),
	})
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int { return len(t.buf) }

// Total returns the number of events ever recorded.
func (t *Tracer) Total() int64 { return t.total }

// Dropped returns how many recorded events were overwritten by newer ones.
func (t *Tracer) Dropped() int64 { return t.total - int64(len(t.buf)) }

// Events calls fn for every retained event in record order (oldest first).
func (t *Tracer) Events(fn func(Event)) {
	if t.full {
		for _, e := range t.buf[t.next:] {
			fn(e)
		}
		for _, e := range t.buf[:t.next] {
			fn(e)
		}
		return
	}
	for _, e := range t.buf {
		fn(e)
	}
}

// usPerCycle converts DRAM command cycles to Chrome trace timestamps
// (microseconds; fractional values are legal and Perfetto keeps the
// sub-microsecond precision) at the bound standard's command clock.
func (t *Tracer) usPerCycle() float64 { return t.t.CycleTime() / 1e3 }

// trackID maps an address to its per-bank track. Track 0 is reserved for
// the scheduler, and each bank of each rank gets its own thread row.
func (t *Tracer) trackID(rank, bank int32) int {
	return 1 + int(rank)*t.geo.Banks + int(bank)
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto and chrome://tracing. Channels render as processes; within each,
// track 0 carries scheduler decisions and CROW-table events as instants,
// and every bank renders as its own thread with commands as duration
// slices. Metadata records the drop count so truncated rings are visible.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"recorded\":%d,\"dropped\":%d},\"traceEvents\":[",
		t.total, t.Dropped())

	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	// Metadata: name every channel process and bank/scheduler thread that
	// appears in the retained events. Collected into sorted sets so the
	// output is byte-deterministic for a given ring.
	type chTrack struct {
		ch  int32
		tid int
	}
	seenCh := map[int32]bool{}
	seenTrack := map[chTrack]string{}
	t.Events(func(e Event) {
		seenCh[e.Ch] = true
		if e.Class == ClassCmd && e.Cmd != dram.CmdREF {
			// All-bank REF has no bank operand and renders on the
			// scheduler track; everything else gets a bank thread.
			k := chTrack{e.Ch, t.trackID(e.Rank, e.Bank)}
			if _, ok := seenTrack[k]; !ok {
				seenTrack[k] = fmt.Sprintf("rank%d bank%d", e.Rank, e.Bank)
			}
		}
	})
	channels := make([]int32, 0, len(seenCh))
	for ch := range seenCh {
		channels = append(channels, ch)
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i] < channels[j] })
	tracks := make([]chTrack, 0, len(seenTrack))
	for k := range seenTrack {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].ch != tracks[j].ch {
			return tracks[i].ch < tracks[j].ch
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, ch := range channels {
		sep()
		fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"channel %d\"}}", ch, ch)
		sep()
		fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"scheduler\"}}", ch)
	}
	for _, k := range tracks {
		sep()
		fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%q}}", k.ch, k.tid, seenTrack[k])
	}

	us := t.usPerCycle()
	t.Events(func(e Event) {
		sep()
		ts := float64(e.Cycle) * us
		switch e.Class {
		case ClassCmd:
			tid := t.trackID(e.Rank, e.Bank)
			if e.Cmd == dram.CmdREF {
				tid = 0
			}
			fmt.Fprintf(bw, "{\"ph\":\"X\",\"name\":%q,\"cat\":\"cmd\",\"pid\":%d,\"tid\":%d,\"ts\":%.4f,\"dur\":%.4f,\"args\":{\"row\":%d,\"cycle\":%d}}",
				e.Cmd.String(), e.Ch, tid, ts, float64(e.Dur)*us, e.Row, e.Cycle)
		case ClassSched:
			fmt.Fprintf(bw, "{\"ph\":\"i\",\"name\":%q,\"cat\":\"sched\",\"pid\":%d,\"tid\":0,\"ts\":%.4f,\"s\":\"t\",\"args\":{\"readq\":%d,\"writeq\":%d,\"bank\":%d,\"row\":%d}}",
				ctrl.SchedKind(e.Sub).String(), e.Ch, ts, e.ReadQ, e.WriteQ, e.Bank, e.Row)
		case ClassTable:
			fmt.Fprintf(bw, "{\"ph\":\"i\",\"name\":%q,\"cat\":\"crow-table\",\"pid\":%d,\"tid\":0,\"ts\":%.4f,\"s\":\"t\",\"args\":{\"way\":%d,\"bank\":%d,\"row\":%d}}",
				"crow-"+core.TableEventKind(e.Sub).String(), e.Ch, ts, e.Way, e.Bank, e.Row)
		}
	})
	bw.WriteString("]}")
	return bw.Flush()
}
