package obs

import (
	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
)

// BankCounters accumulates one bank's activity over a telemetry interval.
// All counters are interval-local: Snapshot reports and resets them.
type BankCounters struct {
	// Command counts on this bank.
	ACT  int64 `json:"act"`
	ActT int64 `json:"actT"` // ACT-t: CROW-table hits activating both rows
	ActC int64 `json:"actC"` // ACT-c: copy activations
	RD   int64 `json:"rd"`
	WR   int64 `json:"wr"`
	PRE  int64 `json:"pre"`
	REF  int64 `json:"ref"` // per-bank REFpb issues on this bank

	// State residency, in DRAM cycles of the interval.
	ActiveCycles  int64 `json:"activeCycles"`  // a row was open
	RefreshCycles int64 `json:"refreshCycles"` // bank blocked by REFpb

	// Scheduler attribution for requests hitting this bank.
	RowHits      int64 `json:"rowHits"`
	RowMisses    int64 `json:"rowMisses"`
	RowConflicts int64 `json:"rowConflicts"`

	// CROW-table attribution.
	CrowHits   int64 `json:"crowHits"`
	CrowMisses int64 `json:"crowMisses"`
}

// ChannelCounters accumulates channel-wide activity over an interval.
type ChannelCounters struct {
	REF    int64 `json:"ref"`    // all-bank REF issues
	ReadQ  int   `json:"readQ"`  // read-queue depth at the last decision
	WriteQ int   `json:"writeQ"` // write-queue depth at the last decision
	Sched  int64 `json:"sched"`  // scheduler decisions observed
}

// BankSnapshot is one bank's interval counters with its coordinates.
type BankSnapshot struct {
	Channel int `json:"channel"`
	Rank    int `json:"rank"`
	Bank    int `json:"bank"`
	BankCounters
}

// IntervalSnapshot is one telemetry interval: every bank's counters plus
// per-channel aggregates, covering DRAM cycles [StartCycle, Cycle).
type IntervalSnapshot struct {
	StartCycle int64             `json:"startCycle"`
	Cycle      int64             `json:"cycle"`
	Banks      []BankSnapshot    `json:"banks"`
	Channels   []ChannelCounters `json:"channels"`
}

// Empty reports whether the interval saw no activity at all.
func (s *IntervalSnapshot) Empty() bool {
	for i := range s.Channels {
		if s.Channels[i].Sched != 0 || s.Channels[i].REF != 0 {
			return false
		}
	}
	for i := range s.Banks {
		b := &s.Banks[i]
		if b.ACT != 0 || b.ActT != 0 || b.ActC != 0 || b.RD != 0 || b.WR != 0 ||
			b.PRE != 0 || b.REF != 0 || b.ActiveCycles != 0 {
			return false
		}
	}
	return true
}

// bankState is the persistent (cross-interval) per-bank state telemetry
// needs to integrate residency: when the bank's open row was activated and
// whether one is open now.
type bankState struct {
	openSince int64
	open      bool
}

// Telemetry collects per-bank and per-channel interval counters from the
// three observer streams. Like the tracer it is single-goroutine.
type Telemetry struct {
	channels int
	geo      dram.Geometry
	t        dram.Timing

	startCycle int64
	banks      []BankCounters
	chans      []ChannelCounters
	state      []bankState
}

// NewTelemetry returns a collector for the given system shape.
func NewTelemetry(channels int, geo dram.Geometry, t dram.Timing) *Telemetry {
	n := channels * geo.Ranks * geo.Banks
	return &Telemetry{
		channels: channels, geo: geo, t: t,
		banks: make([]BankCounters, n),
		chans: make([]ChannelCounters, channels),
		state: make([]bankState, n),
	}
}

func (m *Telemetry) idx(ch, rank, bank int) int {
	return (ch*m.geo.Ranks+rank)*m.geo.Banks + bank
}

// Command folds one DRAM command into the counters.
func (m *Telemetry) Command(e dram.CmdEvent) {
	if e.Cmd == dram.CmdREF {
		m.chans[e.Addr.Channel].REF++
		return
	}
	i := m.idx(e.Addr.Channel, e.Addr.Rank, e.Addr.Bank)
	b := &m.banks[i]
	switch {
	case e.Cmd.IsACT():
		switch e.Cmd {
		case dram.CmdACTt:
			b.ActT++
		case dram.CmdACTc, dram.CmdACTcr:
			b.ActC++
		default:
			b.ACT++
		}
		m.state[i] = bankState{openSince: e.Cycle, open: true}
	case e.Cmd == dram.CmdRD:
		b.RD++
	case e.Cmd == dram.CmdWR:
		b.WR++
	case e.Cmd == dram.CmdPRE:
		b.PRE++
		if st := &m.state[i]; st.open {
			b.ActiveCycles += e.Cycle - st.openSince
			st.open = false
		}
	case e.Cmd == dram.CmdREFpb:
		b.REF++
		b.RefreshCycles += int64(m.t.RFCpb)
	}
}

// Sched folds one scheduler decision into the counters.
func (m *Telemetry) Sched(e ctrl.SchedEvent) {
	c := &m.chans[e.Addr.Channel]
	c.Sched++
	c.ReadQ, c.WriteQ = e.ReadQ, e.WriteQ
	switch e.Kind {
	case ctrl.SchedRowHit, ctrl.SchedRowMiss, ctrl.SchedRowConflict:
		b := &m.banks[m.idx(e.Addr.Channel, e.Addr.Rank, e.Addr.Bank)]
		switch e.Kind {
		case ctrl.SchedRowHit:
			b.RowHits++
		case ctrl.SchedRowMiss:
			b.RowMisses++
		default:
			b.RowConflicts++
		}
	}
}

// Table folds one CROW-table event into the counters.
func (m *Telemetry) Table(e core.TableEvent) {
	b := &m.banks[m.idx(e.Addr.Channel, e.Addr.Rank, e.Addr.Bank)]
	switch e.Kind {
	case core.TableHit:
		b.CrowHits++
	case core.TableMiss:
		b.CrowMisses++
	}
}

// Snapshot cuts the interval at `cycle`: it returns the accumulated
// counters (crediting banks still open with their residency up to the cut)
// and resets them, so each snapshot reports interval deltas, not cumulative
// totals. Queue depths carry the last observed value forward rather than
// resetting — a gauge, not a counter.
func (m *Telemetry) Snapshot(cycle int64) IntervalSnapshot {
	s := IntervalSnapshot{
		StartCycle: m.startCycle,
		Cycle:      cycle,
		Banks:      make([]BankSnapshot, 0, len(m.banks)),
		Channels:   make([]ChannelCounters, len(m.chans)),
	}
	copy(s.Channels, m.chans)
	for ch := 0; ch < m.channels; ch++ {
		for r := 0; r < m.geo.Ranks; r++ {
			for bk := 0; bk < m.geo.Banks; bk++ {
				i := m.idx(ch, r, bk)
				b := m.banks[i]
				if st := &m.state[i]; st.open {
					// Credit the open span so far and restart the
					// residency accounting at the cut.
					b.ActiveCycles += cycle - st.openSince
					st.openSince = cycle
				}
				s.Banks = append(s.Banks, BankSnapshot{
					Channel: ch, Rank: r, Bank: bk, BankCounters: b,
				})
			}
		}
	}
	// Reset counters; gauges (queue depths) persist.
	for i := range m.banks {
		m.banks[i] = BankCounters{}
	}
	for i := range m.chans {
		m.chans[i] = ChannelCounters{
			ReadQ: m.chans[i].ReadQ, WriteQ: m.chans[i].WriteQ,
		}
	}
	m.startCycle = cycle
	return s
}
