package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceIDContextRoundTrip(t *testing.T) {
	if id := TraceFrom(context.Background()); id != "" {
		t.Fatalf("empty context carries trace %q", id)
	}
	id := NewTraceID()
	if len(id) != 16 {
		t.Fatalf("trace ID %q is not 16 hex digits", id)
	}
	ctx := WithTrace(context.Background(), id)
	if got := TraceFrom(ctx); got != id {
		t.Fatalf("TraceFrom = %q, want %q", got, id)
	}
	if a, b := NewTraceID(), NewTraceID(); a == b {
		t.Fatalf("two fresh trace IDs collide: %q", a)
	}
}

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(4)
	for i := 0; i < 6; i++ {
		r.Record(Span{Stage: StageExecute, Name: fmt.Sprintf("run%d", i)})
	}
	if r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 6/2", r.Total(), r.Dropped())
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest first: run2..run5 survive.
	for i, s := range spans {
		if want := fmt.Sprintf("run%d", i+2); s.Name != want {
			t.Errorf("span[%d] = %q, want %q", i, s.Name, want)
		}
	}
}

func TestSpanRecorderDefaultCapacity(t *testing.T) {
	r := NewSpanRecorder(0)
	if r.max != DefaultSpanCapacity {
		t.Fatalf("default capacity = %d, want %d", r.max, DefaultSpanCapacity)
	}
	if r.buf != nil {
		t.Fatal("fresh recorder pre-allocated its ring; it must grow on demand")
	}
	for i := 0; i < DefaultSpanCapacity+2; i++ {
		r.Record(Span{Stage: StageExecute})
	}
	if r.Dropped() != 2 || len(r.Spans()) != DefaultSpanCapacity {
		t.Fatalf("dropped=%d retained=%d after overflowing the default ring", r.Dropped(), len(r.Spans()))
	}
}

// TestWriteJobTrace checks the Chrome trace-event export: valid JSON, one
// named process/thread, every span a duration slice with timestamps relative
// to the earliest start, and drop metadata.
func TestWriteJobTrace(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	id := TraceID("deadbeefcafef00d")
	spans := []Span{
		{Trace: id, Stage: StageQueueWait, Start: base, DurationMS: 1.5},
		{Trace: id, Stage: StageExecute, Name: "crow-cache on mcf", Start: base.Add(2 * time.Millisecond), DurationMS: 40},
	}
	var b bytes.Buffer
	if err := WriteJobTrace(&b, "j000042", id, spans, 3); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData struct {
			Job     string `json:"job"`
			TraceID string `json:"trace_id"`
			Dropped int64  `json:"dropped"`
		} `json:"otherData"`
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, b.String())
	}
	if doc.OtherData.Job != "j000042" || doc.OtherData.TraceID != string(id) || doc.OtherData.Dropped != 3 {
		t.Errorf("metadata %+v mangled", doc.OtherData)
	}
	var slices int
	for _, e := range doc.TraceEvents {
		if e.Pid != JobTracePID {
			t.Errorf("event %q on pid %d, want %d", e.Name, e.Pid, JobTracePID)
		}
		if e.Ph != "X" {
			continue
		}
		slices++
		if e.Args["trace_id"] != string(id) {
			t.Errorf("slice %q lacks trace_id", e.Name)
		}
		switch e.Name {
		case string(StageQueueWait):
			if e.Ts != 0 || e.Dur != 1500 {
				t.Errorf("queue-wait ts=%g dur=%g, want 0/1500", e.Ts, e.Dur)
			}
		case string(StageExecute):
			if e.Ts != 2000 || e.Dur != 40000 {
				t.Errorf("execute ts=%g dur=%g, want 2000/40000", e.Ts, e.Dur)
			}
			if e.Args["run"] != "crow-cache on mcf" {
				t.Errorf("execute slice lost its run label: %v", e.Args)
			}
		}
	}
	if slices != 2 {
		t.Errorf("%d duration slices, want 2", slices)
	}
}

// TestWriteJobTraceEmpty: a job with no spans still exports a valid document.
func TestWriteJobTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJobTrace(&b, "j1", "t1", nil, 0); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not JSON: %v", err)
	}
}

func TestStagesOrder(t *testing.T) {
	want := []Stage{StageHTTP, StageQueueWait, StageMemoLookup, StageStoreRead, StageExecute, StageStoreWrite}
	got := Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	lg, err := NewLogger(&b, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("visible", "trace_id", "abc123")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line leaked at info level")
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "trace_id=abc123") {
		t.Errorf("info line mangled: %q", out)
	}

	b.Reset()
	lg, err = NewLogger(&b, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("loud", "trace_id", "xyz")
	var line map[string]any
	if err := json.Unmarshal(b.Bytes(), &line); err != nil {
		t.Fatalf("json format line is not JSON: %v (%q)", err, b.String())
	}
	if line["msg"] != "loud" || line["trace_id"] != "xyz" {
		t.Errorf("json line mangled: %v", line)
	}

	for _, bad := range [][2]string{{"loud", "text"}, {"info", "xml"}} {
		if _, err := NewLogger(&b, bad[0], bad[1]); err == nil {
			t.Errorf("NewLogger(%q, %q) accepted", bad[0], bad[1])
		}
	}

	NopLogger().Info("dropped") // must not panic
}
