package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
)

func testShape() (dram.Geometry, dram.Timing) {
	g := dram.Std(8)
	return g, dram.LPDDR4(dram.Density8Gb, 64, g)
}

func cmdEvent(cycle int64, cmd dram.Command, bank int) dram.CmdEvent {
	e := dram.CmdEvent{Cmd: cmd, Cycle: cycle, CopyRow: -1}
	e.Addr = dram.Addr{Bank: bank, Row: 7}
	if cmd.IsACT() {
		e.Plan = dram.ActTimings{RCD: 29, RAS: 67, RASFull: 67, WR: 29}
	}
	return e
}

// TestTracerRingOverwrite: the ring keeps exactly the newest `cap` events,
// counts the overwritten ones, and replays in record order.
func TestTracerRingOverwrite(t *testing.T) {
	g, tm := testShape()
	tr := NewTracer(4, 1, g, tm)
	for i := 0; i < 10; i++ {
		tr.Command(cmdEvent(int64(i), dram.CmdRD, 0))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", tr.Total(), tr.Dropped())
	}
	var cycles []int64
	tr.Events(func(e Event) { cycles = append(cycles, e.Cycle) })
	want := []int64{6, 7, 8, 9}
	for i, c := range cycles {
		if c != want[i] {
			t.Fatalf("replay cycles = %v, want %v", cycles, want)
		}
	}
}

// TestTracerNoAllocationSteadyState: once the ring is full, recording must
// not allocate (the tracer sits on the simulation hot path).
func TestTracerNoAllocationSteadyState(t *testing.T) {
	g, tm := testShape()
	tr := NewTracer(64, 1, g, tm)
	ev := cmdEvent(0, dram.CmdRD, 0)
	for i := 0; i < 128; i++ {
		tr.Command(ev)
	}
	avg := testing.AllocsPerRun(1000, func() { tr.Command(ev) })
	if avg != 0 {
		t.Fatalf("Command allocates %.1f per call in steady state, want 0", avg)
	}
}

// chromeTrace mirrors the exported JSON for parsing in tests.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Recorded int64 `json:"recorded"`
		Dropped  int64 `json:"dropped"`
	} `json:"otherData"`
	TraceEvents []struct {
		Ph   string          `json:"ph"`
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteChromeTrace: the export is valid JSON in the trace-event format,
// commands land on per-bank tracks with metadata names, scheduler decisions
// and table events land on track 0 as instants, and timestamps convert at
// 0.625 ns per DRAM cycle.
func TestWriteChromeTrace(t *testing.T) {
	g, tm := testShape()
	tr := NewTracer(100, 1, g, tm)
	tr.Command(cmdEvent(100, dram.CmdACT, 2))
	tr.Command(cmdEvent(160, dram.CmdACTt, 3))
	tr.Sched(ctrl.SchedEvent{Kind: ctrl.SchedRowHit, Cycle: 170,
		Addr: dram.Addr{Bank: 2, Row: 7}, ReadQ: 5, WriteQ: 1})
	tr.Table(core.TableEvent{Kind: core.TableHit, Cycle: 160,
		Addr: dram.Addr{Bank: 3, Row: 7}, Way: 2})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if ct.OtherData.Recorded != 4 || ct.OtherData.Dropped != 0 {
		t.Fatalf("otherData = %+v", ct.OtherData)
	}

	byName := map[string][]int{} // name -> tids
	meta := map[int]string{}     // tid -> thread name
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				var args struct {
					Name string `json:"name"`
				}
				json.Unmarshal(e.Args, &args)
				meta[e.Tid] = args.Name
			}
		case "X", "i":
			byName[e.Name] = append(byName[e.Name], e.Tid)
		}
	}

	actTids, ok := byName["ACT"]
	if !ok {
		t.Fatal("no ACT event in export")
	}
	if want := 1 + 2; actTids[0] != want || meta[actTids[0]] != "rank0 bank2" {
		t.Fatalf("ACT on tid %d (%q), want %d (rank0 bank2)", actTids[0], meta[actTids[0]], want)
	}
	acttTids, ok := byName["ACT-t"]
	if !ok {
		t.Fatal("no ACT-t event in export")
	}
	if want := 1 + 3; acttTids[0] != want || meta[acttTids[0]] != "rank0 bank3" {
		t.Fatalf("ACT-t on tid %d (%q)", acttTids[0], meta[acttTids[0]])
	}
	if tids := byName["row-hit"]; len(tids) != 1 || tids[0] != 0 {
		t.Fatalf("row-hit events on tids %v, want [0]", tids)
	}
	if tids := byName["crow-hit"]; len(tids) != 1 || tids[0] != 0 {
		t.Fatalf("crow-hit events on tids %v, want [0]", tids)
	}
	if meta[0] != "scheduler" {
		t.Fatalf("track 0 named %q, want scheduler", meta[0])
	}

	// Timestamp conversion: cycle 100 at 0.625 ns/cycle = 62.5 ns = 0.0625 us.
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" && e.Name == "ACT" {
			if e.Ts != 0.0625 {
				t.Fatalf("ACT ts = %v us, want 0.0625", e.Ts)
			}
			// The writer rounds timestamps to 4 decimal places.
			wantDur := float64(67) * 0.625 / 1000
			if diff := e.Dur - wantDur; diff > 5e-5 || diff < -5e-5 {
				t.Fatalf("ACT dur = %v us, want %v (tRAS)", e.Dur, wantDur)
			}
		}
	}
}

// TestWriteChromeTraceDeterministic: two exports of the same ring are
// byte-identical (metadata ordering is sorted, not map-ordered).
func TestWriteChromeTraceDeterministic(t *testing.T) {
	g, tm := testShape()
	tr := NewTracer(100, 4, g, tm)
	for ch := 0; ch < 4; ch++ {
		for b := 0; b < 8; b++ {
			e := cmdEvent(int64(ch*100+b), dram.CmdACT, b)
			e.Addr.Channel = ch
			tr.Command(e)
		}
	}
	var a, b bytes.Buffer
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same ring differ")
	}
}

// BenchmarkTracerRecord measures ring-buffer recording throughput in
// steady state (events/sec = 1e9 / ns-per-op); BENCH_obs.json records it.
func BenchmarkTracerRecord(b *testing.B) {
	g, tm := testShape()
	tr := NewTracer(1<<16, 1, g, tm)
	ev := cmdEvent(0, dram.CmdRD, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Command(ev)
	}
}
