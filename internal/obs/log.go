package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger the service layer and cmd/crowserve
// share: level is one of debug/info/warn/error, format one of text/json.
// Every job-correlated line the service emits carries a trace_id attribute,
// so `grep trace_id=<id>` (text) or a jq filter (json) reconstructs one
// job's story from a busy server's log.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (choose debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (choose text, json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// embedded services (tests, benchmarks) that did not configure logging.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
