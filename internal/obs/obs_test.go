package obs

import (
	"context"
	"testing"

	"crowdram/internal/dram"
)

// TestObserversNilSafe: the nil bundle (observability absent) is disabled,
// binds as a no-op, hands out no adapters, and snapshot calls are no-ops —
// so sim never branches on "is obs configured".
func TestObserversNilSafe(t *testing.T) {
	var o *Observers
	if o.Enabled() {
		t.Fatal("nil bundle reports Enabled")
	}
	g, tm := testShape()
	o.Bind(1, g, tm) // must not panic
	if o.Tracer() != nil || o.Telemetry() != nil {
		t.Fatal("nil bundle returned a consumer")
	}
	if o.CommandObserver(0) != nil || o.SchedObserver(0) != nil || o.TableObserver() != nil {
		t.Fatal("nil bundle returned an adapter")
	}
	if o.NextSnapshot() != 0 {
		t.Fatal("nil bundle has a due snapshot")
	}
	o.TakeSnapshot(100) // must not panic
	o.Finish(100)       // must not panic
}

// TestObserversZeroValueDisabled: a configured-but-empty bundle behaves like
// the nil bundle — no adapters attach, so the hot path stays observer-free.
func TestObserversZeroValueDisabled(t *testing.T) {
	o := &Observers{}
	if o.Enabled() {
		t.Fatal("zero bundle reports Enabled")
	}
	g, tm := testShape()
	o.Bind(1, g, tm)
	if o.CommandObserver(0) != nil || o.SchedObserver(0) != nil || o.TableObserver() != nil {
		t.Fatal("zero bundle returned an adapter after Bind")
	}
}

// TestObserversAdapterStampsChannel: REF/REFpb command events carry no
// channel in their address; the per-channel adapter stamps it before the
// consumers see the event.
func TestObserversAdapterStampsChannel(t *testing.T) {
	g, tm := testShape()
	o := &Observers{TraceCapacity: 16}
	o.Bind(4, g, tm)

	co := o.CommandObserver(3)
	if co == nil {
		t.Fatal("no command adapter with tracing enabled")
	}
	ref := dram.CmdEvent{Cmd: dram.CmdREF, Cycle: 10, CopyRow: -1}
	ref.Addr = dram.Addr{Rank: 0} // as dram.Channel emits it: no Channel field
	co.OnCommand(ref)

	var got int32 = -1
	o.Tracer().Events(func(e Event) { got = e.Ch })
	if got != 3 {
		t.Fatalf("traced REF on channel %d, want 3 (adapter stamp)", got)
	}
}

// TestObserversSnapshotSchedule: TakeSnapshot advances the due cycle by
// whole intervals past the cut, so idle-skip jumps across several boundaries
// collapse into one snapshot.
func TestObserversSnapshotSchedule(t *testing.T) {
	g, tm := testShape()
	var snaps []IntervalSnapshot
	o := &Observers{SnapshotEvery: 100, OnSnapshot: func(s IntervalSnapshot) {
		snaps = append(snaps, s)
	}}
	o.Bind(1, g, tm)

	if o.NextSnapshot() != 100 {
		t.Fatalf("first due cycle = %d, want 100", o.NextSnapshot())
	}
	o.TakeSnapshot(100)
	if o.NextSnapshot() != 200 {
		t.Fatalf("after cut at 100, due = %d, want 200", o.NextSnapshot())
	}

	// Idle skip jumped the clock across three boundaries: one cut, and the
	// next due cycle lands on the next boundary after the clock.
	o.TakeSnapshot(470)
	if o.NextSnapshot() != 500 {
		t.Fatalf("after cut at 470, due = %d, want 500", o.NextSnapshot())
	}
	if len(snaps) != 2 {
		t.Fatalf("delivered %d snapshots, want 2", len(snaps))
	}
	if snaps[1].StartCycle != 100 || snaps[1].Cycle != 470 {
		t.Fatalf("collapsed interval = [%d,%d), want [100,470)", snaps[1].StartCycle, snaps[1].Cycle)
	}

	// Finish flushes a trailing partial interval only if it saw activity.
	o.Finish(520)
	if len(snaps) != 2 {
		t.Fatal("Finish delivered an empty interval")
	}
	o.Telemetry().Command(cmdEvent(530, dram.CmdACT, 0))
	o.Finish(550)
	if len(snaps) != 3 || snaps[2].Cycle != 550 {
		t.Fatalf("Finish did not flush the active trailing interval: %d snaps", len(snaps))
	}
}

// TestContextRoundTrip: With/From carry a bundle through a context — the
// out-of-band injection path that keeps observability out of the engine's
// memoization key.
func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context yielded a bundle")
	}
	o := &Observers{TraceCapacity: 1}
	ctx := With(context.Background(), o)
	if From(ctx) != o {
		t.Fatal("With/From did not round-trip the bundle")
	}
}
