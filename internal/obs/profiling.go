package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles starts the Go runtime profilers selected by non-empty paths
// — a CPU profile, a heap profile (written at stop), and a runtime
// execution trace — and returns a stop function that finalizes all of them.
// The stop function is safe to call exactly once; it reports the first
// error encountered. With all paths empty it is a no-op that returns a
// trivial stop, so CLIs can call it unconditionally.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if tracePath != "" {
		traceF, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("exectrace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("exectrace: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil && first == nil {
				first = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil && first == nil {
				first = fmt.Errorf("exectrace: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("memprofile: %w", err)
				}
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = fmt.Errorf("memprofile: %w", err)
				}
				if err := f.Close(); err != nil && first == nil {
					first = fmt.Errorf("memprofile: %w", err)
				}
			}
		}
		return first
	}, nil
}
