// Package obs is the simulation-wide observability layer: a composable
// bundle of observers that attach to the DRAM channels (command stream),
// controllers (scheduler decisions), and CROW mechanism (table events) of
// one simulated system. It hosts two consumers that can run together — and
// together with the correctness oracle, now that dram.Channel fans commands
// out to every attached observer:
//
//   - Tracer: a bounded ring buffer of cycle-attributed events, exported as
//     Chrome/Perfetto trace-event JSON with banks as tracks (tracer.go).
//   - Telemetry: per-bank/per-rank interval counters — state residency,
//     row-buffer and CROW-table hit attribution, queue depths — snapshotted
//     every SnapshotEvery DRAM cycles with reset-on-snapshot semantics
//     (telemetry.go).
//
// An Observers value is configuration until Bind is called with the system
// geometry; sim.New binds it and attaches the per-channel adapters. Because
// crow.Options.Key() is the engine's memoization key, observability must not
// ride in Options: callers inject a bundle out of band via With/From on the
// run context (crow.RunContext extracts it into sim.Config.Obs).
package obs

import (
	"context"

	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
)

// Observers bundles the observability consumers for one simulation run.
// The zero value is a fully disabled bundle; Bind on it is a no-op and all
// adapter constructors return nil, so sim attaches nothing and the hot path
// keeps its zero-observer cost.
//
// A bundle serves exactly one run: Bind captures that run's geometry and the
// counters/ring are not safe for concurrent runs.
type Observers struct {
	// TraceCapacity, when positive, enables the event tracer with a ring
	// buffer of this many slots (oldest events are overwritten).
	TraceCapacity int
	// SnapshotEvery, when positive, enables interval telemetry: counters
	// are snapshotted and reset every SnapshotEvery DRAM cycles.
	SnapshotEvery int64
	// OnSnapshot receives each interval snapshot, in order, on the
	// simulation goroutine. Snapshots are freshly allocated (safe to
	// retain), but the callback blocks the simulation, so keep it cheap —
	// the service forwards them to an append-only event log.
	OnSnapshot func(IntervalSnapshot)

	tracer *Tracer
	telem  *Telemetry

	nextSnap int64
}

// Enabled reports whether the bundle has any consumer configured.
func (o *Observers) Enabled() bool {
	return o != nil && (o.TraceCapacity > 0 || o.SnapshotEvery > 0)
}

// Bind instantiates the configured consumers for a system with the given
// channel count, geometry, and timing. sim.New calls it once per run.
func (o *Observers) Bind(channels int, geo dram.Geometry, t dram.Timing) {
	if o == nil {
		return
	}
	if o.TraceCapacity > 0 {
		o.tracer = NewTracer(o.TraceCapacity, channels, geo, t)
	}
	if o.SnapshotEvery > 0 {
		o.telem = NewTelemetry(channels, geo, t)
		o.nextSnap = o.SnapshotEvery
	}
}

// Tracer returns the bound tracer, or nil when tracing is disabled.
func (o *Observers) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Telemetry returns the bound telemetry collector, or nil when disabled.
func (o *Observers) Telemetry() *Telemetry {
	if o == nil {
		return nil
	}
	return o.telem
}

// cmdAdapter stamps the channel (REF/REFpb events carry no Channel in their
// Addr) and forwards one channel's command stream to the bound consumers.
type cmdAdapter struct {
	o  *Observers
	ch int
}

func (a cmdAdapter) OnCommand(e dram.CmdEvent) {
	e.Addr.Channel = a.ch
	if t := a.o.tracer; t != nil {
		t.Command(e)
	}
	if m := a.o.telem; m != nil {
		m.Command(e)
	}
}

// CommandObserver returns the command-stream adapter for one channel, or
// nil when no consumer wants commands (callers skip Attach on nil).
func (o *Observers) CommandObserver(ch int) dram.CommandObserver {
	if o == nil || (o.tracer == nil && o.telem == nil) {
		return nil
	}
	return cmdAdapter{o: o, ch: ch}
}

// schedAdapter forwards one controller's scheduler decisions.
type schedAdapter struct {
	o  *Observers
	ch int
}

func (a schedAdapter) OnSched(e ctrl.SchedEvent) {
	e.Addr.Channel = a.ch
	if t := a.o.tracer; t != nil {
		t.Sched(e)
	}
	if m := a.o.telem; m != nil {
		m.Sched(e)
	}
}

// SchedObserver returns the scheduler-decision adapter for one channel, or
// nil when no consumer wants decisions.
func (o *Observers) SchedObserver(ch int) ctrl.SchedObserver {
	if o == nil || (o.tracer == nil && o.telem == nil) {
		return nil
	}
	return schedAdapter{o: o, ch: ch}
}

// tableAdapter forwards CROW-table events (already channel-attributed).
type tableAdapter struct{ o *Observers }

func (a tableAdapter) OnTableEvent(e core.TableEvent) {
	if t := a.o.tracer; t != nil {
		t.Table(e)
	}
	if m := a.o.telem; m != nil {
		m.Table(e)
	}
}

// TableObserver returns the CROW-table adapter, or nil when no consumer
// wants table events.
func (o *Observers) TableObserver() core.TableObserver {
	if o == nil || (o.tracer == nil && o.telem == nil) {
		return nil
	}
	return tableAdapter{o: o}
}

// NextSnapshot returns the DRAM cycle of the next due interval snapshot, or
// 0 when interval telemetry is disabled. The simulation loop compares its
// cycle against this instead of calling into obs every tick.
func (o *Observers) NextSnapshot() int64 {
	if o == nil || o.telem == nil {
		return 0
	}
	return o.nextSnap
}

// TakeSnapshot cuts an interval at the given cycle: the telemetry counters
// are snapshotted, delivered to OnSnapshot, and reset. The next due cycle
// advances by whole intervals past `cycle` (idle skipping can jump the clock
// across several boundaries; they collapse into one snapshot covering the
// skipped span, which is exact — skipped cycles issue no commands).
func (o *Observers) TakeSnapshot(cycle int64) {
	if o == nil || o.telem == nil {
		return
	}
	s := o.telem.Snapshot(cycle)
	for o.nextSnap <= cycle {
		o.nextSnap += o.SnapshotEvery
	}
	if o.OnSnapshot != nil {
		o.OnSnapshot(s)
	}
}

// BeginTickWindow opens a parallel-tick staging window: until EndTickWindow,
// tracer records route into per-channel staging buffers so the sharded tick
// loop's channel goroutines never touch the shared ring. Telemetry needs no
// staging — its counters are already indexed by channel, so concurrent
// writers touch disjoint state. Nil-safe and a no-op without a tracer; the
// sharded loop calls the pair once per DRAM tick.
func (o *Observers) BeginTickWindow() {
	if o != nil && o.tracer != nil {
		o.tracer.StageWindow(true)
	}
}

// EndTickWindow closes the staging window, merging staged tracer events into
// the ring in fixed channel order — the order the serial loop records them,
// since every in-window event is emitted by a channel's scheduling phase.
func (o *Observers) EndTickWindow() {
	if o != nil && o.tracer != nil {
		o.tracer.DrainStaged()
	}
}

// Finish flushes a trailing partial interval at the end of a run (no-op when
// telemetry is disabled or the interval is empty).
func (o *Observers) Finish(cycle int64) {
	if o == nil || o.telem == nil {
		return
	}
	if s := o.telem.Snapshot(cycle); !s.Empty() {
		if o.OnSnapshot != nil {
			o.OnSnapshot(s)
		}
	}
}

// ctxKey is the context key for an injected Observers bundle.
type ctxKey struct{}

// With returns a context carrying the bundle. crow.RunContext extracts it
// with From, keeping observability out of crow.Options (whose JSON form is
// the engine's memoization key — two runs differing only in tracing are the
// same simulation and must share a cache entry).
func With(ctx context.Context, o *Observers) context.Context {
	return context.WithValue(ctx, ctxKey{}, o)
}

// From returns the bundle carried by ctx, or nil.
func From(ctx context.Context) *Observers {
	o, _ := ctx.Value(ctxKey{}).(*Observers)
	return o
}
