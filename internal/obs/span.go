package obs

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceID correlates everything one crowserve job touches: every span, every
// structured log line, and the Chrome trace export carry the same ID, so a
// job's path through admission, queueing, the engine, and the store can be
// reconstructed after the fact from telemetry alone. IDs are assigned at
// admission and ride the run context (WithTrace/TraceFrom) — never
// crow.Options, whose JSON form is the engine's memoization key.
type TraceID string

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() TraceID {
	var b [8]byte
	rand.Read(b[:]) // never fails (crypto/rand panics internally if the source does)
	return TraceID(hex.EncodeToString(b[:]))
}

// traceKey is the context key for the trace ID.
type traceKey struct{}

// WithTrace returns a context carrying the trace ID. The service stamps the
// run context with it so every layer below — and, later, every node a
// sharded job fans out to — can correlate its work back to the admitting
// request without the ID entering any memoization key.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the trace ID carried by ctx, or "".
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceKey{}).(TraceID)
	return id
}

// Stage names one segment of a job's path through the service. The six
// stages partition a job's admission-to-done wall time (engine-slot waits and
// scheduling gaps are the slack between them).
type Stage string

// Pipeline stages, in the order a cold job traverses them.
const (
	// StageHTTP covers the admitting HTTP request: body read, spec decode,
	// validation, and queue admission.
	StageHTTP Stage = "http-handle"
	// StageQueueWait covers admission to worker pickup.
	StageQueueWait Stage = "queue-wait"
	// StageMemoLookup covers the engine's in-memory memo consult — for a
	// cache hit, the wait for the memoized or in-flight result.
	StageMemoLookup Stage = "memo-lookup"
	// StageStoreRead covers the persistent store's Get (hit or miss).
	StageStoreRead Stage = "store-read"
	// StageExecute covers the simulation itself.
	StageExecute Stage = "execute"
	// StageStoreWrite covers the write-behind Put after an execution.
	StageStoreWrite Stage = "store-write"
)

// Stages lists every pipeline stage in traversal order (the order the
// /metrics stage histograms render in).
func Stages() []Stage {
	return []Stage{StageHTTP, StageQueueWait, StageMemoLookup, StageStoreRead, StageExecute, StageStoreWrite}
}

// Span is one timed segment of a job's path. Spans are small and fixed-shape
// so the recorder's ring can hold them without per-record allocation.
type Span struct {
	Trace TraceID `json:"trace_id"`
	Stage Stage   `json:"stage"`
	// Name carries the per-run label for engine stages (a job can fan out
	// into many runs; each run contributes its own memo/store/execute
	// spans), empty for job-level stages.
	Name       string    `json:"name,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
}

// SpanRecorder accumulates one job's spans in a bounded ring: recording
// never grows the buffer, the oldest spans are overwritten once it is full,
// and the overwrite count is reported so a truncated trace is never mistaken
// for a complete one. Unlike the Tracer, it is mutex-guarded — spans arrive
// from the HTTP goroutine, the job worker, and the engine's observer
// delivery, which are different goroutines.
type SpanRecorder struct {
	mu    sync.Mutex
	max   int
	buf   []Span
	next  int
	full  bool
	total int64
}

// DefaultSpanCapacity bounds a job's span ring when the service does not
// choose one: enough for a whole-registry experiment job (hundreds of runs,
// a handful of spans each) without letting a pathological job grow without
// bound.
const DefaultSpanCapacity = 4096

// NewSpanRecorder returns a recorder with the given ring capacity
// (<= 0 selects DefaultSpanCapacity). The buffer grows on demand up to the
// capacity — a recorder per job must cost a typical job (a handful of spans)
// a handful of spans, not the worst case.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{max: capacity}
}

// Record appends one span, overwriting the oldest once the ring is full.
func (r *SpanRecorder) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.max {
		r.buf = append(r.buf, s)
		return
	}
	r.full = true
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
}

// Spans returns a copy of the retained spans in record order (oldest first).
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		return append(out, r.buf[:r.next]...)
	}
	return append(out, r.buf...)
}

// Total returns the number of spans ever recorded.
func (r *SpanRecorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many recorded spans were overwritten by newer ones.
func (r *SpanRecorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - int64(len(r.buf))
}

// JobTracePID is the Chrome-trace process ID the job-stage track renders
// under. It sits far above any simulated channel's pid (channels number from
// 0), so a job trace concatenated with its runs' simulator traces loads as
// one Perfetto timeline: job stages as their own track, sim banks below.
const JobTracePID = 1 << 20

// WriteJobTrace writes the spans as Chrome trace-event JSON (the same JSON
// Array Format the simulator's Tracer exports): one process for the job, a
// single "stages" thread, every span a duration slice. Timestamps are
// microseconds relative to the earliest span's start so the trace begins at
// zero like the simulator's. Metadata records the recorder's drop count.
func WriteJobTrace(w io.Writer, jobID string, trace TraceID, spans []Span, dropped int64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"job\":%q,\"trace_id\":%q,\"recorded\":%d,\"dropped\":%d},\"traceEvents\":[",
		jobID, trace, int64(len(spans))+dropped, dropped)
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"crowserve job %s\"}}", JobTracePID, jobID)
	fmt.Fprintf(bw, ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"stages\"}}", JobTracePID)
	var base time.Time
	for _, s := range spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}
	for _, s := range spans {
		ts := float64(s.Start.Sub(base).Nanoseconds()) / 1e3
		fmt.Fprintf(bw, ",{\"ph\":\"X\",\"name\":%q,\"cat\":\"job\",\"pid\":%d,\"tid\":0,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":%q",
			string(s.Stage), JobTracePID, ts, s.DurationMS*1e3, s.Trace)
		if s.Name != "" {
			fmt.Fprintf(bw, ",\"run\":%q", s.Name)
		}
		bw.WriteString("}}")
	}
	bw.WriteString("]}")
	return bw.Flush()
}
