package hammer

import (
	"fmt"
	"sort"
	"sync"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

// MitConfig carries everything a mitigation factory may need.
type MitConfig struct {
	Channels int
	Geo      dram.Geometry
	Seed     int64
	// ParaPerMille is PARA's per-activation neighbour-refresh probability
	// in 1/1000ths (5 = 0.5%).
	ParaPerMille int
	// RefreshScale divides the refresh interval (4 = 4x refresh rate).
	RefreshScale int
	// HammerThreshold is the CROW-hammer remap trigger (activations per
	// refresh window).
	HammerThreshold int
}

// Factory builds a mitigation around an inner mechanism. It may wrap the
// mechanism (PARA, refresh scaling) or configure and return it unchanged
// (CROW-hammer, which lives inside core.CROW).
type Factory func(cfg MitConfig, inner core.Mechanism) (core.Mechanism, error)

var (
	mitMu sync.RWMutex
	mits  = map[string]Factory{}
)

// RegisterMitigation adds a mitigation to the registry; it panics on a
// duplicate name, mirroring the dram.Standard and controller-policy
// registries.
func RegisterMitigation(name string, f Factory) {
	mitMu.Lock()
	defer mitMu.Unlock()
	if _, dup := mits[name]; dup {
		panic(fmt.Sprintf("hammer: duplicate mitigation %q", name))
	}
	mits[name] = f
}

// MitigationNames lists the registered mitigations, sorted.
func MitigationNames() []string {
	mitMu.RLock()
	defer mitMu.RUnlock()
	names := make([]string, 0, len(mits))
	for n := range mits {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckMitigation validates a mitigation name without instantiating it.
func CheckMitigation(name string) error {
	mitMu.RLock()
	_, ok := mits[name]
	mitMu.RUnlock()
	if !ok {
		return fmt.Errorf("unknown mitigation %q (have %v)", name, MitigationNames())
	}
	return nil
}

// NewMitigation instantiates a registered mitigation around inner.
func NewMitigation(name string, cfg MitConfig, inner core.Mechanism) (core.Mechanism, error) {
	mitMu.RLock()
	f, ok := mits[name]
	mitMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown mitigation %q (have %v)", name, MitigationNames())
	}
	return f(cfg, inner)
}

func init() {
	RegisterMitigation("none", func(cfg MitConfig, inner core.Mechanism) (core.Mechanism, error) {
		return inner, nil
	})
	RegisterMitigation("para", func(cfg MitConfig, inner core.Mechanism) (core.Mechanism, error) {
		if cfg.ParaPerMille <= 0 || cfg.ParaPerMille > 1000 {
			return nil, fmt.Errorf("para: probability %d/1000 out of range (0, 1000]", cfg.ParaPerMille)
		}
		return newShield(cfg, inner, cfg.ParaPerMille, 0), nil
	})
	RegisterMitigation("refresh-scale", func(cfg MitConfig, inner core.Mechanism) (core.Mechanism, error) {
		if cfg.RefreshScale < 2 {
			return nil, fmt.Errorf("refresh-scale: divisor %d must be >= 2", cfg.RefreshScale)
		}
		return newShield(cfg, inner, 0, cfg.RefreshScale), nil
	})
	RegisterMitigation("crow-hammer", func(cfg MitConfig, inner core.Mechanism) (core.Mechanism, error) {
		cw, ok := core.Unwrap(inner).(*core.CROW)
		if !ok {
			return nil, fmt.Errorf("crow-hammer: requires a crow-* mechanism (have %s)", inner.Name())
		}
		if cfg.HammerThreshold > 0 {
			cw.HammerThreshold = cfg.HammerThreshold
		}
		if cw.HammerThreshold <= 0 {
			return nil, fmt.Errorf("crow-hammer: hammer threshold must be positive")
		}
		return inner, nil
	})
}

// Shield wraps a mechanism with controller-side RowHammer countermeasures:
// PARA's probabilistic neighbour refresh (each activation enqueues a
// neighbour-row refresh activation with probability paraPerMille/1000,
// drained through the controller's mechanism-copy path) and/or a scaled
// refresh rate (RefreshDivisor shortens the controller's REF interval).
// All delegation preserves the inner mechanism's behavior; Unwrap exposes it
// for the type asserts that reach inside core.CROW.
type Shield struct {
	inner core.Mechanism
	seed  int64
	geo   dram.Geometry

	paraPerMille int
	refreshDiv   int

	// Capability views of the inner mechanism, cached once like the
	// controller caches its own (a nil view = capability absent).
	innerCopy interface {
		NextCopy(int) (core.CopyOp, bool)
	}
	innerScrub interface {
		NextScrub(int) (core.CopyOp, bool)
		RequeueScrub(int, dram.Addr)
	}
	innerPeek interface {
		HasPendingOps(int) bool
	}

	chans []shieldChan
}

type shieldChan struct {
	draws uint64
	queue []core.CopyOp
	acts  int64
	_     [24]byte // keep per-channel state off shared cache lines
}

func newShield(cfg MitConfig, inner core.Mechanism, paraPerMille, refreshDiv int) *Shield {
	s := &Shield{
		inner:        inner,
		seed:         cfg.Seed,
		geo:          cfg.Geo,
		paraPerMille: paraPerMille,
		refreshDiv:   refreshDiv,
		chans:        make([]shieldChan, cfg.Channels),
	}
	if c, ok := inner.(interface {
		NextCopy(int) (core.CopyOp, bool)
	}); ok {
		s.innerCopy = c
	}
	if sc, ok := inner.(interface {
		NextScrub(int) (core.CopyOp, bool)
		RequeueScrub(int, dram.Addr)
	}); ok {
		s.innerScrub = sc
	}
	if p, ok := inner.(interface {
		HasPendingOps(int) bool
	}); ok {
		s.innerPeek = p
	}
	return s
}

// Unwrap exposes the wrapped mechanism (core.Unwrap walks it).
func (s *Shield) Unwrap() core.Mechanism { return s.inner }

// Name implements core.Mechanism.
func (s *Shield) Name() string {
	suffix := "+para"
	if s.refreshDiv > 1 {
		suffix = "+refx" + fmt.Sprint(s.refreshDiv)
	}
	return s.inner.Name() + suffix
}

// PlanActivate implements core.Mechanism, delegating unchanged.
func (s *Shield) PlanActivate(a dram.Addr, cycle int64) core.ActDecision {
	return s.inner.PlanActivate(a, cycle)
}

// OnActivate implements core.Mechanism: after delegating, PARA draws once
// per regular-row activation and, on a hit, enqueues a refresh activation of
// a random immediate neighbour. The draw is a seeded counter hash, so runs
// are deterministic at any shard count (each channel's counter is touched
// only by that channel's goroutine).
func (s *Shield) OnActivate(a dram.Addr, d core.ActDecision, cycle int64) {
	s.inner.OnActivate(a, d, cycle)
	if s.paraPerMille == 0 || d.Kind == dram.ActCopyRow {
		return
	}
	c := &s.chans[a.Channel]
	c.draws++
	h := mix(uint64(s.seed) ^ uint64(a.Channel)<<56 ^ c.draws)
	if h%1000 >= uint64(s.paraPerMille) {
		return
	}
	row := a.Row - 1
	if (h>>32)&1 == 1 {
		row = a.Row + 1
	}
	if row < 0 || row >= s.geo.RowsPerBank {
		return
	}
	c.queue = append(c.queue, core.CopyOp{
		Addr: dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: row},
		Kind: dram.ActSingle,
	})
}

// OnPrecharge implements core.Mechanism.
func (s *Shield) OnPrecharge(a dram.Addr, openRow int, fullyRestored bool, cycle int64) {
	s.inner.OnPrecharge(a, openRow, fullyRestored, cycle)
}

// OnRefreshRows implements core.Mechanism.
func (s *Shield) OnRefreshRows(channel, rank, bank, startRow, n int) {
	s.inner.OnRefreshRows(channel, rank, bank, startRow, n)
}

// RefreshMultiplier implements core.Mechanism, delegating unchanged (the
// refresh-scale divisor is a separate controller hook, RefreshDivisor).
func (s *Shield) RefreshMultiplier() int { return s.inner.RefreshMultiplier() }

// RefreshDivisor reports the refresh-rate scaling factor the controller
// should apply (values below 2 mean none).
func (s *Shield) RefreshDivisor() int { return s.refreshDiv }

// NextCopy drains the inner mechanism's ops first, then PARA's pending
// neighbour refreshes.
func (s *Shield) NextCopy(channel int) (core.CopyOp, bool) {
	if s.innerCopy != nil {
		if op, ok := s.innerCopy.NextCopy(channel); ok {
			return op, true
		}
	}
	c := &s.chans[channel]
	if len(c.queue) == 0 {
		return core.CopyOp{}, false
	}
	op := c.queue[0]
	c.queue = c.queue[1:]
	c.acts++
	return op, true
}

// NextScrub delegates to the inner mechanism, if it scrubs.
func (s *Shield) NextScrub(channel int) (core.CopyOp, bool) {
	if s.innerScrub != nil {
		return s.innerScrub.NextScrub(channel)
	}
	return core.CopyOp{}, false
}

// RequeueScrub delegates to the inner mechanism, if it scrubs.
func (s *Shield) RequeueScrub(channel int, a dram.Addr) {
	if s.innerScrub != nil {
		s.innerScrub.RequeueScrub(channel, a)
	}
}

// HasPendingOps reports whether the channel has mitigation or inner-mechanism
// ops pending. When the inner mechanism has op sources but no peeker, it
// reports true (never idle-skip past un-peekable work), preserving the
// controller's contract for the wrapped case.
func (s *Shield) HasPendingOps(channel int) bool {
	if len(s.chans[channel].queue) > 0 {
		return true
	}
	if s.innerPeek != nil {
		return s.innerPeek.HasPendingOps(channel)
	}
	return s.innerCopy != nil || s.innerScrub != nil
}

// NeighborRefreshes returns how many PARA neighbour-refresh activations the
// controller issued, summed across channels after the run has quiesced.
func (s *Shield) NeighborRefreshes() int64 {
	var n int64
	for i := range s.chans {
		n += s.chans[i].acts
	}
	return n
}
