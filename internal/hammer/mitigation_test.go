package hammer

import (
	"strings"
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

func testMitCfg() MitConfig {
	return MitConfig{Channels: 2, Geo: testGeo(), Seed: 1}
}

func TestMitigationRegistry(t *testing.T) {
	names := MitigationNames()
	for _, want := range []string{"none", "para", "refresh-scale", "crow-hammer"} {
		if CheckMitigation(want) != nil {
			t.Fatalf("builtin %q missing (have %v)", want, names)
		}
	}
	err := CheckMitigation("parra")
	if err == nil || !strings.Contains(err.Error(), "unknown mitigation") {
		t.Fatalf("misspelled name accepted: %v", err)
	}
	if _, err := NewMitigation("parra", testMitCfg(), &core.Baseline{}); err == nil {
		t.Fatal("NewMitigation accepted unknown name")
	}
}

func TestNoneMitigationPassesThrough(t *testing.T) {
	inner := &core.Baseline{}
	m, err := NewMitigation("none", testMitCfg(), inner)
	if err != nil || m != core.Mechanism(inner) {
		t.Fatalf("none must return inner unchanged: %v %v", m, err)
	}
}

func TestParaValidation(t *testing.T) {
	for _, pm := range []int{0, -1, 1001} {
		cfg := testMitCfg()
		cfg.ParaPerMille = pm
		if _, err := NewMitigation("para", cfg, &core.Baseline{}); err == nil {
			t.Fatalf("para accepted probability %d/1000", pm)
		}
	}
}

func TestRefreshScaleValidation(t *testing.T) {
	cfg := testMitCfg()
	cfg.RefreshScale = 1
	if _, err := NewMitigation("refresh-scale", cfg, &core.Baseline{}); err == nil {
		t.Fatal("refresh-scale accepted divisor 1")
	}
	cfg.RefreshScale = 4
	m, err := NewMitigation("refresh-scale", cfg, &core.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.(*Shield)
	if s.RefreshDivisor() != 4 {
		t.Fatalf("divisor %d, want 4", s.RefreshDivisor())
	}
	if !strings.HasSuffix(s.Name(), "+refx4") {
		t.Fatalf("name %q", s.Name())
	}
}

func TestCrowHammerRequiresCROW(t *testing.T) {
	if _, err := NewMitigation("crow-hammer", testMitCfg(), &core.Baseline{}); err == nil {
		t.Fatal("crow-hammer accepted a non-CROW mechanism")
	}
	g := testGeo()
	cw := core.NewCROW(2, g, dram.Timing{RowsPerRef: 64})
	cfg := testMitCfg()
	cfg.HammerThreshold = 128
	m, err := NewMitigation("crow-hammer", cfg, cw)
	if err != nil {
		t.Fatal(err)
	}
	if m != core.Mechanism(cw) || cw.HammerThreshold != 128 {
		t.Fatalf("crow-hammer must configure and return inner (threshold %d)", cw.HammerThreshold)
	}
	// It must also see through a Shield wrapper (mitigations stack).
	cfg.ParaPerMille = 5
	wrapped, err := NewMitigation("para", cfg, cw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMitigation("crow-hammer", cfg, wrapped); err != nil {
		t.Fatalf("crow-hammer failed to unwrap a Shield: %v", err)
	}
	// And reject a zero threshold.
	cfg2 := testMitCfg()
	cw2 := core.NewCROW(2, g, dram.Timing{RowsPerRef: 64})
	cw2.HammerThreshold = 0
	if _, err := NewMitigation("crow-hammer", cfg2, cw2); err == nil {
		t.Fatal("crow-hammer accepted threshold 0")
	}
}

func TestShieldParaEnqueuesNeighbours(t *testing.T) {
	cfg := testMitCfg()
	cfg.ParaPerMille = 1000 // every activation draws a neighbour refresh
	m, err := NewMitigation("para", cfg, &core.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.(*Shield)
	a := dram.Addr{Channel: 1, Bank: 1, Row: 10}
	if s.HasPendingOps(1) {
		t.Fatal("pending ops before any activation")
	}
	s.OnActivate(a, core.ActDecision{Kind: dram.ActSingle}, 0)
	if !s.HasPendingOps(1) {
		t.Fatal("no pending op after a guaranteed draw")
	}
	if s.HasPendingOps(0) {
		t.Fatal("draw leaked across channels")
	}
	op, ok := s.NextCopy(1)
	if !ok || op.Kind != dram.ActSingle {
		t.Fatalf("NextCopy: %+v %v", op, ok)
	}
	if op.Addr.Row != 9 && op.Addr.Row != 11 {
		t.Fatalf("neighbour row %d, want 9 or 11", op.Addr.Row)
	}
	if op.Addr.Channel != 1 || op.Addr.Bank != 1 {
		t.Fatalf("neighbour bank/channel wrong: %+v", op.Addr)
	}
	if _, ok := s.NextCopy(1); ok {
		t.Fatal("queue drained twice")
	}
	if s.NeighborRefreshes() != 1 {
		t.Fatalf("issued count %d, want 1", s.NeighborRefreshes())
	}
}

func TestShieldParaSkipsOutOfRangeAndCopyActs(t *testing.T) {
	cfg := testMitCfg()
	cfg.ParaPerMille = 1000
	m, _ := NewMitigation("para", cfg, &core.Baseline{})
	s := m.(*Shield)
	// Edge rows may draw a nonexistent neighbour; those draws are dropped.
	for i := 0; i < 8; i++ {
		s.OnActivate(dram.Addr{Row: 0}, core.ActDecision{Kind: dram.ActSingle}, int64(i))
	}
	for {
		op, ok := s.NextCopy(0)
		if !ok {
			break
		}
		if op.Addr.Row != 1 {
			t.Fatalf("row-0 activation refreshed row %d", op.Addr.Row)
		}
	}
	// Copy-row activations (the mitigation's own refreshes included) never
	// draw — PARA would otherwise feed back on itself.
	s.OnActivate(dram.Addr{Row: 10}, core.ActDecision{Kind: dram.ActCopyRow}, 100)
	if s.HasPendingOps(0) {
		t.Fatal("copy-row activation drew a neighbour refresh")
	}
}

func TestShieldParaDeterministicRate(t *testing.T) {
	run := func() (rows []int) {
		cfg := testMitCfg()
		cfg.ParaPerMille = 100
		m, _ := NewMitigation("para", cfg, &core.Baseline{})
		s := m.(*Shield)
		for i := 0; i < 2000; i++ {
			s.OnActivate(dram.Addr{Row: 10}, core.ActDecision{Kind: dram.ActSingle}, int64(i))
			if op, ok := s.NextCopy(0); ok {
				rows = append(rows, op.Addr.Row)
			}
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d draws", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	// 100/1000 over 2000 activations: expect ~200 hits; accept a wide band.
	if len(a) < 120 || len(a) > 280 {
		t.Fatalf("hit rate off: %d/2000 at 100/1000", len(a))
	}
}
