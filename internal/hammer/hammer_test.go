package hammer

import (
	"reflect"
	"testing"

	"crowdram/internal/dram"
)

// testGeo is a deliberately tiny geometry so tests can reason about every
// row: 1 rank, 2 banks, 64 rows per bank, 16-row subarrays with 2 copy rows.
func testGeo() dram.Geometry {
	return dram.Geometry{
		Ranks: 1, Banks: 2,
		RowsPerBank: 64, RowsPerSubarray: 16, CopyRows: 2,
		RowBytes: 8 * 1024, LineBytes: 64,
	}
}

// flatCfg disables jitter and pattern dependence, so every row's threshold
// is exactly HCFirst activations.
func flatCfg(hcFirst int) Config {
	return Config{Seed: 1, HCFirst: hcFirst, JitterPct: 0, PatternPct: 100}
}

func act(m *Model, ch int, a dram.Addr) {
	m.Observer(ch).OnCommand(dram.CmdEvent{Cmd: dram.CmdACT, Addr: a, CopyRow: -1})
}

func TestFlipAtExactThreshold(t *testing.T) {
	m := New(flatCfg(5), 1, testGeo(), dram.Timing{RowsPerRef: 64})
	agg := dram.Addr{Row: 10}
	for i := 0; i < 4; i++ {
		act(m, 0, agg)
	}
	if f := m.Findings(); f.Flips != 0 {
		t.Fatalf("flips before threshold: %+v", f)
	}
	act(m, 0, agg) // 5th activation crosses HC_first = 5 on both neighbours
	f := m.Findings()
	if f.Flips != 2 || len(f.Rows) != 2 {
		t.Fatalf("want 2 flips on rows 9 and 11, got %+v", f)
	}
	if f.Rows[0].Row != 9 || f.Rows[1].Row != 11 {
		t.Fatalf("wrong victim rows: %+v", f.Rows)
	}
	// The per-window flip latch records each victim once, however much
	// further dose arrives.
	for i := 0; i < 100; i++ {
		act(m, 0, agg)
	}
	if f := m.Findings(); f.Flips != 2 {
		t.Fatalf("latched flip recounted: %+v", f)
	}
}

func TestRefreshResetsDose(t *testing.T) {
	m := New(flatCfg(5), 1, testGeo(), dram.Timing{RowsPerRef: 64})
	agg := dram.Addr{Row: 10}
	for i := 0; i < 4; i++ {
		act(m, 0, agg)
	}
	// An all-bank REF restores every row's charge (RowsPerRef covers the
	// whole bank here): the accumulated dose and flip latch reset.
	m.Observer(0).OnCommand(dram.CmdEvent{Cmd: dram.CmdREF, Addr: dram.Addr{}, CopyRow: -1})
	for i := 0; i < 4; i++ {
		act(m, 0, agg)
	}
	if f := m.Findings(); f.Flips != 0 {
		t.Fatalf("dose survived refresh: %+v", f)
	}
	act(m, 0, agg)
	if f := m.Findings(); f.Flips != 2 {
		t.Fatalf("want flips after re-crossing post-refresh, got %+v", f)
	}
}

func TestPartialRefreshSweep(t *testing.T) {
	// RowsPerRef 16: the first REF refreshes rows [0,16) only, leaving the
	// dose on rows 20±1 in place.
	m := New(flatCfg(5), 1, testGeo(), dram.Timing{RowsPerRef: 16})
	agg := dram.Addr{Row: 20}
	for i := 0; i < 4; i++ {
		act(m, 0, agg)
	}
	m.Observer(0).OnCommand(dram.CmdEvent{Cmd: dram.CmdREF, Addr: dram.Addr{}, CopyRow: -1})
	act(m, 0, agg)
	if f := m.Findings(); f.Flips != 2 {
		t.Fatalf("out-of-window refresh cleared dose: %+v", f)
	}
}

func TestBlastRadius(t *testing.T) {
	m := New(Config{Seed: 1, HCFirst: 5, PatternPct: 100, BlastPct: 50}, 1, testGeo(), dram.Timing{RowsPerRef: 64})
	agg := dram.Addr{Row: 10}
	for i := 0; i < 9; i++ {
		act(m, 0, agg)
	}
	// ±1 rows flipped at 5 activations; ±2 rows have 9*50 = 450 < 500.
	if f := m.Findings(); f.Flips != 2 {
		t.Fatalf("±2 rows flipped early: %+v", f)
	}
	act(m, 0, agg) // 10*50 = 500 crosses on rows 8 and 12
	f := m.Findings()
	if f.Flips != 4 || len(f.Rows) != 4 {
		t.Fatalf("want 4 victim rows (8,9,11,12), got %+v", f)
	}
	want := []int{8, 9, 11, 12}
	for i, fr := range f.Rows {
		if fr.Row != want[i] {
			t.Fatalf("victim rows %v, want %v", f.Rows, want)
		}
	}
}

func TestShieldedByCopyRowRemap(t *testing.T) {
	g := testGeo()
	m := New(flatCfg(10), 1, g, dram.Timing{RowsPerRef: 64})
	// An ACT-c remap moves row 10's data into copy-row way 1 of its
	// subarray; the physical row still disturbs, but the data survives.
	m.Observer(0).OnCommand(dram.CmdEvent{Cmd: dram.CmdACTc, Addr: dram.Addr{Row: 10}, CopyRow: 1})
	for i := 0; i < 5; i++ {
		act(m, 0, dram.Addr{Row: 9})
		act(m, 0, dram.Addr{Row: 11})
	}
	f := m.Findings()
	if f.Shielded != 1 || f.Flips != 0 || len(f.Rows) != 0 {
		t.Fatalf("want 1 shielded crossing and no exposed flips, got %+v", f)
	}
}

func TestPerChannelAndBankIsolation(t *testing.T) {
	m := New(flatCfg(5), 2, testGeo(), dram.Timing{RowsPerRef: 64})
	for i := 0; i < 5; i++ {
		act(m, 0, dram.Addr{Row: 10})
		act(m, 1, dram.Addr{Channel: 1, Bank: 1, Row: 30})
	}
	f := m.Findings()
	if f.Flips != 4 {
		t.Fatalf("want 2 flips per channel, got %+v", f)
	}
	want := []FlipRow{
		{Channel: 0, Bank: 0, Row: 9, Flips: 1},
		{Channel: 0, Bank: 0, Row: 11, Flips: 1},
		{Channel: 1, Bank: 1, Row: 29, Flips: 1},
		{Channel: 1, Bank: 1, Row: 31, Flips: 1},
	}
	if !reflect.DeepEqual(f.Rows, want) {
		t.Fatalf("rows %+v, want %+v", f.Rows, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64) Findings {
		m := New(Config{Seed: seed, HCFirst: 8, JitterPct: 25, PatternPct: 75, BlastPct: 30},
			2, testGeo(), dram.Timing{RowsPerRef: 16})
		for i := 0; i < 12; i++ {
			for ch := 0; ch < 2; ch++ {
				act(m, ch, dram.Addr{Channel: ch, Row: 10})
				act(m, ch, dram.Addr{Channel: ch, Row: 12})
				act(m, ch, dram.Addr{Channel: ch, Bank: 1, Row: 40})
			}
		}
		return m.Findings()
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Flips == 0 {
		t.Fatalf("test sequence produced no flips: %+v", a)
	}
}

func TestThresholdBandAndPatternSplit(t *testing.T) {
	m := New(Config{Seed: 3, HCFirst: 512, JitterPct: 25, PatternPct: 75},
		1, testGeo(), dram.Timing{RowsPerRef: 64})
	c := m.chans[0]
	b := c.bank(0, 0)
	lo, hi := int32(512*75/100*75*100/100), int32(512*125/100*100) // in dose units
	worst, best := 0, 0
	for row := 0; row < testGeo().RowsPerBank; row++ {
		thr := c.threshold(b, row)
		if thr < lo || thr > hi {
			t.Fatalf("row %d threshold %d outside [%d, %d]", row, thr, lo, hi)
		}
		// The pattern split scales thresholds below HCFirst*(100-J)% of
		// the best-case floor; classify by midpoint for the tally.
		if thr < 512*75 {
			worst++
		} else {
			best++
		}
	}
	if worst == 0 || best == 0 {
		t.Fatalf("pattern split degenerate: worst=%d best=%d", worst, best)
	}
}

func TestZeroHCFirstFloorsAtOneActivation(t *testing.T) {
	// HCFirst below one activation clamps to a single dose unit, not zero
	// (a zero threshold would read as "undrawn" and redraw forever).
	m := New(flatCfg(0), 1, testGeo(), dram.Timing{RowsPerRef: 64})
	act(m, 0, dram.Addr{Row: 10})
	if f := m.Findings(); f.Flips != 2 {
		t.Fatalf("want immediate flips with floor threshold, got %+v", f)
	}
}
