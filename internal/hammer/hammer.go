// Package hammer is the RowHammer attack/defense workbench: a deterministic
// bit-flip model driven by the DRAM command stream (the same observer bus
// the correctness oracle rides), and a registry of pluggable mitigations
// (PARA, CROW-hammer remap, refresh-rate scaling) that wrap a core.Mechanism
// at the controller's activation-decision point.
//
// The flip model follows HammerSim's system-level approach: every row draws
// a per-row first-flip hammer count (HC_first) from a seeded distribution,
// aggressor activations dose their ±1 and ±2 neighbours (the ±2 "blast
// radius" at a reduced rate), and a row whose accumulated dose crosses its
// threshold within one refresh window records a flip. Data-pattern
// dependence is a seeded per-row class (the trace-driven simulator carries
// no real data — the oracle's shadow memory stores write versions — so the
// worst-case/best-case pattern split is a deterministic proxy keyed on the
// row address). Everything is derived with splitmix64 from Config.Seed, so
// runs are byte-identical at any worker or shard count.
package hammer

import (
	"fmt"
	"sort"

	"crowdram/internal/dram"
)

// Config parameterizes the bit-flip model. The zero HCFirst disables it.
type Config struct {
	// Seed drives every per-row draw (thresholds, pattern classes).
	Seed int64
	// HCFirst is the nominal per-side activation count at which the most
	// vulnerable rows flip (the distribution's low edge is
	// HCFirst*(100-JitterPct)%*PatternPct%).
	HCFirst int
	// JitterPct spreads per-row thresholds uniformly over ±JitterPct%.
	JitterPct int
	// BlastPct is the dose a ±2 neighbour receives per aggressor
	// activation, as a percentage of the ±1 dose.
	BlastPct int
	// PatternPct scales the threshold of worst-pattern rows (half the
	// rows, seeded): a value below 100 makes them flip earlier.
	PatternPct int
}

// doseUnit is the disturbance one ±1 aggressor activation deposits; ±2
// activations deposit BlastPct (percent of doseUnit). Thresholds are held in
// the same fixed-point units so integer math stays exact.
const doseUnit = 100

// doseCap saturates accumulators well below int32 overflow.
const doseCap = 1 << 30

// FlipRow is one victim row's flip tally.
type FlipRow struct {
	Channel int   `json:"channel"`
	Rank    int   `json:"rank"`
	Bank    int   `json:"bank"`
	Row     int   `json:"row"`
	Flips   int64 `json:"flips"`
}

// Findings is the model's end-of-run summary. Rows are sorted by
// (channel, rank, bank, row) so output is deterministic.
type Findings struct {
	// Flips counts threshold crossings on rows whose data was exposed
	// (not remapped to a copy row at crossing time).
	Flips int64
	// Shielded counts crossings on rows whose data a CROW-hammer remap
	// had moved to a copy row — the physical row disturbs, the data
	// survives.
	Shielded int64
	// Rows lists every victim row that recorded at least one exposed flip.
	Rows []FlipRow
}

// Model is the per-system flip model. Attach one Observer per channel; each
// channel's state is touched only by that channel's observer, so the sharded
// tick loop drives it race-free exactly like the oracle.
type Model struct {
	cfg   Config
	geo   dram.Geometry
	rpr   int // rows refreshed per REF/REFpb
	chans []*chanModel
}

// New builds a flip model for a system of identical channels.
func New(cfg Config, channels int, g dram.Geometry, t dram.Timing) *Model {
	if cfg.JitterPct < 0 {
		cfg.JitterPct = 0
	}
	if cfg.JitterPct > 99 {
		cfg.JitterPct = 99
	}
	if cfg.PatternPct <= 0 {
		cfg.PatternPct = 100
	}
	if cfg.BlastPct < 0 {
		cfg.BlastPct = 0
	}
	m := &Model{cfg: cfg, geo: g, rpr: t.RowsPerRef, chans: make([]*chanModel, channels)}
	for ch := range m.chans {
		m.chans[ch] = &chanModel{
			m:      m,
			ch:     ch,
			refRow: make([]int, g.Ranks),
			banks:  make([]*bankState, g.Ranks*g.Banks),
		}
	}
	return m
}

// Observer returns the command observer for one channel.
func (m *Model) Observer(ch int) dram.CommandObserver { return m.chans[ch] }

// Findings merges the per-channel tallies (channels in index order, rows
// sorted within each bank), after the run has quiesced.
func (m *Model) Findings() Findings {
	var f Findings
	for _, c := range m.chans {
		f.Flips += c.flips
		f.Shielded += c.shielded
		for bi, b := range c.banks {
			if b == nil || len(b.flipLog) == 0 {
				continue
			}
			rank, bank := bi/m.geo.Banks, bi%m.geo.Banks
			rows := make([]int, 0, len(b.flipLog))
			for r := range b.flipLog {
				rows = append(rows, r)
			}
			sort.Ints(rows)
			for _, r := range rows {
				f.Rows = append(f.Rows, FlipRow{Channel: c.ch, Rank: rank, Bank: bank, Row: r, Flips: b.flipLog[r]})
			}
		}
	}
	sort.Slice(f.Rows, func(i, j int) bool {
		a, b := f.Rows[i], f.Rows[j]
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		return a.Row < b.Row
	})
	return f
}

// String summarizes findings for logs.
func (f Findings) String() string {
	return fmt.Sprintf("flips=%d shielded=%d victim-rows=%d", f.Flips, f.Shielded, len(f.Rows))
}

// chanModel is one channel's replica: disturbance accumulators, lazily drawn
// thresholds, the CROW-hammer shield map, and the refresh-sweep pointer
// mirrored from the controller's command stream (the same replica the
// oracle's refresh-deadline monitor keeps).
type chanModel struct {
	m        *Model
	ch       int
	refRow   []int // next refresh window start, per rank
	banks    []*bankState
	flips    int64
	shielded int64
}

type bankState struct {
	idx     int     // rank*Banks+bank, part of every per-row draw's key
	disturb []int32 // accumulated dose per row, doseUnit fixed-point
	thr     []int32 // per-row threshold, drawn lazily (0 = undrawn)
	flipped []bool  // row already flipped in the current charge interval
	// shield maps (subarray, copy-row way) -> regular row + 1 whose data
	// the way holds after an ACT-c remap; 0 = none.
	shield  []int32
	flipLog map[int]int64
}

func (c *chanModel) bank(rank, bank int) *bankState {
	b := c.banks[rank*c.m.geo.Banks+bank]
	if b == nil {
		g := c.m.geo
		nsub := (g.RowsPerBank + g.RowsPerSubarray - 1) / g.RowsPerSubarray
		b = &bankState{
			idx:     rank*g.Banks + bank,
			disturb: make([]int32, g.RowsPerBank),
			thr:     make([]int32, g.RowsPerBank),
			flipped: make([]bool, g.RowsPerBank),
			shield:  make([]int32, nsub*max(g.CopyRows, 1)),
			flipLog: map[int]int64{},
		}
		c.banks[rank*c.m.geo.Banks+bank] = b
	}
	return b
}

// OnCommand implements dram.CommandObserver.
func (c *chanModel) OnCommand(e dram.CmdEvent) {
	switch e.Cmd {
	case dram.CmdACT, dram.CmdACTt, dram.CmdACTc:
		c.onACT(e)
	case dram.CmdREF:
		rpr := c.m.rpr
		start := c.refRow[e.Addr.Rank]
		for b := 0; b < c.m.geo.Banks; b++ {
			c.refreshWindow(e.Addr.Rank, b, start, rpr)
		}
		c.refRow[e.Addr.Rank] = (start + rpr) % c.m.geo.RowsPerBank
	case dram.CmdREFpb:
		rpr := c.m.rpr
		start := c.refRow[e.Addr.Rank]
		c.refreshWindow(e.Addr.Rank, e.Addr.Bank, start, rpr)
		if e.Addr.Bank == c.m.geo.Banks-1 {
			c.refRow[e.Addr.Rank] = (start + rpr) % c.m.geo.RowsPerBank
		}
	}
}

// refreshWindow models refreshing rows [start, start+n) of one bank: the
// rows' charge is restored, so their accumulated disturbance and per-window
// flip latch reset. Banks never touched by an activation have no state to
// reset.
func (c *chanModel) refreshWindow(rank, bank, start, n int) {
	b := c.banks[rank*c.m.geo.Banks+bank]
	if b == nil {
		return
	}
	for r := start; r < start+n && r < c.m.geo.RowsPerBank; r++ {
		b.disturb[r] = 0
		b.flipped[r] = false
	}
}

// onACT handles a regular-row activation (plain ACT, ACT-t, ACT-c): the
// activated row's own charge is restored, its neighbours take a dose, and an
// ACT-c additionally records that the copy-row way now shields the row.
func (c *chanModel) onACT(e dram.CmdEvent) {
	g := c.m.geo
	b := c.bank(e.Addr.Rank, e.Addr.Bank)
	row := e.Addr.Row
	b.disturb[row] = 0
	b.flipped[row] = false
	if e.Cmd == dram.CmdACTc && e.CopyRow >= 0 && g.CopyRows > 0 {
		sub := g.Subarray(row)
		b.shield[sub*g.CopyRows+e.CopyRow] = int32(row) + 1
	}
	c.dose(b, row-1, doseUnit)
	c.dose(b, row+1, doseUnit)
	if c.m.cfg.BlastPct > 0 {
		c.dose(b, row-2, int32(c.m.cfg.BlastPct))
		c.dose(b, row+2, int32(c.m.cfg.BlastPct))
	}
}

// dose deposits disturbance on a victim row and records a flip if the row
// crosses its threshold for the first time in its current charge interval.
func (c *chanModel) dose(b *bankState, row int, amount int32) {
	if row < 0 || row >= c.m.geo.RowsPerBank {
		return
	}
	d := b.disturb[row] + amount
	if d > doseCap {
		d = doseCap
	}
	b.disturb[row] = d
	if b.flipped[row] {
		return
	}
	thr := b.thr[row]
	if thr == 0 {
		thr = c.threshold(b, row)
	}
	if d < thr {
		return
	}
	b.flipped[row] = true
	if c.shieldedRow(b, row) {
		c.shielded++
		return
	}
	c.flips++
	b.flipLog[row]++
}

// shieldedRow reports whether a CROW-hammer remap currently holds the row's
// data in a copy row of its subarray.
func (c *chanModel) shieldedRow(b *bankState, row int) bool {
	g := c.m.geo
	if g.CopyRows == 0 {
		return false
	}
	sub := g.Subarray(row)
	want := int32(row) + 1
	for _, s := range b.shield[sub*g.CopyRows : (sub+1)*g.CopyRows] {
		if s == want {
			return true
		}
	}
	return false
}

// threshold draws the row's HC_first lazily: nominal HCFirst, uniform
// ±JitterPct, scaled by PatternPct for the seeded worst-pattern half.
func (c *chanModel) threshold(b *bankState, row int) int32 {
	cfg := c.m.cfg
	h := mix(uint64(cfg.Seed) ^ uint64(c.ch)<<48 ^ uint64(b.idx)<<32 ^ uint64(row))
	jit := 100 - cfg.JitterPct
	if span := 2*cfg.JitterPct + 1; span > 1 {
		jit += int(h % uint64(span))
	}
	pat := 100
	if cfg.PatternPct < 100 && (h>>33)&1 == 0 {
		pat = cfg.PatternPct
	}
	thr := int64(cfg.HCFirst) * int64(jit) * int64(pat) / 100
	if thr < doseUnit {
		thr = doseUnit
	}
	if thr > doseCap {
		thr = doseCap
	}
	b.thr[row] = int32(thr)
	return int32(thr)
}

// mix is splitmix64's finalizer: a cheap, well-distributed hash.
func mix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
