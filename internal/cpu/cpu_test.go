package cpu

import (
	"testing"

	"crowdram/internal/trace"
)

// scriptGen replays a fixed record sequence, then repeats the last record.
type scriptGen struct {
	recs []trace.Record
	i    int
}

func (g *scriptGen) Next() trace.Record {
	if g.i < len(g.recs) {
		r := g.recs[g.i]
		g.i++
		return r
	}
	return g.recs[len(g.recs)-1]
}

// idXlat is the identity translation.
type idXlat struct{}

func (idXlat) Translate(core int, v uint64) uint64 { return v }

// scriptMem records accesses and completes them on demand.
type scriptMem struct {
	pending []func(int64)
	hit     bool
	accept  bool
	count   int
}

func (m *scriptMem) Access(now int64, core int, addr uint64, write bool, done func(now int64)) (bool, bool) {
	if !m.accept {
		return false, false
	}
	m.count++
	if m.hit {
		// Hits complete via a delayed callback as the LLC does.
		m.pending = append(m.pending, done)
		return true, true
	}
	m.pending = append(m.pending, done)
	return true, false
}

func (m *scriptMem) completeAll(now int64) {
	p := m.pending
	m.pending = nil
	for _, d := range p {
		d(now)
	}
}

func TestBubblesRetireAtFullWidth(t *testing.T) {
	mem := &scriptMem{accept: true, hit: true}
	gen := &scriptGen{recs: []trace.Record{{Bubbles: 1000, Addr: 0}}}
	c := New(0, DefaultConfig(), gen, mem, idXlat{})
	for i := int64(1); i <= 100; i++ {
		c.Tick(i)
	}
	// Steady state: 4-wide issue and retire of pure bubbles => IPC ~ 4.
	if ipc := c.IPC(); ipc < 3.5 {
		t.Errorf("bubble IPC = %.2f, want ~4", ipc)
	}
}

func TestLoadBlocksRetirement(t *testing.T) {
	mem := &scriptMem{accept: true, hit: false}
	gen := &scriptGen{recs: []trace.Record{{Bubbles: 0, Addr: 64}, {Bubbles: 1 << 20, Addr: 128}}}
	cfg := DefaultConfig()
	c := New(0, cfg, gen, mem, idXlat{})
	for i := int64(1); i <= 50; i++ {
		c.Tick(i)
	}
	// The first load is outstanding; bubbles behind it fill the window
	// but cannot retire past it.
	if c.Retired != 0 {
		t.Errorf("retired %d instructions past an outstanding load", c.Retired)
	}
	if c.count != cfg.Window {
		t.Errorf("window occupancy = %d, want full (%d)", c.count, cfg.Window)
	}
	if c.StallWindow == 0 {
		t.Error("window-full stalls must be counted")
	}
	mem.completeAll(51)
	for i := int64(51); i <= 100; i++ {
		c.Tick(i)
	}
	if c.Retired == 0 {
		t.Error("retirement must resume after the load completes")
	}
}

func TestMSHRLimitStallsIssue(t *testing.T) {
	mem := &scriptMem{accept: true, hit: false}
	recs := make([]trace.Record, 0, 32)
	for i := 0; i < 32; i++ {
		recs = append(recs, trace.Record{Bubbles: 0, Addr: uint64(i * 64)})
	}
	gen := &scriptGen{recs: recs}
	cfg := DefaultConfig()
	c := New(0, cfg, gen, mem, idXlat{})
	for i := int64(1); i <= 50; i++ {
		c.Tick(i)
	}
	if mem.count != cfg.MSHRs {
		t.Errorf("issued %d memory ops, want MSHR limit %d", mem.count, cfg.MSHRs)
	}
	if c.StallMSHR == 0 {
		t.Error("MSHR stalls must be counted")
	}
	mem.completeAll(51)
	c.Tick(51)
	c.Tick(52)
	if mem.count <= cfg.MSHRs {
		t.Error("issue must resume after MSHRs free up")
	}
}

func TestStoresRetireWithoutWaiting(t *testing.T) {
	mem := &scriptMem{accept: true, hit: false}
	gen := &scriptGen{recs: []trace.Record{
		{Bubbles: 0, Addr: 64, Write: true},
		{Bubbles: 1 << 20, Addr: 128},
	}}
	c := New(0, DefaultConfig(), gen, mem, idXlat{})
	for i := int64(1); i <= 20; i++ {
		c.Tick(i)
	}
	// The store (miss, never filled) must not block retirement.
	if c.Retired == 0 {
		t.Error("store must retire via the store buffer")
	}
}

func TestHitsDoNotConsumeMSHRs(t *testing.T) {
	mem := &scriptMem{accept: true, hit: true}
	recs := make([]trace.Record, 0, 64)
	for i := 0; i < 64; i++ {
		recs = append(recs, trace.Record{Bubbles: 0, Addr: uint64(i * 64)})
	}
	gen := &scriptGen{recs: recs}
	cfg := DefaultConfig()
	c := New(0, cfg, gen, mem, idXlat{})
	for i := int64(1); i <= 10; i++ {
		c.Tick(i)
	}
	if mem.count <= cfg.MSHRs {
		t.Errorf("hits must not be limited by MSHRs: issued %d", mem.count)
	}
	// Complete all hits; outstanding must never go negative (would panic
	// on a later underflow or misbehave). Verified by continuing to run.
	mem.completeAll(11)
	for i := int64(11); i <= 30; i++ {
		c.Tick(i)
	}
	if c.outstanding != 0 {
		t.Errorf("outstanding = %d, want 0", c.outstanding)
	}
}

func TestRejectedAccessRetries(t *testing.T) {
	mem := &scriptMem{accept: false}
	gen := &scriptGen{recs: []trace.Record{{Bubbles: 0, Addr: 64}}}
	c := New(0, DefaultConfig(), gen, mem, idXlat{})
	for i := int64(1); i <= 5; i++ {
		c.Tick(i)
	}
	if mem.count != 0 {
		t.Error("no access should have been recorded while rejecting")
	}
	mem.accept = true
	c.Tick(6)
	if mem.count == 0 {
		t.Errorf("access must be retried after rejection, count=%d", mem.count)
	}
}

func TestResetStats(t *testing.T) {
	mem := &scriptMem{accept: true, hit: true}
	gen := &scriptGen{recs: []trace.Record{{Bubbles: 100, Addr: 64}}}
	c := New(0, DefaultConfig(), gen, mem, idXlat{})
	for i := int64(1); i <= 20; i++ {
		c.Tick(i)
	}
	c.ResetStats()
	if c.Retired != 0 || c.Cycles != 0 {
		t.Error("ResetStats must zero counters")
	}
	c.Tick(21)
	if c.Cycles != 1 {
		t.Error("counting must resume after reset")
	}
}
