// Package cpu implements the trace-driven processor model of Table 2: per
// core, a 4-wide issue/retire pipeline with a 128-entry instruction window
// and 8 MSHRs, in the style of Ramulator's CPU front-end. Non-memory
// instructions retire immediately in order; loads block retirement until
// their data returns from the memory hierarchy; stores retire immediately
// once accepted (store-buffer semantics) but still occupy an MSHR on a miss.
package cpu

import "crowdram/internal/trace"

// Memory is the core's port into the cache hierarchy. Access returns
// accepted=false when the request cannot be tracked (retry next cycle) and
// hit=true when it was served without an LLC miss.
type Memory interface {
	Access(now int64, core int, addr uint64, write bool, done func(now int64)) (accepted, hit bool)
}

// Translator maps a core's virtual addresses to physical addresses.
type Translator interface {
	Translate(core int, vaddr uint64) uint64
}

// Config parameterizes one core.
type Config struct {
	Width  int // issue/retire width (4)
	Window int // instruction window entries (128)
	MSHRs  int // outstanding LLC misses (8)
}

// DefaultConfig returns the Table 2 core configuration.
func DefaultConfig() Config { return Config{Width: 4, Window: 128, MSHRs: 8} }

// Core is one trace-driven core.
type Core struct {
	ID   int
	Cfg  Config
	Gen  trace.Generator
	Mem  Memory
	Xlat Translator

	// window ring buffer: ready flags.
	ready       []bool
	head, count int

	bubblesLeft int
	rec         trace.Record
	haveRec     bool

	outstanding int // LLC misses in flight

	// loadDone holds one completion callback per window slot, built once
	// at construction so load accesses allocate nothing. A load's slot
	// cannot be recycled before its callback fires (retirement waits for
	// the data), so binding the callback to the slot is safe.
	loadDone []func(now int64)
	// loadMiss marks slots whose in-flight load occupies an MSHR.
	loadMiss []bool

	// Store completions outlive their window slot (stores retire
	// immediately), so they use a token pool instead: storeDone[t] is a
	// prebuilt callback releasing token t, storeMiss[t] records whether
	// that store occupies an MSHR. The pool grows on demand and each
	// token's closure is built once, so steady state allocates nothing.
	storeDone []func(now int64)
	storeMiss []bool
	storeFree []int

	// Retired counts completed instructions; Cycles counts elapsed core
	// cycles (both reset at the end of warmup).
	Retired int64
	Cycles  int64

	// StallWindow / StallMSHR count issue stalls by cause.
	StallWindow int64
	StallMSHR   int64
}

// New builds a core reading from gen.
func New(id int, cfg Config, gen trace.Generator, mem Memory, xlat Translator) *Core {
	c := &Core{
		ID: id, Cfg: cfg, Gen: gen, Mem: mem, Xlat: xlat,
		ready:    make([]bool, cfg.Window),
		loadDone: make([]func(now int64), cfg.Window),
		loadMiss: make([]bool, cfg.Window),
	}
	for i := range c.loadDone {
		idx := i
		c.loadDone[idx] = func(int64) {
			if c.loadMiss[idx] {
				c.loadMiss[idx] = false
				c.outstanding--
			}
			c.ready[idx] = true
		}
	}
	return c
}

// ResetStats zeroes the measurement counters (end of warmup).
func (c *Core) ResetStats() {
	c.Retired, c.Cycles = 0, 0
	c.StallWindow, c.StallMSHR = 0, 0
}

// IPC returns retired instructions per cycle over the measured interval.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// storeToken reserves a completion token for a store access, growing the
// pool (and building the token's callback, once) if none is free.
func (c *Core) storeToken() int {
	if n := len(c.storeFree); n > 0 {
		t := c.storeFree[n-1]
		c.storeFree = c.storeFree[:n-1]
		return t
	}
	t := len(c.storeDone)
	c.storeMiss = append(c.storeMiss, false)
	c.storeDone = append(c.storeDone, func(int64) {
		if c.storeMiss[t] {
			c.storeMiss[t] = false
			c.outstanding--
		}
		c.storeFree = append(c.storeFree, t)
	})
	return t
}

func (c *Core) push(ready bool) int {
	idx := (c.head + c.count) % c.Cfg.Window
	c.ready[idx] = ready
	c.count++
	return idx
}

// Stalled reports whether the core can make no progress on its own: nothing
// is ready to retire and the next issue slot is blocked on the window or the
// MSHRs. A stalled core stays stalled until an outstanding memory completion
// callback fires, so the run loop may skip its ticks (accounting them via
// AdvanceIdle) without changing any observable behavior.
func (c *Core) Stalled() bool {
	if c.count > 0 && c.ready[c.head] {
		return false // can retire
	}
	if c.count >= c.Cfg.Window {
		return true // window full
	}
	// Issue slot available: only an MSHR-full memory instruction blocks it
	// (bubbles always issue, and a missing record means Tick would fetch
	// one — a side effect, hence progress).
	return c.bubblesLeft == 0 && c.haveRec && c.outstanding >= c.Cfg.MSHRs
}

// AdvanceIdle accounts n skipped cycles of a stalled core, replicating
// exactly what n no-progress Ticks would have recorded. It must only be
// called while Stalled() holds.
func (c *Core) AdvanceIdle(n int64) {
	c.Cycles += n
	if c.count >= c.Cfg.Window {
		c.StallWindow += n
	} else {
		c.StallMSHR += n
	}
}

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	c.Cycles++
	// Retire in order, up to width.
	for i := 0; i < c.Cfg.Width && c.count > 0 && c.ready[c.head]; i++ {
		c.head = (c.head + 1) % c.Cfg.Window
		c.count--
		c.Retired++
	}
	// Issue up to width instructions into the window.
	for i := 0; i < c.Cfg.Width; i++ {
		if c.count >= c.Cfg.Window {
			c.StallWindow++
			return
		}
		if c.bubblesLeft > 0 {
			c.push(true)
			c.bubblesLeft--
			continue
		}
		if !c.haveRec {
			c.rec = c.Gen.Next()
			c.haveRec = true
			if c.rec.Bubbles > 0 {
				c.bubblesLeft = c.rec.Bubbles
				continue // bubbles issue from the next slot
			}
		}
		// Memory instruction.
		if c.outstanding >= c.Cfg.MSHRs {
			c.StallMSHR++
			return
		}
		addr := c.Xlat.Translate(c.ID, c.rec.Addr)
		if c.rec.Write {
			c.push(true) // stores retire via the store buffer
			tok := c.storeToken()
			accepted, hit := c.Mem.Access(now, c.ID, addr, true, c.storeDone[tok])
			if !accepted {
				c.count-- // roll back the push
				c.storeFree = append(c.storeFree, tok)
				c.StallMSHR++
				return
			}
			if !hit {
				c.outstanding++
				c.storeMiss[tok] = true
			}
		} else {
			idx := c.push(false)
			accepted, hit := c.Mem.Access(now, c.ID, addr, false, c.loadDone[idx])
			if !accepted {
				c.count--
				c.StallMSHR++
				return
			}
			if !hit {
				c.outstanding++
				c.loadMiss[idx] = true
			}
		}
		c.haveRec = false
	}
}
