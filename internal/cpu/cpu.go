// Package cpu implements the trace-driven processor model of Table 2: per
// core, a 4-wide issue/retire pipeline with a 128-entry instruction window
// and 8 MSHRs, in the style of Ramulator's CPU front-end. Non-memory
// instructions retire immediately in order; loads block retirement until
// their data returns from the memory hierarchy; stores retire immediately
// once accepted (store-buffer semantics) but still occupy an MSHR on a miss.
package cpu

import "crowdram/internal/trace"

// Memory is the core's port into the cache hierarchy. Access returns
// accepted=false when the request cannot be tracked (retry next cycle) and
// hit=true when it was served without an LLC miss.
type Memory interface {
	Access(now int64, core int, addr uint64, write bool, done func(now int64)) (accepted, hit bool)
}

// Translator maps a core's virtual addresses to physical addresses.
type Translator interface {
	Translate(core int, vaddr uint64) uint64
}

// Config parameterizes one core.
type Config struct {
	Width  int // issue/retire width (4)
	Window int // instruction window entries (128)
	MSHRs  int // outstanding LLC misses (8)
}

// DefaultConfig returns the Table 2 core configuration.
func DefaultConfig() Config { return Config{Width: 4, Window: 128, MSHRs: 8} }

// Core is one trace-driven core.
type Core struct {
	ID   int
	Cfg  Config
	Gen  trace.Generator
	Mem  Memory
	Xlat Translator

	// window ring buffer: ready flags.
	ready       []bool
	head, count int

	bubblesLeft int
	rec         trace.Record
	haveRec     bool

	outstanding int // LLC misses in flight

	// Retired counts completed instructions; Cycles counts elapsed core
	// cycles (both reset at the end of warmup).
	Retired int64
	Cycles  int64

	// StallWindow / StallMSHR count issue stalls by cause.
	StallWindow int64
	StallMSHR   int64
}

// New builds a core reading from gen.
func New(id int, cfg Config, gen trace.Generator, mem Memory, xlat Translator) *Core {
	return &Core{ID: id, Cfg: cfg, Gen: gen, Mem: mem, Xlat: xlat, ready: make([]bool, cfg.Window)}
}

// ResetStats zeroes the measurement counters (end of warmup).
func (c *Core) ResetStats() {
	c.Retired, c.Cycles = 0, 0
	c.StallWindow, c.StallMSHR = 0, 0
}

// IPC returns retired instructions per cycle over the measured interval.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

func (c *Core) push(ready bool) int {
	idx := (c.head + c.count) % c.Cfg.Window
	c.ready[idx] = ready
	c.count++
	return idx
}

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	c.Cycles++
	// Retire in order, up to width.
	for i := 0; i < c.Cfg.Width && c.count > 0 && c.ready[c.head]; i++ {
		c.head = (c.head + 1) % c.Cfg.Window
		c.count--
		c.Retired++
	}
	// Issue up to width instructions into the window.
	for i := 0; i < c.Cfg.Width; i++ {
		if c.count >= c.Cfg.Window {
			c.StallWindow++
			return
		}
		if c.bubblesLeft > 0 {
			c.push(true)
			c.bubblesLeft--
			continue
		}
		if !c.haveRec {
			c.rec = c.Gen.Next()
			c.haveRec = true
			if c.rec.Bubbles > 0 {
				c.bubblesLeft = c.rec.Bubbles
				continue // bubbles issue from the next slot
			}
		}
		// Memory instruction.
		if c.outstanding >= c.Cfg.MSHRs {
			c.StallMSHR++
			return
		}
		addr := c.Xlat.Translate(c.ID, c.rec.Addr)
		// counted records whether this access occupies an MSHR; it is
		// decided after Access reports hit/miss, and the completion
		// callback (which can only fire on a later cycle) releases it.
		counted := false
		release := func(int64) {
			if counted {
				c.outstanding--
			}
		}
		if c.rec.Write {
			c.push(true) // stores retire via the store buffer
			accepted, hit := c.Mem.Access(now, c.ID, addr, true, release)
			if !accepted {
				c.count-- // roll back the push
				c.StallMSHR++
				return
			}
			if !hit {
				c.outstanding++
				counted = true
			}
		} else {
			idx := c.push(false)
			accepted, hit := c.Mem.Access(now, c.ID, addr, false, func(at int64) {
				c.ready[idx] = true
				release(at)
			})
			if !accepted {
				c.count--
				c.StallMSHR++
				return
			}
			if !hit {
				c.outstanding++
				counted = true
			}
		}
		c.haveRec = false
	}
}
