package core

import (
	"sync/atomic"

	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

// RAIDR is a retention-aware refresh baseline in the spirit of RAIDR
// (Liu et al. [64]), which the paper's footnote 4 names as an alternative
// (and complement) to CROW-ref. Instead of remapping weak rows, RAIDR bins
// rows by retention time: the bulk of (strong) rows refresh at a doubled
// window, while the few weak rows are refreshed individually at the default
// rate with row-granular activate/precharge pairs issued by the controller.
//
// Compared with CROW-ref, RAIDR needs no copy rows (no capacity cost) and
// tolerates any number of weak rows, but it keeps paying per-weak-row
// refresh work forever and does not compose with CROW-cache's latency
// mechanism.
type RAIDR struct {
	Geo     dram.Geometry
	T       dram.Timing
	Profile *retention.Profile

	// RowRefreshes counts the row-granular weak-row refresh operations
	// queued to the controllers (updated atomically: the sharded tick loop
	// services refresh from per-channel goroutines concurrently).
	RowRefreshes int64

	base    dram.ActTimings
	pending [][]CopyOp
}

// NewRAIDR builds the mechanism for a system of `channels` channels.
func NewRAIDR(channels int, g dram.Geometry, t dram.Timing, p *retention.Profile) *RAIDR {
	r := &RAIDR{Geo: g, T: t, Profile: p, base: t.Base()}
	r.pending = make([][]CopyOp, channels)
	return r
}

// Name implements Mechanism.
func (r *RAIDR) Name() string { return "raidr" }

// PlanActivate implements Mechanism: RAIDR leaves row placement untouched.
func (r *RAIDR) PlanActivate(dram.Addr, int64) ActDecision {
	return ActDecision{Kind: dram.ActSingle, Timing: r.base}
}

// OnActivate implements Mechanism.
func (r *RAIDR) OnActivate(dram.Addr, ActDecision, int64) {}

// OnPrecharge implements Mechanism.
func (r *RAIDR) OnPrecharge(dram.Addr, int, bool, int64) {}

// OnRefreshRows implements Mechanism: the bulk REF stream covers every row
// once per *doubled* window, so weak rows need one extra refresh per default
// window. RAIDR interleaves these row-granular refreshes with the bulk
// stream: alongside the REF covering rows [startRow, startRow+n), the weak
// rows half a bank ahead (i.e. half a window away in time) are refreshed
// individually, giving every weak row the default cadence with the work
// spread evenly.
func (r *RAIDR) OnRefreshRows(channel, rank, bank, startRow, n int) {
	half := r.Geo.RowsPerBank / 2
	lo := (startRow + half) % r.Geo.RowsPerBank
	hi := lo + n
	inRange := func(row int) bool {
		if hi <= r.Geo.RowsPerBank {
			return row >= lo && row < hi
		}
		return row >= lo || row < hi-r.Geo.RowsPerBank
	}
	for b, subs := range r.Profile.Weak[channel][rank] {
		if bank >= 0 && b != bank {
			continue
		}
		for sa, weak := range subs {
			for _, row := range weak {
				abs := sa*r.Geo.RowsPerSubarray + row
				if !inRange(abs) {
					continue
				}
				r.pending[channel] = append(r.pending[channel], CopyOp{
					Addr:   dram.Addr{Channel: channel, Rank: rank, Bank: b, Row: abs},
					Kind:   dram.ActSingle,
					Timing: r.base,
				})
				atomic.AddInt64(&r.RowRefreshes, 1)
			}
		}
	}
}

// RefreshMultiplier implements Mechanism: strong rows refresh at a doubled
// window, like CROW-ref.
func (r *RAIDR) RefreshMultiplier() int { return 2 }

// NextCopy pops a pending weak-row refresh for the channel; the controller
// executes it as an ACT followed by a full-tRAS PRE.
func (r *RAIDR) NextCopy(channel int) (CopyOp, bool) {
	q := r.pending[channel]
	if len(q) == 0 {
		return CopyOp{}, false
	}
	op := q[0]
	r.pending[channel] = q[1:]
	return op, true
}

// HasPendingOps reports whether the channel has weak-row refreshes queued,
// without popping any; the controller's idle-skip logic uses it to decide
// whether NextCopy could produce work.
func (r *RAIDR) HasPendingOps(channel int) bool {
	return len(r.pending[channel]) > 0
}

// RAIDRStorageKB estimates RAIDR's controller storage: Bloom filters
// identifying the weak rows (~10 bits per weak row at a 1 % false-positive
// rate; RAIDR reports 1.25 KB for a 32 GiB system).
func RAIDRStorageKB(weakRows int) float64 {
	return float64(weakRows) * 10 / 8 / 1000
}
