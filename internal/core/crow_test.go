package core

import (
	"testing"

	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

func newTestCROW(copyRows int) *CROW {
	g := dram.Std(copyRows)
	t := dram.LPDDR4(dram.Density8Gb, 64, g)
	return NewCROW(1, g, t)
}

func retGeo(g dram.Geometry, channels int) retention.Geometry {
	return retention.Geometry{
		Channels: channels, Ranks: g.Ranks, Banks: g.Banks,
		Subarrays: g.SubarraysPerBank(), RowsPerSubarray: g.RowsPerSubarray,
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := newTestCROW(8)
	c.Cache = true
	a := dram.Addr{Row: 42}

	d := c.PlanActivate(a, 0)
	if d.Kind != dram.ActCopy {
		t.Fatalf("first activation must be ACT-c, got %v", d.Kind)
	}
	if d.Timing != c.Crow.Copy {
		t.Errorf("ACT-c must use the Copy plan")
	}
	c.OnActivate(a, d, 0)
	// Early precharge leaves the pair partially restored.
	c.OnPrecharge(a, a.Row, false, 100)

	d2 := c.PlanActivate(a, 200)
	if d2.Kind != dram.ActTwo {
		t.Fatalf("second activation must be ACT-t, got %v", d2.Kind)
	}
	if d2.Timing != c.Crow.TwoPartial {
		t.Errorf("partially-restored hit must use TwoPartial timings")
	}
	c.OnActivate(a, d2, 200)
	// Precharge past full restoration upgrades the entry.
	c.OnPrecharge(a, a.Row, true, 400)
	d3 := c.PlanActivate(a, 500)
	if d3.Timing != c.Crow.TwoFull {
		t.Errorf("fully-restored hit must use TwoFull timings (-38%% tRCD)")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Copies != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLazyEvictionSkipsAllocationOnPartialVictim(t *testing.T) {
	c := newTestCROW(1)
	c.Cache = true
	a := dram.Addr{Row: 1}
	b := dram.Addr{Row: 2} // same subarray
	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, false, 50) // partial
	// Default policy: b is simply not cached while the only victim is
	// partially restored.
	d2 := c.PlanActivate(b, 100)
	if d2.RestoreFirst || d2.Kind != dram.ActSingle {
		t.Fatalf("lazy policy must skip allocation, got %+v", d2)
	}
	if c.Table.Lookup(a) != 0 {
		t.Error("a must stay cached")
	}
}

func TestCacheEvictionRequiresRestoreOfPartialVictim(t *testing.T) {
	c := newTestCROW(1) // one way per subarray
	c.Cache = true
	c.EagerRestore = true
	a := dram.Addr{Row: 1}
	b := dram.Addr{Row: 2} // same subarray

	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, false, 50) // partial

	// Activating b must first demand a full restore of a's pair.
	d2 := c.PlanActivate(b, 100)
	if !d2.RestoreFirst {
		t.Fatal("evicting a partially-restored pair must demand RestoreFirst")
	}
	if d2.RestoreRow != a.Row || d2.RestoreCopyRow != 0 {
		t.Errorf("restore target = row %d way %d, want row %d way 0", d2.RestoreRow, d2.RestoreCopyRow, a.Row)
	}
	if d2.RestoreTiming != c.Crow.TwoRestore {
		t.Error("restore op must use the TwoRestore plan")
	}
	// The controller performs the restore as an ACT-t.
	restore := ActDecision{Kind: dram.ActTwo, CopyRow: d2.RestoreCopyRow, Timing: d2.RestoreTiming, RestoreFirst: true}
	c.OnActivate(a, restore, 100)
	c.OnPrecharge(a, a.Row, true, 200)
	if c.Stats.RestoreOps != 1 {
		t.Errorf("RestoreOps = %d, want 1", c.Stats.RestoreOps)
	}

	// Retry: now the victim is fully restored and evictable.
	d3 := c.PlanActivate(b, 300)
	if d3.RestoreFirst || d3.Kind != dram.ActCopy {
		t.Fatalf("after restore, activation of b must be ACT-c, got %+v", d3)
	}
	c.OnActivate(b, d3, 300)
	if c.Stats.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Stats.Evictions)
	}
	if c.Table.Lookup(a) != -1 {
		t.Error("a must be evicted")
	}
	if c.Table.Lookup(b) != 0 {
		t.Error("b must occupy way 0")
	}
}

func TestFullyRestoredVictimEvictsWithoutRestore(t *testing.T) {
	c := newTestCROW(1)
	c.Cache = true
	a := dram.Addr{Row: 1}
	b := dram.Addr{Row: 2}
	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, true, 100) // fully restored
	d2 := c.PlanActivate(b, 200)
	if d2.RestoreFirst {
		t.Error("fully-restored victims need no restore op")
	}
	if d2.Kind != dram.ActCopy {
		t.Errorf("want ACT-c, got %v", d2.Kind)
	}
}

func TestLRUSelectsOldestWay(t *testing.T) {
	c := newTestCROW(2)
	c.Cache = true
	rows := []dram.Addr{{Row: 1}, {Row: 2}, {Row: 3}}
	for i, a := range rows[:2] {
		d := c.PlanActivate(a, int64(i*100))
		c.OnActivate(a, d, int64(i*100))
		c.OnPrecharge(a, a.Row, true, int64(i*100+50))
	}
	// Touch row 1 again so row 2 becomes LRU.
	d := c.PlanActivate(rows[0], 1000)
	if d.Kind != dram.ActTwo {
		t.Fatalf("row 1 must hit, got %v", d.Kind)
	}
	c.OnActivate(rows[0], d, 1000)
	c.OnPrecharge(rows[0], rows[0].Row, true, 1100)

	d3 := c.PlanActivate(rows[2], 2000)
	if d3.Kind != dram.ActCopy {
		t.Fatalf("row 3 must miss, got %v", d3.Kind)
	}
	c.OnActivate(rows[2], d3, 2000)
	if c.Table.Lookup(rows[1]) != -1 {
		t.Error("row 2 (LRU) must be evicted")
	}
	if c.Table.Lookup(rows[0]) == -1 {
		t.Error("row 1 (MRU) must survive")
	}
}

func TestRefRemapRedirectsActivation(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Ref = true
	prof := retention.FixedProfile(retGeo(g, 1), 3, 7)
	c.LoadProfile(prof)

	weakRow := prof.Weak[0][0][0][0][0]
	a := dram.Addr{Row: weakRow}
	d := c.PlanActivate(a, 0)
	if d.Kind != dram.ActCopyRow {
		t.Fatalf("weak row must be remapped to a copy row, got %v", d.Kind)
	}
	if d.Timing != tm.Base() {
		t.Error("remapped activations use baseline timings")
	}
	if c.RefreshMultiplier() != 2 {
		t.Error("CROW-ref must double the refresh window")
	}
	// A strong row activates normally.
	strong := dram.Addr{Row: 500}
	for _, w := range prof.Weak[0][0][0][0] {
		if w == 500 {
			t.Skip("unlucky profile")
		}
	}
	if d := c.PlanActivate(strong, 0); d.Kind != dram.ActSingle {
		t.Errorf("strong row must activate normally, got %v", d.Kind)
	}
}

func TestRefFallbackWhenSubarrayOverflows(t *testing.T) {
	g := dram.Std(2) // only two copy rows
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Ref = true
	c.LoadProfile(retention.FixedProfile(retGeo(g, 1), 3, 7)) // 3 weak > 2 ways
	if !c.Stats.Fallback {
		t.Error("overflowing a subarray must trigger the fallback")
	}
	if c.RefreshMultiplier() != 1 {
		t.Error("fallback must revert to the default refresh interval")
	}
}

func TestCombinedCacheUsesRemainingWays(t *testing.T) {
	g := dram.Std(4)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Cache = true
	c.Ref = true
	c.LoadProfile(retention.FixedProfile(retGeo(g, 1), 3, 7))

	// Only one way remains for caching in each subarray.
	a := dram.Addr{Row: findStrongRow(t, c, 0)}
	d := c.PlanActivate(a, 0)
	if d.Kind != dram.ActCopy {
		t.Fatalf("strong row must be cacheable, got %v", d.Kind)
	}
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, true, 100)
	b := dram.Addr{Row: findStrongRowExcept(t, c, 0, a.Row)}
	d2 := c.PlanActivate(b, 200)
	if d2.Kind != dram.ActCopy {
		t.Fatalf("second strong row must evict the single cache way, got %v", d2.Kind)
	}
	c.OnActivate(b, d2, 200)
	// Ref entries must be untouched.
	set := c.Table.Set(a)
	refs := 0
	for _, e := range set {
		if e.Allocated && e.Kind == EntryRef {
			refs++
		}
	}
	if refs != 3 {
		t.Errorf("ref entries = %d, want 3 (pinned)", refs)
	}
}

func TestHammerRemapsVictims(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.HammerThreshold = 5
	hammered := dram.Addr{Row: 100}
	for i := 0; i < 5; i++ {
		d := c.PlanActivate(hammered, int64(i))
		c.OnActivate(hammered, d, int64(i))
	}
	if c.Stats.HamRemaps != 2 {
		t.Fatalf("HamRemaps = %d, want 2 (rows 99 and 101)", c.Stats.HamRemaps)
	}
	// Until the ACT-c data copy executes, the copy row is stale: victim
	// activations must perform the copy, not redirect to the copy row.
	for _, vr := range []int{99, 101} {
		d := c.PlanActivate(dram.Addr{Row: vr}, 100)
		if d.Kind != dram.ActCopy {
			t.Errorf("victim row %d with pending copy must plan ACT-c, got %v", vr, d.Kind)
		}
	}
	// The data copies must be queued for the controller.
	ops := 0
	for {
		op, ok := c.NextCopy(0)
		if !ok {
			break
		}
		// Simulate the controller completing the copy: ACT-c then a
		// fully-restored precharge.
		c.OnPrecharge(op.Addr, op.Addr.Row, true, 200)
		ops++
	}
	if ops != 2 {
		t.Errorf("pending copies = %d, want 2", ops)
	}
	// With the copies done, victim activations redirect to the copy rows.
	for _, vr := range []int{99, 101} {
		d := c.PlanActivate(dram.Addr{Row: vr}, 300)
		if d.Kind != dram.ActCopyRow {
			t.Errorf("victim row %d must be remapped after the copy, got %v", vr, d.Kind)
		}
	}
	// Counters reset when the refresh counter wraps.
	c.OnRefreshRows(0, 0, -1, 0, 8)
	for i, n := range c.hammerCounts[0] {
		if n != 0 {
			t.Errorf("hammer counter %d = %d after the refresh-window boundary, want 0", i, n)
			break
		}
	}
}

func TestHammerAtBankEdge(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.HammerThreshold = 2
	edge := dram.Addr{Row: 0}
	for i := 0; i < 2; i++ {
		d := c.PlanActivate(edge, int64(i))
		c.OnActivate(edge, d, int64(i))
	}
	if c.Stats.HamRemaps != 1 {
		t.Errorf("HamRemaps = %d, want 1 (row -1 does not exist)", c.Stats.HamRemaps)
	}
}

func TestRefreshRestoresCachedPairs(t *testing.T) {
	c := newTestCROW(8)
	c.Cache = true
	a := dram.Addr{Row: 3}
	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, false, 50) // partial
	c.OnRefreshRows(0, 0, -1, 0, 8)    // refreshes rows 0..7
	d2 := c.PlanActivate(a, 100)
	if d2.Timing != c.Crow.TwoFull {
		t.Error("refresh must fully restore in-range cached pairs")
	}
}

func TestDynamicRemap(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Ref = true
	a := dram.Addr{Row: 77}
	if !c.RemapDynamic(a) {
		t.Fatal("dynamic remap must succeed with free ways")
	}
	if !c.RemapDynamic(a) {
		t.Error("remapping an already-remapped row is a no-op success")
	}
	d := c.PlanActivate(a, 0)
	if d.Kind != dram.ActCopy {
		t.Errorf("remapped row with pending copy must plan ACT-c, got %v", d.Kind)
	}
	op, ok := c.NextCopy(0)
	if !ok || op.Addr.Row != 77 {
		t.Fatal("dynamic remap must queue exactly one data copy")
	}
	if _, ok := c.NextCopy(0); ok {
		t.Error("no second pending copy expected")
	}
	// Complete the copy: the remapped row then redirects to its copy row.
	c.OnPrecharge(op.Addr, op.Addr.Row, true, 100)
	d = c.PlanActivate(a, 200)
	if d.Kind != dram.ActCopyRow {
		t.Errorf("remapped row must redirect after the copy, got %v", d.Kind)
	}
}

func TestIdealMechanism(t *testing.T) {
	tm := dram.LPDDR4(dram.Density8Gb, 64, dram.Std(8))
	i := &Ideal{T: tm}
	d := i.PlanActivate(dram.Addr{Row: 9}, 0)
	if d.Kind != dram.ActTwo {
		t.Error("ideal CROW-cache always activates with ACT-t")
	}
	if i.RefreshMultiplier() != 1 {
		t.Error("refresh stays on unless NoRefresh")
	}
	i.NoRefresh = true
	if i.RefreshMultiplier() != 0 {
		t.Error("NoRefresh must disable refresh")
	}
}

func TestBaselineMechanism(t *testing.T) {
	tm := dram.LPDDR4(dram.Density8Gb, 64, dram.Std(0))
	b := &Baseline{T: tm}
	d := b.PlanActivate(dram.Addr{Row: 1}, 0)
	if d.Kind != dram.ActSingle || d.Timing != tm.Base() {
		t.Errorf("baseline must use plain ACT: %+v", d)
	}
	if b.RefreshMultiplier() != 1 {
		t.Error("baseline refresh multiplier is 1")
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %f, want 0.75", s.HitRate())
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Error("empty stats hit rate is 0")
	}
}

func findStrongRow(t *testing.T, c *CROW, sub int) int {
	t.Helper()
	g := c.Table.Geo
	for r := sub * g.RowsPerSubarray; r < (sub+1)*g.RowsPerSubarray; r++ {
		if c.Table.Lookup(dram.Addr{Row: r}) == -1 {
			return r
		}
	}
	t.Fatal("no strong row found")
	return -1
}

func findStrongRowExcept(t *testing.T, c *CROW, sub, except int) int {
	t.Helper()
	g := c.Table.Geo
	for r := sub * g.RowsPerSubarray; r < (sub+1)*g.RowsPerSubarray; r++ {
		if r != except && c.Table.Lookup(dram.Addr{Row: r}) == -1 {
			return r
		}
	}
	t.Fatal("no strong row found")
	return -1
}
