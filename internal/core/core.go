// Package core implements the CROW substrate (Section 3 of the paper): copy
// rows, the CROW-table, and the mechanisms built on top of them —
// CROW-cache (Section 4.1), CROW-ref (Section 4.2) and the RowHammer
// mitigation (Section 4.3).
//
// A Mechanism plugs into the memory controller at the activation decision
// point: before activating a regular row, the controller asks the mechanism
// how to activate it (plain ACT, CROW's ACT-t / ACT-c, or a remapped
// copy-row activation), and notifies it of activations, precharges and
// refreshes so it can maintain the CROW-table's restore state.
package core

import "crowdram/internal/dram"

// ActDecision tells the controller how to activate a regular row.
type ActDecision struct {
	// Kind selects the activation command variant.
	Kind dram.ActKind
	// CopyRow is the copy-row index within the subarray for ActTwo,
	// ActCopy and ActCopyRow.
	CopyRow int
	// Timing is the per-activation timing plan.
	Timing dram.ActTimings

	// RestoreFirst indicates that, before this row can be cached, the
	// controller must fully restore a partially-restored victim pair
	// (Section 4.1.4): activate RestoreRow with ACT-t under
	// RestoreTiming, precharge it, then retry.
	RestoreFirst   bool
	RestoreRow     int // regular-row index within the bank
	RestoreCopyRow int
	RestoreTiming  dram.ActTimings
}

// Mechanism is the controller-side interface of a CROW-based (or competing)
// mechanism. Implementations must be deterministic. One instance serves
// every channel of a system, and the sharded tick loop calls it from
// per-channel goroutines concurrently — implementations must keep
// channel-addressed state disjoint (indexed by Addr.Channel, as the table's
// per-channel sets and the pending-copy queues are) and update any counters
// shared across channels atomically.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string

	// PlanActivate decides how to activate regular row a.Row. The
	// controller calls it exactly once per activation it performs.
	PlanActivate(a dram.Addr, cycle int64) ActDecision

	// OnActivate notifies the mechanism that the decision was executed.
	OnActivate(a dram.Addr, d ActDecision, cycle int64)

	// OnPrecharge notifies the mechanism that the subarray holding
	// openRow (a regular-row index within the bank) was precharged, and
	// whether the activation lasted long enough to fully restore it.
	OnPrecharge(a dram.Addr, openRow int, fullyRestored bool, cycle int64)

	// OnRefreshRows notifies the mechanism that rows
	// [startRow, startRow+n) were refreshed in every bank of the rank
	// (bank == -1, all-bank REFab) or in one bank (per-bank REFpb).
	OnRefreshRows(channel, rank, bank, startRow, n int)

	// RefreshMultiplier scales the refresh interval: 1 for the baseline,
	// 2 when CROW-ref extends the window, 0 to disable refresh entirely
	// (the "no refresh" ideal).
	RefreshMultiplier() int
}

// Baseline is the conventional-DRAM mechanism: every activation is a plain
// single-row ACT at standard timings.
type Baseline struct {
	T dram.Timing
}

// Name implements Mechanism.
func (b *Baseline) Name() string { return "baseline" }

// PlanActivate implements Mechanism.
func (b *Baseline) PlanActivate(dram.Addr, int64) ActDecision {
	return ActDecision{Kind: dram.ActSingle, Timing: b.T.Base()}
}

// OnActivate implements Mechanism.
func (b *Baseline) OnActivate(dram.Addr, ActDecision, int64) {}

// OnPrecharge implements Mechanism.
func (b *Baseline) OnPrecharge(dram.Addr, int, bool, int64) {}

// OnRefreshRows implements Mechanism.
func (b *Baseline) OnRefreshRows(int, int, int, int, int) {}

// RefreshMultiplier implements Mechanism.
func (b *Baseline) RefreshMultiplier() int { return 1 }

// Ideal is the hypothetical configuration the paper compares against in
// Figures 8 and 14: a CROW-cache with a 100 % CROW-table hit rate (every
// activation is an ACT-t at reduced latency, with no copy or restore
// overhead), optionally with refresh disabled entirely.
type Ideal struct {
	T         dram.Timing
	NoRefresh bool
}

// Name implements Mechanism.
func (i *Ideal) Name() string { return "ideal" }

// PlanActivate implements Mechanism.
func (i *Ideal) PlanActivate(dram.Addr, int64) ActDecision {
	crow := i.T.CROW()
	return ActDecision{Kind: dram.ActTwo, Timing: crow.TwoFull}
}

// OnActivate implements Mechanism.
func (i *Ideal) OnActivate(dram.Addr, ActDecision, int64) {}

// OnPrecharge implements Mechanism.
func (i *Ideal) OnPrecharge(dram.Addr, int, bool, int64) {}

// OnRefreshRows implements Mechanism.
func (i *Ideal) OnRefreshRows(int, int, int, int, int) {}

// RefreshMultiplier implements Mechanism.
func (i *Ideal) RefreshMultiplier() int {
	if i.NoRefresh {
		return 0
	}
	return 1
}

// Unwrap peels mechanism wrappers (mitigation shields and the like) that
// expose their inner mechanism via an Unwrap method, returning the innermost
// mechanism. Type asserts against concrete mechanisms (e.g. *CROW) should go
// through it so wrapping stays transparent.
func Unwrap(m Mechanism) Mechanism {
	for {
		u, ok := m.(interface{ Unwrap() Mechanism })
		if !ok {
			return m
		}
		m = u.Unwrap()
	}
}
