package core

import (
	"testing"

	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

func TestSharedTableIndexing(t *testing.T) {
	g := dram.Std(8)
	tb := NewSharedTable(1, g, 4)
	// Subarrays 0..3 share set 0; subarray 4 starts set 1.
	a0 := dram.Addr{Row: 0}                     // subarray 0
	a3 := dram.Addr{Row: 3 * g.RowsPerSubarray} // subarray 3
	a4 := dram.Addr{Row: 4 * g.RowsPerSubarray} // subarray 4
	if &tb.Set(a0)[0] != &tb.Set(a3)[0] {
		t.Error("subarrays 0 and 3 must share a set at group 4")
	}
	if &tb.Set(a0)[0] == &tb.Set(a4)[0] {
		t.Error("subarray 4 must use a different set")
	}
	if tb.SubTag(a0) != 0 || tb.SubTag(a3) != 3 || tb.SubTag(a4) != 0 {
		t.Errorf("SubTags = %d/%d/%d, want 0/3/0", tb.SubTag(a0), tb.SubTag(a3), tb.SubTag(a4))
	}
}

func TestSharedLookupDisambiguatesSubarrays(t *testing.T) {
	g := dram.Std(8)
	tb := NewSharedTable(1, g, 4)
	// Row 5 of subarray 1 cached.
	a := dram.Addr{Row: 1*g.RowsPerSubarray + 5}
	tb.Set(a)[0] = Entry{Allocated: true, RegularRow: 5, SubTag: 1, Kind: EntryCache}
	if tb.Lookup(a) != 0 {
		t.Error("lookup must hit the cached row")
	}
	// Row 5 of subarray 2 (same set, same in-subarray index) must miss.
	b := dram.Addr{Row: 2*g.RowsPerSubarray + 5}
	if tb.Lookup(b) != -1 {
		t.Error("same row index in a different subarray of the group must miss")
	}
	if got := tb.AbsoluteRow(b, tb.Set(a)[0]); got != a.Row {
		t.Errorf("AbsoluteRow = %d, want %d", got, a.Row)
	}
}

func TestSharedStorageBits(t *testing.T) {
	g := dram.Std(8)
	full := SharedStorageBits(g, 1, 1)
	if full != StorageBits(g, 1) {
		t.Error("share=1 must equal the unshared storage")
	}
	shared4 := SharedStorageBits(g, 1, 4)
	// 4x fewer sets, +2 tag bits per entry: 13/11 / 4 of the original.
	want := full / 4 * 13 / 11
	if shared4 != want {
		t.Errorf("shared storage = %d bits, want %d", shared4, want)
	}
	if float64(shared4)/float64(full) > 0.30 {
		t.Errorf("sharing across 4 must cut storage to ~30%% (paper: 'approximately a factor of 4')")
	}
}

func TestSharedCROWCacheEndToEnd(t *testing.T) {
	g := dram.Std(2)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROWShared(1, g, tm, 4)
	c.Cache = true
	// Two rows in different subarrays of the same group now contend for
	// the same 2 ways.
	a := dram.Addr{Row: 7}
	b := dram.Addr{Row: g.RowsPerSubarray + 9}
	x := dram.Addr{Row: 2*g.RowsPerSubarray + 11}
	for _, addr := range []dram.Addr{a, b} {
		d := c.PlanActivate(addr, 0)
		if d.Kind != dram.ActCopy {
			t.Fatalf("want ACT-c for %v, got %v", addr, d.Kind)
		}
		c.OnActivate(addr, d, 0)
		c.OnPrecharge(addr, addr.Row, true, 10)
	}
	// Both hit.
	if d := c.PlanActivate(a, 20); d.Kind != dram.ActTwo {
		t.Errorf("a must hit, got %v", d.Kind)
	}
	// Third row evicts the LRU (a).
	d := c.PlanActivate(x, 30)
	if d.Kind != dram.ActCopy {
		t.Fatalf("x must allocate, got %v", d.Kind)
	}
	c.OnActivate(x, d, 30)
	if c.Table.Lookup(a) != -1 {
		t.Error("a (LRU across the shared group) must be evicted")
	}
	if c.Table.Lookup(b) == -1 || c.Table.Lookup(x) == -1 {
		t.Error("b and x must be resident")
	}
}

func TestVictimWayPrefersFullyRestored(t *testing.T) {
	set := []Entry{
		{Allocated: true, Kind: EntryCache, FullyRestored: false, lastUse: 1},
		{Allocated: true, Kind: EntryCache, FullyRestored: true, lastUse: 5},
		{Allocated: true, Kind: EntryCache, FullyRestored: true, lastUse: 3},
	}
	if got := VictimWay(set); got != 2 {
		t.Errorf("VictimWay = %d, want 2 (LRU among fully-restored)", got)
	}
	// Only partial entries left.
	set[1].FullyRestored = false
	set[2].FullyRestored = false
	if got := VictimWay(set); got != 0 {
		t.Errorf("VictimWay = %d, want 0 (LRU partial)", got)
	}
	// Pinned entries are never victims.
	for i := range set {
		set[i].Kind = EntryRef
	}
	if VictimWay(set) != -1 {
		t.Error("fully pinned set has no victim")
	}
}

func TestScrubQueue(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROWShared(1, g, tm, 1)
	c.Cache = true
	c.Scrub = true
	a := dram.Addr{Row: 3}
	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, false, 50) // partial -> queued for scrub

	op, ok := c.NextScrub(0)
	if !ok {
		t.Fatal("a partial pair must be scheduled for scrubbing")
	}
	if op.Kind != dram.ActTwo || op.Addr.Row != a.Row {
		t.Errorf("scrub op = %+v", op)
	}
	if op.Timing != c.Crow.TwoRestore {
		t.Error("scrub must use the full-restore plan")
	}
	// Requeue, then mark restored: the stale candidate must be skipped.
	c.RequeueScrub(0, op.Addr)
	c.OnPrecharge(a, a.Row, true, 100)
	if _, ok := c.NextScrub(0); ok {
		t.Error("restored pairs must not be scrubbed")
	}
}

func TestScrubDisabledByDefault(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Cache = true
	a := dram.Addr{Row: 3}
	d := c.PlanActivate(a, 0)
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, false, 50)
	if _, ok := c.NextScrub(0); ok {
		t.Error("NoScrub must keep the scrub queue empty")
	}
}

func TestFullRestoreAblation(t *testing.T) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := NewCROW(1, g, tm)
	c.Cache = true
	c.FullRestore = true
	a := dram.Addr{Row: 3}
	d := c.PlanActivate(a, 0)
	if d.Timing != c.Crow.CopyFull {
		t.Error("FullRestore copies must use the CopyFull plan")
	}
	c.OnActivate(a, d, 0)
	c.OnPrecharge(a, a.Row, true, 100)
	d2 := c.PlanActivate(a, 200)
	if d2.Timing.RAS != c.Crow.TwoRestore.RAS || d2.Timing.RCD != c.Crow.TwoFull.RCD {
		t.Errorf("FullRestore hit plan = %+v", d2.Timing)
	}
	if d2.Timing.RAS != d2.Timing.RASFull {
		t.Error("FullRestore plans never terminate early")
	}
}

func TestRAIDRMechanism(t *testing.T) {
	g := dram.Std(0)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	prof := retention.FixedProfile(retention.Geometry{
		Channels: 1, Ranks: g.Ranks, Banks: g.Banks,
		Subarrays: g.SubarraysPerBank(), RowsPerSubarray: g.RowsPerSubarray,
	}, 1, 3)
	r := NewRAIDR(1, g, tm, prof)
	if r.RefreshMultiplier() != 2 {
		t.Error("RAIDR doubles the bulk refresh window")
	}
	if d := r.PlanActivate(dram.Addr{Row: 1}, 0); d.Kind != dram.ActSingle {
		t.Error("RAIDR does not remap rows")
	}
	// Simulate the bulk refresh stream covering a full window: every
	// weak row must receive exactly one interleaved row refresh.
	for rows := 0; rows < g.RowsPerBank; rows += tm.RowsPerRef {
		r.OnRefreshRows(0, 0, -1, rows, tm.RowsPerRef)
	}
	wantOps := int64(g.Banks * g.SubarraysPerBank()) // 1 weak row each
	if r.RowRefreshes != wantOps {
		t.Fatalf("RowRefreshes = %d, want %d after a full sweep", r.RowRefreshes, wantOps)
	}
	op, ok := r.NextCopy(0)
	if !ok || op.Kind != dram.ActSingle {
		t.Fatalf("pending op = %+v, ok=%v", op, ok)
	}
	if op.Timing != tm.Base() {
		t.Error("weak-row refreshes run at baseline timings")
	}
}

func TestRAIDRStorage(t *testing.T) {
	if got := RAIDRStorageKB(1000); got != 1.25 {
		t.Errorf("RAIDRStorageKB(1000) = %.3f, want 1.25 (paper [64])", got)
	}
}
