package core

import (
	"math"
	"testing"
	"testing/quick"

	"crowdram/internal/dram"
)

func TestEntryBits(t *testing.T) {
	// 512 regular rows -> 9-bit RegularRowID, +1 special, +1 allocated.
	if got := EntryBits(512, 1); got != 11 {
		t.Errorf("EntryBits(512,1) = %d, want 11", got)
	}
	if got := EntryBits(1024, 2); got != 13 {
		t.Errorf("EntryBits(1024,2) = %d, want 13", got)
	}
}

func TestStoragePaperValue(t *testing.T) {
	// Section 6.1: single channel, 512 regular rows/subarray, 1024
	// subarrays, 8 copy rows/subarray -> 11.3 KB.
	g := dram.Std(8)
	if got := StorageBits(g, 1); got != 11*8*1024 {
		t.Errorf("StorageBits = %d, want %d", got, 11*8*1024)
	}
	if got := StorageKB(g, 1); math.Abs(got-11.264) > 0.01 {
		t.Errorf("StorageKB = %.3f, want 11.264 (paper: 11.3 KiB)", got)
	}
}

func TestAccessTimePaperValue(t *testing.T) {
	got := AccessTimeNs(dram.Std(8))
	if math.Abs(got-0.14) > 0.02 {
		t.Errorf("AccessTimeNs = %.3f, want ≈ 0.14 (paper's CACTI result)", got)
	}
}

func TestTableSetIndependence(t *testing.T) {
	g := dram.Std(2)
	tb := NewTable(2, g)
	a := dram.Addr{Channel: 0, Bank: 0, Row: 0}
	b := dram.Addr{Channel: 1, Bank: 0, Row: 0}
	c := dram.Addr{Channel: 0, Bank: 1, Row: 0}
	d := dram.Addr{Channel: 0, Bank: 0, Row: g.RowsPerSubarray} // next subarray
	tb.Set(a)[0] = Entry{Allocated: true, RegularRow: 0, Kind: EntryCache}
	for _, other := range []dram.Addr{b, c, d} {
		if tb.Set(other)[0].Allocated {
			t.Errorf("sets must be independent; %+v aliases %+v", other, a)
		}
	}
	if tb.Lookup(a) != 0 {
		t.Error("Lookup must find the allocated entry")
	}
	if tb.Lookup(b) != -1 || tb.Lookup(d) != -1 {
		t.Error("Lookup must miss in other sets")
	}
}

func TestLookupMatchesRowWithinSubarray(t *testing.T) {
	g := dram.Std(4)
	tb := NewTable(1, g)
	// Row 1000 lives in subarray 1, index 488.
	a := dram.Addr{Row: 1000}
	tb.Set(a)[2] = Entry{Allocated: true, RegularRow: 488, Kind: EntryCache}
	if got := tb.Lookup(a); got != 2 {
		t.Errorf("Lookup = %d, want 2", got)
	}
	// Same in-subarray index in a different subarray must miss.
	if got := tb.Lookup(dram.Addr{Row: 488}); got != -1 {
		t.Errorf("Lookup in subarray 0 = %d, want -1", got)
	}
}

func TestFreeAndLRUWay(t *testing.T) {
	set := make([]Entry, 4)
	if FreeWay(set) != 0 {
		t.Error("first free way is 0")
	}
	for w := range set {
		set[w] = Entry{Allocated: true, Kind: EntryCache, lastUse: int64(10 - w)}
	}
	if FreeWay(set) != -1 {
		t.Error("no free way in a full set")
	}
	if got := LRUWay(set); got != 3 {
		t.Errorf("LRUWay = %d, want 3 (lastUse 7)", got)
	}
	// Pinned ways (ref/hammer) are not eviction candidates.
	set[3].Kind = EntryRef
	if got := LRUWay(set); got != 2 {
		t.Errorf("LRUWay = %d, want 2 after pinning way 3", got)
	}
	for w := range set {
		set[w].Kind = EntryRef
	}
	if LRUWay(set) != -1 {
		t.Error("fully pinned set has no LRU victim")
	}
}

// TestEntryBitsMonotonic: more rows or special bits never shrink the entry.
func TestEntryBitsMonotonic(t *testing.T) {
	f := func(rowsRaw uint8, special uint8) bool {
		rows := int(rowsRaw)%1024 + 2
		s := int(special % 4)
		return EntryBits(rows+1, s) >= EntryBits(rows, s) &&
			EntryBits(rows, s+1) == EntryBits(rows, s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
