package core

import (
	"testing"

	"crowdram/internal/dram"
)

// BenchmarkHammerCounting exercises the crow-hammer activation-counting hot
// path: every activation under HammerThreshold bumps a per-row counter keyed
// by (rank, bank, row), and each refresh sweep start resets the channel's
// counters. The access pattern mirrors the attack workloads: a few aggressor
// rows hammered hard, a scatter of background rows touched once — the mixed
// hit/miss profile where a map's hashing and a flat array diverge most.
func BenchmarkHammerCounting(b *testing.B) {
	g := dram.Std(8)
	t := dram.LPDDR4(8, 64, g)
	c := NewCROW(1, g, t)
	c.HammerThreshold = 1 << 30 // count only: isolate bookkeeping from remaps
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 7 aggressor hits on two rows, 1 cold background row.
		base := (i * 2) % (g.RowsPerBank - 4)
		for k := 0; k < 7; k++ {
			a := dram.Addr{Bank: k % g.Banks, Row: 8 + k%2*2}
			c.OnActivate(a, c.PlanActivate(a, int64(i)), int64(i))
		}
		a := dram.Addr{Bank: i % g.Banks, Row: base}
		c.OnActivate(a, c.PlanActivate(a, int64(i)), int64(i))
		if i%4096 == 0 {
			// Refresh-sweep wrap: reset the window's counters.
			c.OnRefreshRows(0, 0, 0, 0, t.RowsPerRef)
		}
	}
}
