package core

import "crowdram/internal/dram"

// EntryKind records which mechanism owns a CROW-table entry (the paper's
// Special field, Section 3.3: one bit distinguishes CROW-cache from
// CROW-ref; the RowHammer mitigation reuses the remap behaviour).
type EntryKind uint8

// Entry owners.
const (
	EntryFree EntryKind = iota
	// EntryCache: the copy row duplicates a recently-activated regular
	// row for low-latency ACT-t activation (CROW-cache).
	EntryCache
	// EntryRef: the copy row permanently replaces a retention-weak
	// regular row (CROW-ref).
	EntryRef
	// EntryHammer: the copy row replaces a RowHammer victim row.
	EntryHammer
)

// Entry is one CROW-table entry, tracking the state of one copy row
// (Figure 4: Allocated, RegularRowID, Special).
type Entry struct {
	Allocated bool
	// RegularRow is the index, within the subarray, of the regular row
	// this copy row duplicates or replaces.
	RegularRow int
	// SubTag identifies which subarray of a sharing group the entry
	// belongs to (always 0 when the table is not shared; Section 6.1's
	// storage optimization shares one entry set across several
	// subarrays).
	SubTag int
	Kind   EntryKind
	// FullyRestored tracks whether the pair was last precharged after a
	// full restoration (the paper's isFullyRestored bit, Section 4.1.4).
	FullyRestored bool
	// CopyPending marks a CROW-ref/RowHammer remap whose ACT-c data copy
	// has not executed yet. Until it clears, the copy row holds stale
	// data: activations of the regular row must perform the copy (the
	// mechanism plans them as ACT-c) instead of being redirected to the
	// copy row.
	CopyPending bool
	lastUse     int64
}

// Touch updates the entry's LRU timestamp.
func (e *Entry) Touch(cycle int64) { e.lastUse = cycle }

// Table is the CROW-table (Section 3.3): one entry per copy row in the
// system, set-associative with one set per subarray — or, with ShareGroup
// > 1, one set shared by that many adjacent subarrays (the Section 6.1
// storage optimization, which cuts table storage by roughly the sharing
// factor at the cost of limiting how many copy rows can be in use at once).
type Table struct {
	Geo      dram.Geometry
	Channels int
	// ShareGroup is the number of adjacent subarrays sharing one entry
	// set (1 = dedicated sets).
	ShareGroup int
	sets       [][]Entry
	setsPer    int // sets per channel
}

// NewTable allocates an empty CROW-table for a system of identical channels.
func NewTable(channels int, g dram.Geometry) *Table {
	return NewSharedTable(channels, g, 1)
}

// NewSharedTable allocates a CROW-table whose entry sets are shared across
// groups of `share` adjacent subarrays.
func NewSharedTable(channels int, g dram.Geometry, share int) *Table {
	if share < 1 {
		share = 1
	}
	groups := (g.SubarraysPerBank() + share - 1) / share
	setsPer := g.Ranks * g.Banks * groups
	t := &Table{Geo: g, Channels: channels, ShareGroup: share, setsPer: setsPer}
	t.sets = make([][]Entry, channels*setsPer)
	for i := range t.sets {
		t.sets[i] = make([]Entry, g.CopyRows)
	}
	return t
}

// Ways returns the table's associativity (copy rows per subarray).
func (t *Table) Ways() int { return t.Geo.CopyRows }

func (t *Table) groups() int {
	return (t.Geo.SubarraysPerBank() + t.ShareGroup - 1) / t.ShareGroup
}

// SubTag returns the tag distinguishing a.Row's subarray within its sharing
// group (always 0 for unshared tables).
func (t *Table) SubTag(a dram.Addr) int { return a.Subarray(t.Geo) % t.ShareGroup }

// AbsoluteRow reconstructs the bank-level regular-row index of an entry
// found in the set of address a (inverting the Set/SubTag split).
func (t *Table) AbsoluteRow(a dram.Addr, e Entry) int {
	group := a.Subarray(t.Geo) / t.ShareGroup
	sub := group*t.ShareGroup + e.SubTag
	return sub*t.Geo.RowsPerSubarray + e.RegularRow
}

// Set returns the entries of the (group of) subarray(s) containing a.Row.
// The returned slice aliases the table; mutations are visible.
func (t *Table) Set(a dram.Addr) []Entry {
	idx := a.Channel*t.setsPer +
		(a.Rank*t.Geo.Banks+a.Bank)*t.groups() +
		a.Subarray(t.Geo)/t.ShareGroup
	return t.sets[idx]
}

// Lookup finds the allocated entry matching a.Row (including its subarray
// tag in shared tables), returning its way index, or -1.
func (t *Table) Lookup(a dram.Addr) int {
	set := t.Set(a)
	row := t.Geo.RowInSubarray(a.Row)
	tag := t.SubTag(a)
	for w := range set {
		if set[w].Allocated && set[w].RegularRow == row && set[w].SubTag == tag {
			return w
		}
	}
	return -1
}

// FreeWay returns the index of an unallocated way in the set, or -1.
func FreeWay(set []Entry) int {
	for w := range set {
		if !set[w].Allocated {
			return w
		}
	}
	return -1
}

// LRUWay returns the least-recently-used way owned by CROW-cache, or -1 if
// every way is pinned by CROW-ref or the RowHammer mitigation.
func LRUWay(set []Entry) int {
	best := -1
	for w := range set {
		if set[w].Allocated && set[w].Kind != EntryCache {
			continue
		}
		if best == -1 || set[w].lastUse < set[best].lastUse {
			best = w
		}
	}
	return best
}

// VictimWay selects an eviction victim: the LRU among fully-restored cache
// entries if one exists (replacing it needs no restore pass, Section 4.1.4),
// otherwise the LRU partial entry. Returns -1 if every way is pinned.
func VictimWay(set []Entry) int {
	full, partial := -1, -1
	for w := range set {
		if set[w].Allocated && set[w].Kind != EntryCache {
			continue
		}
		if !set[w].Allocated || set[w].FullyRestored {
			if full == -1 || set[w].lastUse < set[full].lastUse {
				full = w
			}
			continue
		}
		if partial == -1 || set[w].lastUse < set[partial].lastUse {
			partial = w
		}
	}
	if full >= 0 {
		return full
	}
	return partial
}

// Storage overhead (Section 6.1, Equations 3 and 4).

// EntryBits returns the storage of one CROW-table entry in bits
// (Equation 3): ⌈log2(regular rows per subarray)⌉ + special + allocated.
func EntryBits(rowsPerSubarray, specialBits int) int {
	bits := 0
	for 1<<bits < rowsPerSubarray {
		bits++
	}
	return bits + specialBits + 1
}

// StorageBits returns the total CROW-table storage for one channel in bits
// (Equation 4): entry bits × copy rows per subarray × subarrays.
func StorageBits(g dram.Geometry, specialBits int) int {
	return SharedStorageBits(g, specialBits, 1)
}

// SharedStorageBits returns the per-channel table storage when one entry set
// is shared across `share` subarrays (Section 6.1): the set count shrinks by
// the sharing factor while each entry grows a ⌈log2(share)⌉-bit subarray
// tag.
func SharedStorageBits(g dram.Geometry, specialBits, share int) int {
	if share < 1 {
		share = 1
	}
	tagBits := 0
	for 1<<tagBits < share {
		tagBits++
	}
	groups := (g.SubarraysPerBank() + share - 1) / share
	sets := g.Ranks * g.Banks * groups
	return (EntryBits(g.RowsPerSubarray, specialBits) + tagBits) * g.CopyRows * sets
}

// StorageKiB returns the per-channel CROW-table storage in KiB (1024-byte
// units). For the paper's configuration (512 rows/subarray, 1024 subarrays,
// 8 copy rows, 1 special bit) this is 11.0 KiB, i.e. the paper's quoted
// "11.3 KiB" in 1000-byte kilobytes (see StorageKB).
func StorageKiB(g dram.Geometry, specialBits int) float64 {
	return float64(StorageBits(g, specialBits)) / 8 / 1024
}

// StorageKB returns the per-channel CROW-table storage in decimal kilobytes
// (11.3 for the paper's configuration).
func StorageKB(g dram.Geometry, specialBits int) float64 {
	return float64(StorageBits(g, specialBits)) / 8 / 1000
}

// AccessTimeNs approximates the CROW-table lookup latency, standing in for
// the paper's CACTI evaluation (0.14 ns for the Table 2 configuration). The
// SRAM access time grows logarithmically with the number of entries.
func AccessTimeNs(g dram.Geometry) float64 {
	entries := g.Ranks * g.Banks * g.SubarraysPerBank() * g.CopyRows
	bits := 0
	for 1<<bits < entries {
		bits++
	}
	return 0.036 + 0.008*float64(bits)
}
