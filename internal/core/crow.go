package core

import (
	"sync/atomic"

	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

// Stats counts CROW-table events. A mechanism instance is shared by every
// channel of a system, and the sharded tick loop calls into it from
// per-channel goroutines concurrently, so the counters are incremented
// atomically (addition commutes, so totals match a serial run exactly).
// Fallback is only written during setup, before any concurrent ticking.
type Stats struct {
	Hits       int64 // ACT-t activations of an existing duplicate
	Misses     int64 // activations with no matching entry
	Copies     int64 // ACT-c duplications into a copy row
	Evictions  int64 // cache entries replaced
	RestoreOps int64 // full-restore activations before eviction (4.1.4)
	RefRemaps  int64 // activations redirected to a CROW-ref copy row
	HamRemaps  int64 // victim rows remapped by the RowHammer mitigation
	Fallback   bool  // CROW-ref fell back to the default refresh interval
}

// HitRate returns the CROW-table hit rate over cache-eligible activations.
func (s *Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TableEventKind classifies one CROW-table event for observers.
type TableEventKind uint8

// CROW-table event kinds, mirroring the Stats counters one-to-one.
const (
	TableHit TableEventKind = iota
	TableMiss
	TableCopy
	TableEviction
	TableRestore
	TableRefRemap
	TableHamRemap
)

var tableEventNames = [...]string{
	"hit", "miss", "copy", "eviction", "restore", "ref-remap", "ham-remap",
}

func (k TableEventKind) String() string { return tableEventNames[k] }

// TableEvent is one CROW-table state change, cycle-attributed.
type TableEvent struct {
	Kind  TableEventKind
	Cycle int64
	Addr  dram.Addr
	Way   int // copy-row way involved, -1 when none applies
}

// TableObserver receives CROW-table events in issue order. Implementations
// must be cheap: they run on the activation path.
type TableObserver interface {
	OnTableEvent(e TableEvent)
}

// CROW is the combined CROW-substrate mechanism. Enabling Cache gives
// CROW-cache (Section 4.1); attaching a weak-row profile gives CROW-ref
// (Section 4.2); setting HammerThreshold enables the RowHammer mitigation
// (Section 4.3). All three share the CROW-table, with CROW-ref and the
// RowHammer mitigation pinning ways that CROW-cache then cannot use
// (Section 8.3).
type CROW struct {
	T     dram.Timing
	Table *Table
	Crow  dram.CROWTimings

	// Cache enables CROW-cache.
	Cache bool
	// Ref enables CROW-ref; weak rows come from the profile.
	Ref bool
	// HammerThreshold, when positive, remaps the neighbours of any row
	// activated this many times within one refresh window.
	HammerThreshold int
	// FullRestore disables early-terminated restoration (the
	// Section 4.1.3 optimization) as an ablation: every ACT-t and ACT-c
	// restores fully, so pairs never need a restore-before-evict pass,
	// but the tRAS and tWR reductions are forfeited.
	FullRestore bool

	Stats Stats

	// Obs, when non-nil, receives a TableEvent for every Stats increment.
	Obs TableObserver

	base dram.ActTimings

	// Scrub enables idle-cycle restoration scrubbing. With the default
	// lazy eviction policy it is unnecessary (and costs activation
	// energy), so it is off unless enabled for ablation.
	Scrub bool
	// EagerRestore performs the restore-before-evict pass inline when a
	// miss would evict a partially-restored pair (the paper's literal
	// Section 4.1.4 flow); by default the allocation is skipped instead
	// and the pair is restored off the critical path.
	EagerRestore bool

	// hammer activation counters per channel: a contiguous array indexed
	// by ((rank*Banks)+bank)*RowsPerBank+row, allocated lazily on the
	// first counted activation of a channel (the same flattening PR 7
	// applied to hitsServed/bankLast — maps were the last hot-path state).
	hammerCounts [][]int32
	// pendingCopies are mechanism-initiated ACT-c operations (RowHammer
	// victim duplication) awaiting issue, per channel.
	pendingCopies [][]CopyOp
	// partials lists cache entries left partially restored, per channel;
	// the controller drains it with full-restore ACT-t passes during
	// idle cycles so evictions rarely stall on a restore (the refresh
	// sweep performs the same cleanup over a full retention window).
	partials [][]dram.Addr
}

// CopyOp is a mechanism-initiated activate/precharge operation the
// controller must perform at the next opportunity: an ACT-c row duplication
// (RowHammer victim protection, dynamic CROW-ref remaps) or a plain
// row-granular refresh activation (the RAIDR baseline).
type CopyOp struct {
	Addr    dram.Addr    // regular row to operate on (Col unused)
	Kind    dram.ActKind // ActCopy for duplications, ActSingle for refreshes
	CopyRow int
	Timing  dram.ActTimings
}

// NewCROW builds the combined mechanism over a fresh CROW-table.
func NewCROW(channels int, g dram.Geometry, t dram.Timing) *CROW {
	return NewCROWShared(channels, g, t, 1)
}

// NewCROWShared builds the mechanism over a CROW-table whose entry sets are
// shared across groups of `share` subarrays (the Section 6.1 storage
// optimization).
func NewCROWShared(channels int, g dram.Geometry, t dram.Timing, share int) *CROW {
	c := &CROW{
		T:     t,
		Table: NewSharedTable(channels, g, share),
		Crow:  t.CROW(),
		base:  t.Base(),
	}
	c.hammerCounts = make([][]int32, channels)
	c.pendingCopies = make([][]CopyOp, channels)
	c.partials = make([][]dram.Addr, channels)
	return c
}

// Name implements Mechanism.
func (c *CROW) Name() string {
	switch {
	case c.Cache && c.Ref:
		return "crow-cache+ref"
	case c.Cache:
		return "crow-cache"
	case c.Ref:
		return "crow-ref"
	case c.HammerThreshold > 0:
		return "crow-hammer"
	}
	return "crow"
}

// LoadProfile installs a retention profile, remapping every weak regular row
// to a strong copy row (Section 4.2.2). If any subarray has more weak rows
// than available copy rows, CROW-ref falls back to the default refresh
// interval for the whole system (Section 4.2.1) but still remaps what fits.
func (c *CROW) LoadProfile(p *retention.Profile) {
	g := c.Table.Geo
	for ch, chw := range p.Weak {
		for rk, rkw := range chw {
			for bk, bkw := range rkw {
				for sa, weak := range bkw {
					a := dram.Addr{Channel: ch, Rank: rk, Bank: bk, Row: sa * g.RowsPerSubarray}
					set := c.Table.Set(a)
					for _, row := range weak {
						w := FreeWay(set)
						if w < 0 {
							c.Stats.Fallback = true
							break
						}
						set[w] = Entry{Allocated: true, RegularRow: row, SubTag: c.Table.SubTag(a), Kind: EntryRef, FullyRestored: true}
					}
				}
			}
		}
	}
}

// RemapDynamic remaps one newly-discovered weak row at runtime
// (Section 4.2.3, VRT support). It allocates a free copy row, queues the
// ACT-c data copy, and returns false if the subarray is out of copy rows
// (triggering the refresh-interval fallback).
func (c *CROW) RemapDynamic(a dram.Addr) bool {
	set := c.Table.Set(a)
	if w := c.Table.Lookup(a); w >= 0 {
		switch set[w].Kind {
		case EntryRef, EntryHammer:
			return true // already remapped
		case EntryCache:
			// The row is already duplicated by CROW-cache: convert the
			// entry in place (allocating a second way for the same row
			// would leave two entries racing for lookups). A fully
			// restored pair is already a coherent duplicate; a partial
			// one still needs the ACT-c.
			set[w].Kind = EntryRef
			if set[w].FullyRestored {
				return true
			}
			set[w].FullyRestored = true
			set[w].CopyPending = true
			c.pendingCopies[a.Channel] = append(c.pendingCopies[a.Channel], CopyOp{
				Addr: a, Kind: dram.ActCopy, CopyRow: w, Timing: c.Crow.CopyFull,
			})
			return true
		}
	}
	w := FreeWay(set)
	if w < 0 {
		c.Stats.Fallback = true
		return false
	}
	set[w] = Entry{Allocated: true, RegularRow: c.Table.Geo.RowInSubarray(a.Row), SubTag: c.Table.SubTag(a), Kind: EntryRef, FullyRestored: true, CopyPending: true}
	c.pendingCopies[a.Channel] = append(c.pendingCopies[a.Channel], CopyOp{
		Addr: a, Kind: dram.ActCopy, CopyRow: w, Timing: c.Crow.CopyFull,
	})
	return true
}

// PlanActivate implements Mechanism.
func (c *CROW) PlanActivate(a dram.Addr, cycle int64) ActDecision {
	set := c.Table.Set(a)
	if w := c.Table.Lookup(a); w >= 0 {
		switch set[w].Kind {
		case EntryRef, EntryHammer:
			if set[w].CopyPending {
				// The remap's data copy has not executed yet, so the
				// copy row is stale: perform the copy with this
				// activation instead of redirecting to it.
				return ActDecision{Kind: dram.ActCopy, CopyRow: w, Timing: c.Crow.CopyFull}
			}
			// The regular row is remapped: activate the copy row
			// alone at baseline timings (Section 4.2.2).
			return ActDecision{Kind: dram.ActCopyRow, CopyRow: w, Timing: c.base}
		case EntryCache:
			t := c.Crow.TwoPartial
			if set[w].FullyRestored {
				t = c.Crow.TwoFull
			}
			if c.FullRestore {
				// Pairs are always fully restored: fast sensing,
				// but restoration runs to completion.
				t = dram.ActTimings{
					RCD:     c.Crow.TwoFull.RCD,
					RAS:     c.Crow.TwoRestore.RAS,
					RASFull: c.Crow.TwoRestore.RASFull,
					WR:      c.Crow.TwoRestore.WR,
				}
			}
			return ActDecision{Kind: dram.ActTwo, CopyRow: w, Timing: t}
		}
	}
	if !c.Cache {
		return ActDecision{Kind: dram.ActSingle, Timing: c.base}
	}
	// CROW-cache miss: duplicate into a free way, else the best victim
	// (fully-restored entries first: replacing them needs no restore).
	w := FreeWay(set)
	if w < 0 {
		w = VictimWay(set)
	}
	if w < 0 {
		// Every way pinned by CROW-ref/RowHammer remaps.
		return ActDecision{Kind: dram.ActSingle, Timing: c.base}
	}
	if set[w].Allocated && !set[w].FullyRestored {
		// The victim pair is partially restored; evicting it requires a
		// full restore first or a future single-row activation of it
		// would corrupt data (Section 4.1.4). Under the default lazy
		// policy we skip caching this activation instead — the partial
		// pair becomes fully restored soon (a later long-held
		// activation, the refresh sweep, or an idle-cycle scrub) and
		// eviction resumes; under EagerRestore the controller performs
		// the paper's restore-before-evict pass inline.
		if !c.EagerRestore {
			return ActDecision{Kind: dram.ActSingle, Timing: c.base}
		}
		return ActDecision{
			Kind: dram.ActSingle, Timing: c.base,
			RestoreFirst:   true,
			RestoreRow:     c.Table.AbsoluteRow(a, set[w]),
			RestoreCopyRow: w,
			RestoreTiming:  c.Crow.TwoRestore,
		}
	}
	copyPlan := c.Crow.Copy
	if c.FullRestore {
		copyPlan = c.Crow.CopyFull
	}
	return ActDecision{Kind: dram.ActCopy, CopyRow: w, Timing: copyPlan}
}

// tev reports one table event to the attached observer. Call sites guard
// with `c.Obs != nil` so the disabled path costs one comparison.
func (c *CROW) tev(k TableEventKind, a dram.Addr, way int, cycle int64) {
	c.Obs.OnTableEvent(TableEvent{Kind: k, Cycle: cycle, Addr: a, Way: way})
}

// OnActivate implements Mechanism.
func (c *CROW) OnActivate(a dram.Addr, d ActDecision, cycle int64) {
	set := c.Table.Set(a)
	switch d.Kind {
	case dram.ActTwo:
		if d.RestoreFirst {
			atomic.AddInt64(&c.Stats.RestoreOps, 1)
			if c.Obs != nil {
				c.tev(TableRestore, a, d.RestoreCopyRow, cycle)
			}
			set[d.RestoreCopyRow].lastUse = cycle
			break
		}
		atomic.AddInt64(&c.Stats.Hits, 1)
		if c.Obs != nil {
			c.tev(TableHit, a, d.CopyRow, cycle)
		}
		set[d.CopyRow].lastUse = cycle
	case dram.ActCopy:
		if e := &set[d.CopyRow]; e.Allocated && e.Kind != EntryCache &&
			e.RegularRow == c.Table.Geo.RowInSubarray(a.Row) && e.SubTag == c.Table.SubTag(a) {
			// A demand activation performing a pending remap copy: the
			// entry stays a CROW-ref/RowHammer remap. CopyPending clears
			// at precharge, once restoration of the pair completes.
			atomic.AddInt64(&c.Stats.Copies, 1)
			if c.Obs != nil {
				c.tev(TableCopy, a, d.CopyRow, cycle)
			}
			e.lastUse = cycle
			break
		}
		atomic.AddInt64(&c.Stats.Misses, 1)
		atomic.AddInt64(&c.Stats.Copies, 1)
		if c.Obs != nil {
			c.tev(TableMiss, a, d.CopyRow, cycle)
			c.tev(TableCopy, a, d.CopyRow, cycle)
		}
		if set[d.CopyRow].Allocated {
			atomic.AddInt64(&c.Stats.Evictions, 1)
			if c.Obs != nil {
				c.tev(TableEviction, a, d.CopyRow, cycle)
			}
		}
		set[d.CopyRow] = Entry{
			Allocated:  true,
			RegularRow: c.Table.Geo.RowInSubarray(a.Row),
			SubTag:     c.Table.SubTag(a),
			Kind:       EntryCache,
			lastUse:    cycle,
		}
	case dram.ActCopyRow:
		atomic.AddInt64(&c.Stats.RefRemaps, 1)
		if c.Obs != nil {
			c.tev(TableRefRemap, a, d.CopyRow, cycle)
		}
	case dram.ActSingle:
		if c.Cache && !d.RestoreFirst {
			atomic.AddInt64(&c.Stats.Misses, 1)
			if c.Obs != nil {
				c.tev(TableMiss, a, -1, cycle)
			}
		}
	}
	if c.HammerThreshold > 0 && d.Kind != dram.ActCopyRow {
		c.countHammer(a, cycle)
	}
}

// OnPrecharge implements Mechanism.
func (c *CROW) OnPrecharge(a dram.Addr, openRow int, fullyRestored bool, cycle int64) {
	probe := a
	probe.Row = openRow
	set := c.Table.Set(probe)
	row := c.Table.Geo.RowInSubarray(openRow)
	tag := c.Table.SubTag(probe)
	for w := range set {
		if !set[w].Allocated || set[w].RegularRow != row || set[w].SubTag != tag {
			continue
		}
		if set[w].Kind == EntryCache {
			set[w].FullyRestored = fullyRestored
			if !fullyRestored && c.Scrub {
				c.partials[a.Channel] = append(c.partials[a.Channel], probe)
			}
			return
		}
		if set[w].CopyPending && fullyRestored {
			// While a remap copy is pending, every activation of the
			// regular row is an ACT-c into this way (PlanActivate and
			// the controller's copy path both plan it so); a fully
			// restored precharge therefore means the duplicate is now
			// coherent and redirection may begin.
			set[w].CopyPending = false
			return
		}
	}
}

// OnRefreshRows implements Mechanism. Refresh fully restores the refreshed
// rows, so any CROW-cache pair in the refreshed range becomes fully
// restored; a wrap of the refresh counter also closes one RowHammer
// counting window.
func (c *CROW) OnRefreshRows(channel, rank, bank, startRow, n int) {
	g := c.Table.Geo
	lo, hi := 0, g.Banks
	if bank >= 0 {
		lo, hi = bank, bank+1
	}
	for b := lo; b < hi; b++ {
		for row := startRow; row < startRow+n && row < g.RowsPerBank; row++ {
			a := dram.Addr{Channel: channel, Rank: rank, Bank: b, Row: row}
			set := c.Table.Set(a)
			r := g.RowInSubarray(row)
			tag := c.Table.SubTag(a)
			for w := range set {
				if set[w].Allocated && set[w].Kind == EntryCache &&
					set[w].RegularRow == r && set[w].SubTag == tag {
					set[w].FullyRestored = true
				}
			}
		}
	}
	if startRow == 0 && c.hammerCounts[channel] != nil {
		clear(c.hammerCounts[channel])
	}
}

// RefreshMultiplier implements Mechanism: CROW-ref doubles the refresh
// window (64 ms → 128 ms) unless a subarray overflowed its copy rows.
func (c *CROW) RefreshMultiplier() int {
	if c.Ref && !c.Stats.Fallback {
		return 2
	}
	return 1
}

// NextCopy pops a pending mechanism-initiated copy for the channel, if any.
// Ops whose remap entry was already copied by a demand activation (or
// replaced outright) are stale and skipped.
func (c *CROW) NextCopy(channel int) (CopyOp, bool) {
	for len(c.pendingCopies[channel]) > 0 {
		op := c.pendingCopies[channel][0]
		c.pendingCopies[channel] = c.pendingCopies[channel][1:]
		set := c.Table.Set(op.Addr)
		e := &set[op.CopyRow]
		if !e.CopyPending || e.Kind == EntryCache ||
			e.RegularRow != c.Table.Geo.RowInSubarray(op.Addr.Row) || e.SubTag != c.Table.SubTag(op.Addr) {
			continue
		}
		return op, true
	}
	return CopyOp{}, false
}

// NextScrub pops a partially-restored pair awaiting an idle-cycle full
// restore. The controller calls it only when a channel is otherwise idle,
// performing the restore as an ACT-t held to full tRAS. Stale candidates
// (re-cached, evicted, or already restored) are skipped.
func (c *CROW) NextScrub(channel int) (CopyOp, bool) {
	for len(c.partials[channel]) > 0 {
		a := c.partials[channel][0]
		c.partials[channel] = c.partials[channel][1:]
		w := c.Table.Lookup(a)
		if w < 0 {
			continue
		}
		set := c.Table.Set(a)
		if set[w].Kind != EntryCache || set[w].FullyRestored {
			continue
		}
		return CopyOp{
			Addr: a, Kind: dram.ActTwo, CopyRow: w, Timing: c.Crow.TwoRestore,
		}, true
	}
	return CopyOp{}, false
}

// RequeueScrub returns a scrub candidate the controller could not issue
// this cycle; it will be revalidated on the next pop.
func (c *CROW) RequeueScrub(channel int, a dram.Addr) {
	c.partials[channel] = append(c.partials[channel], a)
}

// HasPendingOps reports, without mutating any queue, whether the channel may
// have copy or scrub work pending. It may overestimate (stale candidates are
// only filtered on pop); it never misses live work, which is what the
// controller's idle-skip logic requires.
func (c *CROW) HasPendingOps(channel int) bool {
	return len(c.pendingCopies[channel]) > 0 || len(c.partials[channel]) > 0
}

// countHammer tracks per-row activation counts within a refresh window and
// remaps the neighbours of a hammered row once it crosses the threshold.
func (c *CROW) countHammer(a dram.Addr, cycle int64) {
	g := c.Table.Geo
	m := c.hammerCounts[a.Channel]
	if m == nil {
		m = make([]int32, g.Ranks*g.Banks*g.RowsPerBank)
		c.hammerCounts[a.Channel] = m
	}
	idx := ((a.Rank*g.Banks)+a.Bank)*g.RowsPerBank + a.Row
	m[idx]++
	// Trigger at the threshold and periodically after, so a victim whose
	// protection was deferred (no safe copy row at the time) is retried.
	if n := int(m[idx]); n < c.HammerThreshold || n%c.HammerThreshold != 0 {
		return
	}
	for _, vr := range []int{a.Row - 1, a.Row + 1} {
		if vr < 0 || vr >= g.RowsPerBank {
			continue
		}
		victim := dram.Addr{Channel: a.Channel, Rank: a.Rank, Bank: a.Bank, Row: vr}
		set := c.Table.Set(victim)
		if w := c.Table.Lookup(victim); w >= 0 {
			if set[w].Kind != EntryCache {
				continue // already protected
			}
			// The victim is already duplicated by CROW-cache: convert
			// the entry in place (a second way for the same row would
			// leave two entries racing for lookups). A fully restored
			// pair is already coherent; a partial one must wait for its
			// restore, so protection is retried later.
			if !set[w].FullyRestored {
				continue
			}
			set[w].Kind = EntryHammer
			atomic.AddInt64(&c.Stats.HamRemaps, 1)
			if c.Obs != nil {
				c.tev(TableHamRemap, victim, w, cycle)
			}
			continue
		}
		w := FreeWay(set)
		if w < 0 {
			w = LRUWay(set)
		}
		if w < 0 {
			continue
		}
		if set[w].Allocated && !set[w].FullyRestored {
			// Evicting a partially-restored cache pair without a
			// full restore would corrupt it (Section 4.1.4); skip
			// and let a later activation re-trigger protection.
			continue
		}
		set[w] = Entry{Allocated: true, RegularRow: g.RowInSubarray(vr), SubTag: c.Table.SubTag(victim), Kind: EntryHammer, FullyRestored: true, CopyPending: true}
		c.pendingCopies[a.Channel] = append(c.pendingCopies[a.Channel], CopyOp{
			Addr: victim, Kind: dram.ActCopy, CopyRow: w, Timing: c.Crow.CopyFull,
		})
		atomic.AddInt64(&c.Stats.HamRemaps, 1)
		if c.Obs != nil {
			c.tev(TableHamRemap, victim, w, cycle)
		}
	}
}
