// Package energy estimates DRAM energy consumption from command counts and
// state-residency statistics, in the style of DRAMPower [5], which the paper
// uses. Energies are computed from datasheet-style IDD currents; absolute
// values are approximations for an LPDDR4-3200 x32 channel, but the figures
// only use ratios between configurations.
package energy

import (
	"crowdram/internal/circuit"
	"crowdram/internal/dram"
)

// Params holds the current/voltage operating points of one channel
// (two ganged x16 LPDDR4 devices treated as a single x32 unit).
type Params struct {
	VDD float64 // volts

	// IDD currents in milliamps.
	IDD0  float64 // one-bank activate-precharge
	IDD2N float64 // precharge standby (all banks closed)
	IDD3N float64 // active standby (one bank open)
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh

	// MRAFactor scales activation energy for CROW's two-row commands
	// (+5.8 % per the paper's Figure 7).
	MRAFactor float64
}

// DefaultParams returns the LPDDR4 operating point used throughout. The
// IDD3N/IDD2N ratio of 1.109 matches the paper's observation that an idle
// chip with one open bank draws 10.9 % more current (Section 8.1.4).
func DefaultParams() Params {
	return Params{
		VDD:       1.1,
		IDD0:      60,
		IDD2N:     30,
		IDD3N:     33.27,
		IDD4R:     150,
		IDD4W:     160,
		IDD5:      230,
		MRAFactor: circuit.MRAPowerFactor(2),
	}
}

// Breakdown is the per-component DRAM energy of one channel, in nanojoules.
type Breakdown struct {
	ActPre     float64 // activate + precharge pairs
	Read       float64
	Write      float64
	Refresh    float64
	Background float64
	// ExtraOpenStandby is the part of Background caused by additional
	// concurrently-open row buffers beyond the first per channel
	// (significant for SALP's open-page operation).
	ExtraOpenStandby float64
}

// Total returns the channel's total energy in nanojoules.
func (b Breakdown) Total() float64 {
	return b.ActPre + b.Read + b.Write + b.Refresh + b.Background
}

// Add accumulates another breakdown (e.g. across channels).
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		ActPre:           b.ActPre + o.ActPre,
		Read:             b.Read + o.Read,
		Write:            b.Write + o.Write,
		Refresh:          b.Refresh + o.Refresh,
		Background:       b.Background + o.Background,
		ExtraOpenStandby: b.ExtraOpenStandby + o.ExtraOpenStandby,
	}
}

// Compute derives the energy breakdown of one channel from its command
// statistics over `cycles` DRAM clock cycles.
func Compute(s dram.Stats, t dram.Timing, cycles int64, p Params) Breakdown {
	ns := func(c int64) float64 { return float64(c) * t.CycleTime() }
	mWtoNJ := func(mA float64, dur float64) float64 { return mA * p.VDD * dur * 1e-3 }

	var b Breakdown

	// Activate-precharge energy, DRAMPower-style: the IDD0 envelope minus
	// the standby currents the background term already accounts for,
	// integrated over each activation's actual restore window. CROW's
	// early-terminated activations restore less charge and therefore
	// consume proportionally less (Section 4.1.3); its two-wordline
	// commands cost an extra 5.8 % (Figure 7).
	singles := float64(s.ACT + s.ACTCopyRow)
	mras := float64(s.ACTTwo + s.ACTCopy)
	rasSingle := s.ActRasSingle
	if rasSingle == 0 {
		rasSingle = (s.ACT + s.ACTCopyRow) * int64(t.RAS)
	}
	rasMRA := s.ActRasMRA
	if rasMRA == 0 {
		rasMRA = (s.ACTTwo + s.ACTCopy) * int64(t.RAS)
	}
	restore := mWtoNJ(p.IDD0-p.IDD3N, ns(rasSingle)) + mWtoNJ(p.IDD0-p.IDD3N, ns(rasMRA))*p.MRAFactor
	precharge := mWtoNJ(p.IDD0-p.IDD2N, ns(int64(t.RP))) * (singles + mras*p.MRAFactor)
	b.ActPre = restore + precharge

	// Column accesses: burst current above active standby for tBL.
	b.Read = mWtoNJ(p.IDD4R-p.IDD3N, ns(int64(t.BL))) * float64(s.RD)
	b.Write = mWtoNJ(p.IDD4W-p.IDD3N, ns(int64(t.BL))) * float64(s.WR)

	// Refresh: elevated current for tRFC per REFab command; a REFpb
	// refreshes one-eighth of the rows for one-eighth of the energy.
	b.Refresh = mWtoNJ(p.IDD5-p.IDD2N, ns(int64(t.RFC))) * float64(s.REF)
	b.Refresh += mWtoNJ(p.IDD5-p.IDD2N, ns(int64(t.RFC))) / 8 * float64(s.REFpb)

	// Background: precharge standby everywhere, plus the active-standby
	// increment for every concurrently-open local row buffer. Charging
	// per open buffer naturally captures SALP's multi-open-row static
	// power penalty.
	b.Background = mWtoNJ(p.IDD2N, ns(cycles)) +
		mWtoNJ(p.IDD3N-p.IDD2N, ns(s.OpenBufferCycles))
	extra := s.OpenBufferCycles - s.ActiveStandbyCycles
	if extra > 0 {
		b.ExtraOpenStandby = mWtoNJ(p.IDD3N-p.IDD2N, ns(extra))
	}
	return b
}
