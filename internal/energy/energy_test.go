package energy

import (
	"testing"
	"testing/quick"

	"crowdram/internal/dram"
)

func baseTiming() dram.Timing { return dram.LPDDR4(dram.Density8Gb, 64, dram.Std(8)) }

func TestDefaultParamsRatio(t *testing.T) {
	p := DefaultParams()
	ratio := p.IDD3N / p.IDD2N
	if ratio < 1.10 || ratio > 1.12 {
		t.Errorf("IDD3N/IDD2N = %.3f, want ≈ 1.109 (paper: +10.9%% with one open bank)", ratio)
	}
	if p.MRAFactor < 1.05 || p.MRAFactor > 1.07 {
		t.Errorf("MRAFactor = %.3f, want 1.058", p.MRAFactor)
	}
}

func TestComputeComponents(t *testing.T) {
	tm := baseTiming()
	p := DefaultParams()
	s := dram.Stats{ACT: 100, RD: 500, WR: 200, REF: 10, OpenBufferCycles: 5000, ActiveStandbyCycles: 5000}
	b := Compute(s, tm, 100000, p)
	if b.ActPre <= 0 || b.Read <= 0 || b.Write <= 0 || b.Refresh <= 0 || b.Background <= 0 {
		t.Errorf("all components must be positive: %+v", b)
	}
	if b.ExtraOpenStandby != 0 {
		t.Errorf("no extra open standby when open==active cycles: %+v", b)
	}
	sum := b.ActPre + b.Read + b.Write + b.Refresh + b.Background
	if b.Total() != sum {
		t.Errorf("Total() = %f, want %f", b.Total(), sum)
	}
}

func TestMRACommandsCostMore(t *testing.T) {
	tm := baseTiming()
	p := DefaultParams()
	plain := Compute(dram.Stats{ACT: 100}, tm, 1000, p)
	mra := Compute(dram.Stats{ACTTwo: 100}, tm, 1000, p)
	ratio := mra.ActPre / plain.ActPre
	if ratio < 1.05 || ratio > 1.07 {
		t.Errorf("ACT-t energy ratio = %.3f, want 1.058", ratio)
	}
	// Remap single activations of copy rows cost the same as ACT.
	remap := Compute(dram.Stats{ACTCopyRow: 100}, tm, 1000, p)
	if remap.ActPre != plain.ActPre {
		t.Error("ACT of a copy row alone must cost the same as a plain ACT")
	}
}

func TestRefreshEnergyScalesWithDensityAndCount(t *testing.T) {
	p := DefaultParams()
	small := Compute(dram.Stats{REF: 100}, dram.LPDDR4(dram.Density8Gb, 64, dram.Std(8)), 1000, p)
	big := Compute(dram.Stats{REF: 100}, dram.LPDDR4(dram.Density64Gb, 64, dram.Std(8)), 1000, p)
	if big.Refresh <= small.Refresh {
		t.Error("higher density (longer tRFC) must increase per-REF energy")
	}
	half := Compute(dram.Stats{REF: 50}, dram.LPDDR4(dram.Density8Gb, 64, dram.Std(8)), 1000, p)
	if half.Refresh*2 != small.Refresh {
		t.Error("refresh energy must be linear in REF count")
	}
}

func TestSALPExtraOpenBuffersCost(t *testing.T) {
	tm := baseTiming()
	p := DefaultParams()
	// Two buffers open for the whole interval vs one.
	one := Compute(dram.Stats{OpenBufferCycles: 1000, ActiveStandbyCycles: 1000}, tm, 1000, p)
	two := Compute(dram.Stats{OpenBufferCycles: 2000, ActiveStandbyCycles: 1000}, tm, 1000, p)
	if two.Background <= one.Background {
		t.Error("each concurrently-open buffer must add static power")
	}
	if two.ExtraOpenStandby <= 0 {
		t.Error("extra open standby must be attributed")
	}
}

func TestAdd(t *testing.T) {
	a := Breakdown{ActPre: 1, Read: 2, Write: 3, Refresh: 4, Background: 5, ExtraOpenStandby: 1}
	b := a.Add(a)
	if b.Total() != 2*a.Total() || b.ExtraOpenStandby != 2 {
		t.Errorf("Add broken: %+v", b)
	}
}

// TestEnergyMonotonicInCounts: more commands never reduce energy.
func TestEnergyMonotonicInCounts(t *testing.T) {
	tm := baseTiming()
	p := DefaultParams()
	f := func(act, rd, wr, ref uint16) bool {
		s := dram.Stats{ACT: int64(act), RD: int64(rd), WR: int64(wr), REF: int64(ref)}
		s2 := s
		s2.ACT++
		s2.RD++
		b := Compute(s, tm, 1e6, p)
		b2 := Compute(s2, tm, 1e6, p)
		return b2.Total() > b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
