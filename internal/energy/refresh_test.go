package energy

import (
	"math"
	"testing"

	"crowdram/internal/dram"
)

// TestPerBankRefreshEnergyParity: a full round of eight REFpb commands
// refreshes the same rows as one REFab and must cost the same total energy.
func TestPerBankRefreshEnergyParity(t *testing.T) {
	tm := dram.LPDDR4(dram.Density8Gb, 64, dram.Std(0))
	p := DefaultParams()
	ab := Compute(dram.Stats{REF: 10}, tm, 1e6, p)
	pb := Compute(dram.Stats{REFpb: 80}, tm, 1e6, p)
	if math.Abs(ab.Refresh-pb.Refresh)/ab.Refresh > 1e-9 {
		t.Errorf("8 REFpb must equal 1 REFab in energy: %.3f vs %.3f", pb.Refresh, ab.Refresh)
	}
}

// TestEarlyTerminationSavesActivationEnergy: an ACT-t with the
// early-terminated restore window must consume less activation energy than
// one held to the full window, and a single ACT with the default window must
// sit between a short MRA window and a long one.
func TestEarlyTerminationSavesActivationEnergy(t *testing.T) {
	tm := dram.LPDDR4(dram.Density8Gb, 64, dram.Std(8))
	crow := tm.CROW()
	p := DefaultParams()
	early := Compute(dram.Stats{ACTTwo: 100, ActRasMRA: 100 * int64(crow.TwoFull.RAS)}, tm, 1e6, p)
	full := Compute(dram.Stats{ACTTwo: 100, ActRasMRA: 100 * int64(crow.TwoRestore.RAS)}, tm, 1e6, p)
	if early.ActPre >= full.ActPre {
		t.Errorf("early termination must save activation energy: %.2f vs %.2f", early.ActPre, full.ActPre)
	}
	// The MRA factor still applies: at the SAME restore window, ACT-t
	// must cost 5.8% more than a plain ACT.
	plain := Compute(dram.Stats{ACT: 100, ActRasSingle: 100 * int64(tm.RAS)}, tm, 1e6, p)
	mra := Compute(dram.Stats{ACTTwo: 100, ActRasMRA: 100 * int64(tm.RAS)}, tm, 1e6, p)
	ratio := mra.ActPre / plain.ActPre
	if ratio < 1.04 || ratio > 1.07 {
		t.Errorf("MRA overhead at equal windows = %.3f, want ~1.058", ratio)
	}
}
