package dram

import "fmt"

// subState tracks the activation state of one subarray's local row buffer.
//
// In conventional DRAM at most one subarray per bank holds an open row; with
// SALP-MASA enabled (Section 8.1.4 baseline), every subarray may hold one.
type subState struct {
	openRow  int // regular-row index within the bank; -1 when closed
	kind     ActKind
	plan     ActTimings
	actCycle int64
	rdReady  int64 // earliest RD/WR (ACT + tRCD)
	preReady int64 // earliest PRE (tRAS, tRTP, write recovery)
	actReady int64 // earliest next ACT (PRE + tRP, REF + tRFC)
	lastUse  int64 // last ACT/RD/WR cycle (for timeout row policy)
}

// bank groups the subarray states of one bank.
type bank struct {
	subs      []subState
	openCount int
	openSub   int   // subarray of the most recent ACT; exact iff openCount == 1
	refBusy   int64 // per-bank refresh in progress until this cycle
}

// rank tracks rank-level activation and refresh constraints.
type rank struct {
	banks     []bank
	actTimes  [4]int64 // ring of the last four ACT cycles (tFAW)
	actHead   int
	actCount  int
	lastACT   int64 // most recent ACT (tRRD)
	refBusy   int64 // REF in progress until this cycle
	wrDataEnd int64 // end of most recent write burst (tWTR)

	// dataBusFree is the per-rank data-bus horizon, used instead of the
	// channel-level one when Features.PerRankDataBus is set (HBM2
	// pseudo-channels: each pseudo-channel owns half the data interface).
	dataBusFree int64
}

// Features selects optional device behaviours that distinguish the memory
// standards sharing this state machine.
type Features struct {
	// PerRankDataBus gives every rank its own data bus, modelling HBM2
	// pseudo-channels (mapped onto the rank dimension): the command/address
	// bus stays shared, but data bursts on different pseudo-channels do not
	// serialize against each other.
	PerRankDataBus bool
}

// Stats counts the commands issued to a channel, by type.
type Stats struct {
	ACT        int64 // conventional single-row activations
	ACTTwo     int64 // ACT-t
	ACTCopy    int64 // ACT-c
	ACTCopyRow int64 // single activation of a copy row (CROW-ref remap)
	PRE        int64
	RD         int64
	WR         int64
	REF        int64 // all-bank refreshes
	REFpb      int64 // per-bank refreshes

	// ActRasSingle/ActRasMRA accumulate the per-activation restore
	// window (the timing plan's tRAS) in cycles, for single-wordline and
	// two-wordline activations respectively. Early-terminated CROW
	// activations restore less charge and therefore consume less
	// activation energy; the energy model integrates these windows.
	ActRasSingle int64
	ActRasMRA    int64

	// OpenBufferCycles integrates the number of open local row buffers
	// over time; the energy model uses it for active-standby power and
	// for SALP's extra static power per additional open buffer.
	OpenBufferCycles int64
	// ActiveStandbyCycles counts cycles with at least one open row.
	ActiveStandbyCycles int64
	// RefreshBusyCycles counts cycles a rank was blocked by REF.
	RefreshBusyCycles int64
	// RDBusyCycles/WRBusyCycles count data-bus occupancy.
	RDBusyCycles int64
	WRBusyCycles int64
}

// Activations returns the total number of activate commands of all kinds.
func (s *Stats) Activations() int64 { return s.ACT + s.ACTTwo + s.ACTCopy + s.ACTCopyRow }

// CmdEvent describes one command issued by the channel, as seen on the
// command bus. It carries everything an external monitor needs to replay the
// device's visible behaviour: the command, its full address (including the
// copy-row operand of CROW activations), the activation timing plan, and —
// for PRE — whether the closing activation met its full-restoration window.
type CmdEvent struct {
	Cmd     Command
	Addr    Addr
	Cycle   int64
	Kind    ActKind    // activate commands only
	CopyRow int        // copy-row operand of CROW activations; -1 if none
	Plan    ActTimings // activate commands only
	// FullyRestored is meaningful for PRE: whether the closed activation
	// was held open for at least its plan's full-restoration time.
	FullyRestored bool
}

// CommandObserver receives every command a channel issues, in issue order.
// Unlike Checker (which re-validates intra-channel timing), an observer can
// correlate commands across channels and against system-level state; the
// correctness oracle in internal/oracle and the event tracer in internal/obs
// are two.
type CommandObserver interface {
	OnCommand(e CmdEvent)
}

// Channel is the cycle-accurate device model of one DRAM channel.
//
// The controller drives it with Can*/issue method pairs; the device enforces
// every intra-device timing constraint and panics on protocol violations
// (issuing a command the device reported illegal is a controller bug).
type Channel struct {
	Geo Geometry
	T   Timing

	// MASA enables SALP-MASA subarray-level parallelism: multiple
	// subarrays of the same bank may hold open rows concurrently.
	MASA bool

	// Features selects standard-specific device behaviours; the zero value
	// is the conventional LPDDR4/DDR5 shared-bus channel.
	Features Features

	ranks       []rank
	cmdBusFree  int64 // next cycle the command bus is free
	dataBusFree int64 // next cycle the data bus is free
	lastColCmd  int64 // most recent RD/WR issue cycle (tCCD)

	// cmdSeq increments on every issued command; cached derived queries
	// (EarliestTimeoutPRE) are invalidated by it, so idle stretches pay
	// for at most one full subarray scan.
	cmdSeq    uint64
	toSeq     uint64
	toTimeout int64
	toVal     int64

	Stats Stats

	// Check, when non-nil, independently re-validates every issued
	// command against the raw command history (used by tests).
	Check *Checker

	// obs receives every issued command, fanned out in attach order, so
	// independent consumers (the correctness oracle, the event tracer,
	// interval telemetry) coexist on one channel. Empty for ordinary runs:
	// the per-command cost is then a single nil check.
	obs []CommandObserver

	lastTick int64
}

// Attach subscribes an observer to every command the channel issues from now
// on. Observers are invoked synchronously at issue time, in attach order.
func (c *Channel) Attach(o CommandObserver) {
	c.obs = append(c.obs, o)
}

// Observers returns the number of attached command observers.
func (c *Channel) Observers() int { return len(c.obs) }

// emit fans one command event out to every attached observer. Callers guard
// with `c.obs != nil` so the disabled path costs one comparison and the
// CmdEvent is never materialized.
func (c *Channel) emit(e CmdEvent) {
	for _, o := range c.obs {
		o.OnCommand(e)
	}
}

// NewChannel builds a closed, idle channel device.
func NewChannel(g Geometry, t Timing) *Channel {
	c := &Channel{Geo: g, T: t}
	const never = int64(-1) << 62
	c.lastColCmd = never
	c.ranks = make([]rank, g.Ranks)
	for r := range c.ranks {
		c.ranks[r].lastACT = never
		c.ranks[r].wrDataEnd = never
		c.ranks[r].banks = make([]bank, g.Banks)
		for b := range c.ranks[r].banks {
			subs := make([]subState, g.SubarraysPerBank())
			for s := range subs {
				subs[s].openRow = -1
			}
			c.ranks[r].banks[b].subs = subs
			c.ranks[r].banks[b].openSub = -1
		}
	}
	return c
}

func (c *Channel) sub(a Addr) *subState {
	return &c.ranks[a.Rank].banks[a.Bank].subs[a.Subarray(c.Geo)]
}

// dataFree returns the data-bus horizon governing rank r: the channel bus,
// or the rank's own when the standard has per-rank data buses.
func (c *Channel) dataFree(r int) int64 {
	if c.Features.PerRankDataBus {
		return c.ranks[r].dataBusFree
	}
	return c.dataBusFree
}

func (c *Channel) setDataFree(r int, v int64) {
	if c.Features.PerRankDataBus {
		c.ranks[r].dataBusFree = v
		return
	}
	c.dataBusFree = v
}

// Tick advances the channel's per-cycle accounting to `now`. The controller
// calls it before issuing commands; `now` may be more than one cycle past
// the previous Tick (the idle-skip contract), in which case the skipped
// cycles are integrated exactly as if ticked one by one — no commands can
// have issued in between, so the open-buffer population is constant over
// the gap and refresh-busy windows are clipped to their recorded end.
func (c *Channel) Tick(now int64) {
	delta := now - c.lastTick
	if delta <= 0 {
		return
	}
	prev := c.lastTick
	c.lastTick = now
	open := int64(c.OpenBuffers())
	c.Stats.OpenBufferCycles += open * delta
	if open > 0 {
		c.Stats.ActiveStandbyCycles += delta
	}
	for r := range c.ranks {
		// Cycles cy in (prev, now] with refBusy > cy.
		if end := c.ranks[r].refBusy - 1; end > prev {
			if end > now {
				end = now
			}
			c.Stats.RefreshBusyCycles += end - prev
		}
	}
}

// OpenBuffers returns the number of open local row buffers on the channel.
func (c *Channel) OpenBuffers() int {
	n := 0
	for r := range c.ranks {
		for b := range c.ranks[r].banks {
			n += c.ranks[r].banks[b].openCount
		}
	}
	return n
}

// OpenRow returns the open regular-row index of the subarray containing
// a.Row, or -1 if that subarray's buffer is closed.
func (c *Channel) OpenRow(a Addr) int { return c.sub(a).openRow }

// OpenRowInBank reports the open row of bank (rank,bank) in non-MASA mode,
// or -1 if the bank is fully closed. With MASA, use OpenRow per subarray.
func (c *Channel) OpenRowInBank(rankID, bankID int) int {
	bk := &c.ranks[rankID].banks[bankID]
	if bk.openCount == 0 {
		return -1
	}
	// Single open buffer (always the case without MASA): the tracked
	// subarray is exact, no scan needed.
	if bk.openCount == 1 && bk.openSub >= 0 && bk.subs[bk.openSub].openRow >= 0 {
		return bk.subs[bk.openSub].openRow
	}
	for s := range bk.subs {
		if bk.subs[s].openRow >= 0 {
			return bk.subs[s].openRow
		}
	}
	return -1
}

// LastUse returns the cycle of the most recent ACT/RD/WR to the subarray
// containing a.Row (for the timeout row-buffer policy).
func (c *Channel) LastUse(a Addr) int64 { return c.sub(a).lastUse }

// OpenSub describes one open local row buffer.
type OpenSub struct {
	Rank, Bank, Subarray, Row int
	LastUse                   int64
}

// OpenSubarrays returns every open local row buffer on the channel, in
// (rank, bank, subarray) order.
func (c *Channel) OpenSubarrays() []OpenSub {
	return c.OpenSubarraysAppend(nil)
}

// OpenSubarraysAppend appends every open local row buffer to buf, in
// (rank, bank, subarray) order, and returns the extended slice. Callers on
// the per-cycle hot path pass a reused buffer (buf[:0]) to avoid allocating.
func (c *Channel) OpenSubarraysAppend(buf []OpenSub) []OpenSub {
	for r := range c.ranks {
		for b := range c.ranks[r].banks {
			bk := &c.ranks[r].banks[b]
			if bk.openCount == 0 {
				continue
			}
			for s := range bk.subs {
				if bk.subs[s].openRow >= 0 {
					buf = append(buf, OpenSub{
						Rank: r, Bank: b, Subarray: s,
						Row: bk.subs[s].openRow, LastUse: bk.subs[s].lastUse,
					})
				}
			}
		}
	}
	return buf
}

// Horizon is a sentinel cycle meaning "no event scheduled": far enough in
// the future that no simulation reaches it, yet safe to add small offsets
// to without overflowing int64.
const Horizon = int64(1) << 60

// EarliestTimeoutPRE returns the earliest cycle at which some currently
// open row could legally be closed after sitting idle for `timeout` cycles:
// the minimum over open subarrays of max(lastUse+timeout, preReady,
// cmdBusFree). It returns Horizon when no row is open. The result is cached
// against the channel's command sequence number, so repeated queries over
// an idle (command-free) stretch cost O(1).
func (c *Channel) EarliestTimeoutPRE(timeout int64) int64 {
	if c.toSeq == c.cmdSeq+1 && c.toTimeout == timeout {
		return c.toVal
	}
	best := Horizon
	for r := range c.ranks {
		for b := range c.ranks[r].banks {
			bk := &c.ranks[r].banks[b]
			if bk.openCount == 0 {
				continue
			}
			for s := range bk.subs {
				sub := &bk.subs[s]
				if sub.openRow < 0 {
					continue
				}
				at := sub.lastUse + timeout
				if sub.preReady > at {
					at = sub.preReady
				}
				if c.cmdBusFree > at {
					at = c.cmdBusFree
				}
				if at < best {
					best = at
				}
			}
		}
	}
	c.toSeq = c.cmdSeq + 1
	c.toTimeout = timeout
	c.toVal = best
	return best
}

// ActCycle returns the cycle at which the currently open row of a's
// subarray was activated. Only meaningful when OpenRow(a) >= 0.
func (c *Channel) ActCycle(a Addr) int64 { return c.sub(a).actCycle }

// OpenKind returns the activation kind of the currently open row of a's
// subarray. Only meaningful when OpenRow(a) >= 0.
func (c *Channel) OpenKind(a Addr) ActKind { return c.sub(a).kind }

// CanACT reports whether an activation of kind k targeting a.Row's subarray
// may issue at cycle `now`.
func (c *Channel) CanACT(a Addr, now int64, k ActKind) bool {
	rk := &c.ranks[a.Rank]
	bk := &rk.banks[a.Bank]
	s := &bk.subs[a.Subarray(c.Geo)]
	if s.openRow >= 0 {
		return false
	}
	if !c.MASA && bk.openCount > 0 {
		return false
	}
	if now < c.cmdBusFree || now < s.actReady || now < rk.refBusy || now < bk.refBusy {
		return false
	}
	if now < rk.lastACT+int64(c.T.RRD) {
		return false
	}
	if rk.actCount == 4 && now < rk.actTimes[rk.actHead]+int64(c.T.FAW) {
		return false
	}
	return true
}

// ACT issues an activation of kind k with per-activation timings t.
//
// copyRow is the copy-row operand carried by CROW's two-row and copy-row
// commands (the extra command-bus cycle of footnote 3); pass -1 when the
// activation involves no copy row. The device itself only records it — the
// mechanism and the oracle give it meaning.
func (c *Channel) ACT(a Addr, now int64, k ActKind, t ActTimings, copyRow int) {
	if !c.CanACT(a, now, k) {
		panic(fmt.Sprintf("dram: illegal %v to ch%d/r%d/b%d row %d at cycle %d", k, a.Channel, a.Rank, a.Bank, a.Row, now))
	}
	rk := &c.ranks[a.Rank]
	bk := &rk.banks[a.Bank]
	si := a.Subarray(c.Geo)
	s := &bk.subs[si]
	s.openRow = a.Row
	s.kind = k
	s.plan = t
	s.actCycle = now
	s.rdReady = now + int64(t.RCD)
	s.preReady = now + int64(t.RAS)
	s.lastUse = now
	bk.openCount++
	bk.openSub = si
	c.cmdSeq++
	rk.lastACT = now
	rk.actTimes[rk.actHead] = now
	rk.actHead = (rk.actHead + 1) % 4
	if rk.actCount < 4 {
		rk.actCount++
	}
	c.cmdBusFree = now + int64(k.CmdCycles())
	switch k {
	case ActSingle:
		c.Stats.ACT++
		c.Stats.ActRasSingle += int64(t.RAS)
	case ActTwo:
		c.Stats.ACTTwo++
		c.Stats.ActRasMRA += int64(t.RAS)
	case ActCopy:
		c.Stats.ACTCopy++
		c.Stats.ActRasMRA += int64(t.RAS)
	case ActCopyRow:
		c.Stats.ACTCopyRow++
		c.Stats.ActRasSingle += int64(t.RAS)
	}
	if c.Check != nil {
		c.Check.RecordPlanned(cmdACTBase+Command(k), a, now, t, copyRow)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: cmdACTBase + Command(k), Addr: a, Cycle: now, Kind: k, CopyRow: copyRow, Plan: t})
	}
}

// CanRD reports whether a read of a.Col from the open row a.Row may issue.
func (c *Channel) CanRD(a Addr, now int64) bool {
	rk := &c.ranks[a.Rank]
	s := c.sub(a)
	if s.openRow != a.Row {
		return false
	}
	if now < c.cmdBusFree || now < s.rdReady {
		return false
	}
	if now < c.lastColCmd+int64(c.T.CCD) {
		return false
	}
	if now < rk.wrDataEnd+int64(c.T.WTR) {
		return false
	}
	if now+int64(c.T.CL) < c.dataFree(a.Rank) {
		return false
	}
	return true
}

// RD issues a read and returns the cycle at which the data burst completes.
func (c *Channel) RD(a Addr, now int64) int64 {
	if !c.CanRD(a, now) {
		panic(fmt.Sprintf("dram: illegal RD to ch%d/r%d/b%d row %d at cycle %d", a.Channel, a.Rank, a.Bank, a.Row, now))
	}
	s := c.sub(a)
	dataStart := now + int64(c.T.CL)
	c.setDataFree(a.Rank, dataStart+int64(c.T.BL))
	c.lastColCmd = now
	c.cmdBusFree = now + 1
	if pre := now + int64(c.T.RTP); pre > s.preReady {
		s.preReady = pre
	}
	s.lastUse = now
	c.cmdSeq++
	c.Stats.RD++
	c.Stats.RDBusyCycles += int64(c.T.BL)
	if c.Check != nil {
		c.Check.record(CmdRD, a, now)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: CmdRD, Addr: a, Cycle: now, CopyRow: -1})
	}
	return dataStart + int64(c.T.BL)
}

// CanWR reports whether a write to a.Col of the open row a.Row may issue.
func (c *Channel) CanWR(a Addr, now int64) bool {
	s := c.sub(a)
	if s.openRow != a.Row {
		return false
	}
	if now < c.cmdBusFree || now < s.rdReady {
		return false
	}
	if now < c.lastColCmd+int64(c.T.CCD) {
		return false
	}
	if now+int64(c.T.CWL) < c.dataFree(a.Rank) {
		return false
	}
	return true
}

// WR issues a write. The write-recovery time applied before a PRE of this
// subarray is the per-activation plan's WR (writes to an MRA-opened pair
// restore two cells; Table 1).
func (c *Channel) WR(a Addr, now int64) {
	if !c.CanWR(a, now) {
		panic(fmt.Sprintf("dram: illegal WR to ch%d/r%d/b%d row %d at cycle %d", a.Channel, a.Rank, a.Bank, a.Row, now))
	}
	rk := &c.ranks[a.Rank]
	s := c.sub(a)
	dataEnd := now + int64(c.T.CWL) + int64(c.T.BL)
	c.setDataFree(a.Rank, dataEnd)
	c.lastColCmd = now
	c.cmdBusFree = now + 1
	rk.wrDataEnd = dataEnd
	if pre := dataEnd + int64(s.plan.WR); pre > s.preReady {
		s.preReady = pre
	}
	s.lastUse = now
	c.cmdSeq++
	c.Stats.WR++
	c.Stats.WRBusyCycles += int64(c.T.BL)
	if c.Check != nil {
		c.Check.record(CmdWR, a, now)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: CmdWR, Addr: a, Cycle: now, CopyRow: -1})
	}
}

// CanPRE reports whether the subarray holding a.Row may be precharged.
func (c *Channel) CanPRE(a Addr, now int64) bool {
	s := c.sub(a)
	if s.openRow < 0 {
		return false
	}
	return now >= c.cmdBusFree && now >= s.preReady
}

// PRE closes the open row of a.Row's subarray and returns whether the
// activation was held open for at least the plan's full-restoration time,
// which is what decides the isFullyRestored state of a CROW pair
// (Section 4.1.4).
func (c *Channel) PRE(a Addr, now int64) (fullyRestored bool) {
	if !c.CanPRE(a, now) {
		panic(fmt.Sprintf("dram: illegal PRE to ch%d/r%d/b%d at cycle %d", a.Channel, a.Rank, a.Bank, now))
	}
	s := c.sub(a)
	full := now-s.actCycle >= int64(s.plan.RASFull)
	s.openRow = -1
	if ready := now + int64(c.T.RP); ready > s.actReady {
		s.actReady = ready
	}
	bk := &c.ranks[a.Rank].banks[a.Bank]
	bk.openCount--
	if bk.openCount == 0 {
		bk.openSub = -1
	}
	c.cmdBusFree = now + 1
	c.cmdSeq++
	c.Stats.PRE++
	if c.Check != nil {
		c.Check.record(CmdPRE, a, now)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: CmdPRE, Addr: a, Cycle: now, CopyRow: -1, FullyRestored: full})
	}
	return full
}

// CanREFpb reports whether a per-bank refresh of one bank may issue: that
// bank's subarrays must be closed and past precharge recovery, and no other
// refresh may be in progress on the rank. Other banks remain accessible —
// the point of LPDDR4's per-bank refresh mode.
func (c *Channel) CanREFpb(rankID, bankID int, now int64) bool {
	rk := &c.ranks[rankID]
	bk := &rk.banks[bankID]
	if now < c.cmdBusFree || now < rk.refBusy || now < bk.refBusy {
		return false
	}
	if bk.openCount > 0 {
		return false
	}
	for s := range bk.subs {
		if now < bk.subs[s].actReady {
			return false
		}
	}
	return true
}

// REFpb issues a per-bank refresh, blocking only that bank for tRFCpb.
func (c *Channel) REFpb(rankID, bankID int, now int64) {
	if !c.CanREFpb(rankID, bankID, now) {
		panic(fmt.Sprintf("dram: illegal REFpb to rank %d bank %d at cycle %d", rankID, bankID, now))
	}
	bk := &c.ranks[rankID].banks[bankID]
	bk.refBusy = now + int64(c.T.RFCpb)
	for s := range bk.subs {
		if bk.subs[s].actReady < bk.refBusy {
			bk.subs[s].actReady = bk.refBusy
		}
	}
	c.cmdBusFree = now + 1
	c.cmdSeq++
	c.Stats.REFpb++
	if c.Check != nil {
		c.Check.record(CmdREFpb, Addr{Rank: rankID, Bank: bankID}, now)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: CmdREFpb, Addr: Addr{Rank: rankID, Bank: bankID}, Cycle: now, CopyRow: -1})
	}
}

// CanREF reports whether an all-bank refresh of the rank may issue: every
// subarray must be closed and past its precharge recovery.
func (c *Channel) CanREF(rankID int, now int64) bool {
	rk := &c.ranks[rankID]
	if now < c.cmdBusFree || now < rk.refBusy {
		return false
	}
	for b := range rk.banks {
		if rk.banks[b].openCount > 0 || now < rk.banks[b].refBusy {
			return false
		}
		for s := range rk.banks[b].subs {
			if now < rk.banks[b].subs[s].actReady {
				return false
			}
		}
	}
	return true
}

// REF issues an all-bank refresh, blocking the rank for tRFC.
func (c *Channel) REF(rankID int, now int64) {
	if !c.CanREF(rankID, now) {
		panic(fmt.Sprintf("dram: illegal REF to rank %d at cycle %d", rankID, now))
	}
	rk := &c.ranks[rankID]
	rk.refBusy = now + int64(c.T.RFC)
	for b := range rk.banks {
		for s := range rk.banks[b].subs {
			if rk.banks[b].subs[s].actReady < rk.refBusy {
				rk.banks[b].subs[s].actReady = rk.refBusy
			}
		}
	}
	c.cmdBusFree = now + 1
	c.cmdSeq++
	c.Stats.REF++
	if c.Check != nil {
		c.Check.record(CmdREF, Addr{Rank: rankID}, now)
	}
	if c.obs != nil {
		c.emit(CmdEvent{Cmd: CmdREF, Addr: Addr{Rank: rankID}, Cycle: now, CopyRow: -1})
	}
}
