package dram

import (
	"testing"
	"testing/quick"
)

func TestStdGeometry(t *testing.T) {
	g := Std(8)
	if got := g.SubarraysPerBank(); got != 128 {
		t.Errorf("SubarraysPerBank = %d, want 128", got)
	}
	if got := g.ColumnsPerRow(); got != 128 {
		t.Errorf("ColumnsPerRow = %d, want 128", got)
	}
	if got := g.ChannelBytes(); got != 4<<30 {
		t.Errorf("ChannelBytes = %d, want 4 GiB", got)
	}
}

func TestSubarrayIndexing(t *testing.T) {
	g := Std(8)
	cases := []struct{ row, sub, inSub int }{
		{0, 0, 0},
		{511, 0, 511},
		{512, 1, 0},
		{65535, 127, 511},
	}
	for _, c := range cases {
		if got := g.Subarray(c.row); got != c.sub {
			t.Errorf("Subarray(%d) = %d, want %d", c.row, got, c.sub)
		}
		if got := g.RowInSubarray(c.row); got != c.inSub {
			t.Errorf("RowInSubarray(%d) = %d, want %d", c.row, got, c.inSub)
		}
	}
}

func TestMapperBits(t *testing.T) {
	m := NewMapper(4, Std(8))
	// 6 offset + 2 channel + 7 column + 3 bank + 0 rank + 16 row = 34 bits.
	if got := m.Bits(); got != 34 {
		t.Errorf("Bits = %d, want 34", got)
	}
	if got := m.Capacity(); got != 16<<30 {
		t.Errorf("Capacity = %d, want 16 GiB", got)
	}
}

func TestMapperDecodeFields(t *testing.T) {
	m := NewMapper(4, Std(8))
	// Consecutive cache lines must interleave across channels first.
	a0 := m.Decode(0)
	a1 := m.Decode(64)
	if a0.Channel != 0 || a1.Channel != 1 {
		t.Errorf("line interleave across channels broken: %+v %+v", a0, a1)
	}
	if a0.Row != a1.Row || a0.Bank != a1.Bank || a0.Col != a1.Col {
		t.Errorf("adjacent lines should differ only in channel: %+v %+v", a0, a1)
	}
	// Lines 4 apart (one per channel consumed) advance the column.
	a4 := m.Decode(4 * 64)
	if a4.Col != a0.Col+1 || a4.Channel != 0 {
		t.Errorf("column increment broken: %+v", a4)
	}
}

// TestMapperRoundTrip checks Encode∘Decode is the identity on the canonical
// address bits, as a property over random addresses.
func TestMapperRoundTrip(t *testing.T) {
	m := NewMapper(4, Std(8))
	f := func(phys uint64) bool {
		canon := phys & ((1 << m.Bits()) - 1) &^ uint64(m.Geo.LineBytes-1)
		a := m.Decode(phys)
		return m.Encode(a) == canon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMapperDecodeInRange checks all decoded coordinates are within the
// geometry, as a property.
func TestMapperDecodeInRange(t *testing.T) {
	m := NewMapper(4, Std(8))
	g := m.Geo
	f := func(phys uint64) bool {
		a := m.Decode(phys)
		return a.Channel >= 0 && a.Channel < 4 &&
			a.Rank >= 0 && a.Rank < g.Ranks &&
			a.Bank >= 0 && a.Bank < g.Banks &&
			a.Row >= 0 && a.Row < g.RowsPerBank &&
			a.Col >= 0 && a.Col < g.ColumnsPerRow()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLog2PanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("log2(3) should panic")
		}
	}()
	log2(3)
}
