package dram

import "testing"

// recorder is a trivial CommandObserver counting what it sees.
type recorder struct {
	cmds []Command
}

func (r *recorder) OnCommand(e CmdEvent) { r.cmds = append(r.cmds, e.Cmd) }

// TestObserverFanOut: every attached observer receives every issued command,
// in issue order — the property that lets the correctness oracle, the event
// tracer, and interval telemetry coexist on one channel.
func TestObserverFanOut(t *testing.T) {
	c, k := testChannel(t, 0)
	first, second := &recorder{}, &recorder{}
	c.Attach(first)
	c.Attach(second)
	if c.Observers() != 2 {
		t.Fatalf("Observers() = %d, want 2", c.Observers())
	}

	a := Addr{Bank: 0, Row: 100, Col: 5}
	c.ACT(a, 0, ActSingle, c.T.Base(), -1)
	c.RD(a, int64(c.T.RCD))
	c.PRE(a, int64(c.T.RAS))

	want := []Command{CmdACT, CmdRD, CmdPRE}
	for name, r := range map[string]*recorder{"first": first, "second": second} {
		if len(r.cmds) != len(want) {
			t.Fatalf("%s observer saw %d commands, want %d", name, len(r.cmds), len(want))
		}
		for i, cmd := range want {
			if r.cmds[i] != cmd {
				t.Errorf("%s observer cmds[%d] = %v, want %v", name, i, r.cmds[i], cmd)
			}
		}
	}
	requireClean(t, k)
}

// TestObserverFanOutLateAttach: an observer attached mid-stream sees only
// commands issued after its Attach.
func TestObserverFanOutLateAttach(t *testing.T) {
	c, _ := testChannel(t, 0)
	early := &recorder{}
	c.Attach(early)

	a := Addr{Bank: 1, Row: 7, Col: 0}
	c.ACT(a, 0, ActSingle, c.T.Base(), -1)

	late := &recorder{}
	c.Attach(late)
	c.PRE(a, int64(c.T.RAS))

	if len(early.cmds) != 2 {
		t.Errorf("early observer saw %d commands, want 2", len(early.cmds))
	}
	if len(late.cmds) != 1 || late.cmds[0] != CmdPRE {
		t.Errorf("late observer saw %v, want [PRE]", late.cmds)
	}
}
