package dram

import (
	"fmt"
	"sort"
)

// Standard bundles everything that distinguishes one memory standard from
// another at the device level: the command-clock speed (and its ratio to the
// fixed 4 GHz core clock), the channel/bank/row organization, the timing
// table, the refresh model, and the optional device features the shared
// bank/rank state machine switches on. The controller, oracle, energy model,
// and tracer consume only the Timing/Geometry/Features a standard produces,
// so a new backend plugs in without touching them.
//
// The command set itself (ACT/PRE/RD/WR/REF/REFpb plus CROW's MRA variants)
// is shared: every supported standard is a row-buffer DRAM and CROW's
// substrate is standard-agnostic, which is exactly the point of the paper's
// sensitivity study. Same-bank refresh (DDR5 REFsb) rides the per-bank REFpb
// command with DDR5's tRFCsb; HBM2 pseudo-channels ride the rank dimension
// with a per-rank data bus.
type Standard interface {
	// Name is the registry key ("lpddr4", "ddr5", "hbm2").
	Name() string
	// CycleNs is the command-clock cycle time in nanoseconds.
	CycleNs() float64
	// ClockRatio returns num/den such that the command clock advances num
	// ticks every den cycles of the 4 GHz core clock.
	ClockRatio() (num, den int)
	// Channels is the standard's default channel count.
	Channels() int
	// Geometry returns the per-channel organization with the given number
	// of CROW copy rows per subarray.
	Geometry(copyRows int) Geometry
	// Timing builds the timing table for a chip of the given density and
	// retention window.
	Timing(d Density, refWindowMS float64, g Geometry) Timing
	// DefaultRefresh names the standard's refresh granularity: "allbank"
	// (LPDDR4 REFab), "perbank" (HBM2 REFpb), or "samebank" (DDR5 REFsb).
	DefaultRefresh() string
	// DefaultRefreshWindowMS is the standard's baseline retention window.
	DefaultRefreshWindowMS() float64
	// Features selects the device behaviours this standard enables.
	Features() Features
}

// spec is the table-driven Standard implementation all registered standards
// share; the per-standard variation lives in the two function fields.
type spec struct {
	name        string
	cycleNs     float64
	ratioNum    int
	ratioDen    int
	channels    int
	refresh     string
	refWindowMS float64
	features    Features
	geometry    func(copyRows int) Geometry
	timing      func(d Density, refWindowMS float64, g Geometry) Timing
}

func (s *spec) Name() string                    { return s.name }
func (s *spec) CycleNs() float64                { return s.cycleNs }
func (s *spec) ClockRatio() (int, int)          { return s.ratioNum, s.ratioDen }
func (s *spec) Channels() int                   { return s.channels }
func (s *spec) Geometry(copyRows int) Geometry  { return s.geometry(copyRows) }
func (s *spec) DefaultRefresh() string          { return s.refresh }
func (s *spec) DefaultRefreshWindowMS() float64 { return s.refWindowMS }
func (s *spec) Features() Features              { return s.features }

func (s *spec) Timing(d Density, refWindowMS float64, g Geometry) Timing {
	return s.timing(d, refWindowMS, g)
}

var standards = map[string]Standard{}

// RegisterStandard adds a standard to the registry; it panics on a duplicate
// name so a wiring mistake fails at init.
func RegisterStandard(s Standard) {
	if _, dup := standards[s.Name()]; dup {
		panic(fmt.Sprintf("dram: standard %q registered twice", s.Name()))
	}
	standards[s.Name()] = s
}

// StandardByName looks a standard up; the error lists the registered names.
func StandardByName(name string) (Standard, error) {
	if s, ok := standards[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("dram: unknown standard %q (registered: %s)", name, joinNames(StandardNames()))
}

// StandardNames returns the registered standard names, sorted.
func StandardNames() []string {
	names := make([]string, 0, len(standards))
	for n := range standards {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// toCyclesIn rounds a nanosecond parameter to command-clock cycles of the
// given cycle time.
func toCyclesIn(ns, cycleNs float64) int { return int(ns/cycleNs + 0.5) }

// refsPerWindow is the number of refresh commands per retention window every
// supported standard schedules (JEDEC's 8192 for DDR-class devices).
const refsPerWindow = 8192

// DDR5 cycle time: DDR5-4800, a 2400 MHz command clock.
const ddr5CycleNs = 1e9 / 2400e6

// DDR5 returns the timing table for a DDR5-4800 chip. Core timings follow
// the JEDEC DDR5-4800B speed bin (tRCD/tRP ~15.8 ns, tRAS 32 ns, tWR 30 ns);
// tRFC reuses the density extrapolation table shared with LPDDR4 (documented
// as an estimate in DESIGN.md), and the same-bank refresh time tRFCsb is
// modelled as half of tRFC, carried in the RFCpb slot that the per-bank
// refresh machinery consumes.
func DDR5(d Density, refWindowMS float64, g Geometry) Timing {
	window := int64(refWindowMS * 1e6 / ddr5CycleNs)
	return Timing{
		RCD:        38,
		RAS:        77,
		RP:         38,
		WR:         72,
		RTP:        18,
		WTR:        24,
		CCD:        8,
		RRD:        12,
		FAW:        32,
		CL:         40,
		CWL:        38,
		BL:         8,
		RFC:        toCyclesIn(d.RFCNanos(), ddr5CycleNs),
		RFCpb:      toCyclesIn(d.RFCNanos()/2, ddr5CycleNs),
		REFI:       int(window / refsPerWindow),
		RefWindow:  window,
		RowsPerRef: g.RowsPerBank / refsPerWindow,
		CycleNs:    ddr5CycleNs,
	}
}

// DDR4 cycle time: DDR4-3200, a 1600 MHz command clock.
const ddr4CycleNs = 1e9 / 1600e6

// DDR4 returns the timing table for a DDR4-3200 chip, following the JEDEC
// DDR4-3200AA speed bin (tRCD/tRP 13.75 ns, tRAS 32 ns, tWR 15 ns,
// tFAW 25 ns for x8 parts). tRFC reuses the density extrapolation table
// shared with LPDDR4 (documented as an estimate in DESIGN.md).
func DDR4(d Density, refWindowMS float64, g Geometry) Timing {
	window := int64(refWindowMS * 1e6 / ddr4CycleNs)
	return Timing{
		RCD:        22,
		RAS:        52,
		RP:         22,
		WR:         24,
		RTP:        12,
		WTR:        12,
		CCD:        8,
		RRD:        8,
		FAW:        40,
		CL:         22,
		CWL:        16,
		BL:         8,
		RFC:        toCyclesIn(d.RFCNanos(), ddr4CycleNs),
		RFCpb:      toCyclesIn(d.RFCNanos()/2, ddr4CycleNs),
		REFI:       int(window / refsPerWindow),
		RefWindow:  window,
		RowsPerRef: g.RowsPerBank / refsPerWindow,
		CycleNs:    ddr4CycleNs,
	}
}

// ddr4Geometry keeps the per-channel capacity of the LPDDR4 configuration
// (4 GiB of regular rows) in DDR4's 16-bank, 8 KiB-row organization.
func ddr4Geometry(copyRows int) Geometry {
	return Geometry{
		Ranks:           1,
		Banks:           16,
		RowsPerBank:     32 * 1024,
		RowsPerSubarray: 512,
		CopyRows:        copyRows,
		RowBytes:        8 * 1024,
		LineBytes:       64,
	}
}

// HBM2 cycle time: a 1000 MHz command clock (2 Gb/s/pin).
const hbm2CycleNs = 1.0

// HBM2 returns the timing table for an HBM2 stack channel. With a 1 ns
// cycle the table is nearly the nanosecond spec itself: tRCD/tRP 14 ns,
// tRAS 34 ns, tFAW 16 ns. A 64-byte line on a 64-bit pseudo-channel bus is
// a 4-cycle burst. tRFC reuses the shared density extrapolation table.
func HBM2(d Density, refWindowMS float64, g Geometry) Timing {
	window := int64(refWindowMS * 1e6 / hbm2CycleNs)
	return Timing{
		RCD:        14,
		RAS:        34,
		RP:         14,
		WR:         16,
		RTP:        7,
		WTR:        8,
		CCD:        4,
		RRD:        4,
		FAW:        16,
		CL:         14,
		CWL:        7,
		BL:         4,
		RFC:        toCyclesIn(d.RFCNanos(), hbm2CycleNs),
		RFCpb:      toCyclesIn(d.RFCNanos()/2, hbm2CycleNs),
		REFI:       int(window / refsPerWindow),
		RefWindow:  window,
		RowsPerRef: g.RowsPerBank / refsPerWindow,
		CycleNs:    hbm2CycleNs,
	}
}

// LPDDR5 cycle time: LPDDR5-6400, an 800 MHz command clock (CK). Data moves
// on the 4:1 WCK, but every timing parameter the controller schedules against
// is specified in CK cycles, so CK is the command clock the simulator ticks.
const lpddr5CycleNs = 1e9 / 800e6

// LPDDR5 returns the timing table for an LPDDR5-6400 chip. Core timings
// follow the JEDEC LPDDR5 nanosecond spec (tRCD 18 ns, tRAS 42 ns, tRPpb
// 18 ns, tWR 34 ns, tFAW 20 ns) rounded to the 1.25 ns CK; a 64-byte line is
// a 4-CK burst on the 4:1 WCK. tRFC reuses the density extrapolation table
// shared with LPDDR4 (documented as an estimate in DESIGN.md), with the
// per-bank tRFCpb as half of tRFCab as in LPDDR4.
func LPDDR5(d Density, refWindowMS float64, g Geometry) Timing {
	window := int64(refWindowMS * 1e6 / lpddr5CycleNs)
	return Timing{
		RCD:        15,
		RAS:        34,
		RP:         15,
		WR:         27,
		RTP:        6,
		WTR:        8,
		CCD:        4,
		RRD:        6,
		FAW:        16,
		CL:         15,
		CWL:        9,
		BL:         4,
		RFC:        toCyclesIn(d.RFCNanos(), lpddr5CycleNs),
		RFCpb:      toCyclesIn(d.RFCNanos()/2, lpddr5CycleNs),
		REFI:       int(window / refsPerWindow),
		RefWindow:  window,
		RowsPerRef: g.RowsPerBank / refsPerWindow,
		CycleNs:    lpddr5CycleNs,
	}
}

// lpddr5Geometry keeps the per-channel capacity of the LPDDR4 configuration
// (4 GiB of regular rows) in LPDDR5's 16-bank organization.
func lpddr5Geometry(copyRows int) Geometry {
	return Geometry{
		Ranks:           1,
		Banks:           16,
		RowsPerBank:     32 * 1024,
		RowsPerSubarray: 512,
		CopyRows:        copyRows,
		RowBytes:        8 * 1024,
		LineBytes:       64,
	}
}

// ddr5Geometry keeps the per-channel capacity of the LPDDR4 configuration
// (4 GiB of regular rows) while moving to DDR5's 32-bank organization.
func ddr5Geometry(copyRows int) Geometry {
	return Geometry{
		Ranks:           1,
		Banks:           32,
		RowsPerBank:     16 * 1024,
		RowsPerSubarray: 512,
		CopyRows:        copyRows,
		RowBytes:        8 * 1024,
		LineBytes:       64,
	}
}

// hbm2Geometry models one HBM2 channel as two pseudo-channels (the rank
// dimension) of 16 banks with 2 KiB rows; eight such channels make a stack.
func hbm2Geometry(copyRows int) Geometry {
	return Geometry{
		Ranks:           2,
		Banks:           16,
		RowsPerBank:     16 * 1024,
		RowsPerSubarray: 512,
		CopyRows:        copyRows,
		RowBytes:        2 * 1024,
		LineBytes:       64,
	}
}

func init() {
	RegisterStandard(&spec{
		name:        "lpddr4",
		cycleNs:     Cycle,
		ratioNum:    2, // 1600 MHz command clock vs 4 GHz cores
		ratioDen:    5,
		channels:    4,
		refresh:     "allbank",
		refWindowMS: 64,
		geometry:    Std,
		timing:      LPDDR4,
	})
	RegisterStandard(&spec{
		name:        "lpddr5",
		cycleNs:     lpddr5CycleNs,
		ratioNum:    1, // 800 MHz command clock vs 4 GHz cores
		ratioDen:    5,
		channels:    4,
		refresh:     "perbank",
		refWindowMS: 32,
		geometry:    lpddr5Geometry,
		timing:      LPDDR5,
	})
	RegisterStandard(&spec{
		name:        "ddr4",
		cycleNs:     ddr4CycleNs,
		ratioNum:    2, // 1600 MHz command clock vs 4 GHz cores
		ratioDen:    5,
		channels:    4,
		refresh:     "allbank",
		refWindowMS: 64,
		geometry:    ddr4Geometry,
		timing:      DDR4,
	})
	RegisterStandard(&spec{
		name:        "ddr5",
		cycleNs:     ddr5CycleNs,
		ratioNum:    3, // 2400 MHz command clock vs 4 GHz cores
		ratioDen:    5,
		channels:    4,
		refresh:     "samebank",
		refWindowMS: 32,
		geometry:    ddr5Geometry,
		timing:      DDR5,
	})
	RegisterStandard(&spec{
		name:        "hbm2",
		cycleNs:     hbm2CycleNs,
		ratioNum:    1, // 1000 MHz command clock vs 4 GHz cores
		ratioDen:    4,
		channels:    8,
		refresh:     "perbank",
		refWindowMS: 32,
		features:    Features{PerRankDataBus: true},
		geometry:    hbm2Geometry,
		timing:      HBM2,
	})
}
