package dram

import "testing"

func testChannel(t *testing.T, copyRows int) (*Channel, *Checker) {
	t.Helper()
	g := Std(copyRows)
	tm := LPDDR4(Density8Gb, 64, g)
	c := NewChannel(g, tm)
	k := NewChecker(c)
	return c, k
}

func requireClean(t *testing.T, k *Checker) {
	t.Helper()
	for _, v := range k.Violations {
		t.Errorf("checker violation: %s", v)
	}
}

func TestActivateReadPrechargeSequence(t *testing.T) {
	c, k := testChannel(t, 0)
	a := Addr{Bank: 0, Row: 100, Col: 5}
	base := c.T.Base()

	if !c.CanACT(a, 0, ActSingle) {
		t.Fatal("ACT to idle bank must be legal at cycle 0")
	}
	c.ACT(a, 0, ActSingle, base, -1)

	if c.OpenRow(a) != 100 {
		t.Errorf("OpenRow = %d, want 100", c.OpenRow(a))
	}
	if c.CanRD(a, int64(c.T.RCD)-1) {
		t.Error("RD must be illegal before tRCD")
	}
	if !c.CanRD(a, int64(c.T.RCD)) {
		t.Fatal("RD must be legal at tRCD")
	}
	done := c.RD(a, int64(c.T.RCD))
	wantDone := int64(c.T.RCD + c.T.CL + c.T.BL)
	if done != wantDone {
		t.Errorf("RD data done = %d, want %d", done, wantDone)
	}

	if c.CanPRE(a, int64(c.T.RAS)-1) {
		t.Error("PRE must be illegal before tRAS")
	}
	if !c.CanPRE(a, int64(c.T.RAS)) {
		t.Fatal("PRE must be legal at tRAS")
	}
	if full := c.PRE(a, int64(c.T.RAS)); !full {
		t.Error("PRE at default tRAS counts as fully restored")
	}
	if c.OpenRow(a) != -1 {
		t.Error("row must be closed after PRE")
	}

	// Next ACT must wait tRP.
	preAt := int64(c.T.RAS)
	if c.CanACT(a, preAt+int64(c.T.RP)-1, ActSingle) {
		t.Error("ACT must be illegal before tRP")
	}
	if !c.CanACT(a, preAt+int64(c.T.RP), ActSingle) {
		t.Error("ACT must be legal at PRE+tRP")
	}
	requireClean(t, k)
}

func TestReadToWrongRowIllegal(t *testing.T) {
	c, _ := testChannel(t, 0)
	c.ACT(Addr{Row: 1}, 0, ActSingle, c.T.Base(), -1)
	if c.CanRD(Addr{Row: 2}, 100) {
		t.Error("RD to a row other than the open one must be illegal")
	}
}

func TestSingleOpenRowPerBank(t *testing.T) {
	c, _ := testChannel(t, 0)
	c.ACT(Addr{Row: 0}, 0, ActSingle, c.T.Base(), -1)
	// Another subarray of the same bank: illegal without MASA.
	if c.CanACT(Addr{Row: 512}, 1000, ActSingle) {
		t.Error("second open row in one bank must be illegal without MASA")
	}
	// Another bank: legal (after tRRD).
	if !c.CanACT(Addr{Bank: 1, Row: 0}, 1000, ActSingle) {
		t.Error("ACT to another bank must be legal")
	}
}

func TestMASAAllowsMultipleOpenSubarrays(t *testing.T) {
	g := Std(0)
	tm := LPDDR4(Density8Gb, 64, g)
	c := NewChannel(g, tm)
	c.MASA = true
	k := NewChecker(c)

	c.ACT(Addr{Row: 0}, 0, ActSingle, tm.Base(), -1)
	other := Addr{Row: 512} // different subarray, same bank
	if !c.CanACT(other, int64(tm.RRD), ActSingle) {
		t.Fatal("MASA must allow a second subarray activation in the same bank")
	}
	c.ACT(other, int64(tm.RRD), ActSingle, tm.Base(), -1)
	if c.OpenRow(Addr{Row: 0}) != 0 || c.OpenRow(other) != 512 {
		t.Error("both subarrays must be open")
	}
	if c.OpenBuffers() != 2 {
		t.Errorf("OpenBuffers = %d, want 2", c.OpenBuffers())
	}
	// Same subarray still at most one row.
	if c.CanACT(Addr{Row: 1}, 1000, ActSingle) {
		t.Error("same subarray must not open a second row")
	}
	requireClean(t, k)
}

func TestTRRDAndTFAW(t *testing.T) {
	// With the stock LPDDR4 parameters 4*tRRD == tFAW, so tFAW never
	// binds; shrink tRRD to make the four-activate window observable.
	g := Std(0)
	tm := LPDDR4(Density8Gb, 64, g)
	tm.RRD = 4
	c := NewChannel(g, tm)
	k := NewChecker(c)
	base := tm.Base()
	rrd := int64(tm.RRD)

	c.ACT(Addr{Bank: 0, Row: 0}, 0, ActSingle, base, -1)
	if c.CanACT(Addr{Bank: 1, Row: 0}, rrd-1, ActSingle) {
		t.Error("tRRD must gate back-to-back ACTs")
	}
	c.ACT(Addr{Bank: 1, Row: 0}, rrd, ActSingle, base, -1)
	c.ACT(Addr{Bank: 2, Row: 0}, 2*rrd, ActSingle, base, -1)
	c.ACT(Addr{Bank: 3, Row: 0}, 3*rrd, ActSingle, base, -1)
	// Fifth ACT within tFAW of the first must be illegal.
	if c.CanACT(Addr{Bank: 4, Row: 0}, 4*rrd, ActSingle) {
		t.Error("tFAW must gate the fifth ACT")
	}
	if !c.CanACT(Addr{Bank: 4, Row: 0}, int64(tm.FAW), ActSingle) {
		t.Error("fifth ACT at tFAW must be legal")
	}
	c.ACT(Addr{Bank: 4, Row: 0}, int64(tm.FAW), ActSingle, base, -1)
	requireClean(t, k)
}

func TestWriteRecoveryGatesPrecharge(t *testing.T) {
	c, k := testChannel(t, 0)
	a := Addr{Row: 7}
	c.ACT(a, 0, ActSingle, c.T.Base(), -1)
	wrAt := int64(c.T.RCD)
	c.WR(a, wrAt)
	dataEnd := wrAt + int64(c.T.CWL) + int64(c.T.BL)
	preOK := dataEnd + int64(c.T.WR)
	if c.CanPRE(a, preOK-1) {
		t.Error("PRE must be illegal before write recovery completes")
	}
	if !c.CanPRE(a, preOK) {
		t.Error("PRE must be legal after write recovery")
	}
	c.PRE(a, preOK)
	requireClean(t, k)
}

func TestMRAWriteRecoveryUsesPlan(t *testing.T) {
	c, _ := testChannel(t, 8)
	crow := c.T.CROW()
	a := Addr{Row: 7}
	c.ACT(a, 0, ActTwo, crow.TwoPartial, 0)
	wrAt := int64(crow.TwoPartial.RCD)
	c.WR(a, wrAt)
	dataEnd := wrAt + int64(c.T.CWL) + int64(c.T.BL)
	preOK := dataEnd + int64(crow.TwoPartial.WR)
	if c.CanPRE(a, preOK-1) {
		t.Error("PRE must respect the MRA plan's reduced tWR, not the default")
	}
	if !c.CanPRE(a, preOK) {
		t.Error("PRE must be legal after the plan's write recovery")
	}
}

func TestPartialRestoreDetection(t *testing.T) {
	c, _ := testChannel(t, 8)
	crow := c.T.CROW()
	a := Addr{Row: 3}
	c.ACT(a, 0, ActTwo, crow.TwoFull, 0)
	// Closing at the reduced tRAS terminates restoration early.
	if full := c.PRE(a, int64(crow.TwoFull.RAS)); full {
		t.Error("PRE before default tRAS must report partial restoration")
	}
	// Reopen and hold past default tRAS: fully restored.
	reACT := int64(crow.TwoFull.RAS) + int64(c.T.RP)
	c.ACT(a, reACT, ActTwo, crow.TwoPartial, 0)
	if full := c.PRE(a, reACT+int64(c.T.RAS)); !full {
		t.Error("PRE at/after default tRAS must report full restoration")
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	c, k := testChannel(t, 0)
	if !c.CanREF(0, 0) {
		t.Fatal("REF to idle rank must be legal")
	}
	c.REF(0, 0)
	if c.CanACT(Addr{Row: 0}, int64(c.T.RFC)-1, ActSingle) {
		t.Error("ACT during tRFC must be illegal")
	}
	if !c.CanACT(Addr{Row: 0}, int64(c.T.RFC), ActSingle) {
		t.Error("ACT at tRFC must be legal")
	}
	requireClean(t, k)
}

func TestRefreshRequiresClosedBanks(t *testing.T) {
	c, _ := testChannel(t, 0)
	c.ACT(Addr{Row: 0}, 0, ActSingle, c.T.Base(), -1)
	if c.CanREF(0, 1000) {
		t.Error("REF with an open row must be illegal")
	}
	c.PRE(Addr{Row: 0}, int64(c.T.RAS))
	preAt := int64(c.T.RAS)
	if c.CanREF(0, preAt+int64(c.T.RP)-1) {
		t.Error("REF before tRP must be illegal")
	}
	if !c.CanREF(0, preAt+int64(c.T.RP)) {
		t.Error("REF after tRP must be legal")
	}
}

func TestCROWCommandBusOccupancy(t *testing.T) {
	c, _ := testChannel(t, 8)
	crow := c.T.CROW()
	c.ACT(Addr{Bank: 0, Row: 0}, 0, ActTwo, crow.TwoFull, 0)
	// The CROW activate holds the command bus for two cycles, so even a
	// command to another bank cannot issue in the next cycle.
	if c.CanACT(Addr{Bank: 1, Row: 0}, int64(c.T.RRD), ActSingle) {
		// tRRD(16) > 2 so bus is free; use PRE path instead: nothing open.
		// Check bus directly with a RD after opening: covered below.
		_ = c
	}
	if c.cmdBusFree != 2 {
		t.Errorf("cmdBusFree = %d, want 2 after ACT-t", c.cmdBusFree)
	}
	c2, _ := testChannel(t, 8)
	c2.ACT(Addr{Bank: 0, Row: 0}, 0, ActSingle, c2.T.Base(), -1)
	if c2.cmdBusFree != 1 {
		t.Errorf("cmdBusFree = %d, want 1 after plain ACT", c2.cmdBusFree)
	}
}

func TestDataBusConflictAcrossBanks(t *testing.T) {
	c, k := testChannel(t, 0)
	base := c.T.Base()
	c.ACT(Addr{Bank: 0, Row: 0}, 0, ActSingle, base, -1)
	c.ACT(Addr{Bank: 1, Row: 0}, int64(c.T.RRD), ActSingle, base, -1)
	// Read bank 0 once both banks have satisfied tRCD so that tCCD is the
	// binding constraint for the second read.
	rd1 := int64(c.T.RRD + c.T.RCD)
	c.RD(Addr{Bank: 0, Row: 0}, rd1)
	// A second RD must wait tCCD (which equals BL here, so the bus is
	// contiguous with no overlap).
	if c.CanRD(Addr{Bank: 1, Row: 0}, rd1+int64(c.T.CCD)-1) {
		t.Error("tCCD must gate back-to-back reads")
	}
	if !c.CanRD(Addr{Bank: 1, Row: 0}, rd1+int64(c.T.CCD)) {
		t.Error("RD at tCCD must be legal")
	}
	c.RD(Addr{Bank: 1, Row: 0}, rd1+int64(c.T.CCD))
	requireClean(t, k)
}

func TestWriteToReadTurnaround(t *testing.T) {
	c, k := testChannel(t, 0)
	base := c.T.Base()
	c.ACT(Addr{Bank: 0, Row: 0}, 0, ActSingle, base, -1)
	wrAt := int64(c.T.RCD)
	c.WR(Addr{Bank: 0, Row: 0}, wrAt)
	dataEnd := wrAt + int64(c.T.CWL) + int64(c.T.BL)
	rdOK := dataEnd + int64(c.T.WTR)
	if c.CanRD(Addr{Bank: 0, Row: 0}, rdOK-1) {
		t.Error("tWTR must gate WR->RD")
	}
	if !c.CanRD(Addr{Bank: 0, Row: 0}, rdOK) {
		t.Error("RD after tWTR must be legal")
	}
	c.RD(Addr{Bank: 0, Row: 0}, rdOK)
	requireClean(t, k)
}

func TestStatsCounting(t *testing.T) {
	c, _ := testChannel(t, 8)
	crow := c.T.CROW()
	c.ACT(Addr{Row: 0}, 0, ActCopy, crow.Copy, 0)
	c.PRE(Addr{Row: 0}, int64(crow.Copy.RAS))
	next := int64(crow.Copy.RAS) + int64(c.T.RP)
	c.ACT(Addr{Row: 0}, next, ActTwo, crow.TwoPartial, 0)
	c.RD(Addr{Row: 0}, next+int64(crow.TwoPartial.RCD))
	if c.Stats.ACTCopy != 1 || c.Stats.ACTTwo != 1 || c.Stats.PRE != 1 || c.Stats.RD != 1 {
		t.Errorf("stats mismatch: %+v", c.Stats)
	}
	if c.Stats.Activations() != 2 {
		t.Errorf("Activations = %d, want 2", c.Stats.Activations())
	}
}

func TestTickAccumulatesOpenBufferCycles(t *testing.T) {
	c, _ := testChannel(t, 0)
	c.Tick(10) // nothing open yet
	c.ACT(Addr{Row: 0}, 10, ActSingle, c.T.Base(), -1)
	c.Tick(20)
	if c.Stats.OpenBufferCycles != 10 {
		t.Errorf("OpenBufferCycles = %d, want 10", c.Stats.OpenBufferCycles)
	}
	if c.Stats.ActiveStandbyCycles != 10 {
		t.Errorf("ActiveStandbyCycles = %d, want 10", c.Stats.ActiveStandbyCycles)
	}
}

func TestIllegalCommandPanics(t *testing.T) {
	c, _ := testChannel(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("RD to closed bank must panic")
		}
	}()
	c.RD(Addr{Row: 0}, 0)
}
