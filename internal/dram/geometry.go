// Package dram implements a cycle-accurate model of an LPDDR4-style DRAM
// channel, extended with the CROW substrate's multiple-row-activation (MRA)
// commands (ACT-c and ACT-t) and with SALP-MASA-style subarray-level
// parallelism for the baseline comparisons.
//
// The device is a passive state machine: a memory controller queries command
// legality with the Can* methods and advances state with the corresponding
// issue methods. All times are in DRAM command-clock cycles (1600 MHz for
// LPDDR4-3200, i.e. 0.625 ns per cycle).
package dram

// Geometry describes the physical organization of one DRAM channel.
//
// The default values follow Table 2 of the CROW paper: 1 rank, 8 banks,
// 64 K rows per bank, 512 regular rows per subarray (so 128 subarrays per
// bank), and an 8 KiB row buffer. Copy rows are the extra CROW rows added to
// each subarray; they are addressed separately from regular rows and do not
// count toward RowsPerBank.
type Geometry struct {
	Ranks           int // ranks per channel
	Banks           int // banks per rank
	RowsPerBank     int // regular rows per bank
	RowsPerSubarray int // regular rows per subarray
	CopyRows        int // CROW copy rows per subarray (0 = conventional DRAM)
	RowBytes        int // row buffer size in bytes
	LineBytes       int // cache line (column access) size in bytes
}

// Std returns the CROW paper's simulated geometry (Table 2) with the given
// number of copy rows per subarray.
func Std(copyRows int) Geometry {
	return Geometry{
		Ranks:           1,
		Banks:           8,
		RowsPerBank:     64 * 1024,
		RowsPerSubarray: 512,
		CopyRows:        copyRows,
		RowBytes:        8 * 1024,
		LineBytes:       64,
	}
}

// SubarraysPerBank returns the number of subarrays in each bank.
func (g Geometry) SubarraysPerBank() int { return g.RowsPerBank / g.RowsPerSubarray }

// ColumnsPerRow returns the number of cache-line-sized columns in a row.
func (g Geometry) ColumnsPerRow() int { return g.RowBytes / g.LineBytes }

// ChannelBytes returns the regular-row storage capacity of one channel.
func (g Geometry) ChannelBytes() int64 {
	return int64(g.Ranks) * int64(g.Banks) * int64(g.RowsPerBank) * int64(g.RowBytes)
}

// Subarray returns the subarray index that contains the given regular row.
func (g Geometry) Subarray(row int) int { return row / g.RowsPerSubarray }

// RowInSubarray returns the index of the given regular row within its
// subarray (0 .. RowsPerSubarray-1).
func (g Geometry) RowInSubarray(row int) int { return row % g.RowsPerSubarray }

// Addr identifies one cache-line-sized location in a multi-channel DRAM
// system, after address decoding.
type Addr struct {
	Channel int
	Rank    int
	Bank    int
	Row     int // regular row index within the bank
	Col     int // cache-line column index within the row
}

// Subarray returns the subarray index of the address within its bank.
func (a Addr) Subarray(g Geometry) int { return g.Subarray(a.Row) }

// Mapper decodes flat physical addresses into DRAM coordinates.
//
// The bit layout, from least to most significant, is
//
//	[line offset | channel | column | bank | rank | row]
//
// which interleaves consecutive cache lines across channels and then across
// the columns of one row (the "RoBaRaCoCh" mapping used as the Ramulator
// default). Streaming accesses therefore hit the same row repeatedly while
// spreading load over all channels.
type Mapper struct {
	Channels int
	Geo      Geometry

	chBits, colBits, bankBits, rankBits, rowBits, lineBits uint
}

// NewMapper builds a Mapper for a system of `channels` identical channels.
// All geometry dimensions must be powers of two.
func NewMapper(channels int, g Geometry) *Mapper {
	m := &Mapper{Channels: channels, Geo: g}
	m.lineBits = log2(g.LineBytes)
	m.chBits = log2(channels)
	m.colBits = log2(g.ColumnsPerRow())
	m.bankBits = log2(g.Banks)
	m.rankBits = log2(g.Ranks)
	m.rowBits = log2(g.RowsPerBank)
	return m
}

// Bits returns the total number of significant physical address bits.
func (m *Mapper) Bits() uint {
	return m.lineBits + m.chBits + m.colBits + m.bankBits + m.rankBits + m.rowBits
}

// Capacity returns the total regular-row byte capacity across all channels.
func (m *Mapper) Capacity() int64 { return int64(m.Channels) * m.Geo.ChannelBytes() }

// Decode splits a physical address into DRAM coordinates. Address bits above
// Bits() are ignored, so callers may pass arbitrary 64-bit addresses.
func (m *Mapper) Decode(phys uint64) Addr {
	p := phys >> m.lineBits
	var a Addr
	a.Channel = int(p & mask(m.chBits))
	p >>= m.chBits
	a.Col = int(p & mask(m.colBits))
	p >>= m.colBits
	a.Bank = int(p & mask(m.bankBits))
	p >>= m.bankBits
	a.Rank = int(p & mask(m.rankBits))
	p >>= m.rankBits
	a.Row = int(p & mask(m.rowBits))
	return a
}

// Encode is the inverse of Decode; it reconstructs the canonical physical
// address of a coordinate (with a zero line offset).
func (m *Mapper) Encode(a Addr) uint64 {
	p := uint64(a.Row)
	p = p<<m.rankBits | uint64(a.Rank)
	p = p<<m.bankBits | uint64(a.Bank)
	p = p<<m.colBits | uint64(a.Col)
	p = p<<m.chBits | uint64(a.Channel)
	return p << m.lineBits
}

func log2(v int) uint {
	var b uint
	for 1<<b < v {
		b++
	}
	if 1<<b != v {
		panic("dram: dimension is not a power of two")
	}
	return b
}

func mask(bits uint) uint64 { return 1<<bits - 1 }
