package dram

import (
	"testing"
	"testing/quick"
)

func TestLPDDR4Baseline(t *testing.T) {
	tm := LPDDR4(Density8Gb, 64, Std(8))
	if tm.RCD != 29 || tm.RAS != 67 || tm.WR != 29 {
		t.Errorf("tRCD/tRAS/tWR = %d/%d/%d, want 29/67/29 (Table 2)", tm.RCD, tm.RAS, tm.WR)
	}
	if tm.RFC != 448 { // 280 ns at 0.625 ns/cycle
		t.Errorf("tRFC = %d cycles, want 448", tm.RFC)
	}
	// 64 ms window / 8192 REFs = 7.8125 us = 12500 cycles.
	if tm.REFI != 12500 {
		t.Errorf("tREFI = %d cycles, want 12500", tm.REFI)
	}
	if tm.RowsPerRef != 8 {
		t.Errorf("RowsPerRef = %d, want 8", tm.RowsPerRef)
	}
}

func TestRefWindowScaling(t *testing.T) {
	base := LPDDR4(Density8Gb, 64, Std(8))
	ext := LPDDR4(Density8Gb, 128, Std(8))
	if ext.REFI != 2*base.REFI {
		t.Errorf("doubling the window must double tREFI: %d vs %d", ext.REFI, base.REFI)
	}
	if ext.RFC != base.RFC {
		t.Errorf("tRFC must not change with the window")
	}
}

func TestRFCGrowsWithDensity(t *testing.T) {
	prev := 0
	for _, d := range []Density{Density8Gb, Density16Gb, Density32Gb, Density64Gb} {
		tm := LPDDR4(d, 64, Std(8))
		if tm.RFC <= prev {
			t.Errorf("tRFC must grow with density; %v -> %d", d, tm.RFC)
		}
		prev = tm.RFC
	}
}

func TestCROWTimingsTable1(t *testing.T) {
	tm := LPDDR4(Density8Gb, 64, Std(8))
	c := tm.CROW()
	// Table 1: ACT-t on fully-restored rows: tRCD -38%, tRAS -33% (early
	// termination), tWR -13%.
	if c.TwoFull.RCD != 18 {
		t.Errorf("TwoFull.RCD = %d, want 18 (29 * 0.62)", c.TwoFull.RCD)
	}
	if c.TwoFull.RAS != 45 {
		t.Errorf("TwoFull.RAS = %d, want 45 (67 * 0.67)", c.TwoFull.RAS)
	}
	if c.TwoFull.WR != 25 {
		t.Errorf("TwoFull.WR = %d, want 25 (29 * 0.87)", c.TwoFull.WR)
	}
	// ACT-t on partially-restored rows: tRCD -21%, tRAS -25%.
	if c.TwoPartial.RCD != 23 {
		t.Errorf("TwoPartial.RCD = %d, want 23 (29 * 0.79)", c.TwoPartial.RCD)
	}
	if c.TwoPartial.RAS != 50 {
		t.Errorf("TwoPartial.RAS = %d, want 50 (67 * 0.75)", c.TwoPartial.RAS)
	}
	// Restore before eviction fully restores two cells: tRAS -7%, tWR +14%.
	if c.TwoRestore.RAS != 62 {
		t.Errorf("TwoRestore.RAS = %d, want 62 (67 * 0.93)", c.TwoRestore.RAS)
	}
	if c.TwoRestore.WR != 33 {
		t.Errorf("TwoRestore.WR = %d, want 33 (29 * 1.14)", c.TwoRestore.WR)
	}
	// ACT-c: tRCD unchanged; tRAS -7% early / +18% full.
	if c.Copy.RCD != tm.RCD {
		t.Errorf("Copy.RCD = %d, want unchanged %d", c.Copy.RCD, tm.RCD)
	}
	if c.Copy.RAS != 62 || c.CopyFull.RAS != 79 {
		t.Errorf("Copy.RAS/CopyFull.RAS = %d/%d, want 62/79", c.Copy.RAS, c.CopyFull.RAS)
	}
}

func TestActKind(t *testing.T) {
	if ActSingle.IsMRA() || ActCopyRow.IsMRA() {
		t.Error("single-row activations must not be MRA")
	}
	if !ActTwo.IsMRA() || !ActCopy.IsMRA() {
		t.Error("ACT-t and ACT-c are MRA")
	}
	if ActSingle.CmdCycles() != 1 {
		t.Error("ACT takes one command cycle")
	}
	for _, k := range []ActKind{ActTwo, ActCopy, ActCopyRow} {
		if k.CmdCycles() != 2 {
			t.Errorf("%v must take an extra address cycle", k)
		}
	}
}

// TestScaleNeverBelowOne: derived timings must remain positive for any
// baseline value, as a property.
func TestScaleNeverBelowOne(t *testing.T) {
	f := func(base uint8, centiDelta int8) bool {
		return scale(int(base), float64(centiDelta)/100) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
