package dram

import (
	"strings"
	"testing"
)

// These tests feed deliberately illegal command sequences straight into the
// checker (bypassing the device, which would panic) and assert that each
// violation is caught — guarding against the checker silently passing
// everything.

func newBareChecker() *Checker {
	g := Std(8)
	return NewChecker(NewChannel(g, LPDDR4(Density8Gb, 64, g)))
}

func expectViolation(t *testing.T, k *Checker, substr string) {
	t.Helper()
	for _, v := range k.Violations {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Errorf("expected a %q violation, got %v", substr, k.Violations)
}

func base(k *Checker) ActTimings { return k.T.Base() }

func TestCheckerCatchesTRCDViolation(t *testing.T) {
	k := newBareChecker()
	a := Addr{Row: 5}
	k.RecordPlanned(CmdACT, a, 0, base(k), -1)
	k.RecordPlanned(CmdRD, a, int64(k.T.RCD)-1, ActTimings{}, -1)
	expectViolation(t, k, "tRCD")
}

func TestCheckerCatchesTRASViolation(t *testing.T) {
	k := newBareChecker()
	a := Addr{Row: 5}
	k.RecordPlanned(CmdACT, a, 0, base(k), -1)
	k.RecordPlanned(CmdPRE, a, int64(k.T.RAS)-1, ActTimings{}, -1)
	expectViolation(t, k, "tRAS")
}

func TestCheckerCatchesTRPViolation(t *testing.T) {
	k := newBareChecker()
	a := Addr{Row: 5}
	k.RecordPlanned(CmdACT, a, 0, base(k), -1)
	k.RecordPlanned(CmdPRE, a, int64(k.T.RAS), ActTimings{}, -1)
	k.RecordPlanned(CmdACT, a, int64(k.T.RAS)+int64(k.T.RP)-1, base(k), -1)
	expectViolation(t, k, "tRP")
}

func TestCheckerCatchesDoubleOpen(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdACT, Addr{Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdACT, Addr{Row: 6}, 1000, base(k), -1) // same subarray
	expectViolation(t, k, "already open")
}

func TestCheckerCatchesBankSecondSubarrayWithoutMASA(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdACT, Addr{Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdACT, Addr{Row: 5 + 512}, 1000, base(k), -1) // other subarray, same bank
	expectViolation(t, k, "another open subarray")
}

func TestCheckerAllowsSecondSubarrayWithMASA(t *testing.T) {
	g := Std(8)
	c := NewChannel(g, LPDDR4(Density8Gb, 64, g))
	c.MASA = true
	k := NewChecker(c)
	k.RecordPlanned(CmdACT, Addr{Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdACT, Addr{Row: 5 + 512}, 1000, base(k), -1)
	if len(k.Violations) != 0 {
		t.Errorf("MASA must allow it: %v", k.Violations)
	}
}

func TestCheckerCatchesColumnToClosedRow(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdRD, Addr{Row: 5}, 100, ActTimings{}, -1)
	expectViolation(t, k, "closed subarray")
}

func TestCheckerCatchesRowMismatch(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdACT, Addr{Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdRD, Addr{Row: 6}, 1000, ActTimings{}, -1)
	expectViolation(t, k, "row mismatch")
}

func TestCheckerCatchesTRRDViolation(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdACT, Addr{Bank: 0, Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdACT, Addr{Bank: 1, Row: 5}, int64(k.T.RRD)-1, base(k), -1)
	expectViolation(t, k, "tRRD")
}

func TestCheckerCatchesCommandBusConflict(t *testing.T) {
	k := newBareChecker()
	crow := k.T.CROW()
	// ACT-t occupies two command cycles.
	k.RecordPlanned(CmdACTt, Addr{Bank: 0, Row: 5}, 0, crow.TwoFull, 0)
	k.RecordPlanned(CmdACT, Addr{Bank: 1, Row: 5}, 1, base(k), -1)
	expectViolation(t, k, "command bus")
}

func TestCheckerCatchesWriteRecoveryViolation(t *testing.T) {
	k := newBareChecker()
	a := Addr{Row: 5}
	k.RecordPlanned(CmdACT, a, 0, base(k), -1)
	wrAt := int64(k.T.RCD)
	k.RecordPlanned(CmdWR, a, wrAt, ActTimings{}, -1)
	// PRE right after the write burst, well before write recovery.
	k.RecordPlanned(CmdPRE, a, wrAt+int64(k.T.CWL)+int64(k.T.BL)+1, ActTimings{}, -1)
	expectViolation(t, k, "write recovery")
}

func TestCheckerCatchesRefreshViolations(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdACT, Addr{Row: 5}, 0, base(k), -1)
	k.RecordPlanned(CmdREF, Addr{}, 1000, ActTimings{}, -1)
	expectViolation(t, k, "open subarray")

	k2 := newBareChecker()
	k2.RecordPlanned(CmdREF, Addr{}, 0, ActTimings{}, -1)
	k2.RecordPlanned(CmdACT, Addr{Row: 5}, int64(k2.T.RFC)-1, base(k2), -1)
	expectViolation(t, k2, "tRFC")
}

func TestCheckerCatchesREFpbViolations(t *testing.T) {
	k := newBareChecker()
	k.RecordPlanned(CmdREFpb, Addr{Bank: 2}, 0, ActTimings{}, -1)
	k.RecordPlanned(CmdACT, Addr{Bank: 2, Row: 5}, int64(k.T.RFCpb)-1, base(k), -1)
	expectViolation(t, k, "tRFCpb")

	// Another bank is free during REFpb.
	k2 := newBareChecker()
	k2.RecordPlanned(CmdREFpb, Addr{Bank: 2}, 0, ActTimings{}, -1)
	k2.RecordPlanned(CmdACT, Addr{Bank: 3, Row: 5}, int64(k2.T.RRD), base(k2), -1)
	if len(k2.Violations) != 0 {
		t.Errorf("other banks must be usable during REFpb: %v", k2.Violations)
	}

	// REFpb with the bank open.
	k3 := newBareChecker()
	k3.RecordPlanned(CmdACT, Addr{Bank: 2, Row: 5}, 0, base(k3), -1)
	k3.RecordPlanned(CmdREFpb, Addr{Bank: 2}, 1000, ActTimings{}, -1)
	expectViolation(t, k3, "open bank")
}

func TestCheckerCleanOnLegalSequence(t *testing.T) {
	k := newBareChecker()
	a := Addr{Row: 5}
	k.RecordPlanned(CmdACT, a, 0, base(k), -1)
	k.RecordPlanned(CmdRD, a, int64(k.T.RCD), ActTimings{}, -1)
	k.RecordPlanned(CmdPRE, a, int64(k.T.RAS), ActTimings{}, -1)
	k.RecordPlanned(CmdACT, a, int64(k.T.RAS)+int64(k.T.RP), base(k), -1)
	if len(k.Violations) != 0 {
		t.Errorf("legal sequence flagged: %v", k.Violations)
	}
}
