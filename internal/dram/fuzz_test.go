package dram

import (
	"math/rand"
	"testing"
)

// TestRandomCommandStream drives the device with randomly chosen commands,
// issuing each one only when the device reports it legal, and lets the
// independent checker validate the whole stream. This exercises corner
// interleavings (refresh vs activation, MRA plans, per-bank refresh, MASA)
// that the targeted tests do not.
func TestRandomCommandStream(t *testing.T) {
	for _, masa := range []bool{false, true} {
		name := "conventional"
		if masa {
			name = "masa"
		}
		t.Run(name, func(t *testing.T) {
			g := Std(8)
			tm := LPDDR4(Density8Gb, 64, g)
			c := NewChannel(g, tm)
			c.MASA = masa
			k := NewChecker(g, tm, masa)
			k.Attach(c)
			crow := tm.CROW()
			rng := rand.New(rand.NewSource(99))

			plans := []struct {
				kind ActKind
				t    ActTimings
			}{
				{ActSingle, tm.Base()},
				{ActTwo, crow.TwoFull},
				{ActTwo, crow.TwoPartial},
				{ActCopy, crow.Copy},
				{ActCopyRow, tm.Base()},
			}

			issued := 0
			for now := int64(0); issued < 400 && now < 2_000_000; now++ {
				c.Tick(now)
				a := Addr{
					Bank: rng.Intn(g.Banks),
					Row:  rng.Intn(64),
					Col:  rng.Intn(g.ColumnsPerRow()),
				}
				switch rng.Intn(6) {
				case 0:
					p := plans[rng.Intn(len(plans))]
					if c.CanACT(a, now, p.kind) {
						c.ACT(a, now, p.kind, p.t)
						issued++
					}
				case 1:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanRD(a, now) {
							c.RD(a, now)
							issued++
						}
					}
				case 2:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanWR(a, now) {
							c.WR(a, now)
							issued++
						}
					}
				case 3:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanPRE(a, now) {
							c.PRE(a, now)
							issued++
						}
					}
				case 4:
					if c.CanREF(0, now) && rng.Intn(50) == 0 {
						c.REF(0, now)
						issued++
					}
				case 5:
					b := rng.Intn(g.Banks)
					if c.CanREFpb(0, b, now) && rng.Intn(50) == 0 {
						c.REFpb(0, b, now)
						issued++
					}
				}
			}
			if issued < 400 {
				t.Fatalf("only %d commands issued; device livelocked?", issued)
			}
			for _, v := range k.Violations {
				t.Errorf("checker: %s", v)
			}
			if c.Stats.Activations() == 0 || c.Stats.PRE == 0 {
				t.Error("stream must include activity")
			}
		})
	}
}
