package dram

import (
	"math/rand"
	"testing"
)

// commandPlans are the activation variants a fuzzed or random driver may
// issue, with their timing plans.
func commandPlans(tm Timing) []struct {
	kind ActKind
	t    ActTimings
} {
	crow := tm.CROW()
	return []struct {
		kind ActKind
		t    ActTimings
	}{
		{ActSingle, tm.Base()},
		{ActTwo, crow.TwoFull},
		{ActTwo, crow.TwoPartial},
		{ActCopy, crow.Copy},
		{ActCopyRow, tm.Base()},
	}
}

// TestRandomCommandStream drives the device with randomly chosen commands,
// issuing each one only when the device reports it legal, and lets the
// independent checker validate the whole stream. This exercises corner
// interleavings (refresh vs activation, MRA plans, per-bank refresh, MASA)
// that the targeted tests do not.
func TestRandomCommandStream(t *testing.T) {
	for _, masa := range []bool{false, true} {
		name := "conventional"
		if masa {
			name = "masa"
		}
		t.Run(name, func(t *testing.T) {
			g := Std(8)
			tm := LPDDR4(Density8Gb, 64, g)
			c := NewChannel(g, tm)
			c.MASA = masa
			k := NewChecker(c)
			rng := rand.New(rand.NewSource(99))
			plans := commandPlans(tm)

			issued := 0
			for now := int64(0); issued < 400 && now < 2_000_000; now++ {
				c.Tick(now)
				a := Addr{
					Bank: rng.Intn(g.Banks),
					Row:  rng.Intn(64),
					Col:  rng.Intn(g.ColumnsPerRow()),
				}
				switch rng.Intn(6) {
				case 0:
					p := plans[rng.Intn(len(plans))]
					if c.CanACT(a, now, p.kind) {
						copyRow := -1
						if p.kind != ActSingle {
							copyRow = rng.Intn(g.CopyRows)
						}
						c.ACT(a, now, p.kind, p.t, copyRow)
						issued++
					}
				case 1:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanRD(a, now) {
							c.RD(a, now)
							issued++
						}
					}
				case 2:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanWR(a, now) {
							c.WR(a, now)
							issued++
						}
					}
				case 3:
					if open := c.OpenRow(a); open >= 0 {
						a.Row = open
						if c.CanPRE(a, now) {
							c.PRE(a, now)
							issued++
						}
					}
				case 4:
					if c.CanREF(0, now) && rng.Intn(50) == 0 {
						c.REF(0, now)
						issued++
					}
				case 5:
					b := rng.Intn(g.Banks)
					if c.CanREFpb(0, b, now) && rng.Intn(50) == 0 {
						c.REFpb(0, b, now)
						issued++
					}
				}
			}
			if issued < 400 {
				t.Fatalf("only %d commands issued; device livelocked?", issued)
			}
			for _, v := range k.Violations {
				t.Errorf("checker: %s", v)
			}
			if c.Stats.Activations() == 0 || c.Stats.PRE == 0 {
				t.Error("stream must include activity")
			}
		})
	}
}

// driveCommandStream interprets data as a command script against a fresh
// channel: every three bytes pick a time advance, a command, and an address.
// Commands issue only when the device reports them legal — the properties
// under test are that no legal-by-the-device sequence panics and that the
// independent checker agrees the whole stream is clean.
func driveCommandStream(t *testing.T, data []byte) {
	t.Helper()
	if len(data) < 4 {
		return
	}
	g := Std(8)
	tm := LPDDR4(Density8Gb, 64, g)
	c := NewChannel(g, tm)
	c.MASA = data[0]&1 != 0
	k := NewChecker(c)
	plans := commandPlans(tm)

	now := int64(0)
	for i := 1; i+2 < len(data); i += 3 {
		op, sel, adv := data[i], data[i+1], data[i+2]
		// Advance time by 1..1024 cycles so slow constraints (tRFC,
		// write recovery) can clear within short inputs.
		now += 1 + int64(adv)*4
		c.Tick(now)
		a := Addr{
			Bank: int(sel) % g.Banks,
			Row:  int(sel>>3) % 64,
			Col:  int(op>>3) % g.ColumnsPerRow(),
		}
		switch op % 6 {
		case 0:
			p := plans[int(sel)%len(plans)]
			if c.CanACT(a, now, p.kind) {
				copyRow := -1
				if p.kind != ActSingle {
					copyRow = int(adv) % g.CopyRows
				}
				c.ACT(a, now, p.kind, p.t, copyRow)
			}
		case 1:
			if open := c.OpenRow(a); open >= 0 {
				a.Row = open
				if c.CanRD(a, now) {
					c.RD(a, now)
				}
			}
		case 2:
			if open := c.OpenRow(a); open >= 0 {
				a.Row = open
				if c.CanWR(a, now) {
					c.WR(a, now)
				}
			}
		case 3:
			if open := c.OpenRow(a); open >= 0 {
				a.Row = open
				if c.CanPRE(a, now) {
					c.PRE(a, now)
				}
			}
		case 4:
			if c.CanREF(0, now) {
				c.REF(0, now)
			}
		case 5:
			if b := int(sel) % g.Banks; c.CanREFpb(0, b, now) {
				c.REFpb(0, b, now)
			}
		}
	}
	for _, v := range k.Violations {
		t.Errorf("checker: %s", v)
	}
}

// FuzzCommandStream fuzzes the device/checker pair with arbitrary command
// scripts (go test -fuzz=FuzzCommandStream ./internal/dram).
func FuzzCommandStream(f *testing.F) {
	// Seed corpus: an activate-read-precharge burst, a refresh-heavy
	// script, a MASA multi-open script, and CROW activate mixes.
	f.Add([]byte{0x00, 0x00, 0x09, 0x10, 0x01, 0x09, 0x20, 0x03, 0x09, 0x30})
	f.Add([]byte{0x00, 0x04, 0x00, 0xff, 0x05, 0x01, 0xff, 0x04, 0x02, 0xff})
	f.Add([]byte{0x01, 0x00, 0x08, 0x20, 0x00, 0x10, 0x20, 0x01, 0x08, 0x20})
	f.Add([]byte{0x00, 0x00, 0x01, 0x40, 0x00, 0x02, 0x40, 0x00, 0x03, 0x40, 0x01, 0x0b, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		driveCommandStream(t, data)
	})
}
