package dram

import (
	"math"
	"testing"
)

// TestStandardTimingSanity checks cross-constraint invariants of every
// registered standard's timing table at every supported density: the clock
// ratio matches the cycle time, core timings are ordered sensibly, and the
// refresh schedule covers every row within the retention window. A new
// standard registered with an inconsistent table fails here before any
// simulation runs on it.
func TestStandardTimingSanity(t *testing.T) {
	const coreGHz = 4.0 // the simulator's fixed core clock
	densities := []Density{Density8Gb, Density16Gb, Density32Gb, Density64Gb}
	for _, name := range StandardNames() {
		std, err := StandardByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if std.Name() != name {
				t.Errorf("Name() = %q, registered as %q", std.Name(), name)
			}
			if std.CycleNs() <= 0 {
				t.Fatalf("CycleNs() = %v, want positive", std.CycleNs())
			}
			if std.Channels() <= 0 {
				t.Errorf("Channels() = %d, want positive", std.Channels())
			}
			if std.DefaultRefreshWindowMS() <= 0 {
				t.Errorf("DefaultRefreshWindowMS() = %v, want positive", std.DefaultRefreshWindowMS())
			}
			switch std.DefaultRefresh() {
			case "allbank", "perbank", "samebank":
			default:
				t.Errorf("DefaultRefresh() = %q, not a registered granularity", std.DefaultRefresh())
			}

			// The clock ratio and the cycle time must describe the same
			// clock: num command ticks per den core cycles.
			num, den := std.ClockRatio()
			if num <= 0 || den <= 0 || num > den {
				t.Fatalf("ClockRatio() = %d:%d, want 0 < num <= den", num, den)
			}
			cmdGHz := 1 / std.CycleNs()
			if got, want := float64(num)/float64(den), cmdGHz/coreGHz; math.Abs(got-want) > 1e-9 {
				t.Errorf("ClockRatio() = %d:%d (%.6f), but CycleNs implies %.6f", num, den, got, want)
			}

			g := std.Geometry(8)
			if g.Ranks <= 0 || g.Banks <= 0 || g.RowsPerBank <= 0 {
				t.Fatalf("degenerate geometry %+v", g)
			}
			if g.RowsPerBank%g.RowsPerSubarray != 0 {
				t.Errorf("RowsPerBank %d not a multiple of RowsPerSubarray %d", g.RowsPerBank, g.RowsPerSubarray)
			}
			if g.ColumnsPerRow() <= 0 {
				t.Errorf("ColumnsPerRow() = %d, want positive", g.ColumnsPerRow())
			}

			for _, d := range densities {
				tm := std.Timing(d, std.DefaultRefreshWindowMS(), g)
				if tm.CycleTime() != std.CycleNs() {
					t.Errorf("density %d: CycleTime() = %v, standard says %v", d, tm.CycleTime(), std.CycleNs())
				}
				for _, f := range []struct {
					name string
					v    int
				}{
					{"RCD", tm.RCD}, {"RAS", tm.RAS}, {"RP", tm.RP}, {"WR", tm.WR},
					{"RTP", tm.RTP}, {"WTR", tm.WTR}, {"CCD", tm.CCD}, {"RRD", tm.RRD},
					{"FAW", tm.FAW}, {"CL", tm.CL}, {"CWL", tm.CWL}, {"BL", tm.BL},
					{"RFC", tm.RFC}, {"RFCpb", tm.RFCpb}, {"REFI", tm.REFI},
					{"RowsPerRef", tm.RowsPerRef},
				} {
					if f.v <= 0 {
						t.Errorf("density %d: %s = %d, want positive", d, f.name, f.v)
					}
				}
				// Ordering constraints every row-buffer DRAM obeys.
				if tm.RAS < tm.RCD {
					t.Errorf("density %d: tRAS %d < tRCD %d", d, tm.RAS, tm.RCD)
				}
				if tm.RFC < tm.RFCpb {
					t.Errorf("density %d: tRFC %d < tRFCpb %d", d, tm.RFC, tm.RFCpb)
				}
				if tm.FAW < tm.RRD {
					t.Errorf("density %d: tFAW %d < tRRD %d", d, tm.FAW, tm.RRD)
				}
				// Refresh must not saturate the device: each all-bank REF
				// finishes well before the next is due.
				if tm.REFI <= tm.RFC {
					t.Errorf("density %d: tREFI %d <= tRFC %d (refresh saturates)", d, tm.REFI, tm.RFC)
				}
				// The schedule covers every row: refsPerWindow commands fit
				// in the window and together sweep the whole bank.
				if int64(tm.REFI)*refsPerWindow > tm.RefWindow {
					t.Errorf("density %d: %d REFs at tREFI %d overrun the %d-cycle window",
						d, refsPerWindow, tm.REFI, tm.RefWindow)
				}
				if tm.RowsPerRef*refsPerWindow < g.RowsPerBank {
					t.Errorf("density %d: %d REFs x %d rows cover only %d of %d rows",
						d, refsPerWindow, tm.RowsPerRef, tm.RowsPerRef*refsPerWindow, g.RowsPerBank)
				}
				// The window in wall-clock terms matches the requested
				// milliseconds (to within one cycle of rounding).
				wantNs := std.DefaultRefreshWindowMS() * 1e6
				if gotNs := float64(tm.RefWindow) * tm.CycleTime(); math.Abs(gotNs-wantNs) > tm.CycleTime() {
					t.Errorf("density %d: RefWindow = %.0f ns, want %.0f ns", d, gotNs, wantNs)
				}
				// CROW's derived plans stay ordered: reduced-latency plans
				// never exceed the base, restoration plans never undercut it.
				crow := tm.CROW()
				if crow.TwoFull.RCD > tm.RCD || crow.TwoPartial.RCD > tm.RCD {
					t.Errorf("density %d: CROW ACT-t tRCD exceeds base", d)
				}
				if crow.TwoFull.RAS > tm.RAS || crow.Copy.RASFull < tm.RAS {
					t.Errorf("density %d: CROW tRAS plans out of order", d)
				}
			}
		})
	}
}

// TestStandardRegistryErrors pins the unknown-name diagnostics: the error
// names every registered choice so a CLI typo is self-correcting.
func TestStandardRegistryErrors(t *testing.T) {
	if _, err := StandardByName("ddr9"); err == nil {
		t.Fatal("unknown standard accepted")
	} else {
		for _, want := range []string{"lpddr4", "ddr5", "hbm2"} {
			if !contains(err.Error(), want) {
				t.Errorf("error %q does not list %q", err, want)
			}
		}
	}
	if err := CheckMapping("colmajor"); err == nil {
		t.Fatal("unknown mapping accepted")
	} else {
		for _, want := range []string{"robarococh", "rocobarach"} {
			if !contains(err.Error(), want) {
				t.Errorf("error %q does not list %q", err, want)
			}
		}
	}
}

// TestMappingsRoundTrip checks Decode/Encode are inverses for every
// registered mapping on every registered standard's geometry.
func TestMappingsRoundTrip(t *testing.T) {
	for _, sname := range StandardNames() {
		std, _ := StandardByName(sname)
		g := std.Geometry(0)
		for _, mname := range MappingNames() {
			m, err := NewMapperFor(mname, std.Channels(), g)
			if err != nil {
				t.Fatal(err)
			}
			cap := m.Capacity()
			if cap <= 0 {
				t.Fatalf("%s/%s: capacity %d", sname, mname, cap)
			}
			for _, phys := range []uint64{0, 64, 4096, uint64(cap) - 64} {
				a := m.Decode(phys)
				if back := m.Encode(a); back != phys {
					t.Errorf("%s/%s: Encode(Decode(%#x)) = %#x", sname, mname, phys, back)
				}
				if a.Bank >= g.Banks || a.Rank >= g.Ranks || a.Row >= g.RowsPerBank ||
					a.Channel >= std.Channels() || a.Col >= g.ColumnsPerRow() {
					t.Errorf("%s/%s: Decode(%#x) = %+v out of range", sname, mname, phys, a)
				}
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
