package dram

import (
	"fmt"
	"sort"
)

// AddressMapper decodes flat physical addresses into DRAM coordinates and
// back. Mapper is the default implementation; alternative bit layouts
// register under a name and are selected per run.
type AddressMapper interface {
	Decode(phys uint64) Addr
	Encode(a Addr) uint64
	Bits() uint
	Capacity() int64
}

// MapperFactory builds an address mapper for a system of identical channels.
type MapperFactory func(channels int, g Geometry) AddressMapper

var mappings = map[string]MapperFactory{}

// RegisterMapping adds an address-mapping layout to the registry; it panics
// on a duplicate name so a wiring mistake fails at init.
func RegisterMapping(name string, f MapperFactory) {
	if _, dup := mappings[name]; dup {
		panic(fmt.Sprintf("dram: mapping %q registered twice", name))
	}
	mappings[name] = f
}

// NewMapperFor builds the named mapping layout; the error lists the
// registered names.
func NewMapperFor(name string, channels int, g Geometry) (AddressMapper, error) {
	if err := CheckMapping(name); err != nil {
		return nil, err
	}
	return mappings[name](channels, g), nil
}

// CheckMapping reports whether a mapping layout with the given name is
// registered, without building it; the error lists the registered names.
func CheckMapping(name string) error {
	if _, ok := mappings[name]; ok {
		return nil
	}
	return fmt.Errorf("dram: unknown mapping %q (registered: %s)", name, joinNames(MappingNames()))
}

// MappingNames returns the registered mapping names, sorted.
func MappingNames() []string {
	names := make([]string, 0, len(mappings))
	for n := range mappings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// mapField identifies one coordinate in a layout's bit order.
type mapField uint8

const (
	fieldCh mapField = iota
	fieldCol
	fieldBank
	fieldRank
	fieldRow
)

// layoutMapper is a table-driven mapper: fields are extracted from the
// physical address in the given order, least-significant first (the line
// offset always occupies the lowest bits).
type layoutMapper struct {
	channels int
	geo      Geometry

	order    [5]mapField
	widths   [5]uint
	lineBits uint
}

func newLayoutMapper(channels int, g Geometry, order [5]mapField) *layoutMapper {
	m := &layoutMapper{channels: channels, geo: g, order: order}
	m.lineBits = log2(g.LineBytes)
	for i, f := range order {
		switch f {
		case fieldCh:
			m.widths[i] = log2(channels)
		case fieldCol:
			m.widths[i] = log2(g.ColumnsPerRow())
		case fieldBank:
			m.widths[i] = log2(g.Banks)
		case fieldRank:
			m.widths[i] = log2(g.Ranks)
		case fieldRow:
			m.widths[i] = log2(g.RowsPerBank)
		}
	}
	return m
}

func (m *layoutMapper) Bits() uint {
	b := m.lineBits
	for _, w := range m.widths {
		b += w
	}
	return b
}

func (m *layoutMapper) Capacity() int64 { return int64(m.channels) * m.geo.ChannelBytes() }

func (m *layoutMapper) Decode(phys uint64) Addr {
	p := phys >> m.lineBits
	var a Addr
	for i, f := range m.order {
		v := int(p & mask(m.widths[i]))
		p >>= m.widths[i]
		switch f {
		case fieldCh:
			a.Channel = v
		case fieldCol:
			a.Col = v
		case fieldBank:
			a.Bank = v
		case fieldRank:
			a.Rank = v
		case fieldRow:
			a.Row = v
		}
	}
	return a
}

func (m *layoutMapper) Encode(a Addr) uint64 {
	var p uint64
	for i := len(m.order) - 1; i >= 0; i-- {
		var v uint64
		switch m.order[i] {
		case fieldCh:
			v = uint64(a.Channel)
		case fieldCol:
			v = uint64(a.Col)
		case fieldBank:
			v = uint64(a.Bank)
		case fieldRank:
			v = uint64(a.Rank)
		case fieldRow:
			v = uint64(a.Row)
		}
		p = p<<m.widths[i] | v
	}
	return p << m.lineBits
}

// DefaultMapping is the layout every configuration uses unless overridden:
// the hand-rolled RoBaRaCoCh mapper (row-streaming, channel-interleaved).
const DefaultMapping = "robarococh"

func init() {
	// The default layout keeps the dedicated Mapper implementation — the
	// decode is on the per-access hot path.
	RegisterMapping(DefaultMapping, func(channels int, g Geometry) AddressMapper {
		return NewMapper(channels, g)
	})
	// RoCoBaRaCh interleaves consecutive lines across channels, then ranks
	// and banks before columns: a streaming access pattern spreads over
	// every bank instead of hammering one open row, trading row-buffer
	// locality for bank-level parallelism.
	RegisterMapping("rocobarach", func(channels int, g Geometry) AddressMapper {
		return newLayoutMapper(channels, g, [5]mapField{fieldCh, fieldRank, fieldBank, fieldCol, fieldRow})
	})
}
