package dram

// Timing holds the DRAM timing parameters in command-clock cycles.
//
// The baseline values correspond to the LPDDR4-3200 configuration in Table 2
// of the CROW paper: a 1600 MHz command clock (0.625 ns per cycle) with
// tRCD/tRAS/tWR = 29/67/29 cycles (18.125/41.875/18.125 ns).
type Timing struct {
	RCD   int // ACT to RD/WR
	RAS   int // ACT to PRE
	RP    int // PRE to ACT
	WR    int // end of write data to PRE (write recovery)
	RTP   int // RD to PRE
	WTR   int // end of write data to RD (same rank)
	CCD   int // column command to column command
	RRD   int // ACT to ACT, different banks, same rank
	FAW   int // four-activate window per rank
	CL    int // RD to first data beat (read latency)
	CWL   int // WR to first data beat (write latency)
	BL    int // data burst duration on the bus
	RFC   int // refresh cycle time (all-bank REFab)
	RFCpb int // refresh cycle time (per-bank REFpb; roughly half of RFC)

	// REFI is the average refresh command interval: RefWindow divided by
	// the number of REF commands needed to cover every row.
	REFI int

	// RefWindow is the retention/refresh window in cycles (64 ms default;
	// CROW-ref stretches it). RowsPerRef rows of every bank are refreshed
	// by each REF command.
	RefWindow  int64
	RowsPerRef int

	// CycleNs is the duration of one command-clock cycle in nanoseconds
	// for the standard that produced this timing table. Zero means the
	// historical LPDDR4-3200 clock (the Cycle constant); use CycleTime to
	// read it.
	CycleNs float64
}

// CycleTime returns the command-clock cycle duration in nanoseconds,
// defaulting to the LPDDR4-3200 clock for zero-valued timing tables.
func (t Timing) CycleTime() float64 {
	if t.CycleNs > 0 {
		return t.CycleNs
	}
	return Cycle
}

// CyclesPerSecond is the LPDDR4-3200 command clock frequency.
const CyclesPerSecond = 1600e6

// Cycle is the duration of one DRAM command-clock cycle in nanoseconds.
const Cycle = 1e9 / CyclesPerSecond // 0.625 ns

// Density selects the simulated DRAM chip density, which determines the
// refresh cycle time tRFC (Figure 13 sweeps 8–64 Gbit).
type Density int

// Supported chip densities.
const (
	Density8Gb Density = 8 << iota
	Density16Gb
	Density32Gb
	Density64Gb
)

// tRFC (all-bank) per chip density, in nanoseconds. The 8 Gbit value follows
// the LPDDR4 standard; the larger densities are RAIDR-style extrapolations —
// refresh time grows near-linearly with the number of rows refreshed per
// command — since no standard defines 32/64 Gbit parts. Documented as
// estimates in DESIGN.md.
var rfcNanos = map[Density]float64{
	Density8Gb:  280,
	Density16Gb: 420,
	Density32Gb: 700,
	Density64Gb: 1200,
}

// RFCNanos returns the all-bank refresh cycle time for the density.
func (d Density) RFCNanos() float64 { return rfcNanos[d] }

func toCycles(ns float64) int { return int(ns/Cycle + 0.5) }

// LPDDR4 returns the baseline timing parameter set for a chip of the given
// density with the given refresh window (use 64 ms, the paper's CROW-ref
// baseline; CROW-ref doubles it to 128 ms).
func LPDDR4(d Density, refWindowMS float64, g Geometry) Timing {
	const refsPerWindow = 8192
	window := int64(refWindowMS * 1e6 / Cycle)
	return Timing{
		RCD:        29,
		RAS:        67,
		RP:         29,
		WR:         29,
		RTP:        12,
		WTR:        16,
		CCD:        8,
		RRD:        16,
		FAW:        64,
		CL:         28,
		CWL:        14,
		BL:         8,
		RFC:        toCycles(d.RFCNanos()),
		RFCpb:      toCycles(d.RFCNanos() / 2),
		REFI:       int(window / refsPerWindow),
		RefWindow:  window,
		RowsPerRef: g.RowsPerBank / refsPerWindow,
		CycleNs:    Cycle,
	}
}

// ActKind distinguishes the activation command variants that CROW adds.
type ActKind int

// Activation variants.
const (
	// ActSingle is a conventional single-row ACT of a regular row.
	ActSingle ActKind = iota
	// ActTwo is CROW's ACT-t: simultaneous activation of a regular row and
	// its duplicate copy row, reducing tRCD (Section 4.1.2).
	ActTwo
	// ActCopy is CROW's ACT-c: activate a regular row, then its copy row
	// once the sense amplifiers have latched, duplicating the regular
	// row's data into the copy row (Section 4.1.1).
	ActCopy
	// ActCopyRow activates a copy row alone at baseline timings; CROW-ref
	// uses it to access a remapped weak regular row (Section 4.2.2).
	ActCopyRow
)

var actKindNames = [...]string{"ACT", "ACT-t", "ACT-c", "ACT-copyrow"}

func (k ActKind) String() string { return actKindNames[k] }

// IsMRA reports whether the activation drives two wordlines (and therefore
// needs the extra command-bus cycle for the copy-row address and draws the
// higher MRA activation power).
func (k ActKind) IsMRA() bool { return k == ActTwo || k == ActCopy }

// CmdCycles returns the command-bus occupancy of the activation. CROW's new
// commands carry a copy-row address and take one extra cycle on the
// command/address bus (Section 4.1.5, footnote 3).
func (k ActKind) CmdCycles() int {
	if k == ActSingle {
		return 1
	}
	return 2
}

// ActTimings are the effective activation-dependent timings applied to one
// activation instance. CROW's commands change tRCD and tRAS, and writes to a
// two-row-opened pair change the effective write recovery time tWR
// (Table 1 of the paper).
type ActTimings struct {
	RCD int
	// RAS is the minimum activate-to-precharge time for data integrity.
	// For CROW's early-terminated plans it is lower than RASFull, leaving
	// the rows only partially restored.
	RAS int
	// RASFull is the activate-to-precharge time after which the activated
	// cells are fully restored (decides isFullyRestored; Section 4.1.4).
	RASFull int
	WR      int
}

// Base returns the conventional single-row activation timings.
func (t Timing) Base() ActTimings {
	return ActTimings{RCD: t.RCD, RAS: t.RAS, RASFull: t.RAS, WR: t.WR}
}

// CROWTimings is the set of timing plans used by CROW-cache, derived from
// the paper's circuit-level SPICE results (Table 1). The percentages are
// applied to the baseline LPDDR4 parameters. internal/circuit re-derives the
// same percentages from the analytical bitline model; a cross-check test
// keeps the two in agreement.
type CROWTimings struct {
	// TwoFull applies to ACT-t on a fully-restored pair with restoration
	// terminated early: tRCD −38 %, tRAS −33 %, tWR −13 %.
	TwoFull ActTimings
	// TwoPartial applies to ACT-t on a partially-restored pair with
	// restoration terminated early: tRCD −21 %, tRAS −25 %, tWR −13 %.
	TwoPartial ActTimings
	// TwoRestore applies to ACT-t issued to fully restore a pair before
	// CROW-table eviction (Section 4.1.4): tRAS −7 % (full restoration of
	// two cells), tWR +14 %. tRCD depends on the pair's current state; we
	// conservatively use the partially-restored −21 %.
	TwoRestore ActTimings
	// Copy applies to ACT-c with early-terminated restoration:
	// tRCD +0 %, tRAS −7 %, tWR −13 %.
	Copy ActTimings
	// CopyFull applies to ACT-c with full restoration: tRAS +18 %, tWR +14 %.
	CopyFull ActTimings
}

// Percentage deltas from Table 1 of the paper, shared with internal/circuit
// via cross-check tests.
const (
	TwoFullRCDDelta    = -0.38
	TwoPartialRCDDelta = -0.21
	TwoFullRASDelta    = -0.33
	TwoPartialRASDelta = -0.25
	TwoRestoreRASDelta = -0.07
	CopyEarlyRASDelta  = -0.07
	CopyFullRASDelta   = +0.18
	EarlyWRDelta       = -0.13
	FullWRDelta        = +0.14
)

func scale(base int, delta float64) int {
	v := int(float64(base)*(1+delta) + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// CROW derives the CROW-cache timing plans from the baseline parameters.
// RASFull of the two-row plans is the time to fully restore both cells
// (tRAS −7 %); for ACT-c it is the full-restoration copy time (tRAS +18 %).
func (t Timing) CROW() CROWTimings {
	twoFullRestore := scale(t.RAS, TwoRestoreRASDelta)
	copyFullRestore := scale(t.RAS, CopyFullRASDelta)
	return CROWTimings{
		TwoFull: ActTimings{
			RCD:     scale(t.RCD, TwoFullRCDDelta),
			RAS:     scale(t.RAS, TwoFullRASDelta),
			RASFull: twoFullRestore,
			WR:      scale(t.WR, EarlyWRDelta),
		},
		TwoPartial: ActTimings{
			RCD:     scale(t.RCD, TwoPartialRCDDelta),
			RAS:     scale(t.RAS, TwoPartialRASDelta),
			RASFull: twoFullRestore,
			WR:      scale(t.WR, EarlyWRDelta),
		},
		TwoRestore: ActTimings{
			RCD:     scale(t.RCD, TwoPartialRCDDelta),
			RAS:     twoFullRestore,
			RASFull: twoFullRestore,
			WR:      scale(t.WR, FullWRDelta),
		},
		Copy: ActTimings{
			RCD:     t.RCD,
			RAS:     scale(t.RAS, CopyEarlyRASDelta),
			RASFull: copyFullRestore,
			WR:      scale(t.WR, EarlyWRDelta),
		},
		CopyFull: ActTimings{
			RCD:     t.RCD,
			RAS:     copyFullRestore,
			RASFull: copyFullRestore,
			WR:      scale(t.WR, FullWRDelta),
		},
	}
}
