package dram

import "fmt"

// Command identifies a DRAM command in the checker's recorded history.
type Command int

// Command encodings. The four activate variants mirror ActKind.
const (
	CmdACT Command = iota
	CmdACTt
	CmdACTc
	CmdACTcr
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	CmdREFpb
)

const cmdACTBase = CmdACT

var cmdNames = [...]string{"ACT", "ACT-t", "ACT-c", "ACT-copyrow", "PRE", "RD", "WR", "REF", "REFpb"}

func (c Command) String() string { return cmdNames[c] }

func (c Command) isACT() bool { return c.IsACT() }

// IsACT reports whether the command is one of the four activate variants.
func (c Command) IsACT() bool { return c >= CmdACT && c <= CmdACTcr }

// event is one recorded command issue.
type event struct {
	cmd     Command
	addr    Addr
	cycle   int64
	plan    ActTimings // valid for activate commands
	copyRow int        // copy-row operand of activate commands; -1 if none
}

// Checker independently re-validates a channel's command stream against the
// raw history, using a separate implementation of the timing rules from the
// Channel state machine. Any violation is reported through the Violations
// slice.
type Checker struct {
	Geo  Geometry
	T    Timing
	MASA bool

	history    []event
	Violations []string
}

// NewChecker builds a checker for the channel and attaches it, so every
// subsequently issued command is validated. The checker takes its geometry,
// timing, and MASA mode from the channel — there is exactly one construction
// path, so they cannot disagree.
func NewChecker(c *Channel) *Checker {
	k := &Checker{Geo: c.Geo, T: c.T, MASA: c.MASA}
	c.Check = k
	return k
}

func (k *Checker) fail(e event, format string, args ...any) {
	msg := fmt.Sprintf("%v to r%d/b%d row %d @%d: %s", e.cmd, e.addr.Rank, e.addr.Bank, e.addr.Row, e.cycle, fmt.Sprintf(format, args...))
	k.Violations = append(k.Violations, msg)
}

func sameSub(g Geometry, a, b Addr) bool {
	return a.Rank == b.Rank && a.Bank == b.Bank && a.Subarray(g) == b.Subarray(g)
}

// record is called by the Channel on every issue. RecordACT must have stored
// the activation plan via the channel calling record with plan embedded; for
// simplicity the channel calls record and the checker recovers the plan for
// activate commands from RecordPlan.
func (k *Checker) record(cmd Command, a Addr, cycle int64) {
	k.recordPlanned(cmd, a, cycle, ActTimings{}, -1)
}

// RecordPlanned validates and appends a command with an explicit activation
// plan (used for the activate variants, whose effective tRCD/tRAS/tWR depend
// on the CROW timing plan) and copy-row operand.
func (k *Checker) RecordPlanned(cmd Command, a Addr, cycle int64, plan ActTimings, copyRow int) {
	k.recordPlanned(cmd, a, cycle, plan, copyRow)
}

func (k *Checker) recordPlanned(cmd Command, a Addr, cycle int64, plan ActTimings, copyRow int) {
	e := event{cmd: cmd, addr: a, cycle: cycle, plan: plan, copyRow: copyRow}
	if cmd.isACT() && plan == (ActTimings{}) {
		// The channel's record path does not carry the plan; recover the
		// baseline plan so tRCD/tRAS floors are still checked loosely.
		e.plan = ActTimings{RCD: 1, RAS: 1, WR: 1}
	}
	k.validate(e)
	k.history = append(k.history, e)
}

// openACT returns the most recent ACT to the subarray of a that has not been
// followed by a PRE of the same subarray, or nil.
func (k *Checker) openACT(a Addr) *event {
	for i := len(k.history) - 1; i >= 0; i-- {
		e := &k.history[i]
		if !sameSub(k.Geo, e.addr, a) {
			continue
		}
		if e.cmd == CmdPRE {
			return nil
		}
		if e.cmd.isACT() {
			return e
		}
	}
	return nil
}

func (k *Checker) validate(e event) {
	switch {
	case e.cmd.isACT():
		k.validateACT(e)
	case e.cmd == CmdRD || e.cmd == CmdWR:
		k.validateCol(e)
	case e.cmd == CmdPRE:
		k.validatePRE(e)
	case e.cmd == CmdREF:
		k.validateREF(e)
	case e.cmd == CmdREFpb:
		k.validateREFpb(e)
	}
	k.validateCmdBus(e)
}

func (k *Checker) validateCmdBus(e event) {
	if len(k.history) == 0 {
		return
	}
	prev := k.history[len(k.history)-1]
	width := int64(1)
	if prev.cmd.isACT() && prev.cmd != CmdACT {
		width = 2 // CROW activates carry a copy-row address cycle
	}
	if e.cycle < prev.cycle+width {
		k.fail(e, "command bus conflict with %v @%d", prev.cmd, prev.cycle)
	}
}

func (k *Checker) validateACT(e event) {
	if open := k.openACT(e.addr); open != nil {
		k.fail(e, "subarray already open (row %d @%d)", open.addr.Row, open.cycle)
	}
	// CROW activate variants carry a copy-row operand that must address one
	// of the subarray's copy rows. (Geometries without copy rows — e.g. the
	// idealized mechanisms — are exempt: their kinds are fictional.)
	if e.cmd != CmdACT && k.Geo.CopyRows > 0 && (e.copyRow < 0 || e.copyRow >= k.Geo.CopyRows) {
		k.fail(e, "copy-row operand %d out of range [0,%d)", e.copyRow, k.Geo.CopyRows)
	}
	var rankACTs []int64
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.addr.Rank != e.addr.Rank && h.cmd != CmdREF {
			continue
		}
		switch {
		case h.cmd == CmdPRE && sameSub(k.Geo, h.addr, e.addr):
			if e.cycle < h.cycle+int64(k.T.RP) {
				k.fail(e, "tRP violated (PRE @%d)", h.cycle)
			}
		case h.cmd == CmdREF && h.addr.Rank == e.addr.Rank:
			if e.cycle < h.cycle+int64(k.T.RFC) {
				k.fail(e, "tRFC violated (REF @%d)", h.cycle)
			}
		case h.cmd == CmdREFpb && h.addr.Rank == e.addr.Rank && h.addr.Bank == e.addr.Bank:
			if e.cycle < h.cycle+int64(k.T.RFCpb) {
				k.fail(e, "tRFCpb violated (REFpb @%d)", h.cycle)
			}
		case h.cmd.isACT() && h.addr.Rank == e.addr.Rank:
			if len(rankACTs) == 0 && e.cycle < h.cycle+int64(k.T.RRD) {
				k.fail(e, "tRRD violated (ACT @%d)", h.cycle)
			}
			rankACTs = append(rankACTs, h.cycle)
			if len(rankACTs) == 4 {
				if e.cycle < rankACTs[3]+int64(k.T.FAW) {
					k.fail(e, "tFAW violated (4th ACT @%d)", rankACTs[3])
				}
			}
		case h.cmd.isACT() && !k.MASA && h.addr.Bank == e.addr.Bank && h.addr.Rank == e.addr.Rank:
			// handled by openACT per subarray; bank-level single-open
			// checked below.
		}
		if len(rankACTs) >= 4 && h.cycle < e.cycle-int64(k.T.FAW)-int64(k.T.RFC) {
			break
		}
	}
	if !k.MASA {
		// No other subarray of the same bank may be open.
		for s := 0; s < k.Geo.SubarraysPerBank(); s++ {
			probe := e.addr
			probe.Row = s * k.Geo.RowsPerSubarray
			if probe.Subarray(k.Geo) == e.addr.Subarray(k.Geo) {
				continue
			}
			if open := k.openACT(probe); open != nil {
				k.fail(e, "bank has another open subarray (row %d)", open.addr.Row)
				break
			}
		}
	}
}

func (k *Checker) validateCol(e event) {
	open := k.openACT(e.addr)
	if open == nil {
		k.fail(e, "column command to closed subarray")
		return
	}
	if open.addr.Row != e.addr.Row {
		k.fail(e, "row mismatch: open %d", open.addr.Row)
	}
	if open.plan.RCD > 1 && e.cycle < open.cycle+int64(open.plan.RCD) {
		k.fail(e, "tRCD violated (ACT @%d, RCD %d)", open.cycle, open.plan.RCD)
	}
	var lastData int64 = -1 << 62
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.cmd == CmdRD || h.cmd == CmdWR {
			if e.cycle < h.cycle+int64(k.T.CCD) {
				k.fail(e, "tCCD violated (%v @%d)", h.cmd, h.cycle)
			}
			if e.cmd == CmdRD && h.cmd == CmdWR && h.addr.Rank == e.addr.Rank {
				wrEnd := h.cycle + int64(k.T.CWL) + int64(k.T.BL)
				if e.cycle < wrEnd+int64(k.T.WTR) {
					k.fail(e, "tWTR violated (WR @%d)", h.cycle)
				}
			}
			// Data-bus overlap.
			var start int64
			if h.cmd == CmdRD {
				start = h.cycle + int64(k.T.CL)
			} else {
				start = h.cycle + int64(k.T.CWL)
			}
			end := start + int64(k.T.BL)
			if end > lastData {
				lastData = end
			}
			var myStart int64
			if e.cmd == CmdRD {
				myStart = e.cycle + int64(k.T.CL)
			} else {
				myStart = e.cycle + int64(k.T.CWL)
			}
			if myStart < end && myStart+int64(k.T.BL) > start {
				k.fail(e, "data bus overlap with %v @%d", h.cmd, h.cycle)
			}
			break // only the most recent column command can conflict given tCCD >= ordering
		}
	}
	// tWTR needs the most recent WR even if a RD intervened.
	if e.cmd == CmdRD {
		for i := len(k.history) - 1; i >= 0; i-- {
			h := &k.history[i]
			if h.cmd == CmdWR && h.addr.Rank == e.addr.Rank {
				wrEnd := h.cycle + int64(k.T.CWL) + int64(k.T.BL)
				if e.cycle < wrEnd+int64(k.T.WTR) {
					k.fail(e, "tWTR violated (WR @%d)", h.cycle)
				}
				break
			}
		}
	}
}

func (k *Checker) validatePRE(e event) {
	open := k.openACT(e.addr)
	if open == nil {
		k.fail(e, "PRE to closed subarray")
		return
	}
	if open.plan.RAS > 1 && e.cycle < open.cycle+int64(open.plan.RAS) {
		k.fail(e, "tRAS violated (ACT @%d, RAS %d)", open.cycle, open.plan.RAS)
	}
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.cycle < open.cycle {
			break
		}
		if !sameSub(k.Geo, h.addr, e.addr) {
			continue
		}
		if h.cmd == CmdRD && e.cycle < h.cycle+int64(k.T.RTP) {
			k.fail(e, "tRTP violated (RD @%d)", h.cycle)
		}
		if h.cmd == CmdWR {
			wrEnd := h.cycle + int64(k.T.CWL) + int64(k.T.BL)
			wr := int64(open.plan.WR)
			if wr <= 1 {
				wr = int64(k.T.WR)
			}
			if e.cycle < wrEnd+wr {
				k.fail(e, "write recovery violated (WR @%d)", h.cycle)
			}
		}
	}
}

func (k *Checker) validateREFpb(e event) {
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.addr.Rank != e.addr.Rank {
			continue
		}
		if h.cmd == CmdREFpb && h.addr.Bank == e.addr.Bank {
			if e.cycle < h.cycle+int64(k.T.RFCpb) {
				k.fail(e, "tRFCpb back-to-back violated (REFpb @%d)", h.cycle)
			}
			break
		}
	}
	// The bank's subarrays must be closed and past tRP.
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.addr.Rank != e.addr.Rank || h.addr.Bank != e.addr.Bank {
			continue
		}
		if h.cmd == CmdPRE {
			if e.cycle < h.cycle+int64(k.T.RP) {
				k.fail(e, "REFpb before tRP of PRE @%d", h.cycle)
			}
			break
		}
		if h.cmd.isACT() {
			k.fail(e, "REFpb with open bank (ACT row %d @%d)", h.addr.Row, h.cycle)
			break
		}
	}
}

func (k *Checker) validateREF(e event) {
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.cmd == CmdREF && h.addr.Rank == e.addr.Rank {
			if e.cycle < h.cycle+int64(k.T.RFC) {
				k.fail(e, "tRFC back-to-back violated (REF @%d)", h.cycle)
			}
			break
		}
	}
	// Every subarray of the rank must be closed and past tRP.
	byBankSub := map[[2]int]bool{}
	for i := len(k.history) - 1; i >= 0; i-- {
		h := &k.history[i]
		if h.addr.Rank != e.addr.Rank {
			continue
		}
		key := [2]int{h.addr.Bank, h.addr.Subarray(k.Geo)}
		if byBankSub[key] {
			continue
		}
		if h.cmd == CmdPRE {
			byBankSub[key] = true
			if e.cycle < h.cycle+int64(k.T.RP) {
				k.fail(e, "REF before tRP of PRE @%d", h.cycle)
			}
		}
		if h.cmd.isACT() {
			if !byBankSub[key] {
				k.fail(e, "REF with open subarray (ACT row %d @%d)", h.addr.Row, h.cycle)
			}
			byBankSub[key] = true
		}
	}
}
