package dram

import "testing"

// benchChannel builds a standard channel with a few rows opened across
// banks, the state the controller's scan paths see in steady state.
func benchChannel(openBanks int) (*Channel, Timing) {
	g := Std(8)
	tm := LPDDR4(Density8Gb, 64, g)
	c := NewChannel(g, tm)
	c.MASA = true
	base := tm.Base()
	now := int64(0)
	for b := 0; b < openBanks; b++ {
		c.ACT(Addr{Bank: b % g.Banks, Row: b * 512}, now, ActSingle, base, -1)
		now += int64(tm.RRD)
	}
	return c, tm
}

// BenchmarkChannelCommandLoop measures the raw command bookkeeping cost:
// ACT, RD, PRE, timing-legal by construction.
func BenchmarkChannelCommandLoop(b *testing.B) {
	g := Std(8)
	tm := LPDDR4(Density8Gb, 64, g)
	c := NewChannel(g, tm)
	base := tm.Base()
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Addr{Bank: i % g.Banks, Row: i % 64, Col: i % g.ColumnsPerRow()}
		c.Tick(now)
		c.ACT(a, now, ActSingle, base, -1)
		col := now + int64(base.RCD)
		c.RD(a, col)
		pre := now + int64(base.RASFull)
		c.PRE(a, pre)
		now = pre + int64(tm.RP) + 1
	}
}

// BenchmarkOpenSubarraysAppend measures the open-row scan with a reused
// buffer, as the controller's refresh and timeout paths call it.
func BenchmarkOpenSubarraysAppend(b *testing.B) {
	c, _ := benchChannel(8)
	var buf []OpenSub
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.OpenSubarraysAppend(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("expected open subarrays")
	}
}

// BenchmarkEarliestTimeoutPRE measures the cached earliest-timeout query the
// controller's NextEvent and serviceTimeout paths issue every idle cycle.
func BenchmarkEarliestTimeoutPRE(b *testing.B) {
	c, _ := benchChannel(8)
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.EarliestTimeoutPRE(120)
	}
	if sink == Horizon {
		b.Fatal("expected a pending timeout")
	}
}

// BenchmarkOpenRowInBank measures the per-request open-row lookup on the
// non-MASA scheduling path.
func BenchmarkOpenRowInBank(b *testing.B) {
	c, _ := benchChannel(1)
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.OpenRowInBank(0, 0)
	}
	if sink < 0 {
		b.Fatal("expected an open row")
	}
}
