package cache

import "testing"

// sinkMem accepts everything and remembers the last read so the benchmark
// can fill it back, mimicking the simulator's memory port at zero cost.
type sinkMem struct {
	c     *Cache
	reads []uint64
}

func (m *sinkMem) SendRead(lineAddr uint64, pref bool) bool {
	m.reads = append(m.reads, lineAddr)
	return true
}

func (m *sinkMem) SendWrite(lineAddr uint64) bool { return true }

// BenchmarkAccessHit measures the resident-line fast path. Run with
// -benchmem: hits enqueue one delayed callback but must not otherwise
// allocate in steady state.
func BenchmarkAccessHit(b *testing.B) {
	mem := &sinkMem{}
	c := New(DefaultConfig(), mem, 1)
	mem.c = c
	c.Access(0, 0, 0x1000, false, nil)
	c.Fill(0, 0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i)
		c.Access(now, 0, 0x1000, false, nil)
		c.Tick(now + c.Cfg.HitLatency)
	}
}

// BenchmarkMissFill measures a full miss round trip: MSHR allocation from
// the freelist, downstream send, fill, and MSHR release.
func BenchmarkMissFill(b *testing.B) {
	mem := &sinkMem{}
	c := New(DefaultConfig(), mem, 1)
	mem.c = c
	done := func(int64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i)
		addr := uint64(i) << 6 // distinct lines: always a miss
		if acc, hit := c.Access(now, 0, addr, false, done); !acc || hit {
			b.Fatal("expected accepted miss")
		}
		c.Fill(now, mem.reads[len(mem.reads)-1])
		mem.reads = mem.reads[:0]
	}
}
