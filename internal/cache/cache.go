// Package cache implements the shared last-level cache of Table 2: 8 MiB,
// 8-way set-associative, 64 B lines, LRU replacement, write-back with
// write-allocate, and MSHR-based miss handling with request merging.
package cache

import (
	"container/heap"
	"math/rand"
)

// Config parameterizes the LLC.
type Config struct {
	SizeBytes  int64
	Assoc      int
	LineBytes  int
	HitLatency int64 // CPU cycles from access to data for a hit
	MSHRs      int   // maximum outstanding misses (global)
}

// DefaultConfig returns the Table 2 LLC: 8 MiB, 8-way, 64 B lines.
func DefaultConfig() Config {
	return Config{
		SizeBytes:  8 << 20,
		Assoc:      8,
		LineBytes:  64,
		HitLatency: 30,
		MSHRs:      64,
	}
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse int64
}

type waiter struct {
	write bool
	done  func(now int64)
}

type mshr struct {
	lineAddr uint64
	sent     bool
	prefetch bool
	waiters  []waiter
}

// Memory is the LLC's downstream port (the memory controllers). Send
// functions return false to reject (queue full); the cache retries.
type Memory interface {
	// SendRead requests a line fill; done runs when data returns.
	SendRead(lineAddr uint64, prefetch bool, done func(now int64)) bool
	// SendWrite writes back a dirty line.
	SendWrite(lineAddr uint64) bool
}

// Stats counts LLC events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64 // demand misses (includes merges into pending MSHRs)
	Writebacks int64
	PrefIssued int64
	PrefUseful int64 // demand hits on prefetched lines

	// Per-core demand accesses and misses, for MPKI accounting.
	CoreAccesses []int64
	CoreMisses   []int64
}

type delayed struct {
	at   int64
	done func(now int64)
}

type delayQueue []delayed

func (q delayQueue) Len() int           { return len(q) }
func (q delayQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q delayQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *delayQueue) Push(x any)        { *q = append(*q, x.(delayed)) }
func (q *delayQueue) Pop() any {
	old := *q
	n := len(old)
	d := old[n-1]
	*q = old[:n-1]
	return d
}

// Cache is the shared LLC.
type Cache struct {
	Cfg  Config
	Mem  Memory
	sets [][]line
	// prefetched marks resident lines that were filled by a prefetch and
	// not yet touched by demand.
	prefetched map[uint64]bool

	mshrs   map[uint64]*mshr
	fillQ   []uint64 // line fills awaiting install (processed on Tick)
	wbQ     []uint64 // writebacks the memory rejected, to retry
	delayed delayQueue

	setMask  uint64
	lineBits uint

	Stats Stats
}

// New builds an empty cache connected to mem, sized for `cores` per-core
// stat slots.
func New(cfg Config, mem Memory, cores int) *Cache {
	numSets := cfg.SizeBytes / int64(cfg.LineBytes) / int64(cfg.Assoc)
	c := &Cache{
		Cfg:        cfg,
		Mem:        mem,
		sets:       make([][]line, numSets),
		mshrs:      make(map[uint64]*mshr),
		prefetched: make(map[uint64]bool),
		setMask:    uint64(numSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.Stats.CoreAccesses = make([]int64, cores)
	c.Stats.CoreMisses = make([]int64, cores)
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }
func (c *Cache) set(lineAddr uint64) []line  { return c.sets[lineAddr&c.setMask] }

func (c *Cache) find(lineAddr uint64) *line {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Access performs a demand access. It returns accepted=false when the miss
// cannot be tracked (MSHRs full) — the core must retry. On acceptance, hit
// reports whether the line was resident or had to be fetched; done runs when
// the data is available (for writes, when the line is writable).
func (c *Cache) Access(now int64, core int, addr uint64, write bool, done func(now int64)) (accepted, hit bool) {
	la := c.lineAddr(addr)
	if ln := c.find(la); ln != nil {
		c.Stats.Accesses++
		c.Stats.Hits++
		c.Stats.CoreAccesses[core]++
		ln.lastUse = now
		if write {
			ln.dirty = true
		}
		if c.prefetched[la] {
			delete(c.prefetched, la)
			c.Stats.PrefUseful++
		}
		if done != nil {
			heap.Push(&c.delayed, delayed{at: now + c.Cfg.HitLatency, done: done})
		}
		return true, true
	}
	// Merge into a pending miss.
	if m, ok := c.mshrs[la]; ok {
		c.Stats.Accesses++
		c.Stats.Misses++
		c.Stats.CoreAccesses[core]++
		c.Stats.CoreMisses[core]++
		m.waiters = append(m.waiters, waiter{write: write, done: done})
		if m.prefetch {
			m.prefetch = false // late promotion to demand
			c.Stats.PrefUseful++
		}
		return true, false
	}
	if len(c.mshrs) >= c.Cfg.MSHRs {
		return false, false
	}
	c.Stats.Accesses++
	c.Stats.Misses++
	c.Stats.CoreAccesses[core]++
	c.Stats.CoreMisses[core]++
	m := &mshr{lineAddr: la, waiters: []waiter{{write: write, done: done}}}
	c.mshrs[la] = m
	c.trySend(m)
	return true, false
}

// Prefetch requests a line fill without a waiter; it is dropped if the line
// is resident, already pending, or MSHRs are exhausted.
func (c *Cache) Prefetch(now int64, addr uint64) bool {
	la := c.lineAddr(addr)
	if c.find(la) != nil {
		return false
	}
	if _, ok := c.mshrs[la]; ok {
		return false
	}
	if len(c.mshrs) >= c.Cfg.MSHRs {
		return false
	}
	m := &mshr{lineAddr: la, prefetch: true}
	c.mshrs[la] = m
	c.trySend(m)
	c.Stats.PrefIssued++
	return true
}

func (c *Cache) trySend(m *mshr) {
	if m.sent {
		return
	}
	la := m.lineAddr
	if c.Mem.SendRead(la<<c.lineBits, m.prefetch, func(now int64) { c.fill(now, la) }) {
		m.sent = true
	}
}

// fill installs a returned line and wakes its waiters.
func (c *Cache) fill(now int64, la uint64) {
	m := c.mshrs[la]
	delete(c.mshrs, la)
	set := c.set(la)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		wb := set[victim].tag << c.lineBits
		if !c.Mem.SendWrite(wb) {
			c.wbQ = append(c.wbQ, wb)
		}
	}
	if set[victim].valid {
		delete(c.prefetched, set[victim].tag)
	}
	dirty := false
	if m != nil {
		for _, w := range m.waiters {
			if w.write {
				dirty = true
			}
			if w.done != nil {
				w.done(now)
			}
		}
		if m.prefetch {
			c.prefetched[la] = true
		}
	}
	set[victim] = line{tag: la, valid: true, dirty: dirty, lastUse: now}
}

// Prefill populates every way with random resident lines, a fraction of
// them dirty. Short simulations start from a cold cache that would otherwise
// never fill (and so never write back); prefilling emulates the steady-state
// system the paper's methodology assumes, producing realistic writeback
// traffic from the first eviction. lineAddrBits bounds the generated line
// addresses to the physical address space.
func (c *Cache) Prefill(lineAddrBits uint, dirtyFrac float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<lineAddrBits - 1
	for si := range c.sets {
		for w := range c.sets[si] {
			la := rng.Uint64() & mask
			// Force the tag into this set.
			la = la&^c.setMask | uint64(si)
			c.sets[si][w] = line{
				tag:     la,
				valid:   true,
				dirty:   rng.Float64() < dirtyFrac,
				lastUse: int64(-1000 + rng.Intn(1000)),
			}
		}
	}
}

// Tick fires due hit callbacks and retries rejected downstream sends.
func (c *Cache) Tick(now int64) {
	for len(c.delayed) > 0 && c.delayed[0].at <= now {
		d := heap.Pop(&c.delayed).(delayed)
		d.done(now)
	}
	for len(c.wbQ) > 0 {
		if !c.Mem.SendWrite(c.wbQ[0]) {
			break
		}
		c.wbQ = c.wbQ[1:]
	}
	for _, m := range c.mshrs {
		if !m.sent {
			c.trySend(m)
		}
	}
}

// Pending reports outstanding misses plus undelivered hit callbacks (used to
// drain simulations).
func (c *Cache) Pending() int { return len(c.mshrs) + len(c.delayed) + len(c.wbQ) }

// MPKI returns per-core LLC misses per kilo-instruction given retired
// instruction counts.
func (c *Cache) MPKI(coreInsts []int64) []float64 {
	out := make([]float64, len(coreInsts))
	for i := range out {
		if coreInsts[i] > 0 {
			out[i] = float64(c.Stats.CoreMisses[i]) * 1000 / float64(coreInsts[i])
		}
	}
	return out
}

// ResetStats zeroes the statistics (after warmup), preserving per-core slot
// counts.
func (c *Cache) ResetStats() {
	cores := len(c.Stats.CoreAccesses)
	c.Stats = Stats{
		CoreAccesses: make([]int64, cores),
		CoreMisses:   make([]int64, cores),
	}
}
