// Package cache implements the shared last-level cache of Table 2: 8 MiB,
// 8-way set-associative, 64 B lines, LRU replacement, write-back with
// write-allocate, and MSHR-based miss handling with request merging.
package cache

import "math/rand"

// Config parameterizes the LLC.
type Config struct {
	SizeBytes  int64
	Assoc      int
	LineBytes  int
	HitLatency int64 // CPU cycles from access to data for a hit
	MSHRs      int   // maximum outstanding misses (global)
}

// DefaultConfig returns the Table 2 LLC: 8 MiB, 8-way, 64 B lines.
func DefaultConfig() Config {
	return Config{
		SizeBytes:  8 << 20,
		Assoc:      8,
		LineBytes:  64,
		HitLatency: 30,
		MSHRs:      64,
	}
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse int64
}

type waiter struct {
	write bool
	done  func(now int64)
}

type mshr struct {
	lineAddr uint64
	sent     bool
	prefetch bool
	waiters  []waiter
	next     *mshr // freelist link
}

// Memory is the LLC's downstream port (the memory controllers). Send
// functions return false to reject (queue full); the cache retries. The
// owner delivers read data by calling Cache.Fill with the line address —
// there is no per-request callback, so the miss path allocates nothing.
type Memory interface {
	// SendRead requests a line fill; the owner calls Fill when the data
	// returns.
	SendRead(lineAddr uint64, prefetch bool) bool
	// SendWrite writes back a dirty line.
	SendWrite(lineAddr uint64) bool
}

// Stats counts LLC events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64 // demand misses (includes merges into pending MSHRs)
	Writebacks int64
	PrefIssued int64
	PrefUseful int64 // demand hits on prefetched lines

	// Per-core demand accesses and misses, for MPKI accounting.
	CoreAccesses []int64
	CoreMisses   []int64
}

type delayed struct {
	at   int64
	done func(now int64)
}

// delayQueue is a hand-rolled min-heap on `at`; container/heap would box
// every pushed entry into an interface, allocating once per LLC hit. The
// sift directions replicate container/heap's strict-less comparisons, so pop
// order (ties included) is unchanged.
type delayQueue []delayed

func (q *delayQueue) push(d delayed) {
	h := append(*q, d)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].at <= h[i].at {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*q = h
}

func (q *delayQueue) pop() delayed {
	h := *q
	d := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = delayed{}
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h[r].at < h[j].at {
			j = r
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	*q = h
	return d
}

// Cache is the shared LLC.
type Cache struct {
	Cfg  Config
	Mem  Memory
	sets [][]line
	// prefetched marks resident lines that were filled by a prefetch and
	// not yet touched by demand.
	prefetched map[uint64]bool

	mshrs    map[uint64]*mshr
	mshrFree *mshr    // recycled mshr structs (waiter slices retained)
	unsent   int      // mshrs whose downstream read was rejected, to retry
	wbQ      []uint64 // writebacks the memory rejected, to retry
	delayed  delayQueue

	setMask  uint64
	lineBits uint

	Stats Stats
}

// New builds an empty cache connected to mem, sized for `cores` per-core
// stat slots.
func New(cfg Config, mem Memory, cores int) *Cache {
	numSets := cfg.SizeBytes / int64(cfg.LineBytes) / int64(cfg.Assoc)
	c := &Cache{
		Cfg:        cfg,
		Mem:        mem,
		sets:       make([][]line, numSets),
		mshrs:      make(map[uint64]*mshr),
		prefetched: make(map[uint64]bool),
		setMask:    uint64(numSets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.Stats.CoreAccesses = make([]int64, cores)
	c.Stats.CoreMisses = make([]int64, cores)
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }
func (c *Cache) set(lineAddr uint64) []line  { return c.sets[lineAddr&c.setMask] }

func (c *Cache) find(lineAddr uint64) *line {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// newMSHR takes a recycled mshr from the freelist (or allocates one) and
// registers it for lineAddr.
func (c *Cache) newMSHR(lineAddr uint64) *mshr {
	m := c.mshrFree
	if m != nil {
		c.mshrFree = m.next
		m.next = nil
	} else {
		m = &mshr{}
	}
	m.lineAddr = lineAddr
	c.mshrs[lineAddr] = m
	c.unsent++ // until trySend succeeds
	return m
}

// releaseMSHR returns a completed mshr to the freelist, keeping its waiter
// slice's capacity.
func (c *Cache) releaseMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = waiter{}
	}
	m.waiters = m.waiters[:0]
	m.sent = false
	m.prefetch = false
	m.next = c.mshrFree
	c.mshrFree = m
}

// Access performs a demand access. It returns accepted=false when the miss
// cannot be tracked (MSHRs full) — the core must retry. On acceptance, hit
// reports whether the line was resident or had to be fetched; done runs when
// the data is available (for writes, when the line is writable).
func (c *Cache) Access(now int64, core int, addr uint64, write bool, done func(now int64)) (accepted, hit bool) {
	la := c.lineAddr(addr)
	if ln := c.find(la); ln != nil {
		c.Stats.Accesses++
		c.Stats.Hits++
		c.Stats.CoreAccesses[core]++
		ln.lastUse = now
		if write {
			ln.dirty = true
		}
		if c.prefetched[la] {
			delete(c.prefetched, la)
			c.Stats.PrefUseful++
		}
		if done != nil {
			c.delayed.push(delayed{at: now + c.Cfg.HitLatency, done: done})
		}
		return true, true
	}
	// Merge into a pending miss.
	if m, ok := c.mshrs[la]; ok {
		c.Stats.Accesses++
		c.Stats.Misses++
		c.Stats.CoreAccesses[core]++
		c.Stats.CoreMisses[core]++
		m.waiters = append(m.waiters, waiter{write: write, done: done})
		if m.prefetch {
			m.prefetch = false // late promotion to demand
			c.Stats.PrefUseful++
		}
		return true, false
	}
	if len(c.mshrs) >= c.Cfg.MSHRs {
		return false, false
	}
	c.Stats.Accesses++
	c.Stats.Misses++
	c.Stats.CoreAccesses[core]++
	c.Stats.CoreMisses[core]++
	m := c.newMSHR(la)
	m.waiters = append(m.waiters, waiter{write: write, done: done})
	c.trySend(m)
	return true, false
}

// Prefetch requests a line fill without a waiter; it is dropped if the line
// is resident, already pending, or MSHRs are exhausted.
func (c *Cache) Prefetch(now int64, addr uint64) bool {
	la := c.lineAddr(addr)
	if c.find(la) != nil {
		return false
	}
	if _, ok := c.mshrs[la]; ok {
		return false
	}
	if len(c.mshrs) >= c.Cfg.MSHRs {
		return false
	}
	m := c.newMSHR(la)
	m.prefetch = true
	c.trySend(m)
	c.Stats.PrefIssued++
	return true
}

func (c *Cache) trySend(m *mshr) {
	if m.sent {
		return
	}
	if c.Mem.SendRead(m.lineAddr<<c.lineBits, m.prefetch) {
		m.sent = true
		c.unsent--
	}
}

// Fill installs a returned line and wakes its waiters. The cache's owner
// calls it when the read it accepted via Memory.SendRead completes.
func (c *Cache) Fill(now int64, addr uint64) {
	la := c.lineAddr(addr)
	m := c.mshrs[la]
	delete(c.mshrs, la)
	set := c.set(la)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		wb := set[victim].tag << c.lineBits
		if !c.Mem.SendWrite(wb) {
			c.wbQ = append(c.wbQ, wb)
		}
	}
	if set[victim].valid {
		delete(c.prefetched, set[victim].tag)
	}
	dirty := false
	if m != nil {
		for _, w := range m.waiters {
			if w.write {
				dirty = true
			}
			if w.done != nil {
				w.done(now)
			}
		}
		if m.prefetch {
			c.prefetched[la] = true
		}
		c.releaseMSHR(m)
	}
	set[victim] = line{tag: la, valid: true, dirty: dirty, lastUse: now}
}

// Prefill populates every way with random resident lines, a fraction of
// them dirty. Short simulations start from a cold cache that would otherwise
// never fill (and so never write back); prefilling emulates the steady-state
// system the paper's methodology assumes, producing realistic writeback
// traffic from the first eviction. lineAddrBits bounds the generated line
// addresses to the physical address space.
func (c *Cache) Prefill(lineAddrBits uint, dirtyFrac float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<lineAddrBits - 1
	for si := range c.sets {
		for w := range c.sets[si] {
			la := rng.Uint64() & mask
			// Force the tag into this set.
			la = la&^c.setMask | uint64(si)
			c.sets[si][w] = line{
				tag:     la,
				valid:   true,
				dirty:   rng.Float64() < dirtyFrac,
				lastUse: int64(-1000 + rng.Intn(1000)),
			}
		}
	}
}

// Tick fires due hit callbacks and retries rejected downstream sends.
func (c *Cache) Tick(now int64) {
	for len(c.delayed) > 0 && c.delayed[0].at <= now {
		d := c.delayed.pop()
		d.done(now)
	}
	for len(c.wbQ) > 0 {
		if !c.Mem.SendWrite(c.wbQ[0]) {
			break
		}
		c.wbQ = c.wbQ[1:]
	}
	if c.unsent > 0 {
		for _, m := range c.mshrs {
			if !m.sent {
				c.trySend(m)
			}
		}
	}
}

// NextEvent returns the earliest CPU cycle after `now` at which Tick could
// do any work: the next due hit callback, or now+1 while downstream retries
// (rejected reads or writebacks) are pending. With nothing in flight it
// returns Horizon; the run loop uses this to skip the cache's idle cycles.
func (c *Cache) NextEvent(now int64) int64 {
	if c.unsent > 0 || len(c.wbQ) > 0 {
		return now + 1
	}
	if len(c.delayed) > 0 {
		if at := c.delayed[0].at; at > now {
			return at
		}
		return now + 1
	}
	return Horizon
}

// Horizon mirrors dram.Horizon: a sentinel "no event scheduled" cycle.
const Horizon = int64(1) << 60

// Pending reports outstanding misses plus undelivered hit callbacks (used to
// drain simulations).
func (c *Cache) Pending() int { return len(c.mshrs) + len(c.delayed) + len(c.wbQ) }

// MPKI returns per-core LLC misses per kilo-instruction given retired
// instruction counts.
func (c *Cache) MPKI(coreInsts []int64) []float64 {
	out := make([]float64, len(coreInsts))
	for i := range out {
		if coreInsts[i] > 0 {
			out[i] = float64(c.Stats.CoreMisses[i]) * 1000 / float64(coreInsts[i])
		}
	}
	return out
}

// ResetStats zeroes the statistics (after warmup), preserving per-core slot
// counts.
func (c *Cache) ResetStats() {
	cores := len(c.Stats.CoreAccesses)
	c.Stats = Stats{
		CoreAccesses: make([]int64, cores),
		CoreMisses:   make([]int64, cores),
	}
}
