package cache

import (
	"testing"
	"testing/quick"
)

// fakeMem is a scriptable memory backend. It records accepted reads and
// delivers them back through Cache.Fill when fillAll runs, the way the
// simulator's memory port does.
type fakeMem struct {
	c       *Cache
	reads   []uint64
	writes  []uint64
	pending []uint64
	reject  bool
}

func (m *fakeMem) SendRead(lineAddr uint64, pref bool) bool {
	if m.reject {
		return false
	}
	m.reads = append(m.reads, lineAddr)
	m.pending = append(m.pending, lineAddr)
	return true
}

func (m *fakeMem) SendWrite(lineAddr uint64) bool {
	if m.reject {
		return false
	}
	m.writes = append(m.writes, lineAddr)
	return true
}

func (m *fakeMem) fillAll(now int64) {
	p := m.pending
	m.pending = nil
	for _, la := range p {
		m.c.Fill(now, la)
	}
}

func small() Config {
	return Config{SizeBytes: 8 * 1024, Assoc: 2, LineBytes: 64, HitLatency: 10, MSHRs: 4}
}

// newTestCache wires the cache and fakeMem together (Fill needs the cache).
func newTestCache(cfg Config, mem *fakeMem, cores int) *Cache {
	c := New(cfg, mem, cores)
	mem.c = c
	return c
}

func TestMissThenHit(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	var missDone, hitDone int64 = -1, -1
	acc, hit := c.Access(0, 0, 0x1000, false, func(now int64) { missDone = now })
	if !acc || hit {
		t.Fatal("first access must be an accepted miss")
	}
	if len(mem.reads) != 1 || mem.reads[0] != 0x1000 {
		t.Fatalf("read sent = %v, want [0x1000]", mem.reads)
	}
	mem.fillAll(50)
	if missDone != 50 {
		t.Errorf("miss completed at %d, want 50", missDone)
	}
	acc, hit = c.Access(60, 0, 0x1000, false, func(now int64) { hitDone = now })
	if !acc || !hit {
		t.Fatal("second access must hit")
	}
	c.Tick(70)
	if hitDone != 70 {
		t.Errorf("hit completed at %d, want 70 (latency 10)", hitDone)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 2)
	done := 0
	cb := func(int64) { done++ }
	c.Access(0, 0, 0x1000, false, cb)
	c.Access(1, 1, 0x1000, false, cb) // merges
	if len(mem.reads) != 1 {
		t.Fatalf("merged miss must send one read, sent %d", len(mem.reads))
	}
	// Fill up remaining MSHRs.
	c.Access(2, 0, 0x2000, false, cb)
	c.Access(3, 0, 0x3000, false, cb)
	c.Access(4, 0, 0x4000, false, cb)
	if acc, _ := c.Access(5, 0, 0x5000, false, cb); acc {
		t.Error("fifth distinct miss must be rejected (4 MSHRs)")
	}
	mem.fillAll(100)
	if done != 5 {
		t.Errorf("done = %d, want 5 (merged waiters all fire)", done)
	}
	if c.Stats.CoreMisses[0] != 4 || c.Stats.CoreMisses[1] != 1 {
		t.Errorf("per-core misses: %v", c.Stats.CoreMisses)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	// Two lines mapping to the same set (assoc 2): setMask = 8KiB/64/2-1 = 63.
	base := uint64(0x0)
	s1 := base + 64*64*2 // same set, different tag
	s2 := base + 64*64*4
	c.Access(0, 0, base, true, nil) // write-allocate, dirty
	mem.fillAll(1)
	c.Access(2, 0, s1, false, nil)
	mem.fillAll(3)
	c.Access(4, 0, s2, false, nil) // evicts LRU (base, dirty)
	mem.fillAll(5)
	if len(mem.writes) != 1 || mem.writes[0] != base {
		t.Errorf("writebacks = %v, want [%#x]", mem.writes, base)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestWritebackRetryWhenRejected(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	c.Access(0, 0, 0, true, nil) // dirty line
	mem.fillAll(1)
	c.Access(2, 0, 64*64*2, false, nil)
	mem.fillAll(3)
	c.Access(4, 0, 64*64*4, false, nil) // will evict the dirty line
	// Reject exactly when the fill triggers the dirty eviction.
	mem.reject = true
	mem.fillAll(5)
	if len(mem.writes) != 0 {
		t.Fatal("write must have been rejected")
	}
	mem.reject = false
	c.Tick(6)
	if len(mem.writes) != 1 || mem.writes[0] != 0 {
		t.Errorf("rejected writeback must be retried on Tick: %v", mem.writes)
	}
}

func TestPrefetchFillAndPromotion(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	if !c.Prefetch(0, 0x1000) {
		t.Fatal("prefetch of absent line must issue")
	}
	if c.Prefetch(1, 0x1000) {
		t.Error("duplicate prefetch must be dropped")
	}
	mem.fillAll(10)
	// Demand hit on a prefetched line counts as useful.
	c.Access(20, 0, 0x1000, false, nil)
	if c.Stats.PrefUseful != 1 {
		t.Errorf("PrefUseful = %d, want 1", c.Stats.PrefUseful)
	}
	// Late promotion: demand access while prefetch pending.
	c.Prefetch(30, 0x2000)
	c.Access(31, 0, 0x2000, false, nil)
	mem.fillAll(40)
	if c.Stats.PrefUseful != 2 {
		t.Errorf("PrefUseful = %d, want 2 (late promotion)", c.Stats.PrefUseful)
	}
}

func TestLRUReplacement(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	a, b, d := uint64(0), uint64(64*64*2), uint64(64*64*4) // same set
	c.Access(0, 0, a, false, nil)
	mem.fillAll(1)
	c.Access(2, 0, b, false, nil)
	mem.fillAll(3)
	c.Access(4, 0, a, false, nil) // touch a: b becomes LRU
	c.Access(5, 0, d, false, nil)
	mem.fillAll(6)
	if _, hit := c.Access(7, 0, a, false, nil); !hit {
		t.Error("a (MRU) must survive")
	}
	if _, hit := c.Access(8, 0, b, false, nil); hit {
		t.Error("b (LRU) must have been evicted")
	}
}

func TestResetStatsPreservesSlots(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 3)
	c.Access(0, 2, 0x1000, false, nil)
	c.ResetStats()
	if len(c.Stats.CoreMisses) != 3 || c.Stats.Misses != 0 {
		t.Errorf("reset broken: %+v", c.Stats)
	}
}

func TestMPKI(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 2)
	c.Access(0, 0, 0x1000, false, nil)
	c.Access(0, 0, 0x2000, false, nil)
	got := c.MPKI([]int64{1000, 1000})
	if got[0] != 2 || got[1] != 0 {
		t.Errorf("MPKI = %v, want [2 0]", got)
	}
}

// TestAccessAlwaysAcceptedWhenResident: resident lines never bounce,
// regardless of MSHR pressure — property test.
func TestAccessAlwaysAcceptedWhenResident(t *testing.T) {
	mem := &fakeMem{}
	c := newTestCache(small(), mem, 1)
	c.Access(0, 0, 0x8000, false, nil)
	mem.fillAll(1)
	// Exhaust MSHRs.
	for i := 0; i < 4; i++ {
		c.Access(2, 0, uint64(0x10000+i*4096), false, nil)
	}
	f := func(write bool) bool {
		acc, hit := c.Access(10, 0, 0x8000, write, nil)
		return acc && hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
