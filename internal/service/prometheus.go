package service

import (
	"fmt"
	"io"
	"sort"

	"crowdram/internal/metrics"
	"crowdram/internal/obs"
)

// PromContentType is the Prometheus text exposition format version served by
// /metrics when the client negotiates it.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// boolGauge renders a Prometheus 0/1 gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// WritePrometheus renders the metrics document in the Prometheus text
// exposition format (version 0.0.4). The JSON document and this rendering
// are two views of the same Metrics value, so they can never disagree.
// Label sets (job states, HTTP routes) are emitted in sorted order, making
// the output deterministic for a given Metrics value.
func WritePrometheus(w io.Writer, m Metrics) error {
	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("crowserve_queue_depth", "Jobs admitted but not yet started.", m.Queue.Depth)
	g("crowserve_queue_capacity", "Admission bound; submissions beyond it get 503.", m.Queue.Capacity)
	g("crowserve_draining", "1 while graceful shutdown is in progress.", boolGauge(m.Queue.Draining))
	g("crowserve_workers", "Job workers configured.", m.Workers.Total)
	g("crowserve_workers_busy", "Job workers currently servicing a job.", m.Workers.Busy)
	g("crowserve_engine_workers", "Concurrent-simulation bound of the shared engine pool.", m.EngineWorkers)
	g("crowserve_engine_queued", "Simulations waiting for an engine slot.", m.Engine.Queued)
	g("crowserve_engine_inflight", "Simulations currently executing.", m.Engine.Inflight)
	g("crowserve_engine_cache_entries", "Memoized (completed or in-flight) simulation results.", m.Engine.Entries)
	c("crowserve_engine_executions_total", "Simulation functions actually invoked (cache misses).", m.Engine.Executions)
	c("crowserve_engine_cache_hits_total", "Requests served from the memo cache or a coalesced in-flight run.", m.Engine.CacheHits)
	c("crowserve_engine_store_hits_total", "Requests served from the persistent result store without executing.", m.Engine.StoreHits)
	c("crowserve_engine_failures_total", "Simulation executions that returned an error.", m.Engine.Failures)
	c("crowserve_engine_runs_queued_total", "Simulations that ever entered the engine queue.", m.Engine.QueuedTotal)
	c("crowserve_engine_runs_started_total", "Simulations that acquired an engine slot and began executing.", m.Engine.StartedTotal)
	c("crowserve_engine_runs_done_total", "Simulations that completed successfully.", m.Engine.DoneTotal)
	g("crowserve_engine_cache_hit_ratio", "(cache_hits + store_hits) / (cache_hits + store_hits + executions).", m.Engine.HitRatio)

	if m.Store != nil {
		g("crowserve_store_files", "Results in the persistent store.", m.Store.Files)
		g("crowserve_store_bytes", "On-disk footprint of the persistent store.", m.Store.Bytes)
		c("crowserve_store_hits_total", "Store reads that returned an intact result.", m.Store.Hits)
		c("crowserve_store_misses_total", "Store reads that found nothing usable.", m.Store.Misses)
		c("crowserve_store_corrupt_total", "Store files that failed the envelope check and were deleted.", m.Store.Corrupt)
		c("crowserve_store_writes_total", "Results persisted to the store.", m.Store.Writes)
		c("crowserve_store_evictions_total", "Files removed by the LRU byte-cap GC.", m.Store.Evictions)
		c("crowserve_store_errors_total", "Store I/O failures (durability lost, correctness kept).", m.Store.Errors)
	}

	fmt.Fprintf(w, "# HELP crowserve_jobs Jobs by lifecycle state.\n# TYPE crowserve_jobs gauge\n")
	states := make([]string, 0, len(m.Jobs))
	for st := range m.Jobs {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "crowserve_jobs{state=%q} %d\n", st, m.Jobs[State(st)])
	}

	writeHistogramFamily(w, "crowserve_http_request_duration_ms",
		"HTTP request latency by route (SSE streams record their full lifetime).",
		"route", routeOrder(m.HTTPHist), m.HTTPHist)

	stageNames := make([]string, 0, len(obs.Stages()))
	for _, st := range obs.Stages() {
		if _, ok := m.StageHist[string(st)]; ok {
			stageNames = append(stageNames, string(st))
		}
	}
	writeHistogramFamily(w, "crowserve_stage_duration_ms",
		"Job pipeline stage duration (span telemetry).",
		"stage", stageNames, m.StageHist)
	return nil
}

// routeOrder returns a snapshot map's keys sorted, for deterministic output.
func routeOrder(hists map[string]metrics.HistSnapshot) []string {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeHistogramFamily renders one labeled histogram family in the
// Prometheus exposition format: cumulative `le` buckets derived from the
// log2 snapshot, a +Inf bucket, and _sum/_count per label value. Empty
// histograms still render their +Inf bucket and _sum/_count, so the series
// exist from the first scrape.
func writeHistogramFamily(w io.Writer, name, help, label string, order []string, hists map[string]metrics.HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, key := range order {
		h := hists[key]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%g\"} %d\n", name, label, key, b.Upper, cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, key, h.Count)
		fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, key, h.Sum)
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, key, h.Count)
	}
}
