package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdram/crow"
	"crowdram/internal/exp"
)

// benchSubmitWait drives one submit→poll-to-done round trip over HTTP.
func benchSubmitWait(b *testing.B, ts *httptest.Server, body string) {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit = %d", resp.StatusCode)
	}
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			b.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State.Terminal() {
			if st.State != StateDone {
				b.Fatalf("job ended %q: %s", st.State, st.Error)
			}
			return
		}
	}
}

// BenchmarkWarmCacheSubmissions is the BENCH_service.json baseline:
// sustained submit→done round trips per second when every job is a warm
// engine-cache hit (the simulation itself executed once, before the timer).
// It measures the serving overhead — queue, worker handoff, HTTP, JSON —
// not simulation time.
func BenchmarkWarmCacheSubmissions(b *testing.B) {
	s := New(Config{Scale: exp.QuickScale(), Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	const body = `{"options": {"Mechanism": "crow-cache", "Workloads": ["gcc"]}}`
	benchSubmitWait(b, ts, body) // execute the one real simulation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSubmitWait(b, ts, body)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	if snap := s.EngineSnapshot(); snap.Executions != 1 {
		b.Fatalf("warm-cache bench executed %d simulations, want 1", snap.Executions)
	}
}

// BenchmarkWarmFromStoreSubmissions measures submit→done round trips per
// second when every job is a persistent-store hit: each iteration uses a
// distinct key (varied seed) preloaded on disk before the timer, so the
// engine memo never helps and every job pays one store read + envelope
// verification. The delta against BenchmarkWarmCacheSubmissions is the cost
// of the disk tier.
func BenchmarkWarmFromStoreSubmissions(b *testing.B) {
	st, err := exp.OpenStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	var execs int64
	s := New(Config{
		Scale:   exp.QuickScale(),
		Workers: 4,
		Backing: st,
		Run: func(_ context.Context, o crow.Options) (crow.Report, error) {
			execs++
			return crow.Report{IPC: make([]float64, len(o.Workloads))}, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	keyer := exp.NewRunner(exp.QuickScale())
	rep := crow.Report{Mechanism: crow.Cache, IPC: []float64{1}, MPKI: []float64{10}}
	for i := 0; i < b.N; i++ {
		st.Put(keyer.KeyOf(crow.Options{
			Mechanism: crow.Cache, Workloads: []string{"gcc"}, Seed: int64(i + 2),
		}), rep)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"options": {"Mechanism": "crow-cache", "Workloads": ["gcc"], "Seed": %d}}`, i+2)
		benchSubmitWait(b, ts, body)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	snap := s.EngineSnapshot()
	if execs != 0 || snap.Executions != 0 || snap.StoreHits != int64(b.N) {
		b.Fatalf("store-warm bench: %d hook execs, engine %+v, want 0 executions and %d store hits",
			execs, snap, b.N)
	}
}

// BenchmarkSubmitQueuePop isolates the job-subsystem overhead without HTTP:
// submit, worker pickup, instant hook run, completion wait.
func BenchmarkSubmitQueuePop(b *testing.B) {
	s := New(Config{
		Scale:   exp.QuickScale(),
		Workers: 4,
		Run: func(_ context.Context, o crow.Options) (crow.Report, error) {
			return crow.Report{IPC: make([]float64, len(o.Workloads))}, nil
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	spec := Spec{Options: json.RawMessage(`{"Mechanism": "crow-cache", "Workloads": ["gcc"]}`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitTerminal(j)
	}
}

// benchSpans is the span-overhead A/B body behind CI's span-overhead gate:
// each iteration submits a fresh-seeded job whose real QuickScale simulation
// executes (never a cache or store hit), so the measured work matches what a
// production job pays and the span plumbing's fixed per-job cost is weighed
// against it — the same whole-run A/B scheme as the obs-smoke gate.
func benchSpans(b *testing.B, spanCap int) {
	s := New(Config{
		Scale:        exp.QuickScale(),
		Workers:      1,
		SpanCapacity: spanCap,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := Spec{Options: json.RawMessage(fmt.Sprintf(
			`{"Mechanism": "crow-cache", "Workloads": ["gcc"], "Seed": %d}`, i+2))}
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitTerminal(j)
	}
	b.StopTimer()
	if snap := s.EngineSnapshot(); snap.Executions != int64(b.N) {
		b.Fatalf("span bench executed %d simulations, want %d (every job must run cold)", snap.Executions, b.N)
	}
}

// BenchmarkSpansOn measures the job pipeline with span recording enabled.
func BenchmarkSpansOn(b *testing.B) { benchSpans(b, 0) }

// BenchmarkSpansOff measures the identical pipeline with span recording
// disabled (SpanCapacity -1): no rings, no span events, no stage histograms.
func BenchmarkSpansOff(b *testing.B) { benchSpans(b, -1) }

// benchSpanPath isolates the serving-layer span cost with an instant hook
// run: the absolute per-job ns the spans add (recorded artifact; the gate
// uses the realistic BenchmarkSpans* pair above).
func benchSpanPath(b *testing.B, spanCap int) {
	s := New(Config{
		Scale:        exp.QuickScale(),
		Workers:      4,
		SpanCapacity: spanCap,
		Run: func(_ context.Context, o crow.Options) (crow.Report, error) {
			return crow.Report{IPC: make([]float64, len(o.Workloads))}, nil
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	spec := Spec{Options: json.RawMessage(`{"Mechanism": "crow-cache", "Workloads": ["gcc"]}`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		waitTerminal(j)
	}
}

// BenchmarkSpanPathOn measures raw serving overhead with spans enabled.
func BenchmarkSpanPathOn(b *testing.B) { benchSpanPath(b, 0) }

// BenchmarkSpanPathOff is BenchmarkSpanPathOn's spans-disabled twin.
func BenchmarkSpanPathOff(b *testing.B) { benchSpanPath(b, -1) }

// waitTerminal blocks on the job's event log until a terminal state lands.
func waitTerminal(j *Job) {
	n := 0
	for {
		evs, changed, terminal := j.EventsSince(n)
		n += len(evs)
		if terminal {
			return
		}
		<-changed
	}
}

// BenchmarkEventStreamReplay measures draining a finished job's SSE log.
func BenchmarkEventStreamReplay(b *testing.B) {
	s := New(Config{
		Scale:   exp.QuickScale(),
		Workers: 1,
		Run: func(_ context.Context, o crow.Options) (crow.Report, error) {
			return crow.Report{IPC: make([]float64, len(o.Workloads))}, nil
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	j, err := s.Submit(Spec{Options: json.RawMessage(`{"Workloads": ["gcc"]}`)})
	if err != nil {
		b.Fatal(err)
	}
	waitTerminal(j)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
