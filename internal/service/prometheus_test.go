package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"crowdram/crow"
	"crowdram/internal/metrics"
	"crowdram/internal/obs"
	"crowdram/internal/store"
)

// snap builds a deterministic histogram snapshot from literal values.
func snap(vals ...float64) metrics.HistSnapshot {
	h := metrics.NewHistogram()
	for _, v := range vals {
		h.Add(v)
	}
	return h.Snapshot()
}

// fixedMetrics builds a fully-populated Metrics value with deterministic
// numbers for the golden rendering test.
func fixedMetrics() Metrics {
	var m Metrics
	m.Queue.Depth = 3
	m.Queue.Capacity = 64
	m.Queue.Draining = true
	m.Workers.Total = 4
	m.Workers.Busy = 2
	m.Engine.Queued = 1
	m.Engine.Inflight = 2
	m.Engine.Entries = 9
	m.Engine.Executions = 7
	m.Engine.CacheHits = 5
	m.Engine.StoreHits = 3
	m.Engine.Failures = 1
	m.Engine.HitRatio = 0.4
	m.Engine.QueuedTotal = 8
	m.Engine.StartedTotal = 7
	m.Engine.DoneTotal = 6
	m.EngineWorkers = 8
	m.Store = &store.Stats{Files: 12, Bytes: 4096, Hits: 3, Misses: 7, Corrupt: 1, Writes: 6, Evictions: 2, Errors: 0}
	m.Jobs = map[State]int{StateDone: 4, StateFailed: 1, StateRunning: 2}
	m.HTTP = map[string]Stats{
		"POST /v1/jobs": {Count: 3, MeanMS: 3.17, P50MS: 4, P99MS: 8, MaxMS: 5},
		"GET /healthz":  {Count: 2, MeanMS: 0.5, P50MS: 0.5, P99MS: 0.5, MaxMS: 0.5},
	}
	m.HTTPHist = map[string]metrics.HistSnapshot{
		"POST /v1/jobs": snap(1.5, 3, 5),
		"GET /healthz":  snap(0.5, 0.5),
	}
	m.Stages = map[string]Stats{
		"queue-wait": {Count: 1, MeanMS: 1.5},
		"execute":    {Count: 1, MeanMS: 40},
	}
	m.StageHist = map[string]metrics.HistSnapshot{
		"http-handle": snap(),
		"queue-wait":  snap(1.5),
		"memo-lookup": snap(),
		"store-read":  snap(),
		"execute":     snap(40),
		"store-write": snap(),
	}
	return m
}

// promGolden is the expected text exposition of fixedMetrics. Label sets
// render in sorted order, so this is byte-exact.
const promGolden = `# HELP crowserve_queue_depth Jobs admitted but not yet started.
# TYPE crowserve_queue_depth gauge
crowserve_queue_depth 3
# HELP crowserve_queue_capacity Admission bound; submissions beyond it get 503.
# TYPE crowserve_queue_capacity gauge
crowserve_queue_capacity 64
# HELP crowserve_draining 1 while graceful shutdown is in progress.
# TYPE crowserve_draining gauge
crowserve_draining 1
# HELP crowserve_workers Job workers configured.
# TYPE crowserve_workers gauge
crowserve_workers 4
# HELP crowserve_workers_busy Job workers currently servicing a job.
# TYPE crowserve_workers_busy gauge
crowserve_workers_busy 2
# HELP crowserve_engine_workers Concurrent-simulation bound of the shared engine pool.
# TYPE crowserve_engine_workers gauge
crowserve_engine_workers 8
# HELP crowserve_engine_queued Simulations waiting for an engine slot.
# TYPE crowserve_engine_queued gauge
crowserve_engine_queued 1
# HELP crowserve_engine_inflight Simulations currently executing.
# TYPE crowserve_engine_inflight gauge
crowserve_engine_inflight 2
# HELP crowserve_engine_cache_entries Memoized (completed or in-flight) simulation results.
# TYPE crowserve_engine_cache_entries gauge
crowserve_engine_cache_entries 9
# HELP crowserve_engine_executions_total Simulation functions actually invoked (cache misses).
# TYPE crowserve_engine_executions_total counter
crowserve_engine_executions_total 7
# HELP crowserve_engine_cache_hits_total Requests served from the memo cache or a coalesced in-flight run.
# TYPE crowserve_engine_cache_hits_total counter
crowserve_engine_cache_hits_total 5
# HELP crowserve_engine_store_hits_total Requests served from the persistent result store without executing.
# TYPE crowserve_engine_store_hits_total counter
crowserve_engine_store_hits_total 3
# HELP crowserve_engine_failures_total Simulation executions that returned an error.
# TYPE crowserve_engine_failures_total counter
crowserve_engine_failures_total 1
# HELP crowserve_engine_runs_queued_total Simulations that ever entered the engine queue.
# TYPE crowserve_engine_runs_queued_total counter
crowserve_engine_runs_queued_total 8
# HELP crowserve_engine_runs_started_total Simulations that acquired an engine slot and began executing.
# TYPE crowserve_engine_runs_started_total counter
crowserve_engine_runs_started_total 7
# HELP crowserve_engine_runs_done_total Simulations that completed successfully.
# TYPE crowserve_engine_runs_done_total counter
crowserve_engine_runs_done_total 6
# HELP crowserve_engine_cache_hit_ratio (cache_hits + store_hits) / (cache_hits + store_hits + executions).
# TYPE crowserve_engine_cache_hit_ratio gauge
crowserve_engine_cache_hit_ratio 0.4
# HELP crowserve_store_files Results in the persistent store.
# TYPE crowserve_store_files gauge
crowserve_store_files 12
# HELP crowserve_store_bytes On-disk footprint of the persistent store.
# TYPE crowserve_store_bytes gauge
crowserve_store_bytes 4096
# HELP crowserve_store_hits_total Store reads that returned an intact result.
# TYPE crowserve_store_hits_total counter
crowserve_store_hits_total 3
# HELP crowserve_store_misses_total Store reads that found nothing usable.
# TYPE crowserve_store_misses_total counter
crowserve_store_misses_total 7
# HELP crowserve_store_corrupt_total Store files that failed the envelope check and were deleted.
# TYPE crowserve_store_corrupt_total counter
crowserve_store_corrupt_total 1
# HELP crowserve_store_writes_total Results persisted to the store.
# TYPE crowserve_store_writes_total counter
crowserve_store_writes_total 6
# HELP crowserve_store_evictions_total Files removed by the LRU byte-cap GC.
# TYPE crowserve_store_evictions_total counter
crowserve_store_evictions_total 2
# HELP crowserve_store_errors_total Store I/O failures (durability lost, correctness kept).
# TYPE crowserve_store_errors_total counter
crowserve_store_errors_total 0
# HELP crowserve_jobs Jobs by lifecycle state.
# TYPE crowserve_jobs gauge
crowserve_jobs{state="done"} 4
crowserve_jobs{state="failed"} 1
crowserve_jobs{state="running"} 2
# HELP crowserve_http_request_duration_ms HTTP request latency by route (SSE streams record their full lifetime).
# TYPE crowserve_http_request_duration_ms histogram
crowserve_http_request_duration_ms_bucket{route="GET /healthz",le="2"} 2
crowserve_http_request_duration_ms_bucket{route="GET /healthz",le="+Inf"} 2
crowserve_http_request_duration_ms_sum{route="GET /healthz"} 1
crowserve_http_request_duration_ms_count{route="GET /healthz"} 2
crowserve_http_request_duration_ms_bucket{route="POST /v1/jobs",le="2"} 1
crowserve_http_request_duration_ms_bucket{route="POST /v1/jobs",le="4"} 2
crowserve_http_request_duration_ms_bucket{route="POST /v1/jobs",le="8"} 3
crowserve_http_request_duration_ms_bucket{route="POST /v1/jobs",le="+Inf"} 3
crowserve_http_request_duration_ms_sum{route="POST /v1/jobs"} 9.5
crowserve_http_request_duration_ms_count{route="POST /v1/jobs"} 3
# HELP crowserve_stage_duration_ms Job pipeline stage duration (span telemetry).
# TYPE crowserve_stage_duration_ms histogram
crowserve_stage_duration_ms_bucket{stage="http-handle",le="+Inf"} 0
crowserve_stage_duration_ms_sum{stage="http-handle"} 0
crowserve_stage_duration_ms_count{stage="http-handle"} 0
crowserve_stage_duration_ms_bucket{stage="queue-wait",le="2"} 1
crowserve_stage_duration_ms_bucket{stage="queue-wait",le="+Inf"} 1
crowserve_stage_duration_ms_sum{stage="queue-wait"} 1.5
crowserve_stage_duration_ms_count{stage="queue-wait"} 1
crowserve_stage_duration_ms_bucket{stage="memo-lookup",le="+Inf"} 0
crowserve_stage_duration_ms_sum{stage="memo-lookup"} 0
crowserve_stage_duration_ms_count{stage="memo-lookup"} 0
crowserve_stage_duration_ms_bucket{stage="store-read",le="+Inf"} 0
crowserve_stage_duration_ms_sum{stage="store-read"} 0
crowserve_stage_duration_ms_count{stage="store-read"} 0
crowserve_stage_duration_ms_bucket{stage="execute",le="64"} 1
crowserve_stage_duration_ms_bucket{stage="execute",le="+Inf"} 1
crowserve_stage_duration_ms_sum{stage="execute"} 40
crowserve_stage_duration_ms_count{stage="execute"} 1
crowserve_stage_duration_ms_bucket{stage="store-write",le="+Inf"} 0
crowserve_stage_duration_ms_sum{stage="store-write"} 0
crowserve_stage_duration_ms_count{stage="store-write"} 0
`

// TestWritePrometheusGolden pins the exposition format byte-for-byte: any
// rename or reorder of a metric is a deliberate, reviewed change.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, fixedMetrics()); err != nil {
		t.Fatal(err)
	}
	if b.String() != promGolden {
		t.Errorf("prometheus rendering drifted from golden.\ngot:\n%s\nwant:\n%s", b.String(), promGolden)
	}
}

// TestMetricsContentNegotiation: /metrics stays JSON by default (historic
// shape, object-valued top-level keys intact), and serves Prometheus text
// when the client sends Accept: text/plain or ?format=prometheus.
func TestMetricsContentNegotiation(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run})

	// Default: JSON, with the pre-Prometheus document shape.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
	for _, key := range []string{"queue", "workers", "engine", "engine_workers", "jobs", "http", "stages"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("JSON document lost top-level key %q", key)
		}
	}

	// Accept: text/plain (what a Prometheus scraper sends).
	req := mustReq(t, http.MethodGet, ts.URL+"/metrics")
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("negotiated Content-Type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(string(body), "# TYPE crowserve_queue_depth gauge") {
		t.Errorf("prometheus body missing typed metrics:\n%s", body)
	}
	// Every pipeline stage's histogram series exists from the first scrape,
	// even before any span lands on it.
	for _, stage := range obs.Stages() {
		series := fmt.Sprintf("crowserve_stage_duration_ms_bucket{stage=%q,le=\"+Inf\"}", string(stage))
		if !strings.Contains(string(body), series) {
			t.Errorf("prometheus body missing stage series %s", series)
		}
	}

	// ?format=prometheus (curl convenience, no header needed).
	resp, err = http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("?format=prometheus Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "crowserve_workers") {
		t.Errorf("prometheus body missing metrics:\n%s", body)
	}
}

// TestTelemetryStreamsOverSSE: with TelemetryInterval set, interval
// snapshots emitted by the simulation surface as progress events on the
// job's SSE stream, carrying the per-bank counters.
func TestTelemetryStreamsOverSSE(t *testing.T) {
	run := func(ctx context.Context, o crow.Options) (crow.Report, error) {
		// Stand-in for the simulator: the injected bundle's OnSnapshot is
		// exactly what sim.RunContext drives at each interval boundary.
		b := obs.From(ctx)
		if b == nil || b.OnSnapshot == nil {
			t.Error("run context carries no telemetry bundle")
			return crow.Report{}, nil
		}
		if b.SnapshotEvery != 5_000 {
			t.Errorf("SnapshotEvery = %d, want 5000", b.SnapshotEvery)
		}
		b.OnSnapshot(obs.IntervalSnapshot{
			StartCycle: 0, Cycle: 5_000,
			Banks: []obs.BankSnapshot{{Bank: 3, BankCounters: obs.BankCounters{ACT: 42}}},
		})
		return crow.Report{Mechanism: o.Mechanism, IPC: []float64{1}, MPKI: []float64{1}}, nil
	}
	_, ts := newTestService(t, Config{Run: run, TelemetryInterval: 5_000})

	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	var found bool
	for _, line := range strings.Split(string(body), "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev struct {
			Run *struct {
				Telemetry *obs.IntervalSnapshot `json:"telemetry"`
			} `json:"run"`
		}
		if json.Unmarshal([]byte(data), &ev) == nil && ev.Run != nil && ev.Run.Telemetry != nil {
			snap := ev.Run.Telemetry
			if snap.Cycle != 5_000 || len(snap.Banks) != 1 || snap.Banks[0].ACT != 42 {
				t.Fatalf("telemetry event mangled: %+v", snap)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no telemetry event on the SSE stream:\n%s", body)
	}
}
