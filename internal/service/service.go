// Package service turns the CROW reproduction into simulation-as-a-service:
// a job subsystem with a bounded priority queue, admission control, a worker
// pool delegating to the memoizing run engine (internal/engine) so
// singleflight memoization becomes a cross-request result cache, per-job
// cancellation and deadlines, streaming progress events, and graceful
// drain. cmd/crowserve exposes it over HTTP/JSON (see Handler).
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/exp"
)

// ErrBadRequest wraps submission-validation failures; the HTTP layer maps
// it to 400.
var ErrBadRequest = errors.New("service: bad request")

// ErrNotFound marks lookups of unknown job IDs; the HTTP layer maps it
// to 404.
var ErrNotFound = errors.New("service: no such job")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Scale is the simulation scale every job runs at (default
	// exp.DefaultScale). One service has one scale, so identical
	// submissions share cache entries.
	Scale exp.Scale
	// Workers is the number of jobs serviced concurrently (default 2).
	Workers int
	// EngineWorkers bounds concurrent simulations inside the shared
	// engine pool (default GOMAXPROCS). One job may fan out into many
	// runs; this is the simulation-level bound.
	EngineWorkers int
	// QueueDepth bounds admitted-but-not-started jobs; a submission
	// beyond it is rejected with ErrQueueFull (default 64).
	QueueDepth int
	// RunTimeout bounds each simulation (engine-level; 0 = none).
	RunTimeout time.Duration
	// JobTimeout is the default per-job deadline (0 = none); a Spec's
	// TimeoutMS overrides it per job.
	JobTimeout time.Duration
	// Verify attaches the correctness oracle to every run.
	Verify bool
	// TelemetryInterval, when positive, attaches interval telemetry
	// (internal/obs) to every executed run: per-bank counters snapshot
	// every this many DRAM cycles and stream to the job's SSE clients as
	// "progress" run events. Cache hits replay no telemetry.
	TelemetryInterval int64
	// Run substitutes the simulation executor (default crow.RunContext);
	// tests inject context-aware hooks here.
	Run func(context.Context, crow.Options) (crow.Report, error)
}

func (c Config) withDefaults() Config {
	if c.Scale.Insts == 0 {
		c.Scale = exp.DefaultScale()
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Run == nil {
		c.Run = crow.RunContext
	}
	return c
}

// Service owns the job table, the queue, the worker pool, and the shared
// engine pool. Create with New, serve via Handler, stop via Drain.
type Service struct {
	cfg   Config
	pool  *engine.Pool[crow.Report]
	queue *jobQueue

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int64

	busy     atomic.Int64 // jobs being serviced right now
	draining atomic.Bool

	baseCtx    context.Context
	forceStop  context.CancelFunc
	workerDone sync.WaitGroup

	http *httpStats
}

// New builds the service and starts its workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	var popts []engine.Option[crow.Report]
	if cfg.RunTimeout > 0 {
		popts = append(popts, engine.WithTimeout[crow.Report](cfg.RunTimeout))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		pool:      engine.New(cfg.EngineWorkers, popts...),
		queue:     newJobQueue(cfg.QueueDepth),
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		forceStop: cancel,
		http:      newHTTPStats(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerDone.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and admits a job. Validation failures wrap
// ErrBadRequest; admission failures are ErrQueueFull or ErrDraining.
func (s *Service) Submit(spec Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	hasExp, hasOpts := spec.Experiment != "", len(spec.Options) > 0
	if hasExp == hasOpts {
		return nil, fmt.Errorf("%w: exactly one of \"experiment\" and \"options\" must be set", ErrBadRequest)
	}
	var opts crow.Options
	var exps []exp.Experiment
	if hasOpts {
		var err error
		opts, err = crow.DecodeOptions(spec.Options)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else {
		var err error
		exps, err = exp.Select([]string{spec.Experiment})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if spec.TimeoutMS < 0 {
		return nil, fmt.Errorf("%w: timeout_ms must be non-negative", ErrBadRequest)
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("%w: shards must be non-negative", ErrBadRequest)
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(id, spec, s.seq)
	j.opts, j.exps = opts, exps
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.queue.Push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// Get returns a job by ID.
func (s *Service) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns every job, newest submission first.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq > out[b].seq })
	return out
}

// Cancel requests termination of a job: a queued job goes terminal
// immediately; a running job's context is cancelled and the worker marks it
// cancelled promptly. Cancelling a terminal job is a no-op. The memo cache
// is never poisoned: the engine evicts the interrupted run's entry, so a
// later identical submission re-executes.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	j.mu.Unlock()
	if s.queue.Remove(j) {
		j.setState(StateCancelled, "cancelled while queued")
		return j, nil
	}
	if cancel != nil {
		cancel()
	}
	return j, nil
}

// Drain stops admission (new submissions fail with ErrDraining), lets
// already-admitted jobs finish, and returns when every worker has exited —
// or cancels the stragglers when ctx expires, then waits for the workers to
// observe that. The crowserve SIGTERM path.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.workerDone.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceStop()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// EngineSnapshot exposes the shared pool's gauges and counters.
func (s *Service) EngineSnapshot() engine.Snapshot { return s.pool.Snapshot() }

// worker services jobs until the queue closes and drains.
func (s *Service) worker() {
	defer s.workerDone.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.busy.Add(1)
		s.runJob(j)
		s.busy.Add(-1)
	}
}

// runJob executes one admitted job end to end.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled between Pop and here
		j.mu.Unlock()
		return
	}
	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	j.cancel = cancel
	alreadyCancelled := j.cancelRequested
	j.mu.Unlock()
	defer cancel()
	if alreadyCancelled {
		j.setState(StateCancelled, "cancelled while queued")
		return
	}

	ropts := []exp.RunnerOption{
		exp.UsePool(s.pool),
		exp.WithContext(ctx),
		exp.RunWith(s.cfg.Run),
	}
	if s.cfg.Verify {
		ropts = append(ropts, exp.Verify())
	}
	if s.cfg.TelemetryInterval > 0 {
		ropts = append(ropts, exp.Telemetry(s.cfg.TelemetryInterval))
	}
	if j.spec.Shards > 1 {
		ropts = append(ropts, exp.Shards(j.spec.Shards))
	}
	runner := exp.NewRunner(s.cfg.Scale, ropts...)

	// The job's plan keys filter the shared pool's event stream: the job
	// sees progress on its runs even when another job executes them.
	var plan []crow.Options
	if len(j.exps) > 0 {
		plan = exp.PlanAll(runner, j.exps)
	} else {
		plan = []crow.Options{j.opts}
	}
	keys := make(map[string]bool, len(plan))
	for _, o := range plan {
		keys[runner.KeyOf(o)] = true
	}
	remove := s.pool.AddObserver(func(e engine.Event) {
		if keys[e.Key] {
			j.recordRun(e)
		}
	})
	defer remove()

	j.setState(StateRunning, "")

	result, err := s.execute(runner, j, plan)
	if err != nil {
		j.mu.Lock()
		wasCancelled := j.cancelRequested
		j.mu.Unlock()
		switch {
		case wasCancelled && errors.Is(err, context.Canceled):
			j.setState(StateCancelled, "cancelled")
		case errors.Is(err, context.DeadlineExceeded):
			j.setState(StateFailed, "deadline exceeded: "+err.Error())
		default:
			j.setState(StateFailed, err.Error())
		}
		return
	}
	j.mu.Lock()
	j.result = result
	j.mu.Unlock()
	j.setState(StateDone, "")
}

// execute runs the job's plan and assembles its result.
func (s *Service) execute(runner *exp.Runner, j *Job, plan []crow.Options) (*Result, error) {
	if len(j.exps) == 0 {
		rep, err := runner.Run(j.opts)
		if err != nil {
			return nil, err
		}
		return &Result{Report: &rep}, nil
	}
	if err := runner.Execute(plan); err != nil {
		return nil, err
	}
	tables := make([]exp.Table, 0, len(j.exps))
	for _, e := range j.exps {
		t, err := e.Table(runner)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		tables = append(tables, t)
	}
	return &Result{Tables: tables}, nil
}
