// Package service turns the CROW reproduction into simulation-as-a-service:
// a job subsystem with a bounded priority queue, admission control, a worker
// pool delegating to the memoizing run engine (internal/engine) so
// singleflight memoization becomes a cross-request result cache, per-job
// cancellation and deadlines, streaming progress events, and graceful
// drain. cmd/crowserve exposes it over HTTP/JSON (see Handler).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/exp"
	"crowdram/internal/obs"
)

// ErrBadRequest wraps submission-validation failures; the HTTP layer maps
// it to 400.
var ErrBadRequest = errors.New("service: bad request")

// ErrNotFound marks lookups of unknown job IDs; the HTTP layer maps it
// to 404.
var ErrNotFound = errors.New("service: no such job")

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Scale is the simulation scale every job runs at (default
	// exp.DefaultScale). One service has one scale, so identical
	// submissions share cache entries.
	Scale exp.Scale
	// Workers is the number of jobs serviced concurrently (default 2).
	Workers int
	// EngineWorkers bounds concurrent simulations inside the shared
	// engine pool (default GOMAXPROCS). One job may fan out into many
	// runs; this is the simulation-level bound.
	EngineWorkers int
	// QueueDepth bounds admitted-but-not-started jobs; a submission
	// beyond it is rejected with ErrQueueFull (default 64).
	QueueDepth int
	// RunTimeout bounds each simulation (engine-level; 0 = none).
	RunTimeout time.Duration
	// JobTimeout is the default per-job deadline (0 = none); a Spec's
	// TimeoutMS overrides it per job. Like TimeoutMS, the deadline is
	// anchored at admission, so it bounds total wall-clock time including
	// queue wait.
	JobTimeout time.Duration
	// Backing is an optional persistent result tier under the engine's
	// in-memory memo (typically a *store.Store[crow.Report]): consulted on
	// memo miss before executing, populated on success. A backing hit
	// surfaces as a "store-hit" run event and in /metrics. Because results
	// are keyed by the canonical run key, a store directory outlives
	// restarts — warm traffic survives them.
	Backing engine.Backing[crow.Report]
	// RetainJobs bounds how many terminal jobs stay queryable: once more
	// than this many jobs are done/failed/cancelled, the oldest are
	// evicted from the job table (GET returns 404). Queued and running
	// jobs are never evicted. 0 selects the default (512); negative means
	// unlimited.
	RetainJobs int
	// RetainFor additionally evicts terminal jobs older than this TTL
	// (measured from their finish time). 0 (the default) disables the TTL.
	RetainFor time.Duration
	// Verify attaches the correctness oracle to every run.
	Verify bool
	// TelemetryInterval, when positive, attaches interval telemetry
	// (internal/obs) to every executed run: per-bank counters snapshot
	// every this many DRAM cycles and stream to the job's SSE clients as
	// "progress" run events. Cache hits replay no telemetry.
	TelemetryInterval int64
	// Run substitutes the simulation executor (default crow.RunContext);
	// tests inject context-aware hooks here.
	Run func(context.Context, crow.Options) (crow.Report, error)
	// Logger receives the service's structured log lines; every
	// job-correlated line carries the job's trace_id. Nil discards them
	// (the embedded-service default).
	Logger *slog.Logger
	// SlowJob, when positive, logs a Warn line (with the job's trace ID
	// and stage breakdown pointers) for any job whose admission-to-done
	// wall time exceeds it. 0 disables the slow-job log.
	SlowJob time.Duration
	// SpanCapacity bounds each job's span ring: 0 selects
	// obs.DefaultSpanCapacity, negative disables span recording entirely
	// (no rings, no span events, no stage histograms fed — the
	// spans-off arm of the overhead gate).
	SpanCapacity int
}

func (c Config) withDefaults() Config {
	if c.Scale.Insts == 0 {
		c.Scale = exp.DefaultScale()
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 512
	}
	if c.Run == nil {
		c.Run = crow.RunContext
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Service owns the job table, the queue, the worker pool, and the shared
// engine pool. Create with New, serve via Handler, stop via Drain.
type Service struct {
	cfg   Config
	pool  *engine.Pool[crow.Report]
	queue *jobQueue

	mu   sync.Mutex
	jobs map[string]*Job
	seq  int64

	busy     atomic.Int64 // jobs being serviced right now
	draining atomic.Bool

	baseCtx    context.Context
	forceStop  context.CancelFunc
	workerDone sync.WaitGroup

	log    *slog.Logger
	http   *httpStats
	stages *stageStats
}

// New builds the service and starts its workers.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	var popts []engine.Option[crow.Report]
	if cfg.RunTimeout > 0 {
		popts = append(popts, engine.WithTimeout[crow.Report](cfg.RunTimeout))
	}
	if cfg.Backing != nil {
		popts = append(popts, engine.WithBacking[crow.Report](cfg.Backing))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		pool:      engine.New(cfg.EngineWorkers, popts...),
		queue:     newJobQueue(cfg.QueueDepth),
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		forceStop: cancel,
		log:       cfg.Logger,
		http:      newHTTPStats(),
		stages:    newStageStats(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerDone.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and admits a job. Validation failures wrap
// ErrBadRequest; admission failures are ErrQueueFull or ErrDraining.
func (s *Service) Submit(spec Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	hasExp, hasOpts := spec.Experiment != "", len(spec.Options) > 0
	if hasExp == hasOpts {
		return nil, fmt.Errorf("%w: exactly one of \"experiment\" and \"options\" must be set", ErrBadRequest)
	}
	var opts crow.Options
	var exps []exp.Experiment
	if hasOpts {
		var err error
		opts, err = crow.DecodeOptions(spec.Options)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else {
		var err error
		exps, err = exp.Select([]string{spec.Experiment})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if spec.TimeoutMS < 0 {
		return nil, fmt.Errorf("%w: timeout_ms must be non-negative", ErrBadRequest)
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("%w: shards must be non-negative", ErrBadRequest)
	}

	s.pruneJobs()
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(id, spec, s.seq)
	j.opts, j.exps = opts, exps
	j.trace = obs.NewTraceID()
	if s.cfg.SpanCapacity >= 0 {
		j.spans = obs.NewSpanRecorder(s.cfg.SpanCapacity)
	}
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.queue.Push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, err
	}
	s.log.Info("job admitted",
		"job", id, "trace_id", j.trace,
		"experiment", spec.Experiment, "priority", spec.Priority)
	return j, nil
}

// Get returns a job by ID.
func (s *Service) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns every job, newest submission first.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq > out[b].seq })
	return out
}

// Cancel requests termination of a job: a queued job goes terminal
// immediately; a running job's context is cancelled and the worker marks it
// cancelled promptly. Cancelling a terminal job is a no-op. The memo cache
// is never poisoned: the engine evicts the interrupted run's entry, so a
// later identical submission re-executes.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	j.mu.Unlock()
	if s.queue.Remove(j) {
		j.setState(StateCancelled, "cancelled while queued")
		s.pruneJobs()
		return j, nil
	}
	if cancel != nil {
		cancel()
	}
	return j, nil
}

// pruneJobs applies the terminal-job retention policy: terminal jobs beyond
// the RetainJobs count (newest kept) or older than the RetainFor TTL are
// evicted from the job table, so a long-running server's memory stays
// bounded no matter how many jobs it has served. Queued and running jobs are
// never candidates. Runs after every terminal transition and on submission
// (the latter catches TTL expiry during quiet stretches of the job table).
func (s *Service) pruneJobs() {
	retain, ttl := s.cfg.RetainJobs, s.cfg.RetainFor
	if retain < 0 && ttl <= 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Fast path: without a TTL, scan only once the table exceeds the count
	// bound by 25% — the batch eviction then amortizes the O(table) scan to
	// O(1) per job, keeping prune cost off the submit/completion hot path.
	if ttl <= 0 && len(s.jobs) <= retain+retain/4 {
		return
	}
	var terminal []*Job
	for _, j := range s.jobs {
		j.mu.Lock()
		isTerminal, finished := j.state.Terminal(), j.finished
		j.mu.Unlock()
		if !isTerminal {
			continue
		}
		if ttl > 0 && now.Sub(finished) > ttl {
			delete(s.jobs, j.ID)
			continue
		}
		terminal = append(terminal, j)
	}
	if retain >= 0 && len(terminal) > retain {
		// seq is assigned at submission and immutable, so it orders
		// eviction oldest-first without taking job locks again.
		sort.Slice(terminal, func(a, b int) bool { return terminal[a].seq > terminal[b].seq })
		for _, j := range terminal[retain:] {
			delete(s.jobs, j.ID)
		}
	}
}

// Drain stops admission (new submissions fail with ErrDraining), lets
// already-admitted jobs finish, and returns when every worker has exited —
// or cancels the stragglers when ctx expires, then waits for the workers to
// observe that. The crowserve SIGTERM path.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.workerDone.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceStop()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// EngineSnapshot exposes the shared pool's gauges and counters.
func (s *Service) EngineSnapshot() engine.Snapshot { return s.pool.Snapshot() }

// worker services jobs until the queue closes and drains.
func (s *Service) worker() {
	defer s.workerDone.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.busy.Add(1)
		s.runJob(j)
		s.busy.Add(-1)
	}
}

// jobContext derives the single context a job runs under. A positive
// timeout becomes a deadline anchored at the job's admission time, so the
// timeout bounds total wall-clock time — queue wait included — as the Spec
// documents. Exactly one context is created either way and the caller always
// runs its cancel: the historical version created a WithCancel context and
// then overwrote it with a WithTimeout one for timed jobs, discarding the
// first cancel func and leaking a child registration on the service-lifetime
// base context per timed job.
func jobContext(base context.Context, submitted time.Time, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithDeadline(base, submitted.Add(timeout))
	}
	return context.WithCancel(base)
}

// runJob executes one admitted job end to end.
func (s *Service) runJob(j *Job) {
	defer s.pruneJobs()
	j.mu.Lock()
	if j.state.Terminal() { // cancelled between Pop and here
		j.mu.Unlock()
		return
	}
	timeout := s.cfg.JobTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := jobContext(s.baseCtx, j.submitted, timeout)
	j.cancel = cancel
	alreadyCancelled := j.cancelRequested
	trace, submitted := j.trace, j.submitted
	j.mu.Unlock()
	defer cancel()
	if alreadyCancelled {
		j.setState(StateCancelled, "cancelled while queued")
		s.log.Info("job cancelled", "job", j.ID, "trace_id", trace, "while", "queued")
		return
	}
	ctx = obs.WithTrace(ctx, trace)

	picked := time.Now()
	s.recordSpan(j, obs.Span{
		Trace: trace, Stage: obs.StageQueueWait,
		Start: submitted, DurationMS: durMS(picked.Sub(submitted)),
	})

	ropts := []exp.RunnerOption{
		exp.UsePool(s.pool),
		exp.WithContext(ctx),
		exp.RunWith(s.cfg.Run),
	}
	if s.cfg.Verify {
		ropts = append(ropts, exp.Verify())
	}
	if s.cfg.TelemetryInterval > 0 {
		ropts = append(ropts, exp.Telemetry(s.cfg.TelemetryInterval))
	}
	if j.spec.Shards > 1 {
		ropts = append(ropts, exp.Shards(j.spec.Shards))
	}
	runner := exp.NewRunner(s.cfg.Scale, ropts...)

	// The job's plan keys filter the shared pool's event stream: the job
	// sees progress on its runs even when another job executes them.
	var plan []crow.Options
	if len(j.exps) > 0 {
		plan = exp.PlanAll(runner, j.exps)
	} else {
		plan = []crow.Options{j.opts}
	}
	keys := make(map[string]bool, len(plan))
	for _, o := range plan {
		keys[runner.KeyOf(o)] = true
	}
	remove := s.pool.AddObserver(func(e engine.Event) {
		if keys[e.Key] {
			j.recordRun(e)
			for _, sp := range spansFromEvent(trace, e) {
				s.recordSpan(j, sp)
			}
		}
	})
	defer remove()

	j.setState(StateRunning, "")
	s.log.Info("job started",
		"job", j.ID, "trace_id", trace,
		"queue_wait_ms", durMS(picked.Sub(submitted)), "runs", len(plan))

	result, err := s.execute(runner, j, plan)
	wall := time.Since(submitted)
	if err != nil {
		j.mu.Lock()
		wasCancelled := j.cancelRequested
		j.mu.Unlock()
		switch {
		case wasCancelled && errors.Is(err, context.Canceled):
			j.setState(StateCancelled, "cancelled")
			s.log.Info("job cancelled", "job", j.ID, "trace_id", trace, "while", "running")
		case errors.Is(err, context.DeadlineExceeded):
			j.setState(StateFailed, "deadline exceeded: "+err.Error())
			s.log.Warn("job failed", "job", j.ID, "trace_id", trace, "error", err.Error(), "wall_ms", durMS(wall))
		default:
			j.setState(StateFailed, err.Error())
			s.log.Warn("job failed", "job", j.ID, "trace_id", trace, "error", err.Error(), "wall_ms", durMS(wall))
		}
		return
	}
	j.mu.Lock()
	j.result = result
	j.mu.Unlock()
	j.setState(StateDone, "")
	s.log.Info("job done", "job", j.ID, "trace_id", trace, "wall_ms", durMS(wall))
	if s.cfg.SlowJob > 0 && wall > s.cfg.SlowJob {
		spans, _ := j.TraceSpans()
		var execMS, waitMS float64
		for _, sp := range spans {
			switch sp.Stage {
			case obs.StageExecute:
				execMS += sp.DurationMS
			case obs.StageQueueWait:
				waitMS += sp.DurationMS
			}
		}
		s.log.Warn("slow job",
			"job", j.ID, "trace_id", trace,
			"wall_ms", durMS(wall), "threshold_ms", durMS(s.cfg.SlowJob),
			"queue_wait_ms", waitMS, "execute_ms", execMS,
			"trace_url", "/v1/jobs/"+j.ID+"/trace")
	}
}

// durMS converts a duration to float milliseconds (the wire/log unit).
func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// recordSpan routes one completed span to the job (ring + event log) and the
// service-wide per-stage histograms. A nil-ring job (spans disabled) or a
// terminal job feeds neither.
func (s *Service) recordSpan(j *Job, sp obs.Span) {
	if j.addSpan(sp) {
		s.stages.observe(sp.Stage, sp.DurationMS)
	}
}

// spansFromEvent derives pipeline-stage spans from one engine observer
// event. The engine stamps each event with its emission time and the
// durations of the phases just behind it, so the spans are reconstructed
// back-to-front: an event at T whose phases took a then b yields
// [T-a-b, T-b) and [T-b, T).
func spansFromEvent(trace obs.TraceID, e engine.Event) []obs.Span {
	span := func(stage obs.Stage, end time.Time, d time.Duration) obs.Span {
		return obs.Span{
			Trace: trace, Stage: stage, Name: e.Label,
			Start: end.Add(-d), DurationMS: durMS(d),
		}
	}
	switch e.Type {
	case engine.EventCacheHit:
		// Lookup covers Do entry to result availability (including any
		// wait on an in-flight execution).
		return []obs.Span{span(obs.StageMemoLookup, e.Time, e.Lookup)}
	case engine.EventQueued, engine.EventStoreHit:
		// Do entry → memo check (Lookup) → backing read (StoreRead, zero
		// without a backing tier) → emission.
		out := []obs.Span{span(obs.StageMemoLookup, e.Time.Add(-e.StoreRead), e.Lookup)}
		if e.StoreRead > 0 {
			out = append(out, span(obs.StageStoreRead, e.Time, e.StoreRead))
		}
		return out
	case engine.EventFinished:
		// fn return (Duration behind it) → write-behind Put (StoreWrite)
		// → emission.
		out := []obs.Span{span(obs.StageExecute, e.Time.Add(-e.StoreWrite), e.Duration)}
		if e.StoreWrite > 0 {
			out = append(out, span(obs.StageStoreWrite, e.Time, e.StoreWrite))
		}
		return out
	}
	return nil
}

// execute runs the job's plan and assembles its result.
func (s *Service) execute(runner *exp.Runner, j *Job, plan []crow.Options) (*Result, error) {
	if len(j.exps) == 0 {
		rep, err := runner.Run(j.opts)
		if err != nil {
			return nil, err
		}
		return &Result{Report: &rep}, nil
	}
	if err := runner.Execute(plan); err != nil {
		return nil, err
	}
	tables := make([]exp.Table, 0, len(j.exps))
	for _, e := range j.exps {
		t, err := e.Table(runner)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		tables = append(tables, t)
	}
	return &Result{Tables: tables}, nil
}
