package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowdram/crow"
	"crowdram/internal/exp"
)

// testHook is a controllable context-aware run executor: runs block until
// released (or their context is cancelled) and every execution is counted.
type testHook struct {
	mu       sync.Mutex
	execs    atomic.Int64
	blocked  map[string]chan struct{} // workload → release channel
	started  chan string              // workload names, in execution order
	blockAll bool
}

func newTestHook(blockAll bool) *testHook {
	return &testHook{
		blocked:  make(map[string]chan struct{}),
		started:  make(chan string, 64),
		blockAll: blockAll,
	}
}

// release unblocks every current and future run of the workload.
func (h *testHook) release(workload string) {
	close(h.gate(workload))
}

func (h *testHook) gate(workload string) chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.blocked[workload]
	if !ok {
		g = make(chan struct{})
		h.blocked[workload] = g
	}
	return g
}

func (h *testHook) run(ctx context.Context, o crow.Options) (crow.Report, error) {
	h.execs.Add(1)
	name := strings.Join(o.Workloads, "+")
	select {
	case h.started <- name:
	default:
	}
	if h.blockAll {
		select {
		case <-h.gate(name):
		case <-ctx.Done():
			return crow.Report{}, ctx.Err()
		}
	}
	rep := crow.Report{
		Mechanism: o.Mechanism,
		IPC:       make([]float64, len(o.Workloads)),
		MPKI:      make([]float64, len(o.Workloads)),
		EnergyNJ:  crow.EnergyBreakdown{Read: 1},
	}
	for i := range rep.IPC {
		rep.IPC[i] = 1
		rep.MPKI[i] = 10
	}
	return rep, nil
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Scale.Insts == 0 {
		cfg.Scale = exp.QuickScale()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	data, _ := io.ReadAll(resp.Body)
	json.Unmarshal(data, &st)
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (fatal on timeout or on
// reaching a different terminal state).
func waitState(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return Status{}
}

const mcfCache = `{"options": {"Mechanism": "crow-cache", "Workloads": ["mcf"]}}`

func TestSubmitRunGet(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run})
	st, resp := postJob(t, ts, mcfCache)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit returned %+v", st)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Result == nil || done.Result.Report == nil {
		t.Fatal("done job must carry a report")
	}
	if done.Result.Report.Mechanism != crow.Cache || done.Result.Report.IPC[0] != 1 {
		t.Errorf("report = %+v", done.Result.Report)
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("done job must carry started/finished timestamps")
	}
}

// TestShardsReachRunContext pins the spec→runner→context plumbing: a job
// submitted with "shards" executes its simulations under a context carrying
// that shard count (crow.RunContext turns it into sim.Config.Shards), and a
// spec without it stays serial.
func TestShardsReachRunContext(t *testing.T) {
	var seen atomic.Int64
	run := func(ctx context.Context, o crow.Options) (crow.Report, error) {
		seen.Store(int64(crow.ShardsFrom(ctx)))
		return crow.Report{Mechanism: o.Mechanism, IPC: []float64{1}}, nil
	}
	_, ts := newTestService(t, Config{Run: run})

	st, resp := postJob(t, ts, `{"options": {"Mechanism": "crow-cache", "Workloads": ["mcf"]}, "shards": 4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
	if got := seen.Load(); got != 4 {
		t.Errorf("sharded job ran with ShardsFrom = %d, want 4", got)
	}

	st, resp = postJob(t, ts, `{"options": {"Mechanism": "crow-cache", "Workloads": ["lbm"]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
	if got := seen.Load(); got != 0 {
		t.Errorf("serial job ran with ShardsFrom = %d, want 0", got)
	}
}

// TestConcurrentDedup is the headline acceptance test: two concurrent
// submissions with identical Options execute once on the engine
// (singleflight as cross-request cache) and both jobs complete with
// identical results.
func TestConcurrentDedup(t *testing.T) {
	hook := newTestHook(true)
	s, ts := newTestService(t, Config{Run: hook.run, Workers: 2})

	a, _ := postJob(t, ts, mcfCache)
	b, _ := postJob(t, ts, mcfCache)
	// Both jobs must be running (one executing, one coalesced on the
	// same in-flight engine entry) before the run is released.
	waitState(t, ts, a.ID, StateRunning)
	waitState(t, ts, b.ID, StateRunning)
	hook.release("mcf")

	sa := waitState(t, ts, a.ID, StateDone)
	sb := waitState(t, ts, b.ID, StateDone)
	if n := hook.execs.Load(); n != 1 {
		t.Errorf("identical concurrent submissions must execute once, got %d", n)
	}
	ja, _ := json.Marshal(sa.Result)
	jb, _ := json.Marshal(sb.Result)
	if !bytes.Equal(ja, jb) {
		t.Errorf("deduped results differ:\n  %s\n  %s", ja, jb)
	}
	if snap := s.EngineSnapshot(); snap.Executions != 1 || snap.CacheHits < 1 {
		t.Errorf("engine snapshot = %+v, want 1 execution and >=1 cache hit", snap)
	}
	// A third, later submission is a warm cache hit.
	c, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, c.ID, StateDone)
	if n := hook.execs.Load(); n != 1 {
		t.Errorf("warm resubmission must not re-execute, got %d executions", n)
	}
}

// TestCancelMidRun: DELETE of a running job stops the underlying run
// promptly (the context-aware hook observes cancellation), the job goes
// terminal 'cancelled', and the memo cache is not poisoned — an identical
// resubmission re-executes and succeeds.
func TestCancelMidRun(t *testing.T) {
	hook := newTestHook(true)
	s, ts := newTestService(t, Config{Run: hook.run})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateRunning)
	select {
	case <-hook.started:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	got := waitState(t, ts, st.ID, StateCancelled)
	if got.Result != nil {
		t.Error("cancelled job must not carry a result")
	}

	// Cancelling an already-terminal job stays terminal 'cancelled'.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, _ = http.DefaultClient.Do(req)
	var again Status
	json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if again.State != StateCancelled {
		t.Errorf("re-cancel state = %q", again.State)
	}

	// The cache must not hold the interrupted run: resubmit, release, and
	// expect a fresh, successful execution.
	hook.release("mcf")
	st2, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st2.ID, StateDone)
	if n := hook.execs.Load(); n != 2 {
		t.Errorf("resubmission after cancel must re-execute (executions = %d, want 2)", n)
	}
	if snap := s.EngineSnapshot(); snap.Failures != 1 {
		t.Errorf("engine must count the cancelled run as a failure: %+v", snap)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1})
	blocker, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, blocker.ID, StateRunning)
	queued, _ := postJob(t, ts, `{"options": {"Mechanism": "crow-ref", "Workloads": ["lbm"]}}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("queued job must cancel immediately, state = %q", st.State)
	}
	hook.release("mcf")
	waitState(t, ts, blocker.ID, StateDone)
	if n := hook.execs.Load(); n != 1 {
		t.Errorf("cancelled queued job must never execute (executions = %d)", n)
	}
}

// TestAdmissionControl: a full queue rejects with 503 + Retry-After.
func TestAdmissionControl(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1, QueueDepth: 1})
	running, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, running.ID, StateRunning)
	// Queue slot 1: admitted. Queue now full.
	q1, resp := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission: %d", resp.StatusCode)
	}
	_, resp = postJob(t, ts, `{"options": {"Workloads": ["gcc"]}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	hook.release("mcf")
	hook.release("lbm")
	waitState(t, ts, running.ID, StateDone)
	waitState(t, ts, q1.ID, StateDone)
}

// TestPriorityOrdering: with one worker, a higher-priority submission
// overtakes an earlier lower-priority one.
func TestPriorityOrdering(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1})
	blocker, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, blocker.ID, StateRunning)
	<-hook.started
	low, _ := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}, "priority": 1}`)
	high, _ := postJob(t, ts, `{"options": {"Workloads": ["gcc"]}, "priority": 9}`)
	hook.release("mcf")
	hook.release("lbm")
	hook.release("gcc")
	waitState(t, ts, low.ID, StateDone)
	waitState(t, ts, high.ID, StateDone)
	order := []string{<-hook.started, <-hook.started}
	if order[0] != "gcc" || order[1] != "lbm" {
		t.Errorf("execution order = %v, want [gcc lbm] (priority before FIFO)", order)
	}
}

// TestDrain: during drain, inflight jobs finish, new submissions get 503,
// healthz flips to 503, and Drain returns cleanly.
func TestDrain(t *testing.T) {
	hook := newTestHook(true)
	s := New(Config{Run: hook.run, Scale: exp.QuickScale()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain must reject new work while the inflight job keeps running.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	_, resp := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain = %d, want 503", resp.StatusCode)
	}
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if hResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hResp.StatusCode)
	}

	hook.release("mcf")
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := getStatus(t, ts, st.ID); got.State != StateDone {
		t.Errorf("inflight job after drain = %q, want done", got.State)
	}
}

// TestDrainForceCancelsStragglers: an expired drain context cancels what is
// still running instead of hanging.
func TestDrainForceCancelsStragglers(t *testing.T) {
	hook := newTestHook(true) // never released
	s := New(Config{Run: hook.run, Scale: exp.QuickScale()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain err = %v", err)
	}
	if got := getStatus(t, ts, st.ID); !got.State.Terminal() {
		t.Errorf("straggler after forced drain = %q, want terminal", got.State)
	}
}

func TestNamedExperimentJob(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run})
	// table1 is analytic: no simulations, result is its table.
	st, resp := postJob(t, ts, `{"experiment": "table1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Result == nil || len(done.Result.Tables) != 1 {
		t.Fatalf("experiment job result = %+v", done.Result)
	}
	if done.Result.Tables[0].Title == "" || len(done.Result.Tables[0].Rows) == 0 {
		t.Errorf("table is empty: %+v", done.Result.Tables[0])
	}
	if n := hook.execs.Load(); n != 0 {
		t.Errorf("analytic experiment must run no simulations, ran %d", n)
	}
}

func TestSimulationExperimentJob(t *testing.T) {
	hook := newTestHook(false)
	s, ts := newTestService(t, Config{Run: hook.run, EngineWorkers: 4})
	st, _ := postJob(t, ts, `{"experiment": "fig8"}`)
	done := waitState(t, ts, st.ID, StateDone)
	if done.Result == nil || len(done.Result.Tables) != 1 {
		t.Fatalf("fig8 result = %+v", done.Result)
	}
	if hook.execs.Load() == 0 {
		t.Error("sim experiment must execute runs")
	}
	// The job's event log must show engine progress for its plan.
	evs, _, _ := mustGetJob(t, s, st.ID).EventsSince(0)
	var runEvents int
	for _, e := range evs {
		if e.Kind == KindRun {
			runEvents++
		}
	}
	if runEvents == 0 {
		t.Error("experiment job must record run progress events")
	}
}

// TestHammerJob pins the served RowHammer path: a job carrying the attack
// and mitigation knobs decodes into Options that reach the run executor
// intact, and a misspelled mitigation (knob or value) is rejected at submit
// time, before anything queues.
func TestHammerJob(t *testing.T) {
	var got crow.Options
	run := func(ctx context.Context, o crow.Options) (crow.Report, error) {
		got = o
		return crow.Report{IPC: []float64{1}}, nil
	}
	_, ts := newTestService(t, Config{Run: run})
	st, resp := postJob(t, ts, `{"options": {
		"Workloads": ["hammer-double"], "Translation": "rowstripe",
		"Mitigation": "para", "ParaPerMille": 100,
		"FlipHCFirst": 512, "FlipBlastPct": 30, "MaxMeasureCycles": 10000000}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
	if got.Mitigation != "para" || got.ParaPerMille != 100 ||
		got.FlipHCFirst != 512 || got.FlipBlastPct != 30 ||
		got.Translation != "rowstripe" || got.MaxMeasureCycles != 10_000_000 {
		t.Errorf("options lost fields in flight: %+v", got)
	}
	for name, body := range map[string]string{
		"misspelled knob":    `{"options": {"Workloads": ["hammer-double"], "Mitigaton": "para"}}`,
		"unknown mitigation": `{"options": {"Workloads": ["hammer-double"], "Mitigation": "parra"}}`,
		"para out of range":  `{"options": {"Mitigation": "para", "ParaPerMille": 5000}}`,
		"crow-hammer sans crow": `{"options": {"Mechanism": "baseline",
			"Mitigation": "crow-hammer"}}`,
	} {
		if _, resp := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestHammerLabExperimentJob: the flips-vs-overhead sweep is servable by
// name like any registry experiment.
func TestHammerLabExperimentJob(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, EngineWorkers: 4})
	st, resp := postJob(t, ts, `{"experiment": "hammerlab"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Result == nil || len(done.Result.Tables) != 1 {
		t.Fatalf("hammerlab result = %+v", done.Result)
	}
	if hook.execs.Load() == 0 {
		t.Error("hammerlab must execute simulations")
	}
}

func mustGetJob(t *testing.T, s *Service, id string) *Job {
	t.Helper()
	j, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestEventStream: the SSE endpoint replays queued→running→run
// progress→done and closes at the terminal event.
func TestEventStream(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	hook.release("mcf")

	var states []State
	var runTypes []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() { // the server closes the stream at the terminal event
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		switch e.Kind {
		case KindState:
			states = append(states, e.State)
		case KindRun:
			runTypes = append(runTypes, e.Run.Type)
		}
	}
	wantStates := []State{StateQueued, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(wantStates) {
		t.Errorf("state events = %v, want %v", states, wantStates)
	}
	joined := strings.Join(runTypes, ",")
	if !strings.Contains(joined, "started") || !strings.Contains(joined, "finished") {
		t.Errorf("run events = %v, want started and finished", runTypes)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestService(t, Config{Run: newTestHook(false).run})
	cases := []struct {
		name, body string
	}{
		{"neither selector", `{}`},
		{"both selectors", `{"experiment": "fig8", "options": {"Workloads": ["mcf"]}}`},
		{"unknown experiment", `{"experiment": "fig99"}`},
		{"unknown options field", `{"options": {"CopyRowz": 8}}`},
		{"bad workload", `{"options": {"Workloads": ["nope"]}}`},
		{"bad mechanism", `{"options": {"Mechanism": "warp-drive"}}`},
		{"unknown spec field", `{"optionz": {}}`},
		{"negative timeout", `{"experiment": "table1", "timeout_ms": -5}`},
		{"negative shards", `{"experiment": "table1", "shards": -1}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		_, resp := postJob(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Unknown job IDs are 404 on every job route.
	for _, req := range []*http.Request{
		mustReq(t, http.MethodGet, ts.URL+"/v1/jobs/nope"),
		mustReq(t, http.MethodGet, ts.URL+"/v1/jobs/nope/events"),
		mustReq(t, http.MethodDelete, ts.URL+"/v1/jobs/nope"),
	} {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", req.Method, req.URL.Path, resp.StatusCode)
		}
	}
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestJobTimeout(t *testing.T) {
	hook := newTestHook(true) // never released: job must die by deadline
	_, ts := newTestService(t, Config{Run: hook.run})
	st, _ := postJob(t, ts, `{"options": {"Workloads": ["mcf"]}, "timeout_ms": 40}`)
	got := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("timeout error = %q, want deadline mention", got.Error)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 2, QueueDepth: 7})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateDone)
	st2, _ := postJob(t, ts, mcfCache) // warm cache hit
	waitState(t, ts, st2.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Queue.Capacity != 7 || m.Workers.Total != 2 {
		t.Errorf("config gauges = %+v", m)
	}
	if m.Engine.Executions != 1 || m.Engine.CacheHits != 1 || m.Engine.HitRatio != 0.5 {
		t.Errorf("engine metrics = %+v, want 1 execution, 1 hit, ratio 0.5", m.Engine)
	}
	if m.Jobs[StateDone] != 2 {
		t.Errorf("job counts = %v", m.Jobs)
	}
	post := m.HTTP["POST /v1/jobs"]
	if post.Count != 2 || post.MaxMS <= 0 {
		t.Errorf("POST latency stats = %+v", post)
	}
	if m.HTTP["GET /v1/jobs/{id}"].Count == 0 {
		t.Error("GET job latency must be tracked")
	}
}

func TestListJobs(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run})
	a, _ := postJob(t, ts, mcfCache)
	b, _ := postJob(t, ts, `{"experiment": "table1"}`)
	waitState(t, ts, a.ID, StateDone)
	waitState(t, ts, b.ID, StateDone)
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != b.ID || list[1].ID != a.ID {
		t.Errorf("list = %+v, want newest first", list)
	}
}
