package service

import (
	"container/heap"
	"errors"
	"sync"
)

// Queue-admission errors. The HTTP layer maps them to 503 responses.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the service's backpressure signal.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining rejects a submission after shutdown has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// jobQueue is a bounded priority FIFO: higher Spec.Priority pops first,
// submission order breaks ties. Push applies admission control; Pop blocks
// until an item or close-and-empty.
type jobQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    jobHeap
	capacity int
	closed   bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits a job or rejects it with ErrQueueFull / ErrDraining.
func (q *jobQueue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.capacity {
		return ErrQueueFull
	}
	heap.Push(&q.items, j)
	q.cond.Signal()
	return nil
}

// Pop returns the next job by (priority, FIFO) order, blocking while the
// queue is open and empty. ok is false once the queue is closed and drained:
// the worker's signal to exit.
func (q *jobQueue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*Job), true
}

// Remove takes a still-queued job out of the queue (DELETE of a queued
// job); it reports whether the job was found.
func (q *jobQueue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.mu.Lock()
	i := j.heapIndex
	j.mu.Unlock()
	if i < 0 || i >= len(q.items) || q.items[i] != j {
		return false
	}
	heap.Remove(&q.items, i)
	return true
}

// Close starts the drain: no further Push succeeds, Pop drains what is
// already admitted, and blocked workers wake.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Len returns the current queue depth.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Closed reports whether the drain has begun.
func (q *jobQueue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// jobHeap orders by priority descending, then submission sequence
// ascending. It keeps each job's heapIndex current so Remove is O(log n).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	if h[a].spec.Priority != h[b].spec.Priority {
		return h[a].spec.Priority > h[b].spec.Priority
	}
	return h[a].seq < h[b].seq
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].setHeapIndex(a)
	h[b].setHeapIndex(b)
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.setHeapIndex(len(*h))
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	j.setHeapIndex(-1)
	return j
}

func (j *Job) setHeapIndex(i int) {
	j.mu.Lock()
	j.heapIndex = i
	j.mu.Unlock()
}
