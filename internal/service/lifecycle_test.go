package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// manualCtx is a bare context.Context implementation. Deriving a child from
// it forces the context package onto its slow path — a propagation goroutine
// per child instead of an entry in the parent's internal child list — which
// makes a leaked child registration observable as a leaked goroutine.
type manualCtx struct{ done chan struct{} }

func (c *manualCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *manualCtx) Done() <-chan struct{}       { return c.done }
func (c *manualCtx) Value(any) any               { return nil }
func (c *manualCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

// TestJobContextNoLeak is the regression test for the runJob context leak:
// the historical code created a WithCancel child of the service-lifetime
// base context and then, for timed jobs, overwrote both ctx and cancel with
// a WithTimeout pair — discarding the first cancel func, so one child
// registration (here: one propagation goroutine) accumulated on the base
// context per timed job for the life of the server. jobContext creates
// exactly one context; cancelling it must release everything.
func TestJobContextNoLeak(t *testing.T) {
	parent := &manualCtx{done: make(chan struct{})}
	defer close(parent.done)
	before := runtime.NumGoroutine()

	for i := 0; i < 50; i++ {
		// Both branches: the timed path (the one that leaked) and the
		// plain-cancel path.
		ctx, cancel := jobContext(parent, time.Now(), time.Minute)
		cancel()
		<-ctx.Done()
		ctx, cancel = jobContext(parent, time.Now(), 0)
		cancel()
		<-ctx.Done()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 { // scheduling slack
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cancelled job contexts leaked goroutines: %d before, %d after",
		before, runtime.NumGoroutine())
}

// TestJobContextDeadlineAnchoredAtAdmission pins the timeout semantics the
// Spec documents: the deadline is submitted+timeout, not started+timeout.
func TestJobContextDeadlineAnchoredAtAdmission(t *testing.T) {
	submitted := time.Now().Add(-30 * time.Second)
	ctx, cancel := jobContext(context.Background(), submitted, time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("timed job context must carry a deadline")
	}
	if want := submitted.Add(time.Minute); !dl.Equal(want) {
		t.Errorf("deadline = %v, want admission+timeout = %v", dl, want)
	}
	ctx, cancel = jobContext(context.Background(), submitted, 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("untimed job context must carry no deadline")
	}
}

// TestTimeoutCountsQueueWait: a job whose TimeoutMS budget is consumed
// entirely by queue wait fails with a deadline error and never executes —
// TimeoutMS bounds total wall-clock time from admission.
func TestTimeoutCountsQueueWait(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1})
	blocker, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, blocker.ID, StateRunning)

	queued, _ := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}, "timeout_ms": 60}`)
	time.Sleep(120 * time.Millisecond) // burn the whole budget in the queue
	hook.release("mcf")

	got := waitState(t, ts, queued.ID, StateFailed)
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("expired-in-queue job error = %q, want deadline mention", got.Error)
	}
	waitState(t, ts, blocker.ID, StateDone)
	if n := hook.execs.Load(); n != 1 {
		t.Errorf("job expired in the queue must never execute: %d executions, want 1 (the blocker)", n)
	}
}

// waitGone polls until GET on the job returns 404 (retention evicted it).
func waitGone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s was never evicted", id)
}

// TestTerminalJobRetention: with RetainJobs = 2, the oldest terminal jobs
// are evicted from the job table and GET on an evicted ID returns 404.
func TestTerminalJobRetention(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1, RetainJobs: 2})
	ids := make([]string, 4)
	for i := range ids {
		body := fmt.Sprintf(`{"options": {"Workloads": ["mcf"], "Seed": %d}}`, i+2)
		st, resp := postJob(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
		waitState(t, ts, st.ID, StateDone)
	}
	waitGone(t, ts, ids[0])
	waitGone(t, ts, ids[1])
	for _, id := range ids[2:] {
		if st := getStatus(t, ts, id); st.State != StateDone {
			t.Errorf("retained job %s = %q, want done", id, st.State)
		}
	}
}

// TestRetentionSparesLiveJobs: queued and running jobs are never evicted,
// no matter how tight the retention bound.
func TestRetentionSparesLiveJobs(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Workers: 1, RetainJobs: 1})
	// Two terminal jobs, so the retention bound (1) is exceeded.
	a, _ := postJob(t, ts, mcfCache)
	hook.release("mcf")
	waitState(t, ts, a.ID, StateDone)
	b, _ := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}}`)
	hook.release("lbm")
	waitState(t, ts, b.ID, StateDone)
	// One running, one queued behind it.
	running, _ := postJob(t, ts, `{"options": {"Workloads": ["gcc"]}}`)
	waitState(t, ts, running.ID, StateRunning)
	queued, _ := postJob(t, ts, `{"options": {"Workloads": ["soplex"]}}`)

	waitGone(t, ts, a.ID) // oldest terminal job: evicted
	if st := getStatus(t, ts, b.ID); st.State != StateDone {
		t.Errorf("newest terminal job must be retained, got %q", st.State)
	}
	if st := getStatus(t, ts, running.ID); st.State != StateRunning {
		t.Errorf("running job must never be evicted, got %q", st.State)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateQueued {
		t.Errorf("queued job must never be evicted, got %q", st.State)
	}
	hook.release("gcc")
	hook.release("soplex")
	waitState(t, ts, queued.ID, StateDone)
}

// TestRetentionTTL: terminal jobs age out after RetainFor even when the
// count bound would keep them; the sweep runs on the next submission.
func TestRetentionTTL(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, RetainJobs: -1, RetainFor: 40 * time.Millisecond})
	a, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, a.ID, StateDone)
	time.Sleep(80 * time.Millisecond) // let the TTL lapse

	b, _ := postJob(t, ts, `{"options": {"Workloads": ["lbm"]}}`) // triggers the sweep
	waitGone(t, ts, a.ID)
	waitState(t, ts, b.ID, StateDone)
}
