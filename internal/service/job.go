package service

import (
	"encoding/json"
	"sync"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/exp"
	"crowdram/internal/obs"
)

// State is a job's lifecycle position. Queued and Running are transient;
// Done, Failed and Cancelled are terminal.
type State string

// Job states, in lifecycle order.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is a job submission: exactly one of Experiment (a name, kind, or
// "all" from the internal/exp registry) or Options (a strict-JSON
// crow.Options document) selects the work.
type Spec struct {
	// Experiment names one or more registry experiments ("fig8",
	// "analytic", "all", ...). Their plans execute on the shared engine
	// pool and the result carries one table per experiment.
	Experiment string `json:"experiment,omitempty"`
	// Options is a single raw simulation, decoded with
	// crow.DecodeOptions (unknown fields rejected). The result carries
	// the run's crow.Report.
	Options json.RawMessage `json:"options,omitempty"`
	// Priority orders admission: higher runs first, FIFO within a
	// priority. Default 0.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job's total wall-clock time, measured from
	// admission — queue wait counts against it, so a job that spends its
	// whole budget queued fails with a deadline error without executing
	// (0 = the service default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shards, when above 1, advances each simulation's channels on up to
	// that many goroutines between synchronization epochs. Results are
	// byte-identical to serial runs, so sharded and serial jobs share the
	// service's cross-request result cache.
	Shards int `json:"shards,omitempty"`
}

// Result is a completed job's payload.
type Result struct {
	// Report is set for Options jobs.
	Report *crow.Report `json:"report,omitempty"`
	// Tables is set for Experiment jobs, one per selected experiment in
	// registry order.
	Tables []exp.Table `json:"tables,omitempty"`
}

// EventKind classifies job event-log records.
type EventKind string

// Event kinds: state transitions, engine per-run progress, and pipeline
// stage spans.
const (
	KindState EventKind = "state"
	KindRun   EventKind = "run"
	KindSpan  EventKind = "span"
)

// Event is one record of a job's append-only event log, the unit the SSE
// stream delivers.
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Kind EventKind `json:"kind"`
	// State is the new state (KindState only).
	State State `json:"state,omitempty"`
	// Error is the failure detail on a terminal state transition.
	Error string `json:"error,omitempty"`
	// Run is the engine progress record (KindRun only).
	Run *RunEvent `json:"run,omitempty"`
	// Span is the completed pipeline-stage span (KindSpan only).
	Span *obs.Span `json:"span,omitempty"`
}

// RunEvent mirrors one engine observer event belonging to the job's plan.
type RunEvent struct {
	Type       string  `json:"type"` // queued | started | finished | cache-hit | progress
	Label      string  `json:"label"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	Error      string  `json:"error,omitempty"`
	Pending    int     `json:"pending"`
	// Telemetry carries an interval snapshot (type "progress" only; set
	// when the service runs with a telemetry interval).
	Telemetry *obs.IntervalSnapshot `json:"telemetry,omitempty"`
}

// Job is one submitted unit of work. All fields behind mu; accessors copy.
type Job struct {
	ID string

	mu        sync.Mutex
	spec      Spec
	opts      crow.Options // decoded (Options jobs)
	exps      []exp.Experiment
	seq       int64 // FIFO tiebreak within a priority
	heapIndex int   // maintained by the queue; -1 when not queued

	state     State
	err       string
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time

	trace obs.TraceID
	spans *obs.SpanRecorder // nil when span recording is disabled

	cancelRequested bool
	cancel          func() // run-context cancel; nil until running

	events  []Event
	changed chan struct{} // closed and replaced on every append
}

func newJob(id string, spec Spec, seq int64) *Job {
	j := &Job{
		ID:        id,
		spec:      spec,
		seq:       seq,
		heapIndex: -1,
		state:     StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
	j.append(Event{Kind: KindState, State: StateQueued})
	return j
}

// append records an event (mu held by caller or not needed yet); it stamps
// sequence and time and wakes streamers.
func (j *Job) append(e Event) {
	e.Seq = len(j.events)
	e.Time = time.Now()
	j.events = append(j.events, e)
	close(j.changed)
	j.changed = make(chan struct{})
}

// setState transitions the job, records the event, and stamps timestamps.
// Transitions out of a terminal state are ignored.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.err = errMsg
	now := time.Now()
	switch s {
	case StateRunning:
		j.started = now
	case StateDone, StateFailed, StateCancelled:
		j.finished = now
	}
	j.append(Event{Kind: KindState, State: s, Error: errMsg})
}

// addSpan records a completed pipeline-stage span: into the ring (backing
// GET /v1/jobs/{id}/trace) and onto the event log (backing SSE replay and
// follow). Spans arriving after the job went terminal are dropped, matching
// recordRun — the terminal state event stays the last on the log. Returns
// whether the span was recorded (false when disabled or terminal), so the
// caller keeps service-wide aggregates consistent with the job's log.
func (j *Job) addSpan(sp obs.Span) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.spans == nil {
		return false
	}
	j.spans.Record(sp)
	j.append(Event{Kind: KindSpan, Span: &sp})
	return true
}

// Trace returns the job's trace ID ("" before admission stamping).
func (j *Job) Trace() obs.TraceID {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// TraceSpans returns a copy of the job's retained spans and the count of
// spans the bounded ring dropped (0, 0-len when recording is disabled).
func (j *Job) TraceSpans() (spans []obs.Span, dropped int64) {
	j.mu.Lock()
	rec := j.spans
	j.mu.Unlock()
	if rec == nil {
		return nil, 0
	}
	return rec.Spans(), rec.Dropped()
}

// recordRun appends an engine progress event.
func (j *Job) recordRun(e engine.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	re := &RunEvent{Type: e.Type.String(), Label: e.Label, Pending: e.Pending}
	if e.Duration > 0 {
		re.DurationMS = float64(e.Duration.Microseconds()) / 1000
	}
	if e.Err != nil {
		re.Error = e.Err.Error()
	}
	if snap, ok := e.Progress.(obs.IntervalSnapshot); ok {
		re.Telemetry = &snap
	}
	j.append(Event{Kind: KindRun, Run: re})
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// EventsSince returns a copy of the log from seq on, a channel that closes
// on the next append, and whether the job is terminal — everything an SSE
// streamer needs to replay-then-follow without holding locks.
func (j *Job) EventsSince(seq int) (evs []Event, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.changed, j.state.Terminal()
}

// Status is the wire form of a job (GET /v1/jobs/{id}).
type Status struct {
	ID         string          `json:"id"`
	State      State           `json:"state"`
	TraceID    string          `json:"trace_id,omitempty"`
	Experiment string          `json:"experiment,omitempty"`
	Options    json.RawMessage `json:"options,omitempty"`
	Priority   int             `json:"priority,omitempty"`
	Submitted  time.Time       `json:"submitted"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     *Result         `json:"result,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.ID,
		State:      j.state,
		TraceID:    string(j.trace),
		Experiment: j.spec.Experiment,
		Options:    j.spec.Options,
		Priority:   j.spec.Priority,
		Submitted:  j.submitted,
		Error:      j.err,
		Result:     j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}
