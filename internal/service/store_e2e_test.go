package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"crowdram/crow"
	"crowdram/internal/exp"
	"crowdram/internal/store"
)

// storePhase runs one "process lifetime" against the shared store directory:
// a fresh service (fresh engine memo) backed by a fresh store handle, torn
// down with a full drain so the next phase models a clean restart.
func storePhase(t *testing.T, dir string, hook *testHook, f func(s *Service, ts *httptest.Server, st *store.Store[crow.Report])) {
	t.Helper()
	st, err := exp.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Run: hook.run, Scale: exp.QuickScale(), Backing: st})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	f(s, ts, st)
}

// TestStoreRestartSurvival is the acceptance e2e for the persistent result
// tier: a job executed before a crowserve restart is served from disk after
// it — zero new executions, byte-identical result — and a corrupted store
// file is detected and silently re-executed rather than served.
func TestStoreRestartSurvival(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: cold service executes the job and persists the result.
	var firstResult []byte
	hook1 := newTestHook(false)
	storePhase(t, dir, hook1, func(s *Service, ts *httptest.Server, st *store.Store[crow.Report]) {
		job, _ := postJob(t, ts, mcfCache)
		done := waitState(t, ts, job.ID, StateDone)
		firstResult, _ = json.Marshal(done.Result)
		if n := hook1.execs.Load(); n != 1 {
			t.Fatalf("cold run executions = %d, want 1", n)
		}
		if stats := st.Stats(); stats.Files != 1 || stats.Writes != 1 {
			t.Fatalf("store after cold run = %+v, want 1 file, 1 write", stats)
		}
	})

	// Phase 2: "restart" — new service, new engine memo, same directory.
	// The resubmission must come from the store, not from an execution.
	hook2 := newTestHook(false)
	storePhase(t, dir, hook2, func(s *Service, ts *httptest.Server, st *store.Store[crow.Report]) {
		job, _ := postJob(t, ts, mcfCache)
		done := waitState(t, ts, job.ID, StateDone)
		if n := hook2.execs.Load(); n != 0 {
			t.Errorf("warm-from-store run executions = %d, want 0", n)
		}
		snap := s.EngineSnapshot()
		if snap.Executions != 0 || snap.StoreHits != 1 {
			t.Errorf("engine after restart = %+v, want 0 executions, 1 store hit", snap)
		}
		got, _ := json.Marshal(done.Result)
		if !bytes.Equal(got, firstResult) {
			t.Errorf("result changed across restart:\n  before: %s\n  after:  %s", firstResult, got)
		}
		// The job's event log must attribute the result to the store.
		evs, _, _ := mustGetJob(t, s, job.ID).EventsSince(0)
		var sawStoreHit bool
		for _, e := range evs {
			if e.Kind == KindRun && e.Run.Type == "store-hit" {
				sawStoreHit = true
			}
		}
		if !sawStoreHit {
			t.Error("job event log has no store-hit run event")
		}
		// /metrics surfaces the persistent tier.
		var m Metrics
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if m.Engine.StoreHits != 1 || m.Store == nil || m.Store.Files != 1 || m.Store.Hits != 1 {
			t.Errorf("metrics store view = engine %+v, store %+v", m.Engine, m.Store)
		}
	})

	// Corrupt the stored result on disk.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("store dir contents = %v (err %v), want exactly one result file", files, err)
	}
	if err := os.WriteFile(files[0], []byte(`{"version": 1, "value": "garbled`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 3: the corrupted file is a miss — deleted, re-executed, rewritten.
	hook3 := newTestHook(false)
	storePhase(t, dir, hook3, func(s *Service, ts *httptest.Server, st *store.Store[crow.Report]) {
		job, _ := postJob(t, ts, mcfCache)
		done := waitState(t, ts, job.ID, StateDone)
		if n := hook3.execs.Load(); n != 1 {
			t.Errorf("corrupted store entry must re-execute: executions = %d, want 1", n)
		}
		stats := st.Stats()
		if stats.Corrupt != 1 || stats.Hits != 0 || stats.Writes != 1 {
			t.Errorf("store after corruption recovery = %+v, want 1 corrupt, 0 hits, 1 write", stats)
		}
		got, _ := json.Marshal(done.Result)
		if !bytes.Equal(got, firstResult) {
			t.Errorf("re-executed result differs from the original:\n  %s\n  %s", firstResult, got)
		}
	})
}
