package service

import (
	"errors"
	"sync"
	"testing"
)

func qjob(priority int, seq int64) *Job {
	return newJob("t", Spec{Priority: priority}, seq)
}

func TestQueuePriorityFIFO(t *testing.T) {
	q := newJobQueue(8)
	a, b, c, d := qjob(0, 1), qjob(5, 2), qjob(5, 3), qjob(0, 4)
	for _, j := range []*Job{a, b, c, d} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []*Job{b, c, a, d} // priority desc, FIFO within
	for i, wj := range want {
		j, ok := q.Pop()
		if !ok || j != wj {
			t.Fatalf("pop %d: got seq %d, want seq %d", i, j.seq, wj.seq)
		}
	}
}

func TestQueueAdmissionAndClose(t *testing.T) {
	q := newJobQueue(2)
	if err := q.Push(qjob(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(qjob(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(qjob(0, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity push = %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push(qjob(0, 4)); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after close = %v, want ErrDraining", err)
	}
	// Close drains what was admitted before reporting empty.
	if _, ok := q.Pop(); !ok {
		t.Fatal("first queued job must still pop after close")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("second queued job must still pop after close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained closed queue must report not-ok")
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := q.Pop(); ok {
			t.Error("pop on closed empty queue must report not-ok")
		}
	}()
	q.Close()
	wg.Wait()
}

func TestQueueRemove(t *testing.T) {
	q := newJobQueue(8)
	a, b, c := qjob(0, 1), qjob(0, 2), qjob(0, 3)
	for _, j := range []*Job{a, b, c} {
		q.Push(j)
	}
	if !q.Remove(b) {
		t.Fatal("remove of queued job must succeed")
	}
	if q.Remove(b) {
		t.Fatal("double remove must fail")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	j1, _ := q.Pop()
	j2, _ := q.Pop()
	if j1 != a || j2 != c {
		t.Errorf("pop order after remove = %d,%d want 1,3", j1.seq, j2.seq)
	}
	if q.Remove(a) {
		t.Error("remove of popped job must fail")
	}
}
