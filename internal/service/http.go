package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"crowdram/internal/metrics"
	"crowdram/internal/obs"
	"crowdram/internal/store"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST   /v1/jobs             submit (Spec body) → 202 Status
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        status + result
//	GET    /v1/jobs/{id}/events SSE stream: replay, then follow to terminal
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON of the job's spans
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             200 ok / 503 draining
//	GET    /metrics             queue, workers, engine cache, HTTP latency
//
// Validation failures are 400, unknown IDs 404, and a full queue or a
// draining service 503 with Retry-After — the admission-control contract.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.http.instrument(pattern, h))
	}
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleList)
	handle("GET /v1/jobs/{id}", s.handleGet)
	handle("GET /v1/jobs/{id}/events", s.handleEvents)
	handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	var spec Spec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"invalid job spec: " + err.Error()})
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
		// The admitting request is the job's first pipeline stage: body
		// read, decode, validation, and queue admission.
		s.recordSpan(j, obs.Span{
			Trace: j.Trace(), Stage: obs.StageHTTP,
			Start: start, DurationMS: durMS(time.Since(start)),
		})
		writeJSON(w, http.StatusAccepted, j.Status())
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event log as Server-Sent Events: every
// record already logged replays first, then the stream follows live until
// the job reaches a terminal state (whose event is the last delivered) or
// the client disconnects.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{"streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	next := 0
	for {
		evs, changed, terminal := j.EventsSince(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		}
		if len(evs) > 0 {
			next += len(evs)
			fl.Flush()
		}
		if terminal {
			return // the terminal state event has been delivered
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the job's recorded spans as Chrome trace-event JSON —
// loadable in Perfetto on its own, or concatenable with the simulator's
// crowtrace export (the job track sits at its own pid above the banks).
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{err.Error()})
		return
	}
	spans, dropped := j.TraceSpans()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	obs.WriteJobTrace(w, j.ID, j.Trace(), spans, dropped)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Metrics is the /metrics document: admission state, worker occupancy, the
// engine cache, per-state job counts, and per-endpoint latency.
type Metrics struct {
	Queue struct {
		Depth    int  `json:"depth"`
		Capacity int  `json:"capacity"`
		Draining bool `json:"draining"`
	} `json:"queue"`
	Workers struct {
		Total int `json:"total"`
		Busy  int `json:"busy"`
	} `json:"workers"`
	Engine struct {
		Queued       int     `json:"queued"`
		Inflight     int     `json:"inflight"`
		Entries      int     `json:"entries"`
		Executions   int64   `json:"executions"`
		CacheHits    int64   `json:"cache_hits"`
		StoreHits    int64   `json:"store_hits"`
		Failures     int64   `json:"failures"`
		HitRatio     float64 `json:"hit_ratio"`
		QueuedTotal  int64   `json:"queued_total"`
		StartedTotal int64   `json:"started_total"`
		DoneTotal    int64   `json:"done_total"`
	} `json:"engine"`
	EngineWorkers int              `json:"engine_workers"`
	Jobs          map[State]int    `json:"jobs"`
	HTTP          map[string]Stats `json:"http"`
	// Stages summarizes pipeline-stage span durations across all jobs,
	// keyed by stage name; every stage is present even before any span
	// lands on it.
	Stages map[string]Stats `json:"stages"`
	// Store is the persistent result store's footprint and counters, when
	// the service runs with one whose Backing implementation exposes
	// store.Stats (the disk store does).
	Store *store.Stats `json:"store,omitempty"`

	// HTTPHist and StageHist carry the full bucket distributions behind
	// HTTP and Stages for the Prometheus rendering; the JSON document keeps
	// its historical summary shape.
	HTTPHist  map[string]metrics.HistSnapshot `json:"-"`
	StageHist map[string]metrics.HistSnapshot `json:"-"`
}

// Metrics assembles the current metrics document.
func (s *Service) Metrics() Metrics {
	var m Metrics
	m.Queue.Depth = s.queue.Len()
	m.Queue.Capacity = s.cfg.QueueDepth
	m.Queue.Draining = s.Draining()
	m.Workers.Total = s.cfg.Workers
	m.Workers.Busy = int(s.busy.Load())
	es := s.pool.Snapshot()
	m.Engine.Queued = es.Queued
	m.Engine.Inflight = es.Inflight
	m.Engine.Entries = es.Entries
	m.Engine.Executions = es.Executions
	m.Engine.CacheHits = es.CacheHits
	m.Engine.StoreHits = es.StoreHits
	m.Engine.Failures = es.Failures
	m.Engine.HitRatio = es.HitRatio()
	m.Engine.QueuedTotal = es.QueuedTotal
	m.Engine.StartedTotal = es.StartedTotal
	m.Engine.DoneTotal = es.DoneTotal
	if st, ok := s.cfg.Backing.(interface{ Stats() store.Stats }); ok {
		stats := st.Stats()
		m.Store = &stats
	}
	m.EngineWorkers = s.pool.Workers()
	if m.EngineWorkers == 0 {
		m.EngineWorkers = runtime.GOMAXPROCS(0)
	}
	m.Jobs = make(map[State]int)
	for _, j := range s.Jobs() {
		m.Jobs[j.State()]++
	}
	m.HTTP, m.HTTPHist = s.http.snapshot()
	m.Stages, m.StageHist = s.stages.snapshot()
	return m
}

// handleMetrics serves the metrics document, content-negotiated: JSON by
// default (the historical shape, unchanged), Prometheus text exposition when
// the client asks for text/plain (what Prometheus scrapers send) or with
// ?format=prometheus (curl convenience).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", PromContentType)
		w.WriteHeader(http.StatusOK)
		WritePrometheus(w, m)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Stats summarizes one endpoint's request latency.
type Stats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// httpStats tracks per-endpoint latency on the shared log-bucket histogram
// from internal/metrics — the same primitive the simulator uses for read
// latencies.
type httpStats struct {
	mu     sync.Mutex
	routes map[string]*metrics.Histogram
}

func newHTTPStats() *httpStats {
	return &httpStats{routes: make(map[string]*metrics.Histogram)}
}

// instrument wraps a handler, recording wall-clock milliseconds per request
// under the route pattern. SSE streams record their full stream lifetime.
func (h *httpStats) instrument(pattern string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next(w, r)
		ms := float64(time.Since(start).Microseconds()) / 1000
		h.mu.Lock()
		hist, ok := h.routes[pattern]
		if !ok {
			hist = metrics.NewHistogram()
			h.routes[pattern] = hist
		}
		hist.Add(ms)
		h.mu.Unlock()
	})
}

func (h *httpStats) snapshot() (map[string]Stats, map[string]metrics.HistSnapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]Stats, len(h.routes))
	hists := make(map[string]metrics.HistSnapshot, len(h.routes))
	for route, hist := range h.routes {
		out[route] = statsOf(hist)
		hists[route] = hist.Snapshot()
	}
	return out, hists
}

// statsOf summarizes one histogram into the JSON Stats shape.
func statsOf(hist *metrics.Histogram) Stats {
	return Stats{
		Count:  hist.Count(),
		MeanMS: hist.Mean(),
		P50MS:  hist.Percentile(50),
		P99MS:  hist.Percentile(99),
		MaxMS:  hist.Max(),
	}
}

// stageStats aggregates pipeline-stage span durations service-wide, one
// histogram per stage. All stages are registered at construction so the
// /metrics stage series exist (at zero) before any span lands.
type stageStats struct {
	mu     sync.Mutex
	stages map[obs.Stage]*metrics.Histogram
}

func newStageStats() *stageStats {
	st := &stageStats{stages: make(map[obs.Stage]*metrics.Histogram, 6)}
	for _, stage := range obs.Stages() {
		st.stages[stage] = metrics.NewHistogram()
	}
	return st
}

func (st *stageStats) observe(stage obs.Stage, ms float64) {
	st.mu.Lock()
	hist, ok := st.stages[stage]
	if !ok {
		hist = metrics.NewHistogram()
		st.stages[stage] = hist
	}
	hist.Add(ms)
	st.mu.Unlock()
}

func (st *stageStats) snapshot() (map[string]Stats, map[string]metrics.HistSnapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]Stats, len(st.stages))
	hists := make(map[string]metrics.HistSnapshot, len(st.stages))
	for stage, hist := range st.stages {
		out[string(stage)] = statsOf(hist)
		hists[string(stage)] = hist.Snapshot()
	}
	return out, hists
}
