package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdram/crow"
	"crowdram/internal/obs"
)

// memBacking is an in-memory engine backing for span tests: misses on first
// read, hits after the write-behind.
type memBacking struct {
	mu sync.Mutex
	m  map[string]crow.Report
}

func newMemBacking() *memBacking { return &memBacking{m: make(map[string]crow.Report)} }

func (b *memBacking) Get(key string) (crow.Report, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.m[key]
	return r, ok
}

func (b *memBacking) Put(key string, val crow.Report) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = val
}

// fetchSpans parses the Chrome trace export of GET /v1/jobs/{id}/trace.
func fetchSpans(t *testing.T, ts *httptest.Server, id string) (traceID string, events []traceEvent) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var doc struct {
		OtherData struct {
			TraceID string `json:"trace_id"`
		} `json:"otherData"`
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace export is not JSON: %v\n%s", err, body)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			events = append(events, e)
		}
	}
	return doc.OtherData.TraceID, events
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// TestTraceReconstruction is the acceptance walk: submit a job against a
// service with a persistent tier, let it finish, and rebuild its life from
// GET /v1/jobs/{id}/trace alone — every pipeline stage present, one trace ID
// throughout (matching the job status), and the stage durations summing to no
// more than the admission-to-done wall time.
func TestTraceReconstruction(t *testing.T) {
	run := func(ctx context.Context, o crow.Options) (crow.Report, error) {
		time.Sleep(20 * time.Millisecond) // a visible execute stage
		return crow.Report{Mechanism: o.Mechanism, IPC: []float64{1}, MPKI: []float64{10}}, nil
	}
	_, ts := newTestService(t, Config{Run: run, Backing: newMemBacking()})

	st, _ := postJob(t, ts, mcfCache)
	if st.TraceID == "" {
		t.Fatal("submit response carries no trace_id")
	}
	st = waitState(t, ts, st.ID, StateDone)

	traceID, events := fetchSpans(t, ts, st.ID)
	if traceID != st.TraceID {
		t.Fatalf("trace export ID %q != job trace ID %q", traceID, st.TraceID)
	}

	byStage := map[string][]traceEvent{}
	var pipelineMS float64 // every stage except the admitting HTTP handler
	for _, e := range events {
		byStage[e.Name] = append(byStage[e.Name], e)
		if id := e.Args["trace_id"]; id != st.TraceID {
			t.Errorf("span %q carries trace %v, want %q", e.Name, id, st.TraceID)
		}
		if e.Name != string(obs.StageHTTP) {
			pipelineMS += e.Dur / 1e3
		}
	}
	for _, stage := range obs.Stages() {
		if len(byStage[string(stage)]) == 0 {
			t.Errorf("no %q span recorded", stage)
		}
	}

	// queue-wait + memo-lookup + store-read + execute + store-write must
	// sum to within the admission-to-done wall time (the gaps — worker
	// handoff, engine slot wait, table assembly — are slack, not overlap).
	wallMS := float64(st.Finished.Sub(st.Submitted).Nanoseconds()) / 1e6
	if pipelineMS > wallMS*1.05+1 {
		t.Errorf("stage durations sum to %.3fms, exceeding the job's %.3fms wall time", pipelineMS, wallMS)
	}
	if exec := byStage[string(obs.StageExecute)]; len(exec) > 0 && exec[0].Dur < 20_000*0.9 {
		t.Errorf("execute span %.0fµs, want >= the hook's 20ms sleep", exec[0].Dur)
	}

	// The write-behind populated the store, so an identically-keyed job on a
	// fresh service over the same backing would store-hit; on this service
	// the memo wins — its lookup span is the only engine-side span added.
	st2, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st2.ID, StateDone)
	if st2.TraceID == st.TraceID {
		t.Error("two jobs share one trace ID")
	}
	_, events2 := fetchSpans(t, ts, st2.ID)
	var sawLookup bool
	for _, e := range events2 {
		switch e.Name {
		case string(obs.StageMemoLookup):
			sawLookup = true
		case string(obs.StageExecute):
			t.Error("memo-hit job recorded an execute span")
		}
	}
	if !sawLookup {
		t.Error("memo-hit job recorded no memo-lookup span")
	}
}

// TestSpanSSEReplay: after completion, the SSE stream replays the full span
// set in record order, consistent with the trace endpoint.
func TestSpanSSEReplay(t *testing.T) {
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, Backing: newMemBacking()})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	var stages []string
	for _, line := range strings.Split(string(body), "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev Event
		if json.Unmarshal([]byte(data), &ev) == nil && ev.Kind == KindSpan {
			if ev.Span == nil {
				t.Fatalf("span event without span payload: %s", data)
			}
			if string(ev.Span.Trace) != st.TraceID {
				t.Errorf("span event trace %q, want %q", ev.Span.Trace, st.TraceID)
			}
			stages = append(stages, string(ev.Span.Stage))
		}
	}
	_, events := fetchSpans(t, ts, st.ID)
	if len(stages) == 0 || len(stages) != len(events) {
		t.Fatalf("SSE replayed %d spans, trace endpoint has %d", len(stages), len(events))
	}
	// Record order starts with the job-level stages, in pipeline order.
	want := []string{string(obs.StageHTTP), string(obs.StageQueueWait)}
	for i, w := range want {
		if stages[i] != w {
			t.Fatalf("replayed span order %v, want prefix %v", stages, want)
		}
	}
}

// TestSpanSSEFollow: a client following a running job receives the
// execute/store-write spans live, as the run finishes — not only on replay.
func TestSpanSSEFollow(t *testing.T) {
	hook := newTestHook(true)
	_, ts := newTestService(t, Config{Run: hook.run, Backing: newMemBacking()})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	spans := make(chan string, 64)
	go func() {
		defer close(spans)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var ev Event
			if json.Unmarshal([]byte(data), &ev) == nil && ev.Kind == KindSpan {
				spans <- string(ev.Span.Stage)
			}
		}
	}()

	// Drain what replay already delivered (job-level stages), then release
	// the blocked run: the engine-side spans must now arrive on the live
	// stream.
	hook.release("mcf")
	waitState(t, ts, st.ID, StateDone)

	got := map[string]bool{}
	for stage := range spans {
		got[stage] = true
	}
	for _, want := range []string{string(obs.StageExecute), string(obs.StageStoreWrite)} {
		if !got[want] {
			t.Errorf("follow stream never delivered a %q span (got %v)", want, got)
		}
	}
}

// TestSpansDisabled: SpanCapacity < 0 turns the feature off end to end — no
// span events on the log, an empty trace export, and untouched stage
// histograms — the spans-off arm the overhead gate compares against.
func TestSpansDisabled(t *testing.T) {
	hook := newTestHook(false)
	s, ts := newTestService(t, Config{Run: hook.run, SpanCapacity: -1})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateDone)

	_, events := fetchSpans(t, ts, st.ID)
	if len(events) != 0 {
		t.Errorf("spans disabled but trace export has %d spans", len(events))
	}
	j, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	evs, _, _ := j.EventsSince(0)
	for _, e := range evs {
		if e.Kind == KindSpan {
			t.Errorf("spans disabled but event log has a span event")
		}
	}
	for stage, stats := range s.Metrics().Stages {
		if stats.Count != 0 {
			t.Errorf("spans disabled but stage %q histogram has %d samples", stage, stats.Count)
		}
	}
}

// TestStructuredLogCorrelation: every slog line the service emits for one
// job carries the same trace_id, and a job slower than the SlowJob threshold
// gets a "slow job" warning pointing at its trace.
func TestStructuredLogCorrelation(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lg, err := obs.NewLogger(&lockedWriter{w: &buf, mu: &mu}, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	hook := newTestHook(false)
	_, ts := newTestService(t, Config{Run: hook.run, Logger: lg, SlowJob: time.Nanosecond})
	st, _ := postJob(t, ts, mcfCache)
	waitState(t, ts, st.ID, StateDone)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var jobLines, slow int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "job="+st.ID) {
			continue
		}
		jobLines++
		if !strings.Contains(line, "trace_id="+st.TraceID) {
			t.Errorf("log line for job %s lost its trace ID: %s", st.ID, line)
		}
		if strings.Contains(line, "slow job") {
			slow++
		}
	}
	if jobLines < 3 { // admitted, started, done at minimum
		t.Errorf("only %d correlated log lines:\n%s", jobLines, out)
	}
	if slow != 1 {
		t.Errorf("%d slow-job warnings, want 1:\n%s", slow, out)
	}
}

// lockedWriter serializes writes from the service's goroutines and the
// test's reads.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
