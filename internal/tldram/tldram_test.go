package tldram

import (
	"testing"

	"crowdram/internal/core"
	"crowdram/internal/dram"
)

func newTL(near int) *Mechanism {
	g := dram.Std(0)
	t := dram.LPDDR4(dram.Density8Gb, 64, g)
	return New(1, g, t, near)
}

func TestNearSegmentTimings(t *testing.T) {
	m := newTL(8)
	// Paper: TL-DRAM-8 near segment ≈ −73 % tRCD, −80 % tRAS.
	if m.near.RCD > m.T.RCD/3+2 {
		t.Errorf("near tRCD = %d cycles, want ≈ 27%% of %d", m.near.RCD, m.T.RCD)
	}
	if m.near.RAS > m.T.RAS/4+4 {
		t.Errorf("near tRAS = %d cycles, want ≈ 20%% of %d", m.near.RAS, m.T.RAS)
	}
	// Far segment pays the isolation-transistor penalty.
	if m.far.RCD <= m.T.RCD {
		t.Errorf("far tRCD = %d, must exceed baseline %d", m.far.RCD, m.T.RCD)
	}
	// Copying into the near segment extends restoration.
	if m.copy.RAS <= m.far.RAS {
		t.Error("copy tRAS must exceed a plain far activation")
	}
}

func TestMissCopyThenNearHit(t *testing.T) {
	m := newTL(8)
	a := dram.Addr{Row: 42}
	d := m.PlanActivate(a, 0)
	if d.Kind != dram.ActCopy {
		t.Fatalf("first touch must copy into the near segment, got %v", d.Kind)
	}
	m.OnActivate(a, d, 0)
	d2 := m.PlanActivate(a, 10)
	if d2.Kind != dram.ActSingle || d2.Timing != m.near {
		t.Fatalf("cached row must activate as a near row: %+v", d2)
	}
	m.OnActivate(a, d2, 10)
	if m.Stats.Hits != 1 || m.Stats.Copies != 1 {
		t.Errorf("stats: %+v", m.Stats)
	}
}

func TestLRUEvictionNoRestoreNeeded(t *testing.T) {
	m := newTL(1)
	a, b := dram.Addr{Row: 1}, dram.Addr{Row: 2}
	m.OnActivate(a, m.PlanActivate(a, 0), 0)
	d := m.PlanActivate(b, 10)
	if d.RestoreFirst {
		t.Error("TL-DRAM copies fully restore; eviction never needs a restore op")
	}
	if d.Kind != dram.ActCopy {
		t.Fatalf("want copy, got %v", d.Kind)
	}
	m.OnActivate(b, d, 10)
	if m.Table.Lookup(a) != -1 || m.Table.Lookup(b) == -1 {
		t.Error("LRU eviction broken")
	}
	if m.Stats.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", m.Stats.Evictions)
	}
}

func TestAreaOverhead(t *testing.T) {
	m := newTL(8)
	got := m.ChipAreaOverhead()
	if got < 0.065 || got > 0.073 {
		t.Errorf("TL-DRAM-8 area overhead = %.4f, want ≈ 0.069", got)
	}
}

func TestMechanismInterface(t *testing.T) {
	var _ core.Mechanism = newTL(8)
	m := newTL(8)
	if m.RefreshMultiplier() != 1 {
		t.Error("TL-DRAM does not change refresh")
	}
	if m.Name() != "tl-dram" {
		t.Error("name")
	}
}
