// Package tldram implements the Tiered-Latency DRAM baseline [58] that
// Section 8.1.4 compares CROW-cache against. TL-DRAM splits each subarray's
// bitlines with isolation transistors into a small low-latency near segment
// and a large far segment, and uses the near rows as an MRU cache of
// recently-activated far rows (copied with a RowClone-style two-step
// activation, for which this model reuses CROW's ACT-c machinery).
package tldram

import (
	"sync/atomic"

	"crowdram/internal/circuit"
	"crowdram/internal/core"
	"crowdram/internal/dram"
)

// Mechanism is the TL-DRAM controller policy. It satisfies core.Mechanism.
type Mechanism struct {
	T        dram.Timing
	NearRows int
	Table    *core.Table

	near dram.ActTimings // activation of a caching near row
	far  dram.ActTimings // activation of an uncached far row
	copy dram.ActTimings // far activation + near-row copy

	Stats core.Stats
}

// New derives the near/far timings for the given near-segment size from the
// analytical circuit model (−73 % tRCD / −80 % tRAS at 8 near rows) and
// allocates the near-segment tracking table (one set per subarray, one way
// per near row).
func New(channels int, g dram.Geometry, t dram.Timing, nearRows int) *Mechanism {
	gNear := g
	gNear.CopyRows = nearRows
	m := &Mechanism{T: t, NearRows: nearRows, Table: core.NewTable(channels, gNear)}

	rcdD, rasD, farD := circuit.Default().TLDRAMTimings(nearRows)
	scale := func(base int, d float64) int {
		v := int(float64(base)*(1+d) + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	m.near = dram.ActTimings{
		RCD:     scale(t.RCD, rcdD),
		RAS:     scale(t.RAS, rasD),
		RASFull: scale(t.RAS, rasD),
		WR:      scale(t.WR, rasD), // restoring against the short bitline
	}
	farRAS := scale(t.RAS, farD)
	m.far = dram.ActTimings{
		RCD:     scale(t.RCD, farD),
		RAS:     farRAS,
		RASFull: farRAS,
		WR:      t.WR,
	}
	copyRAS := scale(farRAS, dram.CopyFullRASDelta)
	m.copy = dram.ActTimings{
		RCD:     m.far.RCD,
		RAS:     copyRAS,
		RASFull: copyRAS,
		WR:      t.WR,
	}
	return m
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string { return "tl-dram" }

// ChipAreaOverhead returns the DRAM die overhead of the isolation
// transistors plus the near-segment decoder (6.9 % for 8 near rows).
func (m *Mechanism) ChipAreaOverhead() float64 { return circuit.TLDRAMChipOverhead(m.NearRows) }

// PlanActivate implements core.Mechanism: near-segment hits activate only
// the fast near row; misses copy the far row into the LRU near row.
func (m *Mechanism) PlanActivate(a dram.Addr, cycle int64) core.ActDecision {
	set := m.Table.Set(a)
	if w := m.Table.Lookup(a); w >= 0 && set[w].Kind == core.EntryCache {
		return core.ActDecision{Kind: dram.ActSingle, CopyRow: w, Timing: m.near}
	}
	w := core.FreeWay(set)
	if w < 0 {
		w = core.LRUWay(set)
	}
	if w < 0 {
		return core.ActDecision{Kind: dram.ActSingle, Timing: m.far}
	}
	return core.ActDecision{Kind: dram.ActCopy, CopyRow: w, Timing: m.copy}
}

// OnActivate implements core.Mechanism.
func (m *Mechanism) OnActivate(a dram.Addr, d core.ActDecision, cycle int64) {
	set := m.Table.Set(a)
	switch d.Kind {
	case dram.ActSingle:
		if d.Timing == m.near {
			atomic.AddInt64(&m.Stats.Hits, 1)
			set[d.CopyRow].Touch(cycle)
		} else {
			atomic.AddInt64(&m.Stats.Misses, 1)
		}
	case dram.ActCopy:
		atomic.AddInt64(&m.Stats.Misses, 1)
		atomic.AddInt64(&m.Stats.Copies, 1)
		if set[d.CopyRow].Allocated {
			atomic.AddInt64(&m.Stats.Evictions, 1)
		}
		set[d.CopyRow] = core.Entry{
			Allocated:     true,
			RegularRow:    m.Table.Geo.RowInSubarray(a.Row),
			Kind:          core.EntryCache,
			FullyRestored: true,
		}
		set[d.CopyRow].Touch(cycle)
	}
}

// OnPrecharge implements core.Mechanism. TL-DRAM copies always fully
// restore, so there is no restore-state tracking.
func (m *Mechanism) OnPrecharge(dram.Addr, int, bool, int64) {}

// OnRefreshRows implements core.Mechanism.
func (m *Mechanism) OnRefreshRows(int, int, int, int, int) {}

// RefreshMultiplier implements core.Mechanism.
func (m *Mechanism) RefreshMultiplier() int { return 1 }
