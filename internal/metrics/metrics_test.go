package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	// Each app at its alone IPC => WS = number of cores.
	ws := WeightedSpeedup([]float64{1, 2, 0.5}, []float64{1, 2, 0.5})
	if ws != 3 {
		t.Errorf("WS = %f, want 3", ws)
	}
	ws = WeightedSpeedup([]float64{0.5, 1}, []float64{1, 2})
	if ws != 1 {
		t.Errorf("WS = %f, want 1", ws)
	}
}

func TestWeightedSpeedupPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched vectors must panic")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.2, 1.0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Speedup = %f, want 0.2", got)
	}
	if Speedup(1, 0) != 0 {
		t.Error("zero baseline yields 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %f, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean is 0")
	}
}

func TestMeanMinMax(t *testing.T) {
	vals := []float64{3, 1, 2}
	if Mean(vals) != 2 {
		t.Error("mean broken")
	}
	min, max := MinMax(vals)
	if min != 1 || max != 3 {
		t.Error("minmax broken")
	}
}

// TestWSMonotonic: improving any core's shared IPC never lowers WS.
func TestWSMonotonic(t *testing.T) {
	f := func(a, b, c uint8) bool {
		shared := []float64{float64(a%100) + 1, float64(b%100) + 1}
		alone := []float64{float64(c%100) + 1, 50}
		ws1 := WeightedSpeedup(shared, alone)
		shared[0] += 1
		ws2 := WeightedSpeedup(shared, alone)
		return ws2 > ws1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
