package metrics

import "testing"

// BenchmarkHistogramAdd measures the per-read latency recording cost. The
// fixed bucket array keeps it allocation-free.
func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(float64(30 + i%200))
	}
	if h.Count() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

// BenchmarkHistogramPercentile measures the fixed-array percentile scan.
func BenchmarkHistogramPercentile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 10_000; i++ {
		h.Add(float64(30 + i%500))
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = h.Percentile(99)
	}
	_ = sink
}
