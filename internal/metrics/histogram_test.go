package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram must report zeros")
	}
	for _, v := range []float64{1, 2, 4, 8} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3.75 {
		t.Errorf("Mean = %f, want 3.75", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 8 {
		t.Errorf("Min/Max = %f/%f", h.Min(), h.Max())
	}
}

func TestPercentileBounds(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := rng.ExpFloat64() * 100
		vals = append(vals, v)
		h.Add(v)
	}
	_ = vals
	for _, p := range []float64{50, 90, 99} {
		got := h.Percentile(p)
		if got <= 0 || got > h.Max() {
			t.Errorf("p%.0f = %f out of range", p, got)
		}
	}
	if h.Percentile(50) > h.Percentile(99) {
		t.Error("percentiles must be monotone")
	}
}

// TestPercentileUpperBound: the bucketed percentile never underestimates by
// more than the bucket width (factor of two) — property test.
func TestPercentileUpperBound(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Add(float64(v) + 1)
		}
		p50 := h.Percentile(50)
		// At least half the values must be <= p50 (upper-bound property).
		var le int
		for _, v := range raw {
			if float64(v)+1 <= p50 {
				le++
			}
		}
		return le*2 >= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if h.String() != "empty" {
		t.Error("empty render")
	}
	h.Add(10)
	if h.String() == "" || h.String() == "empty" {
		t.Error("non-empty render")
	}
}
