// Package metrics implements the evaluation metrics of Section 7: IPC for
// single-core runs and weighted speedup [104] for multi-programmed
// workloads, plus MPKI-based memory-intensity classification.
package metrics

import "math"

// WeightedSpeedup returns Σ IPC_shared[i] / IPC_alone[i] (Snavely &
// Tullsen [104]): the job-throughput metric used for all multi-core
// figures. IPC_alone is measured on the baseline system with the
// application running alone.
func WeightedSpeedup(shared, alone []float64) float64 {
	if len(shared) != len(alone) {
		panic("metrics: mismatched IPC vectors")
	}
	ws := 0.0
	for i := range shared {
		if alone[i] > 0 {
			ws += shared[i] / alone[i]
		}
	}
	return ws
}

// Speedup returns the relative performance of a configuration versus a
// baseline (e.g. WS_mech / WS_base, or IPC_mech / IPC_base), as the
// fractional improvement the paper reports (0.071 = 7.1 %).
func Speedup(mech, base float64) float64 {
	if base == 0 {
		return 0
	}
	return mech/base - 1
}

// GeoMean returns the geometric mean of positive values (used to average
// per-workload speedup ratios).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vals {
		prod *= v
	}
	return pow(prod, 1/float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// MinMax returns the smallest and largest values.
func MinMax(vals []float64) (min, max float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	min, max = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
