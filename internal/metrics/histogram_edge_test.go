package metrics

import (
	"math"
	"testing"
)

// TestHistogramEmptyPercentiles: an empty histogram must report zero for
// every summary statistic rather than Inf/NaN from its sentinel min/max.
func TestHistogramEmptyPercentiles(t *testing.T) {
	h := NewHistogram()
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Errorf("empty summary = mean %v min %v max %v count %d, want all zero",
			h.Mean(), h.Min(), h.Max(), h.Count())
	}
	if s := h.String(); s != "empty" {
		t.Errorf("empty String() = %q", s)
	}
}

// TestHistogramSingleSample: with one value every percentile is that value
// (the bucket upper edge clips to max, which equals the sample).
func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Add(37)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 37 {
			t.Errorf("Percentile(%v) = %v, want 37", p, got)
		}
	}
	if h.Min() != 37 || h.Max() != 37 || h.Mean() != 37 || h.Count() != 1 {
		t.Errorf("single-sample summary = min %v max %v mean %v count %d",
			h.Min(), h.Max(), h.Mean(), h.Count())
	}
}

// TestHistogramBucketBoundaries: exact powers of two land in the bucket they
// open (floor(log2(2^k)) = k), values just below stay in the bucket beneath,
// and the reported percentile bound is never below the true value.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v     float64
		bound float64 // expected Percentile(100) upper bound (clipped to max)
	}{
		{1, 1}, // smallest bucket-opening value
		{2, 2}, // boundary: bucket 1 opens, upper edge 4 clips to max 2
		{math.Nextafter(2, 0), math.Nextafter(2, 0)}, // just below the boundary
		{4, 4},
		{1024, 1024},
		{0.25, 0.25}, // <1 lands in bucket 0
		{0, 0},       // zero is legal input, bucket 0
	}
	for _, c := range cases {
		h := NewHistogram()
		h.Add(c.v)
		if got := h.Percentile(100); got != c.bound {
			t.Errorf("Add(%v): Percentile(100) = %v, want %v", c.v, got, c.bound)
		}
		if got := h.Percentile(50); got < c.v {
			t.Errorf("Add(%v): Percentile(50) = %v below the recorded value", c.v, got)
		}
	}

	// Two samples straddling a boundary: p50 bounds the lower one by its
	// bucket's upper edge, p100 bounds the higher.
	h := NewHistogram()
	h.Add(2) // bucket 1 (edge 4)
	h.Add(5) // bucket 2 (edge 8)
	if got := h.Percentile(50); got != 4 {
		t.Errorf("straddle p50 = %v, want 4 (bucket-1 upper edge)", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Errorf("straddle p100 = %v, want 5 (clipped to max)", got)
	}
}

// TestHistogramOverflowBucketClamp: values beyond the last bucket's range
// clamp into the final bucket instead of indexing out of bounds.
func TestHistogramOverflowBucketClamp(t *testing.T) {
	h := NewHistogram()
	huge := math.Pow(2, 80)
	h.Add(huge)
	if got := h.Percentile(99); got != huge {
		t.Errorf("overflow p99 = %v, want %v (clipped to max)", got, huge)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
}
