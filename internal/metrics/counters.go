package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named-counter set with deterministic iteration order, used
// for violation tallies (internal/oracle) and other keyed counts that must
// render and compare reproducibly.
type Counters map[string]int64

// Add increments the named counter by n.
func (c Counters) Add(name string, n int64) { c[name] += n }

// Total returns the sum over all counters.
func (c Counters) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Names returns the counter names in sorted order.
func (c Counters) Names() []string {
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge accumulates another counter set into c.
func (c Counters) Merge(o Counters) {
	for n, v := range o {
		c[n] += v
	}
}

// String renders the counters as "name=count" pairs in name order.
func (c Counters) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c[n])
	}
	return b.String()
}
