package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates values into logarithmic buckets (powers of two) for
// cheap latency-distribution tracking, and reports percentiles.
type Histogram struct {
	buckets map[int]int64 // floor(log2(v)) -> count
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64), min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one value (values < 1 land in bucket 0).
func (h *Histogram) Add(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Floor(math.Log2(v)))
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the extreme recorded values (0 if empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing it. Bucket granularity is a factor
// of two, which suffices for tail-latency shape comparisons.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	threshold := int64(math.Ceil(p / 100 * float64(h.count)))
	var seen int64
	for _, k := range keys {
		seen += h.buckets[k]
		if seen >= threshold {
			upper := math.Pow(2, float64(k+1))
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// Reset discards every recorded value, returning the histogram to its
// freshly-constructed state (used at measurement start, after warmup).
func (h *Histogram) Reset() {
	h.buckets = make(map[int]int64)
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for k, c := range o.buckets {
		h.buckets[k] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%.0f p90<=%.0f p99<=%.0f max=%.0f",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.max)
	return b.String()
}
