package metrics

import (
	"fmt"
	"math"
	"strings"
)

// histBuckets is the number of logarithmic buckets: floor(log2(v)) of any
// positive value representable in an int64-sized latency fits in [0, 63].
const histBuckets = 64

// Histogram accumulates values into logarithmic buckets (powers of two) for
// cheap latency-distribution tracking, and reports percentiles. The buckets
// are a fixed array so Add is allocation-free and cache-friendly on the
// simulator's per-read hot path.
type Histogram struct {
	buckets [histBuckets]int64 // floor(log2(v)) -> count
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram builds an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.Reset()
	return h
}

// Add records one value (values < 1 land in bucket 0).
func (h *Histogram) Add(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Floor(math.Log2(v)))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the extreme recorded values (0 if empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing it. Bucket granularity is a factor
// of two, which suffices for tail-latency shape comparisons.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	threshold := int64(math.Ceil(p / 100 * float64(h.count)))
	var seen int64
	for k := 0; k < histBuckets; k++ {
		if h.buckets[k] == 0 {
			continue
		}
		seen += h.buckets[k]
		if seen >= threshold {
			upper := math.Pow(2, float64(k+1))
			if k == histBuckets-1 {
				// The last bucket clamps overflow values, so its power-
				// of-two edge is not an upper bound for them; max is.
				upper = h.max
			}
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// BucketCount is one histogram bucket: the count of values in
// (Upper/2, Upper] (bucket 0 additionally holds values below 1).
type BucketCount struct {
	Upper float64
	Count int64
}

// HistSnapshot is a point-in-time copy of a histogram's distribution, the
// raw material for Prometheus histogram exposition (whose cumulative `le`
// buckets a renderer derives by running-summing Buckets).
type HistSnapshot struct {
	Count   int64
	Sum     float64
	Buckets []BucketCount
}

// Snapshot copies the histogram's distribution: the non-empty buckets in
// ascending order, each with its per-bucket (non-cumulative) count and
// power-of-two upper edge. Empty buckets are omitted — a cumulative-bucket
// renderer loses nothing by their absence. An empty histogram snapshots to
// no buckets.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count, Sum: h.sum}
	for k := 0; k < histBuckets; k++ {
		if h.buckets[k] > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Upper: math.Pow(2, float64(k+1)), Count: h.buckets[k]})
		}
	}
	return s
}

// Reset discards every recorded value, returning the histogram to its
// freshly-constructed state (used at measurement start, after warmup).
func (h *Histogram) Reset() {
	h.buckets = [histBuckets]int64{}
	h.count = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for k, c := range o.buckets {
		h.buckets[k] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%.0f p90<=%.0f p99<=%.0f max=%.0f",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.max)
	return b.String()
}
