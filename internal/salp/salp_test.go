package salp

import "testing"

func TestGeometryReshape(t *testing.T) {
	g := Config{SubarraysPerBank: 256}.Geometry()
	if g.RowsPerSubarray != 256 {
		t.Errorf("RowsPerSubarray = %d, want 256", g.RowsPerSubarray)
	}
	if g.SubarraysPerBank() != 256 {
		t.Errorf("SubarraysPerBank = %d, want 256", g.SubarraysPerBank())
	}
	if g.RowsPerBank != 64*1024 {
		t.Error("capacity must be unchanged")
	}
}

func TestNames(t *testing.T) {
	if got := (Config{SubarraysPerBank: 128}).Name(); got != "SALP-128" {
		t.Errorf("Name = %s", got)
	}
	if got := (Config{SubarraysPerBank: 256, OpenPage: true}).Name(); got != "SALP-256-O" {
		t.Errorf("Name = %s", got)
	}
}

func TestAreaOverheadPaperPoints(t *testing.T) {
	cases := map[int]float64{128: 0.006, 256: 0.289, 512: 0.845}
	for s, want := range cases {
		got := Config{SubarraysPerBank: s}.ChipAreaOverhead()
		if got != want {
			t.Errorf("SALP-%d overhead = %.4f, want %.4f", s, got, want)
		}
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-divisor subarray count must panic")
		}
	}()
	Config{SubarraysPerBank: 100}.Geometry()
}
