// Package salp configures the SALP-MASA baseline [53] of Section 8.1.4.
// SALP exposes subarray-level parallelism inside a bank: with MASA, every
// subarray keeps its own local row buffer open concurrently, turning the set
// of open local row buffers into an in-DRAM cache of one row per subarray.
//
// The device-side behaviour (multiple open subarrays per bank) is
// implemented by dram.Channel's MASA mode and the controller's per-subarray
// hit detection; this package supplies the configuration surface: the
// subarrays-per-bank geometry transform, the area model, and the row-buffer
// policy variants the paper evaluates (timeout and open-page, the latter
// written SALP-N-O in Figure 11).
package salp

import (
	"fmt"

	"crowdram/internal/circuit"
	"crowdram/internal/dram"
)

// Config selects a SALP design point.
type Config struct {
	// SubarraysPerBank reshapes the bank: the baseline has 128; SALP-256
	// and SALP-512 halve/quarter the rows per subarray to add sense-
	// amplifier stripes (and area) in exchange for more cached rows.
	SubarraysPerBank int
	// OpenPage keeps local row buffers open until a conflict instead of
	// the 75 ns timeout ("-O" configurations).
	OpenPage bool
}

// Name renders the paper's notation, e.g. "SALP-256-O".
func (c Config) Name() string {
	if c.OpenPage {
		return fmt.Sprintf("SALP-%d-O", c.SubarraysPerBank)
	}
	return fmt.Sprintf("SALP-%d", c.SubarraysPerBank)
}

// Geometry reshapes the Table 2 geometry for this subarray count. DRAM
// capacity is constant; only the subarray boundaries move.
func (c Config) Geometry() dram.Geometry {
	g := dram.Std(0)
	if g.RowsPerBank%c.SubarraysPerBank != 0 {
		panic("salp: subarrays must divide rows per bank")
	}
	g.RowsPerSubarray = g.RowsPerBank / c.SubarraysPerBank
	return g
}

// ChipAreaOverhead returns the DRAM die overhead versus the baseline
// (Figure 11b: 0.6 % at 128 subarrays, 28.9 % at 256, 84.5 % at 512).
func (c Config) ChipAreaOverhead() float64 {
	return circuit.SALPChipOverhead(c.SubarraysPerBank)
}

// CacheCapacityRows returns the number of rows SALP can hold open at once
// per bank (its effective in-DRAM cache capacity).
func (c Config) CacheCapacityRows() int { return c.SubarraysPerBank }
