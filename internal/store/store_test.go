package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

type rec struct {
	Name string
	Vals []float64
}

func open(t *testing.T, dir string, opts ...Option) *Store[rec] {
	t.Helper()
	s, err := Open[rec](dir, "rec/v1", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// files returns the store's result files, sorted by name.
func files(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	want := rec{Name: "crow-cache", Vals: []float64{1.5, 2.25}}
	s.Put(`{"key":"a"}`, want)

	got, ok := s.Get(`{"key":"a"}`)
	if !ok {
		t.Fatal("want hit")
	}
	if got.Name != want.Name || len(got.Vals) != 2 || got.Vals[1] != 2.25 {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if _, ok := s.Get(`{"key":"absent"}`); ok {
		t.Error("unknown key must miss")
	}
	st := s.Stats()
	if st.Files != 1 || st.Bytes <= 0 || st.Writes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSurvivesReopen: the restart contract — a result written by one Store
// is a hit for a fresh Store on the same directory, and Open's scan reports
// the existing footprint.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir)
	s1.Put("k1", rec{Name: "a"})
	s1.Put("k2", rec{Name: "b"})

	s2 := open(t, dir)
	if st := s2.Stats(); st.Files != 2 || st.Bytes <= 0 {
		t.Fatalf("startup scan = %+v, want 2 files", st)
	}
	got, ok := s2.Get("k2")
	if !ok || got.Name != "b" {
		t.Errorf("reopened Get = %+v, %v", got, ok)
	}
}

// TestCorruptionIsAMiss covers every defect class: garbled JSON, truncation,
// a flipped payload byte (checksum), a foreign schema, a foreign version,
// and a key mismatch. Each reads as a miss and deletes the file.
func TestCorruptionIsAMiss(t *testing.T) {
	mutate := map[string]func(env *Envelope, raw []byte) []byte{
		"garbled":        func(_ *Envelope, raw []byte) []byte { return append([]byte("{nope"), raw...) },
		"truncated":      func(_ *Envelope, raw []byte) []byte { return raw[:len(raw)/2] },
		"checksum":       nil, // handled below: flip a payload byte
		"foreign-schema": func(env *Envelope, _ []byte) []byte { env.Schema = "other/v9"; return marshal(t, env) },
		"foreign-version": func(env *Envelope, _ []byte) []byte {
			env.Version = Version + 1
			return marshal(t, env)
		},
		"key-mismatch": func(env *Envelope, _ []byte) []byte { env.Key = "not-k"; return marshal(t, env) },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir)
			s.Put("k", rec{Name: "good"})
			path := files(t, dir)[0]
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var out []byte
			if fn == nil { // checksum: flip one byte inside Value
				var env Envelope
				json.Unmarshal(raw, &env)
				env.Value = json.RawMessage(strings.Replace(string(env.Value), "good", "evil", 1))
				out = marshal(t, &env)
			} else {
				var env Envelope
				json.Unmarshal(raw, &env)
				out = fn(&env, raw)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := s.Get("k"); ok {
				t.Fatal("defective file must read as a miss")
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Errorf("stats = %+v, want 1 corrupt, 1 miss", st)
			}
			if got := files(t, dir); len(got) != 0 {
				t.Errorf("defective file must be deleted, found %v", got)
			}
			// The slot is reusable: a rewrite round-trips again.
			s.Put("k", rec{Name: "fresh"})
			if got, ok := s.Get("k"); !ok || got.Name != "fresh" {
				t.Errorf("rewrite after corruption = %+v, %v", got, ok)
			}
		})
	}
}

func marshal(t *testing.T, env *Envelope) []byte {
	t.Helper()
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEnvelopeFields pins the on-disk format: version, schema, verbatim key,
// hex checksum, and the value payload.
func TestEnvelopeFields(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put("the-key", rec{Name: "x"})
	raw, err := os.ReadFile(files(t, dir)[0])
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Version != Version || env.Schema != "rec/v1" || env.Key != "the-key" {
		t.Errorf("envelope = %+v", env)
	}
	if len(env.SHA256) != 64 || env.SavedAt.IsZero() || len(env.Value) == 0 {
		t.Errorf("envelope metadata = %+v", env)
	}
}

// TestOverwriteSameKey: re-putting a key replaces the file without growing
// the file count, and the footprint stays consistent.
func TestOverwriteSameKey(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put("k", rec{Name: "v1"})
	s.Put("k", rec{Name: "v2-longer-payload", Vals: []float64{1, 2, 3}})
	if st := s.Stats(); st.Files != 1 || st.Writes != 2 {
		t.Errorf("stats = %+v, want 1 file after overwrite", st)
	}
	got, _ := s.Get("k")
	if got.Name != "v2-longer-payload" {
		t.Errorf("got %+v", got)
	}
	// The accounting must match the disk.
	var disk int64
	for _, f := range files(t, dir) {
		info, _ := os.Stat(f)
		disk += info.Size()
	}
	if st := s.Stats(); st.Bytes != disk {
		t.Errorf("accounted bytes %d != on-disk %d", st.Bytes, disk)
	}
}

// TestGCEvictsLRU: with a byte cap, the least-recently-used results go
// first — and a Get refreshes a file's position in the LRU order.
func TestGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put("old", rec{Name: "old"})
	time.Sleep(10 * time.Millisecond) // distinct mtimes
	s.Put("mid", rec{Name: "mid"})
	time.Sleep(10 * time.Millisecond)
	s.Put("new", rec{Name: "new"})
	time.Sleep(10 * time.Millisecond)
	s.Get("old") // refresh: "old" becomes most recently used

	per := s.Stats().Bytes / 3
	s.maxBytes = 2 * per // room for two files
	removed := s.GC()
	if removed != 1 {
		t.Fatalf("GC removed %d files, want 1", removed)
	}
	if _, ok := s.Get("mid"); ok {
		t.Error("LRU victim must be 'mid' (oldest access)")
	}
	for _, k := range []string{"old", "new"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%q must survive GC", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Files != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestOpenTrimsOverCapDirAndTempFiles: Open removes crashed writers' temp
// files and enforces the cap on a pre-existing directory.
func TestOpenTrimsOverCapDirAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	s.Put("a", rec{Name: "a"})
	time.Sleep(10 * time.Millisecond)
	s.Put("b", rec{Name: "b"})
	per := s.Stats().Bytes / 2
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, MaxBytes(per))
	if st := s2.Stats(); st.Files != 1 {
		t.Errorf("reopen with cap: %+v, want 1 file", st)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"crashed")); !os.IsNotExist(err) {
		t.Error("stale temp file must be removed at Open")
	}
	if _, ok := s2.Get("b"); !ok {
		t.Error("newest result must survive the Open trim")
	}
}

// TestConcurrentAccess exercises Put/Get/GC races under -race.
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, MaxBytes(1<<20))
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				k := keys[(i+n)%len(keys)]
				if n%2 == 0 {
					s.Put(k, rec{Name: k, Vals: []float64{float64(n)}})
				} else if v, ok := s.Get(k); ok && v.Name != k {
					t.Errorf("got %q for key %q", v.Name, k)
				}
			}
		}(i)
	}
	wg.Wait()
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v.Name != k {
			t.Errorf("final Get(%q) = %+v, %v", k, v, ok)
		}
	}
}
