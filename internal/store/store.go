// Package store is a disk-backed, content-addressed result store: one file
// per canonical run key, written atomically (temp file, fsync, rename) and
// wrapped in a versioned envelope whose checksum detects corruption. CROW
// simulations are deterministic and oracle-verified, so a result keyed by
// crow.Options.Key() is correct forever — which makes it safe to persist
// across process restarts and to share between nodes. The engine pool treats
// a Store as its Backing tier (engine.WithBacking): consulted on memo miss
// before executing, populated on success.
//
// Crash and corruption semantics: a reader never observes a partial write
// (rename is atomic on POSIX filesystems, and the data is fsynced before the
// rename); a file that fails the envelope check — wrong schema or version,
// mismatched key, checksum failure, truncation, unparseable JSON — is
// deleted and treated as a miss, so the run re-executes and rewrites it.
// Serving a corrupted result is therefore impossible by construction.
//
// Eviction is LRU by access time under a configurable byte cap. Access time
// is tracked by bumping the file's mtime on every hit (atime is unreliable
// under noatime mounts); GC removes the least-recently-used files until the
// store fits the cap again. Queued writes always land first — the cap is
// enforced after the write, so the newest result is never the one refused.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Version is the envelope format version. A bump invalidates every existing
// file (old versions read as misses), which is the upgrade story: results
// are a cache of deterministic computation, never the only copy.
const Version = 1

// Envelope is the on-disk wrapper around one stored result.
type Envelope struct {
	// Version is the envelope format version (store.Version at write time).
	Version int `json:"version"`
	// Schema names the value type (e.g. "crow.Report/v1"); a store only
	// returns values written under its own schema.
	Schema string `json:"schema"`
	// Key is the canonical run key the value answers, verbatim — the
	// filename is its hash, so the full key is kept for verification and
	// for humans inspecting the store.
	Key string `json:"key"`
	// SHA256 is the hex checksum of Value; a mismatch marks corruption.
	SHA256 string `json:"sha256"`
	// SavedAt records the write time (informational).
	SavedAt time.Time `json:"saved_at"`
	// Value is the JSON encoding of the stored result.
	Value json.RawMessage `json:"value"`
}

// Stats is a point-in-time view of the store: the startup-scan numbers plus
// lifetime operation counters.
type Stats struct {
	// Files and Bytes describe the store's current on-disk footprint.
	Files int   `json:"files"`
	Bytes int64 `json:"bytes"`
	// Hits / Misses count Get outcomes; Corrupt counts files that failed
	// the envelope check (each is also a miss and is deleted).
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	// Writes counts results persisted; Evictions counts files the LRU GC
	// removed; Errors counts I/O failures (a Put that fails only loses
	// durability, never correctness).
	Writes    int64 `json:"writes"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
}

// Store persists values of type V under string keys. It is safe for
// concurrent use. Create with Open.
type Store[V any] struct {
	dir      string
	schema   string
	maxBytes int64

	mu    sync.Mutex
	bytes int64 // current on-disk footprint (maintained incrementally)
	files int
	stats Stats // counters only; Files/Bytes filled from the fields above
}

// Option configures a Store.
type Option func(*config)

type config struct{ maxBytes int64 }

// MaxBytes caps the store's on-disk footprint; once a write pushes it past
// the cap, the least-recently-used files are evicted until it fits again.
// Zero (the default) means unbounded.
func MaxBytes(n int64) Option { return func(c *config) { c.maxBytes = n } }

// Open creates (if necessary) and scans the store directory, returning a
// Store whose Stats report the existing footprint — the crowserve startup
// scan. Leftover temp files from a crashed writer are removed. An over-cap
// directory is trimmed immediately.
func Open[V any](dir, schema string, opts ...Option) (*Store[V], error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store[V]{dir: dir, schema: schema, maxBytes: cfg.maxBytes}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.gcLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store[V]) Dir() string { return s.dir }

// scan walks the directory, counting result files and deleting stale temp
// files; it initializes the incremental footprint counters.
func (s *Store[V]) scan() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files, s.bytes = 0, 0
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.Remove(filepath.Join(s.dir, ent.Name()))
			continue
		}
		if !strings.HasSuffix(ent.Name(), suffix) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		s.files++
		s.bytes += info.Size()
	}
	return nil
}

// Stats returns the store's current footprint and lifetime counters.
func (s *Store[V]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Files, st.Bytes = s.files, s.bytes
	return st
}

const (
	suffix    = ".json"
	tmpPrefix = ".tmp-"
)

// path maps a key to its file: the hex SHA-256 of the key, so arbitrary key
// bytes (the canonical keys are whole JSON documents) never fight the
// filesystem and the layout is content-addressed.
func (s *Store[V]) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+suffix)
}

// Get returns the stored value for key. Any defect — missing file, foreign
// schema or version, key mismatch (a hash collision or a copied file),
// checksum failure, undecodable payload — reads as a miss; defective files
// are deleted so the re-executed run rewrites them. A hit bumps the file's
// mtime, the LRU clock.
func (s *Store[V]) Get(key string) (V, bool) {
	var zero V
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return zero, false
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.discard(path, int64(len(data)))
		return zero, false
	}
	if env.Version != Version || env.Schema != s.schema || env.Key != key {
		// A foreign version/schema is not corruption per se, but it is
		// equally unusable; treat all three uniformly.
		s.discard(path, int64(len(data)))
		return zero, false
	}
	sum := sha256.Sum256(env.Value)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		s.discard(path, int64(len(data)))
		return zero, false
	}
	var v V
	if err := json.Unmarshal(env.Value, &v); err != nil {
		s.discard(path, int64(len(data)))
		return zero, false
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return v, true
}

// Put persists the value for key: marshal, envelope, write to a temp file in
// the same directory, fsync, rename over the final path, fsync the
// directory. A failed Put only costs durability (the in-memory memo still
// has the result), so errors are counted, not returned to the run path.
func (s *Store[V]) Put(key string, val V) {
	if err := s.put(key, val); err != nil {
		s.count(func(st *Stats) { st.Errors++ })
	}
}

func (s *Store[V]) put(key string, val V) error {
	raw, err := json.Marshal(val)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(raw)
	env := Envelope{
		Version: Version,
		Schema:  s.schema,
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		SavedAt: time.Now().UTC(),
		Value:   raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}

	path := s.path(key)
	var prev int64
	if info, err := os.Stat(path); err == nil {
		prev = info.Size() // overwrite: footprint delta, not sum
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	syncDir(s.dir)

	s.mu.Lock()
	if prev == 0 {
		s.files++
	}
	s.bytes += int64(len(data)) - prev
	s.stats.Writes++
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// GC evicts least-recently-used files until the store fits its byte cap; it
// returns how many files were removed. With no cap it is a no-op.
func (s *Store[V]) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

func (s *Store[V]) gcLocked() int {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return 0
	}
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		s.stats.Errors++
		return 0
	}
	var files []file
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), suffix) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, file{filepath.Join(s.dir, ent.Name()), info.Size(), info.ModTime()})
	}
	sort.Slice(files, func(a, b int) bool { return files[a].mtime.Before(files[b].mtime) })
	removed := 0
	for _, f := range files {
		if s.bytes <= s.maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			s.stats.Errors++
			continue
		}
		s.bytes -= f.size
		s.files--
		s.stats.Evictions++
		removed++
	}
	return removed
}

// discard deletes a defective file and counts it as a corrupt miss.
func (s *Store[V]) discard(path string, size int64) {
	err := os.Remove(path)
	s.mu.Lock()
	if err == nil {
		s.files--
		s.bytes -= size
	}
	s.stats.Corrupt++
	s.stats.Misses++
	s.mu.Unlock()
}

func (s *Store[V]) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// syncDir fsyncs a directory so a rename survives power loss; best-effort,
// since not every filesystem supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
