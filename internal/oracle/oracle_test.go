package oracle

import (
	"strings"
	"testing"

	"crowdram/internal/dram"
)

// testGeo is a small geometry: 2 banks, 4 subarrays of 16 rows, 2 copy rows,
// 16 columns per row.
func testGeo() dram.Geometry {
	return dram.Geometry{
		Ranks: 1, Banks: 2, RowsPerBank: 64, RowsPerSubarray: 16,
		CopyRows: 2, RowBytes: 1024, LineBytes: 64,
	}
}

func testOracle(t *testing.T, mod func(*Config)) (*Oracle, dram.CommandObserver) {
	t.Helper()
	g := testGeo()
	cfg := Config{
		Channels: 1, Geo: g, T: dram.LPDDR4(dram.Density8Gb, 64, g),
		Cap: 16, DataChecks: true,
	}
	if mod != nil {
		mod(&cfg)
	}
	o := New(cfg)
	return o, o.Observer(0)
}

// drive issues a canonical activate/column/precharge stream.
func act(obs dram.CommandObserver, row int, kind dram.ActKind, copyRow int, plan dram.ActTimings, cycle int64) {
	obs.OnCommand(dram.CmdEvent{
		Cmd: dram.CmdACT + dram.Command(kind), Addr: dram.Addr{Row: row},
		Cycle: cycle, Kind: kind, CopyRow: copyRow, Plan: plan,
	})
}

func col(obs dram.CommandObserver, cmd dram.Command, row, c int, cycle int64) {
	obs.OnCommand(dram.CmdEvent{Cmd: cmd, Addr: dram.Addr{Row: row, Col: c}, Cycle: cycle, CopyRow: -1})
}

func pre(obs dram.CommandObserver, row int, full bool, cycle int64) {
	obs.OnCommand(dram.CmdEvent{Cmd: dram.CmdPRE, Addr: dram.Addr{Row: row}, Cycle: cycle, CopyRow: -1, FullyRestored: full})
}

func wantViolations(t *testing.T, o *Oracle, class string, n int64) {
	t.Helper()
	f := o.Findings()
	if got := f.Counts[class]; got != n {
		t.Errorf("%s violations = %d, want %d (findings: %v; samples: %v)", class, got, n, f.Counts, f.Samples)
	}
}

func TestCleanCacheLifecycleHasNoViolations(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	crow := tm.CROW()
	// Miss: copy row 5 into way 0, write a column, precharge fully.
	act(obs, 5, dram.ActCopy, 0, crow.CopyFull, 0)
	col(obs, dram.CmdWR, 5, 3, 10)
	pre(obs, 5, true, 200)
	// Hit: ACT-t at the fast plan, read back, precharge early.
	act(obs, 5, dram.ActTwo, 0, crow.TwoFull, 300)
	col(obs, dram.CmdRD, 5, 3, 330)
	pre(obs, 5, false, 360)
	// Partial pair: next hit must use the partial plan; read still coherent.
	act(obs, 5, dram.ActTwo, 0, crow.TwoPartial, 400)
	col(obs, dram.CmdWR, 5, 7, 430)
	pre(obs, 5, true, 600)
	// Plain activation of an unrelated row.
	act(obs, 20, dram.ActSingle, -1, tm.Base(), 700)
	col(obs, dram.CmdRD, 20, 0, 730)
	pre(obs, 20, true, 900)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("clean stream produced violations: %v; samples: %v", f.Counts, f.Samples)
	}
}

func TestStaleReadAfterMissedCopyUpdate(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	crow := tm.CROW()
	// Copy row 5 into way 0 with one written column.
	act(obs, 5, dram.ActCopy, 0, crow.CopyFull, 0)
	col(obs, dram.CmdWR, 5, 3, 10)
	pre(obs, 5, true, 200)
	// Buggy controller activates the regular row alone and writes — the
	// copy row silently goes stale.
	act(obs, 5, dram.ActSingle, -1, tm.Base(), 300)
	col(obs, dram.CmdWR, 5, 3, 330)
	pre(obs, 5, true, 500)
	// Redirect to the stale copy row: the ACT-t pair check fires, and a
	// read through a never-resynced copy would return old data.
	act(obs, 5, dram.ActTwo, 0, crow.TwoFull, 600)
	wantViolations(t, o, "incoherent-pair", 1)
}

func TestStaleRemapRedirect(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	// Write through the regular row first, so the copy row cannot be a
	// boot-time remap.
	act(obs, 7, dram.ActSingle, -1, tm.Base(), 0)
	col(obs, dram.CmdWR, 7, 0, 30)
	pre(obs, 7, true, 200)
	// Redirect to a copy row that was never copied into.
	act(obs, 7, dram.ActCopyRow, 1, tm.Base(), 300)
	wantViolations(t, o, "stale-remap", 1)
}

func TestBootRemapAdoption(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	// A profile-loaded CROW-ref remap redirects the very first access to
	// the weak row: legal, the copy row inherits the boot content.
	act(obs, 9, dram.ActCopyRow, 0, tm.Base(), 0)
	col(obs, dram.CmdWR, 9, 2, 30)
	pre(obs, 9, true, 200)
	act(obs, 9, dram.ActCopyRow, 0, tm.Base(), 300)
	col(obs, dram.CmdRD, 9, 2, 330)
	pre(obs, 9, true, 500)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("boot remap flagged: %v; samples: %v", f.Counts, f.Samples)
	}
}

func TestFastSensingOnPartialPair(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	crow := tm.CROW()
	act(obs, 1, dram.ActCopy, 0, crow.Copy, 0)
	pre(obs, 1, false, 50) // early termination: pair left partial
	// Buggy timing selection: fully-restored plan on a partial pair.
	act(obs, 1, dram.ActTwo, 0, crow.TwoFull, 100)
	wantViolations(t, o, "fast-partial-sensing", 1)
}

func TestPartialSingleActivation(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	crow := tm.CROW()
	act(obs, 1, dram.ActCopy, 0, crow.Copy, 0)
	pre(obs, 1, false, 50)
	// Buggy eviction: the partial pair's regular row is activated alone.
	act(obs, 1, dram.ActSingle, -1, tm.Base(), 100)
	wantViolations(t, o, "partial-single-activation", 1)
}

func TestCapExceeded(t *testing.T) {
	o, obs := testOracle(t, func(c *Config) { c.Cap = 2 })
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	act(obs, 0, dram.ActSingle, -1, tm.Base(), 0)
	col(obs, dram.CmdRD, 0, 0, 30)
	col(obs, dram.CmdRD, 0, 1, 40)
	wantViolations(t, o, "cap-exceeded", 0)
	col(obs, dram.CmdRD, 0, 2, 50)
	wantViolations(t, o, "cap-exceeded", 1)
}

func TestRefreshDeadline(t *testing.T) {
	g := dram.Geometry{
		Ranks: 1, Banks: 1, RowsPerBank: 8192, RowsPerSubarray: 512,
		CopyRows: 0, RowBytes: 1024, LineBytes: 64,
	}
	tm := dram.LPDDR4(dram.Density8Gb, 64, g) // RowsPerRef = 1, 8192 groups
	o := New(Config{Channels: 1, Geo: g, T: tm, RefreshMultiplier: 1})
	obs := o.Observer(0)
	// One REF refreshes group 0 just before the deadline; every other
	// group then expires at Finish.
	dl := o.deadline()
	obs.OnCommand(dram.CmdEvent{Cmd: dram.CmdREF, Addr: dram.Addr{}, Cycle: dl, CopyRow: -1})
	o.Finish(dl + 10)
	f := o.Findings()
	if got := f.Counts["refresh-deadline"]; got != 8191 {
		t.Fatalf("refresh-deadline violations = %d, want 8191 (all groups but the refreshed one)", got)
	}
	if len(f.Samples) == 0 || !strings.Contains(f.Samples[0], "refresh-deadline") {
		t.Fatalf("expected refresh-deadline samples, got %v", f.Samples)
	}
}

func TestRefreshSweepMeetsDeadline(t *testing.T) {
	g := dram.Geometry{
		Ranks: 1, Banks: 2, RowsPerBank: 8192, RowsPerSubarray: 512,
		CopyRows: 0, RowBytes: 1024, LineBytes: 64,
	}
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	o := New(Config{Channels: 1, Geo: g, T: tm, RefreshMultiplier: 1})
	obs := o.Observer(0)
	// A full sweep at the nominal REFI cadence, twice over, stays clean.
	cycle := int64(0)
	for i := 0; i < 2*8192; i++ {
		obs.OnCommand(dram.CmdEvent{Cmd: dram.CmdREF, Addr: dram.Addr{}, Cycle: cycle, CopyRow: -1})
		cycle += int64(tm.REFI)
	}
	o.Finish(cycle)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("nominal sweep flagged: %v; samples: %v", f.Counts, f.Samples)
	}
}

func TestPerBankRefreshSweep(t *testing.T) {
	g := dram.Geometry{
		Ranks: 1, Banks: 2, RowsPerBank: 8192, RowsPerSubarray: 512,
		CopyRows: 0, RowBytes: 1024, LineBytes: 64,
	}
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	o := New(Config{Channels: 1, Geo: g, T: tm, RefreshMultiplier: 1, PerBankRefresh: true})
	obs := o.Observer(0)
	cycle := int64(0)
	interval := int64(tm.REFI) / int64(g.Banks)
	for i := 0; i < 2*8192*g.Banks; i++ {
		obs.OnCommand(dram.CmdEvent{
			Cmd: dram.CmdREFpb, Addr: dram.Addr{Bank: i % g.Banks}, Cycle: cycle, CopyRow: -1,
		})
		cycle += interval
	}
	o.Finish(cycle)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("per-bank sweep flagged: %v; samples: %v", f.Counts, f.Samples)
	}
}

func TestCheckStats(t *testing.T) {
	o, obs := testOracle(t, nil)
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	act(obs, 0, dram.ActSingle, -1, tm.Base(), 0)
	col(obs, dram.CmdRD, 0, 0, 30)
	pre(obs, 0, true, 100)
	good := dram.Stats{
		ACT: 1, PRE: 1, RD: 1,
		ActRasSingle: int64(tm.RAS), RDBusyCycles: int64(tm.BL),
	}
	o.CheckStats(0, good)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("matching stats flagged: %v; samples: %v", f.Counts, f.Samples)
	}
	bad := good
	bad.RD = 2 // a dropped/duplicated energy event
	o.CheckStats(0, bad)
	wantViolations(t, o, "stats-mismatch", 1)
}

func TestSampleBound(t *testing.T) {
	o, obs := testOracle(t, func(c *Config) { c.Cap = 1; c.MaxSamples = 3 })
	tm := dram.LPDDR4(dram.Density8Gb, 64, testGeo())
	act(obs, 0, dram.ActSingle, -1, tm.Base(), 0)
	for i := 1; i < 10; i++ {
		col(obs, dram.CmdRD, 0, i, int64(30*i))
	}
	f := o.Findings()
	if f.Counts["cap-exceeded"] != 8 {
		t.Fatalf("cap-exceeded = %d, want 8", f.Counts["cap-exceeded"])
	}
	if len(f.Samples) != 3 {
		t.Fatalf("samples = %d, want bounded at 3", len(f.Samples))
	}
}
