package oracle

import (
	"testing"

	"crowdram/internal/dram"
)

// benchCommandLoop drives a raw channel through the controller's hot path —
// activate, one column access, fully-restored precharge — with and without
// the oracle observer attached, so the two benchmarks isolate the per-command
// verification cost. The loop stays timing-legal by construction (RD/WR at
// tRCD, PRE at tRASFull, next ACT after tRP), so it measures bookkeeping, not
// retries.
func benchCommandLoop(b *testing.B, attach func(g dram.Geometry, tm dram.Timing) dram.CommandObserver) {
	g := dram.Std(8)
	tm := dram.LPDDR4(dram.Density8Gb, 64, g)
	c := dram.NewChannel(g, tm)
	if attach != nil {
		c.Attach(attach(g, tm))
	}
	base := tm.Base()
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := dram.Addr{
			Bank: i % g.Banks,
			Row:  i % 64,
			Col:  i % g.ColumnsPerRow(),
		}
		c.Tick(now)
		c.ACT(a, now, dram.ActSingle, base, -1)
		col := now + int64(base.RCD)
		pre := now + int64(base.RASFull)
		if i%2 == 0 {
			c.WR(a, col)
			if p := col + int64(tm.CWL) + int64(tm.BL) + int64(base.WR); p > pre {
				pre = p
			}
		} else {
			c.RD(a, col)
		}
		c.PRE(a, pre)
		now = pre + int64(tm.RP) + 1
	}
}

func BenchmarkChannelHotPath(b *testing.B) {
	benchCommandLoop(b, nil)
}

func BenchmarkChannelHotPathVerified(b *testing.B) {
	benchCommandLoop(b, func(g dram.Geometry, tm dram.Timing) dram.CommandObserver {
		o := New(Config{
			Channels:          1,
			Geo:               g,
			T:                 tm,
			Cap:               16,
			DataChecks:        true,
			RefreshMultiplier: 1,
		})
		b.Cleanup(func() {
			if f := o.Findings(); f.Total() != 0 {
				b.Fatalf("benchmark stream raised oracle violations: %v", f.Counts)
			}
		})
		return o.Observer(0)
	})
}
