package oracle

import "crowdram/internal/dram"

// subKey identifies one subarray (the unit that holds one open activation).
type subKey struct{ rank, bank, sub int }

// rowKey identifies one physical row of a bank. Regular rows use their bank
// row index; copy rows are encoded past the regular rows (see copyID).
type rowKey struct{ rank, bank, row int }

// openAct is the oracle's view of one in-flight activation.
type openAct struct {
	row     int // the addressed regular row
	kind    dram.ActKind
	copyRow int
	plan    dram.ActTimings
	cols    int // column commands served so far
}

// rowData is the shadow content of one physical row: which logical (regular)
// row's data it holds, the write version of each column it holds, and whether
// its cells are only partially restored.
type rowData struct {
	valid   bool // meaningful for copy rows; regular rows are always valid
	owner   int  // logical regular-row index whose data this row holds
	partial bool
	cells   map[int]uint64 // column -> write version (absent = initial data)
}

// logState is the device-level truth for one logical (regular-row) address:
// the version of the last write to each column.
type logState struct {
	want    map[int]uint64
	written bool
}

// statCounts mirrors the command-count fields of dram.Stats.
type statCounts struct {
	ACT, ACTTwo, ACTCopy, ACTCopyRow int64
	PRE, RD, WR, REF, REFpb          int64
	ActRasSingle, ActRasMRA          int64
	RDBusy, WRBusy                   int64
}

// channelState is the oracle's model of one channel. It implements
// dram.CommandObserver.
type channelState struct {
	o  *Oracle
	ch int

	open map[subKey]*openAct
	rows map[rowKey]*rowData
	logs map[rowKey]*logState

	// Refresh sweep replica: next row window per rank, per-bank round-robin
	// pointer, and the cycle each row group was last refreshed (all rows
	// count as refreshed at cycle 0, the boot instant).
	refRow  []int
	refBank int
	lastRef [][][]int64 // [rank][bank][group]

	stats statCounts
}

// copyID encodes the physical row index of copy row `way` of subarray `sub`.
func (s *channelState) copyID(sub, way int) int {
	g := s.o.cfg.Geo
	return g.RowsPerBank + sub*g.CopyRows + way
}

// reg returns the shadow state of a regular row, creating the default state
// (valid, owning its own address, clean) on first touch.
func (s *channelState) reg(a dram.Addr) *rowData {
	k := rowKey{a.Rank, a.Bank, a.Row}
	r := s.rows[k]
	if r == nil {
		r = &rowData{valid: true, owner: a.Row, cells: map[int]uint64{}}
		s.rows[k] = r
	}
	return r
}

// cp returns the shadow state of copy row `way` of a's subarray, creating
// the default state (invalid: content unknown until copied into) on first
// touch.
func (s *channelState) cp(a dram.Addr, way int) *rowData {
	k := rowKey{a.Rank, a.Bank, s.copyID(a.Subarray(s.o.cfg.Geo), way)}
	r := s.rows[k]
	if r == nil {
		r = &rowData{owner: -1, cells: map[int]uint64{}}
		s.rows[k] = r
	}
	return r
}

// log returns the device-level write log of logical row a.Row.
func (s *channelState) log(a dram.Addr) *logState {
	k := rowKey{a.Rank, a.Bank, a.Row}
	l := s.logs[k]
	if l == nil {
		l = &logState{want: map[int]uint64{}}
		s.logs[k] = l
	}
	return l
}

func cloneCells(m map[int]uint64) map[int]uint64 {
	c := make(map[int]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func cellsEqual(a, b map[int]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// connected returns the physical rows wired to the row buffer by the open
// activation: the regular row, the copy row, or both.
func (s *channelState) connected(a dram.Addr, act *openAct) []*rowData {
	switch act.kind {
	case dram.ActTwo, dram.ActCopy:
		return []*rowData{s.reg(dram.Addr{Rank: a.Rank, Bank: a.Bank, Row: act.row}), s.cp(a, act.copyRow)}
	case dram.ActCopyRow:
		return []*rowData{s.cp(a, act.copyRow)}
	default:
		return []*rowData{s.reg(dram.Addr{Rank: a.Rank, Bank: a.Bank, Row: act.row})}
	}
}

// OnCommand implements dram.CommandObserver.
func (s *channelState) OnCommand(e dram.CmdEvent) {
	switch e.Cmd {
	case dram.CmdACT, dram.CmdACTt, dram.CmdACTc, dram.CmdACTcr:
		s.onACT(e)
	case dram.CmdRD, dram.CmdWR:
		s.onColumn(e)
	case dram.CmdPRE:
		s.onPRE(e)
	case dram.CmdREF:
		s.onREF(e)
	case dram.CmdREFpb:
		s.onREFpb(e)
	}
}

func (s *channelState) onACT(e dram.CmdEvent) {
	switch e.Kind {
	case dram.ActSingle:
		s.stats.ACT++
		s.stats.ActRasSingle += int64(e.Plan.RAS)
	case dram.ActTwo:
		s.stats.ACTTwo++
		s.stats.ActRasMRA += int64(e.Plan.RAS)
	case dram.ActCopy:
		s.stats.ACTCopy++
		s.stats.ActRasMRA += int64(e.Plan.RAS)
	case dram.ActCopyRow:
		s.stats.ACTCopyRow++
		s.stats.ActRasSingle += int64(e.Plan.RAS)
	}

	k := subKey{e.Addr.Rank, e.Addr.Bank, e.Addr.Subarray(s.o.cfg.Geo)}
	act := &openAct{row: e.Addr.Row, kind: e.Kind, copyRow: e.CopyRow, plan: e.Plan}
	s.open[k] = act
	if !s.o.cfg.DataChecks {
		return
	}

	reg := s.reg(e.Addr)
	switch e.Kind {
	case dram.ActSingle:
		// A single-row activation senses the regular row alone; if its
		// cells were left partially restored, the fast plans read them
		// unsafely and any plan destroys the paired copy's coherence.
		if reg.partial {
			s.o.violate(s.ch, "partial-single-activation",
				"ACT of partially-restored row r%d/b%d/%d at cycle %d",
				e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.Cycle)
		}
	case dram.ActTwo:
		cp := s.cp(e.Addr, e.CopyRow)
		if !cp.valid || cp.owner != e.Addr.Row || !cellsEqual(reg.cells, cp.cells) {
			s.o.violate(s.ch, "incoherent-pair",
				"ACT-t of row r%d/b%d/%d with copy row %d holding row %d data (valid=%v) at cycle %d",
				e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.CopyRow, cp.owner, cp.valid, e.Cycle)
			// Resync the shadow pair so one bug is one violation, not a
			// cascade.
			cp.valid, cp.owner, cp.cells = true, e.Addr.Row, cloneCells(reg.cells)
			cp.partial = reg.partial
		}
		// A partially-restored pair holds weakened charge; activating it
		// with the fully-restored sensing latency is a data hazard
		// (Section 4.1.3: partial pairs need the ACT-t-partial RCD).
		if (reg.partial || cp.partial) && e.Plan.RCD < s.o.crow.TwoPartial.RCD {
			s.o.violate(s.ch, "fast-partial-sensing",
				"ACT-t of partial pair r%d/b%d/%d+%d planned tRCD %d < required %d at cycle %d",
				e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.CopyRow, e.Plan.RCD, s.o.crow.TwoPartial.RCD, e.Cycle)
		}
	case dram.ActCopy:
		if reg.partial {
			s.o.violate(s.ch, "copy-from-partial",
				"ACT-c copies partially-restored row r%d/b%d/%d at cycle %d",
				e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.Cycle)
		}
		cp := s.cp(e.Addr, e.CopyRow)
		cp.valid, cp.owner, cp.cells = true, e.Addr.Row, cloneCells(reg.cells)
		cp.partial = reg.partial
	case dram.ActCopyRow:
		cp := s.cp(e.Addr, e.CopyRow)
		switch {
		case !cp.valid:
			if !s.log(e.Addr).written && !reg.partial && len(reg.cells) == 0 {
				// Boot-time remap: a profile-loaded CROW-ref mapping
				// installed before the first access. The copy row holds
				// whatever the row held at boot; adopt it.
				cp.valid, cp.owner = true, e.Addr.Row
			} else {
				s.o.violate(s.ch, "stale-remap",
					"redirect of row r%d/b%d/%d to never-copied copy row %d at cycle %d",
					e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.CopyRow, e.Cycle)
				cp.valid, cp.owner, cp.cells = true, e.Addr.Row, cloneCells(reg.cells)
				cp.partial = reg.partial
			}
		case cp.owner != e.Addr.Row:
			s.o.violate(s.ch, "stale-remap",
				"redirect of row r%d/b%d/%d to copy row %d holding row %d data at cycle %d",
				e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.CopyRow, cp.owner, e.Cycle)
			cp.owner, cp.cells = e.Addr.Row, cloneCells(reg.cells)
			cp.partial = reg.partial
		}
		if cp.partial {
			s.o.violate(s.ch, "partial-single-activation",
				"ACT of partially-restored copy row %d (row r%d/b%d/%d) at cycle %d",
				e.CopyRow, e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.Cycle)
		}
	}
}

func (s *channelState) onColumn(e dram.CmdEvent) {
	bl := int64(s.o.cfg.T.BL)
	if e.Cmd == dram.CmdRD {
		s.stats.RD++
		s.stats.RDBusy += bl
	} else {
		s.stats.WR++
		s.stats.WRBusy += bl
	}

	k := subKey{e.Addr.Rank, e.Addr.Bank, e.Addr.Subarray(s.o.cfg.Geo)}
	act := s.open[k]
	if act == nil {
		// The device itself panics on column commands to a closed bank,
		// so this can only mean the oracle missed the activation.
		s.o.violate(s.ch, "oracle-desync", "%v to closed subarray r%d/b%d at cycle %d",
			e.Cmd, e.Addr.Rank, e.Addr.Bank, e.Cycle)
		return
	}
	act.cols++
	if cap := s.o.cfg.Cap; cap > 0 && act.cols > cap {
		s.o.violate(s.ch, "cap-exceeded",
			"%v is column command %d > cap %d for activation of r%d/b%d/%d at cycle %d",
			e.Cmd, act.cols, cap, e.Addr.Rank, e.Addr.Bank, act.row, e.Cycle)
	}
	if !s.o.cfg.DataChecks {
		return
	}

	logi := s.log(e.Addr)
	if e.Cmd == dram.CmdWR {
		logi.want[e.Addr.Col]++
		logi.written = true
		for _, r := range s.connected(e.Addr, act) {
			r.cells[e.Addr.Col] = logi.want[e.Addr.Col]
		}
		return
	}
	// RD: the row buffer serves whatever the connected rows hold; all
	// connected rows agree (they were sensed together), so check the first.
	serving := s.connected(e.Addr, act)[0]
	if have, want := serving.cells[e.Addr.Col], logi.want[e.Addr.Col]; have != want {
		s.o.violate(s.ch, "stale-read",
			"RD r%d/b%d/%d col %d returns version %d, last write was %d, at cycle %d",
			e.Addr.Rank, e.Addr.Bank, e.Addr.Row, e.Addr.Col, have, want, e.Cycle)
		serving.cells[e.Addr.Col] = want // resync
	}
}

func (s *channelState) onPRE(e dram.CmdEvent) {
	s.stats.PRE++
	k := subKey{e.Addr.Rank, e.Addr.Bank, e.Addr.Subarray(s.o.cfg.Geo)}
	act := s.open[k]
	delete(s.open, k)
	if act == nil || !s.o.cfg.DataChecks {
		return
	}
	for _, r := range s.connected(e.Addr, act) {
		r.partial = !e.FullyRestored
	}
}

// refreshWindow models the architectural effect of refreshing rows
// [start, start+n) of one bank: the row group's deadline clock restarts, the
// rows (and any copy rows holding their data — CROW refreshes pairs
// together, Section 4.1.4) come out fully restored.
func (s *channelState) refreshWindow(rank, bank, start, n int, cycle int64) {
	g := s.o.cfg.Geo
	if rpr := s.o.cfg.T.RowsPerRef; rpr > 0 {
		dl := s.o.deadline()
		for g0 := start / rpr; g0 <= (start+n-1)/rpr && g0 < len(s.lastRef[rank][bank]); g0++ {
			if s.o.cfg.RefreshMultiplier > 0 && cycle-s.lastRef[rank][bank][g0] > dl {
				s.o.violate(s.ch, "refresh-deadline",
					"r%d/b%d rows %d..%d refreshed @%d, %d cycles after previous refresh @%d (deadline %d)",
					rank, bank, g0*rpr, (g0+1)*rpr-1, cycle,
					cycle-s.lastRef[rank][bank][g0], s.lastRef[rank][bank][g0], dl)
			}
			s.lastRef[rank][bank][g0] = cycle
		}
	}
	if !s.o.cfg.DataChecks {
		return
	}
	for row := start; row < start+n && row < g.RowsPerBank; row++ {
		if r := s.rows[rowKey{rank, bank, row}]; r != nil {
			r.partial = false
		}
	}
	// Copy rows live in the same subarray as the regular rows they pair
	// with, so only the touched subarrays need scanning.
	for sub := g.Subarray(start); sub <= g.Subarray(start+n-1); sub++ {
		for way := 0; way < g.CopyRows; way++ {
			r := s.rows[rowKey{rank, bank, s.copyID(sub, way)}]
			if r != nil && r.valid && r.owner >= start && r.owner < start+n {
				r.partial = false
			}
		}
	}
}

func (s *channelState) onREF(e dram.CmdEvent) {
	s.stats.REF++
	g := s.o.cfg.Geo
	rpr := s.o.cfg.T.RowsPerRef
	start := s.refRow[e.Addr.Rank]
	for b := 0; b < g.Banks; b++ {
		s.refreshWindow(e.Addr.Rank, b, start, rpr, e.Cycle)
	}
	s.refRow[e.Addr.Rank] = (start + rpr) % g.RowsPerBank
}

func (s *channelState) onREFpb(e dram.CmdEvent) {
	s.stats.REFpb++
	g := s.o.cfg.Geo
	rpr := s.o.cfg.T.RowsPerRef
	start := s.refRow[e.Addr.Rank]
	s.refreshWindow(e.Addr.Rank, e.Addr.Bank, start, rpr, e.Cycle)
	// The controller sweeps banks round-robin, advancing the row window
	// once every bank has been refreshed at the current window.
	if e.Addr.Bank == g.Banks-1 {
		s.refRow[e.Addr.Rank] = (start + rpr) % g.RowsPerBank
	}
}
