// Package oracle is an end-to-end correctness oracle for the simulator: it
// watches the raw command stream of every channel (via dram.CommandObserver)
// and independently validates cross-layer invariants that the per-channel
// timing checker (dram.Checker) cannot see:
//
//  1. A shadow data memory tracks a per-row data token through writes, ACT-c
//     copies, copy-row remaps, and refresh, and asserts that every RD
//     returns the last value written to that address — catching
//     CROW-cache/CROW-table coherence bugs (a redirect to a copy row that
//     was never copied, a lost write to a remapped row, an eviction of a
//     partially-restored pair) end to end.
//  2. A refresh-deadline monitor replays the architectural refresh sweep
//     (each REF/REFpb refreshes the next T.RowsPerRef rows of a bank) and
//     asserts every row group is refreshed within its retention window,
//     including the relaxed window of CROW-ref's multiplied tREFW.
//  3. Scheduler-legality and accounting checks: no activation serves more
//     column commands than the FR-FCFS-Cap allows, and the command counts
//     that the energy model integrates (activate restore windows, burst
//     cycles) match the device's reported statistics exactly.
//
// The oracle is deliberately independent: it consumes only device commands
// and the architectural configuration, never the mechanism's tables or the
// controller's queues, so a bookkeeping bug in those layers cannot hide
// itself.
package oracle

import (
	"fmt"

	"crowdram/internal/dram"
	"crowdram/internal/metrics"
)

// Config describes the system under observation.
type Config struct {
	Channels int
	Geo      dram.Geometry
	T        dram.Timing

	// Cap is the FR-FCFS-Cap bound on column commands per activation
	// (0 disables the check).
	Cap int

	// DataChecks enables the shadow data memory (invariant 1). It is
	// switched off for mechanisms whose data semantics the shadow model
	// does not cover: the idealized mechanisms (which issue fictional
	// two-row activations with no physical copy rows) and TL-DRAM (whose
	// near-segment activations reuse the single-row command).
	DataChecks bool

	// RefreshMultiplier scales the retention window (CROW-ref runs at 2);
	// 0 disables the refresh-deadline monitor (idealized no-refresh runs).
	RefreshMultiplier int
	// PerBankRefresh and MaxPostpone size the deadline slack the elastic
	// refresh scheduler is allowed to consume.
	PerBankRefresh bool
	MaxPostpone    int

	// MaxSamples bounds how many violation descriptions are retained
	// verbatim (counts are always complete). Default 20.
	MaxSamples int
}

// Findings is the oracle's verdict: violation counts per invariant class and
// up to MaxSamples verbatim descriptions.
type Findings struct {
	Counts  metrics.Counters
	Samples []string
}

// Total returns the total number of violations.
func (f Findings) Total() int64 { return f.Counts.Total() }

// Oracle validates one system; attach Observer(ch) to each channel device.
type Oracle struct {
	cfg   Config
	crow  dram.CROWTimings
	chans []*channelState

	counts  metrics.Counters
	samples []string

	// staging routes violations into per-channel buffers during a parallel
	// DRAM tick (sim's shard runner brackets each tick with BeginWindow/
	// EndWindow); EndWindow merges them in channel order, which is the order
	// a serial tick reports them. Each channelState only ever reports
	// violations for its own channel, so concurrent workers touch disjoint
	// staging slices.
	staging bool
	stage   [][]stagedViolation
}

// stagedViolation is one violation parked during a parallel tick window; the
// text is pre-formatted on the reporting goroutine.
type stagedViolation struct {
	class string
	text  string
}

// New builds an oracle for a system of identical channels.
func New(cfg Config) *Oracle {
	if cfg.MaxSamples == 0 {
		cfg.MaxSamples = 20
	}
	o := &Oracle{cfg: cfg, crow: cfg.T.CROW(), counts: metrics.Counters{}}
	o.chans = make([]*channelState, cfg.Channels)
	o.stage = make([][]stagedViolation, cfg.Channels)
	groups := 0
	if cfg.T.RowsPerRef > 0 {
		groups = cfg.Geo.RowsPerBank / cfg.T.RowsPerRef
	}
	for ch := range o.chans {
		s := &channelState{
			o: o, ch: ch,
			open:   map[subKey]*openAct{},
			rows:   map[rowKey]*rowData{},
			logs:   map[rowKey]*logState{},
			refRow: make([]int, cfg.Geo.Ranks),
		}
		s.lastRef = make([][][]int64, cfg.Geo.Ranks)
		for r := range s.lastRef {
			s.lastRef[r] = make([][]int64, cfg.Geo.Banks)
			for b := range s.lastRef[r] {
				s.lastRef[r][b] = make([]int64, groups)
			}
		}
		o.chans[ch] = s
	}
	return o
}

// Observer returns the command observer for channel ch.
func (o *Oracle) Observer(ch int) dram.CommandObserver { return o.chans[ch] }

// Findings returns the violations found so far.
func (o *Oracle) Findings() Findings {
	counts := metrics.Counters{}
	counts.Merge(o.counts)
	return Findings{Counts: counts, Samples: append([]string(nil), o.samples...)}
}

func (o *Oracle) violate(ch int, class, format string, args ...any) {
	if o.staging {
		o.stage[ch] = append(o.stage[ch], stagedViolation{class: class, text: fmt.Sprintf(format, args...)})
		return
	}
	o.counts.Add(class, 1)
	if len(o.samples) < o.cfg.MaxSamples {
		o.samples = append(o.samples, fmt.Sprintf("ch%d %s: %s", ch, class, fmt.Sprintf(format, args...)))
	}
}

// BeginWindow opens a parallel-tick staging window: until EndWindow,
// violations park in per-channel buffers instead of the shared counters and
// sample list. Finish and CheckStats run outside any window (end of run, on
// the coordinating goroutine) and always take the direct path.
func (o *Oracle) BeginWindow() { o.staging = true }

// EndWindow closes the window, merging staged violations into the counters
// and capped sample list in channel order — the order a serial tick's channel
// loop reports them.
func (o *Oracle) EndWindow() {
	o.staging = false
	for ch, vs := range o.stage {
		for _, v := range vs {
			o.counts.Add(v.class, 1)
			if len(o.samples) < o.cfg.MaxSamples {
				o.samples = append(o.samples, fmt.Sprintf("ch%d %s: %s", ch, v.class, v.text))
			}
		}
		o.stage[ch] = o.stage[ch][:0]
	}
}

// deadline returns the maximum tolerated gap between refreshes of one row
// group: the (possibly multiplied) retention window plus the slack the
// elastic scheduler may consume by postponing refreshes.
func (o *Oracle) deadline() int64 {
	mult := int64(o.cfg.RefreshMultiplier)
	interval := int64(o.cfg.T.REFI) * mult
	budget := int64(o.cfg.MaxPostpone)
	if o.cfg.PerBankRefresh {
		interval /= int64(o.cfg.Geo.Banks)
		if budget == 0 {
			budget = int64(o.cfg.Geo.Banks)
		}
	}
	return o.cfg.T.RefWindow*mult + (budget+2)*interval + int64(o.cfg.T.RFC)
}

// Finish runs the end-of-simulation checks: no row group may be staler than
// its retention deadline at the final cycle.
func (o *Oracle) Finish(endCycle int64) {
	if o.cfg.RefreshMultiplier <= 0 {
		return
	}
	dl := o.deadline()
	for ch, s := range o.chans {
		for r := range s.lastRef {
			for b := range s.lastRef[r] {
				for g, last := range s.lastRef[r][b] {
					if endCycle-last > dl {
						o.violate(ch, "refresh-deadline",
							"r%d/b%d rows %d..%d last refreshed @%d, end @%d exceeds deadline %d",
							r, b, g*o.cfg.T.RowsPerRef, (g+1)*o.cfg.T.RowsPerRef-1, last, endCycle, dl)
					}
				}
			}
		}
	}
}

// CheckStats compares the command counts the oracle accumulated for channel
// ch against the device's reported statistics. The energy model's
// per-command terms (activation restore-window integrals, burst-cycle
// counts) are pure functions of exactly these fields, so agreement here
// certifies that every command's energy event is accounted for in the
// reported totals. (The cycle-integral background terms come from the
// device's per-cycle Tick accounting, which the command stream cannot see.)
func (o *Oracle) CheckStats(ch int, got dram.Stats) {
	s := o.chans[ch]
	check := func(name string, want, have int64) {
		if want != have {
			o.violate(ch, "stats-mismatch", "%s: oracle counted %d, device reports %d", name, want, have)
		}
	}
	check("ACT", s.stats.ACT, got.ACT)
	check("ACTTwo", s.stats.ACTTwo, got.ACTTwo)
	check("ACTCopy", s.stats.ACTCopy, got.ACTCopy)
	check("ACTCopyRow", s.stats.ACTCopyRow, got.ACTCopyRow)
	check("PRE", s.stats.PRE, got.PRE)
	check("RD", s.stats.RD, got.RD)
	check("WR", s.stats.WR, got.WR)
	check("REF", s.stats.REF, got.REF)
	check("REFpb", s.stats.REFpb, got.REFpb)
	check("ActRasSingle", s.stats.ActRasSingle, got.ActRasSingle)
	check("ActRasMRA", s.stats.ActRasMRA, got.ActRasMRA)
	check("RDBusyCycles", s.stats.RDBusy, got.RDBusyCycles)
	check("WRBusyCycles", s.stats.WRBusy, got.WRBusyCycles)
}
