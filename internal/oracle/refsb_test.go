package oracle

import (
	"strings"
	"testing"

	"crowdram/internal/dram"
)

// ddr5Oracle builds an oracle watching one DDR5 channel with a bank count
// small enough to sweep in a test, timed by the registered ddr5 standard
// (same-bank refresh: REFpb commands carrying tRFCsb).
func ddr5Oracle(t *testing.T, banks int) (*Oracle, dram.CommandObserver, dram.Timing, dram.Geometry) {
	t.Helper()
	std, err := dram.StandardByName("ddr5")
	if err != nil {
		t.Fatal(err)
	}
	g := dram.Geometry{
		Ranks: 1, Banks: banks, RowsPerBank: 8192, RowsPerSubarray: 512,
		CopyRows: 0, RowBytes: 1024, LineBytes: 64,
	}
	tm := std.Timing(dram.Density8Gb, std.DefaultRefreshWindowMS(), g)
	o := New(Config{
		Channels: 1, Geo: g, T: tm,
		RefreshMultiplier: 1, PerBankRefresh: true,
	})
	return o, o.Observer(0), tm, g
}

// TestDDR5SamebankSweepIsClean establishes the control: a full REFsb sweep
// at the per-bank cadence satisfies the refresh-deadline monitor.
func TestDDR5SamebankSweepIsClean(t *testing.T) {
	o, obs, tm, g := ddr5Oracle(t, 2)
	cycle := int64(0)
	interval := int64(tm.REFI) / int64(g.Banks)
	for i := 0; i < 2*8192*g.Banks; i++ {
		obs.OnCommand(dram.CmdEvent{
			Cmd: dram.CmdREFpb, Addr: dram.Addr{Bank: i % g.Banks}, Cycle: cycle, CopyRow: -1,
		})
		cycle += interval
	}
	o.Finish(cycle)
	if f := o.Findings(); f.Total() != 0 {
		t.Fatalf("clean DDR5 REFsb sweep flagged: %v; samples: %v", f.Counts, f.Samples)
	}
}

// TestDDR5MissedREFsbIsCaught injects the bug the monitor exists for: a
// controller that silently stops refreshing one bank. The sweep runs the
// full same-bank cadence but drops every REFsb aimed at bank 0, so bank 0's
// rows sail past their retention deadline while the other bank stays
// healthy (the oracle's sweep pointer advances on the last bank, so the
// remaining bank's sweep is unaffected). The monitor must attribute a
// violation to every starved row group — no more, no fewer — and name the
// invariant in its samples.
func TestDDR5MissedREFsbIsCaught(t *testing.T) {
	const banks = 2
	o, obs, tm, g := ddr5Oracle(t, banks)
	cycle := int64(0)
	interval := int64(tm.REFI) / int64(banks)
	const starved = 0
	for i := 0; i < 2*8192*banks; i++ {
		bank := i % banks
		if bank != starved {
			obs.OnCommand(dram.CmdEvent{
				Cmd: dram.CmdREFpb, Addr: dram.Addr{Bank: bank}, Cycle: cycle, CopyRow: -1,
			})
		}
		cycle += interval
	}
	o.Finish(cycle)
	f := o.Findings()
	got := f.Counts["refresh-deadline"]
	want := int64(g.RowsPerBank / tm.RowsPerRef) // every group of the starved bank, once
	if got != want {
		t.Fatalf("missed REFsb on bank %d: refresh-deadline violations = %d, want %d (findings: %v)",
			starved, got, want, f.Counts)
	}
	found := false
	for _, s := range f.Samples {
		if strings.Contains(s, "refresh-deadline") && strings.Contains(s, "b0") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no refresh-deadline sample naming bank %d; samples: %v", starved, f.Samples)
	}
}
