// rowhammer: demonstrate the RowHammer mitigation of Section 4.3.
//
// Runs a synthetic hammering workload (rapid activate/precharge cycles
// concentrated on a handful of rows) against conventional DRAM and against
// the CROW-based mitigation, which detects hammered rows with per-row
// activation counters and remaps their physical neighbours to copy rows with
// ACT-c. The LLC is shrunk to emulate the cache flushing a real attack uses
// to force every access to DRAM.
package main

import (
	"fmt"
	"log"

	"crowdram/crow"
)

// hammerThreshold is the detection threshold (activations per refresh
// window). Real RowHammer needs tens of thousands of activations [52]; a low
// threshold keeps the demo fast while exercising the same machinery.
const hammerThreshold = 512

func main() {
	common := crow.Options{
		Workloads: []string{"hammer"},
		// Emulate clflush-based attacks: a tiny LLC forces every
		// access to memory.
		LLCBytes:        64 << 10,
		HammerThreshold: hammerThreshold,
	}

	fmt.Println("RowHammer attack simulation (synthetic hammering workload)")
	fmt.Printf("detection threshold: %d activations per refresh window\n\n", hammerThreshold)

	baseOpts := common
	baseOpts.Mechanism = crow.Baseline
	base, err := crow.Run(baseOpts)
	if err != nil {
		log.Fatal(err)
	}

	mitOpts := common
	mitOpts.Mechanism = crow.Hammer
	mit, err := crow.Run(mitOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %12s %12s\n", "", "baseline", "crow-hammer")
	fmt.Printf("%-34s %12d %12d\n", "row activations (ACT)", base.ACT, mit.ACT)
	fmt.Printf("%-34s %12d %12d\n", "victim rows remapped", int64(0), mit.HammerRemaps)
	fmt.Printf("%-34s %12d %12d\n", "protective row copies (ACT-c)", base.ACTc, mit.ACTc)
	fmt.Printf("%-34s %12.3f %12.3f\n", "attacker IPC", base.IPC[0], mit.IPC[0])

	fmt.Println()
	if mit.HammerRemaps == 0 {
		fmt.Println("no hammered rows detected — increase the run length or lower the threshold")
		return
	}
	fmt.Printf("the mitigation detected hammered rows and moved %d neighbouring victim\n", mit.HammerRemaps)
	fmt.Println("rows into copy rows: the attacker keeps hammering, but the data that")
	fmt.Println("sat next to the aggressor rows is no longer there to be disturbed.")
	fmt.Printf("performance cost to the attacker's own accesses: %+.1f%% IPC\n",
		100*(mit.IPC[0]/base.IPC[0]-1))
}
