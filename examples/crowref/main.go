// crowref: explore the refresh-reduction mechanism of Section 4.2.
//
// Prints the weak-row statistics behind Equations 1–2, then sweeps DRAM chip
// density (8–64 Gbit) showing how CROW-ref's extended refresh window
// (64 ms → 128 ms) recovers the performance and energy that refresh
// increasingly costs at higher densities — the data behind Figure 13.
package main

import (
	"flag"
	"fmt"
	"log"

	"crowdram/crow"
)

func main() {
	app := flag.String("app", "mcf", "workload to run")
	flag.Parse()

	pRow, pAny := crow.WeakRowProbabilities(4e-9, 8)
	fmt.Println("Weak-row statistics (BER 4e-9 at a 2x refresh window, 8 KiB rows):")
	fmt.Printf("  P(row contains a weak cell) = %.3g\n", pRow)
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("  P(any subarray > %d weak rows) = %.3g\n", n, pAny[n-1])
	}
	fmt.Println("  => 8 copy rows per subarray virtually always suffice (Section 4.2.1)")

	fmt.Printf("\nDensity sweep on %q (CROW-ref remaps 3 weak rows/subarray, doubles the window):\n\n", *app)
	fmt.Printf("%-8s %12s %12s %12s %12s %14s\n",
		"density", "base IPC", "ref IPC", "speedup", "REF count", "energy ratio")

	for _, d := range []int{8, 16, 32, 64} {
		base, err := crow.Run(crow.Options{Mechanism: crow.Baseline, DensityGbit: d, Workloads: []string{*app}})
		if err != nil {
			log.Fatal(err)
		}
		ref, err := crow.Run(crow.Options{Mechanism: crow.Ref, DensityGbit: d, Workloads: []string{*app}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-2d Gbit %13.3f %12.3f %+11.1f%% %5d -> %-5d %13.3f\n",
			d, base.IPC[0], ref.IPC[0],
			100*(ref.IPC[0]/base.IPC[0]-1),
			base.Refreshes, ref.Refreshes,
			ref.EnergyNJ.Total()/base.EnergyNJ.Total())
	}

	fmt.Println("\npaper anchors (64 Gbit): +7.1% single-core speedup, -17.2% DRAM energy;")
	fmt.Println("benefits grow with density because tRFC (refresh blocking time) grows")
}
