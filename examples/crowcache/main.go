// crowcache: explore the in-DRAM caching mechanism of Section 4.1.
//
// Sweeps the number of copy rows per subarray (CROW-1 .. CROW-256) on a
// single-core workload and reports speedup, CROW-table hit rate, command
// mix, and the hardware cost of each design point — the data behind
// Figures 7 and 8.
package main

import (
	"flag"
	"fmt"
	"log"

	"crowdram/crow"
)

func main() {
	app := flag.String("app", "mcf", "workload to run")
	flag.Parse()

	base, err := crow.Run(crow.Options{Mechanism: crow.Baseline, Workloads: []string{*app}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CROW-cache copy-row sweep on %q (baseline IPC %.3f, MPKI %.1f)\n\n",
		*app, base.IPC[0], base.MPKI[0])
	fmt.Printf("%-10s %9s %9s %8s %8s %10s %10s %10s\n",
		"config", "speedup", "hit rate", "ACT-t", "ACT-c", "restores", "chip area", "capacity")

	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		rep, err := crow.Run(crow.Options{
			Mechanism: crow.Cache,
			CopyRows:  n,
			Workloads: []string{*app},
		})
		if err != nil {
			log.Fatal(err)
		}
		o := crow.OverheadsFor(n)
		fmt.Printf("CROW-%-5d %+8.1f%% %8.1f%% %8d %8d %10d %9.2f%% %9.2f%%\n",
			n,
			100*(rep.IPC[0]/base.IPC[0]-1),
			100*rep.CROWTableHitRate,
			rep.ACTt, rep.ACTc, rep.RestoreOps,
			100*o.ChipArea, 100*o.Capacity)
	}

	ideal, err := crow.Run(crow.Options{Mechanism: crow.IdealCache, Workloads: []string{*app}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %+8.1f%% %8.1f%%   (hypothetical 100%% hit rate)\n",
		"ideal", 100*(ideal.IPC[0]/base.IPC[0]-1), 100.0)

	fmt.Println("\npaper anchors: CROW-1 +5.5%, CROW-8 +7.1%, CROW-256 +7.8% average")
	fmt.Println("               hit rates 68.8% / 85.3% / 91.1%; CROW-8 costs 0.48% chip area")
}
