// Quickstart: simulate a four-core system on conventional DRAM and on the
// combined CROW-cache + CROW-ref configuration, and print the headline
// comparison the paper's abstract reports (speedup and DRAM energy savings).
package main

import (
	"fmt"
	"log"

	"crowdram/crow"
)

func main() {
	opts := crow.Options{
		Mechanism: crow.CacheRef,
		// A memory-intensive four-core mix (the paper's headline uses
		// such workloads with a futuristic 64 Gbit chip).
		Workloads:   []string{"mcf", "lbm", "soplex", "milc"},
		DensityGbit: 64,
	}

	fmt.Println("CROW quickstart: 4 cores, 4 LPDDR4 channels, 8 MiB LLC, 64 Gbit chips")
	fmt.Printf("workloads: %v\n\n", opts.Workloads)

	cmp, err := crow.Compare(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "crow-cache+ref")
	for i := range cmp.Base.IPC {
		fmt.Printf("core %d (%s) IPC %15.3f %12.3f\n", i, opts.Workloads[i], cmp.Base.IPC[i], cmp.Mech.IPC[i])
	}
	fmt.Printf("%-22s %12.0f %12.0f\n", "DRAM energy (nJ)", cmp.Base.EnergyNJ.Total(), cmp.Mech.EnergyNJ.Total())
	fmt.Printf("%-22s %12d %12d\n", "refresh commands", cmp.Base.Refreshes, cmp.Mech.Refreshes)

	fmt.Printf("\nweighted speedup: %+.1f%%   (paper, 4-core memory-intensive avg: +20.0%%)\n", 100*cmp.Speedup)
	fmt.Printf("DRAM energy:      %+.1f%%   (paper: -22.3%%)\n", 100*(cmp.EnergyRatio-1))
	fmt.Printf("CROW-table hit rate: %.1f%%\n", 100*cmp.Mech.CROWTableHitRate)

	o := crow.OverheadsFor(8)
	fmt.Printf("\nhardware cost (CROW-8): %.2f%% chip area, %.1f KB CROW-table per channel, %.2f%% capacity\n",
		100*o.ChipArea, o.CROWTableKB, 100*o.Capacity)
}
