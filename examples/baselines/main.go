// baselines: compare the in-DRAM latency mechanisms head to head — CROW-cache
// against TL-DRAM [58], SALP-MASA [53], and ChargeCache [26] — on one
// workload, reporting the three axes of Figure 11: speedup, DRAM energy, and
// DRAM chip area overhead. CROW's pitch is not the largest speedup but the
// best speedup per unit of area and energy.
package main

import (
	"flag"
	"fmt"
	"log"

	"crowdram/crow"
)

func main() {
	app := flag.String("app", "soplex", "workload to run")
	flag.Parse()

	base, err := crow.Run(crow.Options{Workloads: []string{*app}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("In-DRAM caching baselines on %q (baseline IPC %.3f)\n\n", *app, base.IPC[0])
	fmt.Printf("%-14s %9s %13s %11s %16s\n", "mechanism", "speedup", "energy ratio", "area ovh", "capacity ovh")

	configs := []struct {
		name string
		o    crow.Options
	}{
		{"CROW-1", crow.Options{Mechanism: crow.Cache, CopyRows: 1}},
		{"CROW-8", crow.Options{Mechanism: crow.Cache, CopyRows: 8}},
		{"TL-DRAM-8", crow.Options{Mechanism: crow.TLDRAM}},
		{"SALP-128", crow.Options{Mechanism: crow.SALP}},
		{"SALP-128-O", crow.Options{Mechanism: crow.SALP, SALPOpenPage: true}},
		{"ChargeCache", crow.Options{Mechanism: crow.ChargeCache}},
		{"ideal", crow.Options{Mechanism: crow.IdealCache}},
	}
	for _, cfg := range configs {
		o := cfg.o
		o.Workloads = []string{*app}
		rep, err := crow.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %+8.1f%% %13.3f %10.2f%% %15.2f%%\n",
			cfg.name,
			100*(rep.IPC[0]/base.IPC[0]-1),
			rep.EnergyNJ.Total()/base.EnergyNJ.Total(),
			100*rep.ChipAreaOverhead,
			100*rep.CapacityOverhead)
	}

	fmt.Println("\npaper anchors (Fig. 11, single-core averages):")
	fmt.Println("  CROW-8 +7.1% at 0.48% area; TL-DRAM-8 +13.8% but 6.9% area;")
	fmt.Println("  SALP-256-O fastest but +58.4% DRAM energy and 28.9% area")
}
