module crowdram

go 1.22
