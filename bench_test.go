// Package crowdram's root benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced scale (exp.QuickScale) and report the
// headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as a smoke-level reproduction run. cmd/crowbench runs the same
// experiments at full scale.
package crowdram

import (
	"sync"
	"testing"

	"crowdram/internal/exp"
)

var (
	runnerOnce sync.Once
	runner     *exp.Runner
)

// quickRunner shares one memoizing runner across all benchmarks, so
// experiments that reuse simulations (e.g. Figures 8 and 10) pay once.
func quickRunner() *exp.Runner {
	runnerOnce.Do(func() { runner = exp.NewRunner(exp.QuickScale()) })
	return runner
}

// bench loops an experiment b.N times on the shared runner, failing the
// benchmark on any simulation error, and returns the last result.
func bench[T any](b *testing.B, fn func(*exp.Runner) (T, error)) T {
	b.Helper()
	r := quickRunner()
	var res T
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fn(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkTable1Timings(b *testing.B) {
	var t exp.Table
	for i := 0; i < b.N; i++ {
		t = exp.Table1()
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkFig5ActivationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig5()
	}
}

func BenchmarkFig6TradeOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig6()
	}
}

func BenchmarkFig7Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Fig7()
	}
}

func BenchmarkWeakRowProbabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.WeakProb()
	}
}

func BenchmarkSection6Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Overhead()
	}
}

func BenchmarkFig8SingleCore(b *testing.B) {
	res := bench(b, exp.Fig8)
	b.ReportMetric(100*res.AvgSpeedup[8], "speedup_crow8_%")
	b.ReportMetric(100*res.AvgHitRate[8], "hitrate_crow8_%")
	b.ReportMetric(100*res.AvgIdeal, "speedup_ideal_%")
}

func BenchmarkFig9MultiCore(b *testing.B) {
	res := bench(b, exp.Fig9)
	b.ReportMetric(100*res.Avg("CROW-8"), "ws_crow8_%")
	b.ReportMetric(100*res.Stats["HHHH"]["CROW-8"].Avg, "ws_hhhh_%")
}

func BenchmarkFig10Energy(b *testing.B) {
	res := bench(b, exp.Fig10)
	b.ReportMetric(100*(1-res.SingleCore), "energy_saved_1core_%")
	b.ReportMetric(100*(1-res.FourCore), "energy_saved_4core_%")
}

func BenchmarkFig11Baselines(b *testing.B) {
	res := bench(b, exp.Fig11)
	b.ReportMetric(100*res.Row("CROW-8").Speedup, "crow8_%")
	b.ReportMetric(100*res.Row("TL-DRAM-8").Speedup, "tldram8_%")
	b.ReportMetric(100*res.Row("SALP-128-O").Speedup, "salp128o_%")
}

func BenchmarkFig12Prefetcher(b *testing.B) {
	res := bench(b, exp.Fig12)
	b.ReportMetric(100*res.AvgGain, "crow_gain_over_pf_%")
}

func BenchmarkFig13CrowRef(b *testing.B) {
	res := bench(b, exp.Fig13)
	p := res.Point(64)
	b.ReportMetric(100*p.SingleSpeedup, "speedup64_1core_%")
	b.ReportMetric(100*(1-p.SingleEnergy), "energy_saved64_%")
}

func BenchmarkFig14Combined(b *testing.B) {
	res := bench(b, exp.Fig14)
	cell := res.Cells[8]["cache+ref"]
	b.ReportMetric(100*cell.Speedup, "ws_cacheref_8mib_%")
	b.ReportMetric(100*(1-cell.Energy), "energy_saved_%")
}

func BenchmarkAblationTableSharing(b *testing.B) {
	res := bench(b, exp.TableSharing)
	b.ReportMetric(100*res.Point(1).Speedup, "dedicated_%")
	b.ReportMetric(100*res.Point(4).Speedup, "shared4_%")
}

func BenchmarkAblationRestorePolicy(b *testing.B) {
	res := bench(b, exp.RestorePolicy)
	b.ReportMetric(100*res.Lazy, "lazy_%")
	b.ReportMetric(100*res.Eager, "eager_%")
	b.ReportMetric(100*res.FullRestore, "full_%")
}

func BenchmarkRefComparison(b *testing.B) {
	res := bench(b, exp.RefComparison)
	b.ReportMetric(100*res.Row("crow-ref").Speedup, "crowref_%")
	b.ReportMetric(100*res.Row("raidr").Speedup, "raidr_%")
}

func BenchmarkHammerMitigation(b *testing.B) {
	res := bench(b, exp.HammerAttack)
	b.ReportMetric(float64(res.Remaps), "victim_remaps")
}

func BenchmarkSchedulerSensitivity(b *testing.B) {
	_ = bench(b, exp.SchedulerSensitivity)
}

func BenchmarkLatencyComparison(b *testing.B) {
	res := bench(b, exp.LatencyComparison)
	b.ReportMetric(100*res.Row("crow-cache (CROW-8)").Speedup, "crow_%")
	b.ReportMetric(100*res.Row("chargecache").Speedup, "chargecache_%")
}

func BenchmarkRefreshModes(b *testing.B) {
	res := bench(b, exp.RefreshModes)
	b.ReportMetric(100*res.Row("REFpb").Speedup, "refpb_%")
	b.ReportMetric(100*res.Row("REFab + crow-ref").Speedup, "crowref_%")
}
