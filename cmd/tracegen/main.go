// Command tracegen writes a synthetic application trace to a file in the
// Ramulator-style text format: one "<bubbles> <hex-address> [W]" record per
// line.
//
// Example:
//
//	tracegen -app mcf -n 100000 -o mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crowdram/internal/trace"
)

func main() {
	var (
		app  = flag.String("app", "mcf", "application name (see -list)")
		n    = flag.Int("n", 100_000, "number of records to emit")
		out  = flag.String("o", "", "output file (default stdout)")
		seed = flag.Int64("seed", 1, "random seed")
		list = flag.Bool("list", false, "list available applications and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(trace.Names(trace.Apps), "\n"))
		return
	}

	a, err := trace.ByName(*app)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, a.Gen(*seed), *n); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
