// Command tracegen writes a synthetic application trace to a file in the
// Ramulator-style text format: one "<bubbles> <hex-address> [W]" record per
// line.
//
// Example:
//
//	tracegen -app mcf -n 100000 -o mcf.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"crowdram/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		app  = fs.String("app", "mcf", "application name (see -list)")
		n    = fs.Int("n", 100_000, "number of records to emit")
		out  = fs.String("o", "", "output file (default stdout)")
		seed = fs.Int64("seed", 1, "random seed")
		list = fs.Bool("list", false, "list available applications and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(trace.Names(trace.Apps), "\n"))
		return nil
	}

	a, err := trace.ByName(*app)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Write(w, a.Gen(*seed), *n)
}
