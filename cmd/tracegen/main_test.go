package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"crowdram/internal/trace"
)

// TestRoundTrip generates a trace end to end, re-parses it through the same
// parser the simulator's -traces path uses, and checks record count and
// same-seed determinism.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mcf.trace")
	if err := run([]string{"-app", "mcf", "-n", "500", "-seed", "7", "-o", path}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if len(recs) != 500 {
		t.Fatalf("got %d records, want 500", len(recs))
	}

	// Same seed regenerates the identical file.
	path2 := filepath.Join(dir, "mcf2.trace")
	if err := run([]string{"-app", "mcf", "-n", "500", "-seed", "7", "-o", path2}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("same seed produced different traces")
	}

	// A different seed produces a different stream.
	path3 := filepath.Join(dir, "mcf3.trace")
	if err := run([]string{"-app", "mcf", "-n", "500", "-seed", "8", "-o", path3}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data3, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(data, data3) {
		t.Fatal("different seeds produced identical traces")
	}

	// Writing the parsed records back reproduces the file (serialization is
	// canonical both ways).
	var buf bytes.Buffer
	if err := trace.Write(&buf, &trace.Replay{Records: recs}, len(recs)); err != nil {
		t.Fatal(err)
	}
	again, err := trace.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, again) {
		t.Fatal("round trip through Write/Parse changed records")
	}
}

func TestListAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mcf") {
		t.Fatalf("-list output missing known app: %q", out.String())
	}
	if err := run([]string{"-app", "no-such-app"}, &out); err == nil {
		t.Fatal("unknown app accepted")
	}
}
