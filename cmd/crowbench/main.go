// Command crowbench regenerates the paper's tables and figures (see the
// per-experiment index in DESIGN.md).
//
// Examples:
//
//	crowbench -exp table1,fig5,fig7          # analytic experiments (instant)
//	crowbench -exp fig8 -insts 1000000        # scale up a simulation figure
//	crowbench -exp all -j 8                   # everything, 8 runs in flight
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"crowdram/internal/engine"
	"crowdram/internal/exp"
	"crowdram/internal/obs"
	"crowdram/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crowbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which   = flag.String("exp", "all", "comma-separated experiments: table1,fig5..fig14,weakprob,overhead,sharing,restore,refcompare,latcompare,refreshmodes,hammer,hammerlab,tenant,sched,ddr4,ddr5,hbm2, or 'all' / 'analytic' / 'sim' / 'ablations'")
		asJSON  = flag.Bool("json", false, "emit results as a JSON array of tables")
		insts   = flag.Int64("insts", 300_000, "measured instructions per core")
		mixes   = flag.Int("mixes", 3, "four-core mixes per workload group")
		apps    = flag.String("apps", "", "comma-separated subset of single-core apps (default: full suite)")
		seed    = flag.Int64("seed", 1, "random seed")
		jobs    = flag.Int("j", 1, "max simulations in flight (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 1, "goroutines advancing the simulated channels within one run (results are byte-identical at any value)")
		timeout = flag.Duration("timeout", 0, "per-simulation wall-clock limit (0 = none)")
		verify  = flag.Bool("verify", false, "run the correctness oracle alongside every simulation; violations fail the run")
		verbose = flag.Bool("v", false, "print progress per simulation run")

		storeDir   = flag.String("store", "", "persist results to this directory; reruns at the same scale skip completed simulations (empty = memory only)")
		storeMaxMB = flag.Int64("store-max-mb", 0, "on-disk cap for -store in MiB; least-recently-used results are evicted (0 = unbounded)")

		cpuProfile = flag.String("cpuprofile", "", "write a Go CPU profile of the sweep")
		memProfile = flag.String("memprofile", "", "write a Go heap profile at exit")
		execTrace  = flag.String("exectrace", "", "write a Go runtime execution trace")
	)
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "crowbench:", perr)
		}
	}()

	scale := exp.Scale{Insts: *insts, Warmup: *insts / 10, MixesPerGroup: *mixes, Seed: *seed}
	if *apps != "" {
		scale.SingleApps = strings.Split(*apps, ",")
		for _, name := range scale.SingleApps {
			if _, err := trace.ByName(name); err != nil {
				return err
			}
		}
	}

	sel, err := exp.Select(strings.Split(*which, ","))
	if err != nil {
		return err
	}

	// Ctrl-C cancels in-flight simulations instead of killing mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ropts := []exp.RunnerOption{exp.Workers(*jobs), exp.WithContext(ctx)}
	if *shards > 1 {
		ropts = append(ropts, exp.Shards(*shards))
	}
	if *timeout > 0 {
		ropts = append(ropts, exp.Timeout(*timeout))
	}
	if *verify {
		ropts = append(ropts, exp.Verify())
	}
	if *verbose {
		ropts = append(ropts, exp.Observe(progress))
	}
	if *storeDir != "" {
		st, err := exp.OpenStore(*storeDir, *storeMaxMB<<20)
		if err != nil {
			return fmt.Errorf("open result store: %w", err)
		}
		if stats := st.Stats(); *verbose {
			fmt.Fprintf(os.Stderr, "  [result store %s: %d results, %.1f MiB]\n",
				*storeDir, stats.Files, float64(stats.Bytes)/(1<<20))
		}
		ropts = append(ropts, exp.Backed(st))
	}
	r := exp.NewRunner(scale, ropts...)

	// Plan/execute first: every simulation any selected experiment needs
	// runs here, concurrently up to -j, deduplicated across experiments.
	// The reduce loop below then assembles tables from the warm cache.
	plan := exp.PlanAll(r, sel)
	if len(plan) > 0 && *verbose {
		fmt.Fprintf(os.Stderr, "  [%d planned runs, %d workers]\n", len(plan), r.Workers())
	}
	start := time.Now()
	if err := r.Execute(plan); err != nil {
		return err
	}
	if len(plan) > 0 && *verbose {
		fmt.Fprintf(os.Stderr, "  [plan executed in %v]\n", time.Since(start).Round(time.Millisecond))
	}

	var collected []exp.Table
	for _, e := range sel {
		start := time.Now()
		t, err := e.Table(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if *asJSON {
			collected = append(collected, t)
		} else {
			fmt.Println(t)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "  [%s assembled in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			return err
		}
	}
	return nil
}

// progress renders engine events as one stderr line each.
func progress(e engine.Event) {
	switch e.Type {
	case engine.EventStarted:
		fmt.Fprintf(os.Stderr, "  run   %s\n", e.Label)
	case engine.EventFinished:
		status := fmt.Sprintf("in %v", e.Duration.Round(time.Millisecond))
		if e.Err != nil {
			status = "FAILED: " + e.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "  done  %s %s (%d pending)\n", e.Label, status, e.Pending)
	case engine.EventCacheHit:
		fmt.Fprintf(os.Stderr, "  hit   %s\n", e.Label)
	case engine.EventStoreHit:
		fmt.Fprintf(os.Stderr, "  store %s\n", e.Label)
	}
}
