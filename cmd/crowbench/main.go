// Command crowbench regenerates the paper's tables and figures (see the
// per-experiment index in DESIGN.md).
//
// Examples:
//
//	crowbench -exp table1,fig5,fig7          # analytic experiments (instant)
//	crowbench -exp fig8 -insts 1000000        # scale up a simulation figure
//	crowbench -exp all                        # everything
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crowdram/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "comma-separated experiments: table1,fig5..fig14,weakprob,overhead,sharing,restore,refcompare,latcompare,refreshmodes,hammer,sched, or 'all' / 'analytic' / 'sim' / 'ablations'")
		asJSON  = flag.Bool("json", false, "emit results as a JSON array of tables")
		insts   = flag.Int64("insts", 300_000, "measured instructions per core")
		mixes   = flag.Int("mixes", 3, "four-core mixes per workload group")
		apps    = flag.String("apps", "", "comma-separated subset of single-core apps (default: full suite)")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print progress per simulation run")
	)
	flag.Parse()

	scale := exp.Scale{Insts: *insts, Warmup: *insts / 10, MixesPerGroup: *mixes, Seed: *seed}
	if *apps != "" {
		scale.SingleApps = strings.Split(*apps, ",")
	}
	r := exp.NewRunner(scale)
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	analytic := []string{"table1", "fig5", "fig6", "fig7", "weakprob", "overhead"}
	simulated := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}
	ablations := []string{"sharing", "restore", "refcompare", "latcompare", "refreshmodes", "hammer", "sched"}
	var selected []string
	switch *which {
	case "all":
		selected = append(append(analytic, simulated...), ablations...)
	case "analytic":
		selected = analytic
	case "sim":
		selected = simulated
	case "ablations":
		selected = ablations
	default:
		selected = strings.Split(*which, ",")
	}

	var collected []exp.Table
	for _, name := range selected {
		start := time.Now()
		var t exp.Table
		switch name {
		case "table1":
			t = exp.Table1()
		case "fig5":
			t = exp.Fig5()
		case "fig6":
			t = exp.Fig6()
		case "fig7":
			t = exp.Fig7()
		case "weakprob":
			t = exp.WeakProb()
		case "overhead":
			t = exp.Overhead()
		case "fig8":
			t = exp.Fig8(r).Table()
		case "fig9":
			t = exp.Fig9(r).Table()
		case "fig10":
			t = exp.Fig10(r).Table()
		case "fig11":
			t = exp.Fig11(r).Table()
		case "fig12":
			t = exp.Fig12(r).Table()
		case "fig13":
			t = exp.Fig13(r).Table()
		case "fig14":
			t = exp.Fig14(r).Table()
		case "sharing":
			t = exp.TableSharing(r).Table()
		case "restore":
			t = exp.RestorePolicy(r).Table()
		case "refcompare":
			t = exp.RefComparison(r).Table()
		case "latcompare":
			t = exp.LatencyComparison(r).Table()
		case "refreshmodes":
			t = exp.RefreshModes(r).Table()
		case "hammer":
			t = exp.HammerAttack(r).Table()
		case "sched":
			t = exp.SchedulerSensitivity(r).Table()
		default:
			fmt.Fprintf(os.Stderr, "crowbench: unknown experiment %q\n", name)
			os.Exit(1)
		}
		if *asJSON {
			collected = append(collected, t)
		} else {
			fmt.Println(t)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "  [%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "crowbench:", err)
			os.Exit(1)
		}
	}
}
