// Command crowserve runs the CROW reproduction as a long-lived HTTP
// service: simulations and whole experiments are submitted as jobs, queued
// with priorities and admission control, executed on the shared memoizing
// engine (identical submissions are cache hits), observable as an SSE event
// stream, and cancellable — see DESIGN.md §8.
//
// Quickstart:
//
//	crowserve -addr :8080 -j 4 &
//	curl -s localhost:8080/v1/jobs -d '{"experiment": "fig8"}'
//	curl -s localhost:8080/v1/jobs -d '{"options": {"Mechanism": "crow-cache", "Workloads": ["mcf"]}}'
//	curl -N localhost:8080/v1/jobs/j000001/events
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, inflight jobs
// finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/exp"
	"crowdram/internal/obs"
	"crowdram/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crowserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "jobs serviced concurrently")
		jobs         = flag.Int("j", 0, "max simulations in flight across all jobs (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "admitted-but-not-started job bound; beyond it submissions get 503")
		insts        = flag.Int64("insts", 300_000, "measured instructions per core")
		mixes        = flag.Int("mixes", 3, "four-core mixes per workload group")
		seed         = flag.Int64("seed", 1, "random seed")
		runTimeout   = flag.Duration("run-timeout", 0, "per-simulation wall-clock limit (0 = none)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline (0 = none; overridable per job)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown bound for inflight jobs")
		verify       = flag.Bool("verify", false, "run the correctness oracle alongside every simulation")
		telemetry    = flag.Int64("telemetry-interval", 0, "stream per-bank interval telemetry every N DRAM cycles on job SSE streams (0 = off)")
		enablePprof  = flag.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
		storeDir     = flag.String("store", "", "persist results to this directory; identical submissions survive restarts (empty = memory only)")
		storeMaxMB   = flag.Int64("store-max-mb", 0, "on-disk cap for -store in MiB; least-recently-used results are evicted (0 = unbounded)")
		retainJobs   = flag.Int("retain-jobs", 0, "finished jobs kept visible in the job table (0 = default 512, negative = unlimited)")
		retainFor    = flag.Duration("retain-for", 0, "age after which finished jobs leave the job table (0 = no TTL)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log line format: text, json")
		slowJob      = flag.Duration("slow-job", 0, "warn about jobs whose admission-to-done wall time exceeds this (0 = off)")
		spanCap      = flag.Int("span-cap", 0, "per-job span ring capacity (0 = default 4096, negative = disable span tracing)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	var backing engine.Backing[crow.Report]
	if *storeDir != "" {
		st, err := exp.OpenStore(*storeDir, *storeMaxMB<<20)
		if err != nil {
			return fmt.Errorf("open result store: %w", err)
		}
		stats := st.Stats()
		logger.Info("result store opened",
			"dir", *storeDir, "results", stats.Files,
			"disk_mib", float64(stats.Bytes)/(1<<20))
		backing = st
	}

	svc := service.New(service.Config{
		Scale:             exp.Scale{Insts: *insts, Warmup: *insts / 10, MixesPerGroup: *mixes, Seed: *seed},
		Workers:           *workers,
		EngineWorkers:     *jobs,
		QueueDepth:        *queueDepth,
		RunTimeout:        *runTimeout,
		JobTimeout:        *jobTimeout,
		Verify:            *verify,
		TelemetryInterval: *telemetry,
		Backing:           backing,
		RetainJobs:        *retainJobs,
		RetainFor:         *retainFor,
		Logger:            logger,
		SlowJob:           *slowJob,
		SpanCapacity:      *spanCap,
	})
	handler := svc.Handler()
	if *enablePprof {
		// Mount the service API next to the runtime profilers on one mux:
		// `go tool pprof http://host/debug/pprof/profile` works against a
		// live server without a side port.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening",
			"addr", *addr, "workers", *workers, "queue", *queueDepth)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	}

	// Drain the job service first so inflight work completes, then close
	// the listener. A second signal, or the drain timeout, forces it.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		logger.Warn("second signal, cancelling inflight jobs")
		cancel()
	}()
	if err := svc.Drain(ctx); err != nil {
		logger.Warn("drain cut short", "error", err)
	}
	shutdownCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	defer stop()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("drained, bye")
	return nil
}
