// Command crowsim runs a single CROW simulation and prints a report.
//
// Examples:
//
//	crowsim -mech crow-cache -workloads mcf
//	crowsim -mech crow-cache+ref -workloads mcf,lbm,gcc,povray -density 64
//	crowsim -mech tl-dram -workloads soplex -compare -j 4
//	crowsim -mech crow-cache -workloads mcf -verify -trace-out run.json
//	crowsim -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/metrics"
	"crowdram/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "crowsim:", err)
		os.Exit(1)
	}
}

// errVerifyFailed marks an oracle-violation exit; the report has already
// been printed when it is returned.
var errVerifyFailed = errors.New("verification failed")

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("crowsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mech      = fs.String("mech", "baseline", "mechanism: baseline, crow-cache, crow-ref, crow-cache+ref, crow-hammer, ideal-cache, ideal-norefresh, tl-dram, salp, raidr, chargecache")
		standard  = fs.String("standard", "lpddr4", "memory standard: "+strings.Join(crow.Standards(), ", "))
		sched     = fs.String("sched", "", "controller scheduler: "+strings.Join(crow.Schedulers(), ", ")+" (default frfcfs-cap)")
		rowPol    = fs.String("rowpolicy", "", "row-buffer policy: "+strings.Join(crow.RowPolicies(), ", ")+" (default timeout)")
		mapping   = fs.String("mapping", "", "address mapping: "+strings.Join(crow.Mappings(), ", ")+" (default robarococh)")
		loads     = fs.String("workloads", "mcf", "comma-separated workload names, one per core (1-4)")
		traces    = fs.String("traces", "", "comma-separated trace files (tracegen format), one per core; overrides -workloads")
		copyRows  = fs.Int("copyrows", 8, "copy rows per subarray (CROW-n)")
		density   = fs.Int("density", 8, "DRAM chip density in Gbit: 8, 16, 32, 64")
		llcMiB    = fs.Int("llc", 8, "LLC capacity in MiB")
		llcKiB    = fs.Int("llc-kib", 0, "LLC capacity in KiB, overriding -llc (0 = use -llc); cache-flush attack studies need sub-MiB caches")
		insts     = fs.Int64("insts", 500_000, "measured instructions per core")
		warmup    = fs.Int64("warmup", 0, "warmup instructions per core (default insts/10)")
		seed      = fs.Int64("seed", 1, "random seed")
		prefetch  = fs.Bool("prefetch", false, "enable the stride prefetcher")
		tlNear    = fs.Int("tl-near", 8, "TL-DRAM near-segment rows")
		salpSub   = fs.Int("salp", 128, "SALP subarrays per bank")
		salpOpen  = fs.Bool("salp-open", false, "SALP open-page policy")
		hammerT   = fs.Int("hammer-threshold", 2048, "RowHammer detection threshold")
		mitig     = fs.String("mitigation", "", "RowHammer mitigation: "+strings.Join(crow.Mitigations(), ", ")+" (default none)")
		paraPM    = fs.Int("para-permille", 0, "PARA neighbour-refresh probability in 1/1000 per ACT (default 5 when -mitigation para)")
		refScale  = fs.Int("refresh-scale", 0, "refresh-rate multiplier for -mitigation refresh-scale (default 4)")
		flipHC    = fs.Int("flip-hcfirst", 0, "enable the bit-flip model with this median HC_first threshold (0 = off)")
		flipJit   = fs.Int("flip-jitter", 0, "flip model per-row threshold jitter in percent (default 25)")
		flipBlast = fs.Int("flip-blast", 0, "flip model distance-2 blast dose in percent of distance-1 (negative disables)")
		flipPat   = fs.Int("flip-pattern", 0, "flip model data-pattern threshold scale in percent for the susceptible half of rows (default 75)")
		transl    = fs.String("translation", "", "virtual-to-physical translation: "+strings.Join(crow.Translations(), ", ")+" (default hash)")
		share     = fs.Int("table-share", 1, "CROW-table sharing group (Section 6.1)")
		perBank   = fs.Bool("refpb", false, "use LPDDR4 per-bank refresh")
		postpone  = fs.Int("postpone", 0, "elastic refresh postponement limit (JEDEC allows 8)")
		verify    = fs.Bool("verify", false, "run the correctness oracle alongside the simulation and report violations")
		compare   = fs.Bool("compare", false, "also run the baseline and report speedup/energy savings")
		jobs      = fs.Int("j", 1, "max simulations in flight for -compare (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 1, "goroutines advancing the simulated channels within one run (results are byte-identical at any value)")
		timeout   = fs.Duration("timeout", 0, "per-simulation wall-clock limit (0 = none)")
		verbose   = fs.Bool("v", false, "print progress per simulation run")
		asJSON    = fs.Bool("json", false, "emit the report as JSON")
		list      = fs.Bool("list", false, "list available workloads and exit")
		listStds  = fs.Bool("list-standards", false, "list registered standards, schedulers, row policies and mappings, then exit")

		traceOut   = fs.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON of the run (open at ui.perfetto.dev)")
		traceCap   = fs.Int("trace-cap", 1_000_000, "event-tracer ring capacity; oldest events drop beyond it")
		cpuProfile = fs.String("cpuprofile", "", "write a Go CPU profile of the simulator process")
		memProfile = fs.String("memprofile", "", "write a Go heap profile at exit")
		execTrace  = fs.String("exectrace", "", "write a Go runtime execution trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(crow.Workloads(), "\n"))
		return nil
	}
	if *listStds {
		fmt.Fprintf(stdout, "standards:    %s\n", strings.Join(crow.Standards(), ", "))
		fmt.Fprintf(stdout, "schedulers:   %s\n", strings.Join(crow.Schedulers(), ", "))
		fmt.Fprintf(stdout, "row policies: %s\n", strings.Join(crow.RowPolicies(), ", "))
		fmt.Fprintf(stdout, "mappings:     %s\n", strings.Join(crow.Mappings(), ", "))
		return nil
	}
	if *traceOut != "" && *compare {
		return errors.New("-trace-out traces a single run; it cannot be combined with -compare")
	}
	if *traceOut != "" && *traceCap <= 0 {
		return errors.New("-trace-cap must be positive")
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	opts := crow.Options{
		Mechanism:       crow.Mechanism(*mech),
		Standard:        *standard,
		Scheduler:       *sched,
		RowPolicy:       *rowPol,
		Mapping:         *mapping,
		Workloads:       strings.Split(*loads, ","),
		TraceFiles:      splitNonEmpty(*traces),
		CopyRows:        *copyRows,
		DensityGbit:     *density,
		LLCBytes:        llcBytes(*llcMiB, *llcKiB),
		MeasureInsts:    *insts,
		WarmupInsts:     *warmup,
		Seed:            *seed,
		Prefetch:        *prefetch,
		TLDRAMNearRows:  *tlNear,
		SALPSubarrays:   *salpSub,
		SALPOpenPage:    *salpOpen,
		HammerThreshold: *hammerT,
		Mitigation:      *mitig,
		ParaPerMille:    *paraPM,
		RefreshScale:    *refScale,
		FlipHCFirst:     *flipHC,
		FlipJitterPct:   *flipJit,
		FlipBlastPct:    *flipBlast,
		FlipPatternPct:  *flipPat,
		Translation:     *transl,
		TableShareGroup: *share,
		PerBankRefresh:  *perBank,
		RefreshPostpone: *postpone,
		Verify:          *verify,
	}
	// Reject unknown names (standard, scheduler, …) with the registry listing
	// up front, instead of failing deep inside a run.
	if err := opts.Validate(); err != nil {
		return err
	}

	if *shards < 0 {
		return errors.New("-shards must be non-negative")
	}
	if *shards > 1 {
		ctx = crow.WithShards(ctx, *shards)
	}

	if *compare {
		c, err := compareParallel(ctx, opts, *jobs, *timeout, *verbose, stderr)
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(stdout, c)
		}
		printReport(stdout, c.Mech)
		fmt.Fprintf(stdout, "\nvs baseline:\n")
		fmt.Fprintf(stdout, "  weighted speedup:   %+.1f%%\n", 100*c.Speedup)
		fmt.Fprintf(stdout, "  DRAM energy ratio:  %.3f (%+.1f%%)\n", c.EnergyRatio, 100*(c.EnergyRatio-1))
		return nil
	}

	// The tracer rides the run context, not Options (whose key memoizes
	// runs): a traced simulation is the same simulation.
	var bundle *obs.Observers
	if *traceOut != "" {
		bundle = &obs.Observers{TraceCapacity: *traceCap}
		ctx = obs.With(ctx, bundle)
	}

	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if *timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()
	rep, err := crow.RunContext(runCtx, opts)
	if err != nil {
		return err
	}
	if bundle != nil {
		if err := writeTrace(*traceOut, bundle.Tracer()); err != nil {
			return err
		}
		if t := bundle.Tracer(); t != nil {
			fmt.Fprintf(stderr, "crowsim: wrote %s (%d events, %d dropped)\n",
				*traceOut, t.Len(), t.Dropped())
		}
	}
	if *asJSON {
		if err := emitJSON(stdout, rep); err != nil {
			return err
		}
		if *verify && rep.Violations > 0 {
			return errVerifyFailed
		}
		return nil
	}
	printReport(stdout, rep)
	if *verify {
		if rep.Violations == 0 {
			fmt.Fprintln(stdout, "verification: ok (0 oracle violations)")
		} else {
			fmt.Fprintf(stdout, "verification: FAILED, %d violations\n", rep.Violations)
			counts := metrics.Counters(rep.ViolationCounts)
			for _, class := range counts.Names() {
				fmt.Fprintf(stdout, "  %s: %d\n", class, counts[class])
			}
			for _, s := range rep.ViolationSamples {
				fmt.Fprintf(stdout, "  sample: %s\n", s)
			}
			return errVerifyFailed
		}
	}
	return nil
}

// writeTrace exports the tracer's ring as Chrome trace-event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	if t == nil {
		return errors.New("trace-out: no tracer was attached (internal error)")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}

// compareParallel runs the mechanism, baseline, and (for multi-core options)
// alone-run simulations behind crow.Compare concurrently on an engine pool,
// then assembles the comparison from the memoized results.
func compareParallel(ctx context.Context, opts crow.Options, jobs int, timeout time.Duration, verbose bool, stderr io.Writer) (crow.Comparison, error) {
	popts := []engine.Option[crow.Report]{}
	if timeout > 0 {
		popts = append(popts, engine.WithTimeout[crow.Report](timeout))
	}
	if verbose {
		popts = append(popts, engine.WithObserver[crow.Report](progress(stderr)))
	}
	pool := engine.New(jobs, popts...)

	runs := crow.CompareRuns(opts)
	do := func(o crow.Options) (crow.Report, error) {
		label := fmt.Sprintf("%s on %s", o.Mechanism, strings.Join(o.Workloads, "+"))
		return pool.Do(ctx, o.Key(), label, func(ctx context.Context) (crow.Report, error) {
			return crow.RunContext(ctx, o)
		})
	}
	if err := engine.All(ctx, pool, runs,
		func(o crow.Options) (string, string, func(context.Context) (crow.Report, error)) {
			label := fmt.Sprintf("%s on %s", o.Mechanism, strings.Join(o.Workloads, "+"))
			return o.Key(), label, func(ctx context.Context) (crow.Report, error) {
				return crow.RunContext(ctx, o)
			}
		}); err != nil {
		return crow.Comparison{}, err
	}
	reps := make([]crow.Report, len(runs))
	for i, o := range runs {
		rep, err := do(o) // cache hit: All already ran it
		if err != nil {
			return crow.Comparison{}, err
		}
		reps[i] = rep
	}
	return crow.CompareFrom(opts, reps)
}

// progress renders engine events as one stderr line each.
func progress(stderr io.Writer) engine.Observer {
	return func(e engine.Event) {
		switch e.Type {
		case engine.EventStarted:
			fmt.Fprintf(stderr, "  run   %s\n", e.Label)
		case engine.EventFinished:
			status := fmt.Sprintf("in %v", e.Duration.Round(time.Millisecond))
			if e.Err != nil {
				status = "FAILED: " + e.Err.Error()
			}
			fmt.Fprintf(stderr, "  done  %s %s\n", e.Label, status)
		}
	}
}

func printReport(w io.Writer, r crow.Report) {
	fmt.Fprintf(w, "mechanism: %s\n", r.Mechanism)
	for i := range r.IPC {
		fmt.Fprintf(w, "  core %d: IPC %.3f, LLC MPKI %.2f\n", i, r.IPC[i], r.MPKI[i])
	}
	fmt.Fprintf(w, "DRAM commands: ACT %d, ACT-t %d, ACT-c %d, RD %d, WR %d, REF %d\n",
		r.ACT, r.ACTt, r.ACTc, r.RD, r.WR, r.REF)
	fmt.Fprintf(w, "row-buffer hit rate: %.1f%%, read latency avg %.1f ns (p50 <= %.0f, p99 <= %.0f)\n",
		100*r.RowHitRate, r.AvgReadLatencyNs, r.ReadLatencyP50Ns, r.ReadLatencyP99Ns)
	if r.Hits+r.Misses > 0 {
		fmt.Fprintf(w, "CROW-table: hit rate %.1f%% (%d hits, %d misses), %d copies, %d evictions, %d restores\n",
			100*r.CROWTableHitRate, r.Hits, r.Misses, r.Copies, r.Evictions, r.RestoreOps)
	}
	if r.RefRemaps > 0 {
		fmt.Fprintf(w, "CROW-ref: %d activations redirected to copy rows\n", r.RefRemaps)
	}
	if r.HammerRemaps > 0 {
		fmt.Fprintf(w, "RowHammer: %d victim rows remapped\n", r.HammerRemaps)
	}
	if r.Mitigation != "" {
		fmt.Fprintf(w, "mitigation: %s (%d neighbour refreshes)\n", r.Mitigation, r.MitigationRefreshes)
	}
	if r.Flips > 0 || r.ShieldedFlips > 0 {
		fmt.Fprintf(w, "bit flips: %d on %d rows (%d shielded by remaps)", r.Flips, r.FlipVictimRows, r.ShieldedFlips)
		if len(r.FlipsByCore) > 0 {
			fmt.Fprintf(w, ", by tenant %v", r.FlipsByCore)
		}
		fmt.Fprintln(w)
	}
	e := r.EnergyNJ
	fmt.Fprintf(w, "DRAM energy: %.0f nJ (act/pre %.0f, rd %.0f, wr %.0f, refresh %.0f, background %.0f)\n",
		e.Total(), e.ActPre, e.Read, e.Write, e.Refresh, e.Background)
	if r.ChipAreaOverhead > 0 {
		fmt.Fprintf(w, "chip area overhead: %.2f%%, capacity overhead: %.2f%%\n",
			100*r.ChipAreaOverhead, 100*r.CapacityOverhead)
	}
}

func emitJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// llcBytes resolves the two LLC size flags: -llc-kib, when set, overrides
// the MiB-granular -llc so sub-MiB caches (the RowHammer lab's 64 KiB
// cache-flush-attack stand-in) are expressible from the command line.
func llcBytes(mib, kib int) int64 {
	if kib > 0 {
		return int64(kib) << 10
	}
	return int64(mib) << 20
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
