// Command crowsim runs a single CROW simulation and prints a report.
//
// Examples:
//
//	crowsim -mech crow-cache -workloads mcf
//	crowsim -mech crow-cache+ref -workloads mcf,lbm,gcc,povray -density 64
//	crowsim -mech tl-dram -workloads soplex -compare -j 4
//	crowsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"crowdram/crow"
	"crowdram/internal/engine"
	"crowdram/internal/metrics"
)

func main() {
	var (
		mech     = flag.String("mech", "baseline", "mechanism: baseline, crow-cache, crow-ref, crow-cache+ref, crow-hammer, ideal-cache, ideal-norefresh, tl-dram, salp, raidr, chargecache")
		loads    = flag.String("workloads", "mcf", "comma-separated workload names, one per core (1-4)")
		traces   = flag.String("traces", "", "comma-separated trace files (tracegen format), one per core; overrides -workloads")
		copyRows = flag.Int("copyrows", 8, "copy rows per subarray (CROW-n)")
		density  = flag.Int("density", 8, "DRAM chip density in Gbit: 8, 16, 32, 64")
		llcMiB   = flag.Int("llc", 8, "LLC capacity in MiB")
		insts    = flag.Int64("insts", 500_000, "measured instructions per core")
		warmup   = flag.Int64("warmup", 0, "warmup instructions per core (default insts/10)")
		seed     = flag.Int64("seed", 1, "random seed")
		prefetch = flag.Bool("prefetch", false, "enable the stride prefetcher")
		tlNear   = flag.Int("tl-near", 8, "TL-DRAM near-segment rows")
		salpSub  = flag.Int("salp", 128, "SALP subarrays per bank")
		salpOpen = flag.Bool("salp-open", false, "SALP open-page policy")
		hammerT  = flag.Int("hammer-threshold", 2048, "RowHammer detection threshold")
		share    = flag.Int("table-share", 1, "CROW-table sharing group (Section 6.1)")
		perBank  = flag.Bool("refpb", false, "use LPDDR4 per-bank refresh")
		postpone = flag.Int("postpone", 0, "elastic refresh postponement limit (JEDEC allows 8)")
		verify   = flag.Bool("verify", false, "run the correctness oracle alongside the simulation and report violations")
		compare  = flag.Bool("compare", false, "also run the baseline and report speedup/energy savings")
		jobs     = flag.Int("j", 1, "max simulations in flight for -compare (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-simulation wall-clock limit (0 = none)")
		verbose  = flag.Bool("v", false, "print progress per simulation run")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(crow.Workloads(), "\n"))
		return
	}

	opts := crow.Options{
		Mechanism:       crow.Mechanism(*mech),
		Workloads:       strings.Split(*loads, ","),
		TraceFiles:      splitNonEmpty(*traces),
		CopyRows:        *copyRows,
		DensityGbit:     *density,
		LLCBytes:        int64(*llcMiB) << 20,
		MeasureInsts:    *insts,
		WarmupInsts:     *warmup,
		Seed:            *seed,
		Prefetch:        *prefetch,
		TLDRAMNearRows:  *tlNear,
		SALPSubarrays:   *salpSub,
		SALPOpenPage:    *salpOpen,
		HammerThreshold: *hammerT,
		TableShareGroup: *share,
		PerBankRefresh:  *perBank,
		RefreshPostpone: *postpone,
		Verify:          *verify,
	}

	// Ctrl-C cancels in-flight simulations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *compare {
		c, err := compareParallel(ctx, opts, *jobs, *timeout, *verbose)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(c)
			return
		}
		printReport(c.Mech)
		fmt.Printf("\nvs baseline:\n")
		fmt.Printf("  weighted speedup:   %+.1f%%\n", 100*c.Speedup)
		fmt.Printf("  DRAM energy ratio:  %.3f (%+.1f%%)\n", c.EnergyRatio, 100*(c.EnergyRatio-1))
		return
	}

	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if *timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()
	rep, err := crow.RunContext(runCtx, opts)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		emitJSON(rep)
		if *verify && rep.Violations > 0 {
			os.Exit(1)
		}
		return
	}
	printReport(rep)
	if *verify {
		if rep.Violations == 0 {
			fmt.Println("verification: ok (0 oracle violations)")
		} else {
			fmt.Printf("verification: FAILED, %d violations\n", rep.Violations)
			counts := metrics.Counters(rep.ViolationCounts)
			for _, class := range counts.Names() {
				fmt.Printf("  %s: %d\n", class, counts[class])
			}
			for _, s := range rep.ViolationSamples {
				fmt.Printf("  sample: %s\n", s)
			}
			os.Exit(1)
		}
	}
}

// compareParallel runs the mechanism, baseline, and (for multi-core options)
// alone-run simulations behind crow.Compare concurrently on an engine pool,
// then assembles the comparison from the memoized results.
func compareParallel(ctx context.Context, opts crow.Options, jobs int, timeout time.Duration, verbose bool) (crow.Comparison, error) {
	popts := []engine.Option[crow.Report]{}
	if timeout > 0 {
		popts = append(popts, engine.WithTimeout[crow.Report](timeout))
	}
	if verbose {
		popts = append(popts, engine.WithObserver[crow.Report](progress))
	}
	pool := engine.New(jobs, popts...)

	runs := crow.CompareRuns(opts)
	do := func(o crow.Options) (crow.Report, error) {
		label := fmt.Sprintf("%s on %s", o.Mechanism, strings.Join(o.Workloads, "+"))
		return pool.Do(ctx, o.Key(), label, func(ctx context.Context) (crow.Report, error) {
			return crow.RunContext(ctx, o)
		})
	}
	if err := engine.All(ctx, pool, runs,
		func(o crow.Options) (string, string, func(context.Context) (crow.Report, error)) {
			label := fmt.Sprintf("%s on %s", o.Mechanism, strings.Join(o.Workloads, "+"))
			return o.Key(), label, func(ctx context.Context) (crow.Report, error) {
				return crow.RunContext(ctx, o)
			}
		}); err != nil {
		return crow.Comparison{}, err
	}
	reps := make([]crow.Report, len(runs))
	for i, o := range runs {
		rep, err := do(o) // cache hit: All already ran it
		if err != nil {
			return crow.Comparison{}, err
		}
		reps[i] = rep
	}
	return crow.CompareFrom(opts, reps)
}

// progress renders engine events as one stderr line each.
func progress(e engine.Event) {
	switch e.Type {
	case engine.EventStarted:
		fmt.Fprintf(os.Stderr, "  run   %s\n", e.Label)
	case engine.EventFinished:
		status := fmt.Sprintf("in %v", e.Duration.Round(time.Millisecond))
		if e.Err != nil {
			status = "FAILED: " + e.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "  done  %s %s\n", e.Label, status)
	}
}

func printReport(r crow.Report) {
	fmt.Printf("mechanism: %s\n", r.Mechanism)
	for i := range r.IPC {
		fmt.Printf("  core %d: IPC %.3f, LLC MPKI %.2f\n", i, r.IPC[i], r.MPKI[i])
	}
	fmt.Printf("DRAM commands: ACT %d, ACT-t %d, ACT-c %d, RD %d, WR %d, REF %d\n",
		r.ACT, r.ACTt, r.ACTc, r.RD, r.WR, r.REF)
	fmt.Printf("row-buffer hit rate: %.1f%%, read latency avg %.1f ns (p50 <= %.0f, p99 <= %.0f)\n",
		100*r.RowHitRate, r.AvgReadLatencyNs, r.ReadLatencyP50Ns, r.ReadLatencyP99Ns)
	if r.Hits+r.Misses > 0 {
		fmt.Printf("CROW-table: hit rate %.1f%% (%d hits, %d misses), %d copies, %d evictions, %d restores\n",
			100*r.CROWTableHitRate, r.Hits, r.Misses, r.Copies, r.Evictions, r.RestoreOps)
	}
	if r.RefRemaps > 0 {
		fmt.Printf("CROW-ref: %d activations redirected to copy rows\n", r.RefRemaps)
	}
	if r.HammerRemaps > 0 {
		fmt.Printf("RowHammer: %d victim rows remapped\n", r.HammerRemaps)
	}
	e := r.EnergyNJ
	fmt.Printf("DRAM energy: %.0f nJ (act/pre %.0f, rd %.0f, wr %.0f, refresh %.0f, background %.0f)\n",
		e.Total(), e.ActPre, e.Read, e.Write, e.Refresh, e.Background)
	if r.ChipAreaOverhead > 0 {
		fmt.Printf("chip area overhead: %.2f%%, capacity overhead: %.2f%%\n",
			100*r.ChipAreaOverhead, 100*r.CapacityOverhead)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowsim:", err)
	os.Exit(1)
}
