// Command crowsim runs a single CROW simulation and prints a report.
//
// Examples:
//
//	crowsim -mech crow-cache -workloads mcf
//	crowsim -mech crow-cache+ref -workloads mcf,lbm,gcc,povray -density 64
//	crowsim -mech tl-dram -workloads soplex -compare
//	crowsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"crowdram/crow"
)

func main() {
	var (
		mech     = flag.String("mech", "baseline", "mechanism: baseline, crow-cache, crow-ref, crow-cache+ref, crow-hammer, ideal-cache, ideal-norefresh, tl-dram, salp, raidr, chargecache")
		loads    = flag.String("workloads", "mcf", "comma-separated workload names, one per core (1-4)")
		traces   = flag.String("traces", "", "comma-separated trace files (tracegen format), one per core; overrides -workloads")
		copyRows = flag.Int("copyrows", 8, "copy rows per subarray (CROW-n)")
		density  = flag.Int("density", 8, "DRAM chip density in Gbit: 8, 16, 32, 64")
		llcMiB   = flag.Int("llc", 8, "LLC capacity in MiB")
		insts    = flag.Int64("insts", 500_000, "measured instructions per core")
		warmup   = flag.Int64("warmup", 0, "warmup instructions per core (default insts/10)")
		seed     = flag.Int64("seed", 1, "random seed")
		prefetch = flag.Bool("prefetch", false, "enable the stride prefetcher")
		tlNear   = flag.Int("tl-near", 8, "TL-DRAM near-segment rows")
		salpSub  = flag.Int("salp", 128, "SALP subarrays per bank")
		salpOpen = flag.Bool("salp-open", false, "SALP open-page policy")
		hammerT  = flag.Int("hammer-threshold", 2048, "RowHammer detection threshold")
		share    = flag.Int("table-share", 1, "CROW-table sharing group (Section 6.1)")
		perBank  = flag.Bool("refpb", false, "use LPDDR4 per-bank refresh")
		postpone = flag.Int("postpone", 0, "elastic refresh postponement limit (JEDEC allows 8)")
		compare  = flag.Bool("compare", false, "also run the baseline and report speedup/energy savings")
		asJSON   = flag.Bool("json", false, "emit the report as JSON")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(crow.Workloads(), "\n"))
		return
	}

	opts := crow.Options{
		Mechanism:       crow.Mechanism(*mech),
		Workloads:       strings.Split(*loads, ","),
		TraceFiles:      splitNonEmpty(*traces),
		CopyRows:        *copyRows,
		DensityGbit:     *density,
		LLCBytes:        int64(*llcMiB) << 20,
		MeasureInsts:    *insts,
		WarmupInsts:     *warmup,
		Seed:            *seed,
		Prefetch:        *prefetch,
		TLDRAMNearRows:  *tlNear,
		SALPSubarrays:   *salpSub,
		SALPOpenPage:    *salpOpen,
		HammerThreshold: *hammerT,
		TableShareGroup: *share,
		PerBankRefresh:  *perBank,
		RefreshPostpone: *postpone,
	}

	if *compare {
		c, err := crow.Compare(opts)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emitJSON(c)
			return
		}
		printReport(c.Mech)
		fmt.Printf("\nvs baseline:\n")
		fmt.Printf("  weighted speedup:   %+.1f%%\n", 100*c.Speedup)
		fmt.Printf("  DRAM energy ratio:  %.3f (%+.1f%%)\n", c.EnergyRatio, 100*(c.EnergyRatio-1))
		return
	}

	rep, err := crow.Run(opts)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		emitJSON(rep)
		return
	}
	printReport(rep)
}

func printReport(r crow.Report) {
	fmt.Printf("mechanism: %s\n", r.Mechanism)
	for i := range r.IPC {
		fmt.Printf("  core %d: IPC %.3f, LLC MPKI %.2f\n", i, r.IPC[i], r.MPKI[i])
	}
	fmt.Printf("DRAM commands: ACT %d, ACT-t %d, ACT-c %d, RD %d, WR %d, REF %d\n",
		r.ACT, r.ACTt, r.ACTc, r.RD, r.WR, r.REF)
	fmt.Printf("row-buffer hit rate: %.1f%%, read latency avg %.1f ns (p50 <= %.0f, p99 <= %.0f)\n",
		100*r.RowHitRate, r.AvgReadLatencyNs, r.ReadLatencyP50Ns, r.ReadLatencyP99Ns)
	if r.Hits+r.Misses > 0 {
		fmt.Printf("CROW-table: hit rate %.1f%% (%d hits, %d misses), %d copies, %d evictions, %d restores\n",
			100*r.CROWTableHitRate, r.Hits, r.Misses, r.Copies, r.Evictions, r.RestoreOps)
	}
	if r.RefRemaps > 0 {
		fmt.Printf("CROW-ref: %d activations redirected to copy rows\n", r.RefRemaps)
	}
	if r.HammerRemaps > 0 {
		fmt.Printf("RowHammer: %d victim rows remapped\n", r.HammerRemaps)
	}
	e := r.EnergyNJ
	fmt.Printf("DRAM energy: %.0f nJ (act/pre %.0f, rd %.0f, wr %.0f, refresh %.0f, background %.0f)\n",
		e.Total(), e.ActPre, e.Read, e.Write, e.Refresh, e.Background)
	if r.ChipAreaOverhead > 0 {
		fmt.Printf("chip area overhead: %.2f%%, capacity overhead: %.2f%%\n",
			100*r.ChipAreaOverhead, 100*r.CapacityOverhead)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crowsim:", err)
	os.Exit(1)
}
