package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceOutEndToEnd is the observability acceptance test: a verified
// CROW-cache run with -trace-out produces valid Chrome trace-event JSON
// containing CROW's new activate commands (ACT-c copies, ACT-t dual
// activations) on per-bank tracks — with the correctness oracle attached to
// the very same run, proving tracer and oracle coexist on the fan-out.
func TestTraceOutEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-mech", "crow-cache", "-workloads", "mcf",
		"-insts", "20000", "-warmup", "2000",
		"-verify", "-trace-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run failed: %v\nstderr: %s", err, stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("no trace written: %v", err)
	}
	var trace struct {
		OtherData struct {
			Recorded int64 `json:"recorded"`
			Dropped  int64 `json:"dropped"`
		} `json:"otherData"`
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.OtherData.Recorded == 0 {
		t.Fatal("trace recorded no events")
	}

	// Index the per-bank track names and collect command-event names/tracks.
	threadName := map[[2]int]string{} // {pid,tid} -> name
	cmdTracks := map[string][][2]int{}
	for _, e := range trace.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threadName[[2]int{e.Pid, e.Tid}] = e.Args.Name
		case e.Ph == "X" && e.Cat == "cmd":
			cmdTracks[e.Name] = append(cmdTracks[e.Name], [2]int{e.Pid, e.Tid})
		}
	}
	for _, want := range []string{"ACT-c", "ACT-t"} {
		tracks, ok := cmdTracks[want]
		if !ok {
			t.Fatalf("no %s events in trace; commands seen: %v", want, keys(cmdTracks))
		}
		name := threadName[tracks[0]]
		if !strings.Contains(name, "bank") {
			t.Errorf("%s event on track %v named %q, want a per-bank track", want, tracks[0], name)
		}
	}
	banks := map[string]bool{}
	for _, name := range threadName {
		if strings.Contains(name, "bank") {
			banks[name] = true
		}
	}
	if len(banks) < 2 {
		t.Errorf("only %d bank tracks named, want several: %v", len(banks), banks)
	}

	// The verified run reported a clean oracle.
	if !strings.Contains(stdout.String(), "verification") {
		t.Errorf("report does not mention verification:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "events") {
		t.Errorf("stderr missing the trace summary line: %s", stderr.String())
	}
}

// TestTraceOutRejectsCompare: -trace-out traces a single run and must refuse
// -compare rather than silently attributing events to the wrong run.
func TestTraceOutRejectsCompare(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-compare", "-trace-out", filepath.Join(t.TempDir(), "x.json"),
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-compare") {
		t.Fatalf("err = %v, want a -trace-out/-compare rejection", err)
	}
}

// TestTraceCapMustBePositive: a non-positive ring capacity is a usage error,
// not a panic deep in the tracer.
func TestTraceCapMustBePositive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-trace-out", filepath.Join(t.TempDir(), "x.json"), "-trace-cap", "0",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "trace-cap") {
		t.Fatalf("err = %v, want a -trace-cap validation error", err)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestShardsFlagByteIdentical runs the same verified simulation serially and
// with -shards 8 through the CLI entry point and requires byte-identical
// stdout — the user-facing face of the parallel tick loop's determinism
// contract.
func TestShardsFlagByteIdentical(t *testing.T) {
	out := func(extra ...string) string {
		var stdout, stderr bytes.Buffer
		args := append([]string{
			"-standard", "hbm2", "-mech", "crow-cache",
			"-workloads", "mcf,lbm", "-insts", "10000", "-verify",
		}, extra...)
		if err := run(context.Background(), args, &stdout, &stderr); err != nil {
			t.Fatalf("run %v failed: %v\nstderr: %s", extra, err, stderr.String())
		}
		return stdout.String()
	}
	serial := out()
	sharded := out("-shards", "8")
	if serial != sharded {
		t.Errorf("-shards 8 output diverged from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
			serial, sharded)
	}
}

// TestShardsMustBeNonNegative: a negative shard count is a usage error.
func TestShardsMustBeNonNegative(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-shards", "-2"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("err = %v, want a -shards validation error", err)
	}
}

// TestLLCBytesFlagResolution pins the two-flag LLC sizing contract:
// -llc-kib, when positive, overrides the MiB-granular -llc (the RowHammer
// lab needs a 64 KiB cache no MiB value can express).
func TestLLCBytesFlagResolution(t *testing.T) {
	cases := []struct {
		mib, kib int
		want     int64
	}{
		{8, 0, 8 << 20},   // default: -llc alone
		{8, 64, 64 << 10}, // -llc-kib wins
		{1, 2048, 2 << 20},
		{3, -1, 3 << 20}, // non-positive KiB falls back to MiB
	}
	for _, c := range cases {
		if got := llcBytes(c.mib, c.kib); got != c.want {
			t.Errorf("llcBytes(%d, %d) = %d, want %d", c.mib, c.kib, got, c.want)
		}
	}
}
