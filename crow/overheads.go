package crow

import (
	"crowdram/internal/circuit"
	"crowdram/internal/core"
	"crowdram/internal/dram"
	"crowdram/internal/retention"
)

// Overheads reports the hardware cost of a CROW-n configuration
// (Section 6 of the paper).
type Overheads struct {
	CopyRows int
	// CROWTableKB is the per-channel CROW-table storage in decimal
	// kilobytes (Equations 3–4; 11.3 KB for CROW-8).
	CROWTableKB float64
	// CROWTableAccessNs is the table lookup latency (0.14 ns).
	CROWTableAccessNs float64
	// DecoderArea is the copy-row decoder area in µm² (9.6 for CROW-8).
	DecoderArea float64
	// DecoderOverhead is the relative row-decoder growth (4.8 %).
	DecoderOverhead float64
	// ChipArea is the whole-chip area overhead (0.48 %).
	ChipArea float64
	// Capacity is the DRAM storage reserved for copy rows (1.6 %).
	Capacity float64
	// MRAPowerFactor is the two-row activation power relative to a
	// single-row ACT (1.058).
	MRAPowerFactor float64
}

// OverheadsFor computes the Section 6 cost model for n copy rows per
// subarray under the Table 2 geometry.
func OverheadsFor(n int) Overheads {
	g := dram.Std(n)
	return Overheads{
		CopyRows:          n,
		CROWTableKB:       core.StorageKB(g, 1),
		CROWTableAccessNs: core.AccessTimeNs(g),
		DecoderArea:       circuit.CopyDecoderArea(n),
		DecoderOverhead:   circuit.DecoderOverhead(n),
		ChipArea:          circuit.ChipOverhead(n),
		Capacity:          circuit.CapacityOverhead(n, g.RowsPerSubarray),
		MRAPowerFactor:    circuit.MRAPowerFactor(2),
	}
}

func overheadFor(copyRows int) float64 { return circuit.ChipOverhead(copyRows) }

// WeakRowProbabilities evaluates the paper's Equations 1 and 2: the
// probability that a row is weak at the given bit error rate, and that any
// subarray in the Table 2 chip exceeds n weak rows.
func WeakRowProbabilities(ber float64, maxCopyRows int) (pRow float64, pAny []float64) {
	g := dram.Std(0)
	cells := g.RowBytes * 8
	pRow = retention.PWeakRow(ber, cells)
	subarrays := g.Banks * g.SubarraysPerBank()
	for n := 1; n <= maxCopyRows; n++ {
		pAny = append(pAny, retention.PAnySubarrayMoreThan(n, g.RowsPerSubarray, pRow, subarrays))
	}
	return pRow, pAny
}
