package crow

import "testing"

// TestVerifyAllMechanismsClean runs every mechanism at reduced scale with
// the correctness oracle attached: the shadow data memory, refresh-deadline
// monitor, and scheduler/accounting checks must all stay silent.
func TestVerifyAllMechanismsClean(t *testing.T) {
	mechs := []Mechanism{
		Baseline, Cache, Ref, CacheRef, Hammer,
		IdealCache, IdealNoRefresh, TLDRAM, SALP, RAIDR, ChargeCache,
	}
	for _, m := range mechs {
		t.Run(string(m), func(t *testing.T) {
			rep, err := Run(Options{
				Mechanism:    m,
				Workloads:    []string{"mcf", "lbm"},
				Verify:       true,
				MeasureInsts: 20_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violations != 0 {
				t.Fatalf("oracle violations: %v\nsamples: %v",
					rep.ViolationCounts, rep.ViolationSamples)
			}
		})
	}
}
