package crow

import (
	"bytes"
	"encoding/json"
	"fmt"

	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
	"crowdram/internal/hammer"
	"crowdram/internal/trace"
)

// Mechanisms returns every selectable mechanism in declaration order.
func Mechanisms() []Mechanism {
	return []Mechanism{Baseline, Cache, Ref, CacheRef, Hammer, IdealCache,
		IdealNoRefresh, TLDRAM, SALP, RAIDR, ChargeCache}
}

// Standards returns the registered memory-standard names, sorted.
func Standards() []string { return dram.StandardNames() }

// Schedulers returns the registered scheduler names, sorted.
func Schedulers() []string { return ctrl.SchedulerNames() }

// RowPolicies returns the registered row-policy names, sorted.
func RowPolicies() []string { return ctrl.RowPolicyNames() }

// Mappings returns the registered address-mapping names, sorted.
func Mappings() []string { return dram.MappingNames() }

// Mitigations returns the registered RowHammer mitigation names, sorted.
func Mitigations() []string { return hammer.MitigationNames() }

// Translations returns the selectable virtual-to-physical translation modes.
func Translations() []string { return []string{"hash", "rowstripe"} }

// DecodeOptions parses Options from JSON strictly: an unknown field is an
// error, not silence — a remote caller who misspells "CopyRows" gets a clear
// rejection instead of a simulation of something else. The decoded value is
// additionally validated (see Validate). It is the deserializer behind
// crowserve's POST /v1/jobs.
func DecodeOptions(data []byte) (Options, error) {
	var o Options
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&o); err != nil {
		return Options{}, fmt.Errorf("crow: invalid options: %w", err)
	}
	// A second document in the payload is as suspect as an unknown field.
	if dec.More() {
		return Options{}, fmt.Errorf("crow: invalid options: trailing data after JSON document")
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Validate reports whether the options describe a runnable simulation,
// applying the same checks Run performs at build time — mechanism, density,
// workload names and counts — plus sign checks on the numeric knobs, so
// callers accepting Options over the wire can reject bad requests before
// queueing them.
func (o Options) Validate() error {
	d := o.withDefaults()
	known := false
	for _, m := range Mechanisms() {
		if d.Mechanism == m {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("crow: unknown mechanism %q", d.Mechanism)
	}
	switch d.DensityGbit {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("crow: unsupported density %d Gbit (want 8, 16, 32 or 64)", d.DensityGbit)
	}
	if _, err := dram.StandardByName(d.Standard); err != nil {
		return fmt.Errorf("crow: %w", err)
	}
	if _, err := ctrl.SchedulerByName(d.Scheduler); err != nil {
		return fmt.Errorf("crow: %w", err)
	}
	if _, err := ctrl.RowPolicyByName(d.RowPolicy); err != nil {
		return fmt.Errorf("crow: %w", err)
	}
	if err := dram.CheckMapping(d.Mapping); err != nil {
		return fmt.Errorf("crow: %w", err)
	}
	if d.Mechanism == SALP && d.Standard != "lpddr4" {
		return fmt.Errorf("crow: salp supports only the lpddr4 standard, got %q", d.Standard)
	}
	if err := hammer.CheckMitigation(d.Mitigation); err != nil {
		return fmt.Errorf("crow: %w", err)
	}
	if d.Mitigation == "crow-hammer" {
		switch d.Mechanism {
		case Cache, Ref, CacheRef, Hammer:
		default:
			return fmt.Errorf("crow: mitigation crow-hammer requires a crow-* mechanism, got %q", d.Mechanism)
		}
	}
	if d.Mitigation == "para" && (d.ParaPerMille <= 0 || d.ParaPerMille > 1000) {
		return fmt.Errorf("crow: ParaPerMille must be in (0, 1000], got %d", d.ParaPerMille)
	}
	if d.Mitigation == "refresh-scale" && d.RefreshScale < 2 {
		return fmt.Errorf("crow: RefreshScale must be >= 2, got %d", d.RefreshScale)
	}
	switch d.Translation {
	case "hash", "rowstripe":
	default:
		return fmt.Errorf("crow: unknown translation %q (want hash or rowstripe)", d.Translation)
	}
	if len(o.TraceFiles) > 0 {
		if len(o.TraceFiles) > 4 {
			return fmt.Errorf("crow: want 1-4 trace files, got %d", len(o.TraceFiles))
		}
	} else {
		if len(d.Workloads) < 1 || len(d.Workloads) > 4 {
			return fmt.Errorf("crow: want 1-4 workloads, got %d", len(d.Workloads))
		}
		for _, name := range d.Workloads {
			if _, err := trace.ByName(name); err != nil {
				return err
			}
		}
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"CopyRows", int64(d.CopyRows)},
		{"WeakRowsPerSubarray", int64(d.WeakRowsPerSubarray)},
		{"LLCBytes", d.LLCBytes},
		{"TLDRAMNearRows", int64(d.TLDRAMNearRows)},
		{"SALPSubarrays", int64(d.SALPSubarrays)},
		{"HammerThreshold", int64(d.HammerThreshold)},
		{"TableShareGroup", int64(d.TableShareGroup)},
		{"ControllerCap", int64(d.ControllerCap)},
		{"RefreshPostpone", int64(d.RefreshPostpone)},
		{"MeasureInsts", d.MeasureInsts},
		{"WarmupInsts", d.WarmupInsts},
		{"MaxMeasureCycles", d.MaxMeasureCycles},
		{"ParaPerMille", int64(d.ParaPerMille)},
		{"RefreshScale", int64(d.RefreshScale)},
		{"FlipHCFirst", int64(d.FlipHCFirst)},
		{"FlipJitterPct", int64(d.FlipJitterPct)},
		{"FlipPatternPct", int64(d.FlipPatternPct)},
	} {
		if f.v < 0 {
			return fmt.Errorf("crow: %s must be non-negative, got %d", f.name, f.v)
		}
	}
	if d.RefreshWindowMS < 0 || d.RowTimeoutNs < 0 {
		return fmt.Errorf("crow: refresh window and row timeout must be non-negative")
	}
	return nil
}
