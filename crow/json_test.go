package crow

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestOptionsJSONRoundTrip: marshal → unmarshal must reproduce the value and
// its canonical key, for representative non-default configurations. The
// service depends on this — Options travel over the wire and must land in
// the same cache entry they would hit locally.
func TestOptionsJSONRoundTrip(t *testing.T) {
	cases := []Options{
		{},
		{Mechanism: Cache, Workloads: []string{"mcf", "lbm"}, CopyRows: 16},
		{Mechanism: CacheRef, Workloads: []string{"gcc"}, DensityGbit: 32,
			RefreshWindowMS: 128, Prefetch: true, PerBankRefresh: true,
			RefreshPostpone: 8, TableShareGroup: 4, Verify: true},
		{Mechanism: SALP, SALPSubarrays: 64, SALPOpenPage: true, Seed: 7},
		{Mechanism: TLDRAM, TLDRAMNearRows: 16, LLCBytes: 16 << 20,
			MeasureInsts: 123_456, WarmupInsts: 12_000},
		{Workloads: []string{"hammer-double"}, Translation: "rowstripe",
			Mitigation: "para", ParaPerMille: 100, FlipHCFirst: 512,
			FlipJitterPct: 25, FlipBlastPct: 30, FlipPatternPct: 75,
			MaxMeasureCycles: 10_000_000},
		{Mechanism: Hammer, Workloads: []string{"hammer-many", "mcf"},
			Mitigation: "crow-hammer", HammerThreshold: 128,
			Translation: "rowstripe", FlipHCFirst: 1024},
	}
	for i, o := range cases {
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		got, err := DecodeOptions(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, o) {
			t.Errorf("case %d: round trip changed options:\n  in  %+v\n  out %+v", i, o, got)
		}
		if got.Key() != o.Key() {
			t.Errorf("case %d: round trip changed the canonical key", i)
		}
	}
}

// TestKeyStableAcrossDecode: a defaulted field spelled explicitly in the
// wire form must land in the same cache entry as the zero form.
func TestKeyStableAcrossDecode(t *testing.T) {
	zero, err := DecodeOptions([]byte(`{"Workloads":["mcf"]}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := DecodeOptions([]byte(
		`{"Workloads":["mcf"],"CopyRows":8,"DensityGbit":8,"RefreshWindowMS":64,"Seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if zero.Key() != explicit.Key() {
		t.Error("explicit defaults must share the zero form's key")
	}
}

func TestDecodeOptionsRejectsUnknownFields(t *testing.T) {
	for _, payload := range []string{
		`{"CopyRowz": 8}`,                    // misspelled knob
		`{"Workloads":["mcf"],"extra":true}`, // stray field
		`{"Workloads":["mcf"]}{"x":1}`,       // trailing document
		`{"Workloads":"mcf"}`,                // wrong type
		`not json`,
		`{"Mitigatoin":"para"}`,     // misspelled mitigation knob
		`{"FlipHCFirstt":512}`,      // misspelled flip-model knob
		`{"Mitigation":"parra"}`,    // right knob, unknown mitigation
		`{"Mitigation":"PARA"}`,     // registry names are lower-case
		`{"Translation":"stripes"}`, // unknown translation mode
	} {
		if _, err := DecodeOptions([]byte(payload)); err == nil {
			t.Errorf("DecodeOptions(%q) must fail", payload)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []struct {
		name string
		o    Options
		want string
	}{
		{"mechanism", Options{Mechanism: "warp-drive"}, "unknown mechanism"},
		{"density", Options{DensityGbit: 12}, "unsupported density"},
		{"workload name", Options{Workloads: []string{"nope"}}, "unknown app"},
		{"workload count", Options{Workloads: []string{"mcf", "mcf", "mcf", "mcf", "mcf"}}, "1-4 workloads"},
		{"trace count", Options{TraceFiles: []string{"a", "b", "c", "d", "e"}}, "1-4 trace files"},
		{"negative insts", Options{MeasureInsts: -1}, "non-negative"},
		{"negative copyrows", Options{CopyRows: -2}, "non-negative"},
		{"negative window", Options{RefreshWindowMS: -5}, "non-negative"},
		{"standard", Options{Standard: "ddr9"}, `unknown standard "ddr9" (registered: ddr4, ddr5, hbm2, lpddr4, lpddr5)`},
		{"scheduler", Options{Scheduler: "rr"}, `unknown scheduler "rr" (registered: fcfs, frfcfs, frfcfs-cap)`},
		{"row policy", Options{RowPolicy: "adaptive"}, `unknown row policy "adaptive" (registered: closed, open, timeout)`},
		{"mapping", Options{Mapping: "colmajor"}, `unknown mapping "colmajor" (registered: robarococh, rocobarach)`},
		{"salp standard", Options{Mechanism: SALP, Standard: "ddr5"}, "salp supports only the lpddr4 standard"},
		{"mitigation name", Options{Mitigation: "parra"},
			`unknown mitigation "parra" (have [crow-hammer none para refresh-scale])`},
		{"crow-hammer mechanism", Options{Mitigation: "crow-hammer"},
			"crow-hammer requires a crow-* mechanism"},
		{"para probability", Options{Mitigation: "para", ParaPerMille: 1001}, "ParaPerMille"},
		{"refresh divisor", Options{Mitigation: "refresh-scale", RefreshScale: 1}, "RefreshScale"},
		{"translation", Options{Translation: "striped"}, "unknown translation"},
		{"negative hcfirst", Options{FlipHCFirst: -1}, "non-negative"},
		{"negative cap", Options{MaxMeasureCycles: -1}, "non-negative"},
	}
	for _, c := range bad {
		err := c.o.Validate()
		if err == nil {
			t.Errorf("%s: Validate must fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	good := []Options{
		{},
		{Mechanism: Hammer, Workloads: []string{"mcf", "lbm", "gcc", "soplex"}},
		{TraceFiles: []string{"/tmp/a.trace"}}, // existence checked at run time
		{Standard: "ddr5", Scheduler: "fcfs", RowPolicy: "closed", Mapping: "rocobarach"},
		{Mechanism: Cache, Standard: "hbm2"},
		{Standard: "ddr4"},
		{Workloads: []string{"hammer-double"}, Translation: "rowstripe",
			Mitigation: "para", ParaPerMille: 1, FlipHCFirst: 512},
		{Mechanism: Hammer, Mitigation: "crow-hammer", HammerThreshold: 128},
		{Mitigation: "refresh-scale", RefreshScale: 32, MaxMeasureCycles: 1},
		// FlipBlastPct is deliberately signless: negative values clamp to 0.
		{FlipBlastPct: -1},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
}
