package crow

import (
	"reflect"
	"testing"
)

// perturb returns a value of the same kind as v that differs from it and
// from the field's default, so the key must change when the field does.
func perturb(t *testing.T, field string, v reflect.Value) reflect.Value {
	t.Helper()
	switch v.Kind() {
	case reflect.String:
		return reflect.ValueOf("zz-perturbed").Convert(v.Type())
	case reflect.Bool:
		return reflect.ValueOf(true)
	case reflect.Int, reflect.Int64:
		return reflect.ValueOf(int64(777)).Convert(v.Type())
	case reflect.Float64:
		return reflect.ValueOf(77.5).Convert(v.Type())
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.String {
			return reflect.ValueOf([]string{"zz-a", "zz-b"}).Convert(v.Type())
		}
	}
	t.Fatalf("field %s: no perturbation for kind %v — extend perturb()", field, v.Kind())
	return reflect.Value{}
}

// TestKeyDistinguishesEveryField flips every Options field, one at a time,
// and requires the key to change. Because it enumerates fields by
// reflection, adding a field to Options that the key failed to cover would
// fail here — the collision class of the old hand-formatted key, which
// omitted TraceFiles entirely.
func TestKeyDistinguishesEveryField(t *testing.T) {
	base := Options{Mechanism: Cache, Workloads: []string{"mcf", "lbm"}}
	baseKey := base.Key()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		mod := base
		mv := reflect.ValueOf(&mod).Elem().Field(i)
		mv.Set(perturb(t, f.Name, mv))
		if mod.Key() == baseKey {
			t.Errorf("changing %s must change the key", f.Name)
		}
	}
}

func TestKeySliceDelimiting(t *testing.T) {
	// The %v formatting of the old key could not distinguish these.
	a := Options{Workloads: []string{"mcf lbm"}, MeasureInsts: 1000}
	b := Options{Workloads: []string{"mcf", "lbm"}, MeasureInsts: 1000}
	if a.Key() == b.Key() {
		t.Error("slice element boundaries must be unambiguous in the key")
	}
}

func TestKeyCanonicalOverDefaults(t *testing.T) {
	// Explicitly spelling out a default must hit the same cache entry as
	// leaving it zero.
	a := Options{Workloads: []string{"mcf"}}
	b := Options{Workloads: []string{"mcf"}, CopyRows: 8, DensityGbit: 8,
		RefreshWindowMS: 64, LLCBytes: 8 << 20, Seed: 1}
	if a.Key() != b.Key() {
		t.Error("defaulted and explicit-default options must share a key")
	}
	if a.Key() != a.Key() {
		t.Error("the key must be deterministic")
	}
}
