// Package crow is the public API of the CROW reproduction: a configurable
// cycle-accurate simulation of the Copy-Row DRAM substrate (Hassan et al.,
// ISCA 2019) together with the mechanisms built on it (CROW-cache, CROW-ref,
// RowHammer mitigation) and the baselines the paper compares against
// (conventional DRAM, TL-DRAM, SALP-MASA).
//
// The 30-second tour:
//
//	report, err := crow.Run(crow.Options{
//		Mechanism: crow.CacheRef,
//		Workloads: []string{"mcf", "lbm", "povray", "gcc"},
//	})
//
// runs a four-core simulation of the combined CROW-cache + CROW-ref
// configuration and reports IPC, DRAM energy, and CROW-table statistics.
// Compare runs a mechanism against the conventional-DRAM baseline and
// computes weighted speedup and energy savings the way the paper does.
package crow

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"crowdram/internal/chargecache"
	"crowdram/internal/core"
	"crowdram/internal/ctrl"
	"crowdram/internal/dram"
	"crowdram/internal/hammer"
	"crowdram/internal/metrics"
	"crowdram/internal/obs"
	"crowdram/internal/retention"
	"crowdram/internal/salp"
	"crowdram/internal/sim"
	"crowdram/internal/tldram"
	"crowdram/internal/trace"
)

// Mechanism selects the memory-system configuration to simulate.
type Mechanism string

// Available mechanisms.
const (
	// Baseline is conventional LPDDR4 (Table 2).
	Baseline Mechanism = "baseline"
	// Cache is CROW-cache (Section 4.1).
	Cache Mechanism = "crow-cache"
	// Ref is CROW-ref (Section 4.2).
	Ref Mechanism = "crow-ref"
	// CacheRef combines CROW-cache and CROW-ref (Section 8.3).
	CacheRef Mechanism = "crow-cache+ref"
	// Hammer is the RowHammer mitigation (Section 4.3).
	Hammer Mechanism = "crow-hammer"
	// IdealCache is a hypothetical CROW-cache with a 100 % hit rate.
	IdealCache Mechanism = "ideal-cache"
	// IdealNoRefresh additionally disables refresh entirely (Figure 14's
	// ideal).
	IdealNoRefresh Mechanism = "ideal-norefresh"
	// TLDRAM is the Tiered-Latency DRAM baseline [58].
	TLDRAM Mechanism = "tl-dram"
	// SALP is the SALP-MASA baseline [53].
	SALP Mechanism = "salp"
	// RAIDR is a retention-aware refresh baseline [64] (footnote 4): the
	// bulk of rows refresh at a doubled window while weak rows are
	// refreshed individually, with no copy rows.
	RAIDR Mechanism = "raidr"
	// ChargeCache is the related-work latency baseline [26]: rows
	// precharged within the last ~1 ms re-activate at reduced latency,
	// with the benefit expiring as cells leak.
	ChargeCache Mechanism = "chargecache"
)

// Options configures one simulation. The zero value of every field selects
// the paper's defaults (Table 2).
type Options struct {
	Mechanism Mechanism

	// Standard selects the memory standard: "lpddr4" (the paper's Table 2
	// device, the default), "ddr5" (DDR5-4800 with same-bank refresh), or
	// "hbm2" (an HBM2 stack with pseudo-channels). See crow.Standards().
	// CROW's mechanisms are standard-agnostic, so every mechanism runs on
	// every standard.
	Standard string
	// Scheduler selects the controller's request scheduler: "frfcfs-cap"
	// (Table 2's capped FR-FCFS, the default), "frfcfs" (uncapped), or
	// "fcfs". See crow.Schedulers().
	Scheduler string
	// RowPolicy selects the row-buffer management policy: "timeout"
	// (Table 2's 75 ns idle close, the default), "open", or "closed". See
	// crow.RowPolicies(). (SALP with SALPOpenPage defaults to "open".)
	RowPolicy string
	// Mapping selects the physical-address bit layout: "robarococh"
	// (row-streaming, the default) or "rocobarach" (bank-interleaved). See
	// crow.Mappings().
	Mapping string

	// Workloads names the application run on each core (1–4 entries);
	// see crow.Workloads() for the available names. Defaults to
	// {"mcf"}.
	Workloads []string
	// TraceFiles, when set, loads recorded traces (the tracegen format:
	// "<bubbles> <hex-addr> [W]" per line) instead of the synthetic
	// generators — one file per core. Overrides Workloads.
	TraceFiles []string

	// CopyRows per subarray (CROW-n). Default 8.
	CopyRows int
	// DensityGbit is the DRAM chip density: 8, 16, 32 or 64. Default 8.
	DensityGbit int
	// RefreshWindowMS is the baseline refresh window. Default 64 ms
	// (CROW-ref doubles it to 128 ms).
	RefreshWindowMS float64
	// WeakRowsPerSubarray is CROW-ref's assumed weak-row count
	// (Section 8.2 uses 3).
	WeakRowsPerSubarray int

	// LLCBytes is the shared LLC capacity. Default 8 MiB.
	LLCBytes int64
	// Prefetch enables the RPT-style stride prefetcher (Section 8.1.5).
	Prefetch bool

	// TLDRAMNearRows sets the TL-DRAM near-segment size. Default 8.
	TLDRAMNearRows int
	// SALPSubarrays sets SALP's subarrays per bank. Default 128.
	SALPSubarrays int
	// SALPOpenPage selects SALP's open-page row policy ("-O").
	SALPOpenPage bool
	// HammerThreshold is the activations-per-window detection threshold
	// for the RowHammer mitigation. Default 2048.
	HammerThreshold int
	// TableShareGroup shares one CROW-table entry set across this many
	// adjacent subarrays (Section 6.1's storage optimization; 1 =
	// dedicated sets).
	TableShareGroup int
	// FullRestore disables CROW-cache's early-terminated restoration as
	// an ablation (Section 4.1.3).
	FullRestore bool
	// Scrub enables idle-cycle restoration scrubbing (ablation; the
	// default lazy eviction policy makes it unnecessary).
	Scrub bool
	// EagerRestore uses the paper's literal Section 4.1.4 flow: a miss
	// that would evict a partially-restored pair first fully restores it
	// inline. The default skips the allocation instead (ablation).
	EagerRestore bool
	// ControllerCap is the FR-FCFS-Cap row-hit limit [81]. Default 16.
	ControllerCap int
	// RowTimeoutNs is the timeout row-buffer policy's idle threshold.
	// Default 75 ns (Table 2).
	RowTimeoutNs float64
	// PerBankRefresh uses LPDDR4's REFpb mode: one bank refreshes while
	// the others stay accessible.
	PerBankRefresh bool
	// RefreshPostpone allows deferring up to this many due refreshes
	// while demand is queued (JEDEC permits 8; elastic refresh [107]).
	RefreshPostpone int

	// Mitigation selects the RowHammer mitigation policy (registry in
	// internal/hammer): "none" (default), "para" (probabilistic neighbour
	// refresh), "refresh-scale" (multiplied refresh rate), or
	// "crow-hammer" (the paper's Section 4.3 victim remap; requires a
	// crow-* mechanism). See crow.Mitigations().
	Mitigation string
	// ParaPerMille is PARA's per-activation neighbour-refresh probability
	// in 1/1000ths. Default 5 (0.5%) when Mitigation is "para".
	ParaPerMille int
	// RefreshScale divides the refresh interval (4 = refresh 4x as
	// often). Default 4 when Mitigation is "refresh-scale".
	RefreshScale int

	// FlipHCFirst, when positive, attaches the RowHammer bit-flip model
	// (internal/hammer): the nominal aggressor activation count per side
	// at which the most vulnerable rows flip. Flips are reported in
	// Report.Flips. Zero disables the model.
	FlipHCFirst int
	// FlipJitterPct spreads per-row flip thresholds uniformly over
	// ±FlipJitterPct%. Default 25 when the flip model is on.
	FlipJitterPct int
	// FlipBlastPct is the ±2-neighbour dose as a percentage of the ±1
	// dose (HammerSim's blast radius). Default 25 when the flip model is
	// on; negative disables the ±2 radius.
	FlipBlastPct int
	// FlipPatternPct scales the flip threshold of the worst-data-pattern
	// half of the rows (a seeded proxy — the trace-driven simulator
	// carries no real data). Default 75 when the flip model is on.
	FlipPatternPct int

	// Translation selects the virtual-to-physical layout: "hash" (the
	// default scattered-frame model) or "rowstripe" (row adjacency
	// preserved, tenants striped row-by-row — the RowHammer lab's
	// layout; attacker workloads need it to aim at neighbouring rows).
	Translation string

	// Verify runs the cross-layer correctness oracle alongside the
	// simulation (shadow data memory, refresh-deadline monitor,
	// scheduler-legality and accounting checks; see internal/oracle). Any
	// violations are reported in Report.ViolationCounts. Roughly doubles
	// simulation time.
	Verify bool

	// MeasureInsts is the per-core instruction budget (default 500k;
	// the paper uses 200M — scale up for tighter numbers).
	MeasureInsts int64
	// WarmupInsts precede measurement (default MeasureInsts/10).
	WarmupInsts int64
	// MaxMeasureCycles, when positive, caps warmup and measurement at
	// that many CPU cycles each; runs that hit the cap report
	// Report.Truncated. It bounds configurations that cannot make forward
	// progress (e.g. a refresh-starved channel under -mitigation
	// refresh-scale at an extreme factor). 0 = the generous default cap.
	MaxMeasureCycles int64
	// Seed drives every stochastic component. Default 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Mechanism == "" {
		o.Mechanism = Baseline
	}
	if o.Standard == "" {
		o.Standard = "lpddr4"
	}
	if o.Scheduler == "" {
		o.Scheduler = ctrl.DefaultScheduler
	}
	if o.RowPolicy == "" {
		o.RowPolicy = ctrl.DefaultRowPolicy
		if o.Mechanism == SALP && o.SALPOpenPage {
			o.RowPolicy = "open"
		}
	}
	if o.Mapping == "" {
		o.Mapping = dram.DefaultMapping
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"mcf"}
	}
	if o.CopyRows == 0 {
		o.CopyRows = 8
	}
	if o.DensityGbit == 0 {
		o.DensityGbit = 8
	}
	if o.RefreshWindowMS == 0 {
		// The baseline retention window is a property of the standard:
		// 64 ms for LPDDR4, 32 ms for DDR5 and HBM2. Unknown standard
		// names keep the LPDDR4 default here and are rejected by Validate.
		o.RefreshWindowMS = 64
		if std, err := dram.StandardByName(o.Standard); err == nil {
			o.RefreshWindowMS = std.DefaultRefreshWindowMS()
		}
	}
	if o.WeakRowsPerSubarray == 0 {
		o.WeakRowsPerSubarray = 3
	}
	if o.LLCBytes == 0 {
		o.LLCBytes = 8 << 20
	}
	if o.TLDRAMNearRows == 0 {
		o.TLDRAMNearRows = 8
	}
	if o.SALPSubarrays == 0 {
		o.SALPSubarrays = 128
	}
	if o.HammerThreshold == 0 {
		o.HammerThreshold = 2048
	}
	if o.TableShareGroup == 0 {
		o.TableShareGroup = 1
	}
	if o.ControllerCap == 0 {
		o.ControllerCap = 16
	}
	if o.RowTimeoutNs == 0 {
		o.RowTimeoutNs = 75
	}
	if o.Mitigation == "" {
		o.Mitigation = "none"
	}
	if o.Mitigation == "para" && o.ParaPerMille == 0 {
		o.ParaPerMille = 5
	}
	if o.Mitigation == "refresh-scale" && o.RefreshScale == 0 {
		o.RefreshScale = 4
	}
	if o.FlipHCFirst > 0 {
		if o.FlipJitterPct == 0 {
			o.FlipJitterPct = 25
		}
		if o.FlipBlastPct == 0 {
			o.FlipBlastPct = 25
		}
		if o.FlipPatternPct == 0 {
			o.FlipPatternPct = 75
		}
	}
	if o.Translation == "" {
		o.Translation = "hash"
	}
	if o.MeasureInsts == 0 {
		o.MeasureInsts = 500_000
	}
	if o.WarmupInsts == 0 {
		o.WarmupInsts = o.MeasureInsts / 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Key returns a canonical, collision-safe identity for the simulation these
// options request: two Options values produce the same key if and only if
// they configure the same run (after defaulting). It is the memoization key
// of the experiment engine.
//
// The key is the JSON encoding of the fully-defaulted struct, which covers
// every exported field — including fields added in the future — and
// delimits slice elements unambiguously, unlike the hand-formatted %v key
// it replaces (which omitted fields such as TraceFiles and could not tell
// {"a b"} from {"a","b"}).
func (o Options) Key() string {
	b, err := json.Marshal(o.withDefaults())
	if err != nil {
		// Options contains only marshalable field types; keep it so.
		panic("crow: options not encodable: " + err.Error())
	}
	return string(b)
}

// Report is the outcome of one simulation.
type Report struct {
	Mechanism Mechanism
	// IPC and MPKI are per-core.
	IPC  []float64
	MPKI []float64

	// EnergyNJ is the DRAM energy breakdown over the measured interval.
	EnergyNJ EnergyBreakdown

	// CROWTableHitRate is the CROW-table (or TL-DRAM near-segment) hit
	// rate; zero for mechanisms without a table.
	CROWTableHitRate float64
	// Substrate statistics.
	Hits, Misses, Copies, Evictions, RestoreOps int64
	RefRemaps, HammerRemaps                     int64

	// RowRefreshOps counts RAIDR's row-granular weak-row refreshes.
	RowRefreshOps int64

	// RowHammer lab results (zero unless the flip model / a mitigation
	// ran; see Options.FlipHCFirst and Options.Mitigation).
	Mitigation string
	// Flips counts bit-flip-threshold crossings on exposed rows;
	// ShieldedFlips counts crossings absorbed by a CROW-hammer remap
	// (the data had been moved to a copy row).
	Flips, ShieldedFlips int64
	// FlipVictimRows is the number of distinct rows that flipped, and
	// FlipRows lists them (sorted by channel, rank, bank, row).
	FlipVictimRows int
	FlipRows       []hammer.FlipRow
	// FlipsByCore attributes flips to the core owning each victim row
	// (rowstripe translation only).
	FlipsByCore []int64
	// MitigationRefreshes counts PARA's neighbour-refresh activations.
	MitigationRefreshes int64

	// Command counts.
	ACT, ACTt, ACTc, RD, WR, REF int64
	RowHitRate                   float64
	Refreshes                    int64
	AvgReadLatencyNs             float64
	// ReadLatencyP50Ns / ReadLatencyP99Ns bound the demand read latency
	// distribution (log-bucket upper bounds).
	ReadLatencyP50Ns float64
	ReadLatencyP99Ns float64

	// Truncated reports that the simulation hit its cycle limit before
	// every core retired the requested instruction count; IPC then covers
	// only what was actually retired.
	Truncated bool

	// ChipAreaOverhead is the DRAM die overhead of the configuration.
	ChipAreaOverhead float64
	// CapacityOverhead is the DRAM storage the substrate reserves.
	CapacityOverhead float64

	// Violations is the correctness oracle's total violation count (always
	// zero unless Options.Verify was set — and, absent bugs, with it).
	Violations int64
	// ViolationCounts breaks Violations down by invariant class;
	// ViolationSamples holds the first violations verbatim.
	ViolationCounts  map[string]int64
	ViolationSamples []string
}

// EnergyBreakdown is the DRAM energy split in nanojoules.
type EnergyBreakdown struct {
	ActPre, Read, Write, Refresh, Background float64
}

// Total returns the total DRAM energy in nanojoules.
func (e EnergyBreakdown) Total() float64 {
	return e.ActPre + e.Read + e.Write + e.Refresh + e.Background
}

// Workloads returns the names of the available synthetic applications.
func Workloads() []string { return trace.Names(trace.Apps) }

// Run executes one simulation.
func Run(o Options) (Report, error) {
	return RunContext(context.Background(), o)
}

// shardsKey is the context key for a requested shard count.
type shardsKey struct{}

// WithShards returns a context asking RunContext to advance the simulated
// channels on up to n goroutines between synchronization epochs. The result
// is byte-identical to a serial run at any shard count, which is why the
// setting rides the context rather than Options: Options.Key() is the
// engine's memoization key, and a sharded run is the same simulation as a
// serial one. Values below 2 (and systems with a single channel) keep the
// serial tick loop.
func WithShards(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, shardsKey{}, n)
}

// ShardsFrom returns the shard count carried by ctx, or 0.
func ShardsFrom(ctx context.Context) int {
	n, _ := ctx.Value(shardsKey{}).(int)
	return n
}

// RunContext executes one simulation under a context: the simulation loop
// polls ctx and abandons the run with its error once canceled or past its
// deadline, so callers (the experiment engine, the CLIs) can enforce
// per-run timeouts and interrupt whole sweeps.
func RunContext(ctx context.Context, o Options) (Report, error) {
	o = o.withDefaults()
	cfg, mech, err := build(o)
	if err != nil {
		return Report{}, err
	}
	gens, err := generators(o)
	if err != nil {
		return Report{}, err
	}
	// Observability rides the context, not Options: Options.Key() is the
	// engine's memoization key, and a traced run is the same simulation as
	// an untraced one. The shard count rides along for the same reason —
	// a sharded run is byte-identical to a serial one, so both must share
	// a cache entry.
	cfg.Obs = obs.From(ctx)
	cfg.Shards = ShardsFrom(ctx)
	res, err := sim.New(cfg, mech, gens).RunContext(ctx)
	if err != nil {
		return Report{}, fmt.Errorf("crow: %s on %v: %w", o.Mechanism, o.Workloads, err)
	}
	return report(o, cfg, mech, res), nil
}

// Comparison is the outcome of Compare: a mechanism versus the baseline on
// identical workloads.
type Comparison struct {
	Base, Mech Report
	// Speedup is the weighted-speedup improvement (0.074 = +7.4 %),
	// computed with per-app alone-run IPCs on the baseline system as the
	// denominator [104].
	Speedup float64
	// EnergyRatio is mechanism energy / baseline energy (0.917 = −8.3 %).
	EnergyRatio float64
}

// Compare runs the baseline and the given configuration on the same
// workloads and reports weighted speedup and relative DRAM energy.
//
// It is the sequential composition of CompareRuns and CompareFrom; callers
// with an execution engine run CompareRuns' simulations concurrently and
// assemble the result themselves.
func Compare(o Options) (Comparison, error) {
	runs := CompareRuns(o)
	reps := make([]Report, len(runs))
	for i, ro := range runs {
		rep, err := Run(ro)
		if err != nil {
			return Comparison{}, err
		}
		reps[i] = rep
	}
	return CompareFrom(o, reps)
}

// CompareRuns declares the independent simulations Compare needs, in order:
// the baseline on the full workload mix, the mechanism itself, and — for
// multi-core mixes — one alone-run baseline per application (the
// weighted-speedup denominators [104]). Every run is independent of the
// others, so they parallelize freely.
func CompareRuns(o Options) []Options {
	o = o.withDefaults()
	baseOpts := o
	baseOpts.Mechanism = Baseline
	runs := []Options{baseOpts, o}
	if len(o.Workloads) > 1 {
		for i, w := range o.Workloads {
			aOpts := baseOpts
			aOpts.Workloads = []string{w}
			aOpts.Seed = o.Seed + int64(i)
			runs = append(runs, aOpts)
		}
	}
	return runs
}

// CompareFrom assembles a Comparison from completed reports for
// CompareRuns(o), given in the same order.
func CompareFrom(o Options, reps []Report) (Comparison, error) {
	o = o.withDefaults()
	want := 2
	if len(o.Workloads) > 1 {
		want += len(o.Workloads)
	}
	if len(reps) != want {
		return Comparison{}, fmt.Errorf("crow: CompareFrom wants %d reports (see CompareRuns), got %d", want, len(reps))
	}
	base, mech := reps[0], reps[1]
	alone := make([]float64, len(o.Workloads))
	if len(o.Workloads) == 1 {
		alone[0] = base.IPC[0]
	} else {
		for i := range o.Workloads {
			alone[i] = reps[2+i].IPC[0]
		}
	}
	wsBase := metrics.WeightedSpeedup(base.IPC, alone)
	wsMech := metrics.WeightedSpeedup(mech.IPC, alone)
	return Comparison{
		Base:        base,
		Mech:        mech,
		Speedup:     metrics.Speedup(wsMech, wsBase),
		EnergyRatio: mech.EnergyNJ.Total() / base.EnergyNJ.Total(),
	}, nil
}

func build(o Options) (sim.Config, core.Mechanism, error) {
	density := dram.Density(o.DensityGbit)
	if _, ok := map[dram.Density]bool{dram.Density8Gb: true, dram.Density16Gb: true,
		dram.Density32Gb: true, dram.Density64Gb: true}[density]; !ok {
		return sim.Config{}, nil, fmt.Errorf("crow: unsupported density %d Gbit", o.DensityGbit)
	}
	std, err := dram.StandardByName(o.Standard)
	if err != nil {
		return sim.Config{}, nil, fmt.Errorf("crow: %w", err)
	}
	if o.Mechanism == SALP && o.Standard != "lpddr4" {
		// SALP's geometry override below rebuilds an LPDDR4-shaped device.
		return sim.Config{}, nil, fmt.Errorf("crow: salp supports only the lpddr4 standard, got %q", o.Standard)
	}
	copyRows := o.CopyRows
	switch o.Mechanism {
	case Baseline, TLDRAM, SALP, IdealCache, IdealNoRefresh, RAIDR, ChargeCache:
		copyRows = 0
	}
	cfg := sim.DefaultFor(std, copyRows, density, o.RefreshWindowMS)
	cfg.LLC.SizeBytes = o.LLCBytes
	cfg.Cap = o.ControllerCap
	cfg.Timeout = o.RowTimeoutNs
	cfg.PerBankRefresh = o.PerBankRefresh
	if o.PerBankRefresh {
		// The legacy boolean overrides the standard's default granularity
		// (LPDDR4's REFpb mode; on DDR5 it replaces same-bank refresh).
		cfg.Refresh = "perbank"
	}
	cfg.Scheduler = o.Scheduler
	cfg.RowPolicy = o.RowPolicy
	cfg.Mapping = o.Mapping
	cfg.Translation = o.Translation
	if o.FlipHCFirst > 0 {
		cfg.FlipModel = &hammer.Config{
			Seed:       o.Seed,
			HCFirst:    o.FlipHCFirst,
			JitterPct:  o.FlipJitterPct,
			BlastPct:   o.FlipBlastPct,
			PatternPct: o.FlipPatternPct,
		}
	}
	cfg.MaxPostpone = o.RefreshPostpone
	cfg.Prefetch = o.Prefetch
	cfg.Verify = o.Verify
	cfg.WarmupInsts = o.WarmupInsts
	cfg.MeasureInsts = o.MeasureInsts
	cfg.MaxMeasureCycles = o.MaxMeasureCycles
	cfg.Seed = o.Seed

	var mech core.Mechanism
	switch o.Mechanism {
	case Baseline:
		mech = &core.Baseline{T: cfg.T}
	case IdealCache:
		mech = &core.Ideal{T: cfg.T}
	case IdealNoRefresh:
		mech = &core.Ideal{T: cfg.T, NoRefresh: true}
	case ChargeCache:
		mech = chargecache.New(cfg.Channels, cfg.T, 128)
	case RAIDR:
		mech = core.NewRAIDR(cfg.Channels, cfg.Geo, cfg.T,
			retention.FixedProfile(retention.Geometry{
				Channels: cfg.Channels, Ranks: cfg.Geo.Ranks, Banks: cfg.Geo.Banks,
				Subarrays: cfg.Geo.SubarraysPerBank(), RowsPerSubarray: cfg.Geo.RowsPerSubarray,
			}, o.WeakRowsPerSubarray, o.Seed))
	case Cache, Ref, CacheRef, Hammer:
		m := core.NewCROWShared(cfg.Channels, cfg.Geo, cfg.T, o.TableShareGroup)
		m.FullRestore = o.FullRestore
		m.Scrub = o.Scrub
		m.EagerRestore = o.EagerRestore
		if o.Mechanism == Cache || o.Mechanism == CacheRef {
			m.Cache = true
		}
		if o.Mechanism == Ref || o.Mechanism == CacheRef {
			m.Ref = true
			m.LoadProfile(retention.FixedProfile(retention.Geometry{
				Channels: cfg.Channels, Ranks: cfg.Geo.Ranks, Banks: cfg.Geo.Banks,
				Subarrays: cfg.Geo.SubarraysPerBank(), RowsPerSubarray: cfg.Geo.RowsPerSubarray,
			}, o.WeakRowsPerSubarray, o.Seed))
		}
		if o.Mechanism == Hammer {
			m.HammerThreshold = o.HammerThreshold
		}
		mech = m
	case TLDRAM:
		mech = tldram.New(cfg.Channels, cfg.Geo, cfg.T, o.TLDRAMNearRows)
	case SALP:
		sc := salp.Config{SubarraysPerBank: o.SALPSubarrays, OpenPage: o.SALPOpenPage}
		cfg.Geo = sc.Geometry()
		cfg.T = dram.LPDDR4(density, o.RefreshWindowMS, cfg.Geo)
		cfg.MASA = true
		cfg.OpenPage = o.SALPOpenPage
		mech = &core.Baseline{T: cfg.T}
	default:
		return sim.Config{}, nil, fmt.Errorf("crow: unknown mechanism %q", o.Mechanism)
	}
	if o.Mitigation != "" && o.Mitigation != "none" {
		wrapped, err := hammer.NewMitigation(o.Mitigation, hammer.MitConfig{
			Channels:        cfg.Channels,
			Geo:             cfg.Geo,
			Seed:            o.Seed,
			ParaPerMille:    o.ParaPerMille,
			RefreshScale:    o.RefreshScale,
			HammerThreshold: o.HammerThreshold,
		}, mech)
		if err != nil {
			return sim.Config{}, nil, fmt.Errorf("crow: %w", err)
		}
		mech = wrapped
	}
	return cfg, mech, nil
}

func generators(o Options) ([]trace.Generator, error) {
	if len(o.TraceFiles) > 0 {
		if len(o.TraceFiles) > 4 {
			return nil, fmt.Errorf("crow: want 1-4 trace files, got %d", len(o.TraceFiles))
		}
		gens := make([]trace.Generator, len(o.TraceFiles))
		for i, path := range o.TraceFiles {
			f, err := os.Open(path)
			if err != nil {
				return nil, fmt.Errorf("crow: %v", err)
			}
			recs, err := trace.Parse(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			gens[i] = &trace.Replay{Records: recs}
		}
		return gens, nil
	}
	if len(o.Workloads) < 1 || len(o.Workloads) > 4 {
		return nil, fmt.Errorf("crow: want 1-4 workloads, got %d", len(o.Workloads))
	}
	gens := make([]trace.Generator, len(o.Workloads))
	for i, name := range o.Workloads {
		app, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		gens[i] = app.Gen(o.Seed + int64(i)*7919)
	}
	return gens, nil
}

func report(o Options, cfg sim.Config, mech core.Mechanism, res sim.Result) Report {
	r := Report{
		Mechanism: o.Mechanism,
		IPC:       res.IPC,
		MPKI:      res.MPKI,
		EnergyNJ: EnergyBreakdown{
			ActPre: res.Energy.ActPre, Read: res.Energy.Read, Write: res.Energy.Write,
			Refresh: res.Energy.Refresh, Background: res.Energy.Background,
		},
		ACT: res.DRAM.ACT, ACTt: res.DRAM.ACTTwo, ACTc: res.DRAM.ACTCopy,
		RD: res.DRAM.RD, WR: res.DRAM.WR, REF: res.DRAM.REF,
		Refreshes:        res.Ctrl.Refreshes,
		AvgReadLatencyNs: res.AvgReadNs,
		ReadLatencyP50Ns: res.ReadP50Ns,
		ReadLatencyP99Ns: res.ReadP99Ns,
		Truncated:        res.Truncated,
	}
	if o.Verify {
		r.Violations = res.Verify.Total()
		if len(res.Verify.Counts) > 0 {
			r.ViolationCounts = res.Verify.Counts
		}
		r.ViolationSamples = res.Verify.Samples
	}
	if hm := res.Ctrl.RowHits + res.Ctrl.RowMisses; hm > 0 {
		r.RowHitRate = float64(res.Ctrl.RowHits) / float64(hm)
	}
	if o.Mitigation != "" && o.Mitigation != "none" {
		r.Mitigation = o.Mitigation
	}
	r.Flips = res.Flips.Flips
	r.ShieldedFlips = res.Flips.Shielded
	r.FlipVictimRows = len(res.Flips.Rows)
	r.FlipRows = res.Flips.Rows
	r.FlipsByCore = res.FlipsByCore
	if sh, ok := mech.(*hammer.Shield); ok {
		r.MitigationRefreshes = sh.NeighborRefreshes()
	}
	switch m := core.Unwrap(mech).(type) {
	case *core.CROW:
		r.CROWTableHitRate = res.CROW.HitRate()
		r.Hits, r.Misses = res.CROW.Hits, res.CROW.Misses
		r.Copies, r.Evictions = res.CROW.Copies, res.CROW.Evictions
		r.RestoreOps = res.CROW.RestoreOps
		r.RefRemaps, r.HammerRemaps = res.CROW.RefRemaps, res.CROW.HamRemaps
		r.ChipAreaOverhead = overheadFor(o.CopyRows)
		r.CapacityOverhead = float64(o.CopyRows) / float64(cfg.Geo.RowsPerSubarray)
	case *tldram.Mechanism:
		r.CROWTableHitRate = m.Stats.HitRate()
		r.Hits, r.Misses, r.Copies = m.Stats.Hits, m.Stats.Misses, m.Stats.Copies
		r.ChipAreaOverhead = m.ChipAreaOverhead()
		r.CapacityOverhead = float64(o.TLDRAMNearRows) / float64(cfg.Geo.RowsPerSubarray)
	case *core.RAIDR:
		r.RowRefreshOps = m.RowRefreshes
	case *chargecache.Mechanism:
		r.CROWTableHitRate = m.HitRate()
		r.Hits, r.Misses = m.Hits, m.Misses
	case *core.Ideal:
		r.CROWTableHitRate = 1
	case *core.Baseline:
		if o.Mechanism == SALP {
			r.ChipAreaOverhead = salp.Config{SubarraysPerBank: o.SALPSubarrays}.ChipAreaOverhead()
		}
	}
	return r
}
