package crow

import "testing"

// These tests assert the qualitative relationships the paper's evaluation
// establishes between mechanisms, at a reduced scale.

func med(o Options) Options {
	o.MeasureInsts = 120_000
	o.WarmupInsts = 12_000
	return o
}

func TestTLDRAMFasterThanCROWCacheButCostlier(t *testing.T) {
	// Section 8.1.4: TL-DRAM-8's tiny near segment beats CROW-8 on raw
	// speedup but at ~14x the chip-area overhead.
	w := []string{"soplex"}
	base, err := Run(med(Options{Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	crow8, _ := Run(med(Options{Mechanism: Cache, Workloads: w}))
	tl8, _ := Run(med(Options{Mechanism: TLDRAM, Workloads: w}))
	if tl8.IPC[0] <= base.IPC[0] {
		t.Errorf("TL-DRAM must beat the baseline: %.3f vs %.3f", tl8.IPC[0], base.IPC[0])
	}
	if tl8.IPC[0] < crow8.IPC[0]*0.98 {
		t.Errorf("TL-DRAM-8 should be at least competitive with CROW-8: %.3f vs %.3f", tl8.IPC[0], crow8.IPC[0])
	}
	if tl8.ChipAreaOverhead < 10*crow8.ChipAreaOverhead {
		t.Errorf("TL-DRAM area (%.3f) must dwarf CROW's (%.3f)", tl8.ChipAreaOverhead, crow8.ChipAreaOverhead)
	}
}

func TestSALPOpenPageEnergyPenalty(t *testing.T) {
	// Section 8.1.4: SALP with the open-page policy keeps many local row
	// buffers active, paying heavy static power.
	w := []string{"soplex"}
	base, err := Run(med(Options{Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	salpO, _ := Run(med(Options{Mechanism: SALP, SALPOpenPage: true, Workloads: w}))
	if salpO.IPC[0] <= base.IPC[0] {
		t.Errorf("SALP-O must beat the baseline: %.3f vs %.3f", salpO.IPC[0], base.IPC[0])
	}
	if salpO.EnergyNJ.Background <= base.EnergyNJ.Background {
		t.Error("SALP open-page must increase background (static) energy")
	}
}

func TestCombinedBeatsEitherAlone(t *testing.T) {
	// Section 8.3: cache+ref outperforms each individual mechanism on
	// memory-intensive workloads at high density.
	o := med(Options{Workloads: []string{"mcf", "lbm", "libq", "milc"}, DensityGbit: 64})
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r Report) float64 {
		s := 0.0
		for i := range r.IPC {
			s += r.IPC[i] / base.IPC[i]
		}
		return s
	}
	oc := o
	oc.Mechanism = Cache
	or := o
	or.Mechanism = Ref
	ob := o
	ob.Mechanism = CacheRef
	cache, _ := Run(oc)
	ref, _ := Run(or)
	both, _ := Run(ob)
	// At reduced scale individual mixes carry ~1 % noise; the combined
	// configuration must clearly beat the weaker mechanism and stay at
	// least competitive with the stronger one (the paper's averages show
	// it strictly ahead of both).
	lesser := sum(ref)
	if sum(cache) < lesser {
		lesser = sum(cache)
	}
	if sum(both) <= lesser {
		t.Errorf("combined (%.3f) must beat the weaker mechanism (cache %.3f, ref %.3f)",
			sum(both), sum(cache), sum(ref))
	}
	if sum(both) < 0.98*sum(cache) || sum(both) < 0.98*sum(ref) {
		t.Errorf("combined (%.3f) must stay competitive with both (cache %.3f, ref %.3f)",
			sum(both), sum(cache), sum(ref))
	}
	if sum(both) <= 4.0 { // 4 cores at baseline IPC each
		t.Errorf("combined must beat the baseline: %.3f", sum(both))
	}
}

func TestRAIDRBehaviour(t *testing.T) {
	o := med(Options{Workloads: []string{"mcf"}, DensityGbit: 64})
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	or := o
	or.Mechanism = RAIDR
	raidr, err := Run(or)
	if err != nil {
		t.Fatal(err)
	}
	if raidr.IPC[0] <= base.IPC[0] {
		t.Errorf("RAIDR must beat the baseline under heavy refresh: %.3f vs %.3f", raidr.IPC[0], base.IPC[0])
	}
	if raidr.RowRefreshOps == 0 {
		t.Error("RAIDR must issue row-granular weak refreshes")
	}
	if raidr.ACTt != 0 || raidr.ACTc != 0 {
		t.Error("RAIDR uses no CROW commands")
	}
}

func TestShareGroupTradesSpeedForStorage(t *testing.T) {
	w := []string{"soplex"}
	dedicated, err := Run(med(Options{Mechanism: Cache, Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Run(med(Options{Mechanism: Cache, TableShareGroup: 8, Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	// Sharing must still work (hits happen) and not beat dedicated sets
	// by more than noise.
	if shared.Hits == 0 {
		t.Error("shared tables must still produce hits")
	}
	if shared.IPC[0] > dedicated.IPC[0]*1.03 {
		t.Errorf("sharing should not outperform dedicated sets: %.3f vs %.3f",
			shared.IPC[0], dedicated.IPC[0])
	}
}

func TestChargeCacheCapturesShortReuse(t *testing.T) {
	// A row-reuse workload must register ChargeCache hits, but CROW-cache
	// must capture at least as much locality (its entries do not expire).
	w := []string{"soplex"}
	cc, err := Run(med(Options{Mechanism: ChargeCache, Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	if cc.Hits == 0 {
		t.Fatal("ChargeCache must register highly-charged re-activations")
	}
	if cc.ACTt != 0 || cc.ACTc != 0 {
		t.Error("ChargeCache uses only conventional ACT commands")
	}
	if cc.ChipAreaOverhead != 0 {
		t.Error("ChargeCache is controller-only: no DRAM area cost")
	}
	crow8, err := Run(med(Options{Mechanism: Cache, Workloads: w}))
	if err != nil {
		t.Fatal(err)
	}
	if crow8.CROWTableHitRate < cc.CROWTableHitRate-0.05 {
		t.Errorf("CROW-cache hit rate (%.2f) should not trail ChargeCache's (%.2f)",
			crow8.CROWTableHitRate, cc.CROWTableHitRate)
	}
}

func TestPerBankRefreshEndToEnd(t *testing.T) {
	o := med(Options{Workloads: []string{"soplex"}, PerBankRefresh: true, DensityGbit: 64})
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes == 0 {
		t.Error("per-bank refreshes must occur")
	}
	if r.REF != 0 {
		t.Error("per-bank mode must not issue REFab")
	}
	if r.IPC[0] <= 0 {
		t.Error("run must complete")
	}
}
