package crow

import (
	"strings"
	"testing"
)

// TestRegistryHelpers pins the public registry listings the CLIs print.
func TestRegistryHelpers(t *testing.T) {
	for _, c := range []struct {
		kind string
		got  []string
		want string
	}{
		{"Standards", Standards(), "ddr4,ddr5,hbm2,lpddr4,lpddr5"},
		{"Mitigations", Mitigations(), "crow-hammer,none,para,refresh-scale"},
		{"Translations", Translations(), "hash,rowstripe"},
		{"Schedulers", Schedulers(), "fcfs,frfcfs,frfcfs-cap"},
		{"RowPolicies", RowPolicies(), "closed,open,timeout"},
		{"Mappings", Mappings(), "robarococh,rocobarach"},
	} {
		if got := strings.Join(c.got, ","); got != c.want {
			t.Errorf("%s() = %s, want %s", c.kind, got, c.want)
		}
	}
}

// TestStandardDefaultsInKey checks the per-standard defaulting that feeds
// the memoization key: the refresh window follows the standard, and the
// explicit policy names land in the canonical Options.
func TestStandardDefaultsInKey(t *testing.T) {
	for _, c := range []struct {
		std    string
		window string
	}{
		{"lpddr4", `"RefreshWindowMS":64`},
		{"ddr4", `"RefreshWindowMS":64`},
		{"ddr5", `"RefreshWindowMS":32`},
		{"hbm2", `"RefreshWindowMS":32`},
		{"lpddr5", `"RefreshWindowMS":32`},
	} {
		key := Options{Standard: c.std}.Key()
		if !strings.Contains(key, c.window) {
			t.Errorf("%s key %s lacks %s", c.std, key, c.window)
		}
	}
	// An explicit window wins over the standard default.
	if key := (Options{Standard: "ddr5", RefreshWindowMS: 128}).Key(); !strings.Contains(key, `"RefreshWindowMS":128`) {
		t.Errorf("explicit window lost: %s", key)
	}
	// The zero Options and the spelled-out defaults are the same run.
	explicit := Options{Standard: "lpddr4", Scheduler: "frfcfs-cap", RowPolicy: "timeout", Mapping: "robarococh"}
	if (Options{}).Key() != explicit.Key() {
		t.Error("zero Options and explicit defaults must share a key")
	}
}

// TestCrossStandardVerifyClean is the refactor's acceptance test: CROW-cache
// and CROW-ref run on DDR5 and HBM2 selected purely through crow.Options,
// with the cross-layer oracle attached and silent. The refresh-deadline
// monitor in particular retimes itself per standard (32 ms windows, REFsb /
// REFpb granularity), so a mis-threaded cycle time or refresh policy shows
// up here as violations.
func TestCrossStandardVerifyClean(t *testing.T) {
	for _, std := range []string{"ddr4", "ddr5", "hbm2", "lpddr5"} {
		for _, m := range []Mechanism{Cache, Ref} {
			t.Run(std+"/"+string(m), func(t *testing.T) {
				rep, err := Run(Options{
					Mechanism: m,
					Standard:  std,
					Workloads: []string{"mcf"},
					Verify:    true,
					// Long enough that even the fastest standard (DDR4's
					// 16 banks run mcf past IPC 1) crosses a few tREFI.
					MeasureInsts: 60_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Violations != 0 {
					t.Fatalf("oracle violations on %s: %v\nsamples: %v",
						std, rep.ViolationCounts, rep.ViolationSamples)
				}
				if len(rep.IPC) != 1 || rep.IPC[0] <= 0 {
					t.Fatalf("no forward progress: IPC %v", rep.IPC)
				}
				if rep.Refreshes == 0 {
					t.Fatal("no refreshes issued")
				}
			})
		}
	}
}

// TestNonDefaultPoliciesVerifyClean drives the policy registries end to end
// on every standard: an uncapped scheduler with an open-page policy and the
// bank-interleaved mapping must still satisfy the oracle.
func TestNonDefaultPoliciesVerifyClean(t *testing.T) {
	for _, std := range []string{"lpddr4", "ddr4", "ddr5", "hbm2", "lpddr5"} {
		t.Run(std, func(t *testing.T) {
			rep, err := Run(Options{
				Standard:     std,
				Scheduler:    "frfcfs",
				RowPolicy:    "open",
				Mapping:      "rocobarach",
				Workloads:    []string{"lbm"},
				Verify:       true,
				MeasureInsts: 20_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violations != 0 {
				t.Fatalf("oracle violations: %v\nsamples: %v", rep.ViolationCounts, rep.ViolationSamples)
			}
		})
	}
}
