package crow

import (
	"math"
	"os"
	"reflect"
	"sync"
	"testing"

	"crowdram/internal/trace"
)

func fast(o Options) Options {
	o.MeasureInsts = 30_000
	o.WarmupInsts = 3_000
	return o
}

func TestRunDefaults(t *testing.T) {
	r, err := Run(fast(Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if r.Mechanism != Baseline {
		t.Errorf("default mechanism = %s, want baseline", r.Mechanism)
	}
	if len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Errorf("IPC = %v", r.IPC)
	}
	if r.EnergyNJ.Total() <= 0 {
		t.Error("energy must be positive")
	}
	if r.ACTt != 0 || r.ACTc != 0 {
		t.Error("baseline must not use CROW commands")
	}
}

func TestRunCROWCache(t *testing.T) {
	r, err := Run(fast(Options{Mechanism: Cache, Workloads: []string{"soplex"}}))
	if err != nil {
		t.Fatal(err)
	}
	if r.ACTt == 0 || r.ACTc == 0 {
		t.Error("CROW-cache must issue ACT-t and ACT-c")
	}
	if r.CROWTableHitRate <= 0 || r.CROWTableHitRate > 1 {
		t.Errorf("hit rate = %f", r.CROWTableHitRate)
	}
	if math.Abs(r.ChipAreaOverhead-0.0048) > 0.001 {
		t.Errorf("CROW-8 chip overhead = %f, want ~0.0048", r.ChipAreaOverhead)
	}
	if math.Abs(r.CapacityOverhead-0.015625) > 1e-9 {
		t.Errorf("capacity overhead = %f, want 1.5625%%", r.CapacityOverhead)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Workloads: []string{"not-an-app"}}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run(Options{Workloads: []string{"mcf", "mcf", "mcf", "mcf", "mcf"}}); err == nil {
		t.Error("more than 4 workloads must error")
	}
	if _, err := Run(Options{DensityGbit: 12}); err == nil {
		t.Error("unsupported density must error")
	}
	if _, err := Run(Options{Mechanism: "bogus"}); err == nil {
		t.Error("unknown mechanism must error")
	}
}

func TestCompareSingleCore(t *testing.T) {
	c, err := Compare(fast(Options{Mechanism: Cache, Workloads: []string{"mcf"}}))
	if err != nil {
		t.Fatal(err)
	}
	if c.Speedup < -0.01 {
		t.Errorf("CROW-cache speedup = %+.3f, must not slow mcf down", c.Speedup)
	}
	if c.EnergyRatio <= 0 || c.EnergyRatio > 1.2 {
		t.Errorf("energy ratio = %.3f out of range", c.EnergyRatio)
	}
}

func TestBaselineMechanisms(t *testing.T) {
	for _, m := range []Mechanism{TLDRAM, SALP, IdealCache, IdealNoRefresh} {
		r, err := Run(fast(Options{Mechanism: m, Workloads: []string{"soplex"}}))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.IPC[0] <= 0 {
			t.Errorf("%s: IPC = %v", m, r.IPC)
		}
	}
}

func TestSALPOpenPageGeometry(t *testing.T) {
	r, err := Run(fast(Options{Mechanism: SALP, SALPSubarrays: 256, SALPOpenPage: true, Workloads: []string{"soplex"}}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ChipAreaOverhead-0.289) > 1e-9 {
		t.Errorf("SALP-256 area overhead = %f, want 0.289", r.ChipAreaOverhead)
	}
}

func TestWorkloadsList(t *testing.T) {
	names := Workloads()
	if len(names) < 25 {
		t.Errorf("workload suite has %d entries, want the full suite", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate workload %s", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"mcf", "random", "streaming"} {
		if !seen[want] {
			t.Errorf("workload %s missing", want)
		}
	}
}

func TestOverheadsPaperValues(t *testing.T) {
	o := OverheadsFor(8)
	if math.Abs(o.CROWTableKB-11.264) > 0.01 {
		t.Errorf("CROW-table = %.3f KB, want 11.3", o.CROWTableKB)
	}
	if math.Abs(o.DecoderArea-9.6) > 1e-9 {
		t.Errorf("decoder area = %.2f µm², want 9.6", o.DecoderArea)
	}
	if math.Abs(o.ChipArea-0.0048) > 0.0002 {
		t.Errorf("chip area overhead = %.5f, want 0.0048", o.ChipArea)
	}
	if math.Abs(o.Capacity-0.015625) > 1e-12 {
		t.Errorf("capacity = %f", o.Capacity)
	}
	if math.Abs(o.MRAPowerFactor-1.058) > 1e-9 {
		t.Errorf("MRA power factor = %f", o.MRAPowerFactor)
	}
	if math.Abs(o.CROWTableAccessNs-0.14) > 0.02 {
		t.Errorf("table access = %.3f ns, want 0.14", o.CROWTableAccessNs)
	}
}

func TestWeakRowProbabilities(t *testing.T) {
	pRow, pAny := WeakRowProbabilities(4e-9, 8)
	if math.Abs(pRow-2.62e-4)/2.62e-4 > 0.01 {
		t.Errorf("pRow = %g, want ~2.62e-4", pRow)
	}
	if len(pAny) != 8 {
		t.Fatalf("want 8 probabilities")
	}
	// Section 4.2.1: >1 → 0.99, >8 → 3.3e-11.
	if pAny[0] < 0.95 {
		t.Errorf("P(any > 1) = %g, want ~0.99", pAny[0])
	}
	if pAny[7] > 1e-9 {
		t.Errorf("P(any > 8) = %g, want ~3.3e-11", pAny[7])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	o := fast(Options{Mechanism: CacheRef, Workloads: []string{"milc"}, Seed: 5})
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(o)
	if a.IPC[0] != b.IPC[0] || a.Hits != b.Hits {
		t.Error("runs with identical options must be identical")
	}
}

func TestTraceFileInput(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.trace"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := trace.ByName("soplex")
	if err := trace.Write(f, app.Gen(3), 5000); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := Run(fast(Options{Mechanism: Cache, TraceFiles: []string{path}}))
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC[0] <= 0 {
		t.Error("trace-file run must produce IPC")
	}
	if _, err := Run(Options{TraceFiles: []string{dir + "/missing.trace"}}); err == nil {
		t.Error("missing trace file must error")
	}
	if _, err := Run(Options{TraceFiles: []string{path, path, path, path, path}}); err == nil {
		t.Error("more than 4 trace files must error")
	}
}

// TestConcurrentRunsDeterministic runs the same simulations sequentially and
// then concurrently (4 goroutines, the engine's minimum interesting worker
// count) and requires identical reports: simulations share no mutable state,
// so scheduling must not leak into results. Run under -race in CI.
func TestConcurrentRunsDeterministic(t *testing.T) {
	opts := []Options{
		fast(Options{}),
		fast(Options{Mechanism: Cache, Workloads: []string{"soplex"}}),
		fast(Options{Mechanism: Ref, DensityGbit: 64, Workloads: []string{"lbm"}}),
		fast(Options{Mechanism: CacheRef, Workloads: []string{"mcf", "lbm"}}),
	}
	want := make([]Report, len(opts))
	for i, o := range opts {
		rep, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	got := make([]Report, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i, o := range opts {
		wg.Add(1)
		go func(i int, o Options) {
			defer wg.Done()
			got[i], errs[i] = Run(o)
		}(i, o)
	}
	wg.Wait()
	for i := range opts {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("run %d: concurrent report differs from sequential", i)
		}
	}
}
